// Package minequiv is a full reproduction of Bermond & Fourneau,
// "Independent Connections: An Easy Characterization of Baseline-
// Equivalent Multistage Interconnection Networks" (ICPP 1988; TCS 64,
// 1989).
//
// The library models multistage interconnection networks as MI-digraphs,
// decides baseline-equivalence via the paper's characterization (Banyan +
// P(1,*) + P(*,n)), constructs explicit isomorphisms onto the Baseline
// network, implements independent connections and PIPID permutations
// with their §4 relationship, and adds routing and packet-simulation
// layers that give the equivalence theorem its systems-level meaning.
//
// # Public API
//
// The package min is the supported surface: build networks (catalog,
// explicit permutations, or the fluent Builder), check the
// characterization (min.Check, min.Iso, min.Equivalent), route packets
// (min.Route, min.TagPositions) and run the parallel simulation engine
// (min.Simulate, min.SimulateBuffered with functional options and
// context cancellation). The package minserve serves that API over
// HTTP — JSON by default, with a negotiated binary wire codec
// (Content-Type/Accept: application/x-min-bin) for the hot request
// and response shapes — and cmd/minserve is its binary. Everything under
// internal/ is plumbing with no stability promise; all CLIs (except
// the module-internal cmd/minbench) and all examples consume only the
// public API.
//
// Layout:
//
//	min                  the public façade API (start here)
//	minserve             HTTP service over min (library; JSON + binary codec)
//	internal/bitops      label bit manipulation
//	internal/codec       wire shapes and their binary frame rendering
//	internal/gf2         GF(2) linear algebra and affine maps
//	internal/perm        permutations on symbols (link level)
//	internal/pipid       index-digit permutations (PIPID, BPC)
//	internal/midigraph   the MI-digraph model, windows, P(i,j), Banyan
//	internal/conn        connections (f,g), independence, Proposition 1
//	internal/topology    the six classical networks and generic builders
//	internal/equiv       characterization check, isomorphism construction
//	internal/route       bit-directed routing, admissibility
//	internal/sim         packet simulation (wave and buffered models)
//	internal/engine      parallel trial runner (sharded waves, CI stats)
//	internal/randnet     random networks and counterexample families
//	internal/census      exhaustive census of small MI-digraphs
//	internal/ascii       text rendering of networks and figures
//	internal/experiments the F*/T* experiment harness
//	cmd/minctl           inspection CLI (public API only)
//	cmd/minsim           traffic simulation driver (public API only)
//	cmd/minserve         the HTTP service binary
//	cmd/minload          load generator -> BENCH_SERVE_*.json + CI gate
//	cmd/minbench         regenerates every figure/table (module-internal)
//	cmd/benchjson        bench output -> JSON + CI allocation gate
//	examples/            runnable tours, including a minserve client
//
// See README.md for a tour, DESIGN.md for the system inventory and
// EXPERIMENTS.md for the paper-versus-measured record.
package minequiv
