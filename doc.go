// Package minequiv is a full reproduction of Bermond & Fourneau,
// "Independent Connections: An Easy Characterization of Baseline-
// Equivalent Multistage Interconnection Networks" (ICPP 1988; TCS 64,
// 1989).
//
// The library models multistage interconnection networks as MI-digraphs,
// decides baseline-equivalence via the paper's characterization (Banyan +
// P(1,*) + P(*,n)), constructs explicit isomorphisms onto the Baseline
// network, implements independent connections and PIPID permutations
// with their §4 relationship, and adds routing and packet-simulation
// layers that give the equivalence theorem its systems-level meaning.
//
// Layout:
//
//	internal/bitops      label bit manipulation
//	internal/gf2         GF(2) linear algebra and affine maps
//	internal/perm        permutations on symbols (link level)
//	internal/pipid       index-digit permutations (PIPID, BPC)
//	internal/midigraph   the MI-digraph model, windows, P(i,j), Banyan
//	internal/conn        connections (f,g), independence, Proposition 1
//	internal/topology    the six classical networks and generic builders
//	internal/equiv       characterization check, isomorphism construction
//	internal/route       bit-directed routing, admissibility
//	internal/sim         packet simulation (wave and buffered models)
//	internal/engine      parallel trial runner (sharded waves, CI stats)
//	internal/randnet     random networks and counterexample families
//	internal/ascii       text rendering of networks and figures
//	internal/experiments the F*/T* experiment harness
//	cmd/minctl           inspection CLI
//	cmd/minbench         regenerates every figure/table
//	cmd/minsim           traffic simulation driver
//
// See README.md for a tour, DESIGN.md for the system inventory and
// EXPERIMENTS.md for the paper-versus-measured record.
package minequiv
