package minserve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"strconv"

	"minequiv/internal/codec"
)

// POST /v1/batch: up to Config.MaxBatch heterogeneous sub-requests in
// one body, answered positionally. One batch costs one HTTP round
// trip, one admission slot, one body read and one response write for N
// operations — and each sub-request still probes the same response
// cache (including the raw-body lookaside) as its single-call twin, so
// warm check/route batches amortize to a map probe plus a memcpy per
// item.
//
// JSON wire format:
//
//	request:  {"requests":[{"op":"check","request":{...}}, ...]}
//	response: {"responses":[{"op":"check","status":200,"cache":"hit","body":{...}}, ...]}
//
// The envelope negotiates codecs like the single endpoints: a binary
// envelope (Content-Type: application/x-min-bin) carries a per-item
// binary flag so JSON and binary sub-request bodies can mix, while the
// JSON envelope carries JSON sub-requests only. The response codec
// follows Accept independently of the request's; inside a binary
// response envelope each 2xx sub-body is rendered in that codec and
// error sub-bodies stay JSON envelopes.
//
// Determinism contract: every sub-response body is byte-identical to
// the body the single endpoint returns for the same sub-request bytes
// under the same codecs, and the envelope itself is a pure function of
// (request, cache state) — the per-item cache attribution (check/route
// only) reports hit or miss exactly as the X-Cache header would have.
// Sub-request errors do not fail the batch; they surface positionally
// with their own status and structured error body. The batch response
// is never cached as a unit — its items already were.

// batchItem and batchRequest are the wire shapes, aliased from
// internal/codec (where both their JSON tags and binary layout live).
type (
	batchItem    = codec.BatchItem
	batchRequest = codec.BatchRequest
)

func (s *server) handleBatch(w http.ResponseWriter, r *http.Request) {
	wi, err := s.negotiate(r)
	if err != nil {
		writeErr(w, r, err)
		return
	}
	body, release, err := s.readBody(w, r)
	if err != nil {
		writeErr(w, r, err)
		return
	}
	defer release()
	var req batchRequest
	if err := decodeRequest(wi, body, &req); err != nil {
		writeErr(w, r, err)
		return
	}
	if len(req.Requests) == 0 {
		writeErr(w, r, badRequest("empty batch: requests must hold at least one item"))
		return
	}
	if len(req.Requests) > s.cfg.MaxBatch {
		writeErr(w, r, limitExceeded("batch too large: %d items > %d", len(req.Requests), s.cfg.MaxBatch))
		return
	}
	if wi.respBin {
		s.writeBatchBinary(w, r, &req)
		return
	}

	// The JSON response is hand-assembled: sub-bodies are spliced in as
	// pre-rendered bytes (no re-encode, no re-ordering of their keys),
	// which is both the amortization and the byte-determinism argument.
	out := bodyPool.Get().(*bytes.Buffer)
	defer bodyPool.Put(out)
	out.Reset()
	out.WriteString(`{"responses":[`)
	ctx := r.Context()
	for i, item := range req.Requests {
		// A dead client stops the batch between sub-requests; nothing
		// is written and instrument() records the 499. A server-side
		// deadline instead fails the remaining items individually below.
		if err := ctx.Err(); err == context.Canceled {
			return
		}
		if i > 0 {
			out.WriteByte(',')
		}
		s.execBatchItem(ctx, out, item)
	}
	out.WriteString("]}\n")
	writeJSONBytes(w, http.StatusOK, out.Bytes(), nil)
}

// writeBatchBinary answers a batch with a binary response envelope:
// positional BatchResults whose bodies are the single-endpoint
// responses rendered binary (errors stay JSON envelopes).
func (s *server) writeBatchBinary(w http.ResponseWriter, r *http.Request, req *batchRequest) {
	ctx := r.Context()
	resp := codec.BatchResponse{Responses: make([]codec.BatchResult, 0, len(req.Requests))}
	for _, item := range req.Requests {
		if err := ctx.Err(); err == context.Canceled {
			return
		}
		body, status, attr := s.runBatchItem(ctx, item, wire{reqBin: item.Bin, respBin: true})
		resp.Responses = append(resp.Responses, codec.BatchResult{
			Op: item.Op, Status: status, Cache: attr, Body: body,
		})
	}
	out, err := codec.Encode(&resp)
	if err != nil { // cannot happen: the envelope is plain data
		writeErr(w, r, err)
		return
	}
	writeWireBytes(w, http.StatusOK, out, nil, true)
}

// runBatchItem executes one sub-request under its codec pair and
// returns the rendered body, the status, and the cache attribution
// (codec.CacheNone for ops without one, and for errors).
func (s *server) runBatchItem(ctx context.Context, item batchItem, wi wire) ([]byte, int, uint8) {
	var (
		body []byte
		hit  bool
		attr bool // whether this op carries cache attribution
		err  error
	)
	switch item.Op {
	case "check":
		attr = true
		body, hit, err = s.execCheck(wi, item.Request)
	case "route":
		attr = true
		body, hit, err = s.execRoute(wi, item.Request)
	case "simulate":
		body, err = s.execSimulate(ctx, wi, item.Request)
	default:
		err = badRequest("unknown op %q (check, route or simulate)", item.Op)
	}
	status := http.StatusOK
	if err != nil {
		body, status = encodeErr(err)
		attr = false
	}
	switch {
	case !attr || s.cache == nil:
		return body, status, codec.CacheNone
	case hit:
		return body, status, codec.CacheHit
	default:
		return body, status, codec.CacheMiss
	}
}

// execBatchItem renders one positional JSON sub-response into out.
func (s *server) execBatchItem(ctx context.Context, out *bytes.Buffer, item batchItem) {
	body, status, attr := s.runBatchItem(ctx, item, wire{reqBin: item.Bin})

	// {"op":<op>,"status":N[,"cache":"hit|miss"],"body":<bytes sans \n>}
	out.WriteString(`{"op":`)
	switch item.Op {
	case "check", "route", "simulate":
		// Known ops need no JSON escaping; skip the marshal.
		out.WriteByte('"')
		out.WriteString(item.Op)
		out.WriteByte('"')
	default:
		opJSON, mErr := json.Marshal(item.Op)
		if mErr != nil { // cannot happen for a decoded string
			opJSON = []byte(`""`)
		}
		out.Write(opJSON)
	}
	out.WriteString(`,"status":`)
	var statusBuf [3]byte
	out.Write(strconv.AppendInt(statusBuf[:0], int64(status), 10))
	switch attr {
	case codec.CacheHit:
		out.WriteString(`,"cache":"hit"`)
	case codec.CacheMiss:
		out.WriteString(`,"cache":"miss"`)
	}
	out.WriteString(`,"body":`)
	// Single-endpoint bodies end in the json.Encoder newline; splice
	// without it so the envelope stays one line.
	if n := len(body); n > 0 && body[n-1] == '\n' {
		body = body[:n-1]
	}
	out.Write(body)
	out.WriteByte('}')
}
