package minserve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"strconv"
)

// POST /v1/batch: up to Config.MaxBatch heterogeneous sub-requests in
// one body, answered positionally. One batch costs one HTTP round
// trip, one admission slot, one body read and one response write for N
// operations — and each sub-request still probes the same response
// cache (including the raw-body lookaside) as its single-call twin, so
// warm check/route batches amortize to a map probe plus a memcpy per
// item.
//
// Wire format:
//
//	request:  {"requests":[{"op":"check","request":{...}}, ...]}
//	response: {"responses":[{"op":"check","status":200,"cache":"hit","body":{...}}, ...]}
//
// Determinism contract: every sub-response "body" is byte-identical to
// the body the single endpoint returns for the same sub-request bytes,
// and the envelope itself is a pure function of (request, cache state)
// — the per-item "cache" field (present on check/route only) reports
// hit or miss exactly as the X-Cache header would have. Sub-request
// errors do not fail the batch; they surface positionally with their
// own status and structured error body. The batch response is never
// cached as a unit — its items already were.

// batchItem is one sub-request: the operation and its verbatim single-
// endpoint request body. Raw bytes are preserved (not re-marshalled) so
// the cache's raw lookaside sees exactly what a single call would send.
type batchItem struct {
	Op      string          `json:"op"` // "check", "route" or "simulate"
	Request json.RawMessage `json:"request"`
}

type batchRequest struct {
	Requests []batchItem `json:"requests"`
}

func (s *server) handleBatch(w http.ResponseWriter, r *http.Request) {
	body, release, err := s.readBody(w, r)
	if err != nil {
		writeErr(w, r, err)
		return
	}
	defer release()
	var req batchRequest
	if err := decodeBytes(body, &req); err != nil {
		writeErr(w, r, err)
		return
	}
	if len(req.Requests) == 0 {
		writeErr(w, r, badRequest("empty batch: requests must hold at least one item"))
		return
	}
	if len(req.Requests) > s.cfg.MaxBatch {
		writeErr(w, r, limitExceeded("batch too large: %d items > %d", len(req.Requests), s.cfg.MaxBatch))
		return
	}

	// The response is hand-assembled: sub-bodies are spliced in as
	// pre-rendered bytes (no re-encode, no re-ordering of their keys),
	// which is both the amortization and the byte-determinism argument.
	out := bodyPool.Get().(*bytes.Buffer)
	defer bodyPool.Put(out)
	out.Reset()
	out.WriteString(`{"responses":[`)
	ctx := r.Context()
	for i, item := range req.Requests {
		// A dead client stops the batch between sub-requests; nothing
		// is written and instrument() records the 499. A server-side
		// deadline instead fails the remaining items individually below.
		if err := ctx.Err(); err == context.Canceled {
			return
		}
		if i > 0 {
			out.WriteByte(',')
		}
		s.execBatchItem(ctx, out, item)
	}
	out.WriteString("]}\n")
	writeJSONBytes(w, http.StatusOK, out.Bytes(), nil)
}

// execBatchItem renders one positional sub-response into out.
func (s *server) execBatchItem(ctx context.Context, out *bytes.Buffer, item batchItem) {
	var (
		body []byte
		hit  bool
		attr bool // whether this op carries cache attribution
		err  error
	)
	switch item.Op {
	case "check":
		attr = true
		body, hit, err = s.execCheck(item.Request)
	case "route":
		attr = true
		body, hit, err = s.execRoute(item.Request)
	case "simulate":
		body, err = s.execSimulate(ctx, item.Request)
	default:
		err = badRequest("unknown op %q (check, route or simulate)", item.Op)
	}
	status := http.StatusOK
	if err != nil {
		body, status = encodeErr(err)
		attr = false
	}

	// {"op":<op>,"status":N[,"cache":"hit|miss"],"body":<bytes sans \n>}
	out.WriteString(`{"op":`)
	switch item.Op {
	case "check", "route", "simulate":
		// Known ops need no JSON escaping; skip the marshal.
		out.WriteByte('"')
		out.WriteString(item.Op)
		out.WriteByte('"')
	default:
		opJSON, mErr := json.Marshal(item.Op)
		if mErr != nil { // cannot happen for a decoded string
			opJSON = []byte(`""`)
		}
		out.Write(opJSON)
	}
	out.WriteString(`,"status":`)
	var statusBuf [3]byte
	out.Write(strconv.AppendInt(statusBuf[:0], int64(status), 10))
	if attr && s.cache != nil {
		if hit {
			out.WriteString(`,"cache":"hit"`)
		} else {
			out.WriteString(`,"cache":"miss"`)
		}
	}
	out.WriteString(`,"body":`)
	// Single-endpoint bodies end in the json.Encoder newline; splice
	// without it so the envelope stays one line.
	if n := len(body); n > 0 && body[n-1] == '\n' {
		body = body[:n-1]
	}
	out.Write(body)
	out.WriteByte('}')
}
