package minserve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func newTestHandler() http.Handler {
	return NewHandler(Config{})
}

func do(t *testing.T, h http.Handler, method, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	var req *http.Request
	if body == "" {
		req = httptest.NewRequest(method, path, nil)
	} else {
		req = httptest.NewRequest(method, path, strings.NewReader(body))
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func TestNetworksEndpoint(t *testing.T) {
	rec := do(t, newTestHandler(), "GET", "/v1/networks", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var resp struct {
		Networks []struct {
			Name        string `json:"name"`
			Description string `json:"description"`
		} `json:"networks"`
		Scenarios []struct {
			Name string `json:"name"`
		} `json:"scenarios"`
		MaxStages int `json:"maxStages"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Networks) != 6 || len(resp.Scenarios) != 9 || resp.MaxStages != 10 {
		t.Fatalf("unexpected inventory: %+v", resp)
	}
	for _, nw := range resp.Networks {
		if nw.Description == "" {
			t.Errorf("network %s has no description", nw.Name)
		}
	}
	// Method enforcement.
	if rec := do(t, newTestHandler(), "POST", "/v1/networks", "{}"); rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("POST /v1/networks: status %d", rec.Code)
	}
}

// TestCheckGolden pins the exact JSON the service emits for a small
// catalog check — the wire format is part of the API.
func TestCheckGolden(t *testing.T) {
	rec := do(t, newTestHandler(), "POST", "/v1/check", `{"network":"omega","stages":3}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	const golden = `{"report":{"network":"omega","stages":3,"equivalent":true,"banyan":true,` +
		`"prefix":[{"i":1,"j":1,"components":4,"expected":4,"ok":true},` +
		`{"i":1,"j":2,"components":2,"expected":2,"ok":true},` +
		`{"i":1,"j":3,"components":1,"expected":1,"ok":true}],` +
		`"suffix":[{"i":1,"j":3,"components":1,"expected":1,"ok":true},` +
		`{"i":2,"j":3,"components":2,"expected":2,"ok":true},` +
		`{"i":3,"j":3,"components":4,"expected":4,"ok":true}]}}` + "\n"
	if got := rec.Body.String(); got != golden {
		t.Errorf("golden mismatch:\ngot  %s\nwant %s", got, golden)
	}
}

func TestCheckVariants(t *testing.T) {
	h := newTestHandler()
	// The counterexample: Banyan yes, equivalent no.
	rec := do(t, h, "POST", "/v1/check", `{"network":"tail-cycle","stages":4}`)
	var resp struct {
		Report struct {
			Equivalent bool `json:"equivalent"`
			Banyan     bool `json:"banyan"`
			Suffix     []struct {
				OK bool `json:"ok"`
			} `json:"suffix"`
		} `json:"report"`
		Iso *struct {
			Maps [][]int `json:"maps"`
		} `json:"iso"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Report.Equivalent || !resp.Report.Banyan {
		t.Fatalf("tail-cycle report wrong: %s", rec.Body)
	}
	// Isomorphism on request.
	rec = do(t, h, "POST", "/v1/check", `{"network":"flip","stages":4,"iso":true}`)
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Iso == nil || len(resp.Iso.Maps) != 4 || len(resp.Iso.Maps[0]) != 8 {
		t.Fatalf("iso missing or misshapen: %s", rec.Body)
	}
	// Explicit index perms (a butterfly cascade).
	rec = do(t, h, "POST", "/v1/check",
		`{"stages":3,"indexPerms":[[2,1,0],[1,0,2]],"network":"cascade"}`)
	if !strings.Contains(rec.Body.String(), `"equivalent":true`) {
		t.Fatalf("cascade check: %s", rec.Body)
	}
	// Errors.
	for _, bad := range []string{
		`{"network":"nope","stages":4}`,
		`{"stages":4}`,
		`{"network":"omega","stages":99}`,
		`{"network":"omega","stages":4,"bogus":1}`,
		`{"network":"omega","stages":4,"linkPerms":[[0]],"indexPerms":[[0]]}`,
		`not json`,
	} {
		rec := do(t, h, "POST", "/v1/check", bad)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("body %s: status %d, want 400", bad, rec.Code)
		}
		if !strings.Contains(rec.Body.String(), `"error"`) {
			t.Errorf("body %s: no error envelope: %s", bad, rec.Body)
		}
	}
}

func TestRouteEndpoint(t *testing.T) {
	h := newTestHandler()
	rec := do(t, h, "POST", "/v1/route", `{"network":"omega","stages":4,"src":5,"dst":12}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var resp struct {
		Network string `json:"network"`
		Path    struct {
			Src  int `json:"src"`
			Dst  int `json:"dst"`
			Hops []struct {
				Stage   int `json:"stage"`
				Cell    int `json:"cell"`
				OutPort int `json:"outPort"`
			} `json:"hops"`
		} `json:"path"`
		TagPositions []int `json:"tagPositions"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Path.Src != 5 || resp.Path.Dst != 12 || len(resp.Path.Hops) != 4 {
		t.Fatalf("bad path: %s", rec.Body)
	}
	if len(resp.TagPositions) != 4 {
		t.Fatalf("missing tag schedule: %s", rec.Body)
	}
	last := resp.Path.Hops[3]
	if last.Cell*2+last.OutPort != 12 {
		t.Fatalf("path does not land on dst: %s", rec.Body)
	}
	// Out-of-range terminals are a 400, not a panic.
	rec = do(t, h, "POST", "/v1/route", `{"network":"omega","stages":4,"src":5,"dst":99}`)
	if rec.Code != http.StatusBadRequest {
		t.Errorf("oob terminal: status %d", rec.Code)
	}
	// tail-cycle routes via the fallback router, without tags.
	rec = do(t, h, "POST", "/v1/route", `{"network":"tail-cycle","stages":4,"src":0,"dst":7}`)
	if rec.Code != http.StatusOK || strings.Contains(rec.Body.String(), "tagPositions") {
		t.Errorf("tail-cycle route: %d %s", rec.Code, rec.Body)
	}
}

// TestSimulateDeterminism: the same request produces a byte-identical
// response body — the service's reproducibility contract.
func TestSimulateDeterminism(t *testing.T) {
	h := newTestHandler()
	const body = `{"network":"omega","stages":5,"waves":80,"seed":7,"scenario":"transpose","load":0.8}`
	first := do(t, h, "POST", "/v1/simulate", body)
	if first.Code != http.StatusOK {
		t.Fatalf("status %d: %s", first.Code, first.Body)
	}
	for i := 0; i < 3; i++ {
		again := do(t, h, "POST", "/v1/simulate", body)
		if again.Body.String() != first.Body.String() {
			t.Fatalf("response changed between identical requests:\n%s\nvs\n%s", first.Body, again.Body)
		}
	}
	// Workers must not change the bytes either.
	withWorkers := do(t, h, "POST", "/v1/simulate",
		`{"network":"omega","stages":5,"waves":80,"seed":7,"scenario":"transpose","load":0.8,"workers":1}`)
	if withWorkers.Body.String() != first.Body.String() {
		t.Fatalf("worker count leaked into response:\n%s\nvs\n%s", first.Body, withWorkers.Body)
	}
	// Unseeded requests default to seed 1, still reproducible.
	a := do(t, h, "POST", "/v1/simulate", `{"network":"flip","stages":4}`)
	b := do(t, h, "POST", "/v1/simulate", `{"network":"flip","stages":4,"seed":1}`)
	if a.Body.String() != b.Body.String() {
		t.Fatal("unseeded request is not seed 1")
	}
}

func TestSimulateBufferedEndpoint(t *testing.T) {
	h := newTestHandler()
	rec := do(t, h, "POST", "/v1/simulate",
		`{"network":"baseline","stages":4,"model":"buffered","load":0.7,"queue":3,"lanes":2,`+
			`"cycles":300,"warmup":30,"replications":2,"seed":3,"arbiter":"roundrobin","laneSelect":"bydst"}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var resp struct {
		Model    string `json:"model"`
		Buffered *struct {
			Delivered      int       `json:"delivered"`
			Replications   int       `json:"replications"`
			StageOccupancy []float64 `json:"stageOccupancy"`
			Latency        struct {
				Mean float64 `json:"mean"`
			} `json:"latency"`
		} `json:"buffered"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Model != "buffered" || resp.Buffered == nil || resp.Buffered.Delivered == 0 ||
		resp.Buffered.Replications != 2 || len(resp.Buffered.StageOccupancy) != 4 {
		t.Fatalf("buffered response wrong: %s", rec.Body)
	}
	// Limits and model mixups.
	for _, bad := range []string{
		`{"network":"omega","stages":4,"waves":1000000}`,
		`{"network":"omega","stages":4,"model":"buffered","cycles":10000000}`,
		`{"network":"omega","stages":4,"model":"buffered","waves":10}`,
		`{"network":"omega","stages":4,"queue":4}`,
		`{"network":"omega","stages":4,"model":"nope"}`,
		`{"network":"omega","stages":4,"scenario":"nope"}`,
	} {
		rec := do(t, h, "POST", "/v1/simulate", bad)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("body %s: status %d, want 400", bad, rec.Code)
		}
	}
}

// TestSimulateCancellation: a client that disconnects mid-simulation
// stops the engine within one trial instead of burning the full run.
func TestSimulateCancellation(t *testing.T) {
	h := newTestHandler()
	ctx, cancel := context.WithCancel(context.Background())
	body := `{"network":"omega","stages":10,"model":"buffered","replications":100000,` +
		`"cycles":1999,"warmup":1,"load":1.0}`
	req := httptest.NewRequest("POST", "/v1/simulate", strings.NewReader(body)).WithContext(ctx)
	rec := httptest.NewRecorder()

	var wg sync.WaitGroup
	wg.Add(1)
	done := make(chan struct{})
	go func() {
		defer wg.Done()
		h.ServeHTTP(rec, req)
		close(done)
	}()
	time.Sleep(100 * time.Millisecond) // let a few replications start
	cancel()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("handler did not return after context cancellation")
	}
	wg.Wait()
	// The handler must not have produced a 200 with a full result.
	if rec.Code == http.StatusOK && strings.Contains(rec.Body.String(), `"replications":100000`) {
		t.Fatalf("full result produced despite cancellation: %s", rec.Body)
	}
}

// TestLimitsCoverDefaults: omitted buffered fields resolve to their
// defaults BEFORE the operator's caps are checked, so a cap below the
// default cannot be slipped past by leaving the field out, and
// negative fields cannot wrap the sum.
func TestLimitsCoverDefaults(t *testing.T) {
	h := NewHandler(Config{MaxCycles: 1000})
	for _, bad := range []string{
		`{"network":"omega","stages":4,"model":"buffered"}`,                            // defaults 5000+500 > 1000
		`{"network":"omega","stages":4,"model":"buffered","cycles":900,"warmup":-500}`, // negative field
		`{"network":"omega","stages":4,"model":"buffered","cycles":800,"warmup":300}`,  // 1100 > 1000
		`{"network":"omega","stages":4,"model":"buffered","load":1.5,"cycles":100}`,    // load out of range
	} {
		rec := do(t, h, "POST", "/v1/simulate", bad)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("body %s: status %d, want 400: %s", bad, rec.Code, rec.Body)
		}
	}
	ok := do(t, h, "POST", "/v1/simulate",
		`{"network":"omega","stages":4,"model":"buffered","cycles":800,"warmup":100}`)
	if ok.Code != http.StatusOK {
		t.Errorf("in-cap request rejected: %s", ok.Body)
	}
}

func TestBodyLimit(t *testing.T) {
	h := NewHandler(Config{MaxBodyBytes: 64})
	big := `{"network":"omega","stages":4,"linkPerms":[` + strings.Repeat("[0],", 100) + `[0]]}`
	rec := do(t, h, "POST", "/v1/check", big)
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413", rec.Code)
	}
}

// TestHealthzGolden pins the exact healthz body (uptime fixed by an
// injected clock) — the wire format is part of the API.
func TestHealthzGolden(t *testing.T) {
	s := mustServer(t, Config{})
	s.start = time.Unix(1000, 0)
	s.now = func() time.Time { return time.Unix(1042, 500_000_000) }
	h := s.handler()
	rec := do(t, h, "GET", "/v1/healthz", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	golden := `{"status":"ok","version":"` + Version + `","uptimeSeconds":42,` +
		`"cache":{"hits":0,"misses":0,"entries":0,"capacity":256},` +
		`"serving":{"requests":0,"inFlight":0,"queueDepth":0,"shed":0,"disconnects":0}}` + "\n"
	if got := rec.Body.String(); got != golden {
		t.Errorf("golden mismatch:\ngot  %swant %s", got, golden)
	}
	// The cache snapshot is live: a check populates it.
	do(t, h, "POST", "/v1/check", `{"network":"omega","stages":3}`)
	rec = do(t, h, "GET", "/v1/healthz", "")
	if !strings.Contains(rec.Body.String(), `"misses":1`) {
		t.Errorf("healthz cache snapshot stale: %s", rec.Body)
	}
	// Method enforcement.
	if rec := do(t, newTestHandler(), "POST", "/v1/healthz", "{}"); rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("POST /v1/healthz: status %d", rec.Code)
	}
}

// TestRouteWithFaults: the faults field reroutes through the degraded
// fabric, misses the tag schedule, keys the cache separately from the
// intact route, and rejects random rates and oversized fault lists.
func TestRouteWithFaults(t *testing.T) {
	h := newTestHandler()
	intact := do(t, h, "POST", "/v1/route", `{"network":"omega","stages":4,"src":5,"dst":12}`)
	if intact.Code != http.StatusOK {
		t.Fatalf("intact: status %d: %s", intact.Code, intact.Body)
	}
	// A fault elsewhere leaves the path intact but drops the tag
	// schedule (reachability routing) — and must NOT replay the intact
	// cached bytes.
	faulty := do(t, h, "POST", "/v1/route",
		`{"network":"omega","stages":4,"src":5,"dst":12,"faults":{"faults":[{"kind":"switch-dead","stage":0,"cell":0}]}}`)
	if faulty.Code != http.StatusOK {
		t.Fatalf("faulty: status %d: %s", faulty.Code, faulty.Body)
	}
	if strings.Contains(faulty.Body.String(), "tagPositions") {
		t.Errorf("degraded route still reports a tag schedule: %s", faulty.Body)
	}
	if faulty.Body.String() == intact.Body.String() {
		t.Error("fault plan did not reach the cache key")
	}
	// Repeating the faulty request hits the cache with identical bytes.
	again := do(t, h, "POST", "/v1/route",
		`{"network":"omega","stages":4,"src":5,"dst":12,"faults":{"faults":[{"kind":"switch-dead","stage":0,"cell":0}]}}`)
	if again.Body.String() != faulty.Body.String() || again.Header().Get("X-Cache") != "HIT" {
		t.Error("faulty route not cached byte-identically")
	}
	// Killing the source's own entry switch unroutes it.
	dead := do(t, h, "POST", "/v1/route",
		`{"network":"omega","stages":4,"src":5,"dst":12,"faults":{"faults":[{"kind":"switch-dead","stage":0,"cell":2}]}}`)
	if dead.Code != http.StatusBadRequest || !strings.Contains(dead.Body.String(), "no fault-free path") {
		t.Errorf("dead entry switch: %d %s", dead.Code, dead.Body)
	}
	// Random rates are meaningless for a single route.
	rec := do(t, h, "POST", "/v1/route",
		`{"network":"omega","stages":4,"src":5,"dst":12,"faults":{"switchDeadRate":0.1}}`)
	if rec.Code != http.StatusBadRequest {
		t.Errorf("random rates on route: status %d", rec.Code)
	}
	// Oversized fault lists are capped.
	hCapped := NewHandler(Config{MaxFaults: 1})
	rec = do(t, hCapped, "POST", "/v1/route",
		`{"network":"omega","stages":4,"src":5,"dst":12,"faults":{"faults":[`+
			`{"kind":"link-down","stage":0,"link":0},{"kind":"link-down","stage":0,"link":1}]}}`)
	if rec.Code != http.StatusBadRequest || !strings.Contains(rec.Body.String(), "fault list too long") {
		t.Errorf("fault cap: %d %s", rec.Code, rec.Body)
	}
}

// TestSimulateWithFaults: the faults field degrades the simulation
// deterministically and invalid plans are 400s.
func TestSimulateWithFaults(t *testing.T) {
	h := newTestHandler()
	const intactBody = `{"network":"omega","stages":5,"waves":60,"seed":7}`
	const faultyBody = `{"network":"omega","stages":5,"waves":60,"seed":7,` +
		`"faults":{"switchDeadRate":0.05,"linkDownRate":0.02}}`
	intact := do(t, h, "POST", "/v1/simulate", intactBody)
	faulty := do(t, h, "POST", "/v1/simulate", faultyBody)
	if intact.Code != http.StatusOK || faulty.Code != http.StatusOK {
		t.Fatalf("status %d/%d: %s %s", intact.Code, faulty.Code, intact.Body, faulty.Body)
	}
	if !strings.Contains(faulty.Body.String(), `"faultDropped"`) {
		t.Errorf("degraded run reports no fault drops: %s", faulty.Body)
	}
	if strings.Contains(intact.Body.String(), `"faultDropped"`) {
		t.Errorf("intact run reports fault drops: %s", intact.Body)
	}
	// Reproducible: same body, same bytes.
	again := do(t, h, "POST", "/v1/simulate", faultyBody)
	if again.Body.String() != faulty.Body.String() {
		t.Error("degraded simulation not reproducible from the request body")
	}
	// Buffered model accepts faults too.
	buf := do(t, h, "POST", "/v1/simulate",
		`{"network":"omega","stages":4,"model":"buffered","cycles":200,"warmup":20,"seed":3,`+
			`"faults":{"faults":[{"kind":"switch-dead","stage":1,"cell":0}]}}`)
	if buf.Code != http.StatusOK || !strings.Contains(buf.Body.String(), `"faultDropped"`) {
		t.Errorf("buffered faults: %d %s", buf.Code, buf.Body)
	}
	// Invalid plans are rejected.
	for _, bad := range []string{
		`{"network":"omega","stages":4,"faults":{"switchDeadRate":1.5}}`,
		`{"network":"omega","stages":4,"faults":{"faults":[{"kind":"nope","stage":0}]}}`,
		`{"network":"omega","stages":4,"faults":{"faults":[{"kind":"switch-dead","stage":99}]}}`,
	} {
		rec := do(t, h, "POST", "/v1/simulate", bad)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("body %s: status %d, want 400", bad, rec.Code)
		}
	}
}

func TestSimulateKernelField(t *testing.T) {
	h := newTestHandler()
	const body = `{"network":"omega","stages":5,"waves":100,"seed":3,"kernel":%q}`
	base := do(t, h, "POST", "/v1/simulate", fmt.Sprintf(body, "scalar"))
	if base.Code != http.StatusOK {
		t.Fatalf("status %d: %s", base.Code, base.Body)
	}
	for _, k := range []string{"auto", "bit"} {
		got := do(t, h, "POST", "/v1/simulate", fmt.Sprintf(body, k))
		if got.Code != http.StatusOK {
			t.Fatalf("kernel %q: status %d: %s", k, got.Code, got.Body)
		}
		if got.Body.String() != base.Body.String() {
			t.Fatalf("kernel %q changed the response:\n%s\nvs\n%s", k, got.Body, base.Body)
		}
	}
	// Omitting the field is kernel "auto".
	plain := do(t, h, "POST", "/v1/simulate", `{"network":"omega","stages":5,"waves":100,"seed":3}`)
	if plain.Body.String() != base.Body.String() {
		t.Fatalf("default kernel diverged:\n%s\nvs\n%s", plain.Body, base.Body)
	}
	if rec := do(t, h, "POST", "/v1/simulate", fmt.Sprintf(body, "simd")); rec.Code != http.StatusBadRequest {
		t.Fatalf("unknown kernel: status %d: %s", rec.Code, rec.Body)
	}
	if rec := do(t, h, "POST", "/v1/simulate",
		`{"network":"omega","stages":4,"model":"buffered","cycles":100,"kernel":"bit"}`); rec.Code != http.StatusBadRequest {
		t.Fatalf("kernel on buffered model: status %d: %s", rec.Code, rec.Body)
	}
}
