package minserve

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func newTestHandler() http.Handler {
	return NewHandler(Config{})
}

func do(t *testing.T, h http.Handler, method, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	var req *http.Request
	if body == "" {
		req = httptest.NewRequest(method, path, nil)
	} else {
		req = httptest.NewRequest(method, path, strings.NewReader(body))
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func TestNetworksEndpoint(t *testing.T) {
	rec := do(t, newTestHandler(), "GET", "/v1/networks", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var resp struct {
		Networks []struct {
			Name        string `json:"name"`
			Description string `json:"description"`
		} `json:"networks"`
		Scenarios []struct {
			Name string `json:"name"`
		} `json:"scenarios"`
		MaxStages int `json:"maxStages"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Networks) != 6 || len(resp.Scenarios) != 9 || resp.MaxStages != 10 {
		t.Fatalf("unexpected inventory: %+v", resp)
	}
	for _, nw := range resp.Networks {
		if nw.Description == "" {
			t.Errorf("network %s has no description", nw.Name)
		}
	}
	// Method enforcement.
	if rec := do(t, newTestHandler(), "POST", "/v1/networks", "{}"); rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("POST /v1/networks: status %d", rec.Code)
	}
}

// TestCheckGolden pins the exact JSON the service emits for a small
// catalog check — the wire format is part of the API.
func TestCheckGolden(t *testing.T) {
	rec := do(t, newTestHandler(), "POST", "/v1/check", `{"network":"omega","stages":3}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	const golden = `{"report":{"network":"omega","stages":3,"equivalent":true,"banyan":true,` +
		`"prefix":[{"i":1,"j":1,"components":4,"expected":4,"ok":true},` +
		`{"i":1,"j":2,"components":2,"expected":2,"ok":true},` +
		`{"i":1,"j":3,"components":1,"expected":1,"ok":true}],` +
		`"suffix":[{"i":1,"j":3,"components":1,"expected":1,"ok":true},` +
		`{"i":2,"j":3,"components":2,"expected":2,"ok":true},` +
		`{"i":3,"j":3,"components":4,"expected":4,"ok":true}]}}` + "\n"
	if got := rec.Body.String(); got != golden {
		t.Errorf("golden mismatch:\ngot  %s\nwant %s", got, golden)
	}
}

func TestCheckVariants(t *testing.T) {
	h := newTestHandler()
	// The counterexample: Banyan yes, equivalent no.
	rec := do(t, h, "POST", "/v1/check", `{"network":"tail-cycle","stages":4}`)
	var resp struct {
		Report struct {
			Equivalent bool `json:"equivalent"`
			Banyan     bool `json:"banyan"`
			Suffix     []struct {
				OK bool `json:"ok"`
			} `json:"suffix"`
		} `json:"report"`
		Iso *struct {
			Maps [][]int `json:"maps"`
		} `json:"iso"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Report.Equivalent || !resp.Report.Banyan {
		t.Fatalf("tail-cycle report wrong: %s", rec.Body)
	}
	// Isomorphism on request.
	rec = do(t, h, "POST", "/v1/check", `{"network":"flip","stages":4,"iso":true}`)
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Iso == nil || len(resp.Iso.Maps) != 4 || len(resp.Iso.Maps[0]) != 8 {
		t.Fatalf("iso missing or misshapen: %s", rec.Body)
	}
	// Explicit index perms (a butterfly cascade).
	rec = do(t, h, "POST", "/v1/check",
		`{"stages":3,"indexPerms":[[2,1,0],[1,0,2]],"network":"cascade"}`)
	if !strings.Contains(rec.Body.String(), `"equivalent":true`) {
		t.Fatalf("cascade check: %s", rec.Body)
	}
	// Errors.
	for _, bad := range []string{
		`{"network":"nope","stages":4}`,
		`{"stages":4}`,
		`{"network":"omega","stages":99}`,
		`{"network":"omega","stages":4,"bogus":1}`,
		`{"network":"omega","stages":4,"linkPerms":[[0]],"indexPerms":[[0]]}`,
		`not json`,
	} {
		rec := do(t, h, "POST", "/v1/check", bad)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("body %s: status %d, want 400", bad, rec.Code)
		}
		if !strings.Contains(rec.Body.String(), `"error"`) {
			t.Errorf("body %s: no error envelope: %s", bad, rec.Body)
		}
	}
}

func TestRouteEndpoint(t *testing.T) {
	h := newTestHandler()
	rec := do(t, h, "POST", "/v1/route", `{"network":"omega","stages":4,"src":5,"dst":12}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var resp struct {
		Network string `json:"network"`
		Path    struct {
			Src  int `json:"src"`
			Dst  int `json:"dst"`
			Hops []struct {
				Stage   int `json:"stage"`
				Cell    int `json:"cell"`
				OutPort int `json:"outPort"`
			} `json:"hops"`
		} `json:"path"`
		TagPositions []int `json:"tagPositions"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Path.Src != 5 || resp.Path.Dst != 12 || len(resp.Path.Hops) != 4 {
		t.Fatalf("bad path: %s", rec.Body)
	}
	if len(resp.TagPositions) != 4 {
		t.Fatalf("missing tag schedule: %s", rec.Body)
	}
	last := resp.Path.Hops[3]
	if last.Cell*2+last.OutPort != 12 {
		t.Fatalf("path does not land on dst: %s", rec.Body)
	}
	// Out-of-range terminals are a 400, not a panic.
	rec = do(t, h, "POST", "/v1/route", `{"network":"omega","stages":4,"src":5,"dst":99}`)
	if rec.Code != http.StatusBadRequest {
		t.Errorf("oob terminal: status %d", rec.Code)
	}
	// tail-cycle routes via the fallback router, without tags.
	rec = do(t, h, "POST", "/v1/route", `{"network":"tail-cycle","stages":4,"src":0,"dst":7}`)
	if rec.Code != http.StatusOK || strings.Contains(rec.Body.String(), "tagPositions") {
		t.Errorf("tail-cycle route: %d %s", rec.Code, rec.Body)
	}
}

// TestSimulateDeterminism: the same request produces a byte-identical
// response body — the service's reproducibility contract.
func TestSimulateDeterminism(t *testing.T) {
	h := newTestHandler()
	const body = `{"network":"omega","stages":5,"waves":80,"seed":7,"scenario":"transpose","load":0.8}`
	first := do(t, h, "POST", "/v1/simulate", body)
	if first.Code != http.StatusOK {
		t.Fatalf("status %d: %s", first.Code, first.Body)
	}
	for i := 0; i < 3; i++ {
		again := do(t, h, "POST", "/v1/simulate", body)
		if again.Body.String() != first.Body.String() {
			t.Fatalf("response changed between identical requests:\n%s\nvs\n%s", first.Body, again.Body)
		}
	}
	// Workers must not change the bytes either.
	withWorkers := do(t, h, "POST", "/v1/simulate",
		`{"network":"omega","stages":5,"waves":80,"seed":7,"scenario":"transpose","load":0.8,"workers":1}`)
	if withWorkers.Body.String() != first.Body.String() {
		t.Fatalf("worker count leaked into response:\n%s\nvs\n%s", first.Body, withWorkers.Body)
	}
	// Unseeded requests default to seed 1, still reproducible.
	a := do(t, h, "POST", "/v1/simulate", `{"network":"flip","stages":4}`)
	b := do(t, h, "POST", "/v1/simulate", `{"network":"flip","stages":4,"seed":1}`)
	if a.Body.String() != b.Body.String() {
		t.Fatal("unseeded request is not seed 1")
	}
}

func TestSimulateBufferedEndpoint(t *testing.T) {
	h := newTestHandler()
	rec := do(t, h, "POST", "/v1/simulate",
		`{"network":"baseline","stages":4,"model":"buffered","load":0.7,"queue":3,"lanes":2,`+
			`"cycles":300,"warmup":30,"replications":2,"seed":3,"arbiter":"roundrobin","laneSelect":"bydst"}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var resp struct {
		Model    string `json:"model"`
		Buffered *struct {
			Delivered      int       `json:"delivered"`
			Replications   int       `json:"replications"`
			StageOccupancy []float64 `json:"stageOccupancy"`
			Latency        struct {
				Mean float64 `json:"mean"`
			} `json:"latency"`
		} `json:"buffered"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Model != "buffered" || resp.Buffered == nil || resp.Buffered.Delivered == 0 ||
		resp.Buffered.Replications != 2 || len(resp.Buffered.StageOccupancy) != 4 {
		t.Fatalf("buffered response wrong: %s", rec.Body)
	}
	// Limits and model mixups.
	for _, bad := range []string{
		`{"network":"omega","stages":4,"waves":1000000}`,
		`{"network":"omega","stages":4,"model":"buffered","cycles":10000000}`,
		`{"network":"omega","stages":4,"model":"buffered","waves":10}`,
		`{"network":"omega","stages":4,"queue":4}`,
		`{"network":"omega","stages":4,"model":"nope"}`,
		`{"network":"omega","stages":4,"scenario":"nope"}`,
	} {
		rec := do(t, h, "POST", "/v1/simulate", bad)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("body %s: status %d, want 400", bad, rec.Code)
		}
	}
}

// TestSimulateCancellation: a client that disconnects mid-simulation
// stops the engine within one trial instead of burning the full run.
func TestSimulateCancellation(t *testing.T) {
	h := newTestHandler()
	ctx, cancel := context.WithCancel(context.Background())
	body := `{"network":"omega","stages":10,"model":"buffered","replications":100000,` +
		`"cycles":1999,"warmup":1,"load":1.0}`
	req := httptest.NewRequest("POST", "/v1/simulate", strings.NewReader(body)).WithContext(ctx)
	rec := httptest.NewRecorder()

	var wg sync.WaitGroup
	wg.Add(1)
	done := make(chan struct{})
	go func() {
		defer wg.Done()
		h.ServeHTTP(rec, req)
		close(done)
	}()
	time.Sleep(100 * time.Millisecond) // let a few replications start
	cancel()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("handler did not return after context cancellation")
	}
	wg.Wait()
	// The handler must not have produced a 200 with a full result.
	if rec.Code == http.StatusOK && strings.Contains(rec.Body.String(), `"replications":100000`) {
		t.Fatalf("full result produced despite cancellation: %s", rec.Body)
	}
}

// TestLimitsCoverDefaults: omitted buffered fields resolve to their
// defaults BEFORE the operator's caps are checked, so a cap below the
// default cannot be slipped past by leaving the field out, and
// negative fields cannot wrap the sum.
func TestLimitsCoverDefaults(t *testing.T) {
	h := NewHandler(Config{MaxCycles: 1000})
	for _, bad := range []string{
		`{"network":"omega","stages":4,"model":"buffered"}`,                            // defaults 5000+500 > 1000
		`{"network":"omega","stages":4,"model":"buffered","cycles":900,"warmup":-500}`, // negative field
		`{"network":"omega","stages":4,"model":"buffered","cycles":800,"warmup":300}`,  // 1100 > 1000
		`{"network":"omega","stages":4,"model":"buffered","load":1.5,"cycles":100}`,    // load out of range
	} {
		rec := do(t, h, "POST", "/v1/simulate", bad)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("body %s: status %d, want 400: %s", bad, rec.Code, rec.Body)
		}
	}
	ok := do(t, h, "POST", "/v1/simulate",
		`{"network":"omega","stages":4,"model":"buffered","cycles":800,"warmup":100}`)
	if ok.Code != http.StatusOK {
		t.Errorf("in-cap request rejected: %s", ok.Body)
	}
}

func TestBodyLimit(t *testing.T) {
	h := NewHandler(Config{MaxBodyBytes: 64})
	big := `{"network":"omega","stages":4,"linkPerms":[` + strings.Repeat("[0],", 100) + `[0]]}`
	rec := do(t, h, "POST", "/v1/check", big)
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413", rec.Code)
	}
}
