package minserve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"minequiv/internal/codec"
	"minequiv/internal/jobs"
)

// doWire is do with explicit Content-Type/Accept headers ("" omits).
func doWire(t *testing.T, h http.Handler, method, path, body, contentType, accept string) *httptest.ResponseRecorder {
	t.Helper()
	var req *http.Request
	if body == "" {
		req = httptest.NewRequest(method, path, nil)
	} else {
		req = httptest.NewRequest(method, path, strings.NewReader(body))
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

// TestUnsupportedMediaType pins the 415 path: any Content-Type besides
// JSON (or none) and the binary codec is rejected with the stable code
// on every work endpoint, and the error envelope is JSON even when the
// client asked for binary.
func TestUnsupportedMediaType(t *testing.T) {
	h := newTestHandler()
	for _, path := range []string{"/v1/check", "/v1/route", "/v1/simulate", "/v1/batch", "/v1/jobs"} {
		rec := doWire(t, h, "POST", path, `{}`, "text/xml", MediaTypeBinary)
		if rec.Code != http.StatusUnsupportedMediaType {
			t.Fatalf("%s: status %d want 415: %s", path, rec.Code, rec.Body)
		}
		if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
			t.Errorf("%s: error Content-Type %q, want JSON", path, ct)
		}
		we := decodeErrBody(t, rec)
		if we.Error.Code != CodeUnsupportedMediaType {
			t.Errorf("%s: code %q want %q", path, we.Error.Code, CodeUnsupportedMediaType)
		}
	}
	// Media parameters are ignored; JSON with a charset still negotiates.
	rec := doWire(t, h, "POST", "/v1/check", `{"network":"omega","stages":3}`,
		"application/json; charset=utf-8", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("json with params: status %d: %s", rec.Code, rec.Body)
	}
	// Bare `curl -d` stamps form-urlencoded on a JSON body; the
	// documented quickstart depends on it negotiating as JSON.
	rec = doWire(t, h, "POST", "/v1/check", `{"network":"omega","stages":3}`,
		"application/x-www-form-urlencoded", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("curl default content type: status %d: %s", rec.Code, rec.Body)
	}
}

// TestBinaryRequestDecode pins binary request handling: a transcoded
// body answers exactly like its JSON twin, and a torn frame is a 400
// bad_request, not a 5xx.
func TestBinaryRequestDecode(t *testing.T) {
	h := newTestHandler()
	jsonBody := `{"network":"omega","stages":4}`
	want := do(t, h, "POST", "/v1/check", jsonBody).Body.String()

	bin, err := EncodeBinaryRequest("check", []byte(jsonBody))
	if err != nil {
		t.Fatal(err)
	}
	rec := doWire(t, h, "POST", "/v1/check", string(bin), MediaTypeBinary, "")
	if rec.Code != http.StatusOK {
		t.Fatalf("binary request: status %d: %s", rec.Code, rec.Body)
	}
	if rec.Body.String() != want {
		t.Errorf("binary-request JSON response differs from JSON-request response:\n%s\nvs\n%s", rec.Body, want)
	}

	rec = doWire(t, h, "POST", "/v1/check", string(bin[:len(bin)-1]), MediaTypeBinary, "")
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("torn frame: status %d want 400: %s", rec.Code, rec.Body)
	}
	if we := decodeErrBody(t, rec); we.Error.Code != CodeBadRequest {
		t.Errorf("torn frame code %q want %q", we.Error.Code, CodeBadRequest)
	}
}

// TestCrossCodecParity is the property test of the wire contract: for
// identical seeded requests, the binary response decodes to exactly
// the value the JSON response decodes to, on every negotiated
// direction pair, for check, route and simulate.
func TestCrossCodecParity(t *testing.T) {
	h := newTestHandler()
	cases := []struct {
		endpoint string
		body     string
		decode   func() any
	}{
		{"check", `{"network":"omega","stages":4,"iso":true}`, func() any { return new(checkResponse) }},
		{"check", `{"network":"tail-cycle","stages":4}`, func() any { return new(checkResponse) }},
		{"route", `{"network":"baseline","stages":4,"src":3,"dst":11}`, func() any { return new(routeResponse) }},
		{"route", `{"network":"omega","stages":4,"src":1,"dst":9,"faults":{"faults":[{"kind":"switch-dead","stage":1,"cell":2}]}}`, func() any { return new(routeResponse) }},
		{"simulate", `{"network":"omega","stages":4,"waves":16,"seed":7}`, func() any { return new(simulateResponse) }},
		{"simulate", `{"network":"flip","stages":4,"waves":8,"seed":3,"faults":{"faults":[{"kind":"link-down","stage":0,"link":5}],"switchDeadRate":0.01}}`, func() any { return new(simulateResponse) }},
		{"simulate", `{"network":"omega","stages":3,"model":"buffered","replications":2,"cycles":200,"warmup":20,"seed":9}`, func() any { return new(simulateResponse) }},
	}
	for i, tc := range cases {
		t.Run(fmt.Sprintf("%s/%d", tc.endpoint, i), func(t *testing.T) {
			path := "/v1/" + tc.endpoint
			binBody, err := EncodeBinaryRequest(tc.endpoint, []byte(tc.body))
			if err != nil {
				t.Fatal(err)
			}

			// JSON-in/JSON-out is the reference; binary-in/JSON-out must
			// replay its exact bytes.
			ref := doWire(t, h, "POST", path, tc.body, "", "")
			if ref.Code != http.StatusOK {
				t.Fatalf("reference: status %d: %s", ref.Code, ref.Body)
			}
			if rec := doWire(t, h, "POST", path, string(binBody), MediaTypeBinary, ""); rec.Body.String() != ref.Body.String() {
				t.Errorf("bin>json bytes differ from json>json")
			}

			want := tc.decode()
			if err := json.Unmarshal(ref.Body.Bytes(), want); err != nil {
				t.Fatal(err)
			}
			// Both request codecs crossed with a binary response must
			// decode to the reference value.
			for _, reqBin := range []bool{false, true} {
				body, ct := tc.body, ""
				if reqBin {
					body, ct = string(binBody), MediaTypeBinary
				}
				rec := doWire(t, h, "POST", path, body, ct, MediaTypeBinary)
				if rec.Code != http.StatusOK {
					t.Fatalf("reqBin=%t: status %d: %s", reqBin, rec.Code, rec.Body)
				}
				if hdr := rec.Header().Get("Content-Type"); hdr != MediaTypeBinary {
					t.Fatalf("reqBin=%t: response Content-Type %q", reqBin, hdr)
				}
				got := tc.decode()
				if err := codec.Decode(rec.Body.Bytes(), got); err != nil {
					t.Fatalf("reqBin=%t: decoding binary response: %v", reqBin, err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Errorf("reqBin=%t: binary stats differ from JSON stats:\ngot  %+v\nwant %+v", reqBin, got, want)
				}
			}
		})
	}
}

// TestCacheCodecIsolation pins that the response cache never crosses
// codecs: the same raw request body served warm under Accept: binary
// and then under JSON yields each codec's own bytes.
func TestCacheCodecIsolation(t *testing.T) {
	h := newTestHandler()
	body := `{"network":"omega","stages":5}`
	// Warm the binary-response entry twice (miss, then raw-lookaside hit).
	first := doWire(t, h, "POST", "/v1/check", body, "", MediaTypeBinary)
	warm := doWire(t, h, "POST", "/v1/check", body, "", MediaTypeBinary)
	if warm.Header().Get("X-Cache") != "HIT" {
		t.Fatalf("second binary read not a hit (X-Cache %q)", warm.Header().Get("X-Cache"))
	}
	if first.Body.String() != warm.Body.String() {
		t.Fatal("binary hit bytes differ from cold bytes")
	}
	// The JSON twin of the same raw body must not replay binary bytes.
	jsonRec := doWire(t, h, "POST", "/v1/check", body, "", "")
	var resp checkResponse
	if err := json.Unmarshal(jsonRec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("JSON response after binary warm-up is not JSON: %v: %q", err, jsonRec.Body.String())
	}
	var binResp checkResponse
	if err := codec.Decode(warm.Body.Bytes(), &binResp); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(resp, binResp) {
		t.Errorf("cached codec views disagree: %+v vs %+v", resp, binResp)
	}
}

// TestBatchBinary pins the binary batch envelope: mixed-codec
// sub-items, positional binary results whose 2xx bodies decode, error
// sub-bodies staying JSON, and cache attribution matching the JSON
// envelope's.
func TestBatchBinary(t *testing.T) {
	h := newTestHandler()
	checkJSON := `{"network":"omega","stages":3}`
	simJSON := `{"network":"omega","stages":3,"waves":4,"seed":2}`
	checkBin, err := EncodeBinaryRequest("check", []byte(checkJSON))
	if err != nil {
		t.Fatal(err)
	}
	req := codec.BatchRequest{Requests: []codec.BatchItem{
		{Op: "check", Request: []byte(checkBin), Bin: true},
		{Op: "check", Request: json.RawMessage(checkJSON)},
		{Op: "simulate", Request: json.RawMessage(simJSON)},
		{Op: "explode", Request: json.RawMessage(`{}`)},
	}}
	envelope, err := codec.Encode(&req)
	if err != nil {
		t.Fatal(err)
	}
	rec := doWire(t, h, "POST", "/v1/batch", string(envelope), MediaTypeBinary, MediaTypeBinary)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var resp codec.BatchResponse
	if err := codec.Decode(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Responses) != 4 {
		t.Fatalf("%d responses want 4", len(resp.Responses))
	}
	// Items 0 and 1 are the same check under different request codecs:
	// both binary response bodies, the second a hit on the first's entry.
	for i := 0; i < 2; i++ {
		r := resp.Responses[i]
		if r.Op != "check" || r.Status != http.StatusOK {
			t.Fatalf("item %d: %+v", i, r)
		}
		var cr checkResponse
		if err := codec.Decode(r.Body, &cr); err != nil {
			t.Fatalf("item %d body: %v", i, err)
		}
		if !cr.Report.Equivalent {
			t.Errorf("item %d: omega not equivalent: %+v", i, cr.Report)
		}
	}
	if resp.Responses[0].Cache != codec.CacheMiss || resp.Responses[1].Cache != codec.CacheHit {
		t.Errorf("cache attribution %d,%d want miss,hit",
			resp.Responses[0].Cache, resp.Responses[1].Cache)
	}
	var sr simulateResponse
	if err := codec.Decode(resp.Responses[2].Body, &sr); err != nil {
		t.Fatalf("simulate body: %v", err)
	}
	if sr.Model != "wave" || sr.Wave == nil || sr.Wave.Waves != 4 {
		t.Errorf("simulate item: %+v", sr)
	}
	// The unknown op fails positionally with a JSON error envelope.
	bad := resp.Responses[3]
	if bad.Status != http.StatusBadRequest || bad.Cache != codec.CacheNone {
		t.Fatalf("bad item: %+v", bad)
	}
	var we wireError
	if err := json.Unmarshal(bad.Body, &we); err != nil || we.Error.Code != CodeBadRequest {
		t.Errorf("bad item body not a JSON error envelope: %v: %s", err, bad.Body)
	}

	// A binary envelope may still ask for the JSON response envelope;
	// its spliced sub-bodies must match the all-JSON batch exactly.
	// Fresh handlers on both sides so cache attribution starts equal.
	jsonEnvelope := `{"requests":[{"op":"check","request":` + checkJSON + `},{"op":"simulate","request":` + simJSON + `}]}`
	h = newTestHandler()
	want := do(t, newTestHandler(), "POST", "/v1/batch", jsonEnvelope).Body.String()
	req2 := codec.BatchRequest{Requests: []codec.BatchItem{
		{Op: "check", Request: json.RawMessage(checkJSON)},
		{Op: "simulate", Request: json.RawMessage(simJSON)},
	}}
	envelope2, err := codec.Encode(&req2)
	if err != nil {
		t.Fatal(err)
	}
	got := doWire(t, h, "POST", "/v1/batch", string(envelope2), MediaTypeBinary, "")
	if got.Code != http.StatusOK || got.Body.String() != want {
		t.Errorf("bin>json batch (%d) differs from json>json batch:\n%s\nvs\n%s", got.Code, got.Body, want)
	}
	// The JSON envelope has no spelling for binary sub-items.
	rejected := do(t, h, "POST", "/v1/batch", `{"requests":[{"op":"check","request":{},"bin":true}]}`)
	if rejected.Code != http.StatusBadRequest {
		t.Errorf("JSON envelope with bin flag: status %d want 400", rejected.Code)
	}
}

// TestJobBinarySubmitAndResult pins the job plane's codec surface: a
// binary spec submits (the 202 status body stays JSON), and the result
// transcodes to binary on Accept, carrying the same manifest.
func TestJobBinarySubmitAndResult(t *testing.T) {
	s := mustServer(t, Config{})
	h := s.handler()
	binSpec, err := EncodeBinaryRequest("jobs", []byte(smallSweep))
	if err != nil {
		t.Fatal(err)
	}
	rec := doWire(t, h, "POST", "/v1/jobs", string(binSpec), MediaTypeBinary, "")
	if rec.Code != http.StatusAccepted {
		t.Fatalf("binary submit status %d: %s", rec.Code, rec.Body)
	}
	var st jobs.Status
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatalf("submit body not JSON: %v: %s", err, rec.Body)
	}
	awaitJob(t, h, st.ID)

	jsonRec := do(t, h, "GET", "/v1/jobs/"+st.ID+"/result", "")
	if jsonRec.Code != http.StatusOK {
		t.Fatalf("result status %d: %s", jsonRec.Code, jsonRec.Body)
	}
	var want jobs.Result
	if err := json.Unmarshal(jsonRec.Body.Bytes(), &want); err != nil {
		t.Fatal(err)
	}
	binRec := doWire(t, h, "GET", "/v1/jobs/"+st.ID+"/result", "", "", MediaTypeBinary)
	if binRec.Code != http.StatusOK {
		t.Fatalf("binary result status %d: %s", binRec.Code, binRec.Body)
	}
	if ct := binRec.Header().Get("Content-Type"); ct != MediaTypeBinary {
		t.Fatalf("binary result Content-Type %q", ct)
	}
	if len(binRec.Body.Bytes()) >= len(jsonRec.Body.Bytes()) {
		t.Errorf("binary manifest (%d B) not smaller than JSON (%d B)",
			binRec.Body.Len(), jsonRec.Body.Len())
	}
	var got jobs.Result
	if err := codec.Decode(binRec.Body.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("binary manifest differs:\ngot  %+v\nwant %+v", got, want)
	}
}

// TestJobResultETag pins the conditional-read contract of the result
// endpoint: a strong ETag per representation, If-None-Match replaying
// 304 with no body, and list/weak/star forms all matching.
func TestJobResultETag(t *testing.T) {
	s := mustServer(t, Config{})
	h := s.handler()
	id := submitJob(t, h, smallSweep)
	awaitJob(t, h, id)

	rec := do(t, h, "GET", "/v1/jobs/"+id+"/result", "")
	etag := rec.Header().Get("ETag")
	if rec.Code != http.StatusOK || etag == "" || !strings.HasPrefix(etag, `"`) {
		t.Fatalf("result status %d etag %q", rec.Code, etag)
	}
	// The binary representation has its own validator.
	binRec := doWire(t, h, "GET", "/v1/jobs/"+id+"/result", "", "", MediaTypeBinary)
	if binTag := binRec.Header().Get("ETag"); binTag == "" || binTag == etag {
		t.Fatalf("binary etag %q vs json %q: want distinct validators", binTag, etag)
	}

	for _, match := range []string{etag, `W/` + etag, `"miss", ` + etag, "*"} {
		req := httptest.NewRequest("GET", "/v1/jobs/"+id+"/result", nil)
		req.Header.Set("If-None-Match", match)
		cond := httptest.NewRecorder()
		h.ServeHTTP(cond, req)
		if cond.Code != http.StatusNotModified {
			t.Errorf("If-None-Match %q: status %d want 304", match, cond.Code)
			continue
		}
		if cond.Body.Len() != 0 {
			t.Errorf("If-None-Match %q: 304 carried a body", match)
		}
		if cond.Header().Get("ETag") != etag {
			t.Errorf("304 etag %q want %q", cond.Header().Get("ETag"), etag)
		}
	}
	// A stale validator re-downloads.
	req := httptest.NewRequest("GET", "/v1/jobs/"+id+"/result", nil)
	req.Header.Set("If-None-Match", `"00000000"`)
	fresh := httptest.NewRecorder()
	h.ServeHTTP(fresh, req)
	if fresh.Code != http.StatusOK || fresh.Body.String() != rec.Body.String() {
		t.Errorf("stale validator: status %d, body match %t", fresh.Code, fresh.Body.String() == rec.Body.String())
	}
}

// TestCodecMetrics pins the negotiation counters into /metrics.
func TestCodecMetrics(t *testing.T) {
	h := newTestHandler()
	doWire(t, h, "POST", "/v1/check", `{"network":"omega","stages":3}`, "", "")
	bin, err := EncodeBinaryRequest("check", []byte(`{"network":"omega","stages":3}`))
	if err != nil {
		t.Fatal(err)
	}
	doWire(t, h, "POST", "/v1/check", string(bin), MediaTypeBinary, MediaTypeBinary)
	rec := do(t, h, "GET", "/metrics", "")
	text := rec.Body.String()
	for _, want := range []string{
		`minserve_codec_requests_total{codec="json"} 1`,
		`minserve_codec_requests_total{codec="bin"} 1`,
		`minserve_codec_responses_total{codec="json"} 1`,
		`minserve_codec_responses_total{codec="bin"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}
