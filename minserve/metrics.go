package minserve

import (
	"bytes"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"minequiv/internal/jobs"
)

// The metrics layer is dependency-free Prometheus text exposition
// (format version 0.0.4): every handler is wrapped by the instrument
// middleware, which records per-endpoint request counters (labelled by
// status code), a latency histogram, and global bytes-in/out counters.
// The admission layer feeds the in-flight/queue gauges and the shed
// counter; writeErr's client-disconnect path is accounted as a
// synthetic 499 so dead clients never inflate the error series.

// durationBuckets are the histogram upper bounds, in seconds. They
// span the service's dynamic range: a warm cache hit (~microseconds)
// to a full simulation sweep (~seconds).
var durationBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
	0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// endpointStats is one endpoint's mutable slot; metrics.mu guards it.
type endpointStats struct {
	codes   map[int]uint64 // status code -> requests
	buckets []uint64       // non-cumulative histogram counts, +Inf implicit
	sum     float64        // seconds
	count   uint64
}

type metrics struct {
	inFlight     atomic.Int64
	inFlightPeak atomic.Int64
	queueDepth   atomic.Int64
	shed         atomic.Uint64
	disconnects  atomic.Uint64
	bytesIn      atomic.Uint64
	bytesOut     atomic.Uint64

	codecReqJSON  atomic.Uint64
	codecReqBin   atomic.Uint64
	codecRespJSON atomic.Uint64
	codecRespBin  atomic.Uint64

	mu        sync.Mutex
	endpoints map[string]*endpointStats
}

func newMetrics() *metrics {
	return &metrics{endpoints: make(map[string]*endpointStats)}
}

// enterInFlight bumps the gauge and folds the new value into the
// high-watermark (exposed so tests and operators can verify the
// configured concurrency bound is never exceeded).
func (m *metrics) enterInFlight() {
	n := m.inFlight.Add(1)
	for {
		peak := m.inFlightPeak.Load()
		if n <= peak || m.inFlightPeak.CompareAndSwap(peak, n) {
			return
		}
	}
}

func (m *metrics) leaveInFlight() { m.inFlight.Add(-1) }

// countWire accounts one negotiated work request's codec pair.
func (m *metrics) countWire(wi wire) {
	if wi.reqBin {
		m.codecReqBin.Add(1)
	} else {
		m.codecReqJSON.Add(1)
	}
	if wi.respBin {
		m.codecRespBin.Add(1)
	} else {
		m.codecRespJSON.Add(1)
	}
}

// record accounts one finished request.
func (m *metrics) record(endpoint string, status int, dur time.Duration, bytesIn, bytesOut int64) {
	if bytesIn > 0 {
		m.bytesIn.Add(uint64(bytesIn))
	}
	if bytesOut > 0 {
		m.bytesOut.Add(uint64(bytesOut))
	}
	if status == statusClientClosed {
		m.disconnects.Add(1)
	}
	sec := dur.Seconds()
	m.mu.Lock()
	defer m.mu.Unlock()
	es := m.endpoints[endpoint]
	if es == nil {
		es = &endpointStats{
			codes:   make(map[int]uint64),
			buckets: make([]uint64, len(durationBuckets)),
		}
		m.endpoints[endpoint] = es
	}
	es.codes[status]++
	es.sum += sec
	es.count++
	for i, bound := range durationBuckets {
		if sec <= bound {
			es.buckets[i]++
			break
		}
	}
	// Beyond the last bound the observation lands only in +Inf, which
	// is es.count.
}

// requestsTotal sums the per-endpoint counters (healthz reports it).
func (m *metrics) requestsTotal() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	var total uint64
	for _, es := range m.endpoints {
		for _, n := range es.codes {
			total += n
		}
	}
	return total
}

// statusClientClosed is the synthetic status recorded when a client
// disconnects before a response is written (nginx's 499 convention).
// It is never sent on the wire — there is no client left to send to.
const statusClientClosed = 499

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// render writes the full exposition. Families and label sets are
// emitted in sorted order so the output is deterministic.
func (m *metrics) render(buf *bytes.Buffer, cache CacheStats, js jobs.Stats) {
	m.mu.Lock()
	names := make([]string, 0, len(m.endpoints))
	for name := range m.endpoints {
		names = append(names, name)
	}
	sort.Strings(names)

	buf.WriteString("# HELP minserve_requests_total Requests served, by endpoint and status code (499 = client disconnected).\n")
	buf.WriteString("# TYPE minserve_requests_total counter\n")
	for _, name := range names {
		es := m.endpoints[name]
		codes := make([]int, 0, len(es.codes))
		for c := range es.codes {
			codes = append(codes, c)
		}
		sort.Ints(codes)
		for _, c := range codes {
			fmt.Fprintf(buf, "minserve_requests_total{endpoint=%q,code=\"%d\"} %d\n", name, c, es.codes[c])
		}
	}

	buf.WriteString("# HELP minserve_request_duration_seconds Request latency, by endpoint.\n")
	buf.WriteString("# TYPE minserve_request_duration_seconds histogram\n")
	for _, name := range names {
		es := m.endpoints[name]
		cum := uint64(0)
		for i, bound := range durationBuckets {
			cum += es.buckets[i]
			fmt.Fprintf(buf, "minserve_request_duration_seconds_bucket{endpoint=%q,le=%q} %d\n",
				name, formatFloat(bound), cum)
		}
		fmt.Fprintf(buf, "minserve_request_duration_seconds_bucket{endpoint=%q,le=\"+Inf\"} %d\n", name, es.count)
		fmt.Fprintf(buf, "minserve_request_duration_seconds_sum{endpoint=%q} %s\n", name, formatFloat(es.sum))
		fmt.Fprintf(buf, "minserve_request_duration_seconds_count{endpoint=%q} %d\n", name, es.count)
	}
	m.mu.Unlock()

	gauge := func(name, help string, value string) {
		fmt.Fprintf(buf, "# HELP %s %s\n# TYPE %s gauge\n%s %s\n", name, help, name, name, value)
	}
	counter := func(name, help string, value uint64) {
		fmt.Fprintf(buf, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, value)
	}

	gauge("minserve_in_flight", "Admitted work requests currently executing.",
		strconv.FormatInt(m.inFlight.Load(), 10))
	gauge("minserve_in_flight_peak", "High-watermark of minserve_in_flight since start.",
		strconv.FormatInt(m.inFlightPeak.Load(), 10))
	gauge("minserve_queue_depth", "Work requests waiting for an execution slot.",
		strconv.FormatInt(m.queueDepth.Load(), 10))
	counter("minserve_shed_total", "Requests rejected 429 by admission control.", m.shed.Load())
	counter("minserve_client_disconnects_total", "Requests abandoned by the client before a response was written.",
		m.disconnects.Load())
	counter("minserve_request_bytes_total", "Request body bytes received.", m.bytesIn.Load())
	counter("minserve_response_bytes_total", "Response body bytes written.", m.bytesOut.Load())

	buf.WriteString("# HELP minserve_codec_requests_total Work request bodies negotiated, by request codec.\n")
	buf.WriteString("# TYPE minserve_codec_requests_total counter\n")
	fmt.Fprintf(buf, "minserve_codec_requests_total{codec=\"json\"} %d\n", m.codecReqJSON.Load())
	fmt.Fprintf(buf, "minserve_codec_requests_total{codec=\"bin\"} %d\n", m.codecReqBin.Load())
	buf.WriteString("# HELP minserve_codec_responses_total Work responses negotiated, by response codec.\n")
	buf.WriteString("# TYPE minserve_codec_responses_total counter\n")
	fmt.Fprintf(buf, "minserve_codec_responses_total{codec=\"json\"} %d\n", m.codecRespJSON.Load())
	fmt.Fprintf(buf, "minserve_codec_responses_total{codec=\"bin\"} %d\n", m.codecRespBin.Load())

	counter("minserve_cache_hits_total", "Response cache hits (raw lookaside included).", cache.Hits)
	counter("minserve_cache_misses_total", "Response cache misses.", cache.Misses)
	ratio := 0.0
	if total := cache.Hits + cache.Misses; total > 0 {
		ratio = float64(cache.Hits) / float64(total)
	}
	gauge("minserve_cache_hit_ratio", "Cache hits over lookups since start (0 when idle).", formatFloat(ratio))
	gauge("minserve_cache_entries", "Response cache entries resident.", strconv.Itoa(cache.Entries))

	gauge("minserve_jobs_in_flight", "Live (pending or running) sweep jobs.",
		strconv.FormatInt(js.JobsInFlight, 10))
	counter("minserve_jobs_completed_total", "Jobs that reached done or degraded.", js.JobsCompleted)
	counter("minserve_jobs_failed_total", "Jobs that reached failed (every shard quarantined, or a corrupt checkpoint at resume).",
		js.JobsFailed)
	counter("minserve_job_shards_done_total", "Sweep shards completed and checkpointed.", js.ShardsDone)
	counter("minserve_job_shards_stolen_total", "Shard leases reclaimed from stalled or killed workers.", js.ShardsStolen)
	counter("minserve_job_shards_retried_total", "Shard attempts that failed and were backed off for retry.", js.ShardsRetried)
	counter("minserve_job_shards_quarantined_total", "Shards quarantined after exhausting their retry budget.",
		js.ShardsQuarantined)
	counter("minserve_job_checkpoint_bytes_total", "Bytes fsync'd into job checkpoint logs and manifests.", js.CheckpointBytes)
}

func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	buf := bodyPool.Get().(*bytes.Buffer)
	defer bodyPool.Put(buf)
	buf.Reset()
	s.metrics.render(buf, s.cache.stats(), s.jobs.Stats())
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(buf.Bytes())
}

// countingWriter observes what a handler wrote: the first status and
// the body byte count. A zero status after the handler returns means
// nothing was written at all (the client-disconnect bail path).
type countingWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (cw *countingWriter) WriteHeader(status int) {
	if cw.status == 0 {
		cw.status = status
	}
	cw.ResponseWriter.WriteHeader(status)
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	if cw.status == 0 {
		cw.status = http.StatusOK
	}
	n, err := cw.ResponseWriter.Write(p)
	cw.bytes += int64(n)
	return n, err
}

// Unwrap exposes the wrapped writer (the http.ResponseController
// convention), so streaming handlers can reach the server's Flusher
// through the instrumentation.
func (cw *countingWriter) Unwrap() http.ResponseWriter { return cw.ResponseWriter }

// instrument wraps the whole route table: it times every request,
// resolves the endpoint label from the matched ServeMux pattern, and
// classifies silent returns on a cancelled context as 499s.
func (s *server) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		cw := &countingWriter{ResponseWriter: w}
		next.ServeHTTP(cw, r)
		endpoint := r.Pattern
		if i := strings.IndexByte(endpoint, ' '); i >= 0 {
			endpoint = endpoint[i+1:]
		}
		if endpoint == "" {
			endpoint = "other" // unmatched path or method: mux's 404/405
		}
		status := cw.status
		if status == 0 {
			if r.Context().Err() != nil {
				status = statusClientClosed
			} else {
				status = http.StatusOK // handler wrote nothing; header-only 200
			}
		}
		reqBytes := r.ContentLength
		if reqBytes < 0 {
			reqBytes = 0
		}
		s.metrics.record(endpoint, status, time.Since(start), reqBytes, cw.bytes)
	})
}

// LintExposition validates Prometheus text exposition format (0.0.4):
// well-formed sample lines, HELP/TYPE comments preceding their family,
// no duplicate family declarations, no duplicate samples, and
// histogram families carrying a terminating +Inf bucket whose count
// matches _count. The serving-bench CI job and the metrics tests run
// it against live /metrics output.
func LintExposition(text []byte) error {
	typed := map[string]string{}      // family -> type
	helped := map[string]bool{}       // family -> HELP seen
	seen := map[string]bool{}         // full sample key (name+labels)
	infCount := map[string]uint64{}   // histogram family -> +Inf total per label set
	countCount := map[string]uint64{} // histogram family -> _count total per label set

	lineNo := 0
	for _, line := range strings.Split(string(text), "\n") {
		lineNo++
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				return fmt.Errorf("line %d: malformed comment %q", lineNo, line)
			}
			family := fields[2]
			if !validMetricName(family) {
				return fmt.Errorf("line %d: invalid family name %q", lineNo, family)
			}
			if fields[1] == "TYPE" {
				if len(fields) != 4 {
					return fmt.Errorf("line %d: TYPE without a type", lineNo)
				}
				switch fields[3] {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return fmt.Errorf("line %d: unknown type %q", lineNo, fields[3])
				}
				if _, dup := typed[family]; dup {
					return fmt.Errorf("line %d: duplicate TYPE for family %s", lineNo, family)
				}
				typed[family] = fields[3]
			} else {
				if helped[family] {
					return fmt.Errorf("line %d: duplicate HELP for family %s", lineNo, family)
				}
				helped[family] = true
			}
			continue
		}
		name, labels, value, err := parseSample(line)
		if err != nil {
			return fmt.Errorf("line %d: %v", lineNo, err)
		}
		family := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(name, suffix)
			if base != name && typed[base] == "histogram" {
				family = base
				break
			}
		}
		if _, ok := typed[family]; !ok {
			return fmt.Errorf("line %d: sample %s has no preceding TYPE", lineNo, name)
		}
		key := name + "{" + labels + "}"
		if seen[key] {
			return fmt.Errorf("line %d: duplicate sample %s", lineNo, key)
		}
		seen[key] = true
		if typed[family] == "histogram" {
			series := family + "{" + stripLabel(labels, "le") + "}"
			if strings.HasSuffix(name, "_bucket") && strings.Contains(labels, `le="+Inf"`) {
				infCount[series] = uint64(value)
			}
			if strings.HasSuffix(name, "_count") {
				countCount[series] = uint64(value)
			}
		}
	}
	for series, n := range countCount {
		inf, ok := infCount[series]
		if !ok {
			return fmt.Errorf("histogram series %s has no +Inf bucket", series)
		}
		if inf != n {
			return fmt.Errorf("histogram series %s: +Inf bucket %d != count %d", series, inf, n)
		}
	}
	for series := range infCount {
		if _, ok := countCount[series]; !ok {
			return fmt.Errorf("histogram series %s has +Inf bucket but no _count", series)
		}
	}
	return nil
}

func validMetricName(name string) bool {
	for i, r := range name {
		alpha := r == '_' || r == ':' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return name != ""
}

// parseSample splits `name{labels} value` (labels optional) and
// validates the pieces.
func parseSample(line string) (name, labels string, value float64, err error) {
	rest := line
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		name = rest[:i]
		j := strings.LastIndexByte(rest, '}')
		if j < i {
			return "", "", 0, fmt.Errorf("unbalanced braces in %q", line)
		}
		labels = rest[i+1 : j]
		rest = strings.TrimSpace(rest[j+1:])
		for _, pair := range splitLabels(labels) {
			eq := strings.IndexByte(pair, '=')
			if eq <= 0 || !validMetricName(pair[:eq]) {
				return "", "", 0, fmt.Errorf("malformed label %q in %q", pair, line)
			}
			v := pair[eq+1:]
			if len(v) < 2 || v[0] != '"' || v[len(v)-1] != '"' {
				return "", "", 0, fmt.Errorf("unquoted label value %q in %q", pair, line)
			}
		}
	} else {
		fields := strings.Fields(rest)
		if len(fields) != 2 {
			return "", "", 0, fmt.Errorf("malformed sample %q", line)
		}
		name, rest = fields[0], fields[1]
	}
	if !validMetricName(name) {
		return "", "", 0, fmt.Errorf("invalid metric name %q", name)
	}
	rest = strings.TrimSpace(rest)
	value, err = strconv.ParseFloat(rest, 64)
	if err != nil {
		return "", "", 0, fmt.Errorf("bad value %q in %q", rest, line)
	}
	return name, labels, value, nil
}

// splitLabels splits a label body on commas outside quotes.
func splitLabels(labels string) []string {
	if labels == "" {
		return nil
	}
	var out []string
	depth := false
	start := 0
	for i := 0; i < len(labels); i++ {
		switch labels[i] {
		case '"':
			if i == 0 || labels[i-1] != '\\' {
				depth = !depth
			}
		case ',':
			if !depth {
				out = append(out, labels[start:i])
				start = i + 1
			}
		}
	}
	return append(out, labels[start:])
}

// stripLabel removes one label pair from a label body (to key
// histogram series independent of their le label).
func stripLabel(labels, name string) string {
	parts := splitLabels(labels)
	out := parts[:0]
	for _, p := range parts {
		if !strings.HasPrefix(p, name+"=") {
			out = append(out, p)
		}
	}
	return strings.Join(out, ",")
}
