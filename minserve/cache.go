package minserve

import (
	"bytes"
	"container/list"
	"encoding/json"
	"net/http"
	"sync"
)

// CacheStats is the hit/miss accounting of the response cache, exposed
// at GET /v1/stats.
type CacheStats struct {
	Hits     uint64 `json:"hits"`
	Misses   uint64 `json:"misses"`
	Entries  int    `json:"entries"`
	Capacity int    `json:"capacity"`
}

// responseCache is a bounded LRU over fully-rendered 200-response
// bodies. Keys are derived from the network's canonical arc hash
// (min.Network.Fingerprint) plus the request parameters that shape the
// body, so two requests that build the same wiring — by catalog name or
// by explicit permutations — share an entry, and a hit replays the
// exact bytes a cold run would have produced.
//
// Each entry additionally remembers the first raw request body that
// produced it, per endpoint, in a lookaside index: a repeat of the
// exact byte sequence replays the response without JSON decoding, key
// rendering, or even building the network. The index is bounded by the
// LRU itself (one raw body per entry, each capped by MaxBodyBytes) and
// is pruned on eviction.
type responseCache struct {
	mu       sync.Mutex
	capacity int
	ll       *list.List // front = most recently used
	items    map[string]*list.Element
	raw      map[string]map[string]*list.Element // endpoint -> raw body -> entry
	hits     uint64
	misses   uint64
}

type cacheEntry struct {
	key      string
	body     []byte
	endpoint string // raw-lookaside index coordinates; "" when unindexed
	raw      string
}

// newResponseCache returns a cache bounded to capacity entries, or nil
// (caching disabled) when capacity < 1.
func newResponseCache(capacity int) *responseCache {
	if capacity < 1 {
		return nil
	}
	return &responseCache{
		capacity: capacity,
		ll:       list.New(),
		items:    make(map[string]*list.Element, capacity),
		raw:      make(map[string]map[string]*list.Element),
	}
}

// get returns the cached body for key and records a hit or miss. The
// returned slice must not be mutated.
func (c *responseCache) get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).body, true
}

// getRaw answers from the raw-request lookaside. A miss here is not
// counted: the caller falls through to the canonical get, which does
// the accounting, so totals match the pre-lookaside behaviour. The
// body-keyed map lookup compiles to a no-copy string conversion.
func (c *responseCache) getRaw(endpoint string, body []byte) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.raw[endpoint][string(body)]
	if !ok {
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).body, true
}

// put stores body under key, evicting from the least-recently-used end
// once the bound is reached. When rawBody is non-nil and the entry is
// not yet raw-indexed, the bytes are copied into the endpoint's
// lookaside so an identical future request can skip parsing entirely.
func (c *responseCache) put(key, endpoint string, rawBody, body []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		e := el.Value.(*cacheEntry)
		e.body = body
		c.ll.MoveToFront(el)
		c.indexRaw(el, endpoint, rawBody)
		return
	}
	el := c.ll.PushFront(&cacheEntry{key: key, body: body})
	c.items[key] = el
	c.indexRaw(el, endpoint, rawBody)
	for c.ll.Len() > c.capacity {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		e := oldest.Value.(*cacheEntry)
		delete(c.items, e.key)
		if e.raw != "" {
			delete(c.raw[e.endpoint], e.raw)
		}
	}
}

// indexRaw records el under the endpoint's raw lookaside (first raw
// form wins; later spellings of the same request just miss the fast
// path). Callers hold c.mu.
func (c *responseCache) indexRaw(el *list.Element, endpoint string, rawBody []byte) {
	e := el.Value.(*cacheEntry)
	if rawBody == nil || e.raw != "" {
		return
	}
	m := c.raw[endpoint]
	if m == nil {
		m = make(map[string]*list.Element)
		c.raw[endpoint] = m
	}
	e.endpoint, e.raw = endpoint, string(rawBody)
	m[e.raw] = el
}

// stats snapshots the counters.
func (c *responseCache) stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Hits: c.hits, Misses: c.misses, Entries: c.ll.Len(), Capacity: c.capacity}
}

// encodeJSON renders v exactly as writeJSON does (json.Encoder with its
// trailing newline), so cached bytes are indistinguishable from a cold
// encode of the same value.
func encodeJSON(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Shared header value slices, assigned into the header map directly:
// Header().Set allocates a fresh one-element slice per call, which is
// the only allocation a fully warm hit would otherwise make in the
// writer. The slices are never mutated. Keys are in canonical form.
var (
	headerJSON = []string{"application/json"}
	headerHit  = []string{"HIT"}
	headerMiss = []string{"MISS"}
)

// writeJSONBytes writes a pre-rendered JSON body. xCache stamps the
// X-Cache header (headerHit/headerMiss, nil to omit) on cacheable
// endpoints; headers do not participate in the byte-identity contract,
// only bodies do.
func writeJSONBytes(w http.ResponseWriter, status int, body []byte, xCache []string) {
	h := w.Header()
	h["Content-Type"] = headerJSON
	if xCache != nil {
		h["X-Cache"] = xCache
	}
	w.WriteHeader(status)
	_, _ = w.Write(body)
}

// computeCached answers from the cache when possible; otherwise it runs
// compute, renders it through render (the negotiated response codec),
// and caches the body (raw-indexing it under rawBody when non-nil). It
// returns the response bytes and whether the cache answered, so both
// the single handlers and the batch endpoint share one execution path.
// Only successful responses are cached — errors stay uncached. Callers
// fold the codec into key and endpoint, so a hit always replays bytes
// rendered the way this request asked for.
func (s *server) computeCached(key, endpoint string, rawBody []byte, render func(any) ([]byte, error), compute func() (any, error)) ([]byte, bool, error) {
	if s.cache != nil {
		if body, ok := s.cache.get(key); ok {
			return body, true, nil
		}
	}
	v, err := compute()
	if err != nil {
		return nil, false, err
	}
	body, err := render(v)
	if err != nil {
		return nil, false, err
	}
	if s.cache != nil {
		s.cache.put(key, endpoint, rawBody, body)
	}
	return body, false, nil
}
