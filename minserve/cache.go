package minserve

import (
	"bytes"
	"container/list"
	"encoding/json"
	"net/http"
	"sync"
)

// CacheStats is the hit/miss accounting of the response cache, exposed
// at GET /v1/stats.
type CacheStats struct {
	Hits     uint64 `json:"hits"`
	Misses   uint64 `json:"misses"`
	Entries  int    `json:"entries"`
	Capacity int    `json:"capacity"`
}

// responseCache is a bounded LRU over fully-rendered 200-response
// bodies. Keys are derived from the network's canonical arc hash
// (min.Network.Fingerprint) plus the request parameters that shape the
// body, so two requests that build the same wiring — by catalog name or
// by explicit permutations — share an entry, and a hit replays the
// exact bytes a cold run would have produced.
type responseCache struct {
	mu       sync.Mutex
	capacity int
	ll       *list.List // front = most recently used
	items    map[string]*list.Element
	hits     uint64
	misses   uint64
}

type cacheEntry struct {
	key  string
	body []byte
}

// newResponseCache returns a cache bounded to capacity entries, or nil
// (caching disabled) when capacity < 1.
func newResponseCache(capacity int) *responseCache {
	if capacity < 1 {
		return nil
	}
	return &responseCache{
		capacity: capacity,
		ll:       list.New(),
		items:    make(map[string]*list.Element, capacity),
	}
}

// get returns the cached body for key and records a hit or miss. The
// returned slice must not be mutated.
func (c *responseCache) get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).body, true
}

// put stores body under key, evicting from the least-recently-used end
// once the bound is reached.
func (c *responseCache) put(key string, body []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*cacheEntry).body = body
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, body: body})
	for c.ll.Len() > c.capacity {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
	}
}

// stats snapshots the counters.
func (c *responseCache) stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Hits: c.hits, Misses: c.misses, Entries: c.ll.Len(), Capacity: c.capacity}
}

// encodeJSON renders v exactly as writeJSON does (json.Encoder with its
// trailing newline), so cached bytes are indistinguishable from a cold
// encode of the same value.
func encodeJSON(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// writeJSONBytes writes a pre-rendered JSON body. xCache stamps the
// X-Cache header (HIT or MISS) on cacheable endpoints; headers do not
// participate in the byte-identity contract, only bodies do.
func writeJSONBytes(w http.ResponseWriter, status int, body []byte, xCache string) {
	w.Header().Set("Content-Type", "application/json")
	if xCache != "" {
		w.Header().Set("X-Cache", xCache)
	}
	w.WriteHeader(status)
	_, _ = w.Write(body)
}

// serveCached answers from the cache when possible; otherwise it runs
// compute, caches the rendered body, and serves it. Only successful
// responses are cached — errors stay on the uncached writeErr path.
func (s *server) serveCached(w http.ResponseWriter, r *http.Request, key string, compute func() (any, error)) {
	if s.cache != nil {
		if body, ok := s.cache.get(key); ok {
			writeJSONBytes(w, http.StatusOK, body, "HIT")
			return
		}
	}
	v, err := compute()
	if err != nil {
		writeErr(w, r, err)
		return
	}
	body, err := encodeJSON(v)
	if err != nil {
		writeErr(w, r, err)
		return
	}
	if s.cache != nil {
		s.cache.put(key, body)
		writeJSONBytes(w, http.StatusOK, body, "MISS")
		return
	}
	writeJSONBytes(w, http.StatusOK, body, "")
}
