package minserve

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// TestStressBatchCheckConcurrent hammers /v1/batch and /v1/check
// concurrently against one deliberately tiny cache (entries churn and
// evict under load), asserting two invariants under -race:
//
//  1. Byte determinism: every response body, single or batch item, is
//     byte-identical to the reference computed serially on a fresh
//     server — regardless of interleaving, eviction, or which goroutine
//     populated the cache.
//  2. Accounting consistency: every check/route execution is counted as
//     exactly one cache hit or miss (the raw lookaside and the keyed
//     path never double- or under-count), and the entry count never
//     exceeds the configured capacity.
func TestStressBatchCheckConcurrent(t *testing.T) {
	// A distinct request per index; 8 distinct requests churning a
	// 4-entry cache forces steady eviction.
	reqFor := func(i int) string {
		return fmt.Sprintf(`{"network":"omega","stages":%d}`, 3+(i%8))
	}
	// Serial reference bodies (cache disabled: pure computation).
	ref := make(map[string]string)
	refH := NewHandler(Config{CacheEntries: -1})
	for i := 0; i < 8; i++ {
		body := reqFor(i)
		rec := do(t, refH, "POST", "/v1/check", body)
		if rec.Code != http.StatusOK {
			t.Fatalf("reference %s: %d", body, rec.Code)
		}
		ref[body] = rec.Body.String()
	}

	s := mustServer(t, Config{CacheEntries: 4})
	h := s.handler()
	const (
		workers    = 8
		iterations = 60
		batchSize  = 5
	)
	var execs atomic.Uint64 // check executions (single + batch items)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for it := 0; it < iterations; it++ {
				i := w*iterations + it
				if i%3 == 0 {
					// Batch of batchSize checks, staggered indices.
					var items []string
					for j := 0; j < batchSize; j++ {
						items = append(items, fmt.Sprintf(`{"op":"check","request":%s}`, reqFor(i+j)))
					}
					body := `{"requests":[` + strings.Join(items, ",") + `]}`
					req := httptest.NewRequest("POST", "/v1/batch", strings.NewReader(body))
					rec := httptest.NewRecorder()
					h.ServeHTTP(rec, req)
					if rec.Code != http.StatusOK {
						t.Errorf("batch status %d: %s", rec.Code, rec.Body)
						return
					}
					execs.Add(batchSize)
					// Every sub-body must equal its serial reference.
					got := rec.Body.String()
					for j := 0; j < batchSize; j++ {
						want := strings.TrimSuffix(ref[reqFor(i+j)], "\n")
						if !strings.Contains(got, `,"body":`+want+`}`) {
							t.Errorf("batch item %d body diverged under load", j)
							return
						}
					}
				} else {
					body := reqFor(i)
					req := httptest.NewRequest("POST", "/v1/check", strings.NewReader(body))
					rec := httptest.NewRecorder()
					h.ServeHTTP(rec, req)
					if rec.Code != http.StatusOK {
						t.Errorf("check status %d: %s", rec.Code, rec.Body)
						return
					}
					execs.Add(1)
					if got := rec.Body.String(); got != ref[body] {
						t.Errorf("single body diverged under load:\ngot  %swant %s", got, ref[body])
						return
					}
					if xc := rec.Header().Get("X-Cache"); xc != "HIT" && xc != "MISS" {
						t.Errorf("X-Cache %q", xc)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()

	st := s.cache.stats()
	if st.Hits+st.Misses != execs.Load() {
		t.Errorf("accounting drift: hits %d + misses %d != executions %d",
			st.Hits, st.Misses, execs.Load())
	}
	if st.Entries > st.Capacity {
		t.Errorf("cache entries %d exceed capacity %d", st.Entries, st.Capacity)
	}
	if st.Hits == 0 || st.Misses == 0 {
		t.Errorf("degenerate stress run: hits %d misses %d", st.Hits, st.Misses)
	}
}
