package minserve

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"net/http"
	"strconv"
	"strings"
	"time"

	"minequiv/internal/codec"
	"minequiv/internal/jobs"
)

// The job endpoints expose the internal/jobs plane. Submission goes
// through admission with the other POST work; every read — status,
// result, events — is registered directly on the mux so a client
// polling a long sweep is never shed while the synchronous plane is
// saturated.

// jobErr maps the job plane's sentinel errors onto wire codes. Spec
// validation failures (anything unrecognized) surface as plain 400s.
func jobErr(err error) error {
	switch {
	case errors.Is(err, jobs.ErrNotFound):
		return &httpError{status: http.StatusNotFound, code: CodeJobNotFound, msg: err.Error()}
	case errors.Is(err, jobs.ErrNotReady):
		return &httpError{status: http.StatusConflict, code: CodeJobNotReady, msg: err.Error()}
	case errors.Is(err, jobs.ErrQuarantined):
		return &httpError{status: http.StatusInternalServerError, code: CodeJobQuarantined, msg: err.Error()}
	case errors.Is(err, jobs.ErrCorrupt):
		return &httpError{status: http.StatusInternalServerError, code: CodeCheckpointCorrupt, msg: err.Error()}
	case errors.Is(err, jobs.ErrTooManyJobs):
		return errOverloaded
	case errors.Is(err, jobs.ErrClosed):
		return &httpError{status: http.StatusServiceUnavailable, code: CodeOverloaded, msg: err.Error()}
	default:
		return &httpError{status: http.StatusBadRequest, code: CodeBadRequest, msg: err.Error()}
	}
}

// checkJobSpec applies the serving layer's resource policy before the
// spec reaches the scheduler: the job plane validates meaning, the
// server validates size.
func (s *server) checkJobSpec(spec jobs.Spec) error {
	if spec.Stages < 2 {
		return badRequest("stages must be in [2,%d], got %d", s.cfg.MaxStages, spec.Stages)
	}
	if spec.Stages > s.cfg.MaxStages {
		return limitExceeded("stages must be in [2,%d], got %d", s.cfg.MaxStages, spec.Stages)
	}
	if spec.TrialsPerCell > s.cfg.MaxTrials {
		return limitExceeded("trialsPerCell must be <= %d, got %d", s.cfg.MaxTrials, spec.TrialsPerCell)
	}
	// Count cells as normalization will (empty lists become singletons).
	nets := len(spec.Networks)
	loads := max(len(spec.Loads), 1)
	rates := max(len(spec.FaultRates), 1)
	if cells := nets * loads * rates; cells > s.cfg.MaxJobCells {
		return limitExceeded("sweep spans %d cells, limit %d", cells, s.cfg.MaxJobCells)
	}
	return nil
}

// handleJobSubmit is POST /v1/jobs (dispatched through handleWork, so
// submissions compete for admission slots with the synchronous work).
// The spec body negotiates its codec like the other work endpoints;
// the 202 status response stays JSON — submission is not a hot path,
// and the Location header is the part a client machine-reads.
func (s *server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	wi, err := s.negotiate(r)
	if err != nil {
		writeErr(w, r, err)
		return
	}
	body, release, err := s.readBody(w, r)
	if err != nil {
		writeErr(w, r, err)
		return
	}
	defer release()
	var spec jobs.Spec
	if err := decodeRequest(wi, body, &spec); err != nil {
		writeErr(w, r, err)
		return
	}
	if err := s.checkJobSpec(spec); err != nil {
		writeErr(w, r, err)
		return
	}
	id, err := s.jobs.Submit(spec)
	if err != nil {
		writeErr(w, r, jobErr(err))
		return
	}
	st, err := s.jobs.Get(id)
	if err != nil { // unreachable: a just-submitted job is resident
		writeErr(w, r, jobErr(err))
		return
	}
	w.Header().Set("Location", "/v1/jobs/"+id)
	writeJSON(w, http.StatusAccepted, st)
}

// jobListResponse is the GET /v1/jobs body.
type jobListResponse struct {
	Jobs []jobs.Status `json:"jobs"`
}

func (s *server) handleJobList(w http.ResponseWriter, r *http.Request) {
	list := s.jobs.List()
	if list == nil {
		list = []jobs.Status{}
	}
	writeJSON(w, http.StatusOK, jobListResponse{Jobs: list})
}

func (s *server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	st, err := s.jobs.Get(r.PathValue("id"))
	if err != nil {
		writeErr(w, r, jobErr(err))
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// handleJobResult serves the finalized result: by default the manifest
// bytes verbatim — identical across restarts and re-reads — or, when
// the client Accepts application/x-min-bin, the manifest transcoded to
// one binary JobResult frame (equally byte-stable: the frame is a pure
// function of the manifest). Either representation carries a strong
// ETag (CRC of the served bytes), and If-None-Match answers 304 so
// pollers of a large finished sweep stop re-downloading it.
func (s *server) handleJobResult(w http.ResponseWriter, r *http.Request) {
	data, err := s.jobs.Result(r.PathValue("id"))
	if err != nil {
		writeErr(w, r, jobErr(err))
		return
	}
	bin := acceptsBinary(r)
	if bin {
		var res jobs.Result
		if err := json.Unmarshal(data, &res); err != nil {
			writeErr(w, r, &httpError{status: http.StatusInternalServerError, code: CodeInternal,
				msg: fmt.Sprintf("result manifest unreadable: %v", err)})
			return
		}
		if data, err = codec.Encode(&res); err != nil {
			writeErr(w, r, &httpError{status: http.StatusInternalServerError, code: CodeInternal, msg: err.Error()})
			return
		}
	}
	etag := fmt.Sprintf("\"%08x\"", crc32.ChecksumIEEE(data))
	h := w.Header()
	h.Set("ETag", etag)
	if match := r.Header.Get("If-None-Match"); match != "" && etagMatches(match, etag) {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	if bin {
		h["Content-Type"] = headerBin
	} else {
		h.Set("Content-Type", "application/json")
	}
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(data)
}

// etagMatches implements If-None-Match: a comma-separated list of
// entity tags (weak validators compare by opaque tag), or "*".
func etagMatches(header, etag string) bool {
	for _, part := range strings.Split(header, ",") {
		part = strings.TrimPrefix(strings.TrimSpace(part), "W/")
		if part == "*" || part == etag {
			return true
		}
	}
	return false
}

func (s *server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if err := s.jobs.Cancel(id); err != nil {
		writeErr(w, r, jobErr(err))
		return
	}
	st, err := s.jobs.Get(id)
	if err != nil {
		writeErr(w, r, jobErr(err))
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// maxEventWait caps a long-poll's waitMs so a forgotten client cannot
// pin a handler goroutine for hours.
const maxEventWait = 60 * time.Second

// eventsResponse is the long-poll body: the buffered events after the
// cursor and the cursor to pass next time.
type eventsResponse struct {
	Events []jobs.Event `json:"events"`
	Next   int64        `json:"next"`
}

// handleJobEvents is GET /v1/jobs/{id}/events. Clients that Accept
// text/event-stream get SSE; everyone else gets one JSON page,
// optionally blocking up to waitMs for news past ?since=N. Both forms
// write nothing until there is something to say, so a client that
// disconnects while waiting is accounted as a 499, not a 200.
func (s *server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	since, err := eventCursor(r)
	if err != nil {
		writeErr(w, r, err)
		return
	}
	if wantsSSE(r) {
		s.streamJobEvents(w, r, id, since)
		return
	}
	s.longPollJobEvents(w, r, id, since)
}

// eventCursor resolves the resume cursor: ?since=N, or the standard
// Last-Event-ID header an EventSource sends on reconnect.
func eventCursor(r *http.Request) (int64, error) {
	raw := r.URL.Query().Get("since")
	if raw == "" {
		raw = r.Header.Get("Last-Event-ID")
	}
	if raw == "" {
		return 0, nil
	}
	since, err := strconv.ParseInt(raw, 10, 64)
	if err != nil || since < 0 {
		return 0, badRequest("since must be a non-negative integer, got %q", raw)
	}
	return since, nil
}

// flusherFor finds the Flusher behind any chain of Unwrap-able
// response-writer wrappers (the instrument middleware's counting
// writer is one). Flushing the inner writer is safe: the frames
// themselves still pass through the wrappers.
func flusherFor(w http.ResponseWriter) http.Flusher {
	for {
		if f, ok := w.(http.Flusher); ok {
			return f
		}
		u, ok := w.(interface{ Unwrap() http.ResponseWriter })
		if !ok {
			return nil
		}
		w = u.Unwrap()
	}
}

// wantsSSE checks the Accept header for text/event-stream (media
// parameters like ;q= are ignored).
func wantsSSE(r *http.Request) bool {
	for _, accept := range r.Header.Values("Accept") {
		for _, part := range strings.Split(accept, ",") {
			media, _, _ := strings.Cut(part, ";")
			if strings.TrimSpace(media) == "text/event-stream" {
				return true
			}
		}
	}
	return false
}

func (s *server) longPollJobEvents(w http.ResponseWriter, r *http.Request, id string, since int64) {
	wait := time.Duration(0)
	if raw := r.URL.Query().Get("waitMs"); raw != "" {
		ms, err := strconv.ParseInt(raw, 10, 64)
		if err != nil || ms < 0 {
			writeErr(w, r, badRequest("waitMs must be a non-negative integer, got %q", raw))
			return
		}
		wait = min(time.Duration(ms)*time.Millisecond, maxEventWait)
	}
	evs, next, changed, jerr := s.jobs.Events(id, since)
	if jerr != nil {
		writeErr(w, r, jobErr(jerr))
		return
	}
	if len(evs) == 0 && wait > 0 {
		timer := time.NewTimer(wait)
		select {
		case <-r.Context().Done():
			timer.Stop()
			return // nothing written: instrument records the 499
		case <-timer.C:
		case <-changed:
			timer.Stop()
		}
		evs, next, _, jerr = s.jobs.Events(id, since)
		if jerr != nil {
			writeErr(w, r, jobErr(jerr))
			return
		}
	}
	if evs == nil {
		evs = []jobs.Event{}
	}
	writeJSON(w, http.StatusOK, eventsResponse{Events: evs, Next: next})
}

// streamJobEvents is the SSE path: each event is one `id:`/`data:`
// frame, flushed immediately. The stream ends when the job reaches a
// terminal state (after its final event is delivered) or the client
// goes away. Headers are deferred until the first frame so a client
// that disconnects having received nothing is a 499.
func (s *server) streamJobEvents(w http.ResponseWriter, r *http.Request, id string, since int64) {
	flusher := flusherFor(w)
	if flusher == nil {
		s.longPollJobEvents(w, r, id, since)
		return
	}
	doneCh, jerr := s.jobs.Done(id)
	if jerr != nil {
		writeErr(w, r, jobErr(jerr))
		return
	}
	wrote := false
	emit := func(evs []jobs.Event) error {
		for _, ev := range evs {
			if !wrote {
				h := w.Header()
				h.Set("Content-Type", "text/event-stream")
				h.Set("Cache-Control", "no-store")
				h.Set("X-Accel-Buffering", "no")
				wrote = true
			}
			data, err := json.Marshal(ev)
			if err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "id: %d\ndata: %s\n\n", ev.Seq, data); err != nil {
				return err
			}
			flusher.Flush()
		}
		return nil
	}
	for {
		evs, next, changed, jerr := s.jobs.Events(id, since)
		if jerr != nil {
			if !wrote {
				writeErr(w, r, jobErr(jerr))
			}
			return
		}
		if emit(evs) != nil {
			return
		}
		since = next
		select {
		case <-r.Context().Done():
			return
		case <-changed:
		case <-doneCh:
			// Terminal: drain whatever landed after the read above (the
			// final state event publishes before doneCh closes, so it is
			// either already emitted or in this last page) and finish.
			evs, _, _, jerr := s.jobs.Events(id, since)
			if jerr == nil {
				_ = emit(evs)
			}
			return
		}
	}
}
