package minserve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"testing"
)

func cacheStats(t *testing.T, h http.Handler) CacheStats {
	t.Helper()
	rec := do(t, h, "GET", "/v1/stats", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("/v1/stats: status %d", rec.Code)
	}
	var resp statsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("/v1/stats body: %v", err)
	}
	return resp.Cache
}

// TestCacheHitBytesIdentical: the warm response must be byte-for-byte
// the cold response, for /v1/check (with and without iso) and
// /v1/route, with X-Cache reporting what happened.
func TestCacheHitBytesIdentical(t *testing.T) {
	h := newTestHandler()
	for _, body := range []struct{ path, body string }{
		{"/v1/check", `{"network":"omega","stages":5}`},
		{"/v1/check", `{"network":"baseline","stages":5,"iso":true}`},
		{"/v1/check", `{"network":"tail-cycle","stages":4}`},
		{"/v1/route", `{"network":"flip","stages":4,"src":3,"dst":11}`},
	} {
		cold := do(t, h, "POST", body.path, body.body)
		if cold.Code != http.StatusOK {
			t.Fatalf("%s cold: status %d: %s", body.path, cold.Code, cold.Body.String())
		}
		if got := cold.Header().Get("X-Cache"); got != "MISS" {
			t.Errorf("%s cold: X-Cache=%q, want MISS", body.path, got)
		}
		warm := do(t, h, "POST", body.path, body.body)
		if warm.Code != http.StatusOK {
			t.Fatalf("%s warm: status %d", body.path, warm.Code)
		}
		if got := warm.Header().Get("X-Cache"); got != "HIT" {
			t.Errorf("%s warm: X-Cache=%q, want HIT", body.path, got)
		}
		if cold.Body.String() != warm.Body.String() {
			t.Errorf("%s: warm body differs from cold:\ncold %s\nwarm %s",
				body.path, cold.Body.String(), warm.Body.String())
		}
	}
	st := cacheStats(t, h)
	if st.Hits != 4 || st.Misses != 4 || st.Entries != 4 {
		t.Errorf("stats after 4 cold + 4 warm: %+v", st)
	}
	if st.Capacity != 256 {
		t.Errorf("default capacity %d, want 256", st.Capacity)
	}
}

// TestCacheKeyDiscriminates: requests that must not share a body must
// not share an entry — the iso flag, the pair, and the network name all
// participate in the key.
func TestCacheKeyDiscriminates(t *testing.T) {
	h := newTestHandler()
	plain := do(t, h, "POST", "/v1/check", `{"network":"omega","stages":4}`)
	withIso := do(t, h, "POST", "/v1/check", `{"network":"omega","stages":4,"iso":true}`)
	if withIso.Header().Get("X-Cache") != "MISS" {
		t.Error("iso=true served from the iso=false entry")
	}
	if plain.Body.String() == withIso.Body.String() {
		t.Error("iso response identical to plain response")
	}
	a := do(t, h, "POST", "/v1/route", `{"network":"omega","stages":4,"src":0,"dst":5}`)
	b := do(t, h, "POST", "/v1/route", `{"network":"omega","stages":4,"src":0,"dst":6}`)
	if b.Header().Get("X-Cache") != "MISS" {
		t.Error("distinct pair served from cache")
	}
	if a.Body.String() == b.Body.String() {
		t.Error("distinct pairs produced identical bodies")
	}
}

// TestCacheSharedAcrossSpecForms: the key is the canonical arc hash, so
// defining the same wiring twice — same name, one time by catalog and
// one time by explicit link permutations — hits the same entry.
func TestCacheSharedAcrossSpecForms(t *testing.T) {
	h := newTestHandler()
	cold := do(t, h, "POST", "/v1/check", `{"network":"omega","stages":3}`)
	if cold.Header().Get("X-Cache") != "MISS" {
		t.Fatal("first request should miss")
	}
	// Omega n=3 is the perfect shuffle on 3-bit link labels at both
	// stages: perm[x] = rotate-left-1 of x.
	shuffle := "[0,2,4,6,1,3,5,7]"
	byPerms := do(t, h, "POST", "/v1/check",
		fmt.Sprintf(`{"network":"omega","stages":3,"linkPerms":[%s,%s]}`, shuffle, shuffle))
	if byPerms.Code != http.StatusOK {
		t.Fatalf("linkPerms build failed: %s", byPerms.Body.String())
	}
	if got := byPerms.Header().Get("X-Cache"); got != "HIT" {
		t.Errorf("identical wiring via linkPerms: X-Cache=%q, want HIT", got)
	}
	if cold.Body.String() != byPerms.Body.String() {
		t.Error("same wiring, different bodies")
	}
}

// TestCacheEvictsAtBound: with capacity 2, a third distinct topology
// evicts the least recently used entry.
func TestCacheEvictsAtBound(t *testing.T) {
	h := NewHandler(Config{CacheEntries: 2})
	req := func(name string, stages int) string {
		return fmt.Sprintf(`{"network":%q,"stages":%d}`, name, stages)
	}
	do(t, h, "POST", "/v1/check", req("omega", 3))    // {omega}
	do(t, h, "POST", "/v1/check", req("baseline", 3)) // {omega, baseline}
	do(t, h, "POST", "/v1/check", req("omega", 3))    // hit; omega now MRU
	do(t, h, "POST", "/v1/check", req("flip", 3))     // evicts baseline
	st := cacheStats(t, h)
	if st.Entries != 2 || st.Capacity != 2 {
		t.Fatalf("entries=%d capacity=%d, want 2/2", st.Entries, st.Capacity)
	}
	if rec := do(t, h, "POST", "/v1/check", req("omega", 3)); rec.Header().Get("X-Cache") != "HIT" {
		t.Error("MRU entry evicted")
	}
	if rec := do(t, h, "POST", "/v1/check", req("baseline", 3)); rec.Header().Get("X-Cache") != "MISS" {
		t.Error("LRU entry survived past the bound")
	}
}

// TestCacheDisabled: negative CacheEntries turns caching off entirely;
// the responses still work and stats stay zero.
func TestCacheDisabled(t *testing.T) {
	h := NewHandler(Config{CacheEntries: -1})
	body := `{"network":"omega","stages":4}`
	first := do(t, h, "POST", "/v1/check", body)
	second := do(t, h, "POST", "/v1/check", body)
	if first.Code != http.StatusOK || second.Code != http.StatusOK {
		t.Fatalf("statuses %d/%d", first.Code, second.Code)
	}
	if first.Header().Get("X-Cache") != "" || second.Header().Get("X-Cache") != "" {
		t.Error("X-Cache header present with caching disabled")
	}
	if first.Body.String() != second.Body.String() {
		t.Error("uncached responses not deterministic")
	}
	if st := cacheStats(t, h); st != (CacheStats{}) {
		t.Errorf("disabled cache reported stats %+v", st)
	}
}

// TestCacheErrorsNotCached: failed builds and bad requests never enter
// the cache.
func TestCacheErrorsNotCached(t *testing.T) {
	h := newTestHandler()
	bad := `{"network":"no-such-network","stages":4}`
	if rec := do(t, h, "POST", "/v1/check", bad); rec.Code == http.StatusOK {
		t.Fatal("bad network accepted")
	}
	if st := cacheStats(t, h); st.Entries != 0 {
		t.Errorf("error response cached: %+v", st)
	}
}
