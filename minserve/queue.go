package minserve

import (
	"context"
	"net/http"
	"strconv"
	"time"
)

// Admission control: the POST endpoints do real work (analysis,
// routing, simulation), so they are funneled through a bounded
// execution pool. MaxConcurrent requests execute at once; up to
// MaxQueueDepth more may wait, each for at most QueueWait; everything
// beyond that is shed immediately with 429 + Retry-After. An optional
// per-request deadline (RequestTimeout) covers both the queue wait and
// the work itself, so an overloaded box degrades predictably — excess
// load turns into fast, retryable rejections instead of a convoy of
// slow requests that eventually time out client-side.
//
// GET endpoints (healthz, metrics, limits, networks, stats) bypass
// admission entirely: observability must stay reachable exactly when
// the work plane is saturated.

// admission is the bounded work pool; nil disables admission.
type admission struct {
	slots      chan struct{} // counting semaphore, cap = MaxConcurrent
	maxQueue   int64         // waiters allowed beyond the executing set
	wait       time.Duration // longest a request may queue; <=0: no wait
	retryAfter string        // Retry-After seconds for shed responses
}

func newAdmission(cfg Config) *admission {
	if cfg.MaxConcurrent < 0 {
		return nil
	}
	retry := int64(1)
	if s := int64(cfg.QueueWait / time.Second); s > retry {
		retry = s
	}
	return &admission{
		slots:      make(chan struct{}, cfg.MaxConcurrent),
		maxQueue:   int64(cfg.MaxQueueDepth),
		wait:       cfg.QueueWait,
		retryAfter: strconv.FormatInt(retry, 10),
	}
}

// admit wraps a work handler with the deadline and the bounded queue.
func (s *server) admit(next http.Handler) http.Handler {
	if s.adm == nil && s.cfg.RequestTimeout <= 0 {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if s.cfg.RequestTimeout > 0 {
			ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
			defer cancel()
			r = r.WithContext(ctx)
		}
		a := s.adm
		if a == nil {
			next.ServeHTTP(w, r)
			return
		}
		// Fast path: a free slot admits without touching the queue.
		select {
		case a.slots <- struct{}{}:
		default:
			if !a.enqueue(s, w, r) {
				return
			}
		}
		s.metrics.enterInFlight()
		defer func() {
			s.metrics.leaveInFlight()
			<-a.slots
		}()
		next.ServeHTTP(w, r)
	})
}

// enqueue waits for a slot within the queue bound and the wait budget.
// It reports whether the request was admitted; when it was not, the
// response (429 or nothing, for a dead client) has been written.
func (a *admission) enqueue(s *server, w http.ResponseWriter, r *http.Request) bool {
	if n := s.metrics.queueDepth.Add(1); n > a.maxQueue {
		s.metrics.queueDepth.Add(-1)
		s.shed(w, r)
		return false
	}
	defer s.metrics.queueDepth.Add(-1)
	if a.wait <= 0 {
		s.shed(w, r)
		return false
	}
	timer := time.NewTimer(a.wait)
	defer timer.Stop()
	select {
	case a.slots <- struct{}{}:
		return true
	case <-timer.C:
		s.shed(w, r)
		return false
	case <-r.Context().Done():
		// Deadline: a retryable 503 (written by writeErr). Disconnect:
		// silence; instrument() records the 499.
		writeErr(w, r, r.Context().Err())
		return false
	}
}

// shed refuses one request under load: 429, Retry-After, counted.
func (s *server) shed(w http.ResponseWriter, r *http.Request) {
	s.metrics.shed.Add(1)
	w.Header().Set("Retry-After", s.adm.retryAfter)
	writeErr(w, r, errOverloaded)
}
