package minserve

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"minequiv/internal/engine"
	"minequiv/internal/jobs"
)

// mustServer builds a white-box server and kills its job plane at test
// end so no worker goroutines outlive the test.
func mustServer(t *testing.T, cfg Config) *server {
	t.Helper()
	s, err := newServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.jobs.Kill)
	return s
}

// smallSweep finishes in well under a second: one cell, four shards.
const smallSweep = `{"networks":["omega"],"stages":3,"trialsPerCell":32,"shardTrials":8,"seed":5}`

// slowSweep holds a worker long enough to observe live/not-ready
// states deterministically.
const slowSweep = `{"networks":["omega"],"stages":8,"trialsPerCell":100000,"shardTrials":25000}`

// submitJob posts a spec and returns the accepted job's ID.
func submitJob(t *testing.T, h http.Handler, spec string) string {
	t.Helper()
	rec := do(t, h, "POST", "/v1/jobs", spec)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("submit status %d: %s", rec.Code, rec.Body)
	}
	var st jobs.Status
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatalf("submit body: %v: %s", err, rec.Body)
	}
	if st.ID == "" || rec.Header().Get("Location") != "/v1/jobs/"+st.ID {
		t.Fatalf("submit Location %q for id %q", rec.Header().Get("Location"), st.ID)
	}
	return st.ID
}

// awaitJob polls status until the job leaves pending/running.
func awaitJob(t *testing.T, h http.Handler, id string) jobs.Status {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		rec := do(t, h, "GET", "/v1/jobs/"+id, "")
		if rec.Code != http.StatusOK {
			t.Fatalf("status poll %d: %s", rec.Code, rec.Body)
		}
		var st jobs.Status
		if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
			t.Fatal(err)
		}
		if st.State != jobs.StatePending && st.State != jobs.StateRunning {
			return st
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("job never reached a terminal state")
	return jobs.Status{}
}

func TestJobLifecycle(t *testing.T) {
	s := mustServer(t, Config{})
	h := s.handler()
	id := submitJob(t, h, smallSweep)

	if rec := do(t, h, "GET", "/v1/jobs", ""); rec.Code != http.StatusOK ||
		!strings.Contains(rec.Body.String(), id) {
		t.Fatalf("job list (%d) does not mention %s: %s", rec.Code, id, rec.Body)
	}

	st := awaitJob(t, h, id)
	if st.State != jobs.StateDone || st.ShardsDone != 4 || st.ShardsTotal != 4 {
		t.Fatalf("terminal status %+v", st)
	}

	rec := do(t, h, "GET", "/v1/jobs/"+id+"/result", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("result status %d: %s", rec.Code, rec.Body)
	}
	var res jobs.Result
	if err := json.Unmarshal(rec.Body.Bytes(), &res); err != nil {
		t.Fatalf("result body: %v", err)
	}
	if len(res.Cells) != 1 || res.Cells[0].Trials != 32 || res.Degraded {
		t.Fatalf("result content: %+v", res)
	}
	// Re-reads serve the manifest bytes verbatim.
	again := do(t, h, "GET", "/v1/jobs/"+id+"/result", "")
	if rec.Body.String() != again.Body.String() {
		t.Fatal("result bytes changed between reads")
	}
}

func TestJobCancelThenNotReady(t *testing.T) {
	s := mustServer(t, Config{})
	h := s.handler()
	id := submitJob(t, h, slowSweep)
	rec := do(t, h, "DELETE", "/v1/jobs/"+id, "")
	if rec.Code != http.StatusOK {
		t.Fatalf("cancel status %d: %s", rec.Code, rec.Body)
	}
	var st jobs.Status
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.State != jobs.StateCanceled {
		t.Fatalf("state after cancel %q", st.State)
	}
	res := do(t, h, "GET", "/v1/jobs/"+id+"/result", "")
	if res.Code != http.StatusConflict {
		t.Fatalf("canceled result status %d want 409: %s", res.Code, res.Body)
	}
	if we := decodeErrBody(t, res); we.Error.Code != CodeJobNotReady {
		t.Errorf("code %q want %q", we.Error.Code, CodeJobNotReady)
	}
}

// TestJobErrorCodes pins the job plane's wire codes to their triggers.
func TestJobErrorCodes(t *testing.T) {
	s := mustServer(t, Config{MaxTrials: 1000, MaxJobCells: 4})
	h := s.handler()
	cases := []struct {
		name, method, path, body string
		status                   int
		code                     string
	}{
		{"status of unknown job", "GET", "/v1/jobs/nope", "", 404, CodeJobNotFound},
		{"result of unknown job", "GET", "/v1/jobs/nope/result", "", 404, CodeJobNotFound},
		{"events of unknown job", "GET", "/v1/jobs/nope/events", "", 404, CodeJobNotFound},
		{"cancel of unknown job", "DELETE", "/v1/jobs/nope", "", 404, CodeJobNotFound},
		{"unknown network", "POST", "/v1/jobs",
			`{"networks":["bogus"],"stages":3,"trialsPerCell":8}`, 400, CodeBadRequest},
		{"stages beyond cap", "POST", "/v1/jobs",
			`{"networks":["omega"],"stages":11,"trialsPerCell":8}`, 400, CodeLimitExceeded},
		{"stages below minimum", "POST", "/v1/jobs",
			`{"networks":["omega"],"stages":1,"trialsPerCell":8}`, 400, CodeBadRequest},
		{"trials beyond cap", "POST", "/v1/jobs",
			`{"networks":["omega"],"stages":3,"trialsPerCell":5000}`, 400, CodeLimitExceeded},
		{"too many cells", "POST", "/v1/jobs",
			`{"networks":["omega","baseline"],"stages":3,"loads":[0.2,0.5,1],"trialsPerCell":8}`,
			400, CodeLimitExceeded},
		{"bad since cursor", "GET", "/v1/jobs/nope/events?since=x", "", 400, CodeBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := do(t, h, tc.method, tc.path, tc.body)
			if rec.Code != tc.status {
				t.Fatalf("status %d want %d: %s", rec.Code, tc.status, rec.Body)
			}
			if we := decodeErrBody(t, rec); we.Error.Code != tc.code {
				t.Errorf("code %q want %q", we.Error.Code, tc.code)
			}
		})
	}
}

// TestJobQuarantinedCode drives a job whose every shard fails into the
// failed state and asserts the result surfaces job_quarantined.
func TestJobQuarantinedCode(t *testing.T) {
	s := mustServer(t, Config{})
	s.jobs.Kill()
	jm, err := jobs.Open(jobs.Config{
		Workers:     2,
		MaxRetries:  1,
		BackoffBase: time.Millisecond,
		BackoffMax:  2 * time.Millisecond,
		SweepEvery:  2 * time.Millisecond,
		Runner: func(ctx context.Context, cell jobs.Cell, lo, hi int) (engine.WavePartial, error) {
			return engine.WavePartial{}, errors.New("injected fault")
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(jm.Kill)
	s.jobs = jm
	h := s.handler()

	id := submitJob(t, h, smallSweep)
	st := awaitJob(t, h, id)
	if st.State != jobs.StateFailed || st.ShardsQuarantined != 4 {
		t.Fatalf("terminal status %+v", st)
	}
	rec := do(t, h, "GET", "/v1/jobs/"+id+"/result", "")
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("result status %d want 500: %s", rec.Code, rec.Body)
	}
	if we := decodeErrBody(t, rec); we.Error.Code != CodeJobQuarantined {
		t.Errorf("code %q want %q", we.Error.Code, CodeJobQuarantined)
	}
}

// TestJobCorruptCheckpointCode: a job directory whose spec.json is
// garbage resumes as a failed job answering checkpoint_corrupt, and
// does not prevent the server from starting.
func TestJobCorruptCheckpointCode(t *testing.T) {
	dir := t.TempDir()
	if err := os.MkdirAll(filepath.Join(dir, "deadbeef"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "deadbeef", "spec.json"), []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	s := mustServer(t, Config{JobsDir: dir})
	h := s.handler()
	rec := do(t, h, "GET", "/v1/jobs/deadbeef", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var st jobs.Status
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.State != jobs.StateFailed {
		t.Fatalf("corrupt job state %q want failed", st.State)
	}
	res := do(t, h, "GET", "/v1/jobs/deadbeef/result", "")
	if res.Code != http.StatusInternalServerError {
		t.Fatalf("result status %d want 500: %s", res.Code, res.Body)
	}
	if we := decodeErrBody(t, res); we.Error.Code != CodeCheckpointCorrupt {
		t.Errorf("code %q want %q", we.Error.Code, CodeCheckpointCorrupt)
	}
}

// TestJobMaxJobsShed: submissions beyond MaxJobs are shed with 429
// overloaded, like any other excess load.
func TestJobMaxJobsShed(t *testing.T) {
	s := mustServer(t, Config{MaxJobs: 1})
	h := s.handler()
	id := submitJob(t, h, slowSweep)
	rec := do(t, h, "POST", "/v1/jobs", smallSweep)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("excess submit status %d want 429: %s", rec.Code, rec.Body)
	}
	if we := decodeErrBody(t, rec); we.Error.Code != CodeOverloaded {
		t.Errorf("code %q want %q", we.Error.Code, CodeOverloaded)
	}
	do(t, h, "DELETE", "/v1/jobs/"+id, "")
}

// TestJobPollingBypassesAdmission is the regression the job plane's
// route table must never lose: with the synchronous plane fully
// saturated (every slot held, no queue), POST work — including job
// submission — sheds 429, while every job read keeps answering 200.
func TestJobPollingBypassesAdmission(t *testing.T) {
	s := mustServer(t, Config{MaxConcurrent: 1, MaxQueueDepth: -1})
	h := s.handler()
	id := submitJob(t, h, smallSweep)
	awaitJob(t, h, id)

	// Occupy the only execution slot directly (white box): admission is
	// now saturated with no queue, so any admitted POST sheds.
	s.adm.slots <- struct{}{}
	defer func() { <-s.adm.slots }()

	if rec := do(t, h, "POST", "/v1/check", `{"network":"omega","stages":3}`); rec.Code != http.StatusTooManyRequests {
		t.Fatalf("work POST under saturation: %d want 429", rec.Code)
	}
	if rec := do(t, h, "POST", "/v1/jobs", smallSweep); rec.Code != http.StatusTooManyRequests {
		t.Fatalf("job submit under saturation: %d want 429", rec.Code)
	}
	reads := []string{
		"/v1/jobs",
		"/v1/jobs/" + id,
		"/v1/jobs/" + id + "/result",
		"/v1/jobs/" + id + "/events",
	}
	for _, path := range reads {
		if rec := do(t, h, "GET", path, ""); rec.Code != http.StatusOK {
			t.Errorf("GET %s under saturation: %d want 200: %s", path, rec.Code, rec.Body)
		}
	}
}

// TestJobEventsLongPoll follows a job to completion through the
// long-poll protocol and checks the cursor discipline: strictly
// increasing seqs, no replays, a terminal state event at the end.
func TestJobEventsLongPoll(t *testing.T) {
	s := mustServer(t, Config{})
	h := s.handler()
	id := submitJob(t, h, smallSweep)

	var since int64
	var last jobs.Event
	sawDone := 0
	deadline := time.Now().Add(20 * time.Second)
	for last.State != jobs.StateDone {
		if time.Now().After(deadline) {
			t.Fatal("long-poll never delivered the terminal event")
		}
		rec := do(t, h, "GET", "/v1/jobs/"+id+"/events?since="+
			strconv.FormatInt(since, 10)+"&waitMs=500", "")
		if rec.Code != http.StatusOK {
			t.Fatalf("events status %d: %s", rec.Code, rec.Body)
		}
		var page eventsResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &page); err != nil {
			t.Fatal(err)
		}
		for _, ev := range page.Events {
			if ev.Seq <= since {
				t.Fatalf("replayed seq %d after cursor %d", ev.Seq, since)
			}
			since = ev.Seq
			last = ev
			if ev.Type == "shard-done" {
				sawDone++
			}
		}
		if page.Next < since {
			t.Fatalf("next cursor %d behind delivered seq %d", page.Next, since)
		}
		since = page.Next
	}
	if sawDone != 4 {
		t.Errorf("saw %d shard-done events, want 4", sawDone)
	}
}

// TestJobEventsSSE reads the event-stream form end to end: id:/data:
// frames, increasing seqs, and stream termination once the job's final
// state event is delivered.
func TestJobEventsSSE(t *testing.T) {
	s := mustServer(t, Config{})
	srv := httptest.NewServer(s.handler())
	defer srv.Close()
	h := s.handler()
	id := submitJob(t, h, smallSweep)

	req, err := http.NewRequest("GET", srv.URL+"/v1/jobs/"+id+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "text/event-stream")
	resp, err := srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type %q", ct)
	}
	var lastSeq int64
	terminal := ""
	scanner := bufio.NewScanner(resp.Body)
	for scanner.Scan() {
		line := scanner.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev jobs.Event
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
			t.Fatalf("bad SSE data line %q: %v", line, err)
		}
		if ev.Seq <= lastSeq {
			t.Fatalf("seq %d after %d", ev.Seq, lastSeq)
		}
		lastSeq = ev.Seq
		if ev.Type == "state" && ev.State != jobs.StateRunning {
			terminal = ev.State
		}
	}
	// The server closes the stream after the terminal event; the scan
	// ending is the success condition.
	if err := scanner.Err(); err != nil {
		t.Fatal(err)
	}
	if terminal != jobs.StateDone {
		t.Fatalf("stream ended with terminal state %q", terminal)
	}
}

// TestJobEventsDisconnect499: a client that abandons an events request
// before anything was delivered is accounted as a 499 disconnect, for
// both the SSE and long-poll forms — the wait paths write nothing
// until there is an event to send.
func TestJobEventsDisconnect499(t *testing.T) {
	s := mustServer(t, Config{})
	h := s.handler()

	abandon := func(id, accept string) {
		t.Helper()
		ctx, cancel := context.WithCancel(context.Background())
		req := httptest.NewRequest("GET", "/v1/jobs/"+id+"/events?since=100000&waitMs=30000", nil).WithContext(ctx)
		if accept != "" {
			req.Header.Set("Accept", accept)
		}
		rec := httptest.NewRecorder()
		done := make(chan struct{})
		go func() {
			defer close(done)
			h.ServeHTTP(rec, req)
		}()
		time.Sleep(20 * time.Millisecond) // let the handler park in its wait
		cancel()
		<-done
		if rec.Body.Len() != 0 {
			t.Fatalf("abandoned events request wrote %d bytes", rec.Body.Len())
		}
	}
	// Long-poll parks on a finished job (no further events will ever
	// satisfy the cursor); SSE needs a live one, because a terminal
	// job's stream ends immediately instead of waiting.
	finished := submitJob(t, h, smallSweep)
	awaitJob(t, h, finished)
	abandon(finished, "") // long-poll
	live := submitJob(t, h, slowSweep)
	abandon(live, "text/event-stream") // SSE
	do(t, h, "DELETE", "/v1/jobs/"+live, "")

	text := do(t, h, "GET", "/metrics", "").Body.String()
	if !strings.Contains(text, `minserve_requests_total{endpoint="/v1/jobs/{id}/events",code="499"} 2`) {
		t.Errorf("499s not recorded for the events endpoint:\n%s", text)
	}
	if !strings.Contains(text, "minserve_client_disconnects_total 2") {
		t.Errorf("disconnect counter not bumped twice:\n%s", text)
	}
}

// TestJobMetricsFamilies: the job families are present, linted, and
// move when jobs run.
func TestJobMetricsFamilies(t *testing.T) {
	s := mustServer(t, Config{})
	h := s.handler()
	id := submitJob(t, h, smallSweep)
	awaitJob(t, h, id)
	rec := do(t, h, "GET", "/metrics", "")
	if err := LintExposition(rec.Body.Bytes()); err != nil {
		t.Fatalf("exposition lint: %v\n%s", err, rec.Body)
	}
	text := rec.Body.String()
	for _, want := range []string{
		"minserve_jobs_in_flight 0",
		"minserve_jobs_completed_total 1",
		"minserve_jobs_failed_total 0",
		"minserve_job_shards_done_total 4",
		"minserve_job_shards_stolen_total 0",
		"minserve_job_shards_retried_total 0",
		"minserve_job_shards_quarantined_total 0",
		"minserve_job_checkpoint_bytes_total 0", // in-memory plane: nothing persisted
	} {
		if !strings.Contains(text, want) {
			t.Errorf("missing %q in exposition:\n%s", want, text)
		}
	}
}

// TestJobRestartByteIdentity is the serving-layer half of the
// crash-resume contract: a job interrupted by a hard kill finishes
// after restart with result bytes identical to an uninterrupted run of
// the same spec on a fresh server.
func TestJobRestartByteIdentity(t *testing.T) {
	spec := `{"networks":["omega","baseline"],"stages":3,"faultRates":[0,0.1],"trialsPerCell":48,"shardTrials":4,"seed":7}`

	// The reference: one uninterrupted run, in memory.
	ref := mustServer(t, Config{})
	refH := ref.handler()
	refID := submitJob(t, refH, spec)
	if st := awaitJob(t, refH, refID); st.State != jobs.StateDone {
		t.Fatalf("reference run ended %q", st.State)
	}
	refBytes := do(t, refH, "GET", "/v1/jobs/"+refID+"/result", "").Body.String()

	// The victim: killed as soon as any shard has checkpointed.
	dir := t.TempDir()
	s1, err := newServer(Config{JobsDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	h1 := s1.handler()
	id := submitJob(t, h1, spec)
	deadline := time.Now().Add(20 * time.Second)
	for s1.jobs.Stats().ShardsDone == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no shard ever checkpointed")
		}
		time.Sleep(time.Millisecond)
	}
	s1.jobs.Kill()

	// The survivor resumes the directory and completes the job.
	s2 := mustServer(t, Config{JobsDir: dir})
	h2 := s2.handler()
	if st := awaitJob(t, h2, id); st.State != jobs.StateDone {
		t.Fatalf("resumed job ended %q", st.State)
	}
	got := do(t, h2, "GET", "/v1/jobs/"+id+"/result", "").Body.String()
	if got != refBytes {
		t.Fatalf("resumed result diverges from uninterrupted run:\n%s\nvs\n%s", got, refBytes)
	}

	// And a third open serves the same bytes straight from the manifest.
	s3 := mustServer(t, Config{JobsDir: dir})
	h3 := s3.handler()
	if again := do(t, h3, "GET", "/v1/jobs/"+id+"/result", "").Body.String(); again != got {
		t.Fatal("manifest re-read diverges")
	}
}
