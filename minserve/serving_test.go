package minserve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// --- structured error envelope -------------------------------------

type wireError struct {
	Error struct {
		Code    string `json:"code"`
		Message string `json:"message"`
		Status  int    `json:"status"`
	} `json:"error"`
	Message string `json:"message"`
}

func decodeErrBody(t *testing.T, rec *httptest.ResponseRecorder) wireError {
	t.Helper()
	var we wireError
	if err := json.Unmarshal(rec.Body.Bytes(), &we); err != nil {
		t.Fatalf("error body is not the envelope: %v: %s", err, rec.Body)
	}
	return we
}

// TestErrorCodesGolden pins every stable error code to a concrete
// trigger: the codes are API, clients switch on them.
func TestErrorCodesGolden(t *testing.T) {
	h := NewHandler(Config{MaxTrials: 50})
	cases := []struct {
		name, path, body string
		status           int
		code             string
	}{
		{"malformed json", "/v1/check", `{`, 400, CodeBadRequest},
		{"unknown field", "/v1/check", `{"network":"omega","stages":3,"bogus":1}`, 400, CodeBadRequest},
		{"stages too small", "/v1/check", `{"network":"omega","stages":1}`, 400, CodeBadRequest},
		{"stages over cap", "/v1/check", `{"network":"omega","stages":11}`, 400, CodeLimitExceeded},
		{"unknown network", "/v1/check", `{"network":"nope","stages":4}`, 400, CodeUnknownNetwork},
		{"waves over cap", "/v1/simulate", `{"network":"omega","stages":3,"waves":51}`, 400, CodeLimitExceeded},
		{"cycles over cap", "/v1/simulate", `{"network":"omega","stages":3,"model":"buffered","cycles":999999}`, 400, CodeLimitExceeded},
		{"unknown model", "/v1/simulate", `{"network":"omega","stages":3,"model":"quantum"}`, 400, CodeBadRequest},
		{"empty batch", "/v1/batch", `{"requests":[]}`, 400, CodeBadRequest},
		{"unknown batch op", "/v1/batch", `{"requests":[{"op":"explode","request":{}}]}`, 200, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := do(t, h, "POST", tc.path, tc.body)
			if rec.Code != tc.status {
				t.Fatalf("status %d want %d: %s", rec.Code, tc.status, rec.Body)
			}
			if tc.code == "" {
				return
			}
			we := decodeErrBody(t, rec)
			if we.Error.Code != tc.code {
				t.Errorf("code %q want %q (%s)", we.Error.Code, tc.code, rec.Body)
			}
			if we.Error.Status != tc.status {
				t.Errorf("envelope status %d want %d", we.Error.Status, tc.status)
			}
			// Deprecated compatibility: the flat message mirrors the
			// structured one for one release.
			if we.Message == "" || we.Message != we.Error.Message {
				t.Errorf("legacy message %q != error.message %q", we.Message, we.Error.Message)
			}
		})
	}
}

// TestErrorCode413 pins the oversized-body path to limit_exceeded.
func TestErrorCode413(t *testing.T) {
	h := NewHandler(Config{MaxBodyBytes: 64})
	big := `{"network":"omega","stages":3,"x":"` + strings.Repeat("a", 200) + `"}`
	rec := do(t, h, "POST", "/v1/check", big)
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	if we := decodeErrBody(t, rec); we.Error.Code != CodeLimitExceeded {
		t.Errorf("413 code %q want %q", we.Error.Code, CodeLimitExceeded)
	}
}

// --- /v1/limits and /v1/stats deprecation --------------------------

// TestLimitsGolden pins the limits body byte-for-byte (explicit config
// so GOMAXPROCS never leaks into the golden).
func TestLimitsGolden(t *testing.T) {
	h := NewHandler(Config{
		MaxWorkers: 4, MaxConcurrent: 8,
		QueueWait: 2 * time.Second, RequestTimeout: 30 * time.Second,
	})
	rec := do(t, h, "GET", "/v1/limits", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	golden := `{"maxBodyBytes":1048576,"maxStages":10,"maxTrials":100000,` +
		`"maxCycles":200000,"maxWorkers":4,"maxFaults":256,"maxBatch":64,` +
		`"cacheEntries":256,"maxConcurrent":8,"maxQueueDepth":64,` +
		`"queueWaitMs":2000,"requestTimeoutMs":30000,"maxJobs":16,` +
		`"maxJobCells":256,"jobShardTrials":2048,"jobTtlMs":3600000}` + "\n"
	if got := rec.Body.String(); got != golden {
		t.Errorf("golden mismatch:\ngot  %swant %s", got, golden)
	}
}

func TestStatsDeprecated(t *testing.T) {
	rec := do(t, newTestHandler(), "GET", "/v1/stats", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	if rec.Header().Get("Deprecation") != "true" {
		t.Errorf("missing Deprecation header")
	}
	if link := rec.Header().Get("Link"); !strings.Contains(link, "/v1/healthz") {
		t.Errorf("Link header %q does not name the successor", link)
	}
	// healthz carries the same cache counters plus the serving block.
	rec = do(t, newTestHandler(), "GET", "/v1/healthz", "")
	if !strings.Contains(rec.Body.String(), `"serving":`) {
		t.Errorf("healthz lacks serving block: %s", rec.Body)
	}
}

// --- batch ----------------------------------------------------------

// singleBodies runs each (op, body) pair against its single endpoint on
// h and returns the response bodies.
func singleBodies(t *testing.T, h http.Handler, items [][2]string) []string {
	t.Helper()
	out := make([]string, len(items))
	for i, it := range items {
		rec := do(t, h, "POST", "/v1/"+it[0], it[1])
		if rec.Code != http.StatusOK {
			t.Fatalf("single %s: status %d: %s", it[0], rec.Code, rec.Body)
		}
		out[i] = rec.Body.String()
	}
	return out
}

func batchBody(items [][2]string) string {
	var b strings.Builder
	b.WriteString(`{"requests":[`)
	for i, it := range items {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `{"op":%q,"request":%s}`, it[0], it[1])
	}
	b.WriteString(`]}`)
	return b.String()
}

// TestBatchByteIdentity is the determinism golden: a cold batch of
// mixed sub-requests returns, positionally, byte-identical bodies to N
// single calls on an identically configured fresh server — and the
// envelope is assembled exactly as documented.
func TestBatchByteIdentity(t *testing.T) {
	items := [][2]string{
		{"check", `{"network":"omega","stages":3}`},
		{"route", `{"network":"baseline","stages":4,"src":3,"dst":11}`},
		{"simulate", `{"network":"omega","stages":3,"waves":16,"seed":7}`},
		{"check", `{"network":"tail-cycle","stages":4}`},
	}
	// Reference bodies from a fresh server (all cold misses).
	singles := singleBodies(t, newTestHandler(), items)

	// The batch on another fresh server: same cache state, so the
	// envelope is fully predictable.
	expect := `{"responses":[`
	for i, it := range items {
		if i > 0 {
			expect += ","
		}
		expect += fmt.Sprintf(`{"op":%q,"status":200`, it[0])
		if it[0] != "simulate" {
			expect += `,"cache":"miss"`
		}
		expect += `,"body":` + strings.TrimSuffix(singles[i], "\n") + `}`
	}
	expect += "]}\n"

	rec := do(t, newTestHandler(), "POST", "/v1/batch", batchBody(items))
	if rec.Code != http.StatusOK {
		t.Fatalf("batch status %d: %s", rec.Code, rec.Body)
	}
	if got := rec.Body.String(); got != expect {
		t.Errorf("batch envelope mismatch:\ngot  %swant %s", got, expect)
	}

	// Determinism: replaying the identical batch yields an identical
	// envelope except for miss->hit attribution on the cached ops.
	rec2 := do(t, newTestHandler(), "POST", "/v1/batch", batchBody(items))
	if rec2.Body.String() != rec.Body.String() {
		t.Errorf("cold batch not deterministic across fresh servers")
	}
}

// TestBatchCacheAttribution: per-item cache fields report exactly what
// X-Cache would have, and batch items share the cache with singles.
func TestBatchCacheAttribution(t *testing.T) {
	h := newTestHandler()
	check := `{"network":"omega","stages":3}`
	// Warm via a single call...
	do(t, h, "POST", "/v1/check", check)
	// ...then a batch repeating it twice plus a cold route.
	items := [][2]string{
		{"check", check},
		{"check", check},
		{"route", `{"network":"omega","stages":3,"src":0,"dst":5}`},
	}
	rec := do(t, h, "POST", "/v1/batch", batchBody(items))
	var resp struct {
		Responses []struct {
			Op     string          `json:"op"`
			Status int             `json:"status"`
			Cache  string          `json:"cache"`
			Body   json.RawMessage `json:"body"`
		} `json:"responses"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("batch body: %v: %s", err, rec.Body)
	}
	want := []string{"hit", "hit", "miss"}
	for i, w := range want {
		if resp.Responses[i].Cache != w {
			t.Errorf("item %d cache %q want %q", i, resp.Responses[i].Cache, w)
		}
	}
	// And the single endpoint now hits what the batch just warmed.
	rec = do(t, h, "POST", "/v1/route", items[2][1])
	if got := rec.Header().Get("X-Cache"); got != "HIT" {
		t.Errorf("single route after batch: X-Cache %q want HIT", got)
	}
}

// TestBatchErrorsPositional: a failing sub-request yields its own
// structured error in place without failing its neighbours.
func TestBatchErrorsPositional(t *testing.T) {
	items := [][2]string{
		{"check", `{"network":"omega","stages":3}`},
		{"check", `{"network":"nope","stages":3}`},
		{"frobnicate", `{}`},
		{"check", `{"network":"omega","stages":11}`},
	}
	rec := do(t, newTestHandler(), "POST", "/v1/batch", batchBody(items))
	if rec.Code != http.StatusOK {
		t.Fatalf("batch status %d: %s", rec.Code, rec.Body)
	}
	var resp struct {
		Responses []struct {
			Status int `json:"status"`
			Body   struct {
				Error struct {
					Code string `json:"code"`
				} `json:"error"`
			} `json:"body"`
		} `json:"responses"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("batch body: %v: %s", err, rec.Body)
	}
	wantStatus := []int{200, 400, 400, 400}
	wantCode := []string{"", CodeUnknownNetwork, CodeBadRequest, CodeLimitExceeded}
	for i := range wantStatus {
		if resp.Responses[i].Status != wantStatus[i] {
			t.Errorf("item %d status %d want %d", i, resp.Responses[i].Status, wantStatus[i])
		}
		if resp.Responses[i].Body.Error.Code != wantCode[i] {
			t.Errorf("item %d code %q want %q", i, resp.Responses[i].Body.Error.Code, wantCode[i])
		}
	}
}

// TestBatchTooLarge pins the batch size cap to limit_exceeded.
func TestBatchTooLarge(t *testing.T) {
	h := NewHandler(Config{MaxBatch: 2})
	items := [][2]string{
		{"check", `{"network":"omega","stages":3}`},
		{"check", `{"network":"omega","stages":4}`},
		{"check", `{"network":"omega","stages":5}`},
	}
	rec := do(t, h, "POST", "/v1/batch", batchBody(items))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	if we := decodeErrBody(t, rec); we.Error.Code != CodeLimitExceeded {
		t.Errorf("code %q want %q", we.Error.Code, CodeLimitExceeded)
	}
}

// TestBatchMidCancellation: a client vanishing mid-batch stops the work
// within one sub-request and writes nothing.
func TestBatchMidCancellation(t *testing.T) {
	h := newTestHandler()
	items := [][2]string{
		{"check", `{"network":"omega","stages":3}`},
		{"simulate", `{"network":"indirect-binary-cube","stages":10,"waves":100000,"workers":1}`},
		{"check", `{"network":"omega","stages":4}`},
	}
	ctx, cancel := context.WithCancel(context.Background())
	req := httptest.NewRequest("POST", "/v1/batch", strings.NewReader(batchBody(items))).WithContext(ctx)
	rec := httptest.NewRecorder()
	done := make(chan struct{})
	go func() {
		defer close(done)
		h.ServeHTTP(rec, req)
	}()
	time.Sleep(20 * time.Millisecond) // let item 0 finish, item 1 start
	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("batch did not stop after client cancellation")
	}
	if rec.Body.Len() != 0 {
		t.Errorf("cancelled batch wrote %d bytes; want none", rec.Body.Len())
	}
}

// --- metrics --------------------------------------------------------

// TestMetricsExposition drives traffic, then checks the exposition is
// lint-clean and carries the promised families with sane values.
func TestMetricsExposition(t *testing.T) {
	h := newTestHandler()
	do(t, h, "POST", "/v1/check", `{"network":"omega","stages":3}`)
	do(t, h, "POST", "/v1/check", `{"network":"omega","stages":3}`) // warm hit
	do(t, h, "POST", "/v1/check", `{"network":"nope","stages":3}`)  // 400
	do(t, h, "GET", "/v1/healthz", "")
	rec := do(t, h, "GET", "/metrics", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type %q", ct)
	}
	text := rec.Body.String()
	if err := LintExposition(rec.Body.Bytes()); err != nil {
		t.Fatalf("exposition lint: %v\n%s", err, text)
	}
	for _, want := range []string{
		`minserve_requests_total{endpoint="/v1/check",code="200"} 2`,
		`minserve_requests_total{endpoint="/v1/check",code="400"} 1`,
		`minserve_requests_total{endpoint="/v1/healthz",code="200"} 1`,
		`minserve_request_duration_seconds_count{endpoint="/v1/check"} 3`,
		`minserve_request_duration_seconds_bucket{endpoint="/v1/check",le="+Inf"} 3`,
		`minserve_cache_hits_total 1`,
		`minserve_cache_misses_total 1`,
		`minserve_cache_hit_ratio 0.5`,
		`minserve_in_flight 0`,
		`minserve_shed_total 0`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestLintExpositionRejects: the linter actually bites.
func TestLintExpositionRejects(t *testing.T) {
	bad := []struct{ name, text string }{
		{"sample without TYPE", "foo 1\n"},
		{"duplicate TYPE", "# TYPE a counter\n# TYPE a counter\na 1\n"},
		{"duplicate sample", "# TYPE a counter\na 1\na 2\n"},
		{"unknown type", "# TYPE a wavelet\na 1\n"},
		{"bad value", "# TYPE a counter\na one\n"},
		{"unquoted label", `# TYPE a counter` + "\n" + `a{x=1} 1` + "\n"},
		{"histogram without inf", "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n"},
		{"inf mismatch", "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1\nh_sum 1\nh_count 2\n"},
	}
	for _, tc := range bad {
		if err := LintExposition([]byte(tc.text)); err == nil {
			t.Errorf("%s: lint accepted\n%s", tc.name, tc.text)
		}
	}
}

// TestDisconnectCounts499: a client that vanishes mid-simulate is
// recorded as a 499, not a 4xx/5xx.
func TestDisconnectCounts499(t *testing.T) {
	h := newTestHandler()
	ctx, cancel := context.WithCancel(context.Background())
	body := `{"network":"indirect-binary-cube","stages":10,"waves":100000,"workers":1}`
	req := httptest.NewRequest("POST", "/v1/simulate", strings.NewReader(body)).WithContext(ctx)
	rec := httptest.NewRecorder()
	done := make(chan struct{})
	go func() { defer close(done); h.ServeHTTP(rec, req) }()
	time.Sleep(20 * time.Millisecond)
	cancel()
	<-done
	if rec.Body.Len() != 0 {
		t.Fatalf("disconnected client got %d bytes", rec.Body.Len())
	}
	text := do(t, h, "GET", "/metrics", "").Body.String()
	if !strings.Contains(text, `minserve_requests_total{endpoint="/v1/simulate",code="499"} 1`) {
		t.Errorf("499 not recorded:\n%s", text)
	}
	if !strings.Contains(text, `minserve_client_disconnects_total 1`) {
		t.Errorf("disconnect counter not bumped:\n%s", text)
	}
}

// --- admission control ---------------------------------------------

// TestInFlightBound hammers the work plane and asserts the concurrency
// bound holds via the peak gauge (tracked at the only place requests
// enter execution).
func TestInFlightBound(t *testing.T) {
	s := mustServer(t, Config{MaxConcurrent: 3, MaxQueueDepth: 64, QueueWait: 5 * time.Second})
	h := s.handler()
	var wg sync.WaitGroup
	for i := 0; i < 30; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body := fmt.Sprintf(`{"network":"omega","stages":3,"waves":32,"seed":%d}`, i+1)
			req := httptest.NewRequest("POST", "/v1/simulate", strings.NewReader(body))
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			if rec.Code != http.StatusOK {
				t.Errorf("status %d: %s", rec.Code, rec.Body)
			}
		}(i)
	}
	wg.Wait()
	if peak := s.metrics.inFlightPeak.Load(); peak > 3 {
		t.Errorf("in-flight peak %d exceeded bound 3", peak)
	}
	if depth := s.metrics.queueDepth.Load(); depth != 0 {
		t.Errorf("queue depth %d after drain", depth)
	}
}

// TestLoadShedding saturates a one-slot server with no queue and
// asserts the contender is shed with 429 + Retry-After + code.
func TestLoadShedding(t *testing.T) {
	s := mustServer(t, Config{MaxConcurrent: 1, MaxQueueDepth: -1})
	h := s.handler()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	slow := `{"network":"indirect-binary-cube","stages":10,"waves":100000,"workers":1}`
	done := make(chan struct{})
	go func() {
		defer close(done)
		req := httptest.NewRequest("POST", "/v1/simulate", strings.NewReader(slow)).WithContext(ctx)
		h.ServeHTTP(httptest.NewRecorder(), req)
	}()
	// Wait until the slow request holds the slot.
	for i := 0; s.metrics.inFlight.Load() == 0; i++ {
		if i > 500 {
			t.Fatal("slow request never entered execution")
		}
		time.Sleep(time.Millisecond)
	}
	rec := do(t, h, "POST", "/v1/check", `{"network":"omega","stages":3}`)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("contender status %d want 429: %s", rec.Code, rec.Body)
	}
	if ra := rec.Header().Get("Retry-After"); ra == "" {
		t.Errorf("429 without Retry-After")
	}
	if we := decodeErrBody(t, rec); we.Error.Code != CodeOverloaded {
		t.Errorf("shed code %q want %q", we.Error.Code, CodeOverloaded)
	}
	if s.metrics.shed.Load() != 1 {
		t.Errorf("shed counter %d want 1", s.metrics.shed.Load())
	}
	// GET endpoints bypass admission even while saturated.
	if rec := do(t, h, "GET", "/v1/healthz", ""); rec.Code != http.StatusOK {
		t.Errorf("healthz under saturation: %d", rec.Code)
	}
	cancel()
	<-done
}

// TestQueueWaitShedding: with a queue but a tiny wait budget, a waiter
// times out into a 429 instead of hanging.
func TestQueueWaitShedding(t *testing.T) {
	s := mustServer(t, Config{MaxConcurrent: 1, MaxQueueDepth: 4, QueueWait: 20 * time.Millisecond})
	h := s.handler()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	slow := `{"network":"indirect-binary-cube","stages":10,"waves":100000,"workers":1}`
	done := make(chan struct{})
	go func() {
		defer close(done)
		req := httptest.NewRequest("POST", "/v1/simulate", strings.NewReader(slow)).WithContext(ctx)
		h.ServeHTTP(httptest.NewRecorder(), req)
	}()
	for i := 0; s.metrics.inFlight.Load() == 0; i++ {
		if i > 500 {
			t.Fatal("slow request never entered execution")
		}
		time.Sleep(time.Millisecond)
	}
	start := time.Now()
	rec := do(t, h, "POST", "/v1/check", `{"network":"omega","stages":3}`)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("waiter status %d want 429", rec.Code)
	}
	if waited := time.Since(start); waited > 2*time.Second {
		t.Errorf("queue wait %v far beyond the 20ms budget", waited)
	}
	cancel()
	<-done
}

// TestRequestDeadline: the per-request timeout fails slow work with a
// diagnosable 503 deadline_exceeded.
func TestRequestDeadline(t *testing.T) {
	h := NewHandler(Config{RequestTimeout: 50 * time.Millisecond})
	slow := `{"network":"indirect-binary-cube","stages":10,"waves":100000,"workers":1}`
	rec := do(t, h, "POST", "/v1/simulate", slow)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d want 503: %s", rec.Code, rec.Body)
	}
	if we := decodeErrBody(t, rec); we.Error.Code != CodeDeadlineExceeded {
		t.Errorf("code %q want %q", we.Error.Code, CodeDeadlineExceeded)
	}
}
