package minserve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
)

// Error codes are the machine-readable half of the error envelope.
// They are stable API: clients may switch on them, so codes are only
// ever added, never renamed. The human-readable message may change
// between releases; the code may not.
const (
	// CodeBadRequest: the request is malformed or semantically invalid
	// (bad JSON, unknown fields, out-of-range parameters, model
	// mixups, invalid fault plans).
	CodeBadRequest = "bad_request"
	// CodeUnknownNetwork: the catalog has no network of that name.
	CodeUnknownNetwork = "unknown_network"
	// CodeLimitExceeded: the request is well-formed but asks for more
	// than the operator's configured limits allow (stages, waves,
	// cycles, fault-list length, batch size, body bytes).
	CodeLimitExceeded = "limit_exceeded"
	// CodeOverloaded: admission control shed the request; the response
	// carries a Retry-After header. Retry with backoff.
	CodeOverloaded = "overloaded"
	// CodeDeadlineExceeded: the per-request deadline expired before the
	// work finished.
	CodeDeadlineExceeded = "deadline_exceeded"
	// CodeInternal: the server failed to render a response.
	CodeInternal = "internal"
	// CodeJobNotFound: no job with that ID exists (never created, or
	// already garbage-collected past its TTL).
	CodeJobNotFound = "job_not_found"
	// CodeJobNotReady: the job exists but has no result yet (still
	// running, or canceled). Poll status until terminal.
	CodeJobNotReady = "job_not_ready"
	// CodeJobQuarantined: every shard of the job was quarantined after
	// exhausting retries, so no result exists at all. (A job with SOME
	// quarantined shards still completes, degraded, with a result.)
	CodeJobQuarantined = "job_quarantined"
	// CodeCheckpointCorrupt: the job's on-disk checkpoint failed
	// validation at resume; its prior progress cannot be trusted and the
	// job is failed rather than silently recomputed.
	CodeCheckpointCorrupt = "checkpoint_corrupt"
	// CodeUnsupportedMediaType: the request's Content-Type names a wire
	// codec the server does not speak; the work endpoints accept
	// application/json (default) and application/x-min-bin.
	CodeUnsupportedMediaType = "unsupported_media_type"
)

// errorDetail is the structured error object every non-2xx response
// carries under the "error" key.
type errorDetail struct {
	Code    string `json:"code"`
	Message string `json:"message"`
	Status  int    `json:"status"`
}

// errorEnvelope is the uniform error response body.
//
// Deprecated field: Message duplicates Error.Message at the top level
// for clients of the pre-0.7 flat `{"error": "..."}` envelope (the
// key now holds the structured object, so the flat string moved to
// "message"); it will be removed in the next release. See doc.go.
type errorEnvelope struct {
	Error   errorDetail `json:"error"`
	Message string      `json:"message"`
}

// httpError is an error with a chosen status code and stable error
// code.
type httpError struct {
	status int
	code   string
	msg    string
}

func (e *httpError) Error() string { return e.msg }

func badRequest(format string, args ...any) error {
	return &httpError{status: http.StatusBadRequest, code: CodeBadRequest, msg: fmt.Sprintf(format, args...)}
}

// limitExceeded is a 400 whose cause is an operator-configured cap,
// distinguishable by code so clients can shrink-and-retry.
func limitExceeded(format string, args ...any) error {
	return &httpError{status: http.StatusBadRequest, code: CodeLimitExceeded, msg: fmt.Sprintf(format, args...)}
}

func unknownNetwork(err error) error {
	return &httpError{status: http.StatusBadRequest, code: CodeUnknownNetwork, msg: err.Error()}
}

// unsupportedMediaType is the 415 a request earns by naming a wire
// codec the server does not speak in its Content-Type.
func unsupportedMediaType(mediaType string) error {
	return &httpError{status: http.StatusUnsupportedMediaType, code: CodeUnsupportedMediaType,
		msg: fmt.Sprintf("unsupported media type %q (use application/json or %s)", mediaType, MediaTypeBinary)}
}

// errOverloaded is the load-shedding error; the admission layer sets
// Retry-After before writing it.
var errOverloaded = &httpError{
	status: http.StatusTooManyRequests,
	code:   CodeOverloaded,
	msg:    "server overloaded: work queue full, retry later",
}

// defaultCode maps a bare status to its conventional code, for
// httpErrors constructed without one.
func defaultCode(status int) string {
	switch status {
	case http.StatusRequestEntityTooLarge:
		return CodeLimitExceeded
	case http.StatusUnsupportedMediaType:
		return CodeUnsupportedMediaType
	case http.StatusTooManyRequests:
		return CodeOverloaded
	case http.StatusServiceUnavailable:
		return CodeDeadlineExceeded
	case http.StatusInternalServerError:
		return CodeInternal
	default:
		return CodeBadRequest
	}
}

// envelopeFor renders any handler error into the wire envelope and its
// status. Deadline expiry surfaces as 503 deadline_exceeded — the
// client is still connected and deserves a diagnosable body.
func envelopeFor(err error) (errorEnvelope, int) {
	status, code := http.StatusBadRequest, CodeBadRequest
	var he *httpError
	switch {
	case errors.As(err, &he):
		status = he.status
		code = he.code
		if code == "" {
			code = defaultCode(status)
		}
	case errors.Is(err, context.DeadlineExceeded):
		status, code = http.StatusServiceUnavailable, CodeDeadlineExceeded
	}
	msg := err.Error()
	return errorEnvelope{
		Error:   errorDetail{Code: code, Message: msg, Status: status},
		Message: msg,
	}, status
}

// clientGone reports whether the request failed because the client
// disconnected (as opposed to a server-side deadline): there is nobody
// left to write a body to. The instrument middleware accounts these as
// 499s so disconnects never inflate the 4xx/5xx series in /metrics.
func clientGone(r *http.Request, err error) bool {
	return errors.Is(r.Context().Err(), context.Canceled) || errors.Is(err, context.Canceled)
}

func writeErr(w http.ResponseWriter, r *http.Request, err error) {
	if clientGone(r, err) {
		// A dead client gets no body; instrument() sees that nothing
		// was written on a cancelled context and records the 499.
		return
	}
	env, status := envelopeFor(err)
	writeJSON(w, status, env)
}

// encodeErr renders the envelope for an error as standalone JSON bytes
// (batch sub-responses embed these).
func encodeErr(err error) ([]byte, int) {
	env, status := envelopeFor(err)
	body, mErr := encodeJSON(env)
	if mErr != nil { // cannot happen: the envelope is plain data
		body = []byte(`{"error":{"code":"internal","message":"encoding failure","status":500},"message":"encoding failure"}` + "\n")
		status = http.StatusInternalServerError
	}
	return body, status
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}
