package minserve

import (
	"net/http"
	"strings"

	"minequiv/internal/codec"
	"minequiv/internal/jobs"
)

// Per-request content negotiation for the work endpoints. The wire
// codec is chosen independently per direction: Content-Type picks how
// the request body is decoded, Accept picks how the response body is
// rendered, and the two may differ (a JSON client can ask for binary
// stats, a binary sweeper can ask for a JSON error-friendly response).
// Error envelopes are always JSON — a client debugging a 400 should
// never need a frame decoder.

// MediaTypeBinary is the negotiated binary wire codec (internal/codec
// frames). Send it as Content-Type to submit binary request bodies and
// as Accept to receive binary response bodies; any other Content-Type
// besides application/json (or curl's default form-urlencoded, read
// as JSON) is rejected 415 unsupported_media_type.
const MediaTypeBinary = "application/x-min-bin"

// wire is one request's negotiated codec pair.
type wire struct {
	reqBin  bool // request body is a binary frame
	respBin bool // response body should be a binary frame
}

// negotiate resolves the codecs of one work request from its
// Content-Type and Accept headers and counts the choice in /metrics.
// An unrecognized Content-Type is a 415; Accept never fails — a client
// that accepts nothing we speak still gets JSON, the default.
// application/x-www-form-urlencoded is read as JSON: it is what bare
// `curl -d` stamps on every body, the documented quickstart depends
// on it, and pre-0.9 servers never looked at Content-Type at all.
func (s *server) negotiate(r *http.Request) (wire, error) {
	var wi wire
	media, _, _ := strings.Cut(r.Header.Get("Content-Type"), ";")
	switch strings.TrimSpace(media) {
	case "", "application/json", "application/x-www-form-urlencoded":
	case MediaTypeBinary:
		wi.reqBin = true
	default:
		return wire{}, unsupportedMediaType(strings.TrimSpace(media))
	}
	wi.respBin = acceptsBinary(r)
	s.metrics.countWire(wi)
	return wi, nil
}

// acceptsBinary checks the Accept header for the binary media type
// (media parameters like ;q= are ignored, as in wantsSSE).
func acceptsBinary(r *http.Request) bool {
	for _, accept := range r.Header.Values("Accept") {
		for _, part := range strings.Split(accept, ",") {
			media, _, _ := strings.Cut(part, ";")
			if strings.TrimSpace(media) == MediaTypeBinary {
				return true
			}
		}
	}
	return false
}

// decodeRequest parses a work request body under the negotiated
// request codec. Binary frame failures surface as the same 400
// bad_request a malformed JSON body gets.
func decodeRequest(wi wire, body []byte, v any) error {
	if !wi.reqBin {
		return decodeBytes(body, v)
	}
	if err := codec.Decode(body, v); err != nil {
		return badRequest("invalid binary request body: %v", err)
	}
	return nil
}

// renderFor picks the response renderer: the JSON encoder whose bytes
// the golden tests pin, or the binary codec.
func renderFor(wi wire) func(any) ([]byte, error) {
	if wi.respBin {
		return codec.Encode
	}
	return encodeJSON
}

// rawEndpoint namespaces the response cache's raw-body lookaside by
// wire codec: the same raw bytes mean different things under different
// request codecs, and the cached rendered bytes differ per response
// codec. Only constant strings are returned so the warm probe stays
// allocation-free.
func rawEndpoint(endpoint string, wi wire) string {
	if !wi.reqBin && !wi.respBin {
		return endpoint
	}
	switch endpoint {
	case "check":
		switch {
		case wi.reqBin && wi.respBin:
			return "check|b>b"
		case wi.reqBin:
			return "check|b>j"
		default:
			return "check|j>b"
		}
	case "route":
		switch {
		case wi.reqBin && wi.respBin:
			return "route|b>b"
		case wi.reqBin:
			return "route|b>j"
		default:
			return "route|j>b"
		}
	}
	return endpoint
}

// headerBin is the shared Content-Type value slice for binary
// responses (see headerJSON).
var headerBin = []string{MediaTypeBinary}

// writeWireBytes writes a pre-rendered body under the negotiated
// response codec; bin=false is byte-identical to writeJSONBytes.
func writeWireBytes(w http.ResponseWriter, status int, body []byte, xCache []string, bin bool) {
	if !bin {
		writeJSONBytes(w, status, body, xCache)
		return
	}
	h := w.Header()
	h["Content-Type"] = headerBin
	if xCache != nil {
		h["X-Cache"] = xCache
	}
	w.WriteHeader(status)
	_, _ = w.Write(body)
}

// EncodeBinaryRequest transcodes a JSON request body for one work
// endpoint ("check", "route", "simulate", "batch" or "jobs") into the
// binary wire codec, for clients and load generators whose request
// mixes are authored in JSON. Batch sub-requests are transcoded
// recursively and flagged binary in the envelope.
func EncodeBinaryRequest(endpoint string, jsonBody []byte) ([]byte, error) {
	switch endpoint {
	case "check":
		var v checkRequest
		if err := decodeBytes(jsonBody, &v); err != nil {
			return nil, err
		}
		return codec.Encode(&v)
	case "route":
		var v routeRequest
		if err := decodeBytes(jsonBody, &v); err != nil {
			return nil, err
		}
		return codec.Encode(&v)
	case "simulate":
		var v simulateRequest
		if err := decodeBytes(jsonBody, &v); err != nil {
			return nil, err
		}
		return codec.Encode(&v)
	case "batch":
		var v batchRequest
		if err := decodeBytes(jsonBody, &v); err != nil {
			return nil, err
		}
		for i := range v.Requests {
			item := &v.Requests[i]
			sub, err := EncodeBinaryRequest(item.Op, item.Request)
			if err != nil {
				return nil, err
			}
			item.Request = sub
			item.Bin = true
		}
		return codec.Encode(&v)
	case "jobs":
		var v jobs.Spec
		if err := decodeBytes(jsonBody, &v); err != nil {
			return nil, err
		}
		return codec.Encode(&v)
	default:
		return nil, badRequest("unknown endpoint %q", endpoint)
	}
}
