// Package minserve exposes the public min API as an HTTP JSON service.
// It is deliberately built on nothing but minequiv/min and the standard
// library — the service is the proof that the façade API is sufficient
// for serving network construction, equivalence checking, routing and
// traffic simulation to external consumers.
//
// Endpoints (all JSON):
//
//	GET  /v1/networks   the catalog, the scenario registry and the limits
//	GET  /v1/healthz    liveness: version, uptime, cache snapshot
//	GET  /v1/stats      response-cache hit/miss counters
//	POST /v1/check      characterization report (+ optional isomorphism)
//	POST /v1/route      one routed path, with the tag schedule when PIPID
//	POST /v1/simulate   wave or buffered statistics, seeded and reproducible
//
// /v1/route and /v1/simulate accept an optional `faults` object (a
// min.FaultPlan): routing then avoids the pinned dead/stuck switches
// and severed links, and simulations degrade the fabric with per-trial
// fault sampling — still byte-reproducible from (seed, faults).
//
// Responses are deterministic: the same request body (same seed) yields
// a byte-identical response body. Request contexts are threaded through
// to the simulation engine, so a client that disconnects mid-simulation
// stops the run within one trial.
//
// /v1/check and /v1/route are served through a bounded LRU response
// cache keyed by the network's canonical arc hash plus the request
// parameters, so repeated checks of the same topology skip the analysis
// entirely; a hit replays the exact bytes of the cold response (the
// X-Cache header says which happened) and GET /v1/stats exposes the
// counters. Config.CacheEntries bounds it; a negative value disables
// caching.
package minserve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"time"

	"minequiv/min"
)

// Config bounds what one request may ask of the server.
type Config struct {
	// MaxBodyBytes caps the request body size. Default 1 MiB.
	MaxBodyBytes int64
	// MaxStages caps network size (terminals = 2^stages). Default 10.
	MaxStages int
	// MaxTrials caps waves (wave model) and replications (buffered).
	// Default 100000.
	MaxTrials int
	// MaxCycles caps cycles+warmup per buffered replication. Default
	// 200000.
	MaxCycles int
	// MaxWorkers caps the per-request worker count. Default GOMAXPROCS.
	MaxWorkers int
	// MaxFaults caps the pinned-fault list length of a request's fault
	// plan. Default 256.
	MaxFaults int
	// CacheEntries bounds the LRU response cache serving repeated
	// /v1/check and /v1/route requests on the same topology (keyed by
	// the network's canonical arc hash plus request parameters; hits
	// are byte-identical to a cold run). Default 256; negative
	// disables caching.
	CacheEntries int
}

func (c Config) withDefaults() Config {
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.MaxStages <= 0 {
		c.MaxStages = 10
	}
	if c.MaxStages > min.MaxStages {
		c.MaxStages = min.MaxStages
	}
	if c.MaxTrials <= 0 {
		c.MaxTrials = 100000
	}
	if c.MaxCycles <= 0 {
		c.MaxCycles = 200000
	}
	if c.MaxWorkers <= 0 {
		c.MaxWorkers = runtime.GOMAXPROCS(0)
	}
	if c.MaxFaults <= 0 {
		c.MaxFaults = 256
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 256
	}
	return c
}

// Version identifies the service build; /v1/healthz reports it.
const Version = "0.6.0"

type server struct {
	cfg   Config
	cache *responseCache // nil when CacheEntries < 0
	start time.Time
	now   func() time.Time // injectable for the healthz golden test
}

func newServer(cfg Config) *server {
	cfg = cfg.withDefaults()
	return &server{
		cfg:   cfg,
		cache: newResponseCache(cfg.CacheEntries),
		start: time.Now(),
		now:   time.Now,
	}
}

// handler builds the route table.
func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/networks", s.handleNetworks)
	mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("POST /v1/check", s.handleCheck)
	mux.HandleFunc("POST /v1/route", s.handleRoute)
	mux.HandleFunc("POST /v1/simulate", s.handleSimulate)
	return mux
}

// NewHandler returns the service's HTTP handler. Zero-value Config
// fields take the documented defaults.
func NewHandler(cfg Config) http.Handler {
	return newServer(cfg).handler()
}

// errorBody is the uniform error envelope.
type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

// httpError is an error with a chosen status code.
type httpError struct {
	status int
	msg    string
}

func (e *httpError) Error() string { return e.msg }

func badRequest(format string, args ...any) error {
	return &httpError{status: http.StatusBadRequest, msg: fmt.Sprintf(format, args...)}
}

func writeErr(w http.ResponseWriter, r *http.Request, err error) {
	// A dead client gets no body; report 499-style close as 400 is
	// pointless — just bail.
	if r.Context().Err() != nil {
		return
	}
	status := http.StatusBadRequest
	var he *httpError
	if errors.As(err, &he) {
		status = he.status
	}
	writeJSON(w, status, errorBody{Error: err.Error()})
}

// decode reads one JSON body with the configured size limit, rejecting
// unknown fields and trailing garbage so malformed requests fail loudly
// instead of half-applying.
func (s *server) decode(w http.ResponseWriter, r *http.Request, v any) error {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			return &httpError{status: http.StatusRequestEntityTooLarge, msg: err.Error()}
		}
		return badRequest("invalid request body: %v", err)
	}
	if dec.More() {
		return badRequest("invalid request body: trailing data")
	}
	return nil
}

// bodyPool recycles the read buffers of the cached endpoints: a warm
// hit needs the raw bytes only for the lookaside probe, so the buffer
// is returned as soon as the handler finishes.
var bodyPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// readBody slurps the request body into a pooled buffer under the
// configured size limit. The returned bytes alias the pool buffer:
// release must be called once they are no longer referenced, and
// anything stored past the handler must copy them first (the cache's
// raw index does).
func (s *server) readBody(w http.ResponseWriter, r *http.Request) ([]byte, func(), error) {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	buf := bodyPool.Get().(*bytes.Buffer)
	buf.Reset()
	if _, err := buf.ReadFrom(r.Body); err != nil {
		bodyPool.Put(buf)
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			return nil, nil, &httpError{status: http.StatusRequestEntityTooLarge, msg: err.Error()}
		}
		return nil, nil, badRequest("invalid request body: %v", err)
	}
	return buf.Bytes(), func() { bodyPool.Put(buf) }, nil
}

// decodeBytes is decode over an in-memory body (same strictness).
func decodeBytes(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return badRequest("invalid request body: %v", err)
	}
	if dec.More() {
		return badRequest("invalid request body: trailing data")
	}
	return nil
}

// networkSpec names or defines the network a request operates on:
// either a catalog name (or "tail-cycle") with a stage count, or
// explicit per-stage permutations.
type networkSpec struct {
	Network    string  `json:"network,omitempty"`
	Stages     int     `json:"stages"`
	LinkPerms  [][]int `json:"linkPerms,omitempty"`
	IndexPerms [][]int `json:"indexPerms,omitempty"`
}

// TailCycleName requests the paper's Banyan-but-not-equivalent
// counterexample in a networkSpec.
const TailCycleName = "tail-cycle"

func (s *server) buildNetwork(spec networkSpec) (*min.Network, error) {
	if spec.Stages < 2 || spec.Stages > s.cfg.MaxStages {
		return nil, badRequest("stages must be in [2,%d], got %d", s.cfg.MaxStages, spec.Stages)
	}
	switch {
	case spec.LinkPerms != nil && spec.IndexPerms != nil:
		return nil, badRequest("give linkPerms or indexPerms, not both")
	case spec.LinkPerms != nil:
		name := spec.Network
		if name == "" {
			name = "custom"
		}
		return min.FromLinkPerms(name, spec.Stages, spec.LinkPerms)
	case spec.IndexPerms != nil:
		name := spec.Network
		if name == "" {
			name = "custom"
		}
		return min.FromIndexPerms(name, spec.Stages, spec.IndexPerms)
	case spec.Network == TailCycleName:
		return min.TailCycle(spec.Stages)
	case spec.Network != "":
		return min.Build(spec.Network, spec.Stages)
	default:
		return nil, badRequest("missing network name or permutation definition")
	}
}

// networksResponse is the GET /v1/networks body.
type networksResponse struct {
	Networks  []min.NetworkInfo  `json:"networks"`
	Scenarios []min.ScenarioInfo `json:"scenarios"`
	MaxStages int                `json:"maxStages"`
	MaxTrials int                `json:"maxTrials"`
	MaxCycles int                `json:"maxCycles"`
}

func (s *server) handleNetworks(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, networksResponse{
		Networks:  min.Catalog(),
		Scenarios: min.Scenarios(),
		MaxStages: s.cfg.MaxStages,
		MaxTrials: s.cfg.MaxTrials,
		MaxCycles: s.cfg.MaxCycles,
	})
}

// checkRequest asks for the characterization report of one network;
// with Iso true the explicit isomorphism onto Baseline is included
// (only present when the network is equivalent).
type checkRequest struct {
	networkSpec
	Iso bool `json:"iso,omitempty"`
}

type checkResponse struct {
	Report min.Report       `json:"report"`
	Iso    *min.Isomorphism `json:"iso,omitempty"`
}

func (s *server) handleCheck(w http.ResponseWriter, r *http.Request) {
	body, release, err := s.readBody(w, r)
	if err != nil {
		writeErr(w, r, err)
		return
	}
	defer release()
	// Fast path: a byte-identical repeat of an earlier successful
	// request replays its response straight from the raw lookaside,
	// skipping the JSON decode, the network build and the key render.
	if s.cache != nil {
		if cached, ok := s.cache.getRaw("check", body); ok {
			writeJSONBytes(w, http.StatusOK, cached, headerHit)
			return
		}
	}
	var req checkRequest
	if err := decodeBytes(body, &req); err != nil {
		writeErr(w, r, err)
		return
	}
	nw, err := s.buildNetwork(req.networkSpec)
	if err != nil {
		writeErr(w, r, err)
		return
	}
	// Building the network is cheap; the characterization (and the
	// isomorphism construction) is what the cache skips. The key folds
	// in everything the body depends on: the wiring (canonical arc
	// hash), the reported name/size, and the iso flag.
	key := fmt.Sprintf("check|%016x|%s|%d|iso=%t", nw.Fingerprint(), nw.Name(), nw.Stages(), req.Iso)
	s.serveCached(w, r, key, "check", body, func() (any, error) {
		resp := checkResponse{Report: min.Check(nw)}
		if req.Iso && resp.Report.Equivalent {
			iso, err := min.Iso(nw)
			if err != nil {
				return nil, err
			}
			resp.Iso = &iso
		}
		return resp, nil
	})
}

// statsResponse is the GET /v1/stats body.
type statsResponse struct {
	Cache CacheStats `json:"cache"`
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, statsResponse{Cache: s.cache.stats()})
}

// healthzResponse is the GET /v1/healthz body: enough for a load
// balancer to gate on and for an operator to eyeball.
type healthzResponse struct {
	Status        string     `json:"status"`
	Version       string     `json:"version"`
	UptimeSeconds int64      `json:"uptimeSeconds"`
	Cache         CacheStats `json:"cache"`
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, healthzResponse{
		Status:        "ok",
		Version:       Version,
		UptimeSeconds: int64(s.now().Sub(s.start) / time.Second),
		Cache:         s.cache.stats(),
	})
}

// checkFaults bounds a request's fault plan: the pinned list length is
// capped, coordinates and rates are validated downstream by the min
// layer (those failures surface as 400s through the normal error path).
func (s *server) checkFaults(p *min.FaultPlan) error {
	if p == nil {
		return nil
	}
	if len(p.Faults) > s.cfg.MaxFaults {
		return badRequest("fault list too long: %d > %d", len(p.Faults), s.cfg.MaxFaults)
	}
	return nil
}

type routeRequest struct {
	networkSpec
	Src int `json:"src"`
	Dst int `json:"dst"`
	// Faults degrades the fabric: the route then avoids the plan's
	// pinned dead/stuck switches and severed links (random rates are
	// rejected — routing has no trial to sample them in).
	Faults *min.FaultPlan `json:"faults,omitempty"`
}

type routeResponse struct {
	Network string   `json:"network"`
	Path    min.Path `json:"path"`
	// TagPositions is the bit-directed routing schedule, present for
	// PIPID-defined networks.
	TagPositions []int `json:"tagPositions,omitempty"`
}

func (s *server) handleRoute(w http.ResponseWriter, r *http.Request) {
	body, release, err := s.readBody(w, r)
	if err != nil {
		writeErr(w, r, err)
		return
	}
	defer release()
	if s.cache != nil {
		if cached, ok := s.cache.getRaw("route", body); ok {
			writeJSONBytes(w, http.StatusOK, cached, headerHit)
			return
		}
	}
	var req routeRequest
	if err := decodeBytes(body, &req); err != nil {
		writeErr(w, r, err)
		return
	}
	nw, err := s.buildNetwork(req.networkSpec)
	if err != nil {
		writeErr(w, r, err)
		return
	}
	if req.Src < 0 || req.Src >= nw.Terminals() || req.Dst < 0 || req.Dst >= nw.Terminals() {
		writeErr(w, r, badRequest("terminal out of range [0,%d): src=%d dst=%d",
			nw.Terminals(), req.Src, req.Dst))
		return
	}
	if err := s.checkFaults(req.Faults); err != nil {
		writeErr(w, r, err)
		return
	}
	// The body also carries the PIPID tag schedule, which depends on the
	// construction's index permutations, not only on the arcs — fold
	// them into the key so a network built a way that skips PIPID
	// detection can never replay a PIPID response or vice versa. The
	// fault plan shapes the path too, so it is folded in as well (an
	// absent plan and an empty one key identically — both route the
	// intact fabric).
	thetas, _ := nw.IndexPerms()
	var faults min.FaultPlan
	if req.Faults != nil {
		faults = *req.Faults
	}
	key := fmt.Sprintf("route|%016x|%s|%d|%v|%d>%d|faults=%+v",
		nw.Fingerprint(), nw.Name(), nw.Stages(), thetas, req.Src, req.Dst, faults)
	s.serveCached(w, r, key, "route", body, func() (any, error) {
		if !faults.Empty() {
			path, err := min.RouteUnderFaults(nw, req.Src, req.Dst, faults)
			if err != nil {
				return nil, err
			}
			// No tag schedule: a degraded fabric is routed by
			// reachability, not stateless destination tags.
			return routeResponse{Network: nw.Name(), Path: path}, nil
		}
		path, err := min.Route(nw, req.Src, req.Dst)
		if err != nil {
			return nil, err
		}
		resp := routeResponse{Network: nw.Name(), Path: path}
		if tags, err := min.TagPositions(nw); err == nil {
			resp.TagPositions = tags
		}
		return resp, nil
	})
}

// simulateRequest runs the wave model (default) or the buffered model.
// Zero-valued tunables take the min package defaults (waves 500,
// replications 1, queue 4, lanes 1, cycles 5000, warmup 500 — resolved
// before the server's limits are checked); Seed defaults to 1 so
// unseeded requests are reproducible too.
type simulateRequest struct {
	networkSpec
	Model    string  `json:"model,omitempty"` // "wave" (default) or "buffered"
	Scenario string  `json:"scenario,omitempty"`
	Load     float64 `json:"load,omitempty"`
	HotDst   int     `json:"hotDst,omitempty"`
	HotProb  float64 `json:"hotProb,omitempty"`
	Seed     uint64  `json:"seed,omitempty"`
	Workers  int     `json:"workers,omitempty"`
	// Faults degrades the fabric for the run: pinned faults hold for
	// every trial, random rates are redrawn per trial; the response
	// stays a pure function of the request body.
	Faults *min.FaultPlan `json:"faults,omitempty"`

	// Wave-model fields. Kernel selects the executor ("auto" default,
	// "scalar", "bit"); kernels are byte-identical per (seed, trial)
	// stream, so responses never depend on the choice.
	Waves  int    `json:"waves,omitempty"`
	Kernel string `json:"kernel,omitempty"`

	Replications int    `json:"replications,omitempty"` // buffered model
	Queue        int    `json:"queue,omitempty"`
	Lanes        int    `json:"lanes,omitempty"`
	Cycles       int    `json:"cycles,omitempty"`
	Warmup       int    `json:"warmup,omitempty"`
	Arbiter      string `json:"arbiter,omitempty"`
	LaneSelect   string `json:"laneSelect,omitempty"`
}

type simulateResponse struct {
	Model    string             `json:"model"`
	Wave     *min.WaveStats     `json:"wave,omitempty"`
	Buffered *min.BufferedStats `json:"buffered,omitempty"`
}

func (s *server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	var req simulateRequest
	if err := s.decode(w, r, &req); err != nil {
		writeErr(w, r, err)
		return
	}
	nw, err := s.buildNetwork(req.networkSpec)
	if err != nil {
		writeErr(w, r, err)
		return
	}
	if req.Workers < 0 || req.Workers > s.cfg.MaxWorkers {
		req.Workers = s.cfg.MaxWorkers
	}
	seed := req.Seed
	if seed == 0 {
		seed = 1
	}
	if err := s.checkFaults(req.Faults); err != nil {
		writeErr(w, r, err)
		return
	}
	opts := []min.Option{min.WithSeed(seed), min.WithWorkers(req.Workers)}
	if req.Faults != nil {
		opts = append(opts, min.WithFaults(*req.Faults))
	}
	if req.Scenario != "" {
		opts = append(opts, min.WithScenario(req.Scenario))
	}
	if req.Load != 0 {
		opts = append(opts, min.WithLoad(req.Load))
	}
	if req.HotProb != 0 || req.HotDst != 0 {
		opts = append(opts, min.WithHotspot(req.HotDst, req.HotProb))
	}
	switch req.Model {
	case "", "wave":
		if req.Replications != 0 || req.Queue != 0 || req.Lanes != 0 || req.Cycles != 0 ||
			req.Warmup != 0 || req.Arbiter != "" || req.LaneSelect != "" {
			writeErr(w, r, badRequest("buffered-model fields set on a wave request"))
			return
		}
		waves := req.Waves
		if waves == 0 {
			waves = 500
		}
		if waves < 1 || waves > s.cfg.MaxTrials {
			writeErr(w, r, badRequest("waves must be in [1,%d], got %d", s.cfg.MaxTrials, waves))
			return
		}
		kernel := min.Kernel(req.Kernel)
		if req.Kernel == "" {
			kernel = min.KernelAuto
		}
		st, err := min.Simulate(r.Context(), nw,
			append(opts, min.WithWaves(waves), min.WithKernel(kernel))...)
		if err != nil {
			writeErr(w, r, err)
			return
		}
		writeJSON(w, http.StatusOK, simulateResponse{Model: "wave", Wave: &st})

	case "buffered":
		if req.Waves != 0 {
			writeErr(w, r, badRequest("waves is a wave-model field; buffered runs use cycles/replications"))
			return
		}
		if req.Kernel != "" {
			writeErr(w, r, badRequest("kernel selects the wave executor; the buffered model has no bit-sliced form"))
			return
		}
		// Resolve defaults BEFORE checking the operator's limits, so an
		// omitted field cannot slip a default past a cap set below it.
		// A zero field means "default"; negatives are rejected.
		reps := valueOr(req.Replications, 1)
		cycles := valueOr(req.Cycles, 5000)
		warmup := valueOr(req.Warmup, 500)
		queue := valueOr(req.Queue, 4)
		lanes := valueOr(req.Lanes, 1)
		if reps < 0 || cycles < 0 || warmup < 0 || queue < 0 || lanes < 0 {
			writeErr(w, r, badRequest("negative buffered-model field"))
			return
		}
		if reps > s.cfg.MaxTrials {
			writeErr(w, r, badRequest("replications must be <= %d, got %d", s.cfg.MaxTrials, reps))
			return
		}
		if cycles+warmup > s.cfg.MaxCycles {
			writeErr(w, r, badRequest("cycles+warmup must be <= %d, got %d", s.cfg.MaxCycles, cycles+warmup))
			return
		}
		opts = append(opts,
			min.WithReplications(reps), min.WithQueue(queue), min.WithLanes(lanes),
			min.WithCycles(cycles), min.WithWarmup(warmup))
		if req.Arbiter != "" {
			opts = append(opts, min.WithArbiter(min.Arbiter(req.Arbiter)))
		}
		if req.LaneSelect != "" {
			opts = append(opts, min.WithLaneSelect(min.LaneSelect(req.LaneSelect)))
		}
		st, err := min.SimulateBuffered(r.Context(), nw, opts...)
		if err != nil {
			writeErr(w, r, err)
			return
		}
		writeJSON(w, http.StatusOK, simulateResponse{Model: "buffered", Buffered: &st})

	default:
		writeErr(w, r, badRequest("unknown model %q (wave or buffered)", req.Model))
	}
}

// valueOr substitutes the default for an omitted (zero) request field.
func valueOr(v, def int) int {
	if v == 0 {
		return def
	}
	return v
}
