// Package minserve exposes the public min API as an HTTP JSON service.
// The request/response surface is built on minequiv/min and the
// standard library; the asynchronous job plane below it is the
// internal/jobs scheduler — the service is the proof that the façade
// API is sufficient for serving network construction, equivalence
// checking, routing and traffic simulation to external consumers at
// production load, including sweeps too long for one request.
//
// Endpoints (JSON unless noted; the POST work endpoints and the job
// result additionally speak the negotiated binary wire codec — see
// the codec paragraph below):
//
//	GET  /v1/networks   the catalog and the scenario registry
//	GET  /v1/limits     every operator-configured request/serving limit
//	GET  /v1/healthz    liveness: version, uptime, cache + serving stats
//	GET  /v1/stats      deprecated alias for the cache counters (use
//	                    /v1/healthz; responses carry a Deprecation header)
//	GET  /metrics       Prometheus text exposition (version 0.0.4)
//	POST /v1/check      characterization report (+ optional isomorphism)
//	POST /v1/route      one routed path, with the tag schedule when PIPID
//	POST /v1/simulate   wave or buffered statistics, seeded and reproducible
//	POST /v1/batch      up to MaxBatch heterogeneous check/route/simulate
//	                    sub-requests in one body, positionally answered
//
// Long-running sweeps run on the asynchronous job plane instead of
// inside one request:
//
//	POST   /v1/jobs              submit a sweep spec; 202 + job status
//	GET    /v1/jobs              list resident jobs
//	GET    /v1/jobs/{id}         job status (state, shard progress)
//	GET    /v1/jobs/{id}/result  the finalized result bytes (409 until
//	                             terminal; byte-stable across restarts)
//	GET    /v1/jobs/{id}/events  progress stream: SSE when the client
//	                             Accepts text/event-stream, JSON
//	                             long-poll (?since=N&waitMs=D) otherwise
//	DELETE /v1/jobs/{id}         cancel a live job
//
// Jobs are checkpointed per shard under Config.JobsDir: a crashed or
// restarted server resumes every unfinished job and the eventual
// result bytes are identical to an uninterrupted run's. Shards that
// keep failing are quarantined after their retry budget and the job
// completes degraded, its result naming what was lost.
//
// /v1/route and /v1/simulate accept an optional `faults` object (a
// min.FaultPlan): routing then avoids the pinned dead/stuck switches
// and severed links, and simulations degrade the fabric with per-trial
// fault sampling — still byte-reproducible from (seed, faults).
//
// Responses are deterministic: the same request body (same seed) yields
// a byte-identical response body. Request contexts are threaded through
// to the simulation engine, so a client that disconnects mid-simulation
// stops the run within one trial (batches stop within one sub-request).
//
// The work endpoints speak two wire codecs, negotiated per request:
// JSON (the default, byte-for-byte stable) and the internal/codec
// binary frame format. Content-Type: application/x-min-bin submits a
// binary request body, Accept: application/x-min-bin asks for a binary
// response, and the two directions are independent; any other
// Content-Type is rejected 415 unsupported_media_type. Binary
// sub-requests ride inside a binary /v1/batch envelope (flagged per
// item), POST /v1/jobs accepts a binary sweep spec, and GET
// /v1/jobs/{id}/result transcodes the manifest to binary on Accept.
// Error envelopes are always JSON.
//
// Errors use a structured envelope with stable machine-readable codes:
//
//	{"error":{"code":"bad_request","message":"...","status":400},"message":"..."}
//
// (the top-level "message" duplicates error.message for pre-0.7 clients
// of the flat envelope and will be removed in the next release).
//
// /v1/check and /v1/route are served through a bounded LRU response
// cache keyed by the network's canonical arc hash plus the request
// parameters; a hit replays the exact bytes of the cold response (the
// X-Cache header, or the per-item `cache` field of a batch sub-response,
// says which happened). Config.CacheEntries bounds it; a negative value
// disables caching.
//
// The POST endpoints are admission-controlled: Config.MaxConcurrent
// requests execute at once, Config.MaxQueueDepth more may queue for up
// to Config.QueueWait, and everything beyond is shed with 429 +
// Retry-After. The GET endpoints — including every job status/result/
// events read — bypass admission so observability and job polling stay
// reachable under saturation; only job submission competes for slots.
package minserve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"time"

	"minequiv/internal/codec"
	"minequiv/internal/jobs"
	"minequiv/min"
)

// Config bounds what one request may ask of the server and how much
// concurrent work the server accepts.
type Config struct {
	// MaxBodyBytes caps the request body size. Default 1 MiB.
	MaxBodyBytes int64
	// MaxStages caps network size (terminals = 2^stages). Default 10.
	MaxStages int
	// MaxTrials caps waves (wave model) and replications (buffered).
	// Default 100000.
	MaxTrials int
	// MaxCycles caps cycles+warmup per buffered replication. Default
	// 200000.
	MaxCycles int
	// MaxWorkers caps the per-request worker count. Default GOMAXPROCS.
	MaxWorkers int
	// MaxFaults caps the pinned-fault list length of a request's fault
	// plan. Default 256.
	MaxFaults int
	// CacheEntries bounds the LRU response cache serving repeated
	// /v1/check and /v1/route requests on the same topology (keyed by
	// the network's canonical arc hash plus request parameters; hits
	// are byte-identical to a cold run). Default 256; negative
	// disables caching.
	CacheEntries int
	// MaxBatch caps the sub-request count of one /v1/batch body.
	// Default 64.
	MaxBatch int
	// MaxConcurrent bounds how many admitted POST requests execute at
	// once. Default GOMAXPROCS; negative disables admission control
	// entirely (unbounded concurrency).
	MaxConcurrent int
	// MaxQueueDepth bounds how many requests may wait for an execution
	// slot beyond MaxConcurrent; excess is shed with 429. Default 64;
	// negative allows no waiters (shed as soon as all slots are busy).
	MaxQueueDepth int
	// QueueWait bounds how long one request may wait in the queue
	// before being shed. Default 1s; negative disables waiting.
	QueueWait time.Duration
	// RequestTimeout is the per-request deadline covering queue wait
	// and execution; expiry yields 503 deadline_exceeded. Default 0
	// (no deadline).
	RequestTimeout time.Duration
	// JobsDir is where the job plane checkpoints sweeps. "" (the
	// default) runs jobs in memory only: they work, but do not survive
	// a restart.
	JobsDir string
	// JobWorkers bounds the job plane's shard executor pool. Default
	// GOMAXPROCS.
	JobWorkers int
	// JobTTL garbage-collects terminal jobs (and their checkpoint
	// directories) this long after they finish. Default 1h; negative
	// keeps them forever.
	JobTTL time.Duration
	// MaxJobs caps live (pending/running) jobs; submissions beyond it
	// are shed with 429. Default 16.
	MaxJobs int
	// MaxJobCells caps the grid size (networks × loads × fault rates)
	// of one submitted sweep. Default 256.
	MaxJobCells int
	// JobShardTrials is the default trials-per-shard granularity for
	// specs that leave shardTrials unset. Default 2048.
	JobShardTrials int
}

func (c Config) withDefaults() Config {
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.MaxStages <= 0 {
		c.MaxStages = 10
	}
	if c.MaxStages > min.MaxStages {
		c.MaxStages = min.MaxStages
	}
	if c.MaxTrials <= 0 {
		c.MaxTrials = 100000
	}
	if c.MaxCycles <= 0 {
		c.MaxCycles = 200000
	}
	if c.MaxWorkers <= 0 {
		c.MaxWorkers = runtime.GOMAXPROCS(0)
	}
	if c.MaxFaults <= 0 {
		c.MaxFaults = 256
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 256
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 64
	}
	if c.MaxConcurrent == 0 {
		c.MaxConcurrent = runtime.GOMAXPROCS(0)
	}
	switch {
	case c.MaxQueueDepth == 0:
		c.MaxQueueDepth = 64
	case c.MaxQueueDepth < 0:
		c.MaxQueueDepth = 0
	}
	if c.QueueWait == 0 {
		c.QueueWait = time.Second
	}
	if c.JobWorkers <= 0 {
		c.JobWorkers = runtime.GOMAXPROCS(0)
	}
	if c.JobTTL == 0 {
		c.JobTTL = time.Hour
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = 16
	}
	if c.MaxJobCells <= 0 {
		c.MaxJobCells = 256
	}
	if c.JobShardTrials <= 0 {
		c.JobShardTrials = 2048
	}
	return c
}

// Version identifies the service build; /v1/healthz reports it.
const Version = "0.9.0"

type server struct {
	cfg     Config
	cache   *responseCache // nil when CacheEntries < 0
	metrics *metrics
	adm     *admission // nil when MaxConcurrent < 0
	jobs    *jobs.Manager
	start   time.Time
	now     func() time.Time // injectable for the healthz golden test
}

func newServer(cfg Config) (*server, error) {
	cfg = cfg.withDefaults()
	ttl := cfg.JobTTL
	if ttl < 0 {
		ttl = 0 // the manager's "keep forever"
	}
	jm, err := jobs.Open(jobs.Config{
		Dir:         cfg.JobsDir,
		Workers:     cfg.JobWorkers,
		ShardTrials: cfg.JobShardTrials,
		TTL:         ttl,
		MaxActive:   cfg.MaxJobs,
	})
	if err != nil {
		return nil, err
	}
	return &server{
		cfg:     cfg,
		cache:   newResponseCache(cfg.CacheEntries),
		metrics: newMetrics(),
		adm:     newAdmission(cfg),
		jobs:    jm,
		start:   time.Now(),
		now:     time.Now,
	}, nil
}

// handler builds the route table: observability endpoints bypass
// admission, work endpoints go through it, and everything is
// instrumented.
func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/networks", s.handleNetworks)
	mux.HandleFunc("GET /v1/limits", s.handleLimits)
	mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	// Job reads are observability: registered directly (not through
	// admit) so polling a running sweep can never be shed while the
	// synchronous plane is saturated. Submission is work and queues
	// with the other POSTs.
	mux.HandleFunc("GET /v1/jobs", s.handleJobList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobGet)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleJobResult)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleJobEvents)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleJobCancel)
	work := s.admit(http.HandlerFunc(s.handleWork))
	mux.Handle("POST /v1/check", work)
	mux.Handle("POST /v1/route", work)
	mux.Handle("POST /v1/simulate", work)
	mux.Handle("POST /v1/batch", work)
	mux.Handle("POST /v1/jobs", work)
	return s.instrument(mux)
}

// handleWork dispatches the admitted POST endpoints (they share one
// admission wrapper so a batch and a single request compete for the
// same slots).
func (s *server) handleWork(w http.ResponseWriter, r *http.Request) {
	switch r.URL.Path {
	case "/v1/check":
		s.handleCheck(w, r)
	case "/v1/route":
		s.handleRoute(w, r)
	case "/v1/simulate":
		s.handleSimulate(w, r)
	case "/v1/batch":
		s.handleBatch(w, r)
	case "/v1/jobs":
		s.handleJobSubmit(w, r)
	default:
		http.NotFound(w, r)
	}
}

// Server is the service plus its background job plane. Use New when
// the process needs a graceful shutdown hook; NewHandler remains for
// callers that only want the route table.
type Server struct {
	s *server
}

// New builds the service. The only error source is opening the
// checkpoint directory (Config.JobsDir) and resuming the jobs found
// there.
func New(cfg Config) (*Server, error) {
	s, err := newServer(cfg)
	if err != nil {
		return nil, err
	}
	return &Server{s: s}, nil
}

// Handler returns the service's HTTP handler.
func (sv *Server) Handler() http.Handler { return sv.s.handler() }

// Close drains the job plane: no new shards start, in-flight shards
// finish and checkpoint, then the stores close. If ctx expires first
// the stragglers are aborted — their shards simply re-run after the
// next New on the same JobsDir. Idempotent.
func (sv *Server) Close(ctx context.Context) error { return sv.s.jobs.Drain(ctx) }

// NewHandler returns the service's HTTP handler. Zero-value Config
// fields take the documented defaults. It panics if Config.JobsDir is
// set but unusable; processes serving a checkpoint directory should
// use New and handle the error (and get Close for graceful drains).
func NewHandler(cfg Config) http.Handler {
	s, err := newServer(cfg)
	if err != nil {
		panic(fmt.Sprintf("minserve: opening job plane: %v", err))
	}
	return s.handler()
}

// bodyPool recycles the read buffers of the POST endpoints and the
// batch/metrics render buffers: a warm hit needs the raw bytes only for
// the lookaside probe, so the buffer is returned as soon as the handler
// finishes.
var bodyPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// readBody slurps the request body into a pooled buffer under the
// configured size limit. The returned bytes alias the pool buffer:
// release must be called once they are no longer referenced, and
// anything stored past the handler must copy them first (the cache's
// raw index does).
func (s *server) readBody(w http.ResponseWriter, r *http.Request) ([]byte, func(), error) {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	buf := bodyPool.Get().(*bytes.Buffer)
	buf.Reset()
	if _, err := buf.ReadFrom(r.Body); err != nil {
		bodyPool.Put(buf)
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			return nil, nil, &httpError{status: http.StatusRequestEntityTooLarge, code: CodeLimitExceeded, msg: err.Error()}
		}
		return nil, nil, badRequest("invalid request body: %v", err)
	}
	return buf.Bytes(), func() { bodyPool.Put(buf) }, nil
}

// decodeBytes is decode over an in-memory body (same strictness).
func decodeBytes(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return badRequest("invalid request body: %v", err)
	}
	if dec.More() {
		return badRequest("invalid request body: trailing data")
	}
	return nil
}

// The wire shapes of the work endpoints live in internal/codec — they
// are the single source of truth for both renderings (their JSON tags
// are this package's JSON API, their codec methods the binary one) —
// and are aliased here so the handlers read as before.
type (
	networkSpec      = codec.NetworkSpec
	checkRequest     = codec.CheckRequest
	checkResponse    = codec.CheckResponse
	routeRequest     = codec.RouteRequest
	routeResponse    = codec.RouteResponse
	simulateRequest  = codec.SimulateRequest
	simulateResponse = codec.SimulateResponse
)

// TailCycleName requests the paper's Banyan-but-not-equivalent
// counterexample in a networkSpec.
const TailCycleName = "tail-cycle"

func (s *server) buildNetwork(spec networkSpec) (*min.Network, error) {
	if spec.Stages > s.cfg.MaxStages {
		return nil, limitExceeded("stages must be in [2,%d], got %d", s.cfg.MaxStages, spec.Stages)
	}
	if spec.Stages < 2 {
		return nil, badRequest("stages must be in [2,%d], got %d", s.cfg.MaxStages, spec.Stages)
	}
	switch {
	case spec.LinkPerms != nil && spec.IndexPerms != nil:
		return nil, badRequest("give linkPerms or indexPerms, not both")
	case spec.LinkPerms != nil:
		name := spec.Network
		if name == "" {
			name = "custom"
		}
		return min.FromLinkPerms(name, spec.Stages, spec.LinkPerms)
	case spec.IndexPerms != nil:
		name := spec.Network
		if name == "" {
			name = "custom"
		}
		return min.FromIndexPerms(name, spec.Stages, spec.IndexPerms)
	case spec.Network == TailCycleName:
		return min.TailCycle(spec.Stages)
	case spec.Network != "":
		nw, err := min.Build(spec.Network, spec.Stages)
		if err != nil {
			return nil, unknownNetwork(err)
		}
		return nw, nil
	default:
		return nil, badRequest("missing network name or permutation definition")
	}
}

// networksResponse is the GET /v1/networks body. The limit fields are
// deprecated aliases of GET /v1/limits, kept populated for one release.
type networksResponse struct {
	Networks  []min.NetworkInfo  `json:"networks"`
	Scenarios []min.ScenarioInfo `json:"scenarios"`
	MaxStages int                `json:"maxStages"`
	MaxTrials int                `json:"maxTrials"`
	MaxCycles int                `json:"maxCycles"`
}

func (s *server) handleNetworks(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, networksResponse{
		Networks:  min.Catalog(),
		Scenarios: min.Scenarios(),
		MaxStages: s.cfg.MaxStages,
		MaxTrials: s.cfg.MaxTrials,
		MaxCycles: s.cfg.MaxCycles,
	})
}

// limitsResponse is the GET /v1/limits body: every operator-configured
// bound a client needs to size its requests, including the serving
// limits (batch size, admission bounds, deadlines).
type limitsResponse struct {
	MaxBodyBytes     int64 `json:"maxBodyBytes"`
	MaxStages        int   `json:"maxStages"`
	MaxTrials        int   `json:"maxTrials"`
	MaxCycles        int   `json:"maxCycles"`
	MaxWorkers       int   `json:"maxWorkers"`
	MaxFaults        int   `json:"maxFaults"`
	MaxBatch         int   `json:"maxBatch"`
	CacheEntries     int   `json:"cacheEntries"`
	MaxConcurrent    int   `json:"maxConcurrent"`
	MaxQueueDepth    int   `json:"maxQueueDepth"`
	QueueWaitMs      int64 `json:"queueWaitMs"`
	RequestTimeoutMs int64 `json:"requestTimeoutMs"`
	MaxJobs          int   `json:"maxJobs"`
	MaxJobCells      int   `json:"maxJobCells"`
	JobShardTrials   int   `json:"jobShardTrials"`
	JobTTLMs         int64 `json:"jobTtlMs"`
}

func (s *server) handleLimits(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, limitsResponse{
		MaxBodyBytes:     s.cfg.MaxBodyBytes,
		MaxStages:        s.cfg.MaxStages,
		MaxTrials:        s.cfg.MaxTrials,
		MaxCycles:        s.cfg.MaxCycles,
		MaxWorkers:       s.cfg.MaxWorkers,
		MaxFaults:        s.cfg.MaxFaults,
		MaxBatch:         s.cfg.MaxBatch,
		CacheEntries:     s.cfg.CacheEntries,
		MaxConcurrent:    s.cfg.MaxConcurrent,
		MaxQueueDepth:    s.cfg.MaxQueueDepth,
		QueueWaitMs:      s.cfg.QueueWait.Milliseconds(),
		RequestTimeoutMs: s.cfg.RequestTimeout.Milliseconds(),
		MaxJobs:          s.cfg.MaxJobs,
		MaxJobCells:      s.cfg.MaxJobCells,
		JobShardTrials:   s.cfg.JobShardTrials,
		JobTTLMs:         s.cfg.JobTTL.Milliseconds(),
	})
}

// execCheck serves one /v1/check body to rendered response bytes
// (trailing newline included on JSON), reporting whether the cache
// answered. Both the single handler and the batch endpoint call it, so
// a batch sub-response is byte-identical to the single call's body.
func (s *server) execCheck(wi wire, body []byte) ([]byte, bool, error) {
	// Fast path: a byte-identical repeat of an earlier successful
	// request replays its response straight from the raw lookaside,
	// skipping the request decode, the network build and the key render.
	// The lookaside namespace carries the codec pair, so a hit can only
	// replay bytes rendered under the same response codec.
	if s.cache != nil {
		if cached, ok := s.cache.getRaw(rawEndpoint("check", wi), body); ok {
			return cached, true, nil
		}
	}
	var req checkRequest
	if err := decodeRequest(wi, body, &req); err != nil {
		return nil, false, err
	}
	nw, err := s.buildNetwork(req.NetworkSpec)
	if err != nil {
		return nil, false, err
	}
	// Building the network is cheap; the characterization (and the
	// isomorphism construction) is what the cache skips. The key folds
	// in everything the body depends on: the wiring (canonical arc
	// hash), the reported name/size, the iso flag, and the response
	// codec (the cached value is rendered bytes, not the struct).
	key := fmt.Sprintf("check|%016x|%s|%d|iso=%t|bin=%t", nw.Fingerprint(), nw.Name(), nw.Stages(), req.Iso, wi.respBin)
	return s.computeCached(key, rawEndpoint("check", wi), body, renderFor(wi), func() (any, error) {
		resp := checkResponse{Report: min.Check(nw)}
		if req.Iso && resp.Report.Equivalent {
			iso, err := min.Iso(nw)
			if err != nil {
				return nil, err
			}
			resp.Iso = &iso
		}
		return resp, nil
	})
}

func (s *server) handleCheck(w http.ResponseWriter, r *http.Request) {
	wi, err := s.negotiate(r)
	if err != nil {
		writeErr(w, r, err)
		return
	}
	body, release, err := s.readBody(w, r)
	if err != nil {
		writeErr(w, r, err)
		return
	}
	defer release()
	resp, hit, err := s.execCheck(wi, body)
	if err != nil {
		writeErr(w, r, err)
		return
	}
	writeWireBytes(w, http.StatusOK, resp, s.cacheHeader(hit), wi.respBin)
}

// cacheHeader picks the X-Cache value; nil (no header) when caching is
// disabled.
func (s *server) cacheHeader(hit bool) []string {
	switch {
	case s.cache == nil:
		return nil
	case hit:
		return headerHit
	default:
		return headerMiss
	}
}

// statsResponse is the GET /v1/stats body.
type statsResponse struct {
	Cache CacheStats `json:"cache"`
}

// handleStats is deprecated: the counters moved into GET /v1/healthz.
// The path keeps serving for one release and announces its retirement
// with a Deprecation header (draft-ietf-httpapi-deprecation-header)
// pointing at the successor.
func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Deprecation", "true")
	w.Header().Set("Link", `</v1/healthz>; rel="successor-version"`)
	writeJSON(w, http.StatusOK, statsResponse{Cache: s.cache.stats()})
}

// ServingStats is the admission/serving-plane snapshot reported by
// GET /v1/healthz (the /metrics endpoint carries the same numbers in
// exposition format).
type ServingStats struct {
	Requests    uint64 `json:"requests"`
	InFlight    int64  `json:"inFlight"`
	QueueDepth  int64  `json:"queueDepth"`
	Shed        uint64 `json:"shed"`
	Disconnects uint64 `json:"disconnects"`
}

// healthzResponse is the GET /v1/healthz body: enough for a load
// balancer to gate on and for an operator to eyeball.
type healthzResponse struct {
	Status        string       `json:"status"`
	Version       string       `json:"version"`
	UptimeSeconds int64        `json:"uptimeSeconds"`
	Cache         CacheStats   `json:"cache"`
	Serving       ServingStats `json:"serving"`
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, healthzResponse{
		Status:        "ok",
		Version:       Version,
		UptimeSeconds: int64(s.now().Sub(s.start) / time.Second),
		Cache:         s.cache.stats(),
		Serving: ServingStats{
			Requests:    s.metrics.requestsTotal(),
			InFlight:    s.metrics.inFlight.Load(),
			QueueDepth:  s.metrics.queueDepth.Load(),
			Shed:        s.metrics.shed.Load(),
			Disconnects: s.metrics.disconnects.Load(),
		},
	})
}

// checkFaults bounds a request's fault plan: the pinned list length is
// capped, coordinates and rates are validated downstream by the min
// layer (those failures surface as 400s through the normal error path).
func (s *server) checkFaults(p *min.FaultPlan) error {
	if p == nil {
		return nil
	}
	if len(p.Faults) > s.cfg.MaxFaults {
		return limitExceeded("fault list too long: %d > %d", len(p.Faults), s.cfg.MaxFaults)
	}
	return nil
}

// execRoute serves one /v1/route body to rendered response bytes; see
// execCheck for the contract.
func (s *server) execRoute(wi wire, body []byte) ([]byte, bool, error) {
	if s.cache != nil {
		if cached, ok := s.cache.getRaw(rawEndpoint("route", wi), body); ok {
			return cached, true, nil
		}
	}
	var req routeRequest
	if err := decodeRequest(wi, body, &req); err != nil {
		return nil, false, err
	}
	nw, err := s.buildNetwork(req.NetworkSpec)
	if err != nil {
		return nil, false, err
	}
	if req.Src < 0 || req.Src >= nw.Terminals() || req.Dst < 0 || req.Dst >= nw.Terminals() {
		return nil, false, badRequest("terminal out of range [0,%d): src=%d dst=%d",
			nw.Terminals(), req.Src, req.Dst)
	}
	if err := s.checkFaults(req.Faults); err != nil {
		return nil, false, err
	}
	// The body also carries the PIPID tag schedule, which depends on the
	// construction's index permutations, not only on the arcs — fold
	// them into the key so a network built a way that skips PIPID
	// detection can never replay a PIPID response or vice versa. The
	// fault plan shapes the path too, so it is folded in as well (an
	// absent plan and an empty one key identically — both route the
	// intact fabric).
	thetas, _ := nw.IndexPerms()
	var faults min.FaultPlan
	if req.Faults != nil {
		faults = *req.Faults
	}
	key := fmt.Sprintf("route|%016x|%s|%d|%v|%d>%d|faults=%+v|bin=%t",
		nw.Fingerprint(), nw.Name(), nw.Stages(), thetas, req.Src, req.Dst, faults, wi.respBin)
	return s.computeCached(key, rawEndpoint("route", wi), body, renderFor(wi), func() (any, error) {
		if !faults.Empty() {
			path, err := min.RouteUnderFaults(nw, req.Src, req.Dst, faults)
			if err != nil {
				return nil, err
			}
			// No tag schedule: a degraded fabric is routed by
			// reachability, not stateless destination tags.
			return routeResponse{Network: nw.Name(), Path: path}, nil
		}
		path, err := min.Route(nw, req.Src, req.Dst)
		if err != nil {
			return nil, err
		}
		resp := routeResponse{Network: nw.Name(), Path: path}
		if tags, err := min.TagPositions(nw); err == nil {
			resp.TagPositions = tags
		}
		return resp, nil
	})
}

func (s *server) handleRoute(w http.ResponseWriter, r *http.Request) {
	wi, err := s.negotiate(r)
	if err != nil {
		writeErr(w, r, err)
		return
	}
	body, release, err := s.readBody(w, r)
	if err != nil {
		writeErr(w, r, err)
		return
	}
	defer release()
	resp, hit, err := s.execRoute(wi, body)
	if err != nil {
		writeErr(w, r, err)
		return
	}
	writeWireBytes(w, http.StatusOK, resp, s.cacheHeader(hit), wi.respBin)
}

// execSimulate serves one /v1/simulate body to rendered response
// bytes. Simulations are not cached (they are cheap to replay only for
// the caller who knows the seed) but they are context-governed: ctx
// cancellation stops the engine within one trial.
func (s *server) execSimulate(ctx context.Context, wi wire, body []byte) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	var req simulateRequest
	if err := decodeRequest(wi, body, &req); err != nil {
		return nil, err
	}
	nw, err := s.buildNetwork(req.NetworkSpec)
	if err != nil {
		return nil, err
	}
	if req.Workers < 0 || req.Workers > s.cfg.MaxWorkers {
		req.Workers = s.cfg.MaxWorkers
	}
	seed := req.Seed
	if seed == 0 {
		seed = 1
	}
	if err := s.checkFaults(req.Faults); err != nil {
		return nil, err
	}
	opts := []min.Option{min.WithSeed(seed), min.WithWorkers(req.Workers)}
	if req.Faults != nil {
		opts = append(opts, min.WithFaults(*req.Faults))
	}
	if req.Scenario != "" {
		opts = append(opts, min.WithScenario(req.Scenario))
	}
	if req.Load != 0 {
		opts = append(opts, min.WithLoad(req.Load))
	}
	if req.HotProb != 0 || req.HotDst != 0 {
		opts = append(opts, min.WithHotspot(req.HotDst, req.HotProb))
	}
	switch req.Model {
	case "", "wave":
		if req.Replications != 0 || req.Queue != 0 || req.Lanes != 0 || req.Cycles != 0 ||
			req.Warmup != 0 || req.Arbiter != "" || req.LaneSelect != "" {
			return nil, badRequest("buffered-model fields set on a wave request")
		}
		waves := req.Waves
		if waves == 0 {
			waves = 500
		}
		if waves < 1 {
			return nil, badRequest("waves must be in [1,%d], got %d", s.cfg.MaxTrials, waves)
		}
		if waves > s.cfg.MaxTrials {
			return nil, limitExceeded("waves must be in [1,%d], got %d", s.cfg.MaxTrials, waves)
		}
		kernel := min.Kernel(req.Kernel)
		if req.Kernel == "" {
			kernel = min.KernelAuto
		}
		st, err := min.Simulate(ctx, nw,
			append(opts, min.WithWaves(waves), min.WithKernel(kernel))...)
		if err != nil {
			return nil, err
		}
		return renderFor(wi)(simulateResponse{Model: "wave", Wave: &st})

	case "buffered":
		if req.Waves != 0 {
			return nil, badRequest("waves is a wave-model field; buffered runs use cycles/replications")
		}
		if req.Kernel != "" {
			return nil, badRequest("kernel selects the wave executor; the buffered model has no bit-sliced form")
		}
		// Resolve defaults BEFORE checking the operator's limits, so an
		// omitted field cannot slip a default past a cap set below it.
		// A zero field means "default"; negatives are rejected.
		reps := valueOr(req.Replications, 1)
		cycles := valueOr(req.Cycles, 5000)
		warmup := valueOr(req.Warmup, 500)
		queue := valueOr(req.Queue, 4)
		lanes := valueOr(req.Lanes, 1)
		if reps < 0 || cycles < 0 || warmup < 0 || queue < 0 || lanes < 0 {
			return nil, badRequest("negative buffered-model field")
		}
		if reps > s.cfg.MaxTrials {
			return nil, limitExceeded("replications must be <= %d, got %d", s.cfg.MaxTrials, reps)
		}
		if cycles+warmup > s.cfg.MaxCycles {
			return nil, limitExceeded("cycles+warmup must be <= %d, got %d", s.cfg.MaxCycles, cycles+warmup)
		}
		opts = append(opts,
			min.WithReplications(reps), min.WithQueue(queue), min.WithLanes(lanes),
			min.WithCycles(cycles), min.WithWarmup(warmup))
		if req.Arbiter != "" {
			opts = append(opts, min.WithArbiter(min.Arbiter(req.Arbiter)))
		}
		if req.LaneSelect != "" {
			opts = append(opts, min.WithLaneSelect(min.LaneSelect(req.LaneSelect)))
		}
		st, err := min.SimulateBuffered(ctx, nw, opts...)
		if err != nil {
			return nil, err
		}
		return renderFor(wi)(simulateResponse{Model: "buffered", Buffered: &st})

	default:
		return nil, badRequest("unknown model %q (wave or buffered)", req.Model)
	}
}

func (s *server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	wi, err := s.negotiate(r)
	if err != nil {
		writeErr(w, r, err)
		return
	}
	body, release, err := s.readBody(w, r)
	if err != nil {
		writeErr(w, r, err)
		return
	}
	defer release()
	resp, err := s.execSimulate(r.Context(), wi, body)
	if err != nil {
		writeErr(w, r, err)
		return
	}
	writeWireBytes(w, http.StatusOK, resp, nil, wi.respBin)
}

// valueOr substitutes the default for an omitted (zero) request field.
func valueOr(v, def int) int {
	if v == 0 {
		return def
	}
	return v
}
