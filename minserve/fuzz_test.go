package minserve

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// The decoding fuzz targets feed arbitrary bodies to the POST
// endpoints. Whatever arrives, the handler must return a well-formed
// response with a sane status — never panic, never hang, never write a
// non-JSON body. Simulation limits in the fuzz config are tiny so even
// a "valid" random request finishes instantly. CI runs each target for
// a short smoke window on every push.

// fuzzHandler serves with aggressive limits: bodies that decode must
// still be cheap to execute.
func fuzzHandler() http.Handler {
	return NewHandler(Config{
		MaxStages: 5,
		MaxTrials: 50,
		MaxCycles: 500,
		MaxFaults: 8,
		// The cache would dedupe repeated fuzz inputs and hide decode
		// work; disable it.
		CacheEntries: -1,
	})
}

func fuzzPost(t *testing.T, h http.Handler, path string, body []byte) {
	t.Helper()
	req := httptest.NewRequest("POST", path, strings.NewReader(string(body)))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	switch rec.Code {
	case http.StatusOK, http.StatusBadRequest, http.StatusRequestEntityTooLarge:
	default:
		t.Fatalf("unexpected status %d for body %q", rec.Code, body)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("non-JSON response (%q) for body %q", ct, body)
	}
	if rec.Code != http.StatusOK && !strings.Contains(rec.Body.String(), `"error"`) {
		t.Fatalf("error status %d without error envelope: %s", rec.Code, rec.Body)
	}
}

// FuzzDecodeCheck fuzzes the /v1/check request decoder (networkSpec
// with catalog names, link perms and index perms).
func FuzzDecodeCheck(f *testing.F) {
	f.Add([]byte(`{"network":"omega","stages":3}`))
	f.Add([]byte(`{"network":"tail-cycle","stages":4,"iso":true}`))
	f.Add([]byte(`{"stages":3,"indexPerms":[[2,1,0],[1,0,2]]}`))
	f.Add([]byte(`{"stages":3,"linkPerms":[[0,1,2,3,4,5,6,7],[7,6,5,4,3,2,1,0]]}`))
	f.Add([]byte(`{"stages":-1}`))
	f.Add([]byte(`not json`))
	f.Add([]byte(`{"network":"omega","stages":3}{"trailing":1}`))
	h := fuzzHandler()
	f.Fuzz(func(t *testing.T, body []byte) {
		fuzzPost(t, h, "/v1/check", body)
	})
}

// FuzzDecodeSimulate fuzzes the /v1/simulate request decoder (model
// selection, tunables, scenario parameters and the fault plan).
func FuzzDecodeSimulate(f *testing.F) {
	f.Add([]byte(`{"network":"omega","stages":3,"waves":5,"seed":1}`))
	f.Add([]byte(`{"network":"flip","stages":3,"model":"buffered","cycles":50,"warmup":5,"queue":2}`))
	f.Add([]byte(`{"network":"omega","stages":3,"scenario":"hotspot","hotProb":0.5,"load":0.3}`))
	f.Add([]byte(`{"network":"omega","stages":3,"waves":5,"faults":{"switchDeadRate":0.1,` +
		`"faults":[{"kind":"link-down","stage":1,"link":2}]}}`))
	f.Add([]byte(`{"network":"omega","stages":3,"model":"buffered","waves":5}`))
	f.Add([]byte(`{"model":42}`))
	f.Add([]byte(`{}`))
	h := fuzzHandler()
	f.Fuzz(func(t *testing.T, body []byte) {
		fuzzPost(t, h, "/v1/simulate", body)
	})
}
