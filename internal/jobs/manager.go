package jobs

import (
	"context"
	crand "crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand/v2"
	"os"
	"path/filepath"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"minequiv/internal/engine"
)

// Job states. A job is live in pending/running and terminal otherwise;
// degraded is a successful completion with quarantined shards reported,
// failed means no usable result exists (every shard quarantined, or the
// checkpoint was corrupt at resume).
const (
	StatePending  = "pending"
	StateRunning  = "running"
	StateDone     = "done"
	StateDegraded = "degraded"
	StateFailed   = "failed"
	StateCanceled = "canceled"
)

// Sentinel errors the serving layer maps to wire codes.
var (
	ErrNotFound    = errors.New("jobs: no such job")
	ErrNotReady    = errors.New("jobs: result not ready")
	ErrQuarantined = errors.New("jobs: every shard quarantined")
	ErrCorrupt     = errCorrupt
	ErrTooManyJobs = errors.New("jobs: too many active jobs")
	ErrClosed      = errors.New("jobs: manager closed")
)

// HookAction is a chaos hook's verdict on a starting shard.
type HookAction int

const (
	HookNone HookAction = iota
	// HookKill makes the worker goroutine die on the spot — it unwinds
	// without reporting, exactly like a crashed worker process. The
	// shard's lease expires, the janitor steals it back onto the queue,
	// and the supervisor respawns the worker slot.
	HookKill
)

// Hooks are test-only fault injection points. Production leaves them nil.
type Hooks struct {
	// OnShardStart fires after the shard's lease is taken, before the
	// runner is invoked.
	OnShardStart func(jobID string, shard, attempt, worker int) HookAction
}

// Config parametrizes a Manager.
type Config struct {
	Dir          string        // checkpoint root; "" = in-memory only (jobs still run, nothing survives restart)
	Workers      int           // shard executor goroutines; <= 0 means GOMAXPROCS
	ShardTrials  int           // default trials per shard when the spec leaves it 0
	ShardTimeout time.Duration // per-attempt execution budget; also the steal lease
	MaxRetries   int           // failures beyond this quarantine the shard
	BackoffBase  time.Duration // first retry delay; doubles per failure, ±50% jitter
	BackoffMax   time.Duration // retry delay ceiling
	TTL          time.Duration // terminal jobs older than this are garbage collected; <= 0 keeps forever
	MaxActive    int           // cap on live (pending/running) jobs; <= 0 means 64
	SweepEvery   time.Duration // janitor cadence: lease reclaim, backoff requeue, TTL GC
	EventBuffer  int           // per-job event ring capacity
	Runner       Runner        // nil means DefaultRunner()
	Hooks        Hooks
	Now          func() time.Time // injectable clock for tests
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.ShardTrials <= 0 {
		c.ShardTrials = 2048
	}
	if c.ShardTimeout <= 0 {
		c.ShardTimeout = time.Minute
	}
	if c.MaxRetries <= 0 {
		c.MaxRetries = 3
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 100 * time.Millisecond
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = 5 * time.Second
	}
	if c.MaxActive <= 0 {
		c.MaxActive = 64
	}
	if c.SweepEvery <= 0 {
		c.SweepEvery = 500 * time.Millisecond
	}
	if c.EventBuffer <= 0 {
		c.EventBuffer = 1024
	}
	if c.Runner == nil {
		c.Runner = DefaultRunner()
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// Stats is a point-in-time snapshot of the manager's counters, shaped
// for the /metrics exposition.
type Stats struct {
	JobsInFlight      int64
	JobsCompleted     uint64 // done + degraded
	JobsFailed        uint64
	ShardsDone        uint64
	ShardsStolen      uint64
	ShardsRetried     uint64
	ShardsQuarantined uint64
	CheckpointBytes   uint64
}

// inflightInfo is a shard's execution lease: the token distinguishes
// the current run from stale ones, the deadline is when the janitor
// may steal the shard back.
type inflightInfo struct {
	token uint64
	lease time.Time
}

// job is the scheduler's view of one sweep. All fields are guarded by
// the manager mutex; the store and event ring have their own locks and
// may be used outside it.
type job struct {
	id     string
	grid   grid
	store  *store
	events *eventRing
	ctx    context.Context
	cancel context.CancelFunc

	state       string
	errKind     error // ErrQuarantined or ErrCorrupt for failed jobs
	errMsg      string
	done        []bool
	partials    []engine.WavePartial
	quarantined map[int]string
	attempts    []int
	waiting     map[int]time.Time // shard -> earliest requeue time (backoff)
	inflight    map[int]inflightInfo
	doneCount   int
	remaining   int // shards neither done nor quarantined
	created     time.Time
	finished    time.Time
	result      []byte
	doneCh      chan struct{}
}

func (j *job) live() bool { return j.state == StatePending || j.state == StateRunning }

// Status is the wire-facing summary of a job.
type Status struct {
	ID                string `json:"id"`
	State             string `json:"state"`
	Spec              Spec   `json:"spec"`
	ShardsTotal       int    `json:"shardsTotal"`
	ShardsDone        int    `json:"shardsDone"`
	ShardsQuarantined int    `json:"shardsQuarantined,omitempty"`
	Error             string `json:"error,omitempty"`
}

type shardRef struct {
	j     *job
	shard int
}

// Manager owns the job plane: the job table, the ready queue, the
// worker pool (with per-slot supervisors that respawn killed workers),
// and the janitor that reclaims expired leases, requeues backed-off
// shards, and garbage-collects expired jobs.
type Manager struct {
	cfg Config

	mu       sync.Mutex
	cond     *sync.Cond
	jobs     map[string]*job
	queue    []shardRef
	tokens   uint64
	closed   bool
	draining bool

	workerWG    sync.WaitGroup
	janitorStop chan struct{}
	stopOnce    sync.Once

	jobsInFlight      atomic.Int64
	jobsCompleted     atomic.Uint64
	jobsFailed        atomic.Uint64
	shardsDone        atomic.Uint64
	shardsStolen      atomic.Uint64
	shardsRetried     atomic.Uint64
	shardsQuarantined atomic.Uint64
	checkpointBytes   atomic.Uint64
}

// Open builds a Manager, resumes every job found under cfg.Dir, and
// starts the worker pool and janitor. Jobs whose checkpoints show
// unfinished shards are re-enqueued immediately; their already-logged
// shard results are NOT recomputed, and the eventual result bytes are
// identical to what an uninterrupted run would have produced.
func Open(cfg Config) (*Manager, error) {
	cfg = cfg.withDefaults()
	m := &Manager{
		cfg:         cfg,
		jobs:        map[string]*job{},
		janitorStop: make(chan struct{}),
	}
	m.cond = sync.NewCond(&m.mu)
	if cfg.Dir != "" {
		if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
			return nil, err
		}
		entries, err := os.ReadDir(cfg.Dir)
		if err != nil {
			return nil, err
		}
		for _, e := range entries {
			if !e.IsDir() {
				continue
			}
			if err := m.resume(e.Name()); err != nil {
				return nil, err
			}
		}
	}
	for slot := 0; slot < cfg.Workers; slot++ {
		m.workerWG.Add(1)
		go m.supervise(slot)
	}
	go m.janitor()
	return m, nil
}

func (m *Manager) now() time.Time { return m.cfg.Now() }

func (m *Manager) wrote(n int) { m.checkpointBytes.Add(uint64(n)) }

func (m *Manager) newJob(id string, g grid, st *store) *job {
	ctx, cancel := context.WithCancel(context.Background())
	return &job{
		id:          id,
		grid:        g,
		store:       st,
		events:      newEventRing(m.cfg.EventBuffer),
		ctx:         ctx,
		cancel:      cancel,
		state:       StatePending,
		done:        make([]bool, g.shards),
		partials:    make([]engine.WavePartial, g.shards),
		quarantined: map[int]string{},
		attempts:    make([]int, g.shards),
		waiting:     map[int]time.Time{},
		inflight:    map[int]inflightInfo{},
		remaining:   g.shards,
		created:     m.now(),
		doneCh:      make(chan struct{}),
	}
}

// resume loads one persisted job directory into the table. Corrupt
// checkpoints surface as a failed job carrying ErrCorrupt rather than
// an Open error: one damaged job must not take the whole plane down.
func (m *Manager) resume(id string) error {
	dir := filepath.Join(m.cfg.Dir, id)
	st, spec, recs, err := openStore(dir, m.wrote)
	if errors.Is(err, errCorrupt) {
		j := m.newJob(id, grid{}, &store{dir: dir, closed: true})
		j.state = StateFailed
		j.errKind = ErrCorrupt
		j.errMsg = err.Error()
		j.finished = m.now()
		close(j.doneCh)
		m.jobs[id] = j
		return nil
	}
	if err != nil {
		return err
	}
	g := newGrid(spec)
	j := m.newJob(id, g, st)
	canceled := false
	for _, rec := range recs {
		switch rec.Type {
		case "shard":
			if rec.Shard >= 0 && rec.Shard < g.shards && rec.Partial != nil && !j.done[rec.Shard] {
				j.done[rec.Shard] = true
				j.partials[rec.Shard] = *rec.Partial
				j.doneCount++
				j.remaining--
			}
		case "quarantine":
			if rec.Shard >= 0 && rec.Shard < g.shards && !j.done[rec.Shard] {
				if _, dup := j.quarantined[rec.Shard]; !dup {
					j.quarantined[rec.Shard] = rec.Reason
					j.remaining--
				}
			}
		case "cancel":
			canceled = true
		}
	}
	m.jobs[id] = j
	if data, err := os.ReadFile(resultPath(dir)); err == nil {
		var res Result
		j.state = StateDone
		if json.Unmarshal(data, &res) == nil && res.Degraded {
			j.state = StateDegraded
		}
		j.result = data
		j.finished = m.now()
		close(j.doneCh)
		return nil
	}
	if canceled {
		j.state = StateCanceled
		j.finished = m.now()
		close(j.doneCh)
		return nil
	}
	j.state = StateRunning
	m.jobsInFlight.Add(1)
	if j.remaining == 0 {
		// Crashed after the last shard landed but before the result was
		// published: finalize now, from the log alone.
		m.finalizeLocked(j)
		return nil
	}
	for s := 0; s < g.shards; s++ {
		if !j.done[s] {
			if _, q := j.quarantined[s]; !q {
				m.queue = append(m.queue, shardRef{j, s})
			}
		}
	}
	j.events.publish(Event{Type: "state", State: StateRunning, Done: j.doneCount, Total: g.shards})
	return nil
}

func newID() string {
	var b [8]byte
	if _, err := crand.Read(b[:]); err != nil {
		panic(err) // the platform CSPRNG is load-bearing and never fails on supported OSes
	}
	return hex.EncodeToString(b[:])
}

// Submit validates, normalizes, persists, and enqueues a sweep,
// returning its job ID.
func (m *Manager) Submit(spec Spec) (string, error) {
	spec.normalize(m.cfg.ShardTrials)
	if err := spec.validate(); err != nil {
		return "", err
	}
	g := newGrid(spec)

	m.mu.Lock()
	if m.closed || m.draining {
		m.mu.Unlock()
		return "", ErrClosed
	}
	live := 0
	for _, j := range m.jobs {
		if j.live() {
			live++
		}
	}
	if live >= m.cfg.MaxActive {
		m.mu.Unlock()
		return "", ErrTooManyJobs
	}
	id := newID()
	for m.jobs[id] != nil {
		id = newID()
	}
	m.mu.Unlock()

	// Persist outside the scheduler lock: spec.json lands with fsyncs.
	var st *store
	if m.cfg.Dir != "" {
		var err error
		st, err = newStore(filepath.Join(m.cfg.Dir, id), spec, m.wrote)
		if err != nil {
			return "", err
		}
	}
	j := m.newJob(id, g, st)

	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed || m.draining {
		st.remove()
		return "", ErrClosed
	}
	j.state = StateRunning
	m.jobs[id] = j
	m.jobsInFlight.Add(1)
	for s := 0; s < g.shards; s++ {
		m.queue = append(m.queue, shardRef{j, s})
	}
	j.events.publish(Event{Type: "state", State: StateRunning, Done: 0, Total: g.shards})
	m.cond.Broadcast()
	return id, nil
}

// supervise runs one worker slot, respawning the worker goroutine
// whenever chaos kills it — the recovery a process supervisor would
// provide for a crashed worker process.
func (m *Manager) supervise(slot int) {
	defer m.workerWG.Done()
	for {
		died := make(chan bool, 1)
		go func() {
			killed := true
			defer func() { died <- killed }()
			m.workerLoop(slot)
			killed = false
		}()
		if !<-died {
			return
		}
	}
}

// workerLoop claims ready shards until the manager closes or drains. A
// HookKill verdict unwinds the goroutine via Goexit — no report, no
// cleanup — leaving the shard's lease to expire and be stolen.
func (m *Manager) workerLoop(slot int) {
	for {
		ref, ok := m.next()
		if !ok {
			return
		}
		if m.exec(ref, slot) {
			runtime.Goexit()
		}
	}
}

// next blocks for the next ready shard; ok=false means shut down.
func (m *Manager) next() (shardRef, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for {
		if m.closed || m.draining {
			return shardRef{}, false
		}
		if len(m.queue) > 0 {
			ref := m.queue[0]
			m.queue = m.queue[1:]
			return ref, true
		}
		m.cond.Wait()
	}
}

// exec runs one claimed shard. The returned bool is true only when the
// chaos hook killed the worker (the caller then unwinds without
// reporting).
func (m *Manager) exec(ref shardRef, slot int) (killed bool) {
	j, s := ref.j, ref.shard
	m.mu.Lock()
	if j.state != StateRunning || j.done[s] {
		m.mu.Unlock()
		return false
	}
	if _, q := j.quarantined[s]; q {
		m.mu.Unlock()
		return false
	}
	if _, running := j.inflight[s]; running {
		m.mu.Unlock()
		return false
	}
	m.tokens++
	tok := m.tokens
	j.inflight[s] = inflightInfo{token: tok, lease: m.now().Add(m.cfg.ShardTimeout + m.cfg.SweepEvery)}
	attempt := j.attempts[s]
	m.mu.Unlock()

	if h := m.cfg.Hooks.OnShardStart; h != nil {
		if h(j.id, s, attempt, slot) == HookKill {
			return true
		}
	}
	cell, lo, hi := j.grid.shard(s)
	ctx, cancel := context.WithTimeout(j.ctx, m.cfg.ShardTimeout)
	p, err := m.cfg.Runner(ctx, cell, lo, hi)
	cancel()
	m.report(j, s, tok, p, err)
	return false
}

// report lands one shard outcome. Disk leads memory: a successful
// partial is appended (and fsync'd) to the checkpoint log before the
// scheduler state marks it done, so the in-memory table never claims
// progress the log cannot replay. Stale tokens — the shard was stolen
// while this worker ran it — are discarded; the duplicate log frame a
// stale success may leave behind is harmless because shard results are
// pure functions of the spec.
func (m *Manager) report(j *job, s int, tok uint64, p engine.WavePartial, err error) {
	if err == nil && j.store != nil {
		_ = j.store.append(logRecord{Type: "shard", Shard: s, Partial: &p})
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return // crash path: pretend the report never happened
	}
	info, ok := j.inflight[s]
	if !ok || info.token != tok {
		return // stolen; the new run owns the shard now
	}
	delete(j.inflight, s)
	if j.state != StateRunning {
		return
	}
	if err != nil {
		if j.ctx.Err() != nil {
			return // job canceled or force-drained mid-run
		}
		j.attempts[s]++
		if j.attempts[s] > m.cfg.MaxRetries {
			reason := fmt.Sprintf("attempt %d: %v", j.attempts[s], err)
			j.quarantined[s] = reason
			if j.store != nil {
				_ = j.store.append(logRecord{Type: "quarantine", Shard: s, Reason: reason})
			}
			j.remaining--
			m.shardsQuarantined.Add(1)
			j.events.publish(Event{Type: "shard-quarantined", Shard: s, Done: j.doneCount, Total: j.grid.shards})
			if j.remaining == 0 {
				m.finalizeLocked(j)
			}
			return
		}
		m.shardsRetried.Add(1)
		j.waiting[s] = m.now().Add(m.backoff(j.attempts[s]))
		j.events.publish(Event{Type: "shard-retry", Shard: s, Done: j.doneCount, Total: j.grid.shards})
		return
	}
	j.done[s] = true
	j.partials[s] = p
	j.doneCount++
	j.remaining--
	m.shardsDone.Add(1)
	j.events.publish(Event{Type: "shard-done", Shard: s, Done: j.doneCount, Total: j.grid.shards})
	if j.remaining == 0 {
		m.finalizeLocked(j)
	}
}

// backoff is exponential from BackoffBase with ±50% jitter, capped at
// BackoffMax. Jitter decorrelates retry storms; it cannot perturb
// results, only schedules.
func (m *Manager) backoff(attempt int) time.Duration {
	shift := attempt - 1
	if shift > 20 {
		shift = 20
	}
	d := m.cfg.BackoffBase << shift
	if d > m.cfg.BackoffMax {
		d = m.cfg.BackoffMax
	}
	return d/2 + rand.N(d)
}

// finalizeLocked publishes a job's terminal state. Caller holds m.mu
// and guarantees remaining == 0.
func (m *Manager) finalizeLocked(j *job) {
	state := StateDone
	switch {
	case len(j.quarantined) == 0:
	case j.doneCount > 0:
		state = StateDegraded
	default:
		state = StateFailed
		j.errKind = ErrQuarantined
		j.errMsg = "every shard quarantined"
	}
	if state != StateFailed {
		data, err := finalizeResult(j.grid, j.done, j.partials, j.quarantined)
		if err != nil {
			state = StateFailed
			j.errMsg = err.Error()
		} else {
			j.result = data
			if j.store != nil {
				_ = j.store.writeResult(data)
			}
		}
	}
	j.state = state
	j.finished = m.now()
	m.jobsInFlight.Add(-1)
	if state == StateFailed {
		m.jobsFailed.Add(1)
	} else {
		m.jobsCompleted.Add(1)
	}
	j.events.publish(Event{Type: "state", State: state, Done: j.doneCount, Total: j.grid.shards})
	close(j.doneCh)
}

// janitor is the periodic sweep: expired leases are stolen back onto
// the queue, backed-off shards whose delay elapsed are requeued, and
// terminal jobs past the TTL are deleted along with their directories.
func (m *Manager) janitor() {
	ticker := time.NewTicker(m.cfg.SweepEvery)
	defer ticker.Stop()
	for {
		select {
		case <-m.janitorStop:
			return
		case <-ticker.C:
			m.sweep()
		}
	}
}

func (m *Manager) sweep() {
	now := m.now()
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return
	}
	woke := false
	for id, j := range m.jobs {
		if j.state == StateRunning {
			for s, info := range j.inflight {
				if now.After(info.lease) {
					delete(j.inflight, s)
					m.shardsStolen.Add(1)
					m.queue = append(m.queue, shardRef{j, s})
					j.events.publish(Event{Type: "shard-stolen", Shard: s, Done: j.doneCount, Total: j.grid.shards})
					woke = true
				}
			}
			for s, nb := range j.waiting {
				if !now.Before(nb) {
					delete(j.waiting, s)
					m.queue = append(m.queue, shardRef{j, s})
					woke = true
				}
			}
			continue
		}
		if !j.live() && m.cfg.TTL > 0 && !j.finished.IsZero() && now.Sub(j.finished) > m.cfg.TTL {
			delete(m.jobs, id)
			j.store.remove()
		}
	}
	if woke {
		m.cond.Broadcast()
	}
}

// Get returns a job's status.
func (m *Manager) Get(id string) (Status, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return Status{}, ErrNotFound
	}
	return m.statusLocked(j), nil
}

func (m *Manager) statusLocked(j *job) Status {
	return Status{
		ID:                j.id,
		State:             j.state,
		Spec:              j.grid.spec,
		ShardsTotal:       j.grid.shards,
		ShardsDone:        j.doneCount,
		ShardsQuarantined: len(j.quarantined),
		Error:             j.errMsg,
	}
}

// List returns every resident job's status, ordered by ID.
func (m *Manager) List() []Status {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Status, 0, len(m.jobs))
	for _, j := range m.jobs {
		out = append(out, m.statusLocked(j))
	}
	slices.SortFunc(out, func(a, b Status) int {
		if a.ID < b.ID {
			return -1
		}
		if a.ID > b.ID {
			return 1
		}
		return 0
	})
	return out
}

// Result returns the finalized result bytes — the exact bytes on disk.
// ErrNotReady while the job is live or canceled, ErrQuarantined when
// every shard was quarantined, ErrCorrupt when the job's checkpoint
// could not be trusted at resume.
func (m *Manager) Result(id string) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return nil, ErrNotFound
	}
	switch j.state {
	case StateDone, StateDegraded:
		return j.result, nil
	case StateFailed:
		if j.errKind != nil {
			return nil, j.errKind
		}
		return nil, fmt.Errorf("jobs: job failed: %s", j.errMsg)
	default:
		return nil, ErrNotReady
	}
}

// Events returns the buffered events with Seq > since, the cursor to
// resume from, and a channel closed at the next publish.
func (m *Manager) Events(id string, since int64) ([]Event, int64, <-chan struct{}, error) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return nil, 0, nil, ErrNotFound
	}
	evs, next := j.events.Since(since)
	return evs, next, j.events.Changed(), nil
}

// Done exposes a job's completion channel (closed at terminal state).
func (m *Manager) Done(id string) (<-chan struct{}, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return nil, ErrNotFound
	}
	return j.doneCh, nil
}

// Cancel moves a live job to canceled: a cancel record is logged so a
// restart will not resurrect it, in-flight shards are aborted via the
// job context, and their late reports are dropped.
func (m *Manager) Cancel(id string) error {
	m.mu.Lock()
	j, ok := m.jobs[id]
	if !ok {
		m.mu.Unlock()
		return ErrNotFound
	}
	if !j.live() {
		m.mu.Unlock()
		return nil
	}
	j.state = StateCanceled
	j.finished = m.now()
	m.jobsInFlight.Add(-1)
	j.cancel()
	j.events.publish(Event{Type: "state", State: StateCanceled, Done: j.doneCount, Total: j.grid.shards})
	close(j.doneCh)
	st := j.store
	m.mu.Unlock()
	if st != nil {
		_ = st.append(logRecord{Type: "cancel"})
	}
	return nil
}

// Stats snapshots the counters.
func (m *Manager) Stats() Stats {
	return Stats{
		JobsInFlight:      m.jobsInFlight.Load(),
		JobsCompleted:     m.jobsCompleted.Load(),
		JobsFailed:        m.jobsFailed.Load(),
		ShardsDone:        m.shardsDone.Load(),
		ShardsStolen:      m.shardsStolen.Load(),
		ShardsRetried:     m.shardsRetried.Load(),
		ShardsQuarantined: m.shardsQuarantined.Load(),
		CheckpointBytes:   m.checkpointBytes.Load(),
	}
}

// Drain is the graceful shutdown: no new shards are claimed, in-flight
// shards finish and checkpoint normally, then the stores close. If ctx
// expires first, the remaining in-flight shards are aborted through
// their job contexts (their work is lost but their jobs' logs stay
// consistent — the shards simply re-run after the next Open).
func (m *Manager) Drain(ctx context.Context) error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.draining = true
	m.cond.Broadcast()
	m.mu.Unlock()

	done := make(chan struct{})
	go func() {
		m.workerWG.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
		m.mu.Lock()
		for _, j := range m.jobs {
			j.cancel()
		}
		m.mu.Unlock()
		<-done
	}
	m.stopOnce.Do(func() { close(m.janitorStop) })
	m.mu.Lock()
	m.closed = true
	for _, j := range m.jobs {
		j.store.close()
	}
	m.mu.Unlock()
	return err
}

// Kill simulates a crash: everything stops where it stands. Stores are
// closed abruptly (no final flush beyond what each append already
// fsync'd), in-flight work is aborted and its reports discarded, and
// no state transition is recorded. The only durable truth left is what
// the checkpoint log had already absorbed — which is the point: tests
// reopen the directory and must reach the byte-identical result.
func (m *Manager) Kill() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	m.stopOnce.Do(func() { close(m.janitorStop) })
	for _, j := range m.jobs {
		j.cancel()
		j.store.close()
	}
	m.cond.Broadcast()
	m.mu.Unlock()
	m.workerWG.Wait()
}
