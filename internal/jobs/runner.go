package jobs

import (
	"context"
	"fmt"
	"sync"

	"minequiv/internal/engine"
	"minequiv/internal/sim"
	"minequiv/internal/topology"
)

// Runner executes the trials [lo, hi) of one grid cell and returns
// their exact partial aggregate. A Runner must be a pure function of
// (cell, lo, hi): the scheduler re-invokes it freely on retry and
// after steals, and the byte-identity contract assumes every
// invocation agrees. The manager's default is DefaultRunner; tests
// substitute wrappers that inject failures, stalls, and poison.
type Runner func(ctx context.Context, cell Cell, lo, hi int) (engine.WavePartial, error)

// fabricCache memoizes compiled fabrics per (network, stages): every
// shard of a cell — and every cell sharing a topology — reuses one
// compiled link table instead of rebuilding it per shard.
type fabricCache struct {
	mu sync.Mutex
	m  map[string]*sim.Fabric
}

func (fc *fabricCache) get(network string, stages int) (*sim.Fabric, error) {
	key := fmt.Sprintf("%s|%d", network, stages)
	fc.mu.Lock()
	defer fc.mu.Unlock()
	if f, ok := fc.m[key]; ok {
		return f, nil
	}
	nw, err := topology.Build(network, stages)
	if err != nil {
		return nil, err
	}
	f, err := sim.NewFabric(nw.LinkPerms)
	if err != nil {
		return nil, err
	}
	if fc.m == nil {
		fc.m = map[string]*sim.Fabric{}
	}
	fc.m[key] = f
	return f, nil
}

// DefaultRunner returns the production Runner: it compiles (and
// caches) the cell's fabric, resolves the scenario — composing
// Thinned(load) around patterns that are not load-aware, exactly as
// min.Simulate does — and hands the range to engine.RunWaveRange with
// the cell's derived seed root. Fabrics are shared across shards, and
// sim fabrics are safe for concurrent runners by construction.
func DefaultRunner() Runner {
	fc := &fabricCache{}
	return func(ctx context.Context, cell Cell, lo, hi int) (engine.WavePartial, error) {
		f, err := fc.get(cell.Network, cell.Stages)
		if err != nil {
			return engine.WavePartial{}, err
		}
		sc, ok := sim.LookupScenario(cell.Scenario)
		if !ok {
			return engine.WavePartial{}, fmt.Errorf("jobs: unknown scenario %q", cell.Scenario)
		}
		params := sim.DefaultScenarioParams()
		params.Load = cell.Load
		pattern := sc.New(params)
		if !sc.LoadAware && cell.Load < 1 {
			pattern = sim.Thinned(cell.Load, pattern)
		}
		kernel, err := engine.ParseKernel(cell.Kernel)
		if err != nil {
			return engine.WavePartial{}, err
		}
		cfg := engine.Config{Seed: cell.Seed, Kernel: kernel}
		if cell.FaultRate > 0 {
			cfg.Faults = &sim.FaultPlan{SwitchDeadRate: cell.FaultRate}
		}
		return engine.RunWaveRange(ctx, f, pattern, lo, hi, cfg)
	}
}
