package jobs

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"minequiv/internal/engine"
)

// TestChaosKillStealRespawn: the first attempt of several shards kills
// its worker outright (no report, no cleanup — the goroutine unwinds).
// The janitor must reclaim the expired leases, the supervisors must
// respawn the dead worker slots, and the job must complete with a
// result byte-identical to an unperturbed run.
func TestChaosKillStealRespawn(t *testing.T) {
	cfg := fastCfg(t.TempDir())
	cfg.ShardTimeout = 50 * time.Millisecond // fast lease expiry => fast steal
	var killed sync.Map
	cfg.Hooks = Hooks{OnShardStart: func(jobID string, shard, attempt, worker int) HookAction {
		if shard%3 == 0 {
			if _, seen := killed.LoadOrStore(shard, true); !seen {
				return HookKill
			}
		}
		return HookNone
	}}
	m, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Kill()
	id, err := m.Submit(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	st := await(t, m, id)
	if st.State != StateDone {
		t.Fatalf("state = %s (%+v)", st.State, st)
	}
	if s := m.Stats(); s.ShardsStolen < 4 {
		t.Fatalf("expected >= 4 steals (shards 0,3,6,9), got stats %+v", s)
	}
	data, err := m.Result(id)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, goldenResult(t, testSpec())) {
		t.Fatal("kill/steal run diverged from golden")
	}
}

// TestChaosCrashResumeByteIdentity is the acceptance-criteria test: a
// job killed mid-sweep (workers vanishing, then the whole manager
// crash-stopped) and reopened from its checkpoint directory must (a)
// finish, (b) produce result bytes identical to an uninterrupted run,
// and (c) never recompute a shard whose frame already reached the log.
func TestChaosCrashResumeByteIdentity(t *testing.T) {
	golden := goldenResult(t, testSpec())
	dir := t.TempDir()

	// Phase 1: run with chaos — every worker slot dies on its first
	// claim, and the manager is crash-stopped after a handful of shard
	// frames have landed.
	cfg := fastCfg(dir)
	cfg.ShardTimeout = 50 * time.Millisecond
	var kills atomic.Int64
	cfg.Hooks = Hooks{OnShardStart: func(jobID string, shard, attempt, worker int) HookAction {
		if kills.Add(1) <= int64(cfg.Workers) {
			return HookKill
		}
		return HookNone
	}}
	m, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	id, err := m.Submit(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	jobDir := filepath.Join(dir, id)
	deadline := time.Now().Add(20 * time.Second)
	for {
		recs, _, err := readLog(logPath(jobDir))
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) >= 4 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no checkpoint progress before crash point")
		}
		time.Sleep(2 * time.Millisecond)
	}
	m.Kill() // crash: no drain, no finalize, in-flight reports discarded

	// The log now holds some shards; note which, so phase 2 can prove
	// they are not recomputed.
	recs, _, err := readLog(logPath(jobDir))
	if err != nil {
		t.Fatal(err)
	}
	checkpointed := map[int]bool{}
	for _, r := range recs {
		if r.Type == "shard" {
			checkpointed[r.Shard] = true
		}
	}
	if len(checkpointed) == 0 {
		t.Fatal("crash landed no shard frames")
	}
	if len(checkpointed) == 12 {
		t.Skip("crash raced past completion; nothing left to resume") // vanishingly unlikely at 4 frames
	}

	// Phase 2: reopen. The resumed manager's runner records every shard
	// it executes; checkpointed shards must never reappear.
	cfg2 := fastCfg(dir)
	var reran sync.Map
	base := DefaultRunner()
	cfg2.Runner = func(ctx context.Context, cell Cell, lo, hi int) (engine.WavePartial, error) {
		g := newGrid(testSpecNormalized())
		shard := cell.Index*g.shardsPerCell + lo/g.spec.ShardTrials
		reran.Store(shard, true)
		return base(ctx, cell, lo, hi)
	}
	m2, err := Open(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Kill()
	st := await(t, m2, id)
	if st.State != StateDone {
		t.Fatalf("resumed state = %s (%+v)", st.State, st)
	}
	reran.Range(func(k, _ any) bool {
		if checkpointed[k.(int)] {
			t.Errorf("checkpointed shard %d was recomputed after resume", k.(int))
		}
		return true
	})
	data, err := m2.Result(id)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, golden) {
		t.Fatalf("crash-resume result is not byte-identical to the golden run:\n%s\n---\n%s", data, golden)
	}
	// And the on-disk artifact is those same bytes.
	onDisk, err := os.ReadFile(resultPath(jobDir))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(onDisk, golden) {
		t.Fatal("result.json differs from served result bytes")
	}
}

func testSpecNormalized() Spec {
	s := testSpec()
	s.normalize(2048)
	return s
}

// TestChaosPoisonQuarantine: a shard that fails every attempt must be
// quarantined after MaxRetries+1 tries and the job must complete
// degraded — reporting the poison — rather than hang.
func TestChaosPoisonQuarantine(t *testing.T) {
	cfg := fastCfg(t.TempDir())
	base := DefaultRunner()
	cfg.Runner = func(ctx context.Context, cell Cell, lo, hi int) (engine.WavePartial, error) {
		if cell.Index == 2 && lo == 16 {
			return engine.WavePartial{}, errors.New("poison payload")
		}
		return base(ctx, cell, lo, hi)
	}
	m, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Kill()
	id, err := m.Submit(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	st := await(t, m, id)
	if st.State != StateDegraded || st.ShardsQuarantined != 1 || st.ShardsDone != 11 {
		t.Fatalf("status = %+v", st)
	}
	s := m.Stats()
	if s.ShardsQuarantined != 1 || s.ShardsRetried != uint64(cfg.MaxRetries) {
		t.Fatalf("stats = %+v", s)
	}
	data, err := m.Result(id)
	if err != nil {
		t.Fatal(err)
	}
	var res Result
	if err := json.Unmarshal(data, &res); err != nil {
		t.Fatal(err)
	}
	if !res.Degraded || len(res.QuarantinedShards) != 1 {
		t.Fatalf("result = %+v", res)
	}
	q := res.QuarantinedShards[0]
	if q.Cell != 2 || q.Lo != 16 || q.Hi != 32 || !strings.Contains(q.Reason, "poison payload") {
		t.Fatalf("quarantine report = %+v", q)
	}
	// The poisoned cell aggregates only its healthy shards.
	c := res.Cells[2]
	if c.Trials != 32 || c.QuarantinedTrials != 16 {
		t.Fatalf("poisoned cell = %+v", c)
	}
	for i, c := range res.Cells {
		if i != 2 && (c.Trials != 48 || c.QuarantinedTrials != 0) {
			t.Fatalf("healthy cell %d = %+v", i, c)
		}
	}
}

// TestChaosAllPoisonFails: when every shard is poison the job must
// land in failed (ErrQuarantined), not degraded and not hung.
func TestChaosAllPoisonFails(t *testing.T) {
	cfg := fastCfg(t.TempDir())
	cfg.Runner = func(ctx context.Context, cell Cell, lo, hi int) (engine.WavePartial, error) {
		return engine.WavePartial{}, errors.New("poison everywhere")
	}
	m, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Kill()
	id, err := m.Submit(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	st := await(t, m, id)
	if st.State != StateFailed {
		t.Fatalf("state = %s", st.State)
	}
	if _, err := m.Result(id); !errors.Is(err, ErrQuarantined) {
		t.Fatalf("Result: %v", err)
	}
}

// TestChaosStallTimeout: a shard that stalls past ShardTimeout is
// cancelled by its context, retried, and succeeds on the next attempt.
func TestChaosStallTimeout(t *testing.T) {
	cfg := fastCfg(t.TempDir())
	cfg.ShardTimeout = 30 * time.Millisecond
	var stalled atomic.Bool
	base := DefaultRunner()
	cfg.Runner = func(ctx context.Context, cell Cell, lo, hi int) (engine.WavePartial, error) {
		if cell.Index == 0 && lo == 0 && stalled.CompareAndSwap(false, true) {
			<-ctx.Done() // stall until the per-attempt budget kills us
			return engine.WavePartial{}, ctx.Err()
		}
		return base(ctx, cell, lo, hi)
	}
	m, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Kill()
	id, err := m.Submit(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	if st := await(t, m, id); st.State != StateDone {
		t.Fatalf("state = %s", st.State)
	}
	data, err := m.Result(id)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, goldenResult(t, testSpec())) {
		t.Fatal("stall/retry run diverged from golden")
	}
}

// TestTornWriteRecovery: a crash can leave a torn or corrupt final
// frame in shards.log. Reopening must keep the valid prefix, truncate
// the damage, resume, and still reach the byte-identical result.
func TestTornWriteRecovery(t *testing.T) {
	golden := goldenResult(t, testSpec())
	for name, damage := range map[string][]byte{
		"torn-header":  {'M', 'J', 0x40},
		"torn-payload": {'M', 'J', 0xff, 0x00, 0x00, 0x00, 0x12, 0x34, 0x56, 0x78, '{'},
		"bad-magic":    {'X', 'Y', 0x04, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 'j', 'u', 'n', 'k'},
		"bad-crc":      {'M', 'J', 0x02, 0x00, 0x00, 0x00, 0xde, 0xad, 0xbe, 0xef, '{', '}'},
	} {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			cfg := fastCfg(dir)
			m, err := Open(cfg)
			if err != nil {
				t.Fatal(err)
			}
			id, err := m.Submit(testSpec())
			if err != nil {
				t.Fatal(err)
			}
			jobDir := filepath.Join(dir, id)
			// Let a few shards land, then crash and damage the tail.
			deadline := time.Now().Add(20 * time.Second)
			for {
				recs, _, _ := readLog(logPath(jobDir))
				if len(recs) >= 2 {
					break
				}
				if time.Now().After(deadline) {
					t.Fatal("no shards checkpointed")
				}
				time.Sleep(2 * time.Millisecond)
			}
			m.Kill()
			recsBefore, validBefore, err := readLog(logPath(jobDir))
			if err != nil {
				t.Fatal(err)
			}
			f, err := os.OpenFile(logPath(jobDir), os.O_WRONLY|os.O_APPEND, 0)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.Write(damage); err != nil {
				t.Fatal(err)
			}
			f.Close()

			recs, valid, err := readLog(logPath(jobDir))
			if err != nil {
				t.Fatal(err)
			}
			if valid != validBefore || len(recs) != len(recsBefore) {
				t.Fatalf("damage leaked into the valid prefix: %d/%d vs %d/%d", valid, len(recs), validBefore, len(recsBefore))
			}

			m2, err := Open(fastCfg(dir))
			if err != nil {
				t.Fatal(err)
			}
			defer m2.Kill()
			if st := await(t, m2, id); st.State != StateDone {
				t.Fatalf("resumed state = %s", st.State)
			}
			// The reopened log was truncated back to the valid prefix
			// before new appends, so a second recovery parses cleanly.
			if _, _, err := readLog(logPath(jobDir)); err != nil {
				t.Fatal(err)
			}
			data, err := m2.Result(id)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(data, golden) {
				t.Fatal("recovered run diverged from golden")
			}
		})
	}
}

// TestCorruptSpecSurfacesAsFailedJob: an unreadable spec.json cannot
// be trusted, so the job resumes as failed carrying ErrCorrupt — and
// does not prevent the rest of the plane from opening.
func TestCorruptSpecSurfacesAsFailedJob(t *testing.T) {
	dir := t.TempDir()
	m, err := Open(fastCfg(dir))
	if err != nil {
		t.Fatal(err)
	}
	id, err := m.Submit(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	await(t, m, id)
	m.Kill()
	if err := os.WriteFile(specPath(filepath.Join(dir, id)), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	m2, err := Open(fastCfg(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Kill()
	st, err := m2.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateFailed {
		t.Fatalf("state = %s", st.State)
	}
	if _, err := m2.Result(id); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Result: %v", err)
	}
}
