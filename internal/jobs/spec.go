// Package jobs is minserve's resilient asynchronous job plane: it
// turns a sweep specification (networks × loads × fault rates, a fixed
// trial count per cell) into trial-index-preserving shards, schedules
// the shards over a worker pool with work stealing, and checkpoints
// every finished shard to an append-only CRC-framed log so that a
// crashed or SIGTERM'd server resumes the job and produces a result
// byte-identical to an uninterrupted run.
//
// The byte-identity contract rests on two facts. First, the engine
// derives every trial's random stream from (seed, trial index), so a
// shard is a pure function of (spec, shard index) — re-running it
// after a crash, on a different worker, or after a steal yields the
// same engine.WavePartial. Second, partials are exact integer sums
// (engine.WavePartial), so merging them in shard-index order at
// finalize time is independent of execution history. Everything else
// in this package — leases, retries, quarantine, the checkpoint log —
// only decides *whether* a shard result exists, never *what* it is.
package jobs

import (
	"fmt"
	"slices"
	"strings"

	"minequiv/internal/engine"
	"minequiv/internal/sim"
	"minequiv/internal/topology"
)

// Spec is a sweep specification: the full cross product of Networks ×
// Loads × FaultRates, each cell running TrialsPerCell wave trials of
// Scenario traffic through a Stages-stage fabric. The zero values of
// the optional fields normalize to a single intact, full-load, uniform
// sweep.
type Spec struct {
	Networks      []string  `json:"networks"`
	Stages        int       `json:"stages"`
	Loads         []float64 `json:"loads,omitempty"`
	FaultRates    []float64 `json:"faultRates,omitempty"` // switch-dead probability per cell; 0 = intact
	Scenario      string    `json:"scenario,omitempty"`
	Kernel        string    `json:"kernel,omitempty"`
	TrialsPerCell int       `json:"trialsPerCell"`
	Seed          uint64    `json:"seed,omitempty"`
	ShardTrials   int       `json:"shardTrials,omitempty"` // trials per shard; defaulted by the manager
}

// normalize fills defaults in place. It runs before validation and
// before the spec is persisted, so the stored spec — and therefore the
// result bytes derived from it — never depend on which optional fields
// the submitter spelled out.
func (s *Spec) normalize(defaultShardTrials int) {
	if len(s.Loads) == 0 {
		s.Loads = []float64{1}
	}
	if len(s.FaultRates) == 0 {
		s.FaultRates = []float64{0}
	}
	if s.Scenario == "" {
		s.Scenario = "uniform"
	}
	if s.Kernel == "" {
		s.Kernel = "auto"
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.ShardTrials <= 0 {
		s.ShardTrials = defaultShardTrials
	}
	if s.ShardTrials > s.TrialsPerCell && s.TrialsPerCell > 0 {
		s.ShardTrials = s.TrialsPerCell
	}
}

// validate checks a normalized spec against the catalog and basic
// bounds. Resource-policy limits (max trials, max cells) belong to the
// serving layer; the checks here are the ones that would make the
// sweep meaningless or unrunnable.
func (s Spec) validate() error {
	if len(s.Networks) == 0 {
		return fmt.Errorf("jobs: networks must name at least one topology")
	}
	for _, n := range s.Networks {
		if !slices.Contains(topology.Names(), n) {
			return fmt.Errorf("jobs: unknown network %q (known: %s)", n, strings.Join(topology.Names(), ", "))
		}
	}
	if s.Stages < 1 {
		return fmt.Errorf("jobs: stages must be >= 1")
	}
	if s.TrialsPerCell < 1 {
		return fmt.Errorf("jobs: trialsPerCell must be >= 1")
	}
	if _, ok := sim.LookupScenario(s.Scenario); !ok {
		return fmt.Errorf("jobs: unknown scenario %q (known: %s)", s.Scenario, strings.Join(sim.ScenarioNames(), ", "))
	}
	if _, err := engine.ParseKernel(s.Kernel); err != nil {
		return err
	}
	for _, l := range s.Loads {
		if l <= 0 || l > 1 {
			return fmt.Errorf("jobs: load %v out of (0, 1]", l)
		}
	}
	for _, r := range s.FaultRates {
		if r < 0 || r >= 1 {
			return fmt.Errorf("jobs: fault rate %v out of [0, 1)", r)
		}
	}
	return nil
}

// Cells returns the number of grid cells a normalized spec spans.
func (s Spec) Cells() int {
	return len(s.Networks) * len(s.Loads) * len(s.FaultRates)
}

// Cell identifies one grid cell plus the seed root its trials draw
// from. The root is derived from (spec seed, cell index) through the
// same splitmix64 expansion the engine uses for trial streams, so
// cells are decorrelated from each other and from any direct use of
// the spec seed.
type Cell struct {
	Index     int
	Network   string
	Stages    int
	Load      float64
	FaultRate float64
	Scenario  string
	Kernel    string
	Seed      uint64
}

// grid is the shard geometry of a normalized spec: cells ordered
// networks-major (network, then load, then fault rate), each cell cut
// into ceil(trials/shardTrials) contiguous trial ranges. Shard s maps
// to cell s/shardsPerCell, range k = s%shardsPerCell covering trials
// [k·shardTrials, min(trials, (k+1)·shardTrials)).
type grid struct {
	spec          Spec
	cells         int
	shardsPerCell int
	shards        int
}

func newGrid(spec Spec) grid {
	spc := (spec.TrialsPerCell + spec.ShardTrials - 1) / spec.ShardTrials
	c := spec.Cells()
	return grid{spec: spec, cells: c, shardsPerCell: spc, shards: c * spc}
}

// cell resolves cell index c to its coordinates and seed root.
func (g grid) cell(c int) Cell {
	nl, nf := len(g.spec.Loads), len(g.spec.FaultRates)
	root, _ := engine.SeedPair(g.spec.Seed, uint64(c))
	return Cell{
		Index:     c,
		Network:   g.spec.Networks[c/(nl*nf)],
		Stages:    g.spec.Stages,
		Load:      g.spec.Loads[(c/nf)%nl],
		FaultRate: g.spec.FaultRates[c%nf],
		Scenario:  g.spec.Scenario,
		Kernel:    g.spec.Kernel,
		Seed:      root,
	}
}

// shard resolves shard index s to its cell and trial range.
func (g grid) shard(s int) (Cell, int, int) {
	c := s / g.shardsPerCell
	k := s % g.shardsPerCell
	lo := k * g.spec.ShardTrials
	hi := lo + g.spec.ShardTrials
	if hi > g.spec.TrialsPerCell {
		hi = g.spec.TrialsPerCell
	}
	return g.cell(c), lo, hi
}
