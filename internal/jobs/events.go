package jobs

import "sync"

// Event is one progress notification for a job. Seq numbers are
// per-job, strictly increasing, and restart from 1 when a job is
// resumed after a server restart (events are ephemeral progress, not
// part of the durable record).
type Event struct {
	Seq   int64  `json:"seq"`
	Type  string `json:"type"`            // "state" | "shard-done" | "shard-retry" | "shard-stolen" | "shard-quarantined"
	State string `json:"state,omitempty"` // for "state" events: running/done/degraded/failed/canceled
	Shard int    `json:"shard,omitempty"`
	Done  int    `json:"done"`  // shards finished so far
	Total int    `json:"total"` // shards overall
}

// eventRing keeps the last `cap` events of one job plus a broadcast
// channel that flips on every publish, so both the SSE streamer and
// the long-poll handler can wait without per-subscriber bookkeeping:
// read Since, then wait on Changed, then read Since again.
type eventRing struct {
	mu      sync.Mutex
	buf     []Event
	max     int
	next    int64
	changed chan struct{}
}

func newEventRing(max int) *eventRing {
	if max <= 0 {
		max = 1024
	}
	return &eventRing{max: max, next: 1, changed: make(chan struct{})}
}

// publish appends the event, evicting the oldest past capacity, and
// wakes every waiter.
func (r *eventRing) publish(ev Event) {
	r.mu.Lock()
	ev.Seq = r.next
	r.next++
	r.buf = append(r.buf, ev)
	if len(r.buf) > r.max {
		r.buf = r.buf[len(r.buf)-r.max:]
	}
	close(r.changed)
	r.changed = make(chan struct{})
	r.mu.Unlock()
}

// Since returns the buffered events with Seq > since (oldest first)
// and the seq cursor to pass next time.
func (r *eventRing) Since(since int64) ([]Event, int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	i := len(r.buf)
	for i > 0 && r.buf[i-1].Seq > since {
		i--
	}
	out := make([]Event, len(r.buf)-i)
	copy(out, r.buf[i:])
	return out, r.next - 1
}

// Changed returns a channel closed at the next publish.
func (r *eventRing) Changed() <-chan struct{} {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.changed
}
