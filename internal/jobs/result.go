package jobs

import (
	"encoding/json"

	"minequiv/internal/engine"
)

// Stat mirrors the serving layer's summary statistic shape.
type Stat struct {
	N    int     `json:"n"`
	Mean float64 `json:"mean"`
	Std  float64 `json:"std"`
	CI95 float64 `json:"ci95"`
}

func toStat(s engine.Stats) Stat {
	return Stat{N: s.N, Mean: s.Mean, Std: s.Std, CI95: s.CI95()}
}

// CellResult is the finalized aggregate of one grid cell. Trials is
// the number actually aggregated; QuarantinedTrials counts trials
// lost to quarantined shards (Trials + QuarantinedTrials equals the
// spec's TrialsPerCell).
type CellResult struct {
	Network           string  `json:"network"`
	Stages            int     `json:"stages"`
	Load              float64 `json:"load"`
	FaultRate         float64 `json:"faultRate"`
	Trials            int     `json:"trials"`
	Offered           int64   `json:"offered"`
	Delivered         int64   `json:"delivered"`
	Dropped           int64   `json:"dropped"`
	Misrouted         int64   `json:"misrouted"`
	FaultDropped      int64   `json:"faultDropped"`
	Throughput        Stat    `json:"throughput"`
	QuarantinedTrials int     `json:"quarantinedTrials,omitempty"`
}

// QuarantinedShard reports one poison shard in a degraded result.
type QuarantinedShard struct {
	Shard  int    `json:"shard"`
	Cell   int    `json:"cell"`
	Lo     int    `json:"lo"`
	Hi     int    `json:"hi"`
	Reason string `json:"reason"`
}

// Result is the durable outcome of a job. Its JSON rendering is the
// byte-identity artifact: it is a pure function of (normalized spec,
// per-shard partials, quarantine set), marshaled from slices and
// structs only — no maps, no timestamps, no job ID — so an interrupted
// and resumed job renders the identical bytes an uninterrupted run
// would have.
type Result struct {
	Spec              Spec               `json:"spec"`
	Cells             []CellResult       `json:"cells"`
	Degraded          bool               `json:"degraded,omitempty"`
	QuarantinedShards []QuarantinedShard `json:"quarantinedShards,omitempty"`
}

// finalizeResult merges the per-shard partials cell by cell in shard
// index order and renders the result bytes. partials[s] is consulted
// only when done[s]; quarantined shards contribute their trial count
// to the cell's QuarantinedTrials instead.
func finalizeResult(g grid, done []bool, partials []engine.WavePartial, quarantined map[int]string) ([]byte, error) {
	res := Result{Spec: g.spec, Cells: make([]CellResult, 0, g.cells)}
	for c := 0; c < g.cells; c++ {
		cell := g.cell(c)
		var agg engine.WavePartial
		trials, lost := 0, 0
		for k := 0; k < g.shardsPerCell; k++ {
			s := c*g.shardsPerCell + k
			_, lo, hi := g.shard(s)
			if done[s] {
				agg.Merge(partials[s])
				trials += hi - lo
			} else {
				lost += hi - lo
			}
		}
		st := agg.Throughput()
		res.Cells = append(res.Cells, CellResult{
			Network:           cell.Network,
			Stages:            cell.Stages,
			Load:              cell.Load,
			FaultRate:         cell.FaultRate,
			Trials:            trials,
			Offered:           agg.Offered,
			Delivered:         agg.Delivered,
			Dropped:           agg.Dropped,
			Misrouted:         agg.Misrouted,
			FaultDropped:      agg.FaultDropped,
			Throughput:        toStat(st),
			QuarantinedTrials: lost,
		})
	}
	for s := 0; s < g.shards; s++ {
		if reason, ok := quarantined[s]; ok {
			cell, lo, hi := g.shard(s)
			res.Degraded = true
			res.QuarantinedShards = append(res.QuarantinedShards, QuarantinedShard{
				Shard: s, Cell: cell.Index, Lo: lo, Hi: hi, Reason: reason,
			})
		}
	}
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}
