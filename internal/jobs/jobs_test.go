package jobs

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"minequiv/internal/engine"
	"minequiv/internal/sim"
	"minequiv/internal/topology"
)

// testSpec is a small but non-trivial sweep: 2 networks × 1 load × 2
// fault rates = 4 cells, 48 trials per cell in 16-trial shards = 12
// shards.
func testSpec() Spec {
	return Spec{
		Networks:      []string{topology.NameOmega, topology.NameBaseline},
		Stages:        3,
		FaultRates:    []float64{0, 0.1},
		TrialsPerCell: 48,
		ShardTrials:   16,
		Seed:          7,
	}
}

// fastCfg tunes the manager for test cadence: millisecond sweeps and
// backoffs, sub-second shard timeout.
func fastCfg(dir string) Config {
	return Config{
		Dir:          dir,
		Workers:      4,
		ShardTimeout: 2 * time.Second,
		MaxRetries:   2,
		BackoffBase:  time.Millisecond,
		BackoffMax:   4 * time.Millisecond,
		SweepEvery:   5 * time.Millisecond,
	}
}

// await blocks until the job reaches a terminal state.
func await(t *testing.T, m *Manager, id string) Status {
	t.Helper()
	ch, err := m.Done(id)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-ch:
	case <-time.After(30 * time.Second):
		st, _ := m.Get(id)
		t.Fatalf("job %s did not finish: %+v", id, st)
	}
	st, err := m.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// goldenResult runs the spec start-to-finish on a pristine manager and
// returns the result bytes every perturbed run must reproduce.
func goldenResult(t *testing.T, spec Spec) []byte {
	t.Helper()
	m, err := Open(fastCfg(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Kill()
	id, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if st := await(t, m, id); st.State != StateDone {
		t.Fatalf("golden run state = %s", st.State)
	}
	data, err := m.Result(id)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestJobCompletes(t *testing.T) {
	m, err := Open(fastCfg(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Kill()
	id, err := m.Submit(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	st := await(t, m, id)
	if st.State != StateDone || st.ShardsDone != st.ShardsTotal || st.ShardsTotal != 12 {
		t.Fatalf("status = %+v", st)
	}
	data, err := m.Result(id)
	if err != nil {
		t.Fatal(err)
	}
	var res Result
	if err := json.Unmarshal(data, &res); err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 4 || res.Degraded {
		t.Fatalf("result = %+v", res)
	}
	for _, c := range res.Cells {
		if c.Trials != 48 || c.Offered == 0 || c.Throughput.Mean <= 0 || c.Throughput.Mean > 1 {
			t.Fatalf("cell = %+v", c)
		}
		if c.FaultRate > 0 && c.FaultDropped == 0 {
			t.Fatalf("faulted cell dropped nothing: %+v", c)
		}
	}
	// The intact omega cell must agree exactly with a direct engine run
	// on the same derived seed — the job plane adds orchestration, not
	// arithmetic.
	g := newGrid(res.Spec)
	cell := g.cell(0)
	f, err := fabricForCell(cell)
	if err != nil {
		t.Fatal(err)
	}
	ws, err := engine.RunWaves(context.Background(), f, patternForCell(t, cell), 48, engine.Config{Seed: cell.Seed})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cells[0].Throughput.Mean != ws.Throughput.Mean || int(res.Cells[0].Delivered) != ws.Delivered {
		t.Fatalf("cell 0 disagrees with engine: %+v vs %+v", res.Cells[0], ws)
	}
}

// TestResultsDeterministic: two independent managers, different worker
// counts and shard sizes left equal, produce byte-identical results.
func TestResultsDeterministic(t *testing.T) {
	a := goldenResult(t, testSpec())
	b := goldenResult(t, testSpec())
	if !bytes.Equal(a, b) {
		t.Fatalf("independent runs differ:\n%s\n%s", a, b)
	}
}

// TestRetryThenSuccess: a runner that fails the first two attempts of
// one shard exercises the backoff path without quarantining.
func TestRetryThenSuccess(t *testing.T) {
	var fails atomic.Int64
	base := DefaultRunner()
	cfg := fastCfg(t.TempDir())
	cfg.Runner = func(ctx context.Context, cell Cell, lo, hi int) (engine.WavePartial, error) {
		if cell.Index == 1 && lo == 0 && fails.Add(1) <= 2 {
			return engine.WavePartial{}, errors.New("transient fault")
		}
		return base(ctx, cell, lo, hi)
	}
	m, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Kill()
	id, err := m.Submit(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	if st := await(t, m, id); st.State != StateDone {
		t.Fatalf("state = %s", st.State)
	}
	if s := m.Stats(); s.ShardsRetried != 2 || s.ShardsQuarantined != 0 {
		t.Fatalf("stats = %+v", s)
	}
	data, err := m.Result(id)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, goldenResult(t, testSpec())) {
		t.Fatal("retried run diverged from golden")
	}
}

func TestCancel(t *testing.T) {
	cfg := fastCfg(t.TempDir())
	gate := make(chan struct{})
	base := DefaultRunner()
	cfg.Runner = func(ctx context.Context, cell Cell, lo, hi int) (engine.WavePartial, error) {
		select {
		case <-gate:
		case <-ctx.Done():
			return engine.WavePartial{}, ctx.Err()
		}
		return base(ctx, cell, lo, hi)
	}
	m, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Kill()
	id, err := m.Submit(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Cancel(id); err != nil {
		t.Fatal(err)
	}
	close(gate)
	st := await(t, m, id)
	if st.State != StateCanceled {
		t.Fatalf("state = %s", st.State)
	}
	if _, err := m.Result(id); !errors.Is(err, ErrNotReady) {
		t.Fatalf("Result after cancel: %v", err)
	}
	// A restart must not resurrect the canceled job.
	m.Kill()
	m2, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Kill()
	st2, err := m2.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	if st2.State != StateCanceled {
		t.Fatalf("resumed state = %s", st2.State)
	}
}

func TestSubmitValidation(t *testing.T) {
	m, err := Open(fastCfg(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Kill()
	bad := []Spec{
		{Stages: 3, TrialsPerCell: 8},                                                                   // no networks
		{Networks: []string{"nope"}, Stages: 3, TrialsPerCell: 8},                                       // unknown network
		{Networks: []string{topology.NameOmega}, Stages: 0, TrialsPerCell: 8},                           // bad stages
		{Networks: []string{topology.NameOmega}, Stages: 3, TrialsPerCell: 0},                           // bad trials
		{Networks: []string{topology.NameOmega}, Stages: 3, TrialsPerCell: 8, Loads: []float64{2}},      // bad load
		{Networks: []string{topology.NameOmega}, Stages: 3, TrialsPerCell: 8, FaultRates: []float64{1}}, // bad rate
		{Networks: []string{topology.NameOmega}, Stages: 3, TrialsPerCell: 8, Scenario: "nope"},
		{Networks: []string{topology.NameOmega}, Stages: 3, TrialsPerCell: 8, Kernel: "nope"},
	}
	for i, spec := range bad {
		if _, err := m.Submit(spec); err == nil {
			t.Fatalf("bad spec %d accepted", i)
		}
	}
}

func TestMaxActive(t *testing.T) {
	cfg := fastCfg(t.TempDir())
	cfg.MaxActive = 1
	gate := make(chan struct{})
	cfg.Runner = func(ctx context.Context, cell Cell, lo, hi int) (engine.WavePartial, error) {
		select {
		case <-gate:
		case <-ctx.Done():
		}
		return engine.WavePartial{}, ctx.Err()
	}
	m, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Kill()
	if _, err := m.Submit(testSpec()); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Submit(testSpec()); !errors.Is(err, ErrTooManyJobs) {
		t.Fatalf("second submit: %v", err)
	}
	close(gate)
}

func TestTTLGC(t *testing.T) {
	now := time.Now()
	var fake atomic.Int64 // offset seconds
	cfg := fastCfg(t.TempDir())
	cfg.TTL = 10 * time.Second
	cfg.Now = func() time.Time { return now.Add(time.Duration(fake.Load()) * time.Second) }
	m, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Kill()
	id, err := m.Submit(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	await(t, m, id)
	fake.Store(60)
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, err := m.Get(id); errors.Is(err, ErrNotFound) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("expired job never garbage-collected")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestEvents(t *testing.T) {
	m, err := Open(fastCfg(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Kill()
	id, err := m.Submit(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	await(t, m, id)
	evs, next, _, err := m.Events(id, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) == 0 || next != evs[len(evs)-1].Seq {
		t.Fatalf("events = %+v next = %d", evs, next)
	}
	var last int64
	doneShards := 0
	for _, ev := range evs {
		if ev.Seq <= last {
			t.Fatalf("seq not increasing: %+v", evs)
		}
		last = ev.Seq
		if ev.Type == "shard-done" {
			doneShards++
		}
	}
	if doneShards != 12 {
		t.Fatalf("shard-done events = %d, want 12", doneShards)
	}
	if evs[len(evs)-1].Type != "state" || evs[len(evs)-1].State != StateDone {
		t.Fatalf("last event = %+v", evs[len(evs)-1])
	}
	// Cursor semantics: nothing new after the tail.
	more, _, _, err := m.Events(id, next)
	if err != nil || len(more) != 0 {
		t.Fatalf("events past tail: %v %+v", err, more)
	}
	if _, _, _, err := m.Events("missing", 0); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing job: %v", err)
	}
}

func TestDrainThenResume(t *testing.T) {
	dir := t.TempDir()
	started := make(chan struct{}, 64)
	release := make(chan struct{})
	base := DefaultRunner()
	cfg := fastCfg(dir)
	cfg.Runner = func(ctx context.Context, cell Cell, lo, hi int) (engine.WavePartial, error) {
		started <- struct{}{}
		select {
		case <-release:
		case <-ctx.Done():
			return engine.WavePartial{}, ctx.Err()
		}
		return base(ctx, cell, lo, hi)
	}
	m, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	id, err := m.Submit(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	<-started // at least one shard in flight
	drained := make(chan error, 1)
	go func() { drained <- m.Drain(context.Background()) }()
	close(release) // in-flight shards finish and checkpoint during drain
	if err := <-drained; err != nil {
		t.Fatal(err)
	}
	if _, err := m.Submit(testSpec()); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after drain: %v", err)
	}
	// The drained checkpoint must contain the in-flight shards' results.
	recs, _, err := readLog(logPath(cfg.Dir + "/" + id))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Fatal("drain checkpointed nothing")
	}
	// Reopen: the job resumes and finishes identically to the golden.
	cfg2 := fastCfg(dir)
	m2, err := Open(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Kill()
	if st := await(t, m2, id); st.State != StateDone {
		t.Fatalf("resumed state = %s", st.State)
	}
	data, err := m2.Result(id)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, goldenResult(t, testSpec())) {
		t.Fatal("drain+resume diverged from golden")
	}
}

// fabricForCell / patternForCell mirror DefaultRunner's resolution for
// direct engine comparisons in tests.
func fabricForCell(cell Cell) (*sim.Fabric, error) {
	fc := &fabricCache{}
	return fc.get(cell.Network, cell.Stages)
}

func patternForCell(t *testing.T, cell Cell) sim.Traffic {
	t.Helper()
	sc, ok := sim.LookupScenario(cell.Scenario)
	if !ok {
		t.Fatalf("unknown scenario %q", cell.Scenario)
	}
	params := sim.DefaultScenarioParams()
	params.Load = cell.Load
	p := sc.New(params)
	if !sc.LoadAware && cell.Load < 1 {
		p = sim.Thinned(cell.Load, p)
	}
	return p
}
