package jobs

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"

	"minequiv/internal/engine"
)

// The on-disk layout of one job is a directory <jobs-dir>/<id>/ with
// three files:
//
//	spec.json   — the normalized Spec, written once atomically at submit
//	shards.log  — append-only CRC-framed shard outcomes, fsync'd per append
//	result.json — the finalized result bytes, written once atomically
//
// Each shards.log frame is
//
//	magic "MJ" | uint32 payload length | uint32 CRC32-IEEE(payload) | payload
//
// (integers little-endian, payload a JSON logRecord). A crash can tear
// only the final frame: recovery scans the valid prefix, truncates the
// torn or corrupt tail, and resumes appending — losing at most the
// shards whose frames never fully landed, which simply re-run. The log
// is a set, not a sequence: duplicate frames for a shard are benign
// because a shard result is a pure function of (spec, shard index).
var logMagic = [2]byte{'M', 'J'}

const frameHeader = 2 + 4 + 4

// logRecord is one checkpoint log entry.
type logRecord struct {
	Type    string              `json:"type"` // "shard" | "quarantine" | "cancel"
	Shard   int                 `json:"shard,omitempty"`
	Partial *engine.WavePartial `json:"partial,omitempty"`
	Reason  string              `json:"reason,omitempty"`
}

// errCorrupt marks unrecoverable checkpoint damage (an unreadable or
// unparseable spec.json). Torn shards.log tails are NOT corruption —
// they are the expected crash residue and recover by truncation.
var errCorrupt = errors.New("jobs: checkpoint corrupt")

// store is the durable side of one job. A nil *store (in-memory mode,
// Config.Dir == "") accepts every call as a no-op, so the scheduler
// never branches on persistence.
type store struct {
	dir    string
	mu     sync.Mutex
	f      *os.File // shards.log, opened O_APPEND
	closed bool
	wrote  func(n int) // checkpoint-bytes stat sink
}

// specPath/logPath/resultPath name the three files of a job dir.
func specPath(dir string) string   { return filepath.Join(dir, "spec.json") }
func logPath(dir string) string    { return filepath.Join(dir, "shards.log") }
func resultPath(dir string) string { return filepath.Join(dir, "result.json") }

// writeFileAtomic writes data to path via a temp file in the same
// directory, fsync, rename, and directory fsync — the standard
// crash-safe publish: after a crash the file is either absent or
// complete, never torn.
func writeFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	return syncDir(dir)
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// newStore creates the job directory, persists the normalized spec,
// and opens a fresh shards.log.
func newStore(dir string, spec Spec, wrote func(int)) (*store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	data, err := json.MarshalIndent(spec, "", "  ")
	if err != nil {
		return nil, err
	}
	data = append(data, '\n')
	if err := writeFileAtomic(specPath(dir), data); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(logPath(dir), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &store{dir: dir, f: f, wrote: wrote}, nil
}

// openStore reopens an existing job directory for resumption: it reads
// the spec, replays the valid prefix of shards.log (truncating any
// torn or CRC-damaged tail in place), and reopens the log for append.
// A missing or unparseable spec.json returns errCorrupt — without the
// spec the logged partials are unattributable and the job cannot be
// trusted.
func openStore(dir string, wrote func(int)) (*store, Spec, []logRecord, error) {
	var spec Spec
	data, err := os.ReadFile(specPath(dir))
	if err != nil {
		return nil, spec, nil, fmt.Errorf("%w: %s: %v", errCorrupt, specPath(dir), err)
	}
	if err := json.Unmarshal(data, &spec); err != nil {
		return nil, spec, nil, fmt.Errorf("%w: %s: %v", errCorrupt, specPath(dir), err)
	}
	recs, valid, err := readLog(logPath(dir))
	if err != nil {
		return nil, spec, nil, err
	}
	// Truncate the torn tail before reopening for append, so the next
	// frame starts at a clean boundary.
	if err := os.Truncate(logPath(dir), valid); err != nil && !errors.Is(err, os.ErrNotExist) {
		return nil, spec, nil, err
	}
	f, err := os.OpenFile(logPath(dir), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, spec, nil, err
	}
	return &store{dir: dir, f: f, wrote: wrote}, spec, recs, nil
}

// readLog scans frames from the front and returns the decoded records
// plus the byte offset of the last fully-valid frame. A short header,
// short payload, bad magic, CRC mismatch, or undecodable payload all
// terminate the scan — everything before the damage is kept, the
// damage itself is the crash residue recovery truncates.
func readLog(path string) ([]logRecord, int64, error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, 0, nil
	}
	if err != nil {
		return nil, 0, err
	}
	var recs []logRecord
	var off int64
	for int64(len(data))-off >= frameHeader {
		h := data[off:]
		if h[0] != logMagic[0] || h[1] != logMagic[1] {
			break
		}
		n := int64(binary.LittleEndian.Uint32(h[2:6]))
		sum := binary.LittleEndian.Uint32(h[6:10])
		if int64(len(data))-off-frameHeader < n {
			break // torn payload
		}
		payload := h[frameHeader : frameHeader+n]
		if crc32.ChecksumIEEE(payload) != sum {
			break
		}
		var rec logRecord
		if json.Unmarshal(payload, &rec) != nil {
			break
		}
		recs = append(recs, rec)
		off += frameHeader + n
	}
	return recs, off, nil
}

// append frames, writes, and fsyncs one record. Errors are returned so
// the caller can surface them, but scheduling state never depends on
// the append having happened — a lost frame only means the shard
// re-runs after a crash.
func (st *store) append(rec logRecord) error {
	if st == nil {
		return nil
	}
	payload, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	frame := make([]byte, frameHeader+len(payload))
	frame[0], frame[1] = logMagic[0], logMagic[1]
	binary.LittleEndian.PutUint32(frame[2:6], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[6:10], crc32.ChecksumIEEE(payload))
	copy(frame[frameHeader:], payload)
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		return io.ErrClosedPipe
	}
	if _, err := st.f.Write(frame); err != nil {
		return err
	}
	if err := st.f.Sync(); err != nil {
		return err
	}
	if st.wrote != nil {
		st.wrote(len(frame))
	}
	return nil
}

// writeResult publishes the finalized result bytes atomically.
func (st *store) writeResult(data []byte) error {
	if st == nil {
		return nil
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		return io.ErrClosedPipe
	}
	if err := writeFileAtomic(resultPath(st.dir), data); err != nil {
		return err
	}
	if st.wrote != nil {
		st.wrote(len(data))
	}
	return nil
}

// close stops all further writes. It is used both by graceful shutdown
// (after in-flight shards have reported) and by the crash-simulating
// Kill path (where whatever had not reached the log is simply lost, as
// in a real crash).
func (st *store) close() {
	if st == nil {
		return
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		return
	}
	st.closed = true
	st.f.Close()
}

// remove deletes the job directory (TTL garbage collection).
func (st *store) remove() {
	if st == nil {
		return
	}
	st.close()
	os.RemoveAll(st.dir)
}
