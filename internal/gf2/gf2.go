// Package gf2 implements linear algebra over GF(2) on vectors of up to 64
// bits. It underpins the algebraic view of the paper's "independent
// connections": a connection (f,g) is independent exactly when f and g are
// affine maps over Z_2^(n-1) sharing one linear part (see package conn).
//
// A vector is a uint64 whose bit i is coordinate i. A Matrix is a slice of
// row vectors; Matrix m applied to column vector x produces a vector whose
// bit r is the GF(2) inner product <m[r], x>.
package gf2

import (
	"fmt"
	"math/bits"
	"math/rand/v2"
	"strings"

	"minequiv/internal/bitops"
)

// Dot returns the GF(2) inner product of a and b (parity of a&b).
func Dot(a, b uint64) uint64 {
	return uint64(bits.OnesCount64(a&b) & 1)
}

// Matrix is a binary matrix with Rows[r] the r-th row vector and Cols
// columns. The zero Matrix has no rows and no columns.
type Matrix struct {
	Rows []uint64
	Cols int
}

// NewMatrix returns an r x c zero matrix.
func NewMatrix(r, c int) Matrix {
	if r < 0 || c < 0 || c > 64 {
		panic(fmt.Sprintf("gf2: invalid matrix shape %dx%d", r, c))
	}
	return Matrix{Rows: make([]uint64, r), Cols: c}
}

// Identity returns the k x k identity matrix.
func Identity(k int) Matrix {
	m := NewMatrix(k, k)
	for i := 0; i < k; i++ {
		m.Rows[i] = 1 << uint(i)
	}
	return m
}

// Get returns entry (r, c).
func (m Matrix) Get(r, c int) uint64 { return (m.Rows[r] >> uint(c)) & 1 }

// Set sets entry (r, c) to b.
func (m *Matrix) Set(r, c int, b uint64) {
	m.Rows[r] = bitops.SetBit(m.Rows[r], c, b)
}

// NumRows returns the number of rows.
func (m Matrix) NumRows() int { return len(m.Rows) }

// Clone returns a deep copy of m.
func (m Matrix) Clone() Matrix {
	rows := make([]uint64, len(m.Rows))
	copy(rows, m.Rows)
	return Matrix{Rows: rows, Cols: m.Cols}
}

// Equal reports whether m and o have identical shape and entries.
func (m Matrix) Equal(o Matrix) bool {
	if m.Cols != o.Cols || len(m.Rows) != len(o.Rows) {
		return false
	}
	for i := range m.Rows {
		if m.Rows[i] != o.Rows[i] {
			return false
		}
	}
	return true
}

// Apply multiplies m by the column vector x: bit r of the result is the
// inner product of row r with x.
func (m Matrix) Apply(x uint64) uint64 {
	var y uint64
	for r, row := range m.Rows {
		y |= Dot(row, x) << uint(r)
	}
	return y
}

// Mul returns the matrix product m * o (first apply o, then m).
func (m Matrix) Mul(o Matrix) Matrix {
	if m.Cols != len(o.Rows) {
		panic(fmt.Sprintf("gf2: shape mismatch %dx%d * %dx%d",
			len(m.Rows), m.Cols, len(o.Rows), o.Cols))
	}
	// Column c of the product is m applied to column c of o.
	p := NewMatrix(len(m.Rows), o.Cols)
	for c := 0; c < o.Cols; c++ {
		var col uint64
		for r := range o.Rows {
			col |= o.Get(r, c) << uint(r)
		}
		mc := m.Apply(col)
		for r := range p.Rows {
			p.Rows[r] |= ((mc >> uint(r)) & 1) << uint(c)
		}
	}
	return p
}

// Transpose returns the transpose of m.
func (m Matrix) Transpose() Matrix {
	t := NewMatrix(m.Cols, len(m.Rows))
	for r := range m.Rows {
		for c := 0; c < m.Cols; c++ {
			if m.Get(r, c) == 1 {
				t.Set(c, r, 1)
			}
		}
	}
	return t
}

// Rank returns the rank of m over GF(2).
func (m Matrix) Rank() int {
	rows := make([]uint64, len(m.Rows))
	copy(rows, m.Rows)
	rank := 0
	for c := 0; c < m.Cols; c++ {
		pivot := -1
		for r := rank; r < len(rows); r++ {
			if (rows[r]>>uint(c))&1 == 1 {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			continue
		}
		rows[rank], rows[pivot] = rows[pivot], rows[rank]
		for r := 0; r < len(rows); r++ {
			if r != rank && (rows[r]>>uint(c))&1 == 1 {
				rows[r] ^= rows[rank]
			}
		}
		rank++
	}
	return rank
}

// Invertible reports whether m is square and has full rank.
func (m Matrix) Invertible() bool {
	return len(m.Rows) == m.Cols && m.Rank() == m.Cols
}

// Inverse returns the inverse of m. The second result is false when m is
// not square or is singular.
func (m Matrix) Inverse() (Matrix, bool) {
	k := len(m.Rows)
	if k != m.Cols {
		return Matrix{}, false
	}
	// Gauss-Jordan on [m | I] packed as rows of 2k bits.
	aug := make([]uint64, k)
	if 2*k > 64 {
		return m.inverseWide()
	}
	for r := 0; r < k; r++ {
		aug[r] = m.Rows[r] | 1<<uint(k+r)
	}
	row := 0
	for c := 0; c < k; c++ {
		pivot := -1
		for r := row; r < k; r++ {
			if (aug[r]>>uint(c))&1 == 1 {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			return Matrix{}, false
		}
		aug[row], aug[pivot] = aug[pivot], aug[row]
		for r := 0; r < k; r++ {
			if r != row && (aug[r]>>uint(c))&1 == 1 {
				aug[r] ^= aug[row]
			}
		}
		row++
	}
	inv := NewMatrix(k, k)
	for r := 0; r < k; r++ {
		inv.Rows[r] = aug[r] >> uint(k)
	}
	return inv, true
}

// inverseWide handles k > 32 with a two-word augmented form.
func (m Matrix) inverseWide() (Matrix, bool) {
	k := len(m.Rows)
	left := make([]uint64, k)
	right := make([]uint64, k)
	copy(left, m.Rows)
	for r := 0; r < k; r++ {
		right[r] = 1 << uint(r)
	}
	row := 0
	for c := 0; c < k; c++ {
		pivot := -1
		for r := row; r < k; r++ {
			if (left[r]>>uint(c))&1 == 1 {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			return Matrix{}, false
		}
		left[row], left[pivot] = left[pivot], left[row]
		right[row], right[pivot] = right[pivot], right[row]
		for r := 0; r < k; r++ {
			if r != row && (left[r]>>uint(c))&1 == 1 {
				left[r] ^= left[row]
				right[r] ^= right[row]
			}
		}
		row++
	}
	return Matrix{Rows: right, Cols: k}, true
}

// KernelBasis returns a basis of the null space {x : m x = 0}.
func (m Matrix) KernelBasis() []uint64 {
	// Row-reduce and track pivot columns.
	rows := make([]uint64, len(m.Rows))
	copy(rows, m.Rows)
	pivotCol := make([]int, 0, len(rows))
	row := 0
	for c := 0; c < m.Cols && row < len(rows); c++ {
		pivot := -1
		for r := row; r < len(rows); r++ {
			if (rows[r]>>uint(c))&1 == 1 {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			continue
		}
		rows[row], rows[pivot] = rows[pivot], rows[row]
		for r := 0; r < len(rows); r++ {
			if r != row && (rows[r]>>uint(c))&1 == 1 {
				rows[r] ^= rows[row]
			}
		}
		pivotCol = append(pivotCol, c)
		row++
	}
	isPivot := make([]bool, m.Cols)
	for _, c := range pivotCol {
		isPivot[c] = true
	}
	var basis []uint64
	for c := 0; c < m.Cols; c++ {
		if isPivot[c] {
			continue
		}
		// Free column c: set x_c = 1, solve pivots.
		v := uint64(1) << uint(c)
		for r, pc := range pivotCol {
			if (rows[r]>>uint(c))&1 == 1 {
				v |= 1 << uint(pc)
			}
		}
		basis = append(basis, v)
	}
	return basis
}

// Solve finds one x with m x = b. The second result is false when the
// system is inconsistent.
func (m Matrix) Solve(b uint64) (uint64, bool) {
	rows := make([]uint64, len(m.Rows))
	copy(rows, m.Rows)
	rhs := make([]uint64, len(m.Rows))
	for r := range rhs {
		rhs[r] = (b >> uint(r)) & 1
	}
	pivotCol := make([]int, 0, len(rows))
	row := 0
	for c := 0; c < m.Cols && row < len(rows); c++ {
		pivot := -1
		for r := row; r < len(rows); r++ {
			if (rows[r]>>uint(c))&1 == 1 {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			continue
		}
		rows[row], rows[pivot] = rows[pivot], rows[row]
		rhs[row], rhs[pivot] = rhs[pivot], rhs[row]
		for r := 0; r < len(rows); r++ {
			if r != row && (rows[r]>>uint(c))&1 == 1 {
				rows[r] ^= rows[row]
				rhs[r] ^= rhs[row]
			}
		}
		pivotCol = append(pivotCol, c)
		row++
	}
	for r := row; r < len(rows); r++ {
		if rhs[r] == 1 {
			return 0, false
		}
	}
	var x uint64
	for r, c := range pivotCol {
		if rhs[r] == 1 {
			x |= 1 << uint(c)
		}
	}
	return x, true
}

// RandomInvertible returns a uniformly sampled invertible k x k matrix,
// built by rejection sampling (the acceptance probability is > 0.288 for
// every k, so this terminates quickly).
func RandomInvertible(rng *rand.Rand, k int) Matrix {
	for {
		m := NewMatrix(k, k)
		for r := range m.Rows {
			m.Rows[r] = rng.Uint64() & bitops.Mask(k)
		}
		if m.Invertible() {
			return m
		}
	}
}

// RandomMatrix returns a k x k matrix with independent uniform entries.
func RandomMatrix(rng *rand.Rand, k int) Matrix {
	m := NewMatrix(k, k)
	for r := range m.Rows {
		m.Rows[r] = rng.Uint64() & bitops.Mask(k)
	}
	return m
}

// String renders m as rows of 0/1 digits, most significant column last so
// that entry (r,c) appears at position c in row r.
func (m Matrix) String() string {
	var b strings.Builder
	for r := range m.Rows {
		for c := 0; c < m.Cols; c++ {
			if m.Get(r, c) == 1 {
				b.WriteByte('1')
			} else {
				b.WriteByte('0')
			}
		}
		if r < len(m.Rows)-1 {
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// SpanContains reports whether v lies in the GF(2) span of basis.
func SpanContains(basis []uint64, v uint64) bool {
	// Reduce v against an echelonized copy of the basis.
	ech := Echelonize(basis)
	for _, b := range ech {
		if b == 0 {
			continue
		}
		top := uint(63 - bits.LeadingZeros64(b))
		if (v>>top)&1 == 1 {
			v ^= b
		}
	}
	return v == 0
}

// Echelonize returns a reduced (echelon form, distinct leading bits) basis
// of the span of vs; zero vectors are dropped.
func Echelonize(vs []uint64) []uint64 {
	var ech []uint64
	for _, v := range vs {
		for _, b := range ech {
			top := uint(63 - bits.LeadingZeros64(b))
			if (v>>top)&1 == 1 {
				v ^= b
			}
		}
		if v != 0 {
			ech = append(ech, v)
		}
	}
	return ech
}

// SpanDim returns the dimension of the span of vs.
func SpanDim(vs []uint64) int { return len(Echelonize(vs)) }
