package gf2

import (
	mrand "math/rand"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"minequiv/internal/bitops"
)

func TestDot(t *testing.T) {
	cases := []struct{ a, b, want uint64 }{
		{0, 0, 0}, {1, 1, 1}, {0b11, 0b01, 1}, {0b11, 0b11, 0},
		{0b101, 0b111, 0}, {0b1011, 0b0110, 1},
	}
	for _, c := range cases {
		if got := Dot(c.a, c.b); got != c.want {
			t.Errorf("Dot(%b,%b) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestIdentityApply(t *testing.T) {
	id := Identity(6)
	for x := uint64(0); x < 64; x++ {
		if id.Apply(x) != x {
			t.Fatalf("Identity.Apply(%d) != %d", x, x)
		}
	}
	if !id.Invertible() || id.Rank() != 6 {
		t.Error("identity not invertible / wrong rank")
	}
}

func TestMatrixGetSet(t *testing.T) {
	m := NewMatrix(3, 4)
	m.Set(1, 2, 1)
	m.Set(2, 3, 1)
	if m.Get(1, 2) != 1 || m.Get(2, 3) != 1 || m.Get(0, 0) != 0 {
		t.Error("Get/Set mismatch")
	}
	m.Set(1, 2, 0)
	if m.Get(1, 2) != 0 {
		t.Error("Set to 0 failed")
	}
	if m.NumRows() != 3 || m.Cols != 4 {
		t.Error("shape wrong")
	}
}

func TestMulAssociativeAndIdentity(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 0))
	for trial := 0; trial < 50; trial++ {
		k := rng.IntN(10) + 1
		a := RandomMatrix(rng, k)
		b := RandomMatrix(rng, k)
		c := RandomMatrix(rng, k)
		if !a.Mul(b.Mul(c)).Equal(a.Mul(b).Mul(c)) {
			t.Fatalf("k=%d: (ab)c != a(bc)", k)
		}
		if !a.Mul(Identity(k)).Equal(a) || !Identity(k).Mul(a).Equal(a) {
			t.Fatalf("k=%d: identity law fails", k)
		}
		// Mul agrees with composed Apply.
		x := rng.Uint64() & bitops.Mask(k)
		if a.Mul(b).Apply(x) != a.Apply(b.Apply(x)) {
			t.Fatalf("k=%d: (ab)x != a(bx)", k)
		}
	}
}

func TestTransposeInvolution(t *testing.T) {
	rng := rand.New(rand.NewPCG(8, 0))
	for trial := 0; trial < 50; trial++ {
		k := rng.IntN(12) + 1
		m := RandomMatrix(rng, k)
		if !m.Transpose().Transpose().Equal(m) {
			t.Fatal("transpose not involutive")
		}
		if m.Transpose().Rank() != m.Rank() {
			t.Fatal("rank(m^T) != rank(m)")
		}
	}
}

func TestRankKnown(t *testing.T) {
	m := NewMatrix(3, 3)
	m.Rows[0] = 0b011
	m.Rows[1] = 0b110
	m.Rows[2] = 0b101 // = row0 ^ row1
	if got := m.Rank(); got != 2 {
		t.Errorf("Rank = %d, want 2", got)
	}
	if m.Invertible() {
		t.Error("singular matrix reported invertible")
	}
	z := NewMatrix(4, 4)
	if z.Rank() != 0 {
		t.Error("zero matrix rank != 0")
	}
}

func TestInverseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 0))
	for trial := 0; trial < 60; trial++ {
		k := rng.IntN(14) + 1
		m := RandomInvertible(rng, k)
		inv, ok := m.Inverse()
		if !ok {
			t.Fatalf("k=%d: invertible matrix failed to invert", k)
		}
		if !m.Mul(inv).Equal(Identity(k)) || !inv.Mul(m).Equal(Identity(k)) {
			t.Fatalf("k=%d: m * m^-1 != I", k)
		}
	}
	// Singular matrices must be rejected.
	m := NewMatrix(2, 2)
	m.Rows[0] = 0b11
	m.Rows[1] = 0b11
	if _, ok := m.Inverse(); ok {
		t.Error("singular matrix inverted")
	}
	// Non-square matrices must be rejected.
	if _, ok := NewMatrix(2, 3).Inverse(); ok {
		t.Error("non-square matrix inverted")
	}
}

func TestInverseWide(t *testing.T) {
	// Force the wide path (2k > 64) with k = 40.
	rng := rand.New(rand.NewPCG(10, 0))
	m := RandomInvertible(rng, 40)
	inv, ok := m.Inverse()
	if !ok {
		t.Fatal("wide inverse failed")
	}
	if !m.Mul(inv).Equal(Identity(40)) {
		t.Fatal("wide m * m^-1 != I")
	}
}

func TestKernelBasis(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 0))
	for trial := 0; trial < 60; trial++ {
		k := rng.IntN(10) + 1
		m := RandomMatrix(rng, k)
		basis := m.KernelBasis()
		if len(basis)+m.Rank() != k {
			t.Fatalf("rank-nullity violated: dim %d, rank %d, nullity %d",
				k, m.Rank(), len(basis))
		}
		for _, v := range basis {
			if m.Apply(v) != 0 {
				t.Fatalf("kernel vector %b not in kernel", v)
			}
			if v == 0 {
				t.Fatal("zero vector in kernel basis")
			}
		}
		if SpanDim(basis) != len(basis) {
			t.Fatal("kernel basis not independent")
		}
	}
}

func TestSolve(t *testing.T) {
	rng := rand.New(rand.NewPCG(12, 0))
	for trial := 0; trial < 80; trial++ {
		k := rng.IntN(10) + 1
		m := RandomMatrix(rng, k)
		// Consistent system: pick x, solve for m x.
		x0 := rng.Uint64() & bitops.Mask(k)
		b := m.Apply(x0)
		x, ok := m.Solve(b)
		if !ok {
			t.Fatalf("consistent system reported unsolvable")
		}
		if m.Apply(x) != b {
			t.Fatalf("Solve returned wrong solution")
		}
	}
	// Inconsistent system.
	m := NewMatrix(2, 2)
	m.Rows[0] = 0b01
	m.Rows[1] = 0b01
	if _, ok := m.Solve(0b10); ok {
		t.Error("inconsistent system solved")
	}
}

func TestSpan(t *testing.T) {
	basis := []uint64{0b001, 0b010}
	if !SpanContains(basis, 0b011) || !SpanContains(basis, 0) {
		t.Error("span membership false negative")
	}
	if SpanContains(basis, 0b100) {
		t.Error("span membership false positive")
	}
	if SpanDim([]uint64{0b11, 0b01, 0b10}) != 2 {
		t.Error("SpanDim wrong")
	}
	if SpanDim(nil) != 0 {
		t.Error("SpanDim(nil) != 0")
	}
}

func TestAffineApplyCompose(t *testing.T) {
	rng := rand.New(rand.NewPCG(13, 0))
	for trial := 0; trial < 60; trial++ {
		k := rng.IntN(8) + 1
		a := Affine{M: RandomMatrix(rng, k), C: rng.Uint64() & bitops.Mask(k), Dim: k}
		b := Affine{M: RandomMatrix(rng, k), C: rng.Uint64() & bitops.Mask(k), Dim: k}
		x := rng.Uint64() & bitops.Mask(k)
		if a.Compose(b).Apply(x) != a.Apply(b.Apply(x)) {
			t.Fatal("affine composition law fails")
		}
	}
}

func TestAffineInverse(t *testing.T) {
	rng := rand.New(rand.NewPCG(14, 0))
	for trial := 0; trial < 40; trial++ {
		k := rng.IntN(8) + 1
		a := Affine{M: RandomInvertible(rng, k), C: rng.Uint64() & bitops.Mask(k), Dim: k}
		inv, ok := a.Inverse()
		if !ok {
			t.Fatal("invertible affine map not inverted")
		}
		for x := uint64(0); x < 1<<uint(k); x++ {
			if inv.Apply(a.Apply(x)) != x || a.Apply(inv.Apply(x)) != x {
				t.Fatal("affine inverse wrong")
			}
		}
	}
	sing := Affine{M: NewMatrix(3, 3), C: 1, Dim: 3}
	if _, ok := sing.Inverse(); ok {
		t.Error("singular affine map inverted")
	}
}

func TestAffineTable(t *testing.T) {
	rng := rand.New(rand.NewPCG(15, 0))
	for trial := 0; trial < 30; trial++ {
		k := rng.IntN(9) + 1
		a := Affine{M: RandomMatrix(rng, k), C: rng.Uint64() & bitops.Mask(k), Dim: k}
		tab := a.Table()
		if len(tab) != 1<<uint(k) {
			t.Fatal("table length wrong")
		}
		for x := uint64(0); x < uint64(len(tab)); x++ {
			if tab[x] != a.Apply(x) {
				t.Fatalf("Table[%d] = %d, Apply = %d", x, tab[x], a.Apply(x))
			}
		}
	}
}

func TestInferAffineRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(16, 0))
	for trial := 0; trial < 60; trial++ {
		k := rng.IntN(9) + 1
		a := Affine{M: RandomMatrix(rng, k), C: rng.Uint64() & bitops.Mask(k), Dim: k}
		got, ok := InferAffine(a.Table(), k)
		if !ok {
			t.Fatal("affine table not recognized")
		}
		if !got.Equal(a) {
			t.Fatalf("inferred map differs:\n%v\nvs\n%v", got, a)
		}
	}
}

func TestInferAffineRejectsNonAffine(t *testing.T) {
	// x -> x+1 mod 2^k is not GF(2)-affine for k >= 3 (for k = 2 the
	// single carry bit1' = x1^x0 happens to be linear).
	for k := 3; k <= 8; k++ {
		n := 1 << uint(k)
		f := make([]uint64, n)
		for x := 0; x < n; x++ {
			f[x] = uint64((x + 1) % n)
		}
		if _, ok := InferAffine(f, k); ok {
			t.Errorf("k=%d: x+1 mod 2^k accepted as affine", k)
		}
	}
	// A table with one corrupted entry must be rejected.
	rng := rand.New(rand.NewPCG(17, 0))
	a := Affine{M: RandomMatrix(rng, 5), C: 7, Dim: 5}
	tab := a.Table()
	tab[19] ^= 1
	if _, ok := InferAffine(tab, 5); ok {
		t.Error("corrupted affine table accepted")
	}
	// Wrong length tables are rejected.
	if _, ok := InferAffine(make([]uint64, 7), 3); ok {
		t.Error("wrong-length table accepted")
	}
}

func TestNewAffineValidation(t *testing.T) {
	if _, err := NewAffine(Identity(3), 0b111, 3); err != nil {
		t.Errorf("valid affine rejected: %v", err)
	}
	if _, err := NewAffine(Identity(3), 0b1000, 3); err == nil {
		t.Error("oversized constant accepted")
	}
	if _, err := NewAffine(Identity(2), 0, 3); err == nil {
		t.Error("shape mismatch accepted")
	}
}

func TestRandomInvertibleIsInvertible(t *testing.T) {
	rng := rand.New(rand.NewPCG(18, 0))
	for k := 1; k <= 16; k++ {
		if !RandomInvertible(rng, k).Invertible() {
			t.Errorf("k=%d: RandomInvertible returned singular matrix", k)
		}
	}
}

// Property: Apply is linear: m(x^y) == m(x)^m(y).
func TestApplyLinearityProperty(t *testing.T) {
	f := func(seed uint64, xr, yr uint64) bool {
		r := rand.New(rand.NewPCG(seed, 0))
		k := r.IntN(16) + 1
		m := RandomMatrix(rand.New(rand.NewPCG(seed+1, 0)), k)
		x := xr & bitops.Mask(k)
		y := yr & bitops.Mask(k)
		return m.Apply(x^y) == m.Apply(x)^m.Apply(y)
	}
	if err := quick.Check(f, &quick.Config{Rand: mrand.New(mrand.NewSource(1)), MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: rank is invariant under row swaps and row additions.
func TestRankInvariance(t *testing.T) {
	rng := rand.New(rand.NewPCG(20, 0))
	for trial := 0; trial < 100; trial++ {
		k := rng.IntN(10) + 2
		m := RandomMatrix(rng, k)
		r0 := m.Rank()
		i, j := rng.IntN(k), rng.IntN(k)
		if i == j {
			continue
		}
		m2 := m.Clone()
		m2.Rows[i], m2.Rows[j] = m2.Rows[j], m2.Rows[i]
		if m2.Rank() != r0 {
			t.Fatal("rank changed under row swap")
		}
		m3 := m.Clone()
		m3.Rows[i] ^= m3.Rows[j]
		if m3.Rank() != r0 {
			t.Fatal("rank changed under row addition")
		}
	}
}

func TestMatrixString(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(0, 0, 1)
	m.Set(1, 2, 1)
	if got := m.String(); got != "100\n001" {
		t.Errorf("String = %q", got)
	}
}

func BenchmarkApply(b *testing.B) {
	rng := rand.New(rand.NewPCG(21, 0))
	m := RandomMatrix(rng, 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Apply(uint64(i) & bitops.Mask(20))
	}
}

func BenchmarkInferAffine(b *testing.B) {
	rng := rand.New(rand.NewPCG(22, 0))
	a := Affine{M: RandomMatrix(rng, 12), C: 5, Dim: 12}
	tab := a.Table()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := InferAffine(tab, 12); !ok {
			b.Fatal("inference failed")
		}
	}
}
