package gf2

import (
	"fmt"

	"minequiv/internal/bitops"
)

// Affine is an affine map x -> M x ^ C over GF(2)^Dim.
//
// The paper's independence property is exactly "f and g are Affine with a
// common M" (proved as conn.IndependentIffAffine and exercised in tests),
// so Affine is the normal form in which independent connections are
// stored, generated and composed.
type Affine struct {
	M   Matrix
	C   uint64
	Dim int
}

// NewAffine builds an affine map after checking shapes.
func NewAffine(m Matrix, c uint64, dim int) (Affine, error) {
	if len(m.Rows) != dim || m.Cols != dim {
		return Affine{}, fmt.Errorf("gf2: affine wants %dx%d matrix, got %dx%d",
			dim, dim, len(m.Rows), m.Cols)
	}
	if c&^bitops.Mask(dim) != 0 {
		return Affine{}, fmt.Errorf("gf2: affine constant %#x exceeds %d bits", c, dim)
	}
	return Affine{M: m, C: c, Dim: dim}, nil
}

// Apply evaluates the map at x.
func (a Affine) Apply(x uint64) uint64 {
	return a.M.Apply(x) ^ a.C
}

// Compose returns the map x -> a(b(x)).
func (a Affine) Compose(b Affine) Affine {
	if a.Dim != b.Dim {
		panic(fmt.Sprintf("gf2: composing affine maps of dim %d and %d", a.Dim, b.Dim))
	}
	return Affine{M: a.M.Mul(b.M), C: a.M.Apply(b.C) ^ a.C, Dim: a.Dim}
}

// Inverse returns the inverse affine map; ok is false when M is singular.
func (a Affine) Inverse() (Affine, bool) {
	inv, ok := a.M.Inverse()
	if !ok {
		return Affine{}, false
	}
	return Affine{M: inv, C: inv.Apply(a.C), Dim: a.Dim}, true
}

// Table expands the map into a lookup table over all 2^Dim inputs.
func (a Affine) Table() []uint64 {
	t := make([]uint64, 1<<uint(a.Dim))
	// Gray-code style incremental evaluation: flipping input bit i XORs
	// column i of M into the output. O(2^Dim) instead of O(2^Dim * Dim).
	cols := make([]uint64, a.Dim)
	for i := 0; i < a.Dim; i++ {
		cols[i] = a.M.Apply(1 << uint(i))
	}
	t[0] = a.C
	for x := uint64(1); x < uint64(len(t)); x++ {
		// lowest set bit that changed from x-1 to x: recompute from x-1^x.
		diff := x ^ (x - 1)
		y := t[x-1]
		for i := 0; i < a.Dim; i++ {
			if (diff>>uint(i))&1 == 1 {
				y ^= cols[i]
			}
		}
		t[x] = y
	}
	return t
}

// InferAffine attempts to express the table f (of length 2^dim, entries
// within dim bits) as an affine map. It returns the map and true on
// success; false when f is not affine.
//
// The inference reads only dim+1 entries (f(0) and f(e_i)); the
// verification pass then checks all entries, so the total cost is one scan
// of the table.
func InferAffine(f []uint64, dim int) (Affine, bool) {
	if len(f) != 1<<uint(dim) {
		return Affine{}, false
	}
	c := f[0]
	m := NewMatrix(dim, dim)
	cols := make([]uint64, dim)
	for i := 0; i < dim; i++ {
		cols[i] = f[1<<uint(i)] ^ c
		for r := 0; r < dim; r++ {
			if (cols[i]>>uint(r))&1 == 1 {
				m.Set(r, i, 1)
			}
		}
	}
	a := Affine{M: m, C: c, Dim: dim}
	// Verify every entry incrementally (same trick as Table).
	y := c
	for x := uint64(0); x < uint64(len(f)); x++ {
		if x > 0 {
			diff := x ^ (x - 1)
			for i := 0; i < dim; i++ {
				if (diff>>uint(i))&1 == 1 {
					y ^= cols[i]
				}
			}
		}
		if f[x] != y {
			return Affine{}, false
		}
	}
	return a, true
}

// IsLinear reports whether the affine map has zero constant.
func (a Affine) IsLinear() bool { return a.C == 0 }

// Equal reports structural equality.
func (a Affine) Equal(b Affine) bool {
	return a.Dim == b.Dim && a.C == b.C && a.M.Equal(b.M)
}

func (a Affine) String() string {
	return fmt.Sprintf("x -> Mx^%s with M=\n%s", bitops.Tuple(a.C, a.Dim), a.M)
}
