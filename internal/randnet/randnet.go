// Package randnet generates random multistage interconnection networks
// for the experiment harness and the property-based tests: random
// independent-connection Banyans (the objects of Theorem 3), random PIPID
// networks (§4), random isomorphic scrambles, and the tail-cycle family
// of Banyan-but-NOT-baseline-equivalent graphs used as counterexamples.
package randnet

import (
	"fmt"
	"math/rand/v2"

	"minequiv/internal/conn"
	"minequiv/internal/midigraph"
	"minequiv/internal/perm"
	"minequiv/internal/pipid"
	"minequiv/internal/topology"
)

// IndependentBanyan samples a Banyan MI-digraph built from independent
// connections — exactly the hypotheses of Theorem 3 — by rejection:
// random independent connections are drawn per stage (mixing the
// bijective and rank-deficient cases) until the composition is Banyan.
//
// Rejection converges quickly in practice because each stage
// individually satisfies the degree conditions; maxTries bounds the
// search defensively.
func IndependentBanyan(rng *rand.Rand, n int, maxTries int) (*midigraph.Graph, []conn.Connection, error) {
	if n < 2 {
		return nil, nil, fmt.Errorf("randnet: need n >= 2")
	}
	m := n - 1
	for try := 0; try < maxTries; try++ {
		conns := make([]conn.Connection, n-1)
		for s := range conns {
			conns[s] = conn.RandomIndependent(rng, m, rng.IntN(2) == 0)
		}
		g, err := conn.BuildGraph(conns)
		if err != nil {
			continue
		}
		if ok, _ := g.IsBanyan(); ok {
			return g, conns, nil
		}
	}
	return nil, nil, fmt.Errorf("randnet: no Banyan found in %d tries (n=%d)", maxTries, n)
}

// PIPIDNetwork samples a network built from uniformly random PIPID index
// permutations, rejecting degenerate stages (theta^{-1}(0) = 0, which
// yield double links) and non-Banyan compositions.
func PIPIDNetwork(rng *rand.Rand, n int, maxTries int) (topology.Network, error) {
	for try := 0; try < maxTries; try++ {
		ips := make([]pipid.IndexPerm, n-1)
		ok := true
		for s := range ips {
			ips[s] = pipid.Random(rng, n)
			if ips[s].PortSource() == 0 {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		nw, err := topology.FromIndexPerms(fmt.Sprintf("random-pipid-%d", try), n, ips)
		if err != nil {
			continue
		}
		if banyan, _ := nw.Graph.IsBanyan(); banyan {
			return nw, nil
		}
	}
	return topology.Network{}, fmt.Errorf("randnet: no Banyan PIPID network in %d tries (n=%d)", maxTries, n)
}

// Scramble relabels every stage of g by an independent uniform
// permutation, returning the scrambled graph and the isomorphism used
// (as per-stage permutations old -> new). The result is isomorphic to g
// by construction.
func Scramble(rng *rand.Rand, g *midigraph.Graph) (*midigraph.Graph, []perm.Perm) {
	perms := make([]perm.Perm, g.Stages())
	for s := range perms {
		perms[s] = perm.Random(rng, g.CellsPerStage())
	}
	sg, err := g.Relabel(perms)
	if err != nil {
		panic(fmt.Sprintf("randnet: relabel failed: %v", err)) // shapes match by construction
	}
	return sg, perms
}

// TailCycleBanyan builds the counterexample family: a Baseline whose
// last connection is replaced by the 2h-cycle y -> {y, (y+1) mod h}.
//
// The graph remains Banyan: from any input node the Baseline prefix
// reaches exactly the penultimate-stage nodes of one parity, once each,
// and the cycle then covers every output node exactly once. But the last
// two-stage window collapses to a single connected component instead of
// 2^(n-2), so P(n-1, n) fails and the network is not baseline-equivalent.
// Requires n >= 3 (for n = 2 the cycle is exactly K_{2,2} = Baseline).
func TailCycleBanyan(n int) (*midigraph.Graph, error) {
	if n < 3 {
		return nil, fmt.Errorf("randnet: tail-cycle counterexample needs n >= 3")
	}
	g := topology.Baseline(n)
	h := uint32(g.CellsPerStage())
	for y := uint32(0); y < h; y++ {
		g.SetChildren(n-2, y, y, (y+1)%h)
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("randnet: tail-cycle graph invalid: %v", err)
	}
	return g, nil
}

// TailCycleLinkPerms expresses the tail-cycle counterexample at the link
// level (needed by the routing and simulation layers): stages 0..n-3 use
// the Baseline's inverse subshuffles, and the last connection maps
// outlink (y,0) to inlink (y,0) and outlink (y,1) to inlink ((y+1) mod
// h, 1). The induced cell digraph is exactly TailCycleBanyan(n).
func TailCycleLinkPerms(n int) ([]perm.Perm, error) {
	if n < 3 {
		return nil, fmt.Errorf("randnet: tail-cycle counterexample needs n >= 3")
	}
	ps := topology.BaselineLinkPerms(n)
	nLinks := 1 << uint(n)
	h := uint64(nLinks / 2)
	last := make(perm.Perm, nLinks)
	for y := uint64(0); y < h; y++ {
		last[2*y] = 2 * y
		last[2*y+1] = 2*((y+1)%h) + 1
	}
	if err := last.Validate(); err != nil {
		return nil, err
	}
	ps[n-2] = last
	return ps, nil
}

// HeadCycleBanyan is the reverse counterexample: the first connection is
// a 2h-cycle. It is the reverse digraph of TailCycleBanyan and therefore
// Banyan with P(1,2) violated instead of P(n-1,n).
func HeadCycleBanyan(n int) (*midigraph.Graph, error) {
	g, err := TailCycleBanyan(n)
	if err != nil {
		return nil, err
	}
	return g.Reverse(), nil
}

// BuddyTwist reproduces the historical refutation the paper's §1 cites
// ([10] refuting Theorem 1 of Agrawal [8]): a 4-stage Banyan MI-digraph
// in which EVERY stage has the buddy structure (two-stage windows are
// disjoint K_{2,2} blocks) yet which is not baseline-equivalent.
//
// Construction: in Baseline(4) the middle connection sends the stage-2
// buddy pairs to the children sets S_0={0,2}, S_1={1,3}, S_2={4,6},
// S_3={5,7}. Exchanging cells 3 and 7 between S_1 and S_3 (giving
// S_1={1,7}, S_3={5,3}) keeps every consecutive window a perfect K_{2,2}
// tiling (buddy property) and keeps S_0∪S_2 and S_1∪S_3 transversals of
// the last-stage blocks (Banyan survives), but it stitches the two
// sub-Baselines together: the suffix window (2..4) collapses from 2
// components to 1, so P(2,4) fails and with it the characterization.
func BuddyTwist() (*midigraph.Graph, error) {
	const n = 4
	g := topology.Baseline(n)
	children := [4][2]uint32{{0, 2}, {1, 7}, {4, 6}, {5, 3}}
	for y := uint32(0); y < uint32(g.CellsPerStage()); y++ {
		s := children[y>>1]
		g.SetChildren(1, y, s[0], s[1])
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("randnet: buddy twist invalid: %v", err)
	}
	return g, nil
}

// NonBanyan builds a valid MI-digraph that is not Banyan: a Baseline
// whose middle connection is degraded to double links (the Fig 5
// degeneracy), pairing buddies so that degrees stay correct.
func NonBanyan(n int) (*midigraph.Graph, error) {
	if n < 3 {
		return nil, fmt.Errorf("randnet: non-banyan example needs n >= 3")
	}
	g := topology.Baseline(n)
	h := uint32(g.CellsPerStage())
	s := (n - 1) / 2
	for y := uint32(0); y < h; y++ {
		g.SetChildren(s, y, y^1, y^1)
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("randnet: non-banyan graph invalid: %v", err)
	}
	return g, nil
}

// RandomValidGraph samples an arbitrary valid MI-digraph (no structural
// promises beyond the degree conditions): each stage pairs a random
// permutation with a random derangement-style second choice, i.e. the
// connection tables are two independent random permutations. Such graphs
// are almost never Banyan and serve as negative-control inputs.
func RandomValidGraph(rng *rand.Rand, n int) *midigraph.Graph {
	g := midigraph.New(n)
	h := g.CellsPerStage()
	for s := 0; s < n-1; s++ {
		pf := perm.Random(rng, h)
		pg := perm.Random(rng, h)
		for x := 0; x < h; x++ {
			g.SetChildren(s, uint32(x), uint32(pf[x]), uint32(pg[x]))
		}
	}
	return g
}
