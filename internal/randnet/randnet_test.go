package randnet

import (
	"math/rand/v2"
	"testing"

	"minequiv/internal/midigraph"
	"minequiv/internal/topology"
)

func TestIndependentBanyanProperties(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 0))
	for n := 2; n <= 7; n++ {
		for trial := 0; trial < 5; trial++ {
			g, conns, err := IndependentBanyan(rng, n, 500)
			if err != nil {
				t.Fatalf("n=%d: %v", n, err)
			}
			if err := g.Validate(); err != nil {
				t.Fatalf("n=%d: invalid graph: %v", n, err)
			}
			if ok, v := g.IsBanyan(); !ok {
				t.Fatalf("n=%d: not Banyan: %v", n, v)
			}
			if len(conns) != n-1 {
				t.Fatalf("n=%d: %d connections", n, len(conns))
			}
			for s, c := range conns {
				if !c.IsIndependent() {
					t.Fatalf("n=%d stage %d: connection not independent", n, s)
				}
			}
			// Lemma 2: a Banyan built from independent connections
			// satisfies P(*,n); by Proposition 1 + Lemma 2 on the
			// reverse, also P(1,*).
			if !midigraph.AllOK(g.CheckSuffix()) {
				t.Fatalf("n=%d: Lemma 2 violated (P(*,n) fails)", n)
			}
			if !midigraph.AllOK(g.CheckPrefix()) {
				t.Fatalf("n=%d: P(1,*) fails", n)
			}
		}
	}
}

func TestIndependentBanyanRejectsBadArgs(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 0))
	if _, _, err := IndependentBanyan(rng, 1, 10); err == nil {
		t.Error("n=1 accepted")
	}
	if _, _, err := IndependentBanyan(rng, 5, 0); err == nil {
		t.Error("zero tries should fail")
	}
}

func TestPIPIDNetworkProperties(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 0))
	for n := 2; n <= 7; n++ {
		nw, err := PIPIDNetwork(rng, n, 500)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if ok, _ := nw.Graph.IsBanyan(); !ok {
			t.Fatalf("n=%d: not Banyan", n)
		}
		if len(nw.IndexPerms) != n-1 {
			t.Fatalf("n=%d: missing index perms", n)
		}
		// The paper's main corollary: random Banyan PIPID networks
		// satisfy the full characterization.
		if !midigraph.AllOK(nw.Graph.CheckPrefix()) || !midigraph.AllOK(nw.Graph.CheckSuffix()) {
			t.Fatalf("n=%d: PIPID network violates characterization", n)
		}
	}
}

func TestScramblePreservesStructure(t *testing.T) {
	rng := rand.New(rand.NewPCG(4, 0))
	g, _, err := IndependentBanyan(rng, 5, 500)
	if err != nil {
		t.Fatal(err)
	}
	sg, perms := Scramble(rng, g)
	if err := sg.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(perms) != g.Stages() {
		t.Fatal("wrong perm count")
	}
	// Banyan and P properties are isomorphism invariants.
	if ok, _ := sg.IsBanyan(); !ok {
		t.Fatal("scramble broke Banyan")
	}
	if !midigraph.AllOK(sg.CheckPrefix()) || !midigraph.AllOK(sg.CheckSuffix()) {
		t.Fatal("scramble broke P properties")
	}
}

func TestTailCycleBanyan(t *testing.T) {
	for n := 3; n <= 8; n++ {
		g, err := TailCycleBanyan(n)
		if err != nil {
			t.Fatal(err)
		}
		if ok, v := g.IsBanyan(); !ok {
			t.Fatalf("n=%d: not Banyan: %v", n, v)
		}
		if g.PropertyP(n-1, n) {
			t.Fatalf("n=%d: P(n-1,n) should fail", n)
		}
		if !midigraph.AllOK(g.CheckPrefix()) {
			t.Fatalf("n=%d: prefix family should hold", n)
		}
	}
	if _, err := TailCycleBanyan(2); err == nil {
		t.Error("n=2 accepted (would be Baseline itself)")
	}
}

func TestHeadCycleBanyan(t *testing.T) {
	for n := 3; n <= 8; n++ {
		g, err := HeadCycleBanyan(n)
		if err != nil {
			t.Fatal(err)
		}
		if ok, v := g.IsBanyan(); !ok {
			t.Fatalf("n=%d: not Banyan: %v", n, v)
		}
		if g.PropertyP(1, 2) {
			t.Fatalf("n=%d: P(1,2) should fail", n)
		}
		if !midigraph.AllOK(g.CheckSuffix()) {
			t.Fatalf("n=%d: suffix family should hold", n)
		}
	}
}

func TestNonBanyan(t *testing.T) {
	for n := 3; n <= 7; n++ {
		g, err := NonBanyan(n)
		if err != nil {
			t.Fatal(err)
		}
		if ok, _ := g.IsBanyan(); ok {
			t.Fatalf("n=%d: NonBanyan graph is Banyan", n)
		}
		if !g.HasParallelArcs() {
			t.Fatalf("n=%d: expected double links", n)
		}
	}
	if _, err := NonBanyan(2); err == nil {
		t.Error("n=2 accepted")
	}
}

func TestRandomValidGraph(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 0))
	for trial := 0; trial < 20; trial++ {
		n := rng.IntN(5) + 2
		g := RandomValidGraph(rng, n)
		if err := g.Validate(); err != nil {
			t.Fatalf("random graph invalid: %v", err)
		}
	}
}

func BenchmarkIndependentBanyan(b *testing.B) {
	rng := rand.New(rand.NewPCG(6, 0))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := IndependentBanyan(rng, 8, 2000); err != nil {
			b.Fatal(err)
		}
	}
}

func TestBuddyTwist(t *testing.T) {
	g, err := BuddyTwist()
	if err != nil {
		t.Fatal(err)
	}
	// Banyan holds...
	if ok, v := g.IsBanyan(); !ok {
		t.Fatalf("buddy twist not Banyan: %v", v)
	}
	// ...every stage has the buddy structure...
	if !g.BuddyProperty() {
		t.Fatal("buddy twist lost the buddy property")
	}
	// ...but the characterization fails: P(2,4) collapses to one
	// component instead of two.
	if got := g.ComponentCount(1, 3); got != 1 {
		t.Fatalf("window (2..4) has %d components, want 1", got)
	}
	if g.PropertyP(2, 4) {
		t.Fatal("P(2,4) unexpectedly holds")
	}
	if midigraph.AllOK(g.CheckSuffix()) {
		t.Fatal("suffix family unexpectedly holds")
	}
}

func TestBaselineHasBuddyProperty(t *testing.T) {
	// Sanity: the classical networks all satisfy the buddy property, so
	// the refutation is about sufficiency, not about the property being
	// exotic.
	for n := 2; n <= 7; n++ {
		for _, name := range topology.Names() {
			g := topology.MustBuild(name, n).Graph
			if !g.BuddyProperty() {
				t.Fatalf("%s n=%d: buddy property fails", name, n)
			}
		}
	}
	// Double links break it.
	nb, err := NonBanyan(4)
	if err != nil {
		t.Fatal(err)
	}
	if nb.BuddyProperty() {
		t.Fatal("double-link graph has buddy property")
	}
	// The tail cycle breaks it at the last stage only.
	tc, err := TailCycleBanyan(4)
	if err != nil {
		t.Fatal(err)
	}
	if tc.BuddyStage(0) != true || tc.BuddyStage(2) != false {
		t.Fatal("tail-cycle buddy pattern wrong")
	}
}

func TestTailCycleLinkPerms(t *testing.T) {
	for n := 3; n <= 7; n++ {
		perms, err := TailCycleLinkPerms(n)
		if err != nil {
			t.Fatal(err)
		}
		g, err := midigraph.FromLinkPerms(n, perms)
		if err != nil {
			t.Fatal(err)
		}
		want, err := TailCycleBanyan(n)
		if err != nil {
			t.Fatal(err)
		}
		// The link-level definition induces exactly the cell-level
		// counterexample, including the (f,g) slot order.
		if !g.Equal(want) {
			t.Fatalf("n=%d: link-perm tail cycle differs from cell construction", n)
		}
	}
	if _, err := TailCycleLinkPerms(2); err == nil {
		t.Error("n=2 accepted")
	}
}
