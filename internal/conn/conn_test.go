package conn

import (
	"math/rand/v2"
	"testing"

	"minequiv/internal/bitops"
	"minequiv/internal/gf2"
	"minequiv/internal/topology"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(2, []uint32{0, 1, 2, 3}, []uint32{3, 2, 1, 0}); err != nil {
		t.Errorf("valid connection rejected: %v", err)
	}
	if _, err := New(2, []uint32{0, 1, 2}, []uint32{3, 2, 1, 0}); err == nil {
		t.Error("short table accepted")
	}
	if _, err := New(2, []uint32{0, 1, 2, 9}, []uint32{3, 2, 1, 0}); err == nil {
		t.Error("out-of-range child accepted")
	}
}

func TestIsValid(t *testing.T) {
	// Identity/identity: every vertex has f-indegree 1 and g-indegree 1.
	c, _ := FromFuncs(2, func(x uint64) uint64 { return x }, func(x uint64) uint64 { return x })
	if !c.IsValid() {
		t.Error("double-link identity connection invalid")
	}
	if !c.HasParallelArcs() {
		t.Error("double links not flagged")
	}
	// f = g = constant: indegree 8 at one vertex.
	bad, _ := FromFuncs(2, func(x uint64) uint64 { return 0 }, func(x uint64) uint64 { return 0 })
	if bad.IsValid() {
		t.Error("constant connection valid")
	}
}

// TestIndependentIffAffine is the structural theorem behind the fast
// path: independence (by definition) holds exactly for affine pairs with
// a common linear part.
func TestIndependentIffAffine(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 0))
	for trial := 0; trial < 60; trial++ {
		m := rng.IntN(5) + 2
		// Common linear part: independent.
		mat := gf2.RandomMatrix(rng, m)
		cf := rng.Uint64() & bitops.Mask(m)
		cg := rng.Uint64() & bitops.Mask(m)
		c, err := FromAffine(mat, cf, cg)
		if err != nil {
			t.Fatal(err)
		}
		if !c.IsIndependentDef() {
			t.Fatal("affine pair with common M not independent by definition")
		}
		if !c.IsIndependent() {
			t.Fatal("fast path disagrees (independent case)")
		}
		// Different linear parts: dependent.
		mat2 := gf2.RandomMatrix(rng, m)
		if mat2.Equal(mat) {
			continue
		}
		af := gf2.Affine{M: mat, C: cf, Dim: m}
		ag := gf2.Affine{M: mat2, C: cg, Dim: m}
		ftab, gtab := af.Table(), ag.Table()
		f := make([]uint32, len(ftab))
		g := make([]uint32, len(gtab))
		for i := range ftab {
			f[i], g[i] = uint32(ftab[i]), uint32(gtab[i])
		}
		c2 := Connection{M: m, F: f, G: g}
		if c2.IsIndependentDef() {
			t.Fatal("pair with different linear parts independent by definition")
		}
		if c2.IsIndependent() {
			t.Fatal("fast path disagrees (dependent case)")
		}
	}
}

func TestDefFastAgreeOnRandomTables(t *testing.T) {
	// Fully random tables are almost never independent; the two checks
	// must still agree everywhere.
	rng := rand.New(rand.NewPCG(2, 0))
	for trial := 0; trial < 200; trial++ {
		m := rng.IntN(4) + 2
		h := 1 << uint(m)
		f := make([]uint32, h)
		g := make([]uint32, h)
		for i := range f {
			f[i] = uint32(rng.IntN(h))
			g[i] = uint32(rng.IntN(h))
		}
		c := Connection{M: m, F: f, G: g}
		if c.IsIndependentDef() != c.IsIndependent() {
			t.Fatalf("definition and fast path disagree on %v / %v", f, g)
		}
	}
}

func TestPerturbedAffineDetected(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 0))
	for trial := 0; trial < 100; trial++ {
		m := rng.IntN(4) + 2
		c := RandomIndependent(rng, m, true)
		// Corrupt one entry of F.
		idx := rng.IntN(c.H())
		c.F[idx] ^= 1
		if c.IsIndependentDef() || c.IsIndependent() {
			t.Fatal("corrupted connection still independent")
		}
	}
}

func TestBetaMatchesLinearPart(t *testing.T) {
	rng := rand.New(rand.NewPCG(4, 0))
	for trial := 0; trial < 50; trial++ {
		m := rng.IntN(5) + 2
		c := RandomIndependent(rng, m, trial%2 == 0)
		ar, ok := c.AffineForm()
		if !ok {
			t.Fatal("random independent connection lost its affine form")
		}
		for alpha := uint64(1); alpha < uint64(c.H()); alpha++ {
			beta, ok := c.Beta(alpha)
			if !ok {
				t.Fatalf("Beta(%d) rejected on independent connection", alpha)
			}
			if beta != ar.Mat.Apply(alpha) {
				t.Fatalf("Beta(%d) = %d, want M*alpha = %d", alpha, beta, ar.Mat.Apply(alpha))
			}
		}
		// Degenerate alphas.
		if _, ok := c.Beta(0); ok {
			t.Error("Beta(0) accepted")
		}
		if _, ok := c.Beta(uint64(c.H())); ok {
			t.Error("Beta(out of range) accepted")
		}
	}
}

func TestTypeDichotomy(t *testing.T) {
	// Proposition 1's proof: an independent valid connection has either
	// all vertices of type (f,g), or exactly half (f,f) and half (g,g).
	rng := rand.New(rand.NewPCG(5, 0))
	for trial := 0; trial < 80; trial++ {
		m := rng.IntN(5) + 2
		bijective := trial%2 == 0
		c := RandomIndependent(rng, m, bijective)
		ta := c.AnalyzeTypes()
		if !ta.Valid {
			t.Fatal("RandomIndependent produced invalid connection")
		}
		h := c.H()
		if bijective {
			if ta.NumFG != h || ta.NumFF != 0 || ta.NumGG != 0 {
				t.Fatalf("bijective case types: fg=%d ff=%d gg=%d", ta.NumFG, ta.NumFF, ta.NumGG)
			}
		} else {
			if ta.NumFG != 0 || ta.NumFF != h/2 || ta.NumGG != h/2 {
				t.Fatalf("singular case types: fg=%d ff=%d gg=%d", ta.NumFG, ta.NumFF, ta.NumGG)
			}
		}
	}
}

func TestAnalyzeTypesInvalid(t *testing.T) {
	bad, _ := FromFuncs(2, func(x uint64) uint64 { return 0 }, func(x uint64) uint64 { return x })
	ta := bad.AnalyzeTypes()
	if ta.Valid {
		t.Error("invalid connection typed as valid")
	}
}

// TestValidityTheorem: FromAffine(M, cf, cg) is a valid connection iff
// M is invertible, or rank(M) = m-1 and cf^cg is outside Im(M).
func TestValidityTheorem(t *testing.T) {
	rng := rand.New(rand.NewPCG(6, 0))
	for trial := 0; trial < 150; trial++ {
		m := rng.IntN(4) + 2
		mat := gf2.RandomMatrix(rng, m)
		cf := rng.Uint64() & bitops.Mask(m)
		cg := rng.Uint64() & bitops.Mask(m)
		c, err := FromAffine(mat, cf, cg)
		if err != nil {
			t.Fatal(err)
		}
		var image []uint64
		for i := 0; i < m; i++ {
			image = append(image, mat.Apply(1<<uint(i)))
		}
		rank := mat.Rank()
		want := rank == m || (rank == m-1 && !gf2.SpanContains(image, cf^cg))
		if got := c.IsValid(); got != want {
			t.Fatalf("m=%d rank=%d: IsValid=%v, theorem says %v", m, rank, got, want)
		}
	}
}

func TestReverseCase1(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 0))
	for trial := 0; trial < 60; trial++ {
		m := rng.IntN(5) + 2
		c := RandomIndependent(rng, m, true)
		rev, err := c.Reverse()
		if err != nil {
			t.Fatal(err)
		}
		if !rev.IsValid() || !rev.IsIndependentDef() {
			t.Fatal("reverse of bijective connection not valid independent")
		}
		if !ReverseArcsMatch(c, rev) {
			t.Fatal("reverse arcs do not match (case 1)")
		}
		// phi = f^{-1}: check pointwise.
		for x := 0; x < c.H(); x++ {
			if rev.F[c.F[x]] != uint32(x) || rev.G[c.G[x]] != uint32(x) {
				t.Fatal("reverse is not the inverse pair")
			}
		}
	}
}

func TestReverseCase2(t *testing.T) {
	rng := rand.New(rand.NewPCG(8, 0))
	for trial := 0; trial < 60; trial++ {
		m := rng.IntN(5) + 2
		c := RandomIndependent(rng, m, false)
		rev, err := c.Reverse()
		if err != nil {
			t.Fatalf("case-2 reverse failed: %v", err)
		}
		if !rev.IsValid() {
			t.Fatal("case-2 reverse invalid")
		}
		if !rev.IsIndependentDef() {
			t.Fatal("case-2 reverse not independent (Proposition 1 violated)")
		}
		if !ReverseArcsMatch(c, rev) {
			t.Fatal("reverse arcs do not match (case 2)")
		}
	}
}

func TestReverseDouble(t *testing.T) {
	// Reversing twice preserves the arc multiset.
	rng := rand.New(rand.NewPCG(9, 0))
	for trial := 0; trial < 40; trial++ {
		m := rng.IntN(4) + 2
		c := RandomIndependent(rng, m, trial%2 == 0)
		rev, err := c.Reverse()
		if err != nil {
			t.Fatal(err)
		}
		back, err := rev.Reverse()
		if err != nil {
			t.Fatal(err)
		}
		if !ReverseArcsMatch(rev, back) {
			t.Fatal("double reverse arc mismatch")
		}
	}
}

func TestReverseRejectsDependent(t *testing.T) {
	// A valid but dependent connection: f = identity, g = +1 mod h.
	m := 3
	h := uint64(1) << uint(m)
	c, _ := FromFuncs(m,
		func(x uint64) uint64 { return x },
		func(x uint64) uint64 { return (x + 1) % h })
	if !c.IsValid() {
		t.Fatal("test premise: cycle connection should be valid")
	}
	if c.IsIndependentDef() {
		t.Fatal("test premise: cycle connection should be dependent")
	}
	if _, err := c.Reverse(); err == nil {
		t.Error("Reverse accepted a dependent connection")
	}
}

func TestBuildGraphBaseline(t *testing.T) {
	// Building a graph from baseline's per-stage connections reproduces
	// topology.Baseline exactly.
	for n := 2; n <= 8; n++ {
		want := topology.Baseline(n)
		conns := make([]Connection, n-1)
		for s := 0; s < n-1; s++ {
			conns[s] = FromGraphStage(want, s)
			if !conns[s].IsIndependentDef() {
				t.Fatalf("n=%d stage %d: baseline connection not independent", n, s)
			}
		}
		got, err := BuildGraph(conns)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want) {
			t.Fatalf("n=%d: rebuilt graph differs", n)
		}
	}
}

func TestBuildGraphErrors(t *testing.T) {
	if _, err := BuildGraph(nil); err == nil {
		t.Error("empty connection list accepted")
	}
	// Mismatched sizes.
	c2 := RandomIndependent(rand.New(rand.NewPCG(10, 0)), 2, true)
	c3 := RandomIndependent(rand.New(rand.NewPCG(11, 0)), 3, true)
	if _, err := BuildGraph([]Connection{c2, c3}); err == nil {
		t.Error("mismatched connection sizes accepted")
	}
	// Invalid connection.
	bad, _ := FromFuncs(2, func(x uint64) uint64 { return 0 }, func(x uint64) uint64 { return 0 })
	if _, err := BuildGraph([]Connection{bad, bad}); err == nil {
		t.Error("invalid connection accepted")
	}
}

func TestFromAffineErrors(t *testing.T) {
	if _, err := FromAffine(gf2.NewMatrix(2, 3), 0, 0); err == nil {
		t.Error("non-square matrix accepted")
	}
	if _, err := FromAffine(gf2.Identity(3), 0b11111, 0); err == nil {
		t.Error("oversized constant accepted")
	}
}

func TestRandomIndependentStructure(t *testing.T) {
	rng := rand.New(rand.NewPCG(12, 0))
	for m := 2; m <= 8; m++ {
		cb := RandomIndependent(rng, m, true)
		if !cb.IsValid() || !cb.IsIndependent() {
			t.Fatalf("m=%d bijective sample bad", m)
		}
		cs := RandomIndependent(rng, m, false)
		if !cs.IsValid() || !cs.IsIndependent() {
			t.Fatalf("m=%d singular sample bad", m)
		}
		ar, _ := cs.AffineForm()
		if ar.Mat.Rank() != m-1 {
			t.Fatalf("m=%d singular sample rank %d, want %d", m, ar.Mat.Rank(), m-1)
		}
	}
}

func BenchmarkIsIndependentDef(b *testing.B) {
	c := RandomIndependent(rand.New(rand.NewPCG(13, 0)), 8, true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !c.IsIndependentDef() {
			b.Fatal("not independent")
		}
	}
}

func BenchmarkIsIndependentFast(b *testing.B) {
	c := RandomIndependent(rand.New(rand.NewPCG(13, 0)), 8, true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !c.IsIndependent() {
			b.Fatal("not independent")
		}
	}
}

func BenchmarkReverse(b *testing.B) {
	c := RandomIndependent(rand.New(rand.NewPCG(14, 0)), 10, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Reverse(); err != nil {
			b.Fatal(err)
		}
	}
}
