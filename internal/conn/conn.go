// Package conn implements the paper's §3: connections between adjacent
// stages of an MI-digraph and the key notion of INDEPENDENT connections.
//
// A connection is a pair of functions (f,g) on cell labels Z_2^m (m = n-1
// bits) giving each cell x its two children f(x) and g(x). It is
// independent iff
//
//	for all alpha != 0 there is beta such that for all x:
//	    f(x^alpha) = beta ^ f(x)  and  g(x^alpha) = beta ^ g(x).
//
// The package provides both the literal definition check and the fast
// algebraic one, which rests on a normal form this library proves and
// tests (IndependentIffAffine): a connection is independent exactly when
// f(x) = Mx^cf and g(x) = Mx^cg for one shared GF(2)-linear M, and then
// beta(alpha) = M alpha.
package conn

import (
	"fmt"
	"math/rand/v2"

	"minequiv/internal/bitops"
	"minequiv/internal/gf2"
	"minequiv/internal/midigraph"
)

// Connection is a stage-to-stage connection on m-bit cell labels: F[x]
// and G[x] are the two children of cell x. Len(F) == len(G) == 2^m.
type Connection struct {
	M    int // label bits
	F, G []uint32
}

// New validates table lengths and ranges and wraps them.
func New(m int, f, g []uint32) (Connection, error) {
	h := 1 << uint(m)
	if len(f) != h || len(g) != h {
		return Connection{}, fmt.Errorf("conn: tables of length %d/%d, want %d", len(f), len(g), h)
	}
	for x := 0; x < h; x++ {
		if f[x] >= uint32(h) || g[x] >= uint32(h) {
			return Connection{}, fmt.Errorf("conn: child of %d out of range (%d,%d)", x, f[x], g[x])
		}
	}
	return Connection{M: m, F: f, G: g}, nil
}

// FromFuncs tabulates a pair of label functions.
func FromFuncs(m int, f, g func(uint64) uint64) (Connection, error) {
	h := 1 << uint(m)
	ft := make([]uint32, h)
	gt := make([]uint32, h)
	for x := 0; x < h; x++ {
		ft[x] = uint32(f(uint64(x)))
		gt[x] = uint32(g(uint64(x)))
	}
	return New(m, ft, gt)
}

// H returns the number of cells per stage, 2^m.
func (c Connection) H() int { return 1 << uint(c.M) }

// IsValid reports whether (f,g) is a legal MI-digraph connection: every
// next-stage cell must have total indegree exactly 2 across both
// functions. (Parallel arcs — f(x) == g(x) — are legal; they produce the
// Fig 5 degenerate stage.)
func (c Connection) IsValid() bool {
	indeg := make([]int, c.H())
	for x := 0; x < c.H(); x++ {
		indeg[c.F[x]]++
		indeg[c.G[x]]++
	}
	for _, d := range indeg {
		if d != 2 {
			return false
		}
	}
	return true
}

// HasParallelArcs reports whether f(x) == g(x) for some x.
func (c Connection) HasParallelArcs() bool {
	for x := 0; x < c.H(); x++ {
		if c.F[x] == c.G[x] {
			return true
		}
	}
	return false
}

// IsIndependentDef is the literal quantifier form of the definition:
// O(4^m). Kept as the semantic reference; IsIndependent is the fast path
// and the test suite proves they agree.
func (c Connection) IsIndependentDef() bool {
	h := c.H()
	for alpha := 1; alpha < h; alpha++ {
		// beta is forced by x = 0.
		beta := c.F[alpha] ^ c.F[0]
		if c.G[alpha]^c.G[0] != beta {
			return false
		}
		for x := 0; x < h; x++ {
			xa := x ^ alpha
			if c.F[xa]^c.F[x] != beta || c.G[xa]^c.G[x] != beta {
				return false
			}
		}
	}
	return true
}

// IsIndependent decides independence in O(2^m * m) via the affine normal
// form.
func (c Connection) IsIndependent() bool {
	_, ok := c.AffineForm()
	return ok
}

// AffineRepr is the normal form of an independent connection:
// f(x) = Mat x ^ Cf, g(x) = Mat x ^ Cg.
type AffineRepr struct {
	Mat    gf2.Matrix
	Cf, Cg uint64
}

// AffineForm extracts the normal form; ok is false exactly when the
// connection is not independent (not affine, or affine with different
// linear parts).
func (c Connection) AffineForm() (AffineRepr, bool) {
	h := c.H()
	ft := make([]uint64, h)
	gt := make([]uint64, h)
	for x := 0; x < h; x++ {
		ft[x] = uint64(c.F[x])
		gt[x] = uint64(c.G[x])
	}
	af, ok := gf2.InferAffine(ft, c.M)
	if !ok {
		return AffineRepr{}, false
	}
	ag, ok := gf2.InferAffine(gt, c.M)
	if !ok {
		return AffineRepr{}, false
	}
	if !af.M.Equal(ag.M) {
		return AffineRepr{}, false
	}
	return AffineRepr{Mat: af.M, Cf: af.C, Cg: ag.C}, true
}

// FromAffine builds the connection with tables f(x) = m x ^ cf and
// g(x) = m x ^ cg. Such a connection is independent by construction.
func FromAffine(m gf2.Matrix, cf, cg uint64) (Connection, error) {
	dim := m.Cols
	if len(m.Rows) != dim {
		return Connection{}, fmt.Errorf("conn: matrix must be square, got %dx%d", len(m.Rows), dim)
	}
	if cf&^bitops.Mask(dim) != 0 || cg&^bitops.Mask(dim) != 0 {
		return Connection{}, fmt.Errorf("conn: constants exceed %d bits", dim)
	}
	af := gf2.Affine{M: m, C: cf, Dim: dim}
	ag := gf2.Affine{M: m, C: cg, Dim: dim}
	ftab := af.Table()
	gtab := ag.Table()
	f := make([]uint32, len(ftab))
	g := make([]uint32, len(gtab))
	for i := range ftab {
		f[i] = uint32(ftab[i])
		g[i] = uint32(gtab[i])
	}
	return New(dim, f, g)
}

// Beta returns the translation beta(alpha) of an independent connection
// and whether the connection really is independent with that beta for
// this alpha (single-alpha verification, O(2^m)).
func (c Connection) Beta(alpha uint64) (uint64, bool) {
	h := c.H()
	if alpha == 0 || alpha >= uint64(h) {
		return 0, false
	}
	beta := uint64(c.F[alpha] ^ c.F[0])
	for x := 0; x < h; x++ {
		xa := uint64(x) ^ alpha
		if uint64(c.F[xa]^c.F[x]) != beta || uint64(c.G[xa]^c.G[x]) != beta {
			return 0, false
		}
	}
	return beta, true
}

// VertexType classifies a next-stage vertex by the slots of its two
// incoming arcs, following the proof of Proposition 1.
type VertexType uint8

const (
	TypeFG  VertexType = iota // one f-arc and one g-arc
	TypeFF                    // two f-arcs
	TypeGG                    // two g-arcs
	TypeBad                   // indegree != 2 (invalid connection)
)

// TypeAnalysis is the vertex typing of a connection's codomain.
type TypeAnalysis struct {
	Types               []VertexType
	NumFG, NumFF, NumGG int
	Valid               bool // every vertex has indegree exactly 2
}

// AnalyzeTypes computes the vertex typing. For an independent connection
// Proposition 1's proof shows the outcome is all-TypeFG (f,g bijective)
// or an even split of TypeFF and TypeGG; the test suite checks this
// dichotomy exhaustively on random independent connections.
func (c Connection) AnalyzeTypes() TypeAnalysis {
	h := c.H()
	fIn := make([]int, h)
	gIn := make([]int, h)
	for x := 0; x < h; x++ {
		fIn[c.F[x]]++
		gIn[c.G[x]]++
	}
	ta := TypeAnalysis{Types: make([]VertexType, h), Valid: true}
	for y := 0; y < h; y++ {
		switch {
		case fIn[y] == 1 && gIn[y] == 1:
			ta.Types[y] = TypeFG
			ta.NumFG++
		case fIn[y] == 2 && gIn[y] == 0:
			ta.Types[y] = TypeFF
			ta.NumFF++
		case fIn[y] == 0 && gIn[y] == 2:
			ta.Types[y] = TypeGG
			ta.NumGG++
		default:
			ta.Types[y] = TypeBad
			ta.Valid = false
		}
	}
	return ta
}

// RandomIndependent samples a random independent connection that is a
// valid MI-digraph connection. With bijective true it uses an invertible
// linear part (every vertex of type (f,g)); otherwise a rank m-1 linear
// part with complementary image cosets (the (f,f)/(g,g) case of
// Proposition 1).
func RandomIndependent(rng *rand.Rand, m int, bijective bool) Connection {
	if bijective {
		mat := gf2.RandomInvertible(rng, m)
		cf := rng.Uint64() & bitops.Mask(m)
		// cg != cf avoids parallel arcs; any distinct value is fine.
		cg := cf
		for cg == cf && m > 0 {
			cg = rng.Uint64() & bitops.Mask(m)
		}
		c, err := FromAffine(mat, cf, cg)
		if err != nil {
			panic(err)
		}
		return c
	}
	// Rank m-1 linear part: M = C * D * A with C, A invertible and D the
	// projection killing e_0.
	for {
		cm := gf2.RandomInvertible(rng, m)
		am := gf2.RandomInvertible(rng, m)
		d := gf2.Identity(m)
		d.Rows[0] = 0
		mat := cm.Mul(d).Mul(am)
		if mat.Rank() != m-1 {
			continue
		}
		cf := rng.Uint64() & bitops.Mask(m)
		// Valid connection needs cf^cg outside Im(M) so the two image
		// cosets partition the space.
		var image []uint64
		for i := 0; i < m; i++ {
			image = append(image, mat.Apply(1<<uint(i)))
		}
		v := uint64(0)
		for tries := 0; ; tries++ {
			v = rng.Uint64() & bitops.Mask(m)
			if !gf2.SpanContains(image, v) {
				break
			}
		}
		c, err := FromAffine(mat, cf, cf^v)
		if err != nil {
			panic(err)
		}
		return c
	}
}

// BuildGraph assembles an n-stage MI-digraph from n-1 connections.
func BuildGraph(conns []Connection) (*midigraph.Graph, error) {
	n := len(conns) + 1
	if n < 2 {
		return nil, fmt.Errorf("conn: need at least one connection")
	}
	g := midigraph.New(n)
	h := g.CellsPerStage()
	for s, c := range conns {
		if c.H() != h {
			return nil, fmt.Errorf("conn: stage %d connection on %d cells, want %d", s, c.H(), h)
		}
		if !c.IsValid() {
			return nil, fmt.Errorf("conn: stage %d connection has a vertex with indegree != 2", s)
		}
		for x := 0; x < h; x++ {
			g.SetChildren(s, uint32(x), c.F[x], c.G[x])
		}
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// FromGraphStage extracts the connection between stages s and s+1
// (0-based) of an MI-digraph.
func FromGraphStage(g *midigraph.Graph, s int) Connection {
	h := g.CellsPerStage()
	f := make([]uint32, h)
	gg := make([]uint32, h)
	for x := 0; x < h; x++ {
		f[x], gg[x] = g.Children(s, uint32(x))
	}
	return Connection{M: g.LabelBits(), F: f, G: gg}
}

func (c Connection) String() string {
	return fmt.Sprintf("connection on %d cells (m=%d)", c.H(), c.M)
}
