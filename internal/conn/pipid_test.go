package conn

import (
	"math/rand/v2"
	"testing"

	"minequiv/internal/bitops"
	"minequiv/internal/pipid"
)

// TestPIPIDConnectionsIndependentExhaustive is the §4 theorem in full for
// small widths: EVERY index permutation theta induces an independent
// connection.
func TestPIPIDConnectionsIndependentExhaustive(t *testing.T) {
	for n := 2; n <= 5; n++ {
		for _, theta := range pipid.All(n) {
			c := FromIndexPerm(theta)
			if !c.IsIndependentDef() {
				t.Fatalf("n=%d theta=%v: connection not independent", n, theta)
			}
			if !c.IsValid() {
				t.Fatalf("n=%d theta=%v: connection invalid", n, theta)
			}
		}
	}
}

func TestPIPIDConnectionsIndependentSampled(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 0))
	for trial := 0; trial < 100; trial++ {
		n := rng.IntN(9) + 2
		theta := pipid.Random(rng, n)
		c := FromIndexPerm(theta)
		if !c.IsIndependent() {
			t.Fatalf("n=%d theta=%v: connection not independent", n, theta)
		}
	}
}

// TestPaperChildFormula checks the §4 bit-level formula for the children
// against the link-relabeling implementation, for every theta and cell.
func TestPaperChildFormula(t *testing.T) {
	for n := 2; n <= 5; n++ {
		h := 1 << uint(n-1)
		for _, theta := range pipid.All(n) {
			c := FromIndexPerm(theta)
			for x := 0; x < h; x++ {
				wantF := paperChildFormula(theta, uint64(x), 0)
				wantG := paperChildFormula(theta, uint64(x), 1)
				if uint64(c.F[x]) != wantF || uint64(c.G[x]) != wantG {
					t.Fatalf("n=%d theta=%v x=%d: children (%d,%d), paper formula (%d,%d)",
						n, theta, x, c.F[x], c.G[x], wantF, wantG)
				}
			}
		}
	}
}

// TestPaperBetaFormula checks that the beta of the induced connection is
// exactly the theta-image of the translated cell label.
func TestPaperBetaFormula(t *testing.T) {
	for n := 2; n <= 5; n++ {
		h := 1 << uint(n-1)
		for _, theta := range pipid.All(n) {
			c := FromIndexPerm(theta)
			for alpha := uint64(1); alpha < uint64(h); alpha++ {
				beta, ok := c.Beta(alpha)
				if !ok {
					t.Fatalf("n=%d theta=%v: Beta(%d) rejected", n, theta, alpha)
				}
				if want := PaperBeta(theta, alpha); beta != want {
					t.Fatalf("n=%d theta=%v alpha=%d: beta=%d, paper says %d",
						n, theta, alpha, beta, want)
				}
			}
		}
	}
}

// TestDoubleLinksIffPortFixed: the Fig 5 criterion. theta^{-1}(0) = 0
// if and only if the induced stage has parallel arcs, in which case f==g.
func TestDoubleLinksIffPortFixed(t *testing.T) {
	for n := 2; n <= 5; n++ {
		for _, theta := range pipid.All(n) {
			c := FromIndexPerm(theta)
			degenerate := IndexPermDoubleLinks(theta)
			if degenerate != c.HasParallelArcs() {
				t.Fatalf("n=%d theta=%v: degenerate=%v parallel=%v",
					n, theta, degenerate, c.HasParallelArcs())
			}
			if degenerate {
				for x := 0; x < c.H(); x++ {
					if c.F[x] != c.G[x] {
						t.Fatalf("n=%d theta=%v: degenerate stage with f != g", n, theta)
					}
				}
				if _, ok := PortDestination(theta); ok {
					t.Fatalf("PortDestination accepted degenerate theta")
				}
			} else {
				// f and g differ exactly in bit k-1.
				k, ok := PortDestination(theta)
				if !ok {
					t.Fatalf("PortDestination rejected non-degenerate theta")
				}
				for x := 0; x < c.H(); x++ {
					if uint64(c.F[x]^c.G[x]) != uint64(1)<<uint(k) {
						t.Fatalf("n=%d theta=%v x=%d: f^g = %b, want bit %d",
							n, theta, x, c.F[x]^c.G[x], k)
					}
					if bitops.Bit(uint64(c.F[x]), k) != 0 || bitops.Bit(uint64(c.G[x]), k) != 1 {
						t.Fatalf("n=%d theta=%v: f must set port bit 0, g 1", n, theta)
					}
				}
			}
		}
	}
}

// TestBPCConnectionsIndependent extends §4 to bit-permute-complement
// permutations.
func TestBPCConnectionsIndependent(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 0))
	for trial := 0; trial < 150; trial++ {
		n := rng.IntN(6) + 2
		theta := pipid.Random(rng, n)
		mask := rng.Uint64() & bitops.Mask(n)
		b, err := pipid.NewBPC(theta, mask)
		if err != nil {
			t.Fatal(err)
		}
		c := FromBPC(b)
		if !c.IsIndependentDef() {
			t.Fatalf("BPC connection not independent: theta=%v mask=%b", theta, mask)
		}
		// The linear part is unchanged by the mask: beta values agree
		// with the plain PIPID connection.
		plain := FromIndexPerm(theta)
		for alpha := uint64(1); alpha < uint64(c.H()); alpha++ {
			b1, ok1 := c.Beta(alpha)
			b2, ok2 := plain.Beta(alpha)
			if !ok1 || !ok2 || b1 != b2 {
				t.Fatalf("BPC changed beta: alpha=%d %d vs %d", alpha, b1, b2)
			}
		}
		// The mask shifts both children's cell labels by mask>>1 (the
		// mask's port bit is dropped with the port position).
		wantShift := CellMaskOfLinkMask(mask)
		for x := 0; x < c.H(); x++ {
			if uint64(c.F[x]) != uint64(plain.F[x])^wantShift ||
				uint64(c.G[x]) != uint64(plain.G[x])^wantShift {
				t.Fatalf("BPC cell shift wrong: theta=%v mask=%b", theta, mask)
			}
		}
	}
}

// TestPIPIDGraphBanyan: composing non-degenerate PIPID stages whose port
// destinations cover all m cell bits yields a Banyan graph; if any stage
// is degenerate the graph cannot be Banyan (Fig 5).
func TestPIPIDGraphBanyan(t *testing.T) {
	n := 4
	// Butterfly stages beta_1..beta_3 cover port destinations 0,1,2.
	conns := []Connection{
		FromIndexPerm(pipid.Butterfly(n, 1)),
		FromIndexPerm(pipid.Butterfly(n, 2)),
		FromIndexPerm(pipid.Butterfly(n, 3)),
	}
	g, err := BuildGraph(conns)
	if err != nil {
		t.Fatal(err)
	}
	if ok, v := g.IsBanyan(); !ok {
		t.Fatalf("butterfly cascade not Banyan: %v", v)
	}
	// Replace the middle stage by the degenerate identity theta.
	conns[1] = FromIndexPerm(pipid.Identity(n))
	g2, err := BuildGraph(conns)
	if err != nil {
		t.Fatal(err)
	}
	if ok, _ := g2.IsBanyan(); ok {
		t.Fatal("cascade with degenerate stage reported Banyan")
	}
}

func BenchmarkFromIndexPerm(b *testing.B) {
	theta := pipid.BitReversal(14)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FromIndexPerm(theta)
	}
}
