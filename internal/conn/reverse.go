package conn

import (
	"fmt"

	"minequiv/internal/gf2"
)

// Reverse implements Proposition 1 constructively: given an independent
// connection (f,g) between stages V_i and V_{i+1}, it produces an
// independent connection (phi,psi) describing the same arcs in the
// reverse digraph (from V_{i+1} back to V_i).
//
// Case 1 (all vertices of type (f,g)): f and g are bijections and
// (phi,psi) = (f^-1, g^-1).
//
// Case 2 (half (f,f), half (g,g)): the linear part M has a 1-dimensional
// kernel spanned by alpha_1 with f(x^alpha_1) = f(x). Following the
// proposition, split the domain into the index-subgroup A (a hyperplane
// complementary to alpha_1) and its coset B = alpha_1 ^ A, and define
// phi(y) as the unique parent of y in A and psi(y) as the one in B.
//
// Reverse returns an error when the connection is not independent or not
// a valid MI-digraph connection (the proposition's hypotheses).
func (c Connection) Reverse() (Connection, error) {
	ar, ok := c.AffineForm()
	if !ok {
		return Connection{}, fmt.Errorf("conn: Reverse requires an independent connection")
	}
	if !c.IsValid() {
		return Connection{}, fmt.Errorf("conn: Reverse requires a valid connection (all indegrees 2)")
	}
	h := c.H()
	inv, invertible := ar.Mat.Inverse()
	if invertible {
		// Case 1: phi = f^{-1}: y -> M^{-1}(y ^ cf); psi likewise with cg.
		phi := make([]uint32, h)
		psi := make([]uint32, h)
		for y := 0; y < h; y++ {
			phi[y] = uint32(inv.Apply(uint64(y) ^ ar.Cf))
			psi[y] = uint32(inv.Apply(uint64(y) ^ ar.Cg))
		}
		return New(c.M, phi, psi)
	}
	// Case 2. The kernel must be exactly one-dimensional: a valid
	// independent connection with singular M has rank m-1 (otherwise the
	// image cosets cannot cover every vertex twice).
	kernel := ar.Mat.KernelBasis()
	if len(kernel) != 1 {
		return Connection{}, fmt.Errorf("conn: singular linear part with kernel dimension %d (invalid connection)", len(kernel))
	}
	alpha1 := kernel[0]
	// lambda: a linear functional with <lambda, alpha1> = 1; membership
	// in the hyperplane A is <lambda, x> == 0. Any single set bit of
	// alpha1 works as lambda.
	lambda := alpha1 & (^alpha1 + 1) // lowest set bit
	phi := make([]uint32, h)
	psi := make([]uint32, h)
	// Each vertex y has exactly two parents {x, x^alpha1}; find them by
	// inverting through either f or g depending on y's type.
	parent := make([][2]uint32, h)
	fill := make([]int, h)
	for x := 0; x < h; x++ {
		for _, y := range []uint32{c.F[x], c.G[x]} {
			if fill[y] < 2 {
				parent[y][fill[y]] = uint32(x)
			}
			fill[y]++
		}
	}
	for y := 0; y < h; y++ {
		a, b := parent[y][0], parent[y][1]
		if gf2.Dot(lambda, uint64(a)) != 0 {
			a, b = b, a
		}
		// Now a in A, b in B.
		if gf2.Dot(lambda, uint64(a)) != 0 || gf2.Dot(lambda, uint64(b)) != 1 {
			return Connection{}, fmt.Errorf("conn: parents of %d not split by the hyperplane (connection not independent?)", y)
		}
		phi[y] = a
		psi[y] = b
	}
	return New(c.M, phi, psi)
}

// ReverseArcsMatch verifies that rev describes exactly the reversed arc
// multiset of c: for every x, arcs x->f(x), x->g(x) of c appear as
// arcs y->x of rev, with the same multiplicities. Used by tests and the
// Proposition 1 experiment.
func ReverseArcsMatch(c, rev Connection) bool {
	if c.M != rev.M {
		return false
	}
	h := c.H()
	type arc struct{ from, to uint32 }
	fwd := map[arc]int{}
	for x := 0; x < h; x++ {
		fwd[arc{uint32(x), c.F[x]}]++
		fwd[arc{uint32(x), c.G[x]}]++
	}
	bwd := map[arc]int{}
	for y := 0; y < h; y++ {
		bwd[arc{rev.F[y], uint32(y)}]++
		bwd[arc{rev.G[y], uint32(y)}]++
	}
	if len(fwd) != len(bwd) {
		return false
	}
	for a, n := range fwd {
		if bwd[a] != n {
			return false
		}
	}
	return true
}
