package conn

import (
	"minequiv/internal/bitops"
	"minequiv/internal/pipid"
)

// FromIndexPerm derives the cell-level connection induced by using the
// PIPID permutation of theta (on n = m+1 link-label bits) as the
// interconnection between two stages — the §4 construction. Cell x emits
// outlinks (x,0) and (x,1); applying the link permutation and dropping
// the port bit of the image yields the two children:
//
//	f(x) = A_theta(x<<1)   >> 1
//	g(x) = A_theta(x<<1|1) >> 1
//
// When k = theta^{-1}(0) is nonzero, the port bit lands at position k of
// the next link label, i.e. position k-1 of the child cell label, and
// (f,g) differ exactly in that bit — the paper's explicit formula, with
// beta(alpha) the theta-permutation of alpha's bits. When k = 0 the port
// bit returns to the port position: f = g and the stage has double links
// (Fig 5); the connection is still independent, but the graph it builds
// can never be Banyan.
func FromIndexPerm(theta pipid.IndexPerm) Connection {
	n := theta.W()
	m := n - 1
	h := 1 << uint(m)
	f := make([]uint32, h)
	g := make([]uint32, h)
	for x := 0; x < h; x++ {
		f[x] = uint32(theta.Apply(uint64(x)<<1) >> 1)
		g[x] = uint32(theta.Apply(uint64(x)<<1|1) >> 1)
	}
	return Connection{M: m, F: f, G: g}
}

// FromBPC derives the connection induced by a bit-permute-complement
// link permutation. The complement mask only XORs constants into the
// affine normal form, so independence is preserved — the natural
// extension of the paper's §4 result, verified in tests.
func FromBPC(b pipid.BPC) Connection {
	n := b.Theta.W()
	m := n - 1
	h := 1 << uint(m)
	f := make([]uint32, h)
	g := make([]uint32, h)
	for x := 0; x < h; x++ {
		f[x] = uint32(b.Apply(uint64(x)<<1) >> 1)
		g[x] = uint32(b.Apply(uint64(x)<<1|1) >> 1)
	}
	return Connection{M: m, F: f, G: g}
}

// PaperBeta computes the beta the paper's §4 derivation predicts for the
// connection FromIndexPerm(theta) and translation alpha: writing the
// n-bit link difference (alpha,0) = alpha<<1, beta is the cell part of
// its theta-image:
//
//	beta = A_theta(alpha << 1) >> 1
//
// (the port-position bit of the image is zero because the inserted path
// bit is unaffected by translations of x). Tests check Beta == PaperBeta
// for every theta and alpha.
func PaperBeta(theta pipid.IndexPerm, alpha uint64) uint64 {
	return theta.Apply(alpha<<1) >> 1
}

// IndexPermDoubleLinks reports whether theta produces the degenerate
// double-link stage, i.e. theta^{-1}(0) = 0.
func IndexPermDoubleLinks(theta pipid.IndexPerm) bool {
	return theta.PortSource() == 0
}

// PortDestination returns, for a non-degenerate theta, the cell-label
// bit position k-1 where the switch's port choice lands in the child
// label — the bit a destination-tag router controls at this stage.
// The boolean is false in the degenerate k = 0 case.
func PortDestination(theta pipid.IndexPerm) (int, bool) {
	k := theta.PortSource()
	if k == 0 {
		return 0, false
	}
	return k - 1, true
}

// CellMaskOfLinkMask converts a BPC link-complement mask into its effect
// on the child cell label (dropping the port bit).
func CellMaskOfLinkMask(mask uint64) uint64 { return mask >> 1 }

// Sanity helper used in tests: the paper's explicit child formula,
// computed bit by bit rather than via link relabeling. For j != k-1 the
// child's bit j is x_{theta(j+1)-1}; bit k-1 is the port choice.
func paperChildFormula(theta pipid.IndexPerm, x uint64, port uint64) uint64 {
	n := theta.W()
	m := n - 1
	var child uint64
	for j := 0; j < m; j++ {
		src := theta.Theta[j+1]
		var bit uint64
		if src == 0 {
			bit = port
		} else {
			bit = bitops.Bit(x, src-1)
		}
		child |= bit << uint(j)
	}
	return child
}
