// Nondeterministic by design: wall-clock timings decorate the report
// text only; every experimental result (tables, verdicts, counts) is a
// pure function of (inputs, seed) and is what the golden tests pin.
//
//minlint:allow detrand -- elapsed-time reporting; results stay seed-deterministic
package experiments

import (
	"fmt"
	"io"
	"time"

	"minequiv/internal/conn"
	"minequiv/internal/engine"
	"minequiv/internal/equiv"
	"minequiv/internal/midigraph"
	"minequiv/internal/pipid"
	"minequiv/internal/randnet"
	"minequiv/internal/topology"
)

// RunT1 reproduces the main corollary: the six classical networks are
// pairwise baseline-equivalent, for a sweep of sizes, with explicit
// verified isomorphisms. The per-pair isomorphism constructions are
// sharded across Workers goroutines (marks land in per-pair storage, so
// the printed matrix is identical for any worker count).
func RunT1(w io.Writer) error {
	for n := 2; n <= 8; n++ {
		nets, err := topology.BuildAll(n)
		if err != nil {
			return err
		}
		marks := make([][]string, len(nets))
		for i := range marks {
			marks[i] = make([]string, len(nets))
		}
		err = equiv.ForEachPair(len(nets), Workers, func(i, j int) error {
			iso, err := equiv.IsoBetween(nets[i].Graph, nets[j].Graph)
			mark := "1"
			if err != nil || iso.Verify(nets[i].Graph, nets[j].Graph) != nil {
				mark = "0"
			}
			marks[i][j], marks[j][i] = mark, mark
			return nil
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "n=%d (N=%d): pairwise equivalence matrix (1 = verified isomorphism)\n", n, 1<<uint(n))
		fmt.Fprintf(w, "%-28s", "")
		for _, b := range nets {
			fmt.Fprintf(w, " %-4.4s", b.Name)
		}
		fmt.Fprintln(w)
		for i, a := range nets {
			fmt.Fprintf(w, "%-28s", a.Name)
			for j := range nets {
				fmt.Fprintf(w, " %-4s", marks[i][j])
			}
			fmt.Fprintln(w)
		}
	}
	return nil
}

// RunT2 reproduces Proposition 1: the reverse of a random independent
// connection is again independent, in both structural cases.
func RunT2(w io.Writer) error {
	rng := engine.NewRand(21, 0)
	const trials = 50
	fmt.Fprintf(w, "%-6s %-10s %-10s %-12s %-12s %-10s\n",
		"m", "case", "trials", "rev valid", "rev indep", "arcs match")
	for m := 2; m <= 10; m++ {
		for _, bijective := range []bool{true, false} {
			valid, indep, match := 0, 0, 0
			for trial := 0; trial < trials; trial++ {
				c := conn.RandomIndependent(rng, m, bijective)
				rev, err := c.Reverse()
				if err != nil {
					continue
				}
				if rev.IsValid() {
					valid++
				}
				if rev.IsIndependent() {
					indep++
				}
				if conn.ReverseArcsMatch(c, rev) {
					match++
				}
			}
			kind := "(f,g)"
			if !bijective {
				kind = "(f,f)/(g,g)"
			}
			fmt.Fprintf(w, "%-6d %-10s %-10d %-12d %-12d %-10d\n",
				m, kind, trials, valid, indep, match)
		}
	}
	fmt.Fprintf(w, "Proposition 1 predicts all three counts equal the trial count.\n")
	return nil
}

// RunT3 reproduces Lemma 2: random Banyans built from independent
// connections satisfy every suffix (and prefix) window property.
func RunT3(w io.Writer) error {
	rng := engine.NewRand(22, 0)
	fmt.Fprintf(w, "%-6s %-8s %-14s %-14s\n", "n", "samples", "P(*,n) holds", "P(1,*) holds")
	for n := 2; n <= 9; n++ {
		const samples = 10
		sufOK, preOK := 0, 0
		for i := 0; i < samples; i++ {
			g, _, err := randnet.IndependentBanyan(rng, n, 5000)
			if err != nil {
				return err
			}
			if midigraph.AllOK(g.CheckSuffix()) {
				sufOK++
			}
			if midigraph.AllOK(g.CheckPrefix()) {
				preOK++
			}
		}
		fmt.Fprintf(w, "%-6d %-8d %-14d %-14d\n", n, samples, sufOK, preOK)
	}
	fmt.Fprintf(w, "Lemma 2 (and its reverse via Proposition 1) predicts full columns.\n")
	return nil
}

// RunT4 reproduces Theorem 3: every Banyan graph built from independent
// connections admits an explicit verified isomorphism onto Baseline.
func RunT4(w io.Writer) error {
	rng := engine.NewRand(23, 0)
	fmt.Fprintf(w, "%-6s %-8s %-10s %-14s\n", "n", "samples", "verified", "mean time")
	for n := 2; n <= 10; n++ {
		const samples = 5
		verified := 0
		var total time.Duration
		for i := 0; i < samples; i++ {
			g, _, err := randnet.IndependentBanyan(rng, n, 5000)
			if err != nil {
				return err
			}
			start := time.Now()
			iso, err := equiv.IsoToBaseline(g)
			total += time.Since(start)
			if err != nil {
				continue
			}
			if iso.Verify(g, topology.Baseline(n)) == nil {
				verified++
			}
		}
		fmt.Fprintf(w, "%-6d %-8d %-10d %-14v\n", n, samples, verified, total/time.Duration(samples))
	}
	fmt.Fprintf(w, "Theorem 3 predicts the verified column equals the sample count.\n")
	return nil
}

// RunT5 reproduces §4: every PIPID permutation induces an independent
// connection; theta fixing the port digit induces double links.
func RunT5(w io.Writer) error {
	fmt.Fprintf(w, "exhaustive over all theta in S_n:\n")
	fmt.Fprintf(w, "%-6s %-10s %-14s %-14s %-16s\n", "n", "thetas", "independent", "double-link", "beta formula ok")
	for n := 2; n <= 5; n++ {
		all := pipid.All(n)
		indep, dbl, betaOK := 0, 0, 0
		for _, theta := range all {
			c := conn.FromIndexPerm(theta)
			if c.IsIndependentDef() {
				indep++
			}
			if c.HasParallelArcs() {
				dbl++
			}
			ok := true
			for alpha := uint64(1); alpha < uint64(c.H()); alpha++ {
				beta, good := c.Beta(alpha)
				if !good || beta != conn.PaperBeta(theta, alpha) {
					ok = false
					break
				}
			}
			if ok {
				betaOK++
			}
		}
		fmt.Fprintf(w, "%-6d %-10d %-14d %-14d %-16d\n", n, len(all), indep, dbl, betaOK)
	}
	fmt.Fprintf(w, "prediction: independent = thetas; double-link = (n-1)! (theta with theta^-1(0)=0)\n")
	rng := engine.NewRand(24, 0)
	fmt.Fprintf(w, "\nsampled larger widths:\n%-6s %-10s %-14s\n", "n", "samples", "independent")
	for n := 6; n <= 14; n += 2 {
		const samples = 50
		indep := 0
		for i := 0; i < samples; i++ {
			if conn.FromIndexPerm(pipid.Random(rng, n)).IsIndependent() {
				indep++
			}
		}
		fmt.Fprintf(w, "%-6d %-10d %-14d\n", n, samples, indep)
	}
	return nil
}

// RunT6 analyses the counterexample family: Banyan graphs that are NOT
// baseline-equivalent, with the exact windows they violate and (for
// small n) oracle confirmation of non-isomorphism.
func RunT6(w io.Writer) error {
	fmt.Fprintf(w, "%-6s %-12s %-8s %-24s %-18s\n", "n", "family", "banyan", "violated windows", "oracle non-iso")
	for n := 3; n <= 7; n++ {
		for _, fam := range []struct {
			name  string
			build func(int) (*midigraph.Graph, error)
		}{
			{"tail-cycle", randnet.TailCycleBanyan},
			{"head-cycle", randnet.HeadCycleBanyan},
		} {
			g, err := fam.build(n)
			if err != nil {
				return err
			}
			banyan, _ := g.IsBanyan()
			var violated []string
			for _, r := range g.CheckAllWindows() {
				if !r.OK() {
					violated = append(violated, fmt.Sprintf("P(%d,%d)", r.I, r.J))
				}
			}
			oracle := "n/a"
			if n <= 4 {
				if _, found := equiv.FindIsomorphism(g, topology.Baseline(n)); !found {
					oracle = "confirmed"
				} else {
					oracle = "ISO FOUND (bug)"
				}
			}
			vs := fmt.Sprintf("%v", violated)
			if len(vs) > 24 {
				vs = vs[:21] + "..."
			}
			fmt.Fprintf(w, "%-6d %-12s %-8v %-24s %-18s\n", n, fam.name, banyan, vs, oracle)
		}
	}
	fmt.Fprintf(w, "prediction: banyan true everywhere; tail-cycle violates suffix windows only,\n")
	fmt.Fprintf(w, "head-cycle prefix windows only; oracle confirms non-isomorphism where run.\n")
	return nil
}
