package experiments

import (
	"context"
	"fmt"
	"io"

	"minequiv/internal/engine"
	"minequiv/internal/sim"
	"minequiv/internal/topology"
)

// RunT15 measures the buffered model's saturation behavior — the
// Omega-stability question of the MIN literature: offered load versus
// accepted throughput and tail latency, and how multi-lane storage
// moves the saturation point at fixed total buffering. All runs use
// the allocation-free BufferedRunner via the parallel engine, so the
// table is identical for any worker count.
func RunT15(w io.Writer) error {
	const (
		n      = 5
		cycles = 1200
		warmup = 150
		reps   = 3
	)
	cfg := engine.Config{Seed: 15}
	f, err := sim.NewFabric(topology.MustBuild(topology.NameOmega, n).LinkPerms)
	if err != nil {
		return err
	}

	loads := []float64{0.2, 0.4, 0.6, 0.8, 1.0}
	fmt.Fprintf(w, "saturation curve: omega n=%d (N=%d), queue 4, %d cycles, %d reps\n",
		n, 1<<uint(n), cycles, reps)
	fmt.Fprintf(w, "%-8s %-22s %-14s %-18s %-10s\n",
		"load", "throughput", "mean latency", "p50/p95/p99", "rejected")
	for _, load := range loads {
		st, err := engine.RunBuffered(context.Background(), f, sim.BufferedConfig{
			Load: load, Queue: 4, Cycles: cycles, Warmup: warmup,
		}, reps, cfg)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-8.2f %.4f ± %-12.4f %-14.2f %3.0f/%3.0f/%-10.0f %-10d\n",
			load, st.Throughput.Mean, st.Throughput.CI95(), st.Latency.Mean,
			st.LatencyP50.Mean, st.LatencyP95.Mean, st.LatencyP99.Mean, st.Rejected)
	}

	// Lanes ablation at saturation, total buffering fixed (lanes x queue
	// = 8): head-of-line bypass is the only variable.
	fmt.Fprintf(w, "\nmulti-lane storage at load 1.0, lanes x queue = 8 held fixed:\n")
	fmt.Fprintf(w, "%-8s %-8s %-22s %-14s %-12s\n",
		"lanes", "queue", "throughput", "mean latency", "p99")
	for _, v := range []struct{ lanes, queue int }{{1, 8}, {2, 4}, {4, 2}, {8, 1}} {
		st, err := engine.RunBuffered(context.Background(), f, sim.BufferedConfig{
			Load: 1.0, Queue: v.queue, Lanes: v.lanes, Cycles: cycles, Warmup: warmup,
		}, reps, cfg)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-8d %-8d %.4f ± %-12.4f %-14.2f %-12.0f\n",
			v.lanes, v.queue, st.Throughput.Mean, st.Throughput.CI95(),
			st.Latency.Mean, st.LatencyP99.Mean)
	}

	// Adversarial patterns at saturation: the stability ordering.
	fmt.Fprintf(w, "\nscenario stress at load 1.0 (queue 4, lanes 2):\n")
	fmt.Fprintf(w, "%-14s %-22s %-14s %-12s\n", "pattern", "throughput", "mean latency", "p99")
	for _, sc := range []struct {
		name string
		tr   sim.Traffic
	}{
		{"uniform", sim.Uniform()},
		{"transpose", sim.Transpose()},
		{"bitreversal", sim.BitReversal()},
		{"hotspot30%", sim.HotSpot(0, 0.3)},
	} {
		st, err := engine.RunBuffered(context.Background(), f, sim.BufferedConfig{
			Queue: 4, Lanes: 2, Cycles: cycles, Warmup: warmup, Pattern: sc.tr,
		}, reps, cfg)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-14s %.4f ± %-12.4f %-14.2f %-12.0f\n",
			sc.name, st.Throughput.Mean, st.Throughput.CI95(),
			st.Latency.Mean, st.LatencyP99.Mean)
	}
	fmt.Fprintf(w, "prediction: throughput tracks load until the banyan blocking limit,\n")
	fmt.Fprintf(w, "then flattens while tail latency and rejections climb; more lanes at\n")
	fmt.Fprintf(w, "fixed buffering raise the saturated throughput (head-of-line bypass).\n")
	return nil
}
