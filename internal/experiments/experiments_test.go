package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestRegistry(t *testing.T) {
	exps := All()
	if len(exps) != 21 {
		t.Fatalf("registry has %d experiments, want 21", len(exps))
	}
	seen := map[string]bool{}
	for _, e := range exps {
		if e.ID == "" || e.Title == "" || e.Run == nil {
			t.Fatalf("malformed experiment %+v", e)
		}
		if seen[e.ID] {
			t.Fatalf("duplicate id %s", e.ID)
		}
		seen[e.ID] = true
	}
	if _, ok := ByID("T1"); !ok {
		t.Error("ByID(T1) failed")
	}
	if _, ok := ByID("nope"); ok {
		t.Error("ByID(nope) succeeded")
	}
}

func runExp(t *testing.T, id string) string {
	t.Helper()
	e, ok := ByID(id)
	if !ok {
		t.Fatalf("experiment %s missing", id)
	}
	var buf bytes.Buffer
	if err := RunOne(&buf, e); err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	return buf.String()
}

func TestF1(t *testing.T) {
	out := runExp(t, "F1")
	for _, want := range []string{"Baseline network, n = 4", "banyan: true", "P(i,j)", "ok"} {
		if !strings.Contains(out, want) {
			t.Errorf("F1 missing %q", want)
		}
	}
	if strings.Contains(out, "VIOLATED") {
		t.Error("F1 reports violations for baseline")
	}
}

func TestF2(t *testing.T) {
	out := runExp(t, "F2")
	if !strings.Contains(out, "(0,0,0)") || !strings.Contains(out, "(1,1,1)") {
		t.Errorf("F2 missing tuple labels:\n%s", out)
	}
}

func TestF3(t *testing.T) {
	out := runExp(t, "F3")
	if !strings.Contains(out, "random independent Banyan") {
		t.Error("F3 missing random section")
	}
	if !strings.Contains(out, "window (2..5)") {
		t.Error("F3 missing window header")
	}
}

func TestF4(t *testing.T) {
	out := runExp(t, "F4")
	for _, want := range []string{"perfect shuffle", "independent: true", "theta^-1(0) = 1"} {
		if !strings.Contains(out, want) {
			t.Errorf("F4 missing %q:\n%s", want, out)
		}
	}
}

func TestF5(t *testing.T) {
	out := runExp(t, "F5")
	for _, want := range []string{"theta^-1(0) = 0", "parallel arcs: true", "banyan: false", "baseline-equivalent: false"} {
		if !strings.Contains(out, want) {
			t.Errorf("F5 missing %q:\n%s", want, out)
		}
	}
}

func TestT1(t *testing.T) {
	out := runExp(t, "T1")
	if strings.Contains(out, "0") && strings.Contains(out, " 0   ") {
		// A zero anywhere in the matrix body would mean a failed pair;
		// check more precisely: no line may contain " 0 " after the name
		// column... simplest: the string " 0   " must not appear.
		t.Errorf("T1 matrix contains a failure:\n%s", out)
	}
	if !strings.Contains(out, "n=8") {
		t.Error("T1 missing the n=8 sweep")
	}
}

func TestT2(t *testing.T) {
	out := runExp(t, "T2")
	if !strings.Contains(out, "(f,f)/(g,g)") {
		t.Error("T2 missing case-2 rows")
	}
	// All counts must equal the trial count 50.
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "(f,g)") || strings.Contains(line, "(f,f)/(g,g)") {
			if !strings.Contains(line, "50") {
				t.Errorf("T2 row with missing verification: %q", line)
			}
		}
	}
}

func TestT3(t *testing.T) {
	out := runExp(t, "T3")
	lines := strings.Split(out, "\n")
	dataLines := 0
	for _, l := range lines {
		f := strings.Fields(l)
		if len(f) == 4 && f[1] == "10" {
			dataLines++
			if f[2] != "10" || f[3] != "10" {
				t.Errorf("T3 violation row: %q", l)
			}
		}
	}
	if dataLines < 8 {
		t.Errorf("T3 produced %d data rows", dataLines)
	}
}

func TestT4(t *testing.T) {
	out := runExp(t, "T4")
	for _, l := range strings.Split(out, "\n") {
		f := strings.Fields(l)
		if len(f) == 4 && f[1] == "5" && f[2] != "5" {
			t.Errorf("T4 unverified isomorphism row: %q", l)
		}
	}
}

func TestT5(t *testing.T) {
	out := runExp(t, "T5")
	// n=4: 24 thetas, all independent, 6 double-link ((n-1)!).
	if !strings.Contains(out, "24") {
		t.Error("T5 missing n=4 row")
	}
	for _, l := range strings.Split(out, "\n") {
		f := strings.Fields(l)
		if len(f) == 5 && f[0] == "4" {
			if f[1] != "24" || f[2] != "24" || f[3] != "6" || f[4] != "24" {
				t.Errorf("T5 n=4 row wrong: %q", l)
			}
		}
	}
}

func TestT6(t *testing.T) {
	out := runExp(t, "T6")
	for _, want := range []string{"tail-cycle", "head-cycle", "confirmed"} {
		if !strings.Contains(out, want) {
			t.Errorf("T6 missing %q", want)
		}
	}
	if strings.Contains(out, "ISO FOUND") {
		t.Error("T6 oracle found an impossible isomorphism")
	}
}

func TestT7(t *testing.T) {
	out := runExp(t, "T7")
	for _, want := range []string{"unbuffered wave model", "buffered model", "tail-cycle (non-equiv)", "omega"} {
		if !strings.Contains(out, want) {
			t.Errorf("T7 missing %q", want)
		}
	}
}

func TestT8(t *testing.T) {
	out := runExp(t, "T8")
	for _, want := range []string{"destination-tag positions", "1024", "4096", "40320"} {
		if !strings.Contains(out, want) {
			t.Errorf("T8 missing %q:\n%s", want, out)
		}
	}
}

func TestT9(t *testing.T) {
	out := runExp(t, "T9")
	if !strings.Contains(out, "speedup") {
		t.Error("T9 missing speedup column")
	}
}

func TestT10(t *testing.T) {
	out := runExp(t, "T10")
	if !strings.Contains(out, "check time") {
		t.Error("T10 missing check column")
	}
}

func TestRunAll(t *testing.T) {
	if testing.Short() {
		t.Skip("full harness run")
	}
	var buf bytes.Buffer
	if err := RunAll(&buf); err != nil {
		t.Fatal(err)
	}
	for _, e := range All() {
		if !strings.Contains(buf.String(), e.Title) {
			t.Errorf("RunAll output missing %s", e.ID)
		}
	}
}

func TestT11(t *testing.T) {
	out := runExp(t, "T11")
	for _, want := range []string{"|Aut| counted", "16384", "true", "tail-cycle", " 0"} {
		if !strings.Contains(out, want) {
			t.Errorf("T11 missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "false") {
		t.Error("T11 has a formula mismatch")
	}
}

func TestT12(t *testing.T) {
	out := runExp(t, "T12")
	if !strings.Contains(out, "analytic") || !strings.Contains(out, "offered-load sweep") {
		t.Errorf("T12 malformed:\n%s", out)
	}
}

func TestT13(t *testing.T) {
	if testing.Short() {
		t.Skip("census is a few seconds")
	}
	out := runExp(t, "T13")
	for _, want := range []string{"n=2 exhaustive census", "banyan", "6350400", "signature classes"} {
		if !strings.Contains(out, want) {
			t.Errorf("T13 missing %q:\n%s", want, out)
		}
	}
}

func TestT14(t *testing.T) {
	out := runExp(t, "T14")
	for _, want := range []string{"buddy-twist", "P(2,4)", "refutation"} {
		if !strings.Contains(out, want) {
			t.Errorf("T14 missing %q:\n%s", want, out)
		}
	}
}

func TestT15(t *testing.T) {
	out := runExp(t, "T15")
	for _, want := range []string{"saturation curve", "multi-lane storage",
		"p50/p95/p99", "scenario stress", "hotspot30%"} {
		if !strings.Contains(out, want) {
			t.Errorf("T15 missing %q:\n%s", want, out)
		}
	}
}

func TestT16(t *testing.T) {
	out := runExp(t, "T16")
	for _, want := range []string{"degradation curves", "dead=0.10", "fault-kind ablation",
		"switch-stuck", "link-down", "buffered degradation", "fault kills"} {
		if !strings.Contains(out, want) {
			t.Errorf("T16 missing %q:\n%s", want, out)
		}
	}
	// Every catalog network appears on the shared curve.
	for _, name := range []string{"baseline", "omega", "flip", "indirect-binary-cube"} {
		if !strings.Contains(out, name) {
			t.Errorf("T16 missing network %s", name)
		}
	}
}
