// Package experiments regenerates every figure and every proved claim of
// the paper as a reproducible experiment with printed tables. The IDs
// match DESIGN.md §4 and EXPERIMENTS.md: F1-F5 are the paper's figures,
// T1-T10 the theorem reproductions and the substituted system-level
// evaluations.
package experiments

import (
	"fmt"
	"io"
	"sort"
)

// Workers is the goroutine budget the parallelized experiments (the T1
// catalog matrix today) hand to the equiv sharding helpers; <= 0 means
// GOMAXPROCS. Printed tables are identical for any value — parallel
// results land in per-pair storage and are reduced in order. cmd/minbench
// exposes it as -workers.
var Workers int

// Experiment couples an ID with its runner.
type Experiment struct {
	ID    string
	Title string
	Run   func(w io.Writer) error
}

// All returns the registry of experiments in ID order.
func All() []Experiment {
	exps := []Experiment{
		{"F1", "Fig 1: Baseline network and its MI-digraph (N=16)", RunF1},
		{"F2", "Fig 2: labeling of an MI-digraph", RunF2},
		{"F3", "Fig 3: Lemma 2 component construction", RunF3},
		{"F4", "Fig 4: link labels and a PIPID permutation stage", RunF4},
		{"F5", "Fig 5: degenerate stage with theta^-1(0) = 0", RunF5},
		{"T1", "Six classical networks are baseline-equivalent (Wu-Feng)", RunT1},
		{"T2", "Proposition 1: reverse of an independent connection", RunT2},
		{"T3", "Lemma 2: P(*,n) on random independent Banyans", RunT3},
		{"T4", "Theorem 3: explicit isomorphism to Baseline", RunT4},
		{"T5", "Section 4: PIPID implies independent connection", RunT5},
		{"T6", "Counterexamples: Banyan but not baseline-equivalent", RunT6},
		{"T7", "System substrate: packet simulation of equivalent networks", RunT7},
		{"T8", "Section 4: bit-directed routing on PIPID networks", RunT8},
		{"T9", "Ablation: independence check, definition vs affine form", RunT9},
		{"T10", "Scaling: characterization check cost versus n", RunT10},
		{"T11", "Extension: the automorphism group of the Baseline", RunT11},
		{"T12", "Extension: simulator versus analytic blocking recurrence", RunT12},
		{"T13", "Extension: exhaustive census of small MI-digraphs", RunT13},
		{"T14", "Extension: Agrawal buddy property is not sufficient ([8] vs [10])", RunT14},
		{"T15", "Extension: buffered saturation curves and multi-lane storage", RunT15},
		{"T16", "Extension: degradation curves under switch/link faults", RunT16},
	}
	sort.Slice(exps, func(i, j int) bool { return exps[i].ID < exps[j].ID })
	return exps
}

// ByID finds one experiment.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// RunAll executes every experiment in sequence with headers.
func RunAll(w io.Writer) error {
	for _, e := range All() {
		if err := RunOne(w, e); err != nil {
			return err
		}
	}
	return nil
}

// RunOne executes a single experiment with its banner.
func RunOne(w io.Writer, e Experiment) error {
	fmt.Fprintf(w, "==================================================================\n")
	fmt.Fprintf(w, "%s  %s\n", e.ID, e.Title)
	fmt.Fprintf(w, "==================================================================\n")
	if err := e.Run(w); err != nil {
		return fmt.Errorf("experiment %s: %w", e.ID, err)
	}
	fmt.Fprintln(w)
	return nil
}
