package experiments

import (
	"context"
	"fmt"
	"io"

	"minequiv/internal/engine"
	"minequiv/internal/sim"
	"minequiv/internal/topology"
)

// RunT16 measures how the classical networks degrade as their fabric
// fails — the stability question Rastogi et al. and Moazez et al.
// evaluate MINs under, asked of the paper's equivalence class: all six
// catalog networks are isomorphic, so under element-wise random faults
// at equal rates their degradation curves must coincide statistically,
// exactly as their intact throughput does. Every run resamples the
// fault plan per trial from the engine's dedicated fault streams, so
// the whole table is reproducible from the printed seed and identical
// for any worker count.
func RunT16(w io.Writer) error {
	const (
		n     = 5
		waves = 400
		seed  = 16
	)
	rates := []float64{0, 0.01, 0.02, 0.05, 0.10}

	// Wave model: delivered fraction vs switch-dead rate, all catalog
	// networks side by side.
	fmt.Fprintf(w, "degradation curves: uniform wave traffic, n=%d (N=%d), %d waves, seed %d\n",
		n, 1<<uint(n), waves, seed)
	fmt.Fprintf(w, "throughput vs switch-dead rate:\n")
	fmt.Fprintf(w, "%-26s", "network")
	for _, r := range rates {
		fmt.Fprintf(w, " dead=%-7.2f", r)
	}
	fmt.Fprintln(w)
	for _, name := range topology.Names() {
		nw := topology.MustBuild(name, n)
		f, err := sim.NewFabric(nw.LinkPerms)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-26s", name)
		for _, rate := range rates {
			cfg := engine.Config{Seed: seed, Workers: Workers}
			if rate > 0 {
				cfg.Faults = &sim.FaultPlan{SwitchDeadRate: rate}
			}
			st, err := engine.RunWaves(context.Background(), f, sim.Uniform(), waves, cfg)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, " %-12.4f", st.Throughput.Mean)
		}
		fmt.Fprintln(w)
	}

	// Fault-kind ablation on one network: equal rates of dead switches,
	// jammed crossbars and severed links hurt differently — a dead
	// switch kills both of its packets outright, a stuck one only
	// misroutes the half that needed the other port, a severed link
	// takes out one of the cell's two outputs.
	fmt.Fprintf(w, "\nfault-kind ablation (omega, rate applied to one kind at a time):\n")
	fmt.Fprintf(w, "%-10s %-22s %-10s %-10s\n", "rate", "kind", "throughput", "fault kills")
	omega, err := sim.NewFabric(topology.MustBuild(topology.NameOmega, n).LinkPerms)
	if err != nil {
		return err
	}
	for _, rate := range []float64{0.02, 0.10} {
		for _, kind := range []struct {
			name string
			plan sim.FaultPlan
		}{
			{"switch-dead", sim.FaultPlan{SwitchDeadRate: rate}},
			{"switch-stuck", sim.FaultPlan{SwitchStuckRate: rate}},
			{"link-down", sim.FaultPlan{LinkDownRate: rate}},
		} {
			plan := kind.plan
			st, err := engine.RunWaves(context.Background(), omega, sim.Uniform(), waves,
				engine.Config{Seed: seed, Workers: Workers, Faults: &plan})
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "%-10.2f %-22s %-10.4f %-10d\n", rate, kind.name, st.Throughput.Mean, st.FaultDropped)
		}
	}

	// Buffered model: latency and loss under degradation. Backpressure
	// turns dead switches into upstream congestion, so latency can rise
	// even while the drop counter does the headline damage.
	const (
		cycles = 1000
		warmup = 100
		reps   = 3
	)
	fmt.Fprintf(w, "\nbuffered degradation (omega, load 0.7, queue 4, %d cycles, %d reps):\n", cycles, reps)
	fmt.Fprintf(w, "%-10s %-22s %-14s %-14s %-10s\n", "dead rate", "throughput", "mean latency", "p99", "dropped")
	for _, rate := range rates {
		cfg := engine.Config{Seed: seed, Workers: Workers}
		if rate > 0 {
			cfg.Faults = &sim.FaultPlan{SwitchDeadRate: rate}
		}
		st, err := engine.RunBuffered(context.Background(), omega, sim.BufferedConfig{
			Load: 0.7, Queue: 4, Cycles: cycles, Warmup: warmup,
		}, reps, cfg)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-10.2f %.4f ± %-12.4f %-14.2f %-14.0f %-10d\n",
			rate, st.Throughput.Mean, st.Throughput.CI95(), st.Latency.Mean,
			st.LatencyP99.Mean, st.Dropped)
	}
	fmt.Fprintf(w, "prediction: the six isomorphic networks share one degradation curve.\n")
	fmt.Fprintf(w, "Same-rate dead switches and severed links cost about the same (a stage\n")
	fmt.Fprintf(w, "has half as many switches as links, but a dead switch kills both inputs);\n")
	fmt.Fprintf(w, "stuck crossbars are mildest: they misroute rather than kill, and packets\n")
	fmt.Fprintf(w, "that wanted the jammed port pass unharmed.\n")
	return nil
}
