// Nondeterministic by design: wall-clock reads time the simulation
// sweeps for throughput reporting; the simulated metrics themselves
// (delivery ratios, latencies in cycles) are seed-deterministic.
//
//minlint:allow detrand -- elapsed-time reporting; results stay seed-deterministic
package experiments

import (
	"context"
	"fmt"
	"io"
	"time"

	"minequiv/internal/conn"
	"minequiv/internal/engine"
	"minequiv/internal/equiv"
	"minequiv/internal/perm"
	"minequiv/internal/randnet"
	"minequiv/internal/route"
	"minequiv/internal/sim"
	"minequiv/internal/topology"
)

// RunT7 is the substituted system evaluation: packet-level simulation of
// the six equivalent networks and the non-equivalent tail-cycle Banyan,
// under uniform, hot-spot and bit-reversal wave traffic and buffered
// Bernoulli traffic. All cells run on the parallel trial engine: every
// wave and every buffered replication has its own seed-derived rng
// stream, so the table is identical for any worker count.
func RunT7(w io.Writer) error {
	n := 6
	const waves = 300
	type target struct {
		name  string
		perms []perm.Perm
	}
	var targets []target
	for _, name := range topology.Names() {
		nw := topology.MustBuild(name, n)
		targets = append(targets, target{nw.Name, nw.LinkPerms})
	}
	tailPerms, err := randnet.TailCycleLinkPerms(n)
	if err != nil {
		return err
	}
	targets = append(targets, target{"tail-cycle (non-equiv)", tailPerms})

	cfg := engine.Config{Seed: 42}
	cells := []struct {
		header  string
		traffic sim.Traffic
	}{
		{"uniform", sim.Uniform()},
		{"hotspot50%", sim.HotSpot(0, 0.5)},
		{"bitreversal", sim.BitReversal()},
	}
	fmt.Fprintf(w, "unbuffered wave model, n=%d (N=%d), %d waves per cell (mean ± 95%% CI)\n", n, 1<<uint(n), waves)
	fmt.Fprintf(w, "%-26s", "network")
	for _, c := range cells {
		fmt.Fprintf(w, " %-18s", c.header)
	}
	fmt.Fprintln(w)
	for _, tg := range targets {
		f, err := sim.NewFabric(tg.perms)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-26s", tg.name)
		for _, c := range cells {
			st, err := engine.RunWaves(context.Background(), f, c.traffic, waves, cfg)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, " %.4f ± %.4f  ", st.Throughput.Mean, st.Throughput.CI95())
		}
		fmt.Fprintln(w)
	}

	const reps = 4
	fmt.Fprintf(w, "\nbuffered model (queue 4, load 0.6, 2000 cycles + 200 warmup, %d reps)\n", reps)
	fmt.Fprintf(w, "%-26s %-20s %-20s %-10s\n", "network", "throughput", "mean latency", "rejected")
	for _, tg := range targets {
		f, err := sim.NewFabric(tg.perms)
		if err != nil {
			return err
		}
		st, err := engine.RunBuffered(context.Background(), f, sim.BufferedConfig{
			Load: 0.6, Queue: 4, Cycles: 2000, Warmup: 200,
		}, reps, engine.Config{Seed: 43})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-26s %.4f ± %-10.4f %.2f ± %-10.2f %-10d\n",
			tg.name, st.Throughput.Mean, st.Throughput.CI95(),
			st.Latency.Mean, st.Latency.CI95(), st.Rejected)
	}
	fmt.Fprintf(w, "prediction: the six equivalent networks agree within sampling noise;\n")
	fmt.Fprintf(w, "uniform throughput tracks the banyan blocking recursion, far below 1.\n")
	return nil
}

// RunT8 reproduces the "very simple bit directed routing" claim: tag
// positions per network, all-pairs routing verification, and the
// 2^(#switches) admissible-permutation law.
func RunT8(w io.Writer) error {
	n := 5
	fmt.Fprintf(w, "destination-tag positions per stage (n=%d):\n", n)
	fmt.Fprintf(w, "%-28s %s\n", "network", "bit consumed at stage 1..n")
	for _, name := range topology.Names() {
		nw := topology.MustBuild(name, n)
		r, err := route.NewRouter(nw.IndexPerms)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-28s %v\n", name, r.TagPositions())
	}
	fmt.Fprintf(w, "\nall-pairs unique-path verification (N^2 routes):\n")
	fmt.Fprintf(w, "%-28s %-8s %-10s\n", "network", "pairs", "status")
	for _, name := range topology.Names() {
		nw := topology.MustBuild(name, n)
		r, err := route.NewRouter(nw.IndexPerms)
		if err != nil {
			return err
		}
		pairs, err := r.VerifyAllPairs()
		status := "ok"
		if err != nil {
			status = err.Error()
		}
		fmt.Fprintf(w, "%-28s %-8d %-10s\n", name, pairs, status)
	}
	fmt.Fprintf(w, "\nadmissible permutations (exhaustive, N=8): expect 2^12 = 4096 of 8! = 40320\n")
	fmt.Fprintf(w, "%-28s %-12s %-12s\n", "network", "admissible", "total")
	for _, name := range topology.Names() {
		nw := topology.MustBuild(name, 3)
		r, err := route.NewRouter(nw.IndexPerms)
		if err != nil {
			return err
		}
		adm, total, err := r.CountAdmissible()
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-28s %-12d %-12d\n", name, adm, total)
	}
	return nil
}

// RunT9 is the ablation of the independence decision procedure: the
// O(4^m) definition versus the O(2^m * m) affine inference.
func RunT9(w io.Writer) error {
	rng := engine.NewRand(91, 0)
	fmt.Fprintf(w, "%-6s %-10s %-14s %-14s %-10s\n", "m", "cells", "definition", "affine form", "speedup")
	for m := 4; m <= 12; m++ {
		c := conn.RandomIndependent(rng, m, true)
		const reps = 3
		start := time.Now()
		for i := 0; i < reps; i++ {
			if !c.IsIndependentDef() {
				return fmt.Errorf("definition check failed")
			}
		}
		tDef := time.Since(start) / reps
		start = time.Now()
		for i := 0; i < reps; i++ {
			if !c.IsIndependent() {
				return fmt.Errorf("fast check failed")
			}
		}
		tFast := time.Since(start) / reps
		speed := float64(tDef) / float64(max64(int64(tFast), 1))
		fmt.Fprintf(w, "%-6d %-10d %-14v %-14v %-10.1fx\n", m, c.H(), tDef, tFast, speed)
	}
	fmt.Fprintf(w, "prediction: speedup grows roughly like 2^m / m.\n")
	return nil
}

// RunT10 scales the characterization check and the isomorphism
// construction over n.
func RunT10(w io.Writer) error {
	fmt.Fprintf(w, "%-6s %-10s %-16s %-16s\n", "n", "cells", "check time", "iso time")
	for n := 4; n <= 14; n += 2 {
		g := topology.MustBuild(topology.NameOmega, n).Graph
		start := time.Now()
		rep := equiv.Check(g)
		tCheck := time.Since(start)
		if !rep.Equivalent() {
			return fmt.Errorf("omega n=%d rejected", n)
		}
		var tIso time.Duration
		if n <= 12 {
			start = time.Now()
			if _, err := equiv.IsoToBaseline(g); err != nil {
				return err
			}
			tIso = time.Since(start)
		}
		fmt.Fprintf(w, "%-6d %-10d %-16v %-16v\n", n, g.CellsPerStage(), tCheck, tIso)
	}
	fmt.Fprintf(w, "the Banyan path-count check dominates: O(n * h^2).\n")
	return nil
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
