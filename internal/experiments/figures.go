package experiments

import (
	"fmt"
	"io"

	"minequiv/internal/ascii"
	"minequiv/internal/conn"
	"minequiv/internal/engine"
	"minequiv/internal/equiv"
	"minequiv/internal/pipid"
	"minequiv/internal/randnet"
	"minequiv/internal/topology"
)

// RunF1 reproduces Fig 1: the 4-stage Baseline network and the window
// properties its MI-digraph satisfies.
func RunF1(w io.Writer) error {
	g := topology.Baseline(4)
	fmt.Fprint(w, ascii.Columns(g, ascii.Options{
		Title: "Baseline network, n = 4 (N = 16); children listed per cell", OneBased: true}))
	fmt.Fprintln(w)
	fmt.Fprint(w, ascii.WindowResults(g.CheckAllWindows()))
	banyan, _ := g.IsBanyan()
	fmt.Fprintf(w, "banyan: %v\n", banyan)
	return nil
}

// RunF2 reproduces Fig 2: the binary-tuple labeling of the MI-digraph.
func RunF2(w io.Writer) error {
	g := topology.Baseline(4)
	fmt.Fprint(w, ascii.Network(g, ascii.Options{
		Title: "Labeling of the Baseline MI-digraph (labels as (x2,x1,x0))", Tuples: true, OneBased: true}))
	return nil
}

// RunF3 reproduces Fig 3: the component/stage intersection counts that
// drive Lemma 2's induction, for the Baseline and for a random Banyan
// built from independent connections.
func RunF3(w io.Writer) error {
	n := 5
	fmt.Fprintf(w, "Baseline(n=%d): components of suffix windows (G)_{i..n}\n", n)
	g := topology.Baseline(n)
	for i := 2; i <= n; i++ {
		fmt.Fprintf(w, "window (%d..%d):\n", i, n)
		fmt.Fprint(w, ascii.ComponentTable(g.ComponentStageTable(i-1, n-1), i-1, true))
	}
	rng := engine.NewRand(3, 0)
	rg, _, err := randnet.IndependentBanyan(rng, n, 2000)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\nrandom independent Banyan (n=%d): same windows\n", n)
	for i := 2; i <= n; i++ {
		fmt.Fprintf(w, "window (%d..%d):\n", i, n)
		fmt.Fprint(w, ascii.ComponentTable(rg.ComponentStageTable(i-1, n-1), i-1, true))
	}
	fmt.Fprintf(w, "\nLemma 2 prediction: window (i..n) has 2^(i-1) components, each meeting every stage in 2^(n-i) nodes\n")
	return nil
}

// RunF4 reproduces Fig 4: link labels and the perfect-shuffle stage,
// showing how the link permutation induces the cell-level connection.
func RunF4(w io.Writer) error {
	n := 4
	sigma := pipid.PerfectShuffle(n)
	fmt.Fprint(w, ascii.LinkTable(sigma.ToPerm(),
		fmt.Sprintf("perfect shuffle sigma on %d links (theta = %v)", 1<<uint(n), sigma)))
	c := conn.FromIndexPerm(sigma)
	fmt.Fprintf(w, "\ninduced cell connection (f,g):\n")
	for x := 0; x < c.H(); x++ {
		fmt.Fprintf(w, "  cell %2d -> f=%2d g=%2d\n", x, c.F[x], c.G[x])
	}
	fmt.Fprintf(w, "independent: %v\n", c.IsIndependent())
	k := sigma.PortSource()
	fmt.Fprintf(w, "theta^-1(0) = %d (port choice lands at cell bit %d)\n", k, k-1)
	return nil
}

// RunF5 reproduces Fig 5: a stage whose theta fixes the port digit,
// producing double links and destroying the Banyan property.
func RunF5(w io.Writer) error {
	n := 3
	id := pipid.Identity(n)
	fmt.Fprintf(w, "theta = %v has theta^-1(0) = %d\n", id, id.PortSource())
	c := conn.FromIndexPerm(id)
	fmt.Fprintf(w, "induced connection has parallel arcs: %v (f == g everywhere: ", c.HasParallelArcs())
	same := true
	for x := 0; x < c.H(); x++ {
		if c.F[x] != c.G[x] {
			same = false
		}
	}
	fmt.Fprintf(w, "%v)\n\n", same)
	nw, err := topology.FromIndexPerms("fig5", n,
		[]pipid.IndexPerm{id, pipid.PerfectShuffle(n)})
	if err != nil {
		return err
	}
	fmt.Fprint(w, ascii.Network(nw.Graph, ascii.Options{
		Title: "network with the degenerate stage first:", OneBased: true}))
	banyan, v := nw.Graph.IsBanyan()
	fmt.Fprintf(w, "banyan: %v", banyan)
	if v != nil {
		fmt.Fprintf(w, "  (%v)", v)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "baseline-equivalent: %v\n", equiv.IsBaselineEquivalent(nw.Graph))
	return nil
}
