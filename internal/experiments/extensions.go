package experiments

import (
	"fmt"
	"io"
	"math"

	"minequiv/internal/census"
	"minequiv/internal/engine"
	"minequiv/internal/equiv"
	"minequiv/internal/midigraph"
	"minequiv/internal/randnet"
	"minequiv/internal/sim"
	"minequiv/internal/topology"
)

// RunT11 goes beyond the paper: the automorphism group of the Baseline
// MI-digraph, counted exhaustively and compared with the closed form
// 2^(2*(2^(n-1)-1)) that falls out of this library's window-split
// analysis (the same analysis that powers the isomorphism construction).
func RunT11(w io.Writer) error {
	fmt.Fprintf(w, "%-6s %-16s %-16s %-8s\n", "n", "|Aut| counted", "2^(2(2^(n-1)-1))", "match")
	for n := 2; n <= 4; n++ {
		g := topology.Baseline(n)
		got, err := equiv.CountIsomorphisms(g, g)
		if err != nil {
			return err
		}
		want := equiv.BaselineAutomorphismFormula(n)
		fmt.Fprintf(w, "%-6d %-16d %-16d %-8v\n", n, got, want, got == want)
	}
	fmt.Fprintf(w, "\nisomorphism counts onto baseline are the same for every equivalent network:\n")
	n := 3
	want := equiv.BaselineAutomorphismFormula(n)
	base := topology.Baseline(n)
	for _, name := range topology.Names() {
		g := topology.MustBuild(name, n).Graph
		got, err := equiv.CountIsomorphisms(g, base)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "  %-28s %d (want %d)\n", name, got, want)
	}
	fmt.Fprintf(w, "and zero for the counterexample:\n")
	tail, err := randnet.TailCycleBanyan(n)
	if err != nil {
		return err
	}
	got, err := equiv.CountIsomorphisms(tail, base)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "  %-28s %d\n", "tail-cycle", got)
	return nil
}

// RunT12 validates the simulator against Patel's analytic blocking
// recurrence for unbuffered banyans under uniform traffic.
func RunT12(w io.Writer) error {
	fmt.Fprintf(w, "uniform full-load throughput: simulated (400 waves) vs analytic recurrence\n")
	fmt.Fprintf(w, "%-6s %-12s %-12s %-12s %-10s\n", "n", "N", "simulated", "analytic", "|diff|")
	for _, n := range []int{3, 4, 5, 6, 7, 8} {
		f, err := sim.NewFabric(topology.MustBuild(topology.NameOmega, n).LinkPerms)
		if err != nil {
			return err
		}
		got, err := f.Throughput(sim.Uniform(), 400, engine.NewRand(uint64(100+n), 0))
		if err != nil {
			return err
		}
		want := sim.AnalyticUniformThroughput(n)
		fmt.Fprintf(w, "%-6d %-12d %-12.4f %-12.4f %-10.4f\n",
			n, 1<<uint(n), got, want, math.Abs(got-want))
	}
	fmt.Fprintf(w, "\noffered-load sweep at n=5 (delivered fraction of offered):\n")
	fmt.Fprintf(w, "%-8s %-12s %-12s\n", "load", "simulated", "analytic")
	f, err := sim.NewFabric(topology.MustBuild(topology.NameBaseline, 5).LinkPerms)
	if err != nil {
		return err
	}
	for _, load := range []float64{0.2, 0.4, 0.6, 0.8, 1.0} {
		got, err := f.Throughput(sim.Bernoulli(load), 400, engine.NewRand(55, 0))
		if err != nil {
			return err
		}
		want := sim.AnalyticUniformThroughputLoaded(5, load) / load
		fmt.Fprintf(w, "%-8.1f %-12.4f %-12.4f\n", load, got, want)
	}
	fmt.Fprintf(w, "the independence approximation is accurate to ~0.02 for 2x2 banyans.\n")
	return nil
}

// RunT13 is the exhaustive census: every small MI-digraph classified by
// the paper's properties. It quantifies how selective the
// characterization is — being Banyan is far from sufficient.
func RunT13(w io.Writer) error {
	for _, n := range []int{2, 3} {
		res, err := census.Run(n, 0)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "n=%d exhaustive census over all valid MI-digraphs:\n", n)
		fmt.Fprintf(w, "  valid digraphs           %12d\n", res.Valid)
		fmt.Fprintf(w, "  banyan                   %12d  (%.2f%% of valid)\n",
			res.Banyan, 100*float64(res.Banyan)/float64(res.Valid))
		fmt.Fprintf(w, "  baseline-equivalent      %12d  (%.2f%% of banyan)\n",
			res.Equivalent, 100*float64(res.Equivalent)/float64(res.Banyan))
		fmt.Fprintf(w, "  banyan, NOT equivalent   %12d\n", res.BanyanNotEquiv)
		fmt.Fprintf(w, "  window-signature classes %12d\n", res.SignatureClasses)
		top := res.TopSignatures(5)
		fmt.Fprintf(w, "  largest signature classes:\n")
		for _, t := range top {
			fmt.Fprintf(w, "    %10d graphs  sig %s\n", t.Count, t.Signature)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "the Banyan property alone admits many inequivalent topologies; the\n")
	fmt.Fprintf(w, "P window families cut the Banyan class down to the Baseline class.\n")
	return nil
}

// RunT14 reproduces the historical point the paper's introduction makes:
// Agrawal's buddy property (Theorem 1 of [8]) is NOT sufficient for
// baseline-equivalence, as shown in [10]. We exhibit the refuting graph
// and verify it with the exact oracle.
func RunT14(w io.Writer) error {
	fmt.Fprintf(w, "%-14s %-8s %-8s %-22s %-12s\n",
		"graph", "buddy", "banyan", "violated windows", "equivalent")
	report := func(name string, g *midigraph.Graph) {
		var violated []string
		for _, r := range g.CheckAllWindows() {
			if !r.OK() {
				violated = append(violated, fmt.Sprintf("P(%d,%d)", r.I, r.J))
			}
		}
		banyan, _ := g.IsBanyan()
		vs := fmt.Sprintf("%v", violated)
		if len(vs) > 22 {
			vs = vs[:19] + "..."
		}
		fmt.Fprintf(w, "%-14s %-8v %-8v %-22s %-12v\n",
			name, g.BuddyProperty(), banyan, vs, equiv.IsBaselineEquivalent(g))
	}
	report("baseline(4)", topology.Baseline(4))
	bt, err := randnet.BuddyTwist()
	if err != nil {
		return err
	}
	report("buddy-twist", bt)
	if _, found := equiv.FindIsomorphism(bt, topology.Baseline(4)); found {
		return fmt.Errorf("oracle found an isomorphism for the buddy twist (bug)")
	}
	fmt.Fprintf(w, "\nexact search confirms the buddy-twist graph is not isomorphic to the\n")
	fmt.Fprintf(w, "Baseline although it is Banyan and has the buddy property at every stage —\n")
	fmt.Fprintf(w, "the refutation of [8, Thm 1] that motivates the paper's P-window families.\n")
	return nil
}
