package topology

import (
	"testing"

	"minequiv/internal/midigraph"
	"minequiv/internal/perm"
	"minequiv/internal/pipid"
)

// TestBaselineThreeWays is the anchor of the whole construction layer:
// the paper's recursive definition, the closed-form connection and the
// inverse-subshuffle link permutations must produce the identical
// digraph, including the (f,g) slot order.
func TestBaselineThreeWays(t *testing.T) {
	for n := 2; n <= 10; n++ {
		rec := BaselineRecursive(n)
		conn := Baseline(n)
		lp, err := midigraph.FromLinkPerms(n, BaselineLinkPerms(n))
		if err != nil {
			t.Fatalf("n=%d: link-perm baseline failed: %v", n, err)
		}
		if !rec.Equal(conn) {
			t.Fatalf("n=%d: recursive != closed-form baseline\n%v\nvs\n%v", n, rec, conn)
		}
		if !conn.Equal(lp) {
			t.Fatalf("n=%d: closed-form != link-perm baseline\n%v\nvs\n%v", n, conn, lp)
		}
	}
}

func TestBaselineMatchesFig1(t *testing.T) {
	// The paper's Fig 1 shows the 4-stage (N=16) Baseline: stage-1 nodes
	// 2i and 2i+1 both connect to node i of the top subnetwork (labels
	// 0..3) and node i of the bottom one (labels 4..7).
	g := Baseline(4)
	for i := uint32(0); i < 4; i++ {
		for _, x := range []uint32{2 * i, 2*i + 1} {
			f, c := g.Children(0, x)
			if f != i || c != i+4 {
				t.Fatalf("stage-1 node %d children (%d,%d), want (%d,%d)", x, f, c, i, i+4)
			}
		}
	}
	// Last stage: K_{2,2} blocks on pairs {2j, 2j+1}.
	for y := uint32(0); y < 8; y++ {
		f, c := g.Children(2, y)
		if f != y&^1 || c != (y&^1)|1 {
			t.Fatalf("last-stage node %d children (%d,%d)", y, f, c)
		}
	}
}

func TestReverseBaselineIsReverse(t *testing.T) {
	for n := 2; n <= 9; n++ {
		rb := MustBuild(NameReverseBaseline, n)
		rev := Baseline(n).Reverse()
		if !rb.Graph.EqualUnordered(rev) {
			t.Fatalf("n=%d: reverse-baseline != Reverse(baseline)", n)
		}
	}
}

func TestCatalogNetworksAreValidBanyans(t *testing.T) {
	for n := 2; n <= 9; n++ {
		nets, err := BuildAll(n)
		if err != nil {
			t.Fatal(err)
		}
		if len(nets) != 6 {
			t.Fatalf("catalog has %d networks, want 6", len(nets))
		}
		for _, nw := range nets {
			if err := nw.Graph.Validate(); err != nil {
				t.Errorf("n=%d %s: invalid: %v", n, nw.Name, err)
			}
			if ok, v := nw.Graph.IsBanyan(); !ok {
				t.Errorf("n=%d %s: not Banyan: %v", n, nw.Name, v)
			}
			if nw.Graph.HasParallelArcs() {
				t.Errorf("n=%d %s: has parallel arcs", n, nw.Name)
			}
			if len(nw.IndexPerms) != n-1 || len(nw.LinkPerms) != n-1 {
				t.Errorf("n=%d %s: definition slices wrong length", n, nw.Name)
			}
		}
	}
}

func TestCatalogNetworksSatisfyCharacterization(t *testing.T) {
	// Direct check of the paper's theorem hypotheses on all six networks.
	for n := 2; n <= 8; n++ {
		nets, err := BuildAll(n)
		if err != nil {
			t.Fatal(err)
		}
		for _, nw := range nets {
			if !midigraph.AllOK(nw.Graph.CheckPrefix()) {
				t.Errorf("n=%d %s: P(1,*) violated", n, nw.Name)
			}
			if !midigraph.AllOK(nw.Graph.CheckSuffix()) {
				t.Errorf("n=%d %s: P(*,n) violated", n, nw.Name)
			}
		}
	}
}

func TestOmegaStructure(t *testing.T) {
	// Omega's cell-level connection is the shuffle-exchange: cell x
	// connects to cells (2x mod h + 0/1 with the top bit wrapped into
	// bit 1 of the link)... concretely, children of x are obtained from
	// the shuffle of link 2x and 2x+1. For n=3 (h=4, links 8):
	// sigma((x2,x1,x0)) = (x1,x0,x2). Cell 0 (links 000,001):
	// images 000, 010 -> cells 0, 1.
	g := MustBuild(NameOmega, 3).Graph
	f, c := g.Children(0, 0)
	if f != 0 || c != 1 {
		t.Fatalf("omega children of 0 = (%d,%d), want (0,1)", f, c)
	}
	// Cell 2 (links 100,101): images 001, 011 -> cells 0, 1.
	f, c = g.Children(0, 2)
	if f != 0 || c != 1 {
		t.Fatalf("omega children of 2 = (%d,%d), want (0,1)", f, c)
	}
	// Cell 1 (links 010,011): images 100,110 -> cells 2,3.
	f, c = g.Children(0, 1)
	if f != 2 || c != 3 {
		t.Fatalf("omega children of 1 = (%d,%d), want (2,3)", f, c)
	}
}

func TestFlipIsOmegaReverse(t *testing.T) {
	// Flip (inverse shuffles) is the reverse network of Omega.
	for n := 2; n <= 8; n++ {
		flip := MustBuild(NameFlip, n).Graph
		omegaRev := MustBuild(NameOmega, n).Graph.Reverse()
		if !flip.EqualUnordered(omegaRev) {
			t.Fatalf("n=%d: flip != Reverse(omega)", n)
		}
	}
}

func TestModifiedDMIsCubeReverse(t *testing.T) {
	// The butterfly stages are involutions, so reversing the cube's
	// stage order gives the modified data manipulator.
	for n := 2; n <= 8; n++ {
		mdm := MustBuild(NameModifiedDM, n).Graph
		cubeRev := MustBuild(NameIndirectCube, n).Graph.Reverse()
		if !mdm.EqualUnordered(cubeRev) {
			t.Fatalf("n=%d: mdm != Reverse(cube)", n)
		}
	}
}

func TestIndirectCubeStructure(t *testing.T) {
	// Stage s of the cube network links cells differing in bit s: cell x
	// and x^2^s both connect to {x with bit s = 0, = 1}... at the cell
	// level stage s uses beta_{s+1}, so children of x are x with bit s
	// set to 0 and 1.
	g := MustBuild(NameIndirectCube, 4).Graph
	for s := 0; s < 3; s++ {
		for x := uint32(0); x < 8; x++ {
			f, c := g.Children(s, x)
			want0 := x &^ (1 << uint(s))
			want1 := x | (1 << uint(s))
			if f != want0 || c != want1 {
				t.Fatalf("cube stage %d node %d children (%d,%d), want (%d,%d)",
					s, x, f, c, want0, want1)
			}
		}
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := Build("no-such-network", 4); err == nil {
		t.Error("unknown name accepted")
	}
	if _, err := Build(NameOmega, 1); err == nil {
		t.Error("n=1 accepted")
	}
	if _, err := Build(NameOmega, midigraph.MaxStages+1); err == nil {
		t.Error("oversized n accepted")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustBuild did not panic")
		}
	}()
	MustBuild("no-such-network", 4)
}

func TestFromIndexPermsErrors(t *testing.T) {
	if _, err := FromIndexPerms("x", 4, nil); err == nil {
		t.Error("nil index perms accepted")
	}
	bad := []pipid.IndexPerm{pipid.Identity(3), pipid.Identity(3), pipid.Identity(3)}
	if _, err := FromIndexPerms("x", 4, bad); err == nil {
		t.Error("wrong-width thetas accepted")
	}
	// Identity theta produces double links, which still validates as an
	// MI-digraph — it is the Fig 5 degenerate network.
	idNet, err := FromIndexPerms("fig5", 3, []pipid.IndexPerm{pipid.Identity(3), pipid.PerfectShuffle(3)})
	if err != nil {
		t.Fatalf("identity-theta network rejected: %v", err)
	}
	if !idNet.Graph.HasParallelArcs() {
		t.Error("identity theta should produce parallel arcs")
	}
	if ok, _ := idNet.Graph.IsBanyan(); ok {
		t.Error("Fig 5 network reported Banyan")
	}
}

func TestFromLinkPermsDetectsPIPID(t *testing.T) {
	n := 4
	// Build from explicit link perms of a PIPID network: IndexPerms must
	// be recovered.
	lps := MustBuild(NameOmega, n).LinkPerms
	nw, err := FromLinkPerms("omega-lp", n, lps)
	if err != nil {
		t.Fatal(err)
	}
	if nw.IndexPerms == nil {
		t.Fatal("PIPID link perms not detected")
	}
	for s, ip := range nw.IndexPerms {
		if !ip.Equal(pipid.PerfectShuffle(n)) {
			t.Fatalf("stage %d detected %v, want sigma", s, ip)
		}
	}
	// Non-PIPID link perms leave IndexPerms nil. Swapping two non-unit,
	// even-valued entries keeps a valid bijection whose cell-level graph
	// still validates (both 6 and 10 map into distinct cells).
	mod := make([]perm.Perm, n-1)
	for s := range lps {
		mod[s] = lps[s].Clone()
	}
	mod[1][6], mod[1][10] = mod[1][10], mod[1][6]
	nw2, err := FromLinkPerms("scrambled", n, mod)
	if err != nil {
		t.Fatal(err)
	}
	if nw2.IndexPerms != nil {
		t.Error("non-PIPID stage still reported IndexPerms")
	}
}

func TestNames(t *testing.T) {
	names := Names()
	if len(names) != 6 {
		t.Fatalf("Names() = %v", names)
	}
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			t.Fatalf("duplicate name %q", n)
		}
		seen[n] = true
	}
}

func BenchmarkBuildBaseline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Baseline(12)
	}
}

func BenchmarkBuildOmega(b *testing.B) {
	for i := 0; i < b.N; i++ {
		MustBuild(NameOmega, 12)
	}
}
