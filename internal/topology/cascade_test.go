package topology

import (
	"testing"

	"minequiv/internal/midigraph"
)

func allOrders(k int) [][]int {
	base := make([]int, k)
	for i := range base {
		base[i] = i + 1
	}
	var out [][]int
	var rec func(i int)
	rec = func(i int) {
		if i == k {
			cp := make([]int, k)
			copy(cp, base)
			out = append(out, cp)
			return
		}
		for j := i; j < k; j++ {
			base[i], base[j] = base[j], base[i]
			rec(i + 1)
			base[i], base[j] = base[j], base[i]
		}
	}
	rec(0)
	return out
}

// TestAllButterflyCascadesEquivalent checks the corollary exhaustively:
// every one of the (n-1)! butterfly stage orders yields a Banyan network
// satisfying the full characterization.
func TestAllButterflyCascadesEquivalent(t *testing.T) {
	for n := 2; n <= 5; n++ {
		orders := allOrders(n - 1)
		for _, order := range orders {
			nw, err := ButterflyCascade(n, order)
			if err != nil {
				t.Fatalf("n=%d order=%v: %v", n, order, err)
			}
			if ok, v := nw.Graph.IsBanyan(); !ok {
				t.Fatalf("n=%d order=%v: not Banyan: %v", n, order, v)
			}
			if !midigraph.AllOK(nw.Graph.CheckPrefix()) || !midigraph.AllOK(nw.Graph.CheckSuffix()) {
				t.Fatalf("n=%d order=%v: characterization fails", n, order)
			}
		}
		if len(orders) != factorial(n-1) {
			t.Fatalf("n=%d: %d orders enumerated", n, len(orders))
		}
	}
}

func factorial(k int) int {
	f := 1
	for i := 2; i <= k; i++ {
		f *= i
	}
	return f
}

func TestButterflyCascadeKnownOrders(t *testing.T) {
	n := 5
	asc := []int{1, 2, 3, 4}
	desc := []int{4, 3, 2, 1}
	up, err := ButterflyCascade(n, asc)
	if err != nil {
		t.Fatal(err)
	}
	if !up.Graph.Equal(MustBuild(NameIndirectCube, n).Graph) {
		t.Error("ascending cascade != indirect binary cube")
	}
	down, err := ButterflyCascade(n, desc)
	if err != nil {
		t.Fatal(err)
	}
	if !down.Graph.Equal(MustBuild(NameModifiedDM, n).Graph) {
		t.Error("descending cascade != modified data manipulator")
	}
}

func TestButterflyCascadeErrors(t *testing.T) {
	if _, err := ButterflyCascade(4, []int{1, 2}); err == nil {
		t.Error("short order accepted")
	}
	if _, err := ButterflyCascade(4, []int{1, 2, 2}); err == nil {
		t.Error("repeated index accepted")
	}
	if _, err := ButterflyCascade(4, []int{0, 1, 2}); err == nil {
		t.Error("index 0 accepted (identity butterfly would double links)")
	}
	if _, err := ButterflyCascade(4, []int{1, 2, 4}); err == nil {
		t.Error("oversized index accepted")
	}
}
