package topology

import (
	"fmt"
	"sort"

	"minequiv/internal/midigraph"
	"minequiv/internal/perm"
	"minequiv/internal/pipid"
)

// Network bundles a named MI-digraph with the definition it was built
// from, when a permutation-level definition exists.
type Network struct {
	Name       string
	Graph      *midigraph.Graph
	IndexPerms []pipid.IndexPerm // per-stage theta, nil when not PIPID-defined
	LinkPerms  []perm.Perm       // per-stage link permutation, nil when not permutation-defined
}

// FromIndexPerms builds a network from per-stage PIPID index
// permutations (one per inter-stage connection).
func FromIndexPerms(name string, n int, ips []pipid.IndexPerm) (Network, error) {
	if len(ips) != n-1 {
		return Network{}, fmt.Errorf("topology: want %d index perms for %d stages, got %d",
			n-1, n, len(ips))
	}
	lps := make([]perm.Perm, n-1)
	for s, ip := range ips {
		if ip.W() != n {
			return Network{}, fmt.Errorf("topology: stage %d theta on %d bits, want %d", s, ip.W(), n)
		}
		lps[s] = ip.ToPerm()
	}
	g, err := midigraph.FromLinkPerms(n, lps)
	if err != nil {
		return Network{}, err
	}
	return Network{Name: name, Graph: g, IndexPerms: ips, LinkPerms: lps}, nil
}

// FromLinkPerms builds a network from arbitrary per-stage link
// permutations; IndexPerms is populated for the stages that happen to be
// PIPID (all or nothing).
func FromLinkPerms(name string, n int, lps []perm.Perm) (Network, error) {
	g, err := midigraph.FromLinkPerms(n, lps)
	if err != nil {
		return Network{}, err
	}
	ips := make([]pipid.IndexPerm, len(lps))
	allPIPID := true
	for s, lp := range lps {
		ip, ok := pipid.Detect(lp)
		if !ok {
			allPIPID = false
			break
		}
		ips[s] = ip
	}
	if !allPIPID {
		ips = nil
	}
	return Network{Name: name, Graph: g, IndexPerms: ips, LinkPerms: lps}, nil
}

// The canonical catalog names.
const (
	NameBaseline        = "baseline"
	NameReverseBaseline = "reverse-baseline"
	NameOmega           = "omega"
	NameFlip            = "flip"
	NameIndirectCube    = "indirect-binary-cube"
	NameModifiedDM      = "modified-data-manipulator"
)

// Build constructs a catalog network by name for n stages. The six names
// above are the "classical" networks of Wu & Feng that the paper's main
// corollary proves equivalent.
func Build(name string, n int) (Network, error) {
	if n < 2 || n > midigraph.MaxStages {
		return Network{}, fmt.Errorf("topology: stage count %d out of range [2,%d]", n, midigraph.MaxStages)
	}
	var ips []pipid.IndexPerm
	switch name {
	case NameBaseline:
		ips = BaselineIndexPerms(n)
	case NameReverseBaseline:
		ips = ReverseBaselineIndexPerms(n)
	case NameOmega:
		ips = OmegaIndexPerms(n)
	case NameFlip:
		ips = FlipIndexPerms(n)
	case NameIndirectCube:
		ips = IndirectBinaryCubeIndexPerms(n)
	case NameModifiedDM:
		ips = ModifiedDataManipulatorIndexPerms(n)
	default:
		return Network{}, fmt.Errorf("topology: unknown network %q (have %v)", name, Names())
	}
	return FromIndexPerms(name, n, ips)
}

// MustBuild is Build that panics on error, for test and example setup.
func MustBuild(name string, n int) Network {
	nw, err := Build(name, n)
	if err != nil {
		panic(err)
	}
	return nw
}

// Names lists the catalog names in stable order.
func Names() []string {
	names := []string{
		NameBaseline, NameReverseBaseline, NameOmega,
		NameFlip, NameIndirectCube, NameModifiedDM,
	}
	sort.Strings(names)
	return names
}

// BuildAll constructs every catalog network for n stages.
func BuildAll(n int) ([]Network, error) {
	var out []Network
	for _, name := range Names() {
		nw, err := Build(name, n)
		if err != nil {
			return nil, err
		}
		out = append(out, nw)
	}
	return out, nil
}
