// Package topology constructs the classical multistage interconnection
// networks the paper discusses — Baseline, Reverse Baseline, Omega, Flip,
// Indirect Binary Cube, Modified Data Manipulator — as MI-digraphs,
// together with generic builders for networks defined by arbitrary link
// permutations, PIPID index permutations, or connections.
//
// The Baseline network is built three independent ways (recursive
// definition, closed-form connection, link permutations); the test suite
// proves all three produce the identical digraph, which anchors every
// other construction.
package topology

import (
	"fmt"

	"minequiv/internal/bitops"
	"minequiv/internal/midigraph"
	"minequiv/internal/perm"
	"minequiv/internal/pipid"
)

// BaselineRecursive builds the n-stage Baseline network exactly as the
// paper defines it: the subnetwork between stages 2 and n consists of two
// (n-1)-stage Baseline networks laid out top (labels with high bit 0) and
// bottom (high bit 1), and stage-1 nodes 2i and 2i+1 are both connected
// to the i-th node of each subnetwork. Slot 0 (the f-child) is the node
// in the top subnetwork.
func BaselineRecursive(n int) *midigraph.Graph {
	g := midigraph.New(n)
	buildBaselineInto(g, 0, 0, n)
	return g
}

// buildBaselineInto writes an s-stage baseline into g occupying stages
// stage..stage+s-1, using labels base..base+2^(s-1)-1 at each stage.
func buildBaselineInto(g *midigraph.Graph, stage int, base uint32, s int) {
	if s == 1 {
		return // a single cell: no connection to build
	}
	half := uint32(1) << uint(s-2) // cells per stage of each subnetwork
	for i := uint32(0); i < half; i++ {
		top := base + i
		bottom := base + half + i
		g.SetChildren(stage, base+2*i, top, bottom)
		g.SetChildren(stage, base+2*i+1, top, bottom)
	}
	buildBaselineInto(g, stage+1, base, s-1)
	buildBaselineInto(g, stage+1, base+half, s-1)
}

// Baseline builds the n-stage Baseline network from its closed-form
// connection: at 0-based stage s the top s label bits are preserved, the
// low m-s bits shift right one position (dropping bit 0), and the vacated
// bit at position m-1-s becomes 0 for the f-child and 1 for the g-child
// (m = n-1). This is the affine normal form of the recursive definition.
func Baseline(n int) *midigraph.Graph {
	m := n - 1
	fs := make([]func(uint64) uint64, n-1)
	gs := make([]func(uint64) uint64, n-1)
	for s := 0; s < n-1; s++ {
		low := bitops.Mask(m - s)
		high := bitops.Mask(m) &^ low
		bit := uint64(1) << uint(m-1-s)
		fs[s] = func(x uint64) uint64 { return (x & high) | ((x & low) >> 1) }
		gs[s] = func(x uint64) uint64 { return (x&high | ((x & low) >> 1)) | bit }
	}
	g, err := midigraph.FromChildFuncs(n, fs, gs)
	if err != nil {
		panic(fmt.Sprintf("topology: baseline construction failed: %v", err))
	}
	return g
}

// BaselineLinkPerms returns the link-permutation definition of the
// Baseline network: 0-based stage s applies the inverse subshuffle
// sigma^{-1}_{n-s} to the n-bit link labels.
func BaselineLinkPerms(n int) []perm.Perm {
	ps := make([]perm.Perm, n-1)
	for s := 0; s < n-1; s++ {
		ps[s] = pipid.InverseSubshuffle(n, n-s).ToPerm()
	}
	return ps
}

// BaselineIndexPerms returns the same definition as index permutations.
func BaselineIndexPerms(n int) []pipid.IndexPerm {
	ps := make([]pipid.IndexPerm, n-1)
	for s := 0; s < n-1; s++ {
		ps[s] = pipid.InverseSubshuffle(n, n-s)
	}
	return ps
}

// ReverseBaselineIndexPerms: 0-based stage s applies the subshuffle
// sigma_{s+2}; the result is the reverse digraph of Baseline (proved in
// tests against Baseline(n).Reverse()).
func ReverseBaselineIndexPerms(n int) []pipid.IndexPerm {
	ps := make([]pipid.IndexPerm, n-1)
	for s := 0; s < n-1; s++ {
		ps[s] = pipid.Subshuffle(n, s+2)
	}
	return ps
}

// OmegaIndexPerms: every stage applies the perfect shuffle sigma.
func OmegaIndexPerms(n int) []pipid.IndexPerm {
	ps := make([]pipid.IndexPerm, n-1)
	for s := range ps {
		ps[s] = pipid.PerfectShuffle(n)
	}
	return ps
}

// FlipIndexPerms: every stage applies the inverse shuffle sigma^{-1}
// (Batcher's Flip network from STARAN).
func FlipIndexPerms(n int) []pipid.IndexPerm {
	ps := make([]pipid.IndexPerm, n-1)
	for s := range ps {
		ps[s] = pipid.InverseShuffle(n)
	}
	return ps
}

// IndirectBinaryCubeIndexPerms: 0-based stage s applies the butterfly
// beta_{s+1} (Pease's indirect binary n-cube).
func IndirectBinaryCubeIndexPerms(n int) []pipid.IndexPerm {
	ps := make([]pipid.IndexPerm, n-1)
	for s := range ps {
		ps[s] = pipid.Butterfly(n, s+1)
	}
	return ps
}

// ModifiedDataManipulatorIndexPerms: 0-based stage s applies the
// butterfly beta_{n-1-s} (Feng's data manipulator, descending order).
func ModifiedDataManipulatorIndexPerms(n int) []pipid.IndexPerm {
	ps := make([]pipid.IndexPerm, n-1)
	for s := range ps {
		ps[s] = pipid.Butterfly(n, n-1-s)
	}
	return ps
}

// ButterflyCascade builds a network applying the butterflies beta_k in an
// arbitrary order: order must be a permutation of {1..n-1}; stage s uses
// beta_{order[s]}. Ascending order gives the Indirect Binary Cube,
// descending the Modified Data Manipulator; by the paper's theorem every
// one of the (n-1)! orders is a Banyan network baseline-equivalent to the
// rest — an immediate corollary the test suite checks exhaustively for
// small n.
func ButterflyCascade(n int, order []int) (Network, error) {
	if len(order) != n-1 {
		return Network{}, fmt.Errorf("topology: butterfly order has %d entries, want %d", len(order), n-1)
	}
	seen := make([]bool, n)
	ips := make([]pipid.IndexPerm, n-1)
	for s, k := range order {
		if k < 1 || k > n-1 {
			return Network{}, fmt.Errorf("topology: butterfly index %d out of range [1,%d]", k, n-1)
		}
		if seen[k] {
			return Network{}, fmt.Errorf("topology: butterfly index %d repeated", k)
		}
		seen[k] = true
		ips[s] = pipid.Butterfly(n, k)
	}
	return FromIndexPerms(fmt.Sprintf("butterfly-cascade%v", order), n, ips)
}
