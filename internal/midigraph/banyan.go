package midigraph

import "fmt"

// PathCountsFrom returns, for first-stage node src, the number of
// distinct directed paths from (0, src) to each node of the last stage,
// counted with multiplicity so parallel arcs contribute multiple paths.
func (g *Graph) PathCountsFrom(src uint32) []uint64 {
	cur := make([]uint64, g.h)
	next := make([]uint64, g.h)
	cur[src] = 1
	for s := 0; s < g.n-1; s++ {
		for i := range next {
			next[i] = 0
		}
		for x := 0; x < g.h; x++ {
			if cur[x] == 0 {
				continue
			}
			f, c := g.Children(s, uint32(x))
			next[f] += cur[x]
			next[c] += cur[x]
		}
		cur, next = next, cur
	}
	return cur
}

// PathCountMatrix returns the full matrix paths[src][dst] of directed
// path counts between first- and last-stage nodes. O(n * h^2).
func (g *Graph) PathCountMatrix() [][]uint64 {
	out := make([][]uint64, g.h)
	for src := 0; src < g.h; src++ {
		out[src] = g.PathCountsFrom(uint32(src))
	}
	return out
}

// BanyanViolation describes the first failure found by IsBanyan.
type BanyanViolation struct {
	Src, Dst uint32
	Paths    uint64
}

func (v BanyanViolation) Error() string {
	return fmt.Sprintf("midigraph: banyan violated: %d paths from input node %d to output node %d",
		v.Paths, v.Src, v.Dst)
}

// IsBanyan reports whether the graph has the Banyan property: exactly one
// directed path from every first-stage node to every last-stage node.
// (The paper states it for network inputs and outputs; the two inputs of
// a first-stage cell share that cell's paths, so the node-level statement
// is equivalent.) On failure the first violation is returned.
//
// Counting shortcut: each first-stage node has exactly 2^(n-1) = h paths
// leaving it in total, so "every count equals one" is equivalent to
// "every count is nonzero" — but we check counts exactly to produce
// precise violation reports.
func (g *Graph) IsBanyan() (bool, *BanyanViolation) {
	for src := 0; src < g.h; src++ {
		counts := g.PathCountsFrom(uint32(src))
		for dst, c := range counts {
			if c != 1 {
				return false, &BanyanViolation{Src: uint32(src), Dst: uint32(dst), Paths: c}
			}
		}
	}
	return true, nil
}

// ReachableSetSizes returns, for each first-stage node, how many last-
// stage nodes it reaches at all (ignoring multiplicity). For a Banyan
// graph every entry is h.
func (g *Graph) ReachableSetSizes() []int {
	out := make([]int, g.h)
	for src := 0; src < g.h; src++ {
		n := 0
		for _, c := range g.PathCountsFrom(uint32(src)) {
			if c > 0 {
				n++
			}
		}
		out[src] = n
	}
	return out
}
