package midigraph

import (
	"math/rand/v2"
	"testing"

	"minequiv/internal/perm"
)

func TestBaselinePropertiesExact(t *testing.T) {
	// The Baseline network satisfies P(i,j) for EVERY window — the
	// strongest form, from which P(1,*) and P(*,n) follow.
	for n := 2; n <= 9; n++ {
		g := buildBaseline(t, n)
		for _, r := range g.CheckAllWindows() {
			if !r.OK() {
				t.Errorf("n=%d: %v", n, r)
			}
		}
	}
}

func TestComponentsSingleStage(t *testing.T) {
	g := buildBaseline(t, 4)
	// A one-stage window has no arcs: every node is its own component.
	ids, count := g.Components(2, 2)
	if count != g.CellsPerStage() {
		t.Fatalf("single-stage components = %d, want %d", count, g.CellsPerStage())
	}
	seen := map[int32]bool{}
	for _, id := range ids[0] {
		if seen[id] {
			t.Fatal("repeated component id in single-stage window")
		}
		seen[id] = true
	}
}

func TestComponentsFullWindow(t *testing.T) {
	g := buildBaseline(t, 5)
	_, count := g.Components(0, g.Stages()-1)
	if count != 1 {
		t.Fatalf("whole baseline has %d components, want 1", count)
	}
}

func TestComponentIDsDense(t *testing.T) {
	g := buildBaseline(t, 5)
	ids, count := g.Components(1, 3)
	present := make([]bool, count)
	for _, stage := range ids {
		for _, id := range stage {
			if id < 0 || int(id) >= count {
				t.Fatalf("component id %d out of range [0,%d)", id, count)
			}
			present[id] = true
		}
	}
	for id, ok := range present {
		if !ok {
			t.Fatalf("component id %d unused", id)
		}
	}
}

func TestComponentsRespectArcs(t *testing.T) {
	// Every arc inside the window joins nodes of the same component; this
	// is the defining property, checked on a scrambled baseline.
	rng := rand.New(rand.NewPCG(2, 0))
	g := buildBaseline(t, 6)
	perms := make([]perm.Perm, g.Stages())
	for s := range perms {
		perms[s] = perm.Random(rng, g.CellsPerStage())
	}
	g, err := g.Relabel(perms)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := 1, 4
	ids, _ := g.Components(lo, hi)
	for s := lo; s < hi; s++ {
		for x := 0; x < g.CellsPerStage(); x++ {
			f, c := g.Children(s, uint32(x))
			if ids[s-lo][x] != ids[s-lo+1][f] || ids[s-lo][x] != ids[s-lo+1][c] {
				t.Fatalf("arc crosses components at stage %d node %d", s, x)
			}
		}
	}
}

func TestExpectedComponents(t *testing.T) {
	g := buildBaseline(t, 5) // n=5
	cases := []struct{ i, j, want int }{
		{1, 5, 1}, {1, 1, 16}, {2, 5, 2}, {1, 4, 2}, {3, 4, 8}, {2, 3, 8},
	}
	for _, c := range cases {
		if got := g.ExpectedComponents(c.i, c.j); got != c.want {
			t.Errorf("ExpectedComponents(%d,%d) = %d, want %d", c.i, c.j, got, c.want)
		}
	}
}

func TestPropertyPOneBased(t *testing.T) {
	g := buildBaseline(t, 4)
	if !g.PropertyP(1, 4) || !g.PropertyP(2, 4) || !g.PropertyP(1, 2) {
		t.Error("baseline P properties false")
	}
	defer func() {
		if recover() == nil {
			t.Error("PropertyP(0,2) did not panic (0-based misuse)")
		}
	}()
	g.PropertyP(0, 2)
}

func TestPrefixSuffixFamilies(t *testing.T) {
	g := buildBaseline(t, 6)
	pre := g.CheckPrefix()
	suf := g.CheckSuffix()
	if len(pre) != 6 || len(suf) != 6 {
		t.Fatalf("family sizes %d/%d, want 6/6", len(pre), len(suf))
	}
	if !AllOK(pre) || !AllOK(suf) {
		t.Error("baseline prefix/suffix violated")
	}
	if len(Violations(pre)) != 0 {
		t.Error("Violations nonempty on clean result")
	}
	// Prefix windows are (1,j).
	for idx, r := range pre {
		if r.I != 1 || r.J != idx+1 {
			t.Errorf("prefix window %d = (%d,%d)", idx, r.I, r.J)
		}
	}
	for idx, r := range suf {
		if r.I != idx+1 || r.J != 6 {
			t.Errorf("suffix window %d = (%d,%d)", idx, r.I, r.J)
		}
	}
}

// nonEquivalentBanyan builds the tail-cycle counterexample of DESIGN.md
// §5.5: a Baseline whose LAST connection is replaced by the 2h-cycle
// y -> {y, (y+1) mod h}. The prefix stages deliver, from any input node
// u, exactly the last-but-one-stage nodes of one parity, once each; the
// cycle then hits every output node exactly once (via y = z or y = z-1),
// so the graph stays Banyan. But the last two-stage window is a single
// cycle: one connected component instead of 2^(n-2), so P(n-1, n) — and
// with it P(*, n) — fails, and by the characterization the graph is not
// baseline-equivalent. Requires n >= 3 (for n = 2 the cycle IS K_{2,2}).
func nonEquivalentBanyan(t testing.TB, n int) *Graph {
	t.Helper()
	if n < 3 {
		t.Fatal("need n >= 3")
	}
	g := buildBaseline(t, n)
	h := uint32(g.CellsPerStage())
	for y := uint32(0); y < h; y++ {
		g.SetChildren(n-2, y, y, (y+1)%h)
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("tail-cycle graph invalid: %v", err)
	}
	return g
}

func TestNonEquivalentBanyanProperties(t *testing.T) {
	for n := 3; n <= 8; n++ {
		g := nonEquivalentBanyan(t, n)
		// Banyan holds...
		if ok, v := g.IsBanyan(); !ok {
			t.Fatalf("n=%d: tail-cycle graph not Banyan: %v", n, v)
		}
		// ...the prefix family holds in full...
		if !AllOK(g.CheckPrefix()) {
			t.Fatalf("n=%d: prefix family unexpectedly violated", n)
		}
		// ...but P(n-1, n) fails with exactly one component.
		if got := g.ComponentCount(n-2, n-1); got != 1 {
			t.Fatalf("n=%d: last window has %d components, want 1", n, got)
		}
		if g.PropertyP(n-1, n) {
			t.Fatalf("n=%d: P(n-1,n) unexpectedly holds", n)
		}
		if AllOK(g.CheckSuffix()) {
			t.Fatalf("n=%d: suffix family unexpectedly holds", n)
		}
	}
}

func TestUnionFindBasics(t *testing.T) {
	uf := newUnionFind(5)
	if uf.count != 5 {
		t.Fatal("initial count wrong")
	}
	uf.union(0, 1)
	uf.union(3, 4)
	uf.union(1, 3)
	if uf.count != 2 {
		t.Fatalf("count = %d, want 2", uf.count)
	}
	if uf.find(0) != uf.find(4) || uf.find(2) == uf.find(0) {
		t.Fatal("find wrong")
	}
	uf.union(0, 4) // already joined: no change
	if uf.count != 2 {
		t.Fatal("redundant union changed count")
	}
}

func TestComponentStageTable(t *testing.T) {
	// For baseline suffix window (i..n), every component meets every
	// stage in the same number of nodes: 2^(n-1)/2^(i-1) — Fig 3's
	// uniform intersection counts.
	for n := 3; n <= 7; n++ {
		g := buildBaseline(t, n)
		for i := 1; i <= n; i++ {
			table := g.ComponentStageTable(i-1, n-1)
			wantComponents := 1 << uint(i-1)
			if len(table) != wantComponents {
				t.Fatalf("n=%d i=%d: %d components, want %d", n, i, len(table), wantComponents)
			}
			wantPerStage := g.CellsPerStage() / wantComponents
			for _, si := range table {
				for tIdx, cnt := range si.PerStage {
					if cnt != wantPerStage {
						t.Fatalf("n=%d i=%d comp %d stage-offset %d: |C∩V| = %d, want %d",
							n, i, si.Component, tIdx, cnt, wantPerStage)
					}
				}
			}
		}
	}
}

func TestWindowResultString(t *testing.T) {
	ok := WindowResult{I: 1, J: 2, Got: 4, Expected: 4}
	bad := WindowResult{I: 1, J: 2, Got: 3, Expected: 4}
	if ok.String() == bad.String() {
		t.Error("ok/violated render identically")
	}
	if !ok.OK() || bad.OK() {
		t.Error("OK() wrong")
	}
}

func TestComponentsPanicsOnBadWindow(t *testing.T) {
	g := buildBaseline(t, 3)
	for _, w := range [][2]int{{-1, 1}, {1, 3}, {2, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Components(%d,%d) did not panic", w[0], w[1])
				}
			}()
			g.Components(w[0], w[1])
		}()
	}
}

func BenchmarkComponentCountFull(b *testing.B) {
	g := buildBaseline(b, 12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.ComponentCount(0, g.Stages()-1)
	}
}

func BenchmarkCheckPrefixSuffix(b *testing.B) {
	g := buildBaseline(b, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !AllOK(g.CheckPrefix()) || !AllOK(g.CheckSuffix()) {
			b.Fatal("baseline violated P")
		}
	}
}
