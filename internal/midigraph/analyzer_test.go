package midigraph

import (
	"math/rand/v2"
	"testing"

	"minequiv/internal/perm"
)

// randomGraph builds an arbitrary valid MI-digraph from random link
// permutations — usually non-Banyan, often with parallel arcs, which is
// exactly what the sweep must handle without assuming any property.
func randomGraph(t testing.TB, rng *rand.Rand, n int) *Graph {
	t.Helper()
	perms := make([]perm.Perm, n-1)
	for s := range perms {
		perms[s] = perm.Random(rng, 1<<uint(n))
	}
	g, err := FromLinkPerms(n, perms)
	if err != nil {
		t.Fatalf("FromLinkPerms: %v", err)
	}
	return g
}

// TestAnalyzerMatchesNaive pins the sweep recurrence against the naive
// per-window union-find on random graphs: every window's count, the
// family sweeps, and the full table must agree exactly.
func TestAnalyzerMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewPCG(41, 0))
	a := NewAnalyzer()
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.IntN(6)
		g := randomGraph(t, rng, n)
		for lo := 0; lo < n; lo++ {
			counts := a.SweepCounts(g, lo, nil)
			for hi := lo; hi < n; hi++ {
				want := g.ComponentCountNaive(lo, hi)
				if counts[hi-lo] != want {
					t.Fatalf("n=%d window [%d,%d]: sweep=%d naive=%d", n, lo, hi, counts[hi-lo], want)
				}
				if got := a.ComponentCount(g, lo, hi); got != want {
					t.Fatalf("n=%d window [%d,%d]: analyzer slow path=%d naive=%d", n, lo, hi, got, want)
				}
			}
		}
		suffix := a.SuffixSweepCounts(g, nil)
		for i := 0; i < n; i++ {
			if want := g.ComponentCountNaive(i, n-1); suffix[i] != want {
				t.Fatalf("n=%d suffix [%d,%d]: sweep=%d naive=%d", n, i, n-1, suffix[i], want)
			}
		}
		all := a.CheckAllWindows(g, nil)
		naive := g.CheckAllWindowsNaive()
		if len(all) != len(naive) {
			t.Fatalf("window table lengths differ: %d vs %d", len(all), len(naive))
		}
		for k := range all {
			if all[k] != naive[k] {
				t.Fatalf("window table entry %d differs: %+v vs %+v", k, all[k], naive[k])
			}
		}
	}
}

// TestAnalyzerComponentsMatchGraph pins the flat-table id assignment to
// the documented contract (dense ids in first-seen order), which the
// map-based implementation used to define.
func TestAnalyzerComponentsMatchGraph(t *testing.T) {
	rng := rand.New(rand.NewPCG(43, 0))
	a := NewAnalyzer()
	var ids [][]int32
	for trial := 0; trial < 25; trial++ {
		n := 2 + rng.IntN(5)
		g := randomGraph(t, rng, n)
		lo := rng.IntN(n)
		hi := lo + rng.IntN(n-lo)
		var count int
		ids, count = a.Components(g, lo, hi, ids)
		if want := g.ComponentCountNaive(lo, hi); count != want {
			t.Fatalf("count=%d naive=%d", count, want)
		}
		// Dense, first-seen order: scanning stages then labels, each id
		// must first appear as exactly the previous maximum plus one.
		next := int32(0)
		for t2 := range ids {
			for _, id := range ids[t2] {
				if id < 0 || id >= int32(count) {
					t.Fatalf("id %d out of range [0,%d)", id, count)
				}
				if id == next {
					next++
				} else if id > next {
					t.Fatalf("id %d seen before ids < %d", id, id)
				}
			}
		}
		if next != int32(count) {
			t.Fatalf("saw %d distinct ids, count=%d", next, count)
		}
		// Same stage slices as the Graph convenience method.
		gids, gcount := g.Components(lo, hi)
		if gcount != count {
			t.Fatalf("Graph.Components count=%d analyzer=%d", gcount, count)
		}
		for t2 := range gids {
			for x := range gids[t2] {
				if gids[t2][x] != ids[t2][x] {
					t.Fatalf("ids differ at stage %d label %d: %d vs %d", t2, x, gids[t2][x], ids[t2][x])
				}
			}
		}
	}
}

// TestAnalyzerReuseAcrossSizes verifies one Analyzer can serve graphs of
// different shapes back to back (the pool relies on this).
func TestAnalyzerReuseAcrossSizes(t *testing.T) {
	rng := rand.New(rand.NewPCG(47, 0))
	a := NewAnalyzer()
	for _, n := range []int{6, 3, 5, 2, 7, 4} {
		g := randomGraph(t, rng, n)
		counts := a.SweepCounts(g, 0, a.counts)
		for hi := 0; hi < n; hi++ {
			if want := g.ComponentCountNaive(0, hi); counts[hi] != want {
				t.Fatalf("n=%d prefix hi=%d: sweep=%d naive=%d", n, hi, counts[hi], want)
			}
		}
	}
}

// TestAnalyzerZeroAlloc pins the steady-state allocation contract of the
// sweep core: reused buffers, zero allocations.
func TestAnalyzerZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewPCG(53, 0))
	g := randomGraph(t, rng, 8)
	a := NewAnalyzer()
	buf := a.CheckAllWindows(g, nil)
	counts := a.SweepCounts(g, 0, nil)
	allocs := testing.AllocsPerRun(20, func() {
		buf = a.CheckAllWindows(g, buf)
		counts = a.SweepCounts(g, 0, counts)
		_ = a.ComponentCount(g, 2, 5)
	})
	if allocs != 0 {
		t.Fatalf("steady-state Analyzer allocations: got %v, want 0", allocs)
	}
}
