package midigraph

import (
	"math/rand/v2"
	"testing"

	"minequiv/internal/perm"
)

func TestBaselineIsBanyan(t *testing.T) {
	for n := 2; n <= 10; n++ {
		g := buildBaseline(t, n)
		ok, v := g.IsBanyan()
		if !ok {
			t.Fatalf("n=%d: baseline not Banyan: %v", n, v)
		}
	}
}

func TestPathCountMatrixRowsSum(t *testing.T) {
	// Every first-stage node has exactly 2^(n-1) outgoing paths in any
	// valid MI-digraph, Banyan or not.
	g := buildBaseline(t, 6)
	for _, row := range g.PathCountMatrix() {
		var sum uint64
		for _, c := range row {
			sum += c
		}
		if sum != uint64(g.CellsPerStage()) {
			t.Fatalf("row sums to %d, want %d", sum, g.CellsPerStage())
		}
	}
}

func TestParallelArcsBreakBanyan(t *testing.T) {
	// Fig 5: a stage with double links cannot be Banyan. Build a 3-stage
	// graph whose middle connection doubles every arc.
	g := buildBaseline(t, 3)
	h := uint32(g.CellsPerStage())
	for y := uint32(0); y < h; y++ {
		// Double arc to a single child; pair consecutive nodes so
		// indegree stays 2.
		g.SetChildren(1, y, y^1, y^1)
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("double-link graph should validate: %v", err)
	}
	ok, v := g.IsBanyan()
	if ok {
		t.Fatal("double-link graph reported Banyan")
	}
	if v == nil || v.Paths == 1 {
		t.Fatalf("violation should report a count != 1, got %+v", v)
	}
	if v.Error() == "" {
		t.Error("violation has empty error text")
	}
}

func TestZeroPathViolation(t *testing.T) {
	// A graph where some input cannot reach some output: two disjoint
	// column pairs. Stage connections map each pair onto itself.
	g := New(3)
	for y := uint32(0); y < 4; y++ {
		pairBase := y &^ 1
		g.SetChildren(0, y, pairBase, pairBase|1)
		g.SetChildren(1, y, pairBase, pairBase|1)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	ok, v := g.IsBanyan()
	if ok {
		t.Fatal("disconnected graph reported Banyan")
	}
	if v.Paths != 0 && v.Paths != 2 {
		t.Fatalf("unexpected violation %+v", v)
	}
	sizes := g.ReachableSetSizes()
	for _, s := range sizes {
		if s != 2 {
			t.Fatalf("ReachableSetSizes = %v, want all 2", sizes)
		}
	}
}

func TestBanyanInvariantUnderRelabel(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 0))
	g := buildBaseline(t, 5)
	for trial := 0; trial < 10; trial++ {
		perms := make([]perm.Perm, g.Stages())
		for s := range perms {
			perms[s] = perm.Random(rng, g.CellsPerStage())
		}
		r, err := g.Relabel(perms)
		if err != nil {
			t.Fatal(err)
		}
		if ok, v := r.IsBanyan(); !ok {
			t.Fatalf("relabeled baseline not Banyan: %v", v)
		}
		// P properties are isomorphism-invariant too.
		if !AllOK(r.CheckPrefix()) || !AllOK(r.CheckSuffix()) {
			t.Fatal("relabeled baseline lost P properties")
		}
	}
}

func TestReachableSetSizesBanyan(t *testing.T) {
	g := buildBaseline(t, 5)
	for _, s := range g.ReachableSetSizes() {
		if s != g.CellsPerStage() {
			t.Fatalf("banyan input reaches %d outputs, want %d", s, g.CellsPerStage())
		}
	}
}

func BenchmarkIsBanyan(b *testing.B) {
	g := buildBaseline(b, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ok, _ := g.IsBanyan(); !ok {
			b.Fatal("baseline not banyan")
		}
	}
}

func BenchmarkPathCountsFrom(b *testing.B) {
	g := buildBaseline(b, 14)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.PathCountsFrom(uint32(i % g.CellsPerStage()))
	}
}
