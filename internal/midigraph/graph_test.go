package midigraph

import (
	"math/rand/v2"
	"strings"
	"testing"

	"minequiv/internal/perm"
)

// buildBaseline constructs the Baseline network without importing
// topology (which would be a cycle); the closed-form connection is small
// enough to restate here and is itself cross-validated in topology's
// tests against the paper's recursive definition.
func buildBaseline(t testing.TB, n int) *Graph {
	t.Helper()
	m := n - 1
	fs := make([]func(uint64) uint64, n-1)
	gs := make([]func(uint64) uint64, n-1)
	for s := 0; s < n-1; s++ {
		low := uint64(1)<<uint(m-s) - 1
		high := (uint64(1)<<uint(m) - 1) &^ low
		bit := uint64(1) << uint(m-1-s)
		fs[s] = func(x uint64) uint64 { return (x & high) | ((x & low) >> 1) }
		gs[s] = func(x uint64) uint64 { return (x&high | ((x & low) >> 1)) | bit }
	}
	g, err := FromChildFuncs(n, fs, gs)
	if err != nil {
		t.Fatalf("baseline build failed: %v", err)
	}
	return g
}

func TestNewShape(t *testing.T) {
	g := New(4)
	if g.Stages() != 4 || g.CellsPerStage() != 8 || g.LabelBits() != 3 || g.Terminals() != 16 {
		t.Fatalf("shape wrong: %d stages, %d cells, %d bits, %d terminals",
			g.Stages(), g.CellsPerStage(), g.LabelBits(), g.Terminals())
	}
	if g.ArcCount() != 3*16 {
		t.Fatalf("ArcCount = %d", g.ArcCount())
	}
	// Unset graph fails validation.
	if err := g.Validate(); err == nil {
		t.Error("unset graph validated")
	}
	for _, bad := range []int{0, -1, MaxStages + 1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d) did not panic", bad)
				}
			}()
			New(bad)
		}()
	}
}

func TestSetGetChildren(t *testing.T) {
	g := New(2)
	g.SetChildren(0, 0, 1, 0)
	g.SetChildren(0, 1, 0, 1)
	f, c := g.Children(0, 0)
	if f != 1 || c != 0 {
		t.Fatalf("Children(0,0) = %d,%d", f, c)
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("valid graph rejected: %v", err)
	}
}

func TestValidateDegrees(t *testing.T) {
	// Node with indegree 4 / another with 0.
	g := New(2)
	g.SetChildren(0, 0, 0, 0)
	g.SetChildren(0, 1, 0, 0)
	if err := g.Validate(); err == nil {
		t.Error("indegree-4 graph validated")
	}
	// Out-of-range child.
	g2 := New(2)
	g2.SetChildren(0, 0, 5, 0)
	g2.SetChildren(0, 1, 0, 1)
	if err := g2.Validate(); err == nil {
		t.Error("out-of-range child validated")
	}
	// Parallel arcs validate (they are legal MI-digraphs, Fig 5).
	g3 := New(2)
	g3.SetChildren(0, 0, 0, 0)
	g3.SetChildren(0, 1, 1, 1)
	if err := g3.Validate(); err != nil {
		t.Errorf("parallel-arc graph rejected: %v", err)
	}
	if !g3.HasParallelArcs() {
		t.Error("parallel arcs not detected")
	}
	if buildBaseline(t, 4).HasParallelArcs() {
		t.Error("baseline reported parallel arcs")
	}
}

func TestParents(t *testing.T) {
	g := buildBaseline(t, 4)
	// Check Parents against a full scan for every node of stages 1..3.
	for s := 1; s < g.Stages(); s++ {
		table := g.ParentTable(s)
		for x := uint32(0); x < uint32(g.CellsPerStage()); x++ {
			ps := g.Parents(s, x)
			if len(ps) != 2 {
				t.Fatalf("stage %d node %d: %d parents", s, x, len(ps))
			}
			// Same multiset as ParentTable.
			a, b := table[x][0], table[x][1]
			if !(ps[0] == a && ps[1] == b || ps[0] == b && ps[1] == a) {
				t.Fatalf("Parents/ParentTable disagree at (%d,%d): %v vs %v", s, x, ps, table[x])
			}
			// Each claimed parent really lists x as a child.
			for _, p := range ps {
				f, c := g.Children(s-1, p)
				if f != x && c != x {
					t.Fatalf("claimed parent %d of (%d,%d) has children %d,%d", p, s, x, f, c)
				}
			}
		}
	}
}

func TestCloneEqual(t *testing.T) {
	g := buildBaseline(t, 5)
	c := g.Clone()
	if !g.Equal(c) {
		t.Fatal("clone not equal")
	}
	c.SetChildren(0, 0, 0, 1)
	if g.Equal(c) {
		t.Fatal("mutated clone still equal")
	}
	if g.Equal(buildBaseline(t, 4)) {
		t.Fatal("different sizes equal")
	}
}

func TestEqualUnordered(t *testing.T) {
	g := buildBaseline(t, 4)
	// Swap the (f,g) slots of every node: unordered-equal, not equal.
	sw := g.Clone()
	for s := 0; s < sw.Stages()-1; s++ {
		for x := uint32(0); x < uint32(sw.CellsPerStage()); x++ {
			f, c := sw.Children(s, x)
			sw.SetChildren(s, x, c, f)
		}
	}
	if g.Equal(sw) {
		t.Fatal("slot-swapped graph Equal")
	}
	if !g.EqualUnordered(sw) {
		t.Fatal("slot-swapped graph not EqualUnordered")
	}
	// A genuinely different graph is not EqualUnordered. (Baseline nodes
	// 0 and 1 are buddies with identical children, so use nodes 0 and 2,
	// whose g-children differ; swapping them preserves indegrees.)
	other := g.Clone()
	f0, c0 := other.Children(0, 0)
	f2, c2 := other.Children(0, 2)
	if c0 == c2 {
		t.Fatal("test premise wrong: nodes 0 and 2 share g-child")
	}
	other.SetChildren(0, 0, f0, c2)
	other.SetChildren(0, 2, f2, c0)
	if err := other.Validate(); err != nil {
		t.Fatalf("swapped graph invalid: %v", err)
	}
	if g.EqualUnordered(other) {
		t.Fatal("different graph EqualUnordered")
	}
}

func TestReverseInvolution(t *testing.T) {
	g := buildBaseline(t, 5)
	r := g.Reverse()
	if err := r.Validate(); err != nil {
		t.Fatalf("reverse invalid: %v", err)
	}
	// Reversing twice restores the digraph (up to slot order).
	rr := r.Reverse()
	if !g.EqualUnordered(rr) {
		t.Fatal("double reverse != original")
	}
	// Arc sets correspond: x->y in g iff y->x' position in r.
	n := g.Stages()
	for s := 0; s < n-1; s++ {
		for x := uint32(0); x < uint32(g.CellsPerStage()); x++ {
			f, c := g.Children(s, x)
			for _, y := range []uint32{f, c} {
				rf, rc := r.Children(n-2-s, y)
				if rf != x && rc != x {
					t.Fatalf("arc (%d,%d)->(%d,%d) missing in reverse", s, x, s+1, y)
				}
			}
		}
	}
}

func TestRelabelIsomorphic(t *testing.T) {
	g := buildBaseline(t, 4)
	rng := rand.New(rand.NewPCG(1, 0))
	perms := make([]perm.Perm, g.Stages())
	for s := range perms {
		perms[s] = perm.Random(rng, g.CellsPerStage())
	}
	r, err := g.Relabel(perms)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Validate(); err != nil {
		t.Fatalf("relabeled graph invalid: %v", err)
	}
	// Adjacency transported: x->y in g iff perm(x)->perm(y) in r.
	for s := 0; s < g.Stages()-1; s++ {
		for x := uint32(0); x < uint32(g.CellsPerStage()); x++ {
			f, c := g.Children(s, x)
			rf, rc := r.Children(s, uint32(perms[s][x]))
			if rf != uint32(perms[s+1][f]) || rc != uint32(perms[s+1][c]) {
				t.Fatalf("relabel broke adjacency at (%d,%d)", s, x)
			}
		}
	}
	// Identity relabel is the identity.
	id := make([]perm.Perm, g.Stages())
	for s := range id {
		id[s] = perm.Identity(g.CellsPerStage())
	}
	same, err := g.Relabel(id)
	if err != nil || !g.Equal(same) {
		t.Fatal("identity relabel changed graph")
	}
	// Shape errors.
	if _, err := g.Relabel(perms[:2]); err == nil {
		t.Error("short perm list accepted")
	}
	bad := make([]perm.Perm, g.Stages())
	for s := range bad {
		bad[s] = perm.Identity(3)
	}
	if _, err := g.Relabel(bad); err == nil {
		t.Error("wrong-size perms accepted")
	}
}

func TestFromChildFuncsErrors(t *testing.T) {
	if _, err := FromChildFuncs(3, nil, nil); err == nil {
		t.Error("missing funcs accepted")
	}
	// Function returning out-of-range child.
	fs := []func(uint64) uint64{func(x uint64) uint64 { return 99 }}
	gs := []func(uint64) uint64{func(x uint64) uint64 { return 0 }}
	if _, err := FromChildFuncs(2, fs, gs); err == nil {
		t.Error("out-of-range child func accepted")
	}
	// Non-2-regular indegree rejected by the validation pass.
	fs = []func(uint64) uint64{func(x uint64) uint64 { return 0 }}
	gs = []func(uint64) uint64{func(x uint64) uint64 { return 0 }}
	if _, err := FromChildFuncs(2, fs, gs); err == nil {
		t.Error("indegree-4 construction accepted")
	}
}

func TestFromLinkPerms(t *testing.T) {
	// 2-stage network with identity link permutation: cell x connects to
	// cells of link labels 2x and 2x+1, i.e. children (x? ...). Identity:
	// outlink 2x -> inlink 2x -> cell x; outlink 2x+1 -> cell x: parallel!
	id := perm.Identity(4)
	g, err := FromLinkPerms(2, []perm.Perm{id})
	if err != nil {
		t.Fatal(err)
	}
	if !g.HasParallelArcs() {
		t.Error("identity link perm should give double links (Fig 5)")
	}
	// Shuffle on 4 links: outlink y -> rotate-left(y,2).
	sh, _ := perm.FromFunc(4, func(x uint64) uint64 { return ((x << 1) | (x >> 1)) & 3 })
	g2, err := FromLinkPerms(2, []perm.Perm{sh})
	if err != nil {
		t.Fatal(err)
	}
	// Cell 0: outlinks 0,1 -> links 0,2 -> cells 0,1. No parallel arcs.
	f, c := g2.Children(0, 0)
	if f != 0 || c != 1 {
		t.Fatalf("shuffle children of 0 = %d,%d", f, c)
	}
	if g2.HasParallelArcs() {
		t.Error("shuffle stage has no double links")
	}
	// Errors: wrong count, wrong size, invalid permutation.
	if _, err := FromLinkPerms(3, []perm.Perm{id}); err == nil {
		t.Error("wrong perm count accepted")
	}
	if _, err := FromLinkPerms(2, []perm.Perm{perm.Identity(8)}); err == nil {
		t.Error("wrong perm size accepted")
	}
	if _, err := FromLinkPerms(2, []perm.Perm{{0, 0, 1, 2}}); err == nil {
		t.Error("non-bijection accepted")
	}
}

func TestString(t *testing.T) {
	g := New(2)
	g.SetChildren(0, 0, 0, 1)
	g.SetChildren(0, 1, 1, 0)
	s := g.String()
	if !strings.Contains(s, "stage 0:") || !strings.Contains(s, "0->(0,1)") {
		t.Errorf("String = %q", s)
	}
	if g.LabelTuple(1) != "(1)" {
		t.Errorf("LabelTuple = %q", g.LabelTuple(1))
	}
}

func TestChildSlice(t *testing.T) {
	g := buildBaseline(t, 3)
	row := g.ChildSlice(0)
	if len(row) != 2*g.CellsPerStage() {
		t.Fatalf("ChildSlice length %d", len(row))
	}
	for x := 0; x < g.CellsPerStage(); x++ {
		f, c := g.Children(0, uint32(x))
		if row[2*x] != f || row[2*x+1] != c {
			t.Fatalf("ChildSlice disagrees with Children at %d", x)
		}
	}
}

func TestBuddyStagePanicsOutOfRange(t *testing.T) {
	g := buildBaseline(t, 3)
	if !g.BuddyProperty() {
		t.Fatal("baseline should have buddy property")
	}
	defer func() {
		if recover() == nil {
			t.Error("BuddyStage out of range did not panic")
		}
	}()
	g.BuddyStage(2) // only stages 0..1 have connections for n=3
}
