package midigraph

import (
	"math/rand/v2"
	"testing"

	"minequiv/internal/perm"
)

// randomValidGraph builds an arbitrary valid MI-digraph from two random
// permutations per stage (local helper; the randnet package cannot be
// imported here without a cycle).
func randomValidGraph(rng *rand.Rand, n int) *Graph {
	g := New(n)
	h := g.CellsPerStage()
	for s := 0; s < n-1; s++ {
		pf := perm.Random(rng, h)
		pg := perm.Random(rng, h)
		for x := 0; x < h; x++ {
			g.SetChildren(s, uint32(x), uint32(pf[x]), uint32(pg[x]))
		}
	}
	return g
}

// Property: window component counts are invariant under relabeling.
func TestComponentCountRelabelInvariant(t *testing.T) {
	rng := rand.New(rand.NewPCG(100, 0))
	for trial := 0; trial < 60; trial++ {
		n := rng.IntN(5) + 2
		g := randomValidGraph(rng, n)
		perms := make([]perm.Perm, n)
		for s := range perms {
			perms[s] = perm.Random(rng, g.CellsPerStage())
		}
		r, err := g.Relabel(perms)
		if err != nil {
			t.Fatal(err)
		}
		lo := rng.IntN(n)
		hi := lo + rng.IntN(n-lo)
		if g.ComponentCount(lo, hi) != r.ComponentCount(lo, hi) {
			t.Fatalf("relabeling changed component count of window (%d,%d)", lo, hi)
		}
	}
}

// Property: window duality between G and its reverse holds for arbitrary
// valid MI-digraphs, not just equivalent ones.
func TestWindowDualityProperty(t *testing.T) {
	rng := rand.New(rand.NewPCG(101, 0))
	for trial := 0; trial < 60; trial++ {
		n := rng.IntN(5) + 2
		g := randomValidGraph(rng, n)
		if bad := g.WindowDuality(); bad != nil {
			t.Fatalf("duality violated: %v vs %v", bad[0], bad[1])
		}
	}
	// And on the structured graphs.
	g := buildBaseline(t, 6)
	if bad := g.WindowDuality(); bad != nil {
		t.Fatalf("baseline duality violated: %v", bad)
	}
}

// Property: Banyan is preserved by reversal (paths reverse bijectively).
func TestBanyanReverseProperty(t *testing.T) {
	rng := rand.New(rand.NewPCG(102, 0))
	for trial := 0; trial < 40; trial++ {
		n := rng.IntN(4) + 2
		g := randomValidGraph(rng, n)
		fwd, _ := g.IsBanyan()
		rev, _ := g.Reverse().IsBanyan()
		if fwd != rev {
			t.Fatalf("banyan not reverse-invariant (fwd=%v rev=%v)", fwd, rev)
		}
	}
}

// Property: total path counts from any source equal 2^(n-1) regardless of
// structure (each node always fans out by 2).
func TestPathCountTotalProperty(t *testing.T) {
	rng := rand.New(rand.NewPCG(103, 0))
	for trial := 0; trial < 40; trial++ {
		n := rng.IntN(5) + 2
		g := randomValidGraph(rng, n)
		src := uint32(rng.IntN(g.CellsPerStage()))
		var sum uint64
		for _, c := range g.PathCountsFrom(src) {
			sum += c
		}
		if sum != uint64(g.CellsPerStage()) {
			t.Fatalf("path count total %d, want %d", sum, g.CellsPerStage())
		}
	}
}

// Property: the component id slices returned by Components are exactly
// the equivalence classes refined by ComponentCount: counting ids equals
// the count, for random windows of random graphs.
func TestComponentsCountAgreement(t *testing.T) {
	rng := rand.New(rand.NewPCG(104, 0))
	for trial := 0; trial < 60; trial++ {
		n := rng.IntN(5) + 2
		g := randomValidGraph(rng, n)
		lo := rng.IntN(n)
		hi := lo + rng.IntN(n-lo)
		ids, count := g.Components(lo, hi)
		if g.ComponentCount(lo, hi) != count {
			t.Fatal("Components and ComponentCount disagree")
		}
		maxID := int32(-1)
		for _, stage := range ids {
			for _, id := range stage {
				if id > maxID {
					maxID = id
				}
			}
		}
		if int(maxID)+1 != count {
			t.Fatalf("id range %d != count %d", maxID+1, count)
		}
	}
}
