package midigraph

import (
	"fmt"
)

// unionFind is a plain weighted quick-union with path halving. It backs
// only the *naive* reference implementations below; the production path
// is the sweep-based Analyzer (analyzer.go), which owns reusable
// scratch instead of rebuilding these slices per window.
type unionFind struct {
	parent []int32
	size   []int32
	count  int
}

func newUnionFind(n int) *unionFind {
	uf := &unionFind{parent: make([]int32, n), size: make([]int32, n), count: n}
	for i := range uf.parent {
		uf.parent[i] = int32(i)
		uf.size[i] = 1
	}
	return uf
}

func (uf *unionFind) find(x int32) int32 {
	for uf.parent[x] != x {
		uf.parent[x] = uf.parent[uf.parent[x]]
		x = uf.parent[x]
	}
	return x
}

func (uf *unionFind) union(a, b int32) {
	ra, rb := uf.find(a), uf.find(b)
	if ra == rb {
		return
	}
	if uf.size[ra] < uf.size[rb] {
		ra, rb = rb, ra
	}
	uf.parent[rb] = ra
	uf.size[ra] += uf.size[rb]
	uf.count--
}

// Components computes the connected components of the window (G)_{lo..hi}
// (0-based, inclusive): the subgraph on the nodes of stages lo..hi with
// the arcs between them, connectivity taken in the underlying undirected
// graph as the paper prescribes.
//
// It returns one slice per window stage mapping each node label to a
// component id in [0, count), ids dense and assigned in first-seen order
// (scanning stages then labels), plus the component count. The returned
// slices are freshly allocated; the union-find scratch behind them is
// pooled (see Analyzer.Components for full buffer reuse).
func (g *Graph) Components(lo, hi int) (ids [][]int32, count int) {
	a := analyzerPool.Get().(*Analyzer)
	ids, count = a.Components(g, lo, hi, nil)
	analyzerPool.Put(a)
	return ids, count
}

// ComponentCount returns only the number of connected components of the
// 0-based window (G)_{lo..hi}, skipping the id assignment. Scratch is
// pooled; use an explicit Analyzer for allocation-free loops.
func (g *Graph) ComponentCount(lo, hi int) int {
	a := analyzerPool.Get().(*Analyzer)
	count := a.ComponentCount(g, lo, hi)
	analyzerPool.Put(a)
	return count
}

// ComponentCountNaive is the pre-sweep reference implementation: a fresh
// union-find rebuilt for this one window. It is retained as ground truth
// for the sweep property tests and the speedup benchmarks; production
// callers go through ComponentCount/Analyzer.
func (g *Graph) ComponentCountNaive(lo, hi int) int {
	if lo < 0 || hi >= g.n || lo > hi {
		panic(fmt.Sprintf("midigraph: window [%d,%d] invalid for %d stages", lo, hi, g.n))
	}
	width := hi - lo + 1
	uf := newUnionFind(width * g.h)
	for s := lo; s < hi; s++ {
		t := s - lo
		for x := 0; x < g.h; x++ {
			f, c := g.Children(s, uint32(x))
			uf.union(int32(t*g.h+x), int32((t+1)*g.h+int(f)))
			uf.union(int32(t*g.h+x), int32((t+1)*g.h+int(c)))
		}
	}
	return uf.count
}

// CheckAllWindowsNaive is the pre-sweep reference for the full window
// table, kept alongside ComponentCountNaive for tests and benchmarks.
func (g *Graph) CheckAllWindowsNaive() []WindowResult {
	var out []WindowResult
	for i := 1; i <= g.n; i++ {
		for j := i; j <= g.n; j++ {
			out = append(out, WindowResult{
				I: i, J: j,
				Got:      g.ComponentCountNaive(i-1, j-1),
				Expected: g.ExpectedComponents(i, j),
			})
		}
	}
	return out
}

// ExpectedComponents returns the component count the P(i,j) property
// demands of a window spanning paper stages i..j: 2^(n-1-(j-i)).
func (g *Graph) ExpectedComponents(i, j int) int {
	span := j - i
	if span < 0 || span > g.n-1 {
		panic(fmt.Sprintf("midigraph: window span %d invalid", span))
	}
	return 1 << uint(g.n-1-span)
}

// PropertyP checks the paper's P(i,j) property with the PAPER'S 1-BASED
// stage convention (1 <= i <= j <= n): the window (G)_{i..j} must have
// exactly 2^(n-1-(j-i)) connected components.
func (g *Graph) PropertyP(i, j int) bool {
	if i < 1 || j > g.n || i > j {
		panic(fmt.Sprintf("midigraph: P(%d,%d) invalid for n=%d (1-based)", i, j, g.n))
	}
	return g.ComponentCount(i-1, j-1) == g.ExpectedComponents(i, j)
}

// WindowResult records one window's component count versus the P target.
type WindowResult struct {
	I, J     int // paper 1-based stage bounds
	Got      int
	Expected int
}

// OK reports whether the window satisfied its P property.
func (w WindowResult) OK() bool { return w.Got == w.Expected }

func (w WindowResult) String() string {
	status := "ok"
	if !w.OK() {
		status = "VIOLATED"
	}
	return fmt.Sprintf("P(%d,%d): components=%d expected=%d %s", w.I, w.J, w.Got, w.Expected, status)
}

// CheckPrefix evaluates the P(1,*) family: P(1,j) for every j in [1,n],
// as one left-to-right sweep (O(n·h·α) for the whole family). It returns
// per-window results; the property holds iff all are OK.
func (g *Graph) CheckPrefix() []WindowResult {
	a := analyzerPool.Get().(*Analyzer)
	out := a.CheckPrefix(g, make([]WindowResult, 0, g.n))
	analyzerPool.Put(a)
	return out
}

// CheckSuffix evaluates the P(*,n) family: P(i,n) for every i in [1,n],
// as one right-to-left sweep.
func (g *Graph) CheckSuffix() []WindowResult {
	a := analyzerPool.Get().(*Analyzer)
	out := a.CheckSuffix(g, make([]WindowResult, 0, g.n))
	analyzerPool.Put(a)
	return out
}

// CheckAllWindows evaluates P(i,j) for every 1 <= i <= j <= n, one sweep
// per left edge (O(n²·h·α) total). The characterization theorem only
// needs the prefix and suffix families; the full table is used by
// experiments and by the counterexample analysis.
func (g *Graph) CheckAllWindows() []WindowResult {
	a := analyzerPool.Get().(*Analyzer)
	out := a.CheckAllWindows(g, make([]WindowResult, 0, g.n*(g.n+1)/2))
	analyzerPool.Put(a)
	return out
}

// AllOK reports whether every window result in rs satisfies P.
func AllOK(rs []WindowResult) bool {
	for _, r := range rs {
		if !r.OK() {
			return false
		}
	}
	return true
}

// Violations filters rs down to the violated windows.
func Violations(rs []WindowResult) []WindowResult {
	var out []WindowResult
	for _, r := range rs {
		if !r.OK() {
			out = append(out, r)
		}
	}
	return out
}

// BuddyStage reports whether the connection out of stage s has Agrawal's
// buddy structure: any two cells sharing one child share both children
// (equivalently, the two-stage window decomposes into disjoint K_{2,2}
// blocks). The paper's §1 recalls that this property for every stage was
// claimed sufficient for baseline-equivalence in [8] and refuted in [10];
// see randnet.BuddyTwist for the refuting graph.
func (g *Graph) BuddyStage(s int) bool {
	if s < 0 || s >= g.n-1 {
		panic(fmt.Sprintf("midigraph: BuddyStage(%d) out of range [0,%d)", s, g.n-1))
	}
	table := g.ParentTable(s + 1)
	for x := 0; x < g.h; x++ {
		f, c := g.Children(s, uint32(x))
		if f == c {
			return false // double link: no buddy pairing
		}
		// The other parent of f must equal the other parent of c.
		pf, pc := table[f], table[c]
		of := pf[0]
		if of == uint32(x) {
			of = pf[1]
		}
		oc := pc[0]
		if oc == uint32(x) {
			oc = pc[1]
		}
		if of != oc {
			return false
		}
		// And that buddy must have exactly the children {f, c}.
		bf, bc := g.Children(s, of)
		if !(bf == f && bc == c || bf == c && bc == f) {
			return false
		}
	}
	return true
}

// BuddyProperty reports whether every stage has the buddy structure.
func (g *Graph) BuddyProperty() bool {
	for s := 0; s < g.n-1; s++ {
		if !g.BuddyStage(s) {
			return false
		}
	}
	return true
}

// WindowDuality verifies the reversal symmetry of the window properties
// on this graph: the window (i..j) of G and the window (n+1-j .. n+1-i)
// of the reverse digraph are the same undirected subgraph, so their
// component counts must agree for every window. It returns the first
// disagreeing pair, or nil. (Always nil — this is a structural identity;
// the method exists as an executable sanity check used by tests and as
// the formal bridge between the paper's P(1,*) and P(*,n) families.)
func (g *Graph) WindowDuality() *[2]WindowResult {
	r := g.Reverse()
	for i := 1; i <= g.n; i++ {
		for j := i; j <= g.n; j++ {
			a := WindowResult{I: i, J: j, Got: g.ComponentCount(i-1, j-1), Expected: g.ExpectedComponents(i, j)}
			ri, rj := g.n+1-j, g.n+1-i
			b := WindowResult{I: ri, J: rj, Got: r.ComponentCount(ri-1, rj-1), Expected: r.ExpectedComponents(ri, rj)}
			if a.Got != b.Got {
				return &[2]WindowResult{a, b}
			}
		}
	}
	return nil
}

// StageIntersection describes how one component of a window meets each
// stage of the window — the quantity |C ∩ V_k| that drives the induction
// of Lemma 2 and that Fig 3 of the paper illustrates.
type StageIntersection struct {
	Component int
	PerStage  []int // PerStage[t] = |C ∩ V_{lo+t}|, 0-based window offset
}

// ComponentStageTable returns, for the 0-based window (G)_{lo..hi}, the
// per-component stage intersection counts, components in id order.
func (g *Graph) ComponentStageTable(lo, hi int) []StageIntersection {
	ids, count := g.Components(lo, hi)
	out := make([]StageIntersection, count)
	width := hi - lo + 1
	for c := range out {
		out[c] = StageIntersection{Component: c, PerStage: make([]int, width)}
	}
	for t := 0; t < width; t++ {
		for x := 0; x < g.h; x++ {
			out[ids[t][x]].PerStage[t]++
		}
	}
	return out
}
