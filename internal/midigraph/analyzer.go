package midigraph

import (
	"fmt"
	"sync"
)

// Analyzer owns every piece of scratch the window analyses need: the
// union-find parent/size arrays, the flat root→dense-id table that
// replaces the old per-window `map[int32]int32`, and the reusable
// counts/result buffers. A zero-cost steady state is the point: once an
// Analyzer has been sized for a graph, every method on it runs with
// 0 allocs/op.
//
// The prefix family P(1,*), the suffix family P(*,n) and the full
// window table are computed by *sweeps* rather than per-window
// recomputation. The key observation is that the windows of a family
// are nested and arcs are only ever added as the window grows, so a
// single union-find can be carried across the whole family:
//
//	components(lo..hi+1) = components(lo..hi) + h − merges(hi→hi+1)
//
// where activating stage hi+1 contributes h fresh singleton nodes and
// each successful union of one of its 2h in-arcs removes one component.
// One left-to-right sweep therefore yields every prefix count in
// O(n·h·α) total, one right-to-left sweep every suffix count, and n
// sweeps (one per left edge) the full O(n²) window table in
// O(n²·h·α) — versus O(n³·h·α) for the old per-window rebuilds.
//
// An Analyzer is not safe for concurrent use; use one per goroutine
// (the package keeps a pool for the Graph convenience methods).
type Analyzer struct {
	parent []int32 // union-find parents, element (s,x) = s*h+x
	size   []int32 // union-by-size weights
	rootID []int32 // flat root element -> dense component id, -1 = unseen
	counts []int   // per-window running component counts
	count  int     // live component count of the current sweep
	h      int     // cells per stage of the graph being analyzed
}

// NewAnalyzer returns an empty Analyzer; scratch grows on first use and
// is retained across calls.
func NewAnalyzer() *Analyzer { return &Analyzer{} }

// analyzerPool backs the Graph convenience wrappers so that even
// one-shot calls reuse scratch across the process.
var analyzerPool = sync.Pool{New: func() any { return NewAnalyzer() }}

// grow ensures capacity for a graph with n stages of h cells.
func (a *Analyzer) grow(g *Graph) {
	need := g.n * g.h
	if cap(a.parent) < need {
		a.parent = make([]int32, need)
		a.size = make([]int32, need)
		a.rootID = make([]int32, need)
	}
	a.parent = a.parent[:need]
	a.size = a.size[:need]
	a.rootID = a.rootID[:need]
	a.h = g.h
}

// activate resets stage s to h singleton components and counts them in.
func (a *Analyzer) activate(s int) {
	base := int32(s * a.h)
	for i := base; i < base+int32(a.h); i++ {
		a.parent[i] = i
		a.size[i] = 1
	}
	a.count += a.h
}

func (a *Analyzer) find(x int32) int32 {
	for a.parent[x] != x {
		a.parent[x] = a.parent[a.parent[x]]
		x = a.parent[x]
	}
	return x
}

func (a *Analyzer) union(x, y int32) {
	rx, ry := a.find(x), a.find(y)
	if rx == ry {
		return
	}
	if a.size[rx] < a.size[ry] {
		rx, ry = ry, rx
	}
	a.parent[ry] = rx
	a.size[rx] += a.size[ry]
	a.count--
}

// unionStage unions the 2h arcs from stage s into stage s+1. Both
// stages must be active.
func (a *Analyzer) unionStage(g *Graph, s int) {
	row := g.children[s]
	base := int32(s * a.h)
	next := base + int32(a.h)
	for x := 0; x < a.h; x++ {
		a.union(base+int32(x), next+int32(row[2*x]))
		a.union(base+int32(x), next+int32(row[2*x+1]))
	}
}

// SweepCounts computes, in one left-to-right sweep, the component count
// of every window (lo..hi) for hi = lo..n-1. The result is written into
// counts (reused when capacity allows) with counts[hi-lo] =
// ComponentCount(lo, hi). O((n-lo)·h·α) total for the whole family.
//
//minlint:hotpath
func (a *Analyzer) SweepCounts(g *Graph, lo int, counts []int) []int {
	if lo < 0 || lo >= g.n {
		panic(fmt.Sprintf("midigraph: sweep start %d invalid for %d stages", lo, g.n))
	}
	a.grow(g)
	counts = counts[:0]
	a.count = 0
	a.activate(lo)
	counts = append(counts, a.count)
	for s := lo + 1; s < g.n; s++ {
		a.activate(s)
		a.unionStage(g, s-1)
		counts = append(counts, a.count)
	}
	return counts
}

// SuffixSweepCounts computes, in one right-to-left sweep, the component
// count of every window (i..n-1) for i = n-1..0, written with
// counts[i] = ComponentCount(i, n-1).
func (a *Analyzer) SuffixSweepCounts(g *Graph, counts []int) []int {
	a.grow(g)
	if cap(counts) < g.n {
		counts = make([]int, g.n)
	}
	counts = counts[:g.n]
	a.count = 0
	a.activate(g.n - 1)
	counts[g.n-1] = a.count
	for s := g.n - 2; s >= 0; s-- {
		a.activate(s)
		a.unionStage(g, s)
		counts[s] = a.count
	}
	return counts
}

// ComponentCount returns the number of connected components of the
// 0-based window (G)_{lo..hi}, reusing the Analyzer's scratch. This is
// the general-window slow path: a fresh union pass over the window's
// arcs, O(width·h·α), with zero allocations.
func (a *Analyzer) ComponentCount(g *Graph, lo, hi int) int {
	if lo < 0 || hi >= g.n || lo > hi {
		panic(fmt.Sprintf("midigraph: window [%d,%d] invalid for %d stages", lo, hi, g.n))
	}
	a.grow(g)
	a.count = 0
	a.activate(lo)
	for s := lo + 1; s <= hi; s++ {
		a.activate(s)
		a.unionStage(g, s-1)
	}
	return a.count
}

// Components computes the window's per-stage dense component ids, ids
// assigned in first-seen order exactly like Graph.Components, using the
// flat rootID table instead of a map. The ids buffer is reused when its
// shape allows; the returned slices alias it.
func (a *Analyzer) Components(g *Graph, lo, hi int, ids [][]int32) ([][]int32, int) {
	count := a.ComponentCount(g, lo, hi)
	width := hi - lo + 1
	if cap(ids) < width {
		ids = make([][]int32, width)
	}
	ids = ids[:width]
	for t := 0; t < width; t++ {
		if cap(ids[t]) < g.h {
			ids[t] = make([]int32, g.h)
		}
		ids[t] = ids[t][:g.h]
	}
	base := int32(lo * a.h)
	for i := base; i < int32((hi+1)*a.h); i++ {
		a.rootID[i] = -1
	}
	next := int32(0)
	for t := 0; t < width; t++ {
		stage := int32((lo + t) * a.h)
		for x := 0; x < g.h; x++ {
			r := a.find(stage + int32(x))
			if a.rootID[r] < 0 {
				a.rootID[r] = next
				next++
			}
			ids[t][x] = a.rootID[r]
		}
	}
	return ids, count
}

// CheckPrefix evaluates the P(1,*) family in one sweep, appending into
// buf (pass nil to allocate, reuse for 0 allocs/op).
func (a *Analyzer) CheckPrefix(g *Graph, buf []WindowResult) []WindowResult {
	a.counts = a.SweepCounts(g, 0, a.counts)
	buf = buf[:0]
	for j := 1; j <= g.n; j++ {
		buf = append(buf, WindowResult{
			I: 1, J: j, Got: a.counts[j-1], Expected: g.ExpectedComponents(1, j),
		})
	}
	return buf
}

// CheckSuffix evaluates the P(*,n) family in one sweep.
func (a *Analyzer) CheckSuffix(g *Graph, buf []WindowResult) []WindowResult {
	a.counts = a.SuffixSweepCounts(g, a.counts)
	buf = buf[:0]
	for i := 1; i <= g.n; i++ {
		buf = append(buf, WindowResult{
			I: i, J: g.n, Got: a.counts[i-1], Expected: g.ExpectedComponents(i, g.n),
		})
	}
	return buf
}

// CheckAllWindows evaluates every P(i,j), 1 <= i <= j <= n, with one
// sweep per left edge: O(n²·h·α) total versus the naive O(n³·h·α).
// Results are appended into buf in the same (i ascending, j ascending)
// order as Graph.CheckAllWindows.
func (a *Analyzer) CheckAllWindows(g *Graph, buf []WindowResult) []WindowResult {
	buf = buf[:0]
	for i := 1; i <= g.n; i++ {
		a.counts = a.SweepCounts(g, i-1, a.counts)
		for j := i; j <= g.n; j++ {
			buf = append(buf, WindowResult{
				I: i, J: j, Got: a.counts[j-i], Expected: g.ExpectedComponents(i, j),
			})
		}
	}
	return buf
}
