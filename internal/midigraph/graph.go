// Package midigraph implements the multistage interconnection digraph
// (MI-digraph) model of §2 of Bermond & Fourneau: a digraph whose nodes
// are the 2x2 switching cells of a multistage interconnection network,
// partitioned into n ordered stages of 2^(n-1) nodes, with arcs only from
// stage i to stage i+1. Every node has outdegree 2 (except the last
// stage) and indegree 2 (except the first stage). Input and output
// terminals are not represented: they play no role in graph isomorphism.
//
// Parallel arcs are representable (a node may list the same child twice);
// they arise from degenerate stage permutations (Fig 5 of the paper) and
// make the Banyan property fail, so the model must not exclude them.
//
// Stage indices in this package are 0-based. The paper-facing property
// checks P(i,j) in window.go accept the paper's 1-based convention and
// say so explicitly.
package midigraph

import (
	"fmt"
	"strings"

	"minequiv/internal/bitops"
	"minequiv/internal/perm"
)

// NoNode marks an unset child slot in a graph under construction.
const NoNode = ^uint32(0)

// MaxStages bounds n so that labels fit comfortably in uint32 and slices
// stay addressable; 26 stages is a 2^26-input network, far beyond any
// experiment here.
const MaxStages = 26

// Graph is an n-stage MI-digraph. Each node is identified by its stage
// s in [0,n) and its label x in [0, 2^(n-1)).
type Graph struct {
	n        int        // stages
	h        int        // cells per stage = 2^(n-1)
	m        int        // label bits = n-1
	children [][]uint32 // children[s][2*x+slot], s in [0,n-1)
}

// New returns a graph with n stages and all child slots unset.
func New(n int) *Graph {
	if n < 1 || n > MaxStages {
		panic(fmt.Sprintf("midigraph: stage count %d out of range [1,%d]", n, MaxStages))
	}
	h := 1 << uint(n-1)
	g := &Graph{n: n, h: h, m: n - 1}
	g.children = make([][]uint32, n-1)
	for s := range g.children {
		row := make([]uint32, 2*h)
		for i := range row {
			row[i] = NoNode
		}
		g.children[s] = row
	}
	return g
}

// Stages returns the number of stages n.
func (g *Graph) Stages() int { return g.n }

// CellsPerStage returns 2^(n-1), the paper's N/2.
func (g *Graph) CellsPerStage() int { return g.h }

// LabelBits returns n-1, the width of a cell label.
func (g *Graph) LabelBits() int { return g.m }

// Terminals returns N = 2^n, the number of network inputs (= outputs).
func (g *Graph) Terminals() int { return 2 * g.h }

// SetChildren assigns the ordered pair of children of node (s, x): slot 0
// is the f-child, slot 1 the g-child in the paper's connection notation.
func (g *Graph) SetChildren(s int, x uint32, f, c uint32) {
	g.children[s][2*x] = f
	g.children[s][2*x+1] = c
}

// Children returns the ordered children (f-child, g-child) of node (s, x).
// Only valid for s < n-1.
func (g *Graph) Children(s int, x uint32) (uint32, uint32) {
	return g.children[s][2*x], g.children[s][2*x+1]
}

// ChildSlice returns the raw child array of stage s (2 entries per node).
// Callers must not modify it.
func (g *Graph) ChildSlice(s int) []uint32 { return g.children[s] }

// Validate checks the MI-digraph degree conditions: every child slot set
// and in range, and every node of stages 1..n-1 has indegree exactly 2
// (counted with multiplicity, so parallel arcs still validate — they
// break the Banyan property, not the degree conditions).
func (g *Graph) Validate() error {
	for s := 0; s < g.n-1; s++ {
		indeg := make([]int, g.h)
		for x := 0; x < g.h; x++ {
			for slot := 0; slot < 2; slot++ {
				c := g.children[s][2*x+slot]
				if c == NoNode {
					return fmt.Errorf("midigraph: node (stage %d, %d) slot %d unset", s, x, slot)
				}
				if c >= uint32(g.h) {
					return fmt.Errorf("midigraph: node (stage %d, %d) slot %d child %d out of range [0,%d)",
						s, x, slot, c, g.h)
				}
				indeg[c]++
			}
		}
		for y := 0; y < g.h; y++ {
			if indeg[y] != 2 {
				return fmt.Errorf("midigraph: node (stage %d, %d) has indegree %d, want 2", s+1, y, indeg[y])
			}
		}
	}
	return nil
}

// Parents returns the (multiset of) parents of node (s, x), s >= 1, as a
// slice of length 2 in slot-scan order.
func (g *Graph) Parents(s int, x uint32) []uint32 {
	var out []uint32
	row := g.children[s-1]
	for p := 0; p < g.h && len(out) < 2; p++ {
		if row[2*p] == x {
			out = append(out, uint32(p))
		}
		if len(out) < 2 && row[2*p+1] == x {
			out = append(out, uint32(p))
		}
	}
	return out
}

// ParentTable returns, for stage s >= 1, a slice with 2 entries per node
// listing its parents (multiset). O(h) per stage.
func (g *Graph) ParentTable(s int) [][2]uint32 {
	table := make([][2]uint32, g.h)
	fill := make([]int, g.h)
	row := g.children[s-1]
	for p := 0; p < g.h; p++ {
		for slot := 0; slot < 2; slot++ {
			c := row[2*p+slot]
			if c != NoNode && fill[c] < 2 {
				table[c][fill[c]] = uint32(p)
				fill[c]++
			}
		}
	}
	return table
}

// HasParallelArcs reports whether any node lists the same child twice.
func (g *Graph) HasParallelArcs() bool {
	for s := 0; s < g.n-1; s++ {
		for x := 0; x < g.h; x++ {
			if g.children[s][2*x] == g.children[s][2*x+1] {
				return true
			}
		}
	}
	return false
}

// ArcCount returns the total number of arcs (with multiplicity).
func (g *Graph) ArcCount() int { return (g.n - 1) * 2 * g.h }

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	c := New(g.n)
	for s := range g.children {
		copy(c.children[s], g.children[s])
	}
	return c
}

// Equal reports structural equality: same shape and identical ordered
// child arrays. This is stricter than isomorphism (see package equiv).
func (g *Graph) Equal(o *Graph) bool {
	if g.n != o.n {
		return false
	}
	for s := range g.children {
		for i := range g.children[s] {
			if g.children[s][i] != o.children[s][i] {
				return false
			}
		}
	}
	return true
}

// EqualUnordered reports equality of the underlying digraphs ignoring the
// (f,g) slot order within each node's child pair.
func (g *Graph) EqualUnordered(o *Graph) bool {
	if g.n != o.n {
		return false
	}
	for s := range g.children {
		for x := 0; x < g.h; x++ {
			gf, gg := g.children[s][2*x], g.children[s][2*x+1]
			of, og := o.children[s][2*x], o.children[s][2*x+1]
			if !(gf == of && gg == og || gf == og && gg == of) {
				return false
			}
		}
	}
	return true
}

// Reverse returns the reverse MI-digraph G^-1: stage s of the result is
// stage n-1-s of g with all arcs flipped. Child slot order in the result
// follows parent-scan order and carries no (f,g) semantics.
func (g *Graph) Reverse() *Graph {
	r := New(g.n)
	for s := 0; s < g.n-1; s++ {
		// Arcs g: s -> s+1 become r: (n-2-s) -> (n-1-s).
		rs := g.n - 2 - s
		fill := make([]int, g.h)
		for x := 0; x < g.h; x++ {
			for slot := 0; slot < 2; slot++ {
				c := g.children[s][2*x+slot]
				r.children[rs][2*c+uint32(fill[c])] = uint32(x)
				fill[c]++
			}
		}
	}
	return r
}

// Relabel returns the graph obtained by renaming node (s, x) to
// (s, perms[s][x]). The result is isomorphic to g by construction; this
// is how tests build scrambled isomorphic copies.
func (g *Graph) Relabel(perms []perm.Perm) (*Graph, error) {
	if len(perms) != g.n {
		return nil, fmt.Errorf("midigraph: want %d stage permutations, got %d", g.n, len(perms))
	}
	for s, p := range perms {
		if p.N() != g.h {
			return nil, fmt.Errorf("midigraph: stage %d permutation on %d symbols, want %d", s, p.N(), g.h)
		}
	}
	r := New(g.n)
	for s := 0; s < g.n-1; s++ {
		for x := 0; x < g.h; x++ {
			nx := perms[s][x]
			f, c := g.Children(s, uint32(x))
			r.SetChildren(s, uint32(nx), uint32(perms[s+1][f]), uint32(perms[s+1][c]))
		}
	}
	return r, nil
}

// FromChildFuncs builds an n-stage graph whose stage-s connection is
// given by the pair of functions fs[s], gs[s] on cell labels.
func FromChildFuncs(n int, fs, gs []func(uint64) uint64) (*Graph, error) {
	if len(fs) != n-1 || len(gs) != n-1 {
		return nil, fmt.Errorf("midigraph: want %d connection function pairs, got %d/%d",
			n-1, len(fs), len(gs))
	}
	g := New(n)
	for s := 0; s < n-1; s++ {
		for x := 0; x < g.h; x++ {
			f := fs[s](uint64(x))
			c := gs[s](uint64(x))
			if f >= uint64(g.h) || c >= uint64(g.h) {
				return nil, fmt.Errorf("midigraph: stage %d child of %d out of range (%d,%d)", s, x, f, c)
			}
			g.SetChildren(s, uint32(x), uint32(f), uint32(c))
		}
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// FromLinkPerms builds the graph defined by link-level permutations, the
// §4 construction: the cells of stage s emit outlinks labelled
// (cell<<1)|port on n bits; linkPerms[s] maps outlink labels of stage s
// to inlink labels of stage s+1; inlink z enters cell z>>1. Slot 0 (the
// f-child) is the image of port 0.
func FromLinkPerms(n int, linkPerms []perm.Perm) (*Graph, error) {
	if len(linkPerms) != n-1 {
		return nil, fmt.Errorf("midigraph: want %d link permutations, got %d", n-1, len(linkPerms))
	}
	g := New(n)
	nLinks := 1 << uint(n)
	for s, p := range linkPerms {
		if p.N() != nLinks {
			return nil, fmt.Errorf("midigraph: stage %d link permutation on %d symbols, want %d",
				s, p.N(), nLinks)
		}
		if err := p.Validate(); err != nil {
			return nil, fmt.Errorf("midigraph: stage %d: %w", s, err)
		}
		for x := 0; x < g.h; x++ {
			f := p.Apply(uint64(x) << 1)
			c := p.Apply(uint64(x)<<1 | 1)
			g.SetChildren(s, uint32(x), uint32(f>>1), uint32(c>>1))
		}
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// String renders the graph as one line per non-final stage listing each
// node's ordered children, e.g. "stage 0: 0->(0,2) 1->(0,2) ...".
func (g *Graph) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "MI-digraph n=%d h=%d\n", g.n, g.h)
	for s := 0; s < g.n-1; s++ {
		fmt.Fprintf(&b, "stage %d:", s)
		for x := 0; x < g.h; x++ {
			f, c := g.Children(s, uint32(x))
			fmt.Fprintf(&b, " %d->(%d,%d)", x, f, c)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// LabelTuple formats a cell label the way the paper's Fig 2 does.
func (g *Graph) LabelTuple(x uint32) string {
	return bitops.Tuple(uint64(x), g.m)
}
