package sim

import (
	"fmt"
	"math/rand/v2"
)

// ArbiterPolicy picks the winner when both switch inputs contend for the
// same output port in one cycle.
type ArbiterPolicy uint8

const (
	// ArbRandom flips a fair coin per conflict (the classic model).
	ArbRandom ArbiterPolicy = iota
	// ArbRoundRobin alternates priority per (cell, output): the loser of
	// a contested cycle holds priority for the next conflict.
	ArbRoundRobin
)

func (a ArbiterPolicy) String() string {
	switch a {
	case ArbRandom:
		return "random"
	case ArbRoundRobin:
		return "roundrobin"
	}
	return fmt.Sprintf("ArbiterPolicy(%d)", uint8(a))
}

// LanePolicy picks the lane a packet joins when it is enqueued at an
// input port with multiple lanes.
type LanePolicy uint8

const (
	// LaneShortest joins the least-occupied lane with room (lowest index
	// wins ties) — the load-balancing default.
	LaneShortest LanePolicy = iota
	// LaneByDst joins lane dst mod Lanes, keeping per-destination FIFO
	// order across the whole path.
	LaneByDst
	// LaneRandom joins a uniformly random lane among those with room.
	LaneRandom
)

func (l LanePolicy) String() string {
	switch l {
	case LaneShortest:
		return "shortest"
	case LaneByDst:
		return "bydst"
	case LaneRandom:
		return "random"
	}
	return fmt.Sprintf("LanePolicy(%d)", uint8(l))
}

// BufferedConfig parametrizes the queued (store-and-forward) simulation.
type BufferedConfig struct {
	Load   float64 // Bernoulli injection probability per input per cycle (when Pattern is nil)
	Queue  int     // FIFO capacity per lane
	Lanes  int     // FIFO lanes per switch input port; 0 means 1
	Cycles int     // measured cycles
	Warmup int     // cycles discarded before measuring

	// Pattern generates one cycle of injections: dsts[i] >= 0 offers a
	// packet at input i. Any registry scenario works (compose with
	// Thinned to control offered load). When nil, the legacy
	// Load/HotSpot/HotDst fields define the pattern.
	Pattern Traffic

	HotSpot float64 // probability of addressing the hot output (0 = uniform; Pattern nil only)
	HotDst  int     // the hot output terminal (Pattern nil only)

	Arbiter    ArbiterPolicy // output-port arbitration between the two inputs
	LaneSelect LanePolicy    // lane choice on enqueue
}

// lanes returns the effective lane count.
func (c BufferedConfig) lanes() int {
	if c.Lanes < 1 {
		return 1
	}
	return c.Lanes
}

// BufferedResult aggregates one replication.
type BufferedResult struct {
	Injected     int
	Rejected     int // injection attempts refused by a full entry port
	Delivered    int
	Dropped      int // undeliverable head packets discarded (non-Banyan fabrics, faults)
	FaultDropped int // subset of Dropped killed directly by a fault (dead switch, severed link)
	Misrouted    int // packets a stuck last-stage switch pushed out the wrong terminal
	InFlight     int // packets still queued at the end
	Cycles       int
	MeanLatency  float64 // cycles from injection to delivery
	P50          int     // latency percentiles over measured deliveries, cycles
	P95          int
	P99          int
	Throughput   float64 // delivered per terminal per measured cycle
	MaxOccupancy int     // largest single-lane queue length observed
	// StageOccupancy[s] is the mean number of packets queued at stage s
	// per measured cycle. The slice is owned by the runner and
	// overwritten by its next Run; copy it if it must outlive the call.
	StageOccupancy []float64
}

// BufferedRunner owns every buffer of the store-and-forward model —
// multi-lane ring FIFOs, arbitration state, the latency histogram, the
// occupancy accumulators and the injection buffer — so that repeated
// replications through one fabric are allocation-free in steady state.
// A runner is NOT safe for concurrent use; create one per goroutine
// (the parallel engine gives each worker its own).
//
// Model, serviced downstream-first so a packet advances at most one hop
// per cycle but slots freed downstream are usable within the cycle:
// each switch input port holds Lanes independent FIFOs of capacity
// Queue. Per cycle each input port may send one packet and each output
// port may accept one. An input offers, per output port, the head of
// the first lane (in round-robin order) requesting that output — so a
// head blocked on one output never blinds lanes headed for the other
// (the head-of-line bypass that multi-lane storage exists for).
// Contended outputs are arbitrated by the ArbiterPolicy; a winner
// advances only if a downstream lane has room (backpressure), and
// undeliverable heads are dropped and counted instead of stalling the
// lane forever.
type BufferedRunner struct {
	f       *Fabric
	faults  *FaultState
	cfg     BufferedConfig
	pattern Traffic
	lanes   int
	cap     int

	// Ring-buffer FIFOs, flat over (stage, port, lane):
	// fifo i occupies buf[i*cap : (i+1)*cap] with head[i]/count[i].
	buf   []Packet
	head  []int32
	count []int32

	rrLane     []int32 // per (stage, input port): next lane to serve
	rrIn       []uint8 // per (stage, cell, output): priority input for ArbRoundRobin
	stageCount []int32 // packets currently queued per stage
	occSum     []int64 // per stage: sum of stageCount over measured cycles
	stageOcc   []float64
	hist       []int32 // latency histogram; index = latency in cycles
	dsts       []int   // injection buffer for Pattern

	// Injection draws run on their own stream, reseeded from the trial
	// rng at the top of each Run: the offered-traffic sequence is then a
	// pure function of the trial seed, immune to how many arbitration /
	// lane draws the service phase consumes — which is what lets a
	// FaultPlan degrade the fabric without perturbing what the sources
	// offer.
	injSrc *rand.PCG
	injRng *rand.Rand
}

// Validate checks the configuration without sizing any buffers.
func (c BufferedConfig) Validate() error {
	if c.Load < 0 || c.Load > 1 {
		return fmt.Errorf("sim: load %v out of [0,1]", c.Load)
	}
	if c.Queue < 1 {
		return fmt.Errorf("sim: queue capacity must be >= 1")
	}
	if c.Lanes < 0 {
		return fmt.Errorf("sim: lane count %d negative", c.Lanes)
	}
	if c.Cycles < 1 {
		return fmt.Errorf("sim: cycles must be >= 1")
	}
	if c.Warmup < 0 {
		return fmt.Errorf("sim: warmup %d negative", c.Warmup)
	}
	switch c.Arbiter {
	case ArbRandom, ArbRoundRobin:
	default:
		return fmt.Errorf("sim: unknown arbiter policy %d", c.Arbiter)
	}
	switch c.LaneSelect {
	case LaneShortest, LaneByDst, LaneRandom:
	default:
		return fmt.Errorf("sim: unknown lane policy %d", c.LaneSelect)
	}
	return nil
}

// NewBufferedRunner validates the configuration and sizes every buffer.
// The returned runner reuses all of them across calls to Run.
func (f *Fabric) NewBufferedRunner(cfg BufferedConfig) (*BufferedRunner, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	pattern := cfg.Pattern
	if pattern == nil {
		if cfg.HotSpot > 0 {
			pattern = Thinned(cfg.Load, HotSpot(cfg.HotDst, cfg.HotSpot))
		} else {
			pattern = Bernoulli(cfg.Load)
		}
	}
	lanes := cfg.lanes()
	ports := f.Spans * f.H * 2
	fifos := ports * lanes
	total := cfg.Warmup + cfg.Cycles
	injSrc := rand.NewPCG(0, 0)
	return &BufferedRunner{
		injSrc:     injSrc,
		injRng:     rand.New(injSrc),
		f:          f,
		cfg:        cfg,
		pattern:    pattern,
		lanes:      lanes,
		cap:        cfg.Queue,
		buf:        make([]Packet, fifos*cfg.Queue),
		head:       make([]int32, fifos),
		count:      make([]int32, fifos),
		rrLane:     make([]int32, ports),
		rrIn:       make([]uint8, ports),
		stageCount: make([]int32, f.Spans),
		occSum:     make([]int64, f.Spans),
		stageOcc:   make([]float64, f.Spans),
		hist:       make([]int32, total+2),
		dsts:       make([]int, f.N),
	}, nil
}

// Fabric returns the fabric this runner simulates.
func (r *BufferedRunner) Fabric() *Fabric { return r.f }

// SetFaults attaches a fault state the runner consults on every switch
// decision; nil restores the intact fabric. The state must have been
// created by the runner's own fabric. The caller keeps ownership and
// may resample it between replications (the engine resamples per
// trial); Run does not clear it.
func (r *BufferedRunner) SetFaults(fs *FaultState) error {
	if fs != nil && fs.f != r.f {
		return fmt.Errorf("sim: fault state belongs to a different fabric")
	}
	r.faults = fs
	return nil
}

// Config returns the configuration the runner was sized for.
func (r *BufferedRunner) Config() BufferedConfig { return r.cfg }

// fifo index of (stage, port, lane); the port index of a stage equals
// the link value cell*2+in.
func (r *BufferedRunner) fifo(s, port, lane int) int {
	return (s*r.f.H*2+port)*r.lanes + lane
}

func (r *BufferedRunner) peek(fi int) Packet {
	return r.buf[fi*r.cap+int(r.head[fi])]
}

func (r *BufferedRunner) pop(fi, s int) Packet {
	p := r.buf[fi*r.cap+int(r.head[fi])]
	r.head[fi]++
	if int(r.head[fi]) == r.cap {
		r.head[fi] = 0
	}
	r.count[fi]--
	r.stageCount[s]--
	return p
}

func (r *BufferedRunner) push(fi, s int, p Packet) {
	tail := int(r.head[fi]) + int(r.count[fi])
	if tail >= r.cap {
		tail -= r.cap
	}
	r.buf[fi*r.cap+tail] = p
	r.count[fi]++
	r.stageCount[s]++
}

// pickLane selects the enqueue lane at (stage, port) for a packet to
// dst, honoring the configured policy; -1 means every admissible lane
// is full (backpressure).
func (r *BufferedRunner) pickLane(s, port, dst int, rng *rand.Rand) int {
	base := r.fifo(s, port, 0)
	if r.lanes == 1 {
		if int(r.count[base]) >= r.cap {
			return -1
		}
		return 0
	}
	switch r.cfg.LaneSelect {
	case LaneByDst:
		l := dst % r.lanes
		if int(r.count[base+l]) >= r.cap {
			return -1
		}
		return l
	case LaneRandom:
		free := 0
		for l := 0; l < r.lanes; l++ {
			if int(r.count[base+l]) < r.cap {
				free++
			}
		}
		if free == 0 {
			return -1
		}
		k := rng.IntN(free)
		for l := 0; l < r.lanes; l++ {
			if int(r.count[base+l]) < r.cap {
				if k == 0 {
					return l
				}
				k--
			}
		}
		return -1 // unreachable
	default: // LaneShortest
		best, bestCount := -1, int32(0)
		for l := 0; l < r.lanes; l++ {
			c := r.count[base+l]
			if int(c) < r.cap && (best < 0 || c < bestCount) {
				best, bestCount = l, c
			}
		}
		return best
	}
}

// Run executes one replication and resets all state first, so every
// call is an independent sample path of the given rng. The returned
// result's StageOccupancy aliases runner-owned storage.
func (r *BufferedRunner) Run(rng *rand.Rand) BufferedResult {
	f, cfg := r.f, r.cfg
	// Derive the injection stream from the trial rng's first two words,
	// then never touch it from the service phase: offered traffic is a
	// pure function of the trial seed (see the injRng field comment).
	r.injSrc.Seed(rng.Uint64(), rng.Uint64())
	for i := range r.head {
		r.head[i], r.count[i] = 0, 0
	}
	for i := range r.rrLane {
		r.rrLane[i], r.rrIn[i] = 0, 0
	}
	for i := range r.occSum {
		r.occSum[i] = 0
		r.stageCount[i] = 0
	}
	for i := range r.hist {
		r.hist[i] = 0
	}

	res := BufferedResult{Cycles: cfg.Cycles}
	var latSum float64
	total := cfg.Warmup + cfg.Cycles
	for cycle := 0; cycle < total; cycle++ {
		measuring := cycle >= cfg.Warmup
		// Service stages from the last to the first.
		for s := f.Spans - 1; s >= 0; s-- {
			for cell := 0; cell < f.H; cell++ {
				r.serviceCell(s, cell, cycle, measuring, rng, &res, &latSum)
			}
		}
		// Injection, on the dedicated stream.
		r.pattern(r.dsts, r.injRng)
		for t := 0; t < f.N; t++ {
			dst := r.dsts[t]
			if dst < 0 {
				continue
			}
			l := r.pickLane(0, t, dst, rng)
			if l < 0 {
				if measuring {
					res.Rejected++
				}
				continue
			}
			fi := r.fifo(0, t, l)
			r.push(fi, 0, Packet{Src: t, Dst: dst, Born: cycle})
			if measuring {
				res.Injected++
			}
			if int(r.count[fi]) > res.MaxOccupancy {
				res.MaxOccupancy = int(r.count[fi])
			}
		}
		if measuring {
			for s := range r.occSum {
				r.occSum[s] += int64(r.stageCount[s])
			}
		}
	}

	for _, c := range r.count {
		res.InFlight += int(c)
	}
	for s := range r.stageOcc {
		r.stageOcc[s] = float64(r.occSum[s]) / float64(cfg.Cycles)
	}
	res.StageOccupancy = r.stageOcc
	if res.Delivered > 0 {
		res.MeanLatency = latSum / float64(res.Delivered)
		res.P50 = r.percentile(res.Delivered, 0.50)
		res.P95 = r.percentile(res.Delivered, 0.95)
		res.P99 = r.percentile(res.Delivered, 0.99)
	}
	res.Throughput = float64(res.Delivered) / float64(cfg.Cycles) / float64(f.N)
	return res
}

// serviceCell moves up to one packet per output port of one switch.
func (r *BufferedRunner) serviceCell(s, cell, cycle int, measuring bool, rng *rand.Rand, res *BufferedResult, latSum *float64) {
	f := r.f
	pbase := s * f.H * 2 // this stage's base into the per-port rr state
	// cand[in][out] is the round-robin-first lane at input `in` whose
	// head requests output `out`, or -1. Undeliverable heads found
	// while scanning are dropped and counted.
	var cand [2][2]int
	for in := 0; in < 2; in++ {
		cand[in][0], cand[in][1] = -1, -1
		port := cell*2 + in
		start := int(r.rrLane[pbase+port])
		for k := 0; k < r.lanes; k++ {
			l := start + k
			if l >= r.lanes {
				l -= r.lanes
			}
			fi := r.fifo(s, port, l)
			var pt uint8
			for r.count[fi] > 0 {
				pt = f.steer(r.faults, s, cell, r.peek(fi).Dst)
				if pt < portFaulted {
					break
				}
				// Undeliverable head: no path in this fabric, or a fault
				// (dead switch / severed outlink) kills it. Dropping keeps
				// the lane live instead of wedging it forever.
				r.pop(fi, s)
				if measuring {
					res.Dropped++
					if pt == portFaulted {
						res.FaultDropped++
					}
				}
			}
			if r.count[fi] == 0 {
				continue
			}
			if cand[in][pt] < 0 {
				cand[in][pt] = l
			}
			if cand[in][0] >= 0 && cand[in][1] >= 0 {
				break
			}
		}
	}
	var sent [2]bool
	for out := 0; out < 2; out++ {
		a0 := cand[0][out] >= 0 && !sent[0]
		a1 := cand[1][out] >= 0 && !sent[1]
		var order [2]int
		var n int
		contested := a0 && a1
		switch {
		case contested:
			first := 0
			if r.cfg.Arbiter == ArbRoundRobin {
				first = int(r.rrIn[pbase+cell*2+out])
			} else {
				first = rng.IntN(2)
			}
			order = [2]int{first, 1 - first}
			n = 2
		case a0:
			order[0], n = 0, 1
		case a1:
			order[0], n = 1, 1
		default:
			continue
		}
		// Both inputs feed the same downstream port. Under LaneShortest
		// and LaneRandom a winner stalled by backpressure means every
		// lane there is full, so the loser is stalled too; under
		// LaneByDst the loser's destination may map to a lane with
		// room, so it gets the chance the winner could not use.
		for i := 0; i < n; i++ {
			in := order[i]
			lane := cand[in][out]
			port := cell*2 + in
			fi := r.fifo(s, port, lane)
			if s == f.Spans-1 {
				p := r.pop(fi, s)
				if measuring {
					// A stuck last-stage switch can force the wrong port:
					// the packet leaves a terminal, just not its own. The
					// wave model separates these as Misrouted; so do we —
					// they are not deliveries and carry no latency sample.
					if cell<<1|out == p.Dst {
						res.Delivered++
						lat := cycle - p.Born + 1
						*latSum += float64(lat)
						r.hist[lat]++
					} else {
						res.Misrouted++
					}
				}
			} else {
				dport := int(f.forward(s, uint64(cell)<<1|uint64(out)))
				dl := r.pickLane(s+1, dport, r.peek(fi).Dst, rng)
				if dl < 0 {
					continue // backpressure stall; maybe the other input can go
				}
				p := r.pop(fi, s)
				dfi := r.fifo(s+1, dport, dl)
				r.push(dfi, s+1, p)
				if int(r.count[dfi]) > res.MaxOccupancy {
					res.MaxOccupancy = int(r.count[dfi])
				}
			}
			sent[in] = true
			if contested {
				// The grant holder yields priority for the next conflict.
				r.rrIn[pbase+cell*2+out] = uint8(1 - in)
			}
			next := lane + 1
			if next == r.lanes {
				next = 0
			}
			r.rrLane[pbase+port] = int32(next)
			break
		}
	}
}

// percentile returns the smallest latency whose cumulative measured
// delivery count reaches q of the total.
func (r *BufferedRunner) percentile(delivered int, q float64) int {
	need := int64(q * float64(delivered))
	if float64(need) < q*float64(delivered) {
		need++
	}
	if need < 1 {
		need = 1
	}
	var cum int64
	for lat, c := range r.hist {
		cum += int64(c)
		if cum >= need {
			return lat
		}
	}
	return len(r.hist) - 1
}

// RunBuffered is the one-shot convenience form; it allocates a fresh
// runner per call. Hot loops should hold a BufferedRunner instead.
func (f *Fabric) RunBuffered(cfg BufferedConfig, rng *rand.Rand) (BufferedResult, error) {
	r, err := f.NewBufferedRunner(cfg)
	if err != nil {
		return BufferedResult{}, err
	}
	return r.Run(rng), nil
}
