package sim

import (
	"fmt"
	"math/rand/v2"
)

// BufferedConfig parametrizes the queued (store-and-forward) simulation.
type BufferedConfig struct {
	Load    float64 // Bernoulli injection probability per input per cycle
	Queue   int     // FIFO capacity per switch input port
	Cycles  int     // measured cycles
	Warmup  int     // cycles discarded before measuring
	HotSpot float64 // probability of addressing the hot output (0 = uniform)
	HotDst  int     // the hot output terminal
}

// BufferedResult aggregates the run.
type BufferedResult struct {
	Injected     int
	Rejected     int // injection attempts refused by a full entry queue
	Delivered    int
	InFlight     int // packets still queued at the end
	Cycles       int
	MeanLatency  float64 // cycles from injection to delivery
	Throughput   float64 // delivered per terminal per measured cycle
	MaxOccupancy int     // largest queue length observed
}

// RunBuffered simulates the fabric with one FIFO per switch input port.
// Each cycle every switch forwards at most one packet per output port
// (fair random arbitration between its two inputs); a packet advances
// only if the downstream queue has room (backpressure), and delivered
// packets leave at the last stage. Stages are serviced downstream-first
// so a packet can cascade at most one hop per cycle but freed slots are
// usable within the cycle.
func (f *Fabric) RunBuffered(cfg BufferedConfig, rng *rand.Rand) (BufferedResult, error) {
	if cfg.Load < 0 || cfg.Load > 1 {
		return BufferedResult{}, fmt.Errorf("sim: load %v out of [0,1]", cfg.Load)
	}
	if cfg.Queue < 1 {
		return BufferedResult{}, fmt.Errorf("sim: queue capacity must be >= 1")
	}
	if cfg.Cycles < 1 {
		return BufferedResult{}, fmt.Errorf("sim: cycles must be >= 1")
	}
	type fifo struct{ pkts []Packet }
	// queues[s][cell*2+port]
	queues := make([][]fifo, f.Spans)
	for s := range queues {
		queues[s] = make([]fifo, f.H*2)
	}
	res := BufferedResult{Cycles: cfg.Cycles}
	var latSum float64
	total := cfg.Warmup + cfg.Cycles
	measuring := func(cycle int) bool { return cycle >= cfg.Warmup }

	for cycle := 0; cycle < total; cycle++ {
		// Service stages from the last to the first.
		for s := f.Spans - 1; s >= 0; s-- {
			for cell := 0; cell < f.H; cell++ {
				q0 := &queues[s][cell*2]
				q1 := &queues[s][cell*2+1]
				// Head requests.
				req := [2]int{-1, -1} // desired output port per input, -1 idle
				if len(q0.pkts) > 0 {
					p := f.port[s][cell*f.N+q0.pkts[0].Dst]
					if p == 0xFF {
						q0.pkts = q0.pkts[1:] // undeliverable: drop silently
					} else {
						req[0] = int(p)
					}
				}
				if len(q1.pkts) > 0 {
					p := f.port[s][cell*f.N+q1.pkts[0].Dst]
					if p == 0xFF {
						q1.pkts = q1.pkts[1:]
					} else {
						req[1] = int(p)
					}
				}
				// Arbitration order: random when both contend for the
				// same port, otherwise both can go.
				first, second := 0, 1
				if req[0] >= 0 && req[0] == req[1] && rng.IntN(2) == 1 {
					first, second = 1, 0
				}
				granted := [2]bool{}
				for _, in := range [2]int{first, second} {
					if req[in] < 0 {
						continue
					}
					if in == second && req[first] == req[in] && granted[first] {
						continue // lost arbitration this cycle
					}
					q := &queues[s][cell*2+in]
					pkt := q.pkts[0]
					out := uint64(cell)<<1 | uint64(req[in])
					if s == f.Spans-1 {
						// Exits the network at terminal `out`.
						q.pkts = q.pkts[1:]
						granted[in] = true
						if measuring(cycle) {
							res.Delivered++
							latSum += float64(cycle - pkt.Born + 1)
						}
						continue
					}
					in2 := f.perms[s].Apply(out)
					nq := &queues[s+1][int(in2>>1)*2+int(in2&1)]
					if len(nq.pkts) >= cfg.Queue {
						continue // backpressure stall
					}
					q.pkts = q.pkts[1:]
					nq.pkts = append(nq.pkts, pkt)
					granted[in] = true
					if len(nq.pkts) > res.MaxOccupancy {
						res.MaxOccupancy = len(nq.pkts)
					}
				}
			}
		}
		// Injection.
		for t := 0; t < f.N; t++ {
			if rng.Float64() >= cfg.Load {
				continue
			}
			var dst int
			if cfg.HotSpot > 0 && rng.Float64() < cfg.HotSpot {
				dst = cfg.HotDst % f.N
			} else {
				dst = rng.IntN(f.N)
			}
			q := &queues[0][(t>>1)*2+(t&1)]
			if len(q.pkts) >= cfg.Queue {
				if measuring(cycle) {
					res.Rejected++
				}
				continue
			}
			q.pkts = append(q.pkts, Packet{Src: t, Dst: dst, Born: cycle})
			if measuring(cycle) {
				res.Injected++
			}
			if len(q.pkts) > res.MaxOccupancy {
				res.MaxOccupancy = len(q.pkts)
			}
		}
	}
	for s := range queues {
		for i := range queues[s] {
			res.InFlight += len(queues[s][i].pkts)
		}
	}
	if res.Delivered > 0 {
		res.MeanLatency = latSum / float64(res.Delivered)
	}
	res.Throughput = float64(res.Delivered) / float64(cfg.Cycles) / float64(f.N)
	return res, nil
}
