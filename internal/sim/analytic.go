package sim

// AnalyticUniformThroughput evaluates Patel's classical recurrence for
// the acceptance probability of an unbuffered n-stage banyan of 2x2
// switches under full uniform random traffic:
//
//	q_0 = 1,  q_{k+1} = 1 - (1 - q_k/2)^2
//
// where q_k is the probability a given stage-k link carries a packet.
// The returned value q_n is the expected delivered fraction. The wave
// simulator must track this curve for every baseline-equivalent network;
// the experiment harness (T7/T12) checks it does.
func AnalyticUniformThroughput(n int) float64 {
	q := 1.0
	for k := 0; k < n; k++ {
		p := 1 - q/2
		q = 1 - p*p
	}
	return q
}

// AnalyticUniformThroughputLoaded generalizes the recurrence to an
// offered load q_0 = load in [0, 1].
func AnalyticUniformThroughputLoaded(n int, load float64) float64 {
	q := load
	for k := 0; k < n; k++ {
		p := 1 - q/2
		q = 1 - p*p
	}
	return q
}
