package sim

import (
	"math/rand/v2"
	"reflect"
	"testing"

	"minequiv/internal/perm"
	"minequiv/internal/topology"
)

func TestBufferedRunnerMatchesOneShot(t *testing.T) {
	// A reused runner and the one-shot Fabric.RunBuffered see identical
	// rng streams, so results must agree replication for replication —
	// the reuse contract the engine depends on.
	f := fabricFor(t, topology.NameOmega, 4)
	cfg := BufferedConfig{Load: 0.8, Queue: 2, Lanes: 3, Cycles: 400, Warmup: 40}
	runner, err := f.NewBufferedRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 5; trial++ {
		a := runner.Run(rand.New(rand.NewPCG(uint64(trial), 7)))
		b, err := f.RunBuffered(cfg, rand.New(rand.NewPCG(uint64(trial), 7)))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("trial %d: reused runner diverged from one-shot:\n%+v\n%+v", trial, a, b)
		}
	}
}

func TestBufferedSaturationQueueOne(t *testing.T) {
	// The hardest backpressure corner: full load into depth-1 queues.
	// The fabric must stay live (deliveries happen), reject heavily at
	// the entry, never overfill a lane, and keep occupancy within the
	// single slot.
	rng := rand.New(rand.NewPCG(30, 0))
	f := fabricFor(t, topology.NameBaseline, 4)
	res, err := f.RunBuffered(BufferedConfig{Load: 1.0, Queue: 1, Cycles: 2000, Warmup: 200}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered == 0 {
		t.Fatal("queue=1 fabric deadlocked: nothing delivered")
	}
	if res.Rejected == 0 {
		t.Fatal("full load into queue=1 rejected nothing")
	}
	if res.MaxOccupancy > 1 {
		t.Fatalf("occupancy %d exceeded queue capacity 1", res.MaxOccupancy)
	}
	if res.Throughput <= 0 || res.Throughput > 0.95 {
		t.Fatalf("implausible saturated throughput %v", res.Throughput)
	}
}

func TestBufferedMultiLaneBeatsSingleLane(t *testing.T) {
	// Multi-lane storage exists to bypass head-of-line blocking, so at
	// saturation more lanes must not hurt and should measurably help.
	// Total buffering is held fixed (lanes x queue = 8) so the ordering
	// isn't a free-capacity artifact.
	f := fabricFor(t, topology.NameOmega, 5)
	th := func(lanes, queue int) float64 {
		t.Helper()
		res, err := f.RunBuffered(BufferedConfig{
			Load: 1.0, Queue: queue, Lanes: lanes, Cycles: 4000, Warmup: 400,
		}, rand.New(rand.NewPCG(31, 0)))
		if err != nil {
			t.Fatal(err)
		}
		return res.Throughput
	}
	single := th(1, 8)
	multi := th(4, 2)
	if multi < single {
		t.Fatalf("multi-lane throughput %v below single-lane %v", multi, single)
	}
	if multi < single*1.02 {
		t.Logf("warning: multi-lane gain small: %v vs %v", multi, single)
	}
}

func TestBufferedLanePolicies(t *testing.T) {
	// Every lane policy must run, conserve packets and stay within
	// capacity; shortest-lane should not be beaten badly by the others.
	f := fabricFor(t, topology.NameBaseline, 4)
	for _, lp := range []LanePolicy{LaneShortest, LaneByDst, LaneRandom} {
		res, err := f.RunBuffered(BufferedConfig{
			Load: 0.9, Queue: 2, Lanes: 2, Cycles: 1000, Warmup: 100, LaneSelect: lp,
		}, rand.New(rand.NewPCG(32, 0)))
		if err != nil {
			t.Fatalf("%v: %v", lp, err)
		}
		if res.Delivered == 0 {
			t.Fatalf("%v: nothing delivered", lp)
		}
		if res.MaxOccupancy > 2 {
			t.Fatalf("%v: occupancy %d exceeded lane capacity", lp, res.MaxOccupancy)
		}
	}
	if LaneShortest.String() != "shortest" || LaneByDst.String() != "bydst" ||
		LaneRandom.String() != "random" || LanePolicy(9).String() == "" {
		t.Error("LanePolicy.String broken")
	}
}

func TestBufferedArbiters(t *testing.T) {
	// Round-robin arbitration consumes no rng for conflicts, so with a
	// deterministic pattern the whole run is rng-free and two distinct
	// seeds must agree exactly.
	f := fabricFor(t, topology.NameOmega, 4)
	cfg := BufferedConfig{
		Queue: 4, Cycles: 500, Warmup: 50,
		Pattern: Tornado(), Arbiter: ArbRoundRobin,
	}
	a, err := f.RunBuffered(cfg, rand.New(rand.NewPCG(1, 0)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := f.RunBuffered(cfg, rand.New(rand.NewPCG(99, 5)))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("round-robin run consumed rng:\n%+v\n%+v", a, b)
	}
	cfg.Arbiter = ArbRandom
	if _, err := f.RunBuffered(cfg, rand.New(rand.NewPCG(2, 0))); err != nil {
		t.Fatal(err)
	}
	if ArbRandom.String() != "random" || ArbRoundRobin.String() != "roundrobin" ||
		ArbiterPolicy(9).String() == "" {
		t.Error("ArbiterPolicy.String broken")
	}
}

func TestBufferedRoundRobinStatePerStage(t *testing.T) {
	// Regression: lane/arbiter round-robin pointers are per (stage,
	// port), not shared across stages. After a heavy multi-lane run
	// every stage must have exercised its own slice of the state.
	f := fabricFor(t, topology.NameOmega, 4)
	r, err := f.NewBufferedRunner(BufferedConfig{
		Load: 1.0, Queue: 2, Lanes: 3, Cycles: 500, Warmup: 0, Arbiter: ArbRoundRobin,
	})
	if err != nil {
		t.Fatal(err)
	}
	r.Run(rand.New(rand.NewPCG(50, 0)))
	ports := f.H * 2
	for s := 0; s < f.Spans; s++ {
		lanesTouched, arbTouched := false, false
		for p := 0; p < ports; p++ {
			if r.rrLane[s*ports+p] != 0 {
				lanesTouched = true
			}
			if r.rrIn[s*ports+p] != 0 {
				arbTouched = true
			}
		}
		if !lanesTouched {
			t.Errorf("stage %d lane round-robin state never advanced", s)
		}
		if !arbTouched {
			t.Errorf("stage %d arbiter round-robin state never advanced", s)
		}
	}
}

func TestBufferedDroppedCounted(t *testing.T) {
	// On a non-Banyan fabric (identity wiring) most destinations are
	// unreachable; those packets must surface in Dropped instead of
	// vanishing silently.
	f, err := NewFabric([]perm.Perm{perm.Identity(8), perm.Identity(8)})
	if err != nil {
		t.Fatal(err)
	}
	res, err := f.RunBuffered(BufferedConfig{
		Load: 1.0, Queue: 4, Cycles: 1000, Warmup: 0,
	}, rand.New(rand.NewPCG(33, 0)))
	if err != nil {
		t.Fatal(err)
	}
	if res.Dropped == 0 {
		t.Fatalf("unreachable packets not counted as dropped: %+v", res)
	}
	if res.Injected < res.Delivered+res.Dropped+res.InFlight {
		t.Fatalf("packet conservation violated: %+v", res)
	}
	// A Banyan fabric drops nothing.
	banyan := fabricFor(t, topology.NameOmega, 4)
	bres, err := banyan.RunBuffered(BufferedConfig{
		Load: 0.9, Queue: 2, Cycles: 1000, Warmup: 100,
	}, rand.New(rand.NewPCG(34, 0)))
	if err != nil {
		t.Fatal(err)
	}
	if bres.Dropped != 0 {
		t.Fatalf("banyan fabric dropped %d packets", bres.Dropped)
	}
}

func TestBufferedPatternDriven(t *testing.T) {
	// The registry drives injection: a Thinned tornado pattern below
	// its saturation point must deliver roughly the offered load, and a
	// hotspot pattern (single-output bottleneck) must congest below it.
	f := fabricFor(t, topology.NameBaseline, 5)
	run := func(p Traffic) BufferedResult {
		t.Helper()
		res, err := f.RunBuffered(BufferedConfig{
			Queue: 4, Cycles: 3000, Warmup: 300, Pattern: p,
		}, rand.New(rand.NewPCG(35, 0)))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	tornado := run(Thinned(0.15, Tornado()))
	if tornado.Throughput < 0.10 || tornado.Throughput > 0.20 {
		t.Fatalf("thinned tornado throughput %v far from offered 0.15", tornado.Throughput)
	}
	hot := run(Thinned(0.15, HotSpot(0, 0.6)))
	if hot.Throughput >= tornado.Throughput {
		t.Fatalf("hotspot throughput %v not below tornado %v", hot.Throughput, tornado.Throughput)
	}
}

func TestBufferedPercentilesAndOccupancy(t *testing.T) {
	f := fabricFor(t, topology.NameOmega, 5)
	res, err := f.RunBuffered(BufferedConfig{
		Load: 0.9, Queue: 4, Cycles: 2000, Warmup: 200,
	}, rand.New(rand.NewPCG(36, 0)))
	if err != nil {
		t.Fatal(err)
	}
	if res.P50 < f.Spans || res.P50 > res.P95 || res.P95 > res.P99 {
		t.Fatalf("percentiles disordered: p50=%d p95=%d p99=%d (spans %d)",
			res.P50, res.P95, res.P99, f.Spans)
	}
	if float64(res.P50) > res.MeanLatency*2+float64(f.Spans) {
		t.Fatalf("p50 %d implausible against mean %v", res.P50, res.MeanLatency)
	}
	if len(res.StageOccupancy) != f.Spans {
		t.Fatalf("occupancy has %d stages, want %d", len(res.StageOccupancy), f.Spans)
	}
	for s, occ := range res.StageOccupancy {
		if occ < 0 || occ > float64(f.H*2*4) {
			t.Fatalf("stage %d occupancy %v out of range", s, occ)
		}
	}
	// At 0.9 load the entry stage must actually hold packets.
	if res.StageOccupancy[0] == 0 {
		t.Fatal("entry stage occupancy zero under heavy load")
	}
}

func TestBufferedThinnedTraffic(t *testing.T) {
	rng := rand.New(rand.NewPCG(37, 0))
	dsts := make([]int, 256)
	// Thinned(0) idles everything; Thinned(1) is the identity wrapper.
	Thinned(0, Uniform())(dsts, rng)
	for _, d := range dsts {
		if d != -1 {
			t.Fatal("Thinned(0) injected")
		}
	}
	Thinned(1, Tornado())(dsts, rng)
	for i, d := range dsts {
		if d != (i+len(dsts)/2)%len(dsts) {
			t.Fatal("Thinned(1) altered the inner pattern")
		}
	}
	busy := 0
	Thinned(0.5, Uniform())(dsts, rng)
	for _, d := range dsts {
		if d >= 0 {
			busy++
		}
	}
	if busy < 64 || busy > 192 {
		t.Fatalf("Thinned(0.5) kept %d of 256 inputs busy", busy)
	}
}

func TestBufferedRunnerConfigValidation(t *testing.T) {
	f := fabricFor(t, topology.NameOmega, 3)
	bad := []BufferedConfig{
		{Load: -0.1, Queue: 2, Cycles: 10},
		{Load: 1.5, Queue: 2, Cycles: 10},
		{Load: 0.5, Queue: 0, Cycles: 10},
		{Load: 0.5, Queue: 2, Cycles: 0},
		{Load: 0.5, Queue: 2, Cycles: 10, Lanes: -1},
		{Load: 0.5, Queue: 2, Cycles: 10, Warmup: -1},
		{Load: 0.5, Queue: 2, Cycles: 10, Arbiter: ArbiterPolicy(7)},
		{Load: 0.5, Queue: 2, Cycles: 10, LaneSelect: LanePolicy(7)},
	}
	for _, cfg := range bad {
		if _, err := f.NewBufferedRunner(cfg); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
	r, err := f.NewBufferedRunner(BufferedConfig{Load: 0.5, Queue: 2, Cycles: 10})
	if err != nil {
		t.Fatal(err)
	}
	if r.Fabric() != f || r.Config().Queue != 2 {
		t.Error("runner accessors broken")
	}
}
