package sim

import (
	"fmt"

	"minequiv/internal/perm"
)

// This file is the fabric kernel: the one compiled, immutable model of a
// MIN's switching hardware that every simulation model drives. A stage
// is a bank of 2x2 crossbar switches plus the link permutation carrying
// its outlinks to the next stage's inlinks; the kernel exposes exactly
// two operations — steer (the crossbar decision at one switch, fault
// state included) and forward (the inter-stage wire) — and both the
// unbuffered WaveRunner and the queued BufferedRunner are written
// against them. There is deliberately no second copy of the per-stage
// crossbar logic anywhere: a fault mode added to steer is instantly
// honored by every model.

// Port sentinels returned by steer. Values 0 and 1 are real output
// ports; the sentinels classify why a packet cannot be switched.
const (
	// portUnreachable: the intact fabric has no path from this cell to
	// the destination (non-Banyan gap, or a packet knocked off its
	// unique path by an earlier stuck switch).
	portUnreachable = 0xFF
	// portFaulted: a fault kills the packet here — its switch is dead,
	// or the outlink it must take is severed.
	portFaulted = 0xFE
)

// stageKernel is one compiled stage: the switch bank's routing table and
// the outgoing link permutation.
type stageKernel struct {
	// port[cell*N + dst] = output port (0/1) leading from the cell
	// toward output terminal dst; portUnreachable when no path exists.
	port []uint8
	// next carries outlink x of this stage to inlink next[x] of the
	// following stage; nil for the last stage, whose outlinks are the
	// output terminals themselves.
	next perm.Perm
}

// Fabric is a compiled simulation model of one MIN: per-stage 2x2
// switch banks with precomputed destination routing tables that work
// for ANY permutation-defined network, PIPID or not (the tables are
// reachability-based), plus the inter-stage link permutations. A Fabric
// is immutable and safe for concurrent use; mutable per-trial state
// (runner scratch, fault state) lives outside it.
type Fabric struct {
	N      int // terminals
	H      int // cells per stage
	Spans  int // stages
	stages []stageKernel
	// ambiguous records whether some (stage, cell, dst) had BOTH ports
	// leading to dst — a multi-path (non-Banyan) fabric. The compiled
	// tables collapse the choice toward port 0, so this must be noted at
	// compile time to be observable later.
	ambiguous bool
	// pathTag[src*N+dst] packs the port schedule the compiled tables
	// steer for an intact (src, dst) flight: bit s is the output port
	// taken at stage s. Non-nil exactly when the fabric is BitSliceable
	// (Banyan unique-path, <= 16 stages); the bit-sliced wave kernel
	// routes whole waves by these tags instead of per-stage lookups.
	pathTag []uint16
	// zeroFaults is the shared all-clear fault mask set the bit kernel
	// uses for intact runs; immutable, nil unless BitSliceable.
	zeroFaults *BitFaultState
}

// NewFabric compiles the per-stage kernels. Unreachable (cell, dst)
// pairs are tolerated and marked, so non-Banyan networks can still be
// simulated for comparison; pairs where both ports lead to dst
// (multi-path ambiguity) are resolved toward port 0 and flagged.
func NewFabric(perms []perm.Perm) (*Fabric, error) {
	n := len(perms) + 1
	N := 1 << uint(n)
	h := N / 2
	for s, p := range perms {
		if p.N() != N {
			return nil, fmt.Errorf("sim: stage %d permutation on %d symbols, want %d", s, p.N(), N)
		}
	}
	f := &Fabric{N: N, H: h, Spans: n, stages: make([]stageKernel, n)}
	for s := 0; s < n-1; s++ {
		f.stages[s].next = perms[s]
	}
	// reach[cell] = bitset over destinations, built backward.
	words := (N + 63) / 64
	cur := make([][]uint64, h)  // reach at stage s+1
	next := make([][]uint64, h) // scratch
	for c := 0; c < h; c++ {
		cur[c] = make([]uint64, words)
		next[c] = make([]uint64, words)
	}
	// Last stage: cell c reaches terminals 2c and 2c+1.
	for c := 0; c < h; c++ {
		for w := range cur[c] {
			cur[c][w] = 0
		}
		cur[c][(2*c)/64] |= 3 << uint((2*c)%64)
	}
	// Last stage port choice: dst parity.
	f.stages[n-1].port = make([]uint8, h*N)
	for c := 0; c < h; c++ {
		for dst := 0; dst < N; dst++ {
			if dst>>1 == c {
				f.stages[n-1].port[c*N+dst] = uint8(dst & 1)
			} else {
				f.stages[n-1].port[c*N+dst] = portUnreachable
			}
		}
	}
	for s := n - 2; s >= 0; s-- {
		f.stages[s].port = make([]uint8, h*N)
		for c := 0; c < h; c++ {
			child0 := int(perms[s].Apply(uint64(c)<<1) >> 1)
			child1 := int(perms[s].Apply(uint64(c)<<1|1) >> 1)
			for w := 0; w < words; w++ {
				next[c][w] = cur[child0][w] | cur[child1][w]
			}
			for dst := 0; dst < N; dst++ {
				r0 := cur[child0][dst/64]>>(uint(dst)%64)&1 == 1
				r1 := cur[child1][dst/64]>>(uint(dst)%64)&1 == 1
				switch {
				case r0 && r1:
					f.ambiguous = true
					f.stages[s].port[c*N+dst] = 0
				case r0:
					f.stages[s].port[c*N+dst] = 0
				case r1:
					f.stages[s].port[c*N+dst] = 1
				default:
					f.stages[s].port[c*N+dst] = portUnreachable
				}
			}
		}
		cur, next = next, cur
	}
	f.compilePathTags()
	if f.pathTag != nil {
		f.zeroFaults = f.NewBitFaultState()
	}
	return f, nil
}

// compilePathTags walks the compiled port tables once per (src, dst)
// pair and packs the resulting port schedule into pathTag. Only Banyan
// (unique-path, fully routable) fabrics of at most 16 stages (a tag is
// a uint16) qualify; anything else leaves pathTag nil and the fabric
// scalar-only. Uniqueness is load-bearing for byte-identity, not just
// the tags: the bit kernel drops a fault-derailed packet on arrival at
// the next stage, which matches the scalar portUnreachable lookup only
// when no off-path cell can reach the destination — exactly the Banyan
// property (a second route from a derailed cell would be a second
// (src, dst) path through the other port of the stuck switch).
func (f *Fabric) compilePathTags() {
	if f.Spans > 16 || !f.Banyan() {
		return
	}
	tags := make([]uint16, f.N*f.N)
	for src := 0; src < f.N; src++ {
		for dst := 0; dst < f.N; dst++ {
			link := uint64(src)
			var tag uint16
			for s := 0; s < f.Spans; s++ {
				cell := link >> 1
				pt := f.stages[s].port[int(cell)*f.N+dst]
				if pt == portUnreachable {
					return
				}
				tag |= uint16(pt) << uint(s)
				link = cell<<1 | uint64(pt)
				if s < f.Spans-1 {
					link = f.stages[s].next.Apply(link)
				}
			}
			tags[src*f.N+dst] = tag
		}
	}
	f.pathTag = tags
}

// BitSliceable reports whether the bit-sliced wave kernel can drive
// this fabric: Banyan unique-path reachability (see compilePathTags for
// why uniqueness is required) and at most 16 stages. Other fabrics are
// scalar-only.
func (f *Fabric) BitSliceable() bool { return f.pathTag != nil }

// Banyan reports whether the compiled fabric has full unique-path
// reachability: every (stage-0 cell, destination) pair routable and no
// stage ever offered both ports for one destination. Reach sets only
// grow walking backward, so a reachability gap anywhere surfaces as a
// gap at stage 0 — scanning stage 0 suffices; path multiplicity is
// recorded during compilation because the tables collapse it.
func (f *Fabric) Banyan() bool {
	if f.ambiguous {
		return false
	}
	for _, p := range f.stages[0].port {
		if p == portUnreachable {
			return false
		}
	}
	return true
}

// steer is THE 2x2 crossbar decision: the output port a packet at
// (stage s, cell) headed for dst leaves on, honoring the fault state
// (nil or inactive = intact fabric). Returns portFaulted when a fault
// kills the packet here (dead switch, or the only usable outlink
// severed) and portUnreachable when the intact wiring offers no path.
// Allocation-free; both simulation models route every packet of every
// cycle through this one function.
//
//minlint:hotpath
func (f *Fabric) steer(fs *FaultState, s, cell, dst int) uint8 {
	pt := f.stages[s].port[cell*f.N+dst]
	if fs == nil || !fs.active {
		return pt
	}
	switch fs.mode[s*f.H+cell] {
	case switchOK:
	case switchDead:
		return portFaulted
	case switchStuck0:
		if pt == portUnreachable {
			return pt
		}
		pt = 0
	case switchStuck1:
		if pt == portUnreachable {
			return pt
		}
		pt = 1
	}
	if pt == portUnreachable {
		return pt
	}
	out := cell<<1 | int(pt)
	if fs.linkDown[s*f.N+out] {
		return portFaulted
	}
	return pt
}

// forward carries outlink `out` of stage s along the inter-stage wire to
// the next stage's inlink. Must not be called for the last stage, whose
// outlinks are terminals.
//
//minlint:hotpath
func (f *Fabric) forward(s int, out uint64) uint64 {
	return f.stages[s].next.Apply(out)
}

// SteerSweep drives the kernel across the whole fabric once: for every
// stage and cell it steers a destination derived from salt and, when a
// real port comes back, forwards the outlink. It exists for the kernel
// benchmark (steer/forward are unexported); the accumulated return
// value defeats dead-code elimination.
//
//minlint:hotpath
func (f *Fabric) SteerSweep(fs *FaultState, salt int) uint64 {
	var acc uint64
	for s := 0; s < f.Spans; s++ {
		for c := 0; c < f.H; c++ {
			dst := (c*2 + salt) & (f.N - 1)
			pt := f.steer(fs, s, c, dst)
			if pt < portFaulted {
				out := uint64(c)<<1 | uint64(pt)
				if s < f.Spans-1 {
					out = f.forward(s, out)
				}
				acc += out
			}
			acc++
		}
	}
	return acc
}
