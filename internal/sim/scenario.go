package sim

// The scenario registry names every traffic pattern so that all
// consumers — cmd/minsim, cmd/minbench, the experiments harness, the
// examples — draw from one shared catalog instead of hand-rolling
// pattern switches.

// ScenarioParams carries the tunables a scenario may consume; fields a
// scenario does not use are ignored. DefaultScenarioParams gives the
// conventional values used by the CLIs.
type ScenarioParams struct {
	Load      float64 // offered load (bernoulli; burst phase of bursty)
	HotProb   float64 // probability of addressing the hot output (hotspot)
	HotDst    int     // the hot output terminal (hotspot)
	BurstProb float64 // probability a wave is a burst wave (bursty)
	IdleLoad  float64 // offered load outside bursts (bursty)
}

// DefaultScenarioParams returns the conventional tunable values.
func DefaultScenarioParams() ScenarioParams {
	return ScenarioParams{
		Load:      1.0,
		HotProb:   0.3,
		HotDst:    0,
		BurstProb: 0.2,
		IdleLoad:  0.1,
	}
}

// Scenario is a named, parameterizable traffic pattern.
type Scenario struct {
	Name        string
	Description string
	New         func(p ScenarioParams) Traffic
	// LoadAware marks scenarios that consume ScenarioParams.Load
	// themselves; the rest inject at every input, and consumers that
	// need a lower offered load (the buffered model, minsim -load)
	// compose them with Thinned.
	LoadAware bool
}

var scenarios = []Scenario{
	{
		Name:        "uniform",
		Description: "every input sends to an independently uniform destination",
		New:         func(ScenarioParams) Traffic { return Uniform() },
	},
	{
		Name:        "bernoulli",
		Description: "each input offers with probability Load, uniform destination",
		New:         func(p ScenarioParams) Traffic { return Bernoulli(p.Load) },
		LoadAware:   true,
	},
	{
		Name:        "permutation",
		Description: "a fresh uniform permutation of destinations each wave",
		New:         func(ScenarioParams) Traffic { return RandomPermutation() },
	},
	{
		Name:        "bitreversal",
		Description: "input i sends to bit-reverse(i), adversarial for shuffles",
		New:         func(ScenarioParams) Traffic { return BitReversal() },
	},
	{
		Name:        "hotspot",
		Description: "each packet targets the hot output with probability HotProb",
		New:         func(p ScenarioParams) Traffic { return HotSpot(p.HotDst, p.HotProb) },
	},
	{
		Name:        "tornado",
		Description: "input i sends to (i + n/2) mod n, the half-offset permutation",
		New:         func(ScenarioParams) Traffic { return Tornado() },
	},
	{
		Name:        "transpose",
		Description: "address bits rotated by half the width (matrix transpose)",
		New:         func(ScenarioParams) Traffic { return Transpose() },
	},
	{
		Name:        "neighbor",
		Description: "input i sends to (i+1) mod n, nearest-neighbor streaming",
		New:         func(ScenarioParams) Traffic { return NearestNeighbor() },
	},
	{
		Name:        "bursty",
		Description: "on/off waves: Load with probability BurstProb, else IdleLoad",
		New:         func(p ScenarioParams) Traffic { return Bursty(p.BurstProb, p.Load, p.IdleLoad) },
		LoadAware:   true,
	},
}

// Scenarios returns the registry in declaration order (a copy).
func Scenarios() []Scenario {
	out := make([]Scenario, len(scenarios))
	copy(out, scenarios)
	return out
}

// ScenarioNames returns the registered names in declaration order.
func ScenarioNames() []string {
	names := make([]string, len(scenarios))
	for i, s := range scenarios {
		names[i] = s.Name
	}
	return names
}

// LookupScenario finds a scenario by name.
func LookupScenario(name string) (Scenario, bool) {
	for _, s := range scenarios {
		if s.Name == name {
			return s, true
		}
	}
	return Scenario{}, false
}
