package sim

import (
	"math/rand/v2"
	"sync"
	"testing"

	"minequiv/internal/bitops"
	"minequiv/internal/perm"
	"minequiv/internal/topology"
)

func bitRunnerFor(t testing.TB, f *Fabric) *BitWaveRunner {
	t.Helper()
	r, err := f.NewBitWaveRunner()
	if err != nil {
		t.Fatalf("NewBitWaveRunner: %v", err)
	}
	return r
}

// identityFabric builds a non-Banyan fabric (identity inter-stage links
// leave every stage-0 cell reaching only 2 of N terminals).
func identityFabric(t *testing.T, n int) *Fabric {
	t.Helper()
	N := 1 << uint(n)
	perms := make([]perm.Perm, n-1)
	for i := range perms {
		perms[i] = perm.Identity(N)
	}
	f, err := NewFabric(perms)
	if err != nil {
		t.Fatalf("NewFabric: %v", err)
	}
	return f
}

func TestBitSliceable(t *testing.T) {
	for _, name := range topology.Names() {
		f := fabricFor(t, name, 4)
		if !f.BitSliceable() {
			t.Errorf("%s: registry Banyan fabric not bit-sliceable", name)
		}
	}
	bad := identityFabric(t, 4)
	if bad.BitSliceable() {
		t.Fatalf("identity-linked fabric reported bit-sliceable")
	}
	if _, err := bad.NewBitWaveRunner(); err == nil {
		t.Fatalf("NewBitWaveRunner on non-sliceable fabric: no error")
	}
}

// bitLaneFaults folds per-lane resamples of plan into a BitFaultState,
// lane j drawn from stream (fseed, j) — the same stream the scalar
// reference below uses, so lane j sees the identical realization.
func bitLaneFaults(t *testing.T, f *Fabric, plan FaultPlan, fseed uint64, lanes int) *BitFaultState {
	t.Helper()
	bf := f.NewBitFaultState()
	fs := f.NewFaultState()
	for j := 0; j < lanes; j++ {
		fs.Resample(plan, rand.New(rand.NewPCG(fseed, uint64(j))))
		if err := bf.SetLane(j, fs); err != nil {
			t.Fatalf("SetLane(%d): %v", j, err)
		}
	}
	return bf
}

// TestBitWaveMatchesScalar is the kernel-equivalence property at the
// sim layer: for every registry topology, several sizes, traffic
// patterns, fault plans and batch widths, lane j of the bit-sliced
// kernel must reproduce the scalar wave of the identical rng stream
// counter for counter, and the pooled DropStage must match the scalar
// sum. This is byte-identity by construction, so comparisons are exact.
func TestBitWaveMatchesScalar(t *testing.T) {
	plans := []struct {
		name string
		plan FaultPlan
		use  bool
	}{
		{"intact", FaultPlan{}, false},
		{"pinned", FaultPlan{Faults: []Fault{
			{Kind: SwitchDead, Stage: 0, Cell: 1},
			{Kind: SwitchStuck1, Stage: 1, Cell: 0},
			{Kind: LinkDown, Stage: 2, Link: 3},
		}}, true},
		{"random", FaultPlan{SwitchDeadRate: 0.05, SwitchStuckRate: 0.10, LinkDownRate: 0.05}, true},
	}
	traffics := []struct {
		name string
		tr   Traffic
	}{
		{"uniform", Uniform()},
		{"bernoulli-0.6", Bernoulli(0.6)},
		{"bit-reversal", BitReversal()},
	}
	for _, name := range topology.Names() {
		for _, n := range []int{3, 5} {
			f := fabricFor(t, name, n)
			wr := f.NewWaveRunner()
			br := bitRunnerFor(t, f)
			for _, pl := range plans {
				for _, tr := range traffics {
					for _, lanes := range []int{1, 5, 64} {
						const seed, fseed = 0xABCD, 0xF00D
						// Scalar reference, one lane at a time.
						var (
							scal      [64]WaveResult
							dropStage = make([]int, f.Spans)
						)
						fs := f.NewFaultState()
						for j := 0; j < lanes; j++ {
							if pl.use {
								fs.Resample(pl.plan, rand.New(rand.NewPCG(fseed, uint64(j))))
								if err := wr.SetFaults(fs); err != nil {
									t.Fatal(err)
								}
							} else if err := wr.SetFaults(nil); err != nil {
								t.Fatal(err)
							}
							res, err := wr.RunTraffic(tr.tr, rand.New(rand.NewPCG(seed, uint64(j))))
							if err != nil {
								t.Fatalf("%s/n=%d/%s/%s scalar lane %d: %v", name, n, pl.name, tr.name, j, err)
							}
							for s, d := range res.DropStage {
								dropStage[s] += d
							}
							res.DropStage = nil
							scal[j] = res
						}
						// Bit-sliced batch on the identical streams.
						if pl.use {
							if err := br.SetFaults(bitLaneFaults(t, f, pl.plan, fseed, lanes)); err != nil {
								t.Fatal(err)
							}
						} else if err := br.SetFaults(nil); err != nil {
							t.Fatal(err)
						}
						rngs := make([]*rand.Rand, lanes)
						for j := range rngs {
							rngs[j] = rand.New(rand.NewPCG(seed, uint64(j)))
						}
						got, err := br.RunTraffic(tr.tr, rngs)
						if err != nil {
							t.Fatalf("%s/n=%d/%s/%s bit: %v", name, n, pl.name, tr.name, err)
						}
						if got.Lanes != lanes {
							t.Fatalf("Lanes = %d, want %d", got.Lanes, lanes)
						}
						for j := 0; j < lanes; j++ {
							want := scal[j]
							if got.Offered[j] != want.Offered || got.Delivered[j] != want.Delivered ||
								got.Dropped[j] != want.Dropped || got.Misrouted[j] != want.Misrouted ||
								got.FaultDropped[j] != want.FaultDropped {
								t.Errorf("%s/n=%d/%s/%s lane %d/%d:\n bit    {off %d del %d drop %d mis %d fdrop %d}\n scalar %+v",
									name, n, pl.name, tr.name, j, lanes,
									got.Offered[j], got.Delivered[j], got.Dropped[j], got.Misrouted[j], got.FaultDropped[j], want)
							}
						}
						for j := lanes; j < 64; j++ {
							if got.Offered[j]|got.Delivered[j]|got.Dropped[j]|got.Misrouted[j]|got.FaultDropped[j] != 0 {
								t.Errorf("%s/n=%d/%s/%s: unused lane %d has non-zero counters", name, n, pl.name, tr.name, j)
							}
						}
						for s := range dropStage {
							if got.DropStage[s] != dropStage[s] {
								t.Errorf("%s/n=%d/%s/%s DropStage[%d] = %d, want %d",
									name, n, pl.name, tr.name, s, got.DropStage[s], dropStage[s])
							}
						}
					}
				}
			}
		}
	}
}

// TestBitWaveMisroutedPath pins the last-stage derail classification: a
// switch stuck at the final stage exits packets on a wrong terminal,
// which both kernels must count as Misrouted, not Dropped.
func TestBitWaveMisroutedPath(t *testing.T) {
	f := fabricFor(t, topology.NameOmega, 4)
	plan := FaultPlan{Faults: []Fault{{Kind: SwitchStuck1, Stage: f.Spans - 1, Cell: 0}}}
	fs := f.NewFaultState()
	fs.Resample(plan, nil)

	const lanes = 50
	wr := f.NewWaveRunner()
	if err := wr.SetFaults(fs); err != nil {
		t.Fatal(err)
	}
	var want [lanes]WaveResult
	totalMis := 0
	for j := 0; j < lanes; j++ {
		res, err := wr.RunTraffic(Uniform(), rand.New(rand.NewPCG(9, uint64(j))))
		if err != nil {
			t.Fatal(err)
		}
		want[j] = res
		totalMis += res.Misrouted
	}
	if totalMis == 0 {
		t.Fatalf("scalar runs produced no misroutes; stuck-last-stage scenario is not exercising the path")
	}

	br := bitRunnerFor(t, f)
	bf := f.NewBitFaultState()
	if err := bf.SetAll(fs); err != nil {
		t.Fatal(err)
	}
	if err := br.SetFaults(bf); err != nil {
		t.Fatal(err)
	}
	rngs := make([]*rand.Rand, lanes)
	for j := range rngs {
		rngs[j] = rand.New(rand.NewPCG(9, uint64(j)))
	}
	got, err := br.RunTraffic(Uniform(), rngs)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < lanes; j++ {
		if got.Misrouted[j] != want[j].Misrouted || got.Dropped[j] != want[j].Dropped || got.Delivered[j] != want[j].Delivered {
			t.Fatalf("bit lane %d = {mis %d drop %d del %d}, scalar = {mis %d drop %d del %d}", j,
				got.Misrouted[j], got.Dropped[j], got.Delivered[j], want[j].Misrouted, want[j].Dropped, want[j].Delivered)
		}
	}
}

func TestBitFaultStateFolding(t *testing.T) {
	f := fabricFor(t, topology.NameOmega, 4)
	plan := FaultPlan{SwitchDeadRate: 0.2, SwitchStuckRate: 0.3, LinkDownRate: 0.2}
	fs := f.NewFaultState()
	fs.Resample(plan, rand.New(rand.NewPCG(1, 1)))

	bf := f.NewBitFaultState()
	const lane = 3
	if err := bf.SetLane(lane, fs); err != nil {
		t.Fatal(err)
	}
	laneBit := uint64(1) << lane
	for i, m := range fs.mode {
		got := bf.dead[i]&laneBit != 0
		if got != (m == switchDead) {
			t.Fatalf("dead[%d] lane bit = %t, mode = %d", i, got, m)
		}
		if s0 := bf.stuck0[i]&laneBit != 0; s0 != (m == switchStuck0) {
			t.Fatalf("stuck0[%d] lane bit = %t, mode = %d", i, s0, m)
		}
		if s1 := bf.stuck1[i]&laneBit != 0; s1 != (m == switchStuck1) {
			t.Fatalf("stuck1[%d] lane bit = %t, mode = %d", i, s1, m)
		}
		if other := (bf.dead[i] | bf.stuck0[i] | bf.stuck1[i]) &^ laneBit; other != 0 {
			t.Fatalf("switch masks[%d] leak into other lanes: %#x", i, other)
		}
	}
	for i, down := range fs.linkDown {
		if got := bf.linkDown[i]&laneBit != 0; got != down {
			t.Fatalf("linkDown[%d] lane bit = %t, want %t", i, got, down)
		}
		if other := bf.linkDown[i] &^ laneBit; other != 0 {
			t.Fatalf("linkDown[%d] leaks into other lanes: %#x", i, other)
		}
	}

	// Refolding a lane replaces it; nil clears it.
	if err := bf.SetLane(lane, nil); err != nil {
		t.Fatal(err)
	}
	for i := range bf.dead {
		if bf.dead[i]|bf.stuck0[i]|bf.stuck1[i] != 0 {
			t.Fatalf("switch masks[%d] survive a nil refold", i)
		}
	}
	for i := range bf.linkDown {
		if bf.linkDown[i] != 0 {
			t.Fatalf("linkDown[%d] survives a nil refold", i)
		}
	}

	// SetAll broadcasts one realization to every lane.
	if err := bf.SetAll(fs); err != nil {
		t.Fatal(err)
	}
	for i, m := range fs.mode {
		want := uint64(0)
		if m == switchDead {
			want = ^uint64(0)
		}
		if bf.dead[i] != want {
			t.Fatalf("SetAll dead[%d] = %#x, want %#x", i, bf.dead[i], want)
		}
	}
	bf.Reset()
	for i := range bf.linkDown {
		if bf.linkDown[i] != 0 {
			t.Fatalf("linkDown[%d] survives Reset", i)
		}
	}
}

func TestBitWaveErrors(t *testing.T) {
	f := fabricFor(t, topology.NameOmega, 3)
	r := bitRunnerFor(t, f)
	if _, err := r.RunTraffic(Uniform(), nil); err == nil {
		t.Errorf("0 lanes: no error")
	}
	rngs := make([]*rand.Rand, 65)
	for i := range rngs {
		rngs[i] = rand.New(rand.NewPCG(0, uint64(i)))
	}
	if _, err := r.RunTraffic(Uniform(), rngs); err == nil {
		t.Errorf("65 lanes: no error")
	}
	bad := func(dsts []int, _ *rand.Rand) {
		for i := range dsts {
			dsts[i] = len(dsts)
		}
	}
	if _, err := r.RunTraffic(bad, rngs[:1]); err == nil {
		t.Errorf("out-of-range destination: no error")
	}
	other := fabricFor(t, topology.NameOmega, 4)
	if err := r.SetFaults(other.NewBitFaultState()); err == nil {
		t.Errorf("foreign bit fault state: no error")
	}
	bf := f.NewBitFaultState()
	if err := bf.SetLane(64, nil); err == nil {
		t.Errorf("lane 64: no error")
	}
	if err := bf.SetLane(-1, nil); err == nil {
		t.Errorf("lane -1: no error")
	}
	if err := bf.SetLane(0, other.NewFaultState()); err == nil {
		t.Errorf("foreign fault state lane fold: no error")
	}
	if err := bf.SetAll(other.NewFaultState()); err == nil {
		t.Errorf("foreign fault state broadcast: no error")
	}
}

func TestBitSteerSweepDeterministic(t *testing.T) {
	f := fabricFor(t, topology.NameOmega, 5)
	a := bitRunnerFor(t, f)
	b := bitRunnerFor(t, f)
	if x, y := a.BitSteerSweep(7), b.BitSteerSweep(7); x != y {
		t.Fatalf("sweep not deterministic: %d vs %d", x, y)
	}
	fs := f.NewFaultState()
	fs.Resample(FaultPlan{SwitchDeadRate: 0.1}, rand.New(rand.NewPCG(2, 2)))
	bf := f.NewBitFaultState()
	if err := bf.SetAll(fs); err != nil {
		t.Fatal(err)
	}
	if err := b.SetFaults(bf); err != nil {
		t.Fatal(err)
	}
	if x, y := a.BitSteerSweep(7), b.BitSteerSweep(7); x == y {
		t.Fatalf("faulted sweep identical to intact sweep: %d", x)
	}
}

var fuzzFabric = sync.OnceValue(func() *Fabric {
	f, err := NewFabric(topology.MustBuild(topology.NameOmega, 4).LinkPerms)
	if err != nil {
		panic(err)
	}
	return f
})

// FuzzBitPlaneRoundTrip checks the two pack/unpack pivots the bit
// kernel rests on: a compiled path tag, unpacked bit by bit and walked
// through the inter-stage wiring, must land on the destination it was
// packed from; and the salt-block transpose must be a true involution
// (unpack(pack(x)) == x) for arbitrary word contents.
func FuzzBitPlaneRoundTrip(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 15, 8, 0x80, 7}, uint64(42))
	f.Add([]byte{}, uint64(0))
	f.Add([]byte{0xFF, 0x7F, 0x40}, uint64(7))
	f.Fuzz(func(t *testing.T, data []byte, seed uint64) {
		fab := fuzzFabric()
		N, n := fab.N, fab.Spans
		for src := 0; src < N && src < len(data); src++ {
			if data[src]&0x80 != 0 {
				continue // idle terminal
			}
			dst := int(data[src]) % N
			tag := fab.pathTag[src*N+dst]
			link := uint64(src)
			for s := 0; s < n; s++ {
				cell := link >> 1
				pt := uint64(tag) >> uint(s) & 1
				link = cell<<1 | pt
				if s < n-1 {
					link = fab.forward(s, link)
				}
			}
			if int(link) != dst {
				t.Fatalf("tag %#x of (src %d, dst %d) walks to terminal %d", tag, src, dst, link)
			}
		}
		var blk, orig [64]uint64
		x := seed
		for i := range blk {
			x = mix64(x)
			blk[i] = x
		}
		orig = blk
		bitops.Transpose64(&blk)
		for i, w := range blk {
			for j := 0; j < 64; j++ {
				if w>>uint(j)&1 != orig[j]>>uint(i)&1 {
					t.Fatalf("transpose: word %d bit %d != orig word %d bit %d", i, j, j, i)
				}
			}
		}
		bitops.Transpose64(&blk)
		if blk != orig {
			t.Fatalf("transpose is not an involution for seed %#x", seed)
		}
	})
}
