// Package sim is the system-evaluation substrate of this reproduction.
// The paper proves six multistage interconnection networks topologically
// equivalent but, being a theory paper, never runs them; sim supplies
// the missing systems-level meaning: a synchronous packet simulator for
// any permutation-defined MIN, with drop-on-conflict (unbuffered) and
// FIFO-queued (buffered) switch models and the classic traffic patterns.
// Isomorphic networks produce statistically identical results under
// uniform traffic — the downstream consequence of the paper's theorem.
//
// Both models are allocation-free in steady state. A WaveRunner owns
// all per-wave scratch state (packet list, claim table, arbitration
// shuffle, per-stage drop counters); a BufferedRunner owns the
// multi-lane ring FIFOs, arbitration pointers, latency histogram and
// occupancy accumulators of the queued model. The parallel trial
// engine in internal/engine gives each worker its own runner.
// Fabric.RunWave, Fabric.Throughput and Fabric.RunBuffered remain as
// convenience wrappers for one-off use.
package sim

import (
	"fmt"
	"math/rand/v2"

	"minequiv/internal/perm"
)

// Fabric is a compiled simulation model of one MIN: per-stage link
// permutations plus precomputed destination-tag routing tables that work
// for ANY Banyan network, PIPID or not (reachability-based).
type Fabric struct {
	N     int // terminals
	H     int // cells per stage
	Spans int // stages
	perms []perm.Perm
	// port[s][cell*N + dst] = output port (0/1) that leads from cell at
	// stage s toward output terminal dst; 0xFF when unreachable.
	port [][]uint8
	// ambiguous records whether some (stage, cell, dst) had BOTH ports
	// leading to dst — a multi-path (non-Banyan) fabric. The compiled
	// tables collapse the choice toward port 0, so this must be noted at
	// compile time to be observable later.
	ambiguous bool
}

// NewFabric compiles the routing tables. Unreachable (cell, dst) pairs
// are tolerated and marked, so non-Banyan networks can still be
// simulated for comparison; pairs where both ports lead to dst
// (multi-path ambiguity) are resolved toward port 0 and flagged.
func NewFabric(perms []perm.Perm) (*Fabric, error) {
	n := len(perms) + 1
	N := 1 << uint(n)
	h := N / 2
	for s, p := range perms {
		if p.N() != N {
			return nil, fmt.Errorf("sim: stage %d permutation on %d symbols, want %d", s, p.N(), N)
		}
	}
	f := &Fabric{N: N, H: h, Spans: n, perms: perms}
	// reach[cell] = bitset over destinations, built backward.
	words := (N + 63) / 64
	cur := make([][]uint64, h)  // reach at stage s+1
	next := make([][]uint64, h) // scratch
	for c := 0; c < h; c++ {
		cur[c] = make([]uint64, words)
		next[c] = make([]uint64, words)
	}
	// Last stage: cell c reaches terminals 2c and 2c+1.
	for c := 0; c < h; c++ {
		for w := range cur[c] {
			cur[c][w] = 0
		}
		cur[c][(2*c)/64] |= 3 << uint((2*c)%64)
	}
	f.port = make([][]uint8, n)
	// Last stage port choice: dst parity.
	f.port[n-1] = make([]uint8, h*N)
	for c := 0; c < h; c++ {
		for dst := 0; dst < N; dst++ {
			if dst>>1 == c {
				f.port[n-1][c*N+dst] = uint8(dst & 1)
			} else {
				f.port[n-1][c*N+dst] = 0xFF
			}
		}
	}
	for s := n - 2; s >= 0; s-- {
		f.port[s] = make([]uint8, h*N)
		for c := 0; c < h; c++ {
			child0 := int(perms[s].Apply(uint64(c)<<1) >> 1)
			child1 := int(perms[s].Apply(uint64(c)<<1|1) >> 1)
			for w := 0; w < words; w++ {
				next[c][w] = cur[child0][w] | cur[child1][w]
			}
			for dst := 0; dst < N; dst++ {
				r0 := cur[child0][dst/64]>>(uint(dst)%64)&1 == 1
				r1 := cur[child1][dst/64]>>(uint(dst)%64)&1 == 1
				switch {
				case r0 && r1:
					f.ambiguous = true
					f.port[s][c*N+dst] = 0
				case r0:
					f.port[s][c*N+dst] = 0
				case r1:
					f.port[s][c*N+dst] = 1
				default:
					f.port[s][c*N+dst] = 0xFF
				}
			}
		}
		cur, next = next, cur
	}
	return f, nil
}

// Banyan reports whether the compiled fabric has full unique-path
// reachability: every (stage-0 cell, destination) pair routable and no
// stage ever offered both ports for one destination. Reach sets only
// grow walking backward, so a reachability gap anywhere surfaces as a
// gap at stage 0 — scanning stage 0 suffices; path multiplicity is
// recorded during compilation because the tables collapse it.
func (f *Fabric) Banyan() bool {
	if f.ambiguous {
		return false
	}
	for _, p := range f.port[0] {
		if p == 0xFF {
			return false
		}
	}
	return true
}

// Packet is an in-flight message.
type Packet struct {
	Src, Dst int
	Born     int // injection cycle (buffered model)
}

// WaveResult reports one synchronous unbuffered wave.
type WaveResult struct {
	Offered   int
	Delivered int
	Dropped   int
	DropStage []int // drops per stage
	Misrouted int   // packets that reached a wrong terminal (non-Banyan fabrics)
}

// flying is a packet in transit during one wave.
type flying struct {
	src, dst int
	link     uint64
}

// WaveRunner owns the scratch state of the wave model so that repeated
// waves through one fabric are allocation-free in steady state. A runner
// is NOT safe for concurrent use; create one per goroutine (the parallel
// engine gives each worker its own).
type WaveRunner struct {
	f         *Fabric
	pkts      []flying
	order     []int32
	claimed   []int32 // outlink -> packet index claiming it
	dropStage []int
	dsts      []int // destination buffer for RunTraffic
}

// NewWaveRunner returns a runner with all buffers sized for f.
func (f *Fabric) NewWaveRunner() *WaveRunner {
	return &WaveRunner{
		f:         f,
		pkts:      make([]flying, 0, f.N),
		order:     make([]int32, f.N),
		claimed:   make([]int32, f.N),
		dropStage: make([]int, f.Spans),
		dsts:      make([]int, f.N),
	}
}

// Fabric returns the fabric this runner simulates.
func (r *WaveRunner) Fabric() *Fabric { return r.f }

// RunWave pushes one batch of packets through the network: dsts[i] is
// the destination of the packet injected at input terminal i, or -1 for
// no packet. Two packets wanting the same switch output collide; the
// rng picks the winner fairly and the loser is dropped.
//
// The returned WaveResult's DropStage slice is owned by the runner and
// overwritten by the next call; copy it if it must outlive the wave.
func (r *WaveRunner) RunWave(dsts []int, rng *rand.Rand) (WaveResult, error) {
	f := r.f
	if len(dsts) != f.N {
		return WaveResult{}, fmt.Errorf("sim: %d destinations, want %d", len(dsts), f.N)
	}
	for i := range r.dropStage {
		r.dropStage[i] = 0
	}
	res := WaveResult{DropStage: r.dropStage}
	pkts := r.pkts[:0]
	for src, dst := range dsts {
		if dst < 0 {
			continue
		}
		if dst >= f.N {
			return WaveResult{}, fmt.Errorf("sim: destination %d out of range", dst)
		}
		pkts = append(pkts, flying{src: src, dst: dst, link: uint64(src)})
	}
	res.Offered = len(pkts)
	claimed := r.claimed[:f.N]
	for s := 0; s < f.Spans; s++ {
		for i := range claimed {
			claimed[i] = -1
		}
		// First pass: claims with fair tie-breaking. Iterate in random
		// order so neither low inputs nor early arrivals are favored.
		order := r.order[:len(pkts)]
		for i := range order {
			order[i] = int32(i)
		}
		for i := len(order) - 1; i > 0; i-- {
			j := rng.IntN(i + 1)
			order[i], order[j] = order[j], order[i]
		}
		for _, idx := range order {
			p := pkts[idx]
			cell := p.link >> 1
			pt := f.port[s][int(cell)*f.N+p.dst]
			if pt == 0xFF {
				// Unreachable in this fabric: count as misroute-drop.
				res.DropStage[s]++
				res.Dropped++
				pkts[idx].dst = -1
				continue
			}
			out := cell<<1 | uint64(pt)
			if claimed[out] >= 0 {
				res.DropStage[s]++
				res.Dropped++
				pkts[idx].dst = -1
				continue
			}
			claimed[out] = idx
			pkts[idx].link = out
		}
		keep := pkts[:0]
		for _, p := range pkts {
			if p.dst < 0 {
				continue
			}
			if s < f.Spans-1 {
				p.link = f.perms[s].Apply(p.link)
			}
			keep = append(keep, p)
		}
		pkts = keep
	}
	for _, p := range pkts {
		if int(p.link) == p.dst {
			res.Delivered++
		} else {
			res.Misrouted++
		}
	}
	r.pkts = pkts[:0]
	return res, nil
}

// RunTraffic generates one wave of the pattern into the runner's
// destination buffer and runs it. Allocation-free for allocation-free
// patterns (every registry pattern qualifies).
func (r *WaveRunner) RunTraffic(pattern Traffic, rng *rand.Rand) (WaveResult, error) {
	pattern(r.dsts, rng)
	return r.RunWave(r.dsts, rng)
}

// RunWave is the one-shot convenience form; it allocates a fresh runner
// per call. Hot loops should hold a WaveRunner instead.
func (f *Fabric) RunWave(dsts []int, rng *rand.Rand) (WaveResult, error) {
	return f.NewWaveRunner().RunWave(dsts, rng)
}

// Throughput runs `waves` independent waves of the given traffic pattern
// and returns the mean delivered fraction.
func (f *Fabric) Throughput(pattern Traffic, waves int, rng *rand.Rand) (float64, error) {
	if waves <= 0 {
		return 0, fmt.Errorf("sim: waves must be positive")
	}
	r := f.NewWaveRunner()
	totalDelivered, totalOffered := 0, 0
	for w := 0; w < waves; w++ {
		res, err := r.RunTraffic(pattern, rng)
		if err != nil {
			return 0, err
		}
		totalDelivered += res.Delivered
		totalOffered += res.Offered
	}
	if totalOffered == 0 {
		return 0, nil
	}
	return float64(totalDelivered) / float64(totalOffered), nil
}
