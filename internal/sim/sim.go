// Package sim is the system-evaluation substrate of this reproduction.
// The paper proves six multistage interconnection networks topologically
// equivalent but, being a theory paper, never runs them; sim supplies
// the missing systems-level meaning: a synchronous packet simulator for
// any permutation-defined MIN, with drop-on-conflict (unbuffered) and
// FIFO-queued (buffered) switch models, the classic traffic patterns,
// and a first-class fault model (dead/stuck switches, severed links).
// Isomorphic networks produce statistically identical results under
// uniform traffic — the downstream consequence of the paper's theorem.
//
// Both models drive the same compiled fabric kernel (see fabric.go):
// every crossbar decision of every model goes through Fabric.steer and
// every inter-stage move through Fabric.forward, so the switching logic
// — fault handling included — exists exactly once.
//
// Both models are allocation-free in steady state. A WaveRunner owns
// all per-wave scratch state (packet list, claim table, tie-break salt
// words, per-stage drop counters); a BufferedRunner owns the
// multi-lane ring FIFOs, arbitration pointers, latency histogram and
// occupancy accumulators of the queued model. The parallel trial
// engine in internal/engine gives each worker its own runner (and its
// own FaultState when a FaultPlan is in force). Fabric.RunWave,
// Fabric.Throughput and Fabric.RunBuffered remain as convenience
// wrappers for one-off use.
package sim

import (
	"fmt"
	"math/rand/v2"
)

// Packet is an in-flight message.
type Packet struct {
	Src, Dst int
	Born     int // injection cycle (buffered model)
}

// WaveResult reports one synchronous unbuffered wave.
type WaveResult struct {
	Offered      int
	Delivered    int
	Dropped      int
	DropStage    []int // drops per stage
	Misrouted    int   // packets that reached a wrong terminal (non-Banyan fabrics)
	FaultDropped int   // subset of Dropped killed directly by a fault (dead switch, severed link)
}

// flying is a packet in transit during one wave.
type flying struct {
	src, dst int
	link     uint64
}

// WaveRunner owns the scratch state of the wave model so that repeated
// waves through one fabric are allocation-free in steady state. A runner
// is NOT safe for concurrent use; create one per goroutine (the parallel
// engine gives each worker its own).
type WaveRunner struct {
	f         *Fabric
	faults    *FaultState
	pkts      []flying
	claimed   []int32  // outlink -> packet index claiming it
	salt      []uint64 // per-stage conflict tie-break words, bit c = cell c
	dropStage []int
	dsts      []int // destination buffer for RunTraffic
}

// NewWaveRunner returns a runner with all buffers sized for f.
func (f *Fabric) NewWaveRunner() *WaveRunner {
	return &WaveRunner{
		f:         f,
		pkts:      make([]flying, 0, f.N),
		claimed:   make([]int32, f.N),
		salt:      make([]uint64, (f.H+63)/64),
		dropStage: make([]int, f.Spans),
		dsts:      make([]int, f.N),
	}
}

// Fabric returns the fabric this runner simulates.
func (r *WaveRunner) Fabric() *Fabric { return r.f }

// SetFaults attaches a fault state the runner consults on every switch
// decision; nil restores the intact fabric. The state must have been
// created by the runner's own fabric. The caller keeps ownership and
// may resample it between waves (the engine resamples per trial).
func (r *WaveRunner) SetFaults(fs *FaultState) error {
	if fs != nil && fs.f != r.f {
		return fmt.Errorf("sim: fault state belongs to a different fabric")
	}
	r.faults = fs
	return nil
}

// RunWave pushes one batch of packets through the network: dsts[i] is
// the destination of the packet injected at input terminal i, or -1 for
// no packet. Two packets wanting the same switch output collide; a
// per-stage salt word drawn from the rng picks the winner fairly and
// the loser is dropped. The salt discipline is a contract shared with
// the bit-sliced kernel (see bitfabric.go): at the start of every stage
// the runner draws ceil(H/64) uint64 words, and bit c of the stage's
// salt decides every conflict at cell c — set means the packet arriving
// on the odd inlink wins, clear the even one. A conflict is always
// between the cell's two inlinks, whose parities differ, so one salt
// bit per cell resolves it without order dependence, and the draw
// happens whether or not a conflict occurs, keeping the stream
// consumption a pure function of the stage count. An attached fault
// state is honored: dead switches and severed links kill packets
// (counted in FaultDropped), stuck switches force the crossbar and the
// misrouted packet is dropped downstream when its destination becomes
// unreachable.
//
// The returned WaveResult's DropStage slice is owned by the runner and
// overwritten by the next call; copy it if it must outlive the wave.
//
//minlint:hotpath
func (r *WaveRunner) RunWave(dsts []int, rng *rand.Rand) (WaveResult, error) {
	f := r.f
	if len(dsts) != f.N {
		return WaveResult{}, fmt.Errorf("sim: %d destinations, want %d", len(dsts), f.N) //minlint:allow hotalloc -- cold validation path
	}
	for i := range r.dropStage {
		r.dropStage[i] = 0
	}
	res := WaveResult{DropStage: r.dropStage}
	pkts := r.pkts[:0]
	for src, dst := range dsts {
		if dst < 0 {
			continue
		}
		if dst >= f.N {
			return WaveResult{}, fmt.Errorf("sim: destination %d out of range", dst) //minlint:allow hotalloc -- cold validation path
		}
		pkts = append(pkts, flying{src: src, dst: dst, link: uint64(src)})
	}
	res.Offered = len(pkts)
	claimed := r.claimed[:f.N]
	salt := r.salt
	for s := 0; s < f.Spans; s++ {
		// The stage's tie-break salt is drawn unconditionally (the
		// bit-sliced kernel shares this exact stream shape).
		for i := range salt {
			salt[i] = rng.Uint64()
		}
		for i := range claimed {
			claimed[i] = -1
		}
		// Claim pass. The winner of a contended output is decided by the
		// cell's salt bit (inlink parity), not by arrival order, so the
		// scan order is immaterial and no shuffle is needed: a later
		// salt-favored packet evicts the earlier claimant.
		for idx := range pkts {
			p := &pkts[idx]
			cell := p.link >> 1
			pt := f.steer(r.faults, s, int(cell), p.dst)
			if pt >= portFaulted {
				// Unreachable in this fabric, or killed by a fault.
				res.DropStage[s]++
				res.Dropped++
				if pt == portFaulted {
					res.FaultDropped++
				}
				p.dst = -1
				continue
			}
			out := cell<<1 | uint64(pt)
			if other := claimed[out]; other >= 0 {
				res.DropStage[s]++
				res.Dropped++
				win := salt[cell>>6] >> (cell & 63) & 1
				if p.link&1 == win {
					pkts[other].dst = -1
					claimed[out] = int32(idx)
					p.link = out
				} else {
					p.dst = -1
				}
				continue
			}
			claimed[out] = int32(idx)
			p.link = out
		}
		keep := pkts[:0]
		for _, p := range pkts {
			if p.dst < 0 {
				continue
			}
			if s < f.Spans-1 {
				p.link = f.forward(s, p.link)
			}
			keep = append(keep, p)
		}
		pkts = keep
	}
	for _, p := range pkts {
		if int(p.link) == p.dst {
			res.Delivered++
		} else {
			res.Misrouted++
		}
	}
	r.pkts = pkts[:0]
	return res, nil
}

// RunTraffic generates one wave of the pattern into the runner's
// destination buffer and runs it. Allocation-free for allocation-free
// patterns (every registry pattern qualifies).
func (r *WaveRunner) RunTraffic(pattern Traffic, rng *rand.Rand) (WaveResult, error) {
	pattern(r.dsts, rng)
	return r.RunWave(r.dsts, rng)
}

// RunWave is the one-shot convenience form; it allocates a fresh runner
// per call. Hot loops should hold a WaveRunner instead.
func (f *Fabric) RunWave(dsts []int, rng *rand.Rand) (WaveResult, error) {
	return f.NewWaveRunner().RunWave(dsts, rng)
}

// Throughput runs `waves` independent waves of the given traffic pattern
// and returns the mean delivered fraction.
func (f *Fabric) Throughput(pattern Traffic, waves int, rng *rand.Rand) (float64, error) {
	if waves <= 0 {
		return 0, fmt.Errorf("sim: waves must be positive")
	}
	r := f.NewWaveRunner()
	totalDelivered, totalOffered := 0, 0
	for w := 0; w < waves; w++ {
		res, err := r.RunTraffic(pattern, rng)
		if err != nil {
			return 0, err
		}
		totalDelivered += res.Delivered
		totalOffered += res.Offered
	}
	if totalOffered == 0 {
		return 0, nil
	}
	return float64(totalDelivered) / float64(totalOffered), nil
}
