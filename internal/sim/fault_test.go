package sim

import (
	"math/rand/v2"
	"reflect"
	"testing"

	"minequiv/internal/topology"
)

func omegaFabric(t *testing.T, n int) *Fabric {
	t.Helper()
	f, err := NewFabric(topology.MustBuild(topology.NameOmega, n).LinkPerms)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// A dead stage-0 switch kills exactly the packets entering it; they are
// counted as fault drops at stage 0.
func TestFaultDeadSwitchKillsItsInputs(t *testing.T) {
	f := omegaFabric(t, 4)
	fs := f.NewFaultState()
	if err := fs.Sample(FaultPlan{Faults: []Fault{{Kind: SwitchDead, Stage: 0, Cell: 0}}}, nil); err != nil {
		t.Fatal(err)
	}
	r := f.NewWaveRunner()
	if err := r.SetFaults(fs); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(1, 2))
	// Terminals 0 and 1 enter stage-0 cell 0: both die there as fault
	// drops, regardless of destination.
	dsts := make([]int, f.N)
	for i := range dsts {
		dsts[i] = -1
	}
	dsts[0], dsts[1] = 3, 9
	res, err := r.RunWave(dsts, rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.Dropped != 2 || res.FaultDropped != 2 || res.Delivered != 0 {
		t.Fatalf("dropped=%d faultDropped=%d delivered=%d, want 2/2/0", res.Dropped, res.FaultDropped, res.Delivered)
	}
	if res.DropStage[0] != 2 {
		t.Fatalf("DropStage[0]=%d, want 2", res.DropStage[0])
	}
	// A packet entering any other switch is untouched.
	dsts[0], dsts[1] = -1, -1
	dsts[2] = 6
	res, err = r.RunWave(dsts, rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != 1 || res.Dropped != 0 {
		t.Fatalf("healthy switch: delivered=%d dropped=%d, want 1/0", res.Delivered, res.Dropped)
	}
}

// A stuck switch forces the crossbar: packets that needed the other
// port are knocked off their unique path and die downstream as
// unreachable (not as direct fault kills), packets that wanted the
// forced port sail through.
func TestFaultStuckSwitchMisroutes(t *testing.T) {
	f := omegaFabric(t, 4)
	fs := f.NewFaultState()
	if err := fs.Sample(FaultPlan{Faults: []Fault{{Kind: SwitchStuck0, Stage: 0, Cell: 0}}}, nil); err != nil {
		t.Fatal(err)
	}
	r := f.NewWaveRunner()
	if err := r.SetFaults(fs); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(3, 4))

	// Find, for src 0, a destination the intact fabric routes via port 1
	// at stage 0 — the stuck switch must lose that packet downstream.
	var blockedDst = -1
	for dst := 0; dst < f.N; dst++ {
		if f.steer(nil, 0, 0, dst) == 1 {
			blockedDst = dst
			break
		}
	}
	if blockedDst < 0 {
		t.Fatal("no port-1 destination from cell 0?")
	}
	dsts := make([]int, f.N)
	for i := range dsts {
		dsts[i] = -1
	}
	dsts[0] = blockedDst
	res, err := r.RunWave(dsts, rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != 0 || res.Dropped != 1 {
		t.Fatalf("stuck switch: delivered=%d dropped=%d, want 0/1", res.Delivered, res.Dropped)
	}
	if res.FaultDropped != 0 {
		t.Fatalf("misroute counted as direct fault kill: FaultDropped=%d", res.FaultDropped)
	}
	if res.DropStage[0] != 0 {
		t.Fatal("misrouted packet should die downstream, not at the stuck stage")
	}

	// A destination the stuck port serves anyway is unaffected.
	for dst := 0; dst < f.N; dst++ {
		if f.steer(nil, 0, 0, dst) == 0 {
			dsts[0] = dst
			break
		}
	}
	res, err = r.RunWave(dsts, rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != 1 {
		t.Fatalf("port-0 destination through stuck0 switch: delivered=%d, want 1", res.Delivered)
	}
}

// Severing a last-stage outlink cuts delivery to exactly that terminal.
func TestFaultLinkDownCutsTerminal(t *testing.T) {
	f := omegaFabric(t, 3)
	fs := f.NewFaultState()
	target := 5
	if err := fs.Sample(FaultPlan{Faults: []Fault{{Kind: LinkDown, Stage: f.Spans - 1, Link: target}}}, nil); err != nil {
		t.Fatal(err)
	}
	r := f.NewWaveRunner()
	if err := r.SetFaults(fs); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(5, 6))
	// One packet per wave from src 0 to every destination: only the
	// severed terminal is lost, and it is lost at the last stage.
	dsts := make([]int, f.N)
	for dst := 0; dst < f.N; dst++ {
		for i := range dsts {
			dsts[i] = -1
		}
		dsts[0] = dst
		res, err := r.RunWave(dsts, rng)
		if err != nil {
			t.Fatal(err)
		}
		if dst == target {
			if res.Delivered != 0 || res.FaultDropped != 1 || res.DropStage[f.Spans-1] != 1 {
				t.Fatalf("dst %d: delivered=%d faultDropped=%d dropStage=%v, want the last-stage fault kill",
					dst, res.Delivered, res.FaultDropped, res.DropStage)
			}
		} else if res.Delivered != 1 {
			t.Fatalf("dst %d: delivered=%d, want 1", dst, res.Delivered)
		}
	}
}

// An empty plan samples to an inactive state and a nil-faults run is
// byte-identical to one with an inactive state attached.
func TestFaultInactiveStateIsIntact(t *testing.T) {
	f := omegaFabric(t, 4)
	fs := f.NewFaultState()
	if err := fs.Sample(FaultPlan{}, nil); err != nil {
		t.Fatal(err)
	}
	if fs.Active() {
		t.Fatal("empty plan produced an active state")
	}
	run := func(attach bool) WaveResult {
		r := f.NewWaveRunner()
		if attach {
			if err := r.SetFaults(fs); err != nil {
				t.Fatal(err)
			}
		}
		res, err := r.RunTraffic(Uniform(), rand.New(rand.NewPCG(7, 8)))
		if err != nil {
			t.Fatal(err)
		}
		res.DropStage = nil
		return res
	}
	if !reflect.DeepEqual(run(false), run(true)) {
		t.Fatal("inactive fault state changed the simulation")
	}
}

// Sampling is a pure function of (plan, rng stream): identical streams
// give identical states, and the pinned faults survive random draws.
func TestFaultSampleDeterministic(t *testing.T) {
	f := omegaFabric(t, 5)
	plan := FaultPlan{
		Faults:          []Fault{{Kind: SwitchDead, Stage: 1, Cell: 3}},
		SwitchDeadRate:  0.1,
		SwitchStuckRate: 0.2,
		LinkDownRate:    0.05,
	}
	a, b := f.NewFaultState(), f.NewFaultState()
	if err := a.Sample(plan, rand.New(rand.NewPCG(9, 10))); err != nil {
		t.Fatal(err)
	}
	if err := b.Sample(plan, rand.New(rand.NewPCG(9, 10))); err != nil {
		t.Fatal(err)
	}
	for i := range a.mode {
		if a.mode[i] != b.mode[i] {
			t.Fatalf("mode[%d] differs: %d vs %d", i, a.mode[i], b.mode[i])
		}
	}
	for i := range a.linkDown {
		if a.linkDown[i] != b.linkDown[i] {
			t.Fatalf("linkDown[%d] differs", i)
		}
	}
	if a.mode[1*f.H+3] != switchDead {
		t.Fatal("pinned fault lost during random sampling")
	}
	dead, stuck, links := a.CountFaults()
	if dead == 0 || stuck == 0 || links == 0 {
		t.Fatalf("expected a mix of sampled faults, got dead=%d stuck=%d links=%d", dead, stuck, links)
	}
	// Resampling an empty plan restores the intact fabric.
	if err := a.Sample(FaultPlan{}, nil); err != nil {
		t.Fatal(err)
	}
	if d, s, l := a.CountFaults(); d+s+l != 0 || a.Active() {
		t.Fatal("Reset via empty plan left faults behind")
	}
}

// Plan validation rejects out-of-range elements and rates.
func TestFaultPlanValidate(t *testing.T) {
	f := omegaFabric(t, 3)
	bad := []FaultPlan{
		{Faults: []Fault{{Kind: SwitchDead, Stage: f.Spans, Cell: 0}}},
		{Faults: []Fault{{Kind: SwitchDead, Stage: 0, Cell: f.H}}},
		{Faults: []Fault{{Kind: LinkDown, Stage: 0, Link: f.N}}},
		{Faults: []Fault{{Kind: 0, Stage: 0}}},
		{SwitchDeadRate: -0.1},
		{LinkDownRate: 1.5},
	}
	for i, p := range bad {
		if err := p.Validate(f); err == nil {
			t.Errorf("plan %d accepted: %+v", i, p)
		}
	}
	if err := (FaultPlan{SwitchDeadRate: 0.5}).Validate(f); err != nil {
		t.Errorf("valid plan rejected: %v", err)
	}
}

// The buffered model honors the same fault state: a dead switch drains
// its queues as fault drops while the rest of the fabric keeps
// delivering, and an inactive state leaves results byte-identical.
func TestFaultBufferedDeadSwitch(t *testing.T) {
	f := omegaFabric(t, 4)
	cfg := BufferedConfig{Load: 0.7, Queue: 4, Cycles: 400, Warmup: 50}
	run := func(fs *FaultState) BufferedResult {
		r, err := f.NewBufferedRunner(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if fs != nil {
			if err := r.SetFaults(fs); err != nil {
				t.Fatal(err)
			}
		}
		res := r.Run(rand.New(rand.NewPCG(11, 12)))
		res.StageOccupancy = nil
		return res
	}

	intact := run(nil)
	if intact.FaultDropped != 0 || intact.Dropped != 0 {
		t.Fatalf("intact omega dropped packets: %+v", intact)
	}

	fs := f.NewFaultState()
	if err := fs.Sample(FaultPlan{Faults: []Fault{{Kind: SwitchDead, Stage: 1, Cell: 2}}}, nil); err != nil {
		t.Fatal(err)
	}
	faulty := run(fs)
	if faulty.FaultDropped == 0 {
		t.Fatal("dead switch produced no fault drops in the buffered model")
	}
	if faulty.Dropped < faulty.FaultDropped {
		t.Fatalf("Dropped=%d < FaultDropped=%d", faulty.Dropped, faulty.FaultDropped)
	}
	if faulty.Delivered == 0 {
		t.Fatal("one dead switch killed all traffic")
	}
	if faulty.Delivered >= intact.Delivered {
		t.Fatalf("fault did not degrade delivery: %d >= %d", faulty.Delivered, intact.Delivered)
	}

	inactive := f.NewFaultState()
	if got := run(inactive); !reflect.DeepEqual(got, intact) {
		t.Fatalf("inactive fault state changed the buffered run:\n%+v\n%+v", got, intact)
	}
}

// SetFaults refuses a state sized for another fabric.
func TestSetFaultsWrongFabric(t *testing.T) {
	a := omegaFabric(t, 3)
	b := omegaFabric(t, 4)
	fs := b.NewFaultState()
	if err := a.NewWaveRunner().SetFaults(fs); err == nil {
		t.Fatal("wave runner accepted a foreign fault state")
	}
	br, err := a.NewBufferedRunner(BufferedConfig{Load: 0.5, Queue: 2, Cycles: 10})
	if err != nil {
		t.Fatal(err)
	}
	if err := br.SetFaults(fs); err == nil {
		t.Fatal("buffered runner accepted a foreign fault state")
	}
}

// A stuck LAST-stage switch pushes packets out the wrong terminal;
// the buffered model must count those as Misrouted, not Delivered
// (and give them no latency sample), mirroring the wave model.
func TestFaultBufferedStuckLastStageMisroutes(t *testing.T) {
	f := omegaFabric(t, 3)
	fs := f.NewFaultState()
	// Terminals 4 and 5 exit stage-2 cell 2; stuck0 forces everything
	// out terminal 4.
	if err := fs.Sample(FaultPlan{Faults: []Fault{{Kind: SwitchStuck0, Stage: f.Spans - 1, Cell: 2}}}, nil); err != nil {
		t.Fatal(err)
	}
	r, err := f.NewBufferedRunner(BufferedConfig{
		Queue: 2, Cycles: 200, Warmup: 20,
		Pattern: Thinned(0.3, HotSpot(5, 1.0)), // every packet heads for terminal 5
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.SetFaults(fs); err != nil {
		t.Fatal(err)
	}
	res := r.Run(rand.New(rand.NewPCG(13, 14)))
	if res.Delivered != 0 {
		t.Fatalf("wrong-terminal exits counted as deliveries: %+v", res)
	}
	if res.Misrouted == 0 {
		t.Fatalf("stuck last-stage switch produced no misroutes: %+v", res)
	}
	if res.MeanLatency != 0 || res.P99 != 0 {
		t.Fatalf("misroutes contributed latency samples: %+v", res)
	}
	// Packets for terminal 4 (the stuck port's own terminal) still land.
	r2, err := f.NewBufferedRunner(BufferedConfig{
		Queue: 2, Cycles: 200, Warmup: 20,
		Pattern: Thinned(0.3, HotSpot(4, 1.0)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := r2.SetFaults(fs); err != nil {
		t.Fatal(err)
	}
	res = r2.Run(rand.New(rand.NewPCG(13, 14)))
	if res.Delivered == 0 || res.Misrouted != 0 {
		t.Fatalf("stuck port's own terminal broken: %+v", res)
	}
}
