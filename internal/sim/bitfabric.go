package sim

import (
	"fmt"
	"math/bits"
	"math/rand/v2"

	"minequiv/internal/bitops"
)

// This file is the bit-sliced wave kernel: 64 independent Monte Carlo
// waves packed as bit-planes in uint64 lanes (lane j = wave j) and
// steered through the whole fabric with word-parallel boolean algebra.
// A 2x2 crossbar decision is exactly one routing-tag bit plus one
// conflict bit, so one pass over the H cells of a stage — a handful of
// AND/OR/XOR per cell — advances all 64 waves at once.
//
// The kernel is byte-identical to the scalar WaveRunner by
// construction, not by luck; three contracts make that hold:
//
//  1. Tag planes. BitSliceable fabrics are Banyan (unique-path), so a
//     packet's whole port schedule is the compiled Fabric.pathTag of
//     its (src, dst) pair — bit s of the tag is the port the scalar
//     tables steer at stage s. Plane tag[s] carries that bit for every
//     in-flight lane, indexed by current inlink.
//  2. Salt tie-breaks. Conflicts are strictly between the two inlinks
//     of one cell, so one salt bit per (stage, cell) — drawn as
//     ceil(H/64) uint64 words per stage from the wave's own rng, the
//     exact stream shape WaveRunner.RunWave consumes — picks the
//     winning inlink parity. The per-wave draws land row-major (one
//     word per wave) and are pivoted to per-cell lane words with
//     bitops.Transpose64.
//  3. Fault folding. A BitFaultState holds per-(stage, element) lane
//     masks for dead/stuck0/stuck1 switches and severed links, folded
//     lane-by-lane from sampled FaultStates. The per-cell algebra
//     applies them in the scalar steer's exact precedence: dead kills
//     first (FaultDropped), an upstream-derailed arrival drops next
//     (plain drop — its cell cannot reach its destination in a Banyan
//     fabric), stuck forces the port plane (derailing lanes whose tag
//     bit disagrees), a severed chosen outlink kills (FaultDropped),
//     and only then surviving conflicts are arbitrated.
//
// Derailment replaces the scalar's portUnreachable lookup: in a
// unique-path fabric a packet knocked off its path can never reach its
// destination, so a derailed lane is dropped on arrival at the next
// stage (unless a dead switch there upgrades the kill to FaultDropped)
// and a lane derailed at the last stage exits a wrong terminal —
// Misrouted, exactly the scalar classification.

// BitFaultState is the bit-sliced counterpart of up to 64 FaultStates:
// per-(stage, cell) lane masks for dead/stuck switches and per-(stage,
// outlink) masks for severed links. Fold realized FaultStates in with
// SetLane (one trial per lane) or SetAll (one realization broadcast to
// every lane). Not safe for concurrent use; the engine gives each
// worker its own, like runner scratch.
type BitFaultState struct {
	f        *Fabric
	dead     []uint64 // per stage*H + cell: lanes whose switch is dead
	stuck0   []uint64 // per stage*H + cell: lanes stuck toward port 0
	stuck1   []uint64 // per stage*H + cell: lanes stuck toward port 1
	linkDown []uint64 // per stage*N + outlink: lanes with the link severed
}

// NewBitFaultState returns a cleared (all lanes intact) bit fault state
// sized for f.
func (f *Fabric) NewBitFaultState() *BitFaultState {
	return &BitFaultState{
		f:        f,
		dead:     make([]uint64, f.Spans*f.H),
		stuck0:   make([]uint64, f.Spans*f.H),
		stuck1:   make([]uint64, f.Spans*f.H),
		linkDown: make([]uint64, f.Spans*f.N),
	}
}

// Fabric returns the fabric this state is sized for.
func (bf *BitFaultState) Fabric() *Fabric { return bf.f }

// Reset clears every lane to the intact fabric.
func (bf *BitFaultState) Reset() {
	clear(bf.dead)
	clear(bf.stuck0)
	clear(bf.stuck1)
	clear(bf.linkDown)
}

// SetLane folds one realized FaultState into lane `lane`, replacing
// whatever that lane held (other lanes are untouched); a nil or
// inactive state clears the lane. The state must belong to the same
// fabric. Allocation-free.
func (bf *BitFaultState) SetLane(lane int, fs *FaultState) error {
	if lane < 0 || lane >= 64 {
		return fmt.Errorf("sim: lane %d out of [0,64)", lane)
	}
	if fs != nil && fs.f != bf.f {
		return fmt.Errorf("sim: fault state belongs to a different fabric")
	}
	bit := uint64(1) << uint(lane)
	if fs == nil || !fs.active {
		for i := range bf.dead {
			bf.dead[i] &^= bit
			bf.stuck0[i] &^= bit
			bf.stuck1[i] &^= bit
		}
		for i := range bf.linkDown {
			bf.linkDown[i] &^= bit
		}
		return nil
	}
	for i, m := range fs.mode {
		bf.dead[i] &^= bit
		bf.stuck0[i] &^= bit
		bf.stuck1[i] &^= bit
		switch m {
		case switchDead:
			bf.dead[i] |= bit
		case switchStuck0:
			bf.stuck0[i] |= bit
		case switchStuck1:
			bf.stuck1[i] |= bit
		}
	}
	for i, down := range fs.linkDown {
		if down {
			bf.linkDown[i] |= bit
		} else {
			bf.linkDown[i] &^= bit
		}
	}
	return nil
}

// SetAll broadcasts one realized FaultState to all 64 lanes (a pinned-
// only fault plan realizes identically every trial). A nil or inactive
// state clears everything. Allocation-free.
func (bf *BitFaultState) SetAll(fs *FaultState) error {
	if fs != nil && fs.f != bf.f {
		return fmt.Errorf("sim: fault state belongs to a different fabric")
	}
	if fs == nil || !fs.active {
		bf.Reset()
		return nil
	}
	for i, m := range fs.mode {
		bf.dead[i], bf.stuck0[i], bf.stuck1[i] = 0, 0, 0
		switch m {
		case switchDead:
			bf.dead[i] = ^uint64(0)
		case switchStuck0:
			bf.stuck0[i] = ^uint64(0)
		case switchStuck1:
			bf.stuck1[i] = ^uint64(0)
		}
	}
	for i, down := range fs.linkDown {
		if down {
			bf.linkDown[i] = ^uint64(0)
		} else {
			bf.linkDown[i] = 0
		}
	}
	return nil
}

// BitWaveResult reports one batch of up to 64 waves steered by a
// BitWaveRunner. Per-lane counters are indexed by lane (= position in
// the rngs slice handed to RunTraffic); lanes beyond the batch size are
// zero. DropStage is pooled across lanes and owned by the runner —
// overwritten by the next call, copy it if it must outlive the batch.
type BitWaveResult struct {
	Lanes        int
	Offered      [64]int
	Delivered    [64]int
	Dropped      [64]int
	Misrouted    [64]int
	FaultDropped [64]int
	DropStage    []int
}

// BitWaveRunner owns the bit-plane scratch of the bit-sliced wave
// kernel: tag planes (one per stage bit), live/derail planes, their
// double buffers, the salt block and per-lane counters. Like a
// WaveRunner it is allocation-free in steady state and NOT safe for
// concurrent use; create one per goroutine.
type BitWaveRunner struct {
	f      *Fabric
	faults *BitFaultState // nil = intact (the fabric's shared zero masks)

	tag, tagN   [][]uint64 // [Spans][N]: plane b, bit j = port at stage b of lane j's packet on this inlink
	live, liveN []uint64   // [N]: lanes with an in-flight packet on this inlink
	der, derN   []uint64   // [N]: subset of live knocked off its path by a stuck switch
	saltBlk     []uint64   // [Spans*ceil(H/64)*64]: tie-break salt, transposed to per-cell lane words
	dsts        []int      // per-wave destination buffer
	dstAll      []int32    // [N*64]: dstAll[src*64+j] = lane j's destination from src (-1 idle)

	dropStage                                 []int
	offered, dropped, misrouted, faultDropped [64]int
}

// NewBitWaveRunner returns a bit-sliced runner for f, or an error when
// the fabric does not qualify (see Fabric.BitSliceable).
func (f *Fabric) NewBitWaveRunner() (*BitWaveRunner, error) {
	if !f.BitSliceable() {
		return nil, fmt.Errorf("sim: fabric is not bit-sliceable (kernel needs Banyan reachability and <= 16 stages)")
	}
	r := &BitWaveRunner{
		f:         f,
		tag:       make([][]uint64, f.Spans),
		tagN:      make([][]uint64, f.Spans),
		live:      make([]uint64, f.N),
		liveN:     make([]uint64, f.N),
		der:       make([]uint64, f.N),
		derN:      make([]uint64, f.N),
		saltBlk:   make([]uint64, f.Spans*((f.H+63)/64)*64),
		dsts:      make([]int, f.N),
		dstAll:    make([]int32, f.N*64),
		dropStage: make([]int, f.Spans),
	}
	for b := range r.tag {
		r.tag[b] = make([]uint64, f.N)
		r.tagN[b] = make([]uint64, f.N)
	}
	return r, nil
}

// Fabric returns the fabric this runner simulates.
func (r *BitWaveRunner) Fabric() *Fabric { return r.f }

// SetFaults attaches per-lane fault masks consulted on every cell; nil
// restores the intact fabric on all lanes. The state must have been
// created by the runner's own fabric; the caller keeps ownership and
// may refold lanes between batches (the engine refolds per batch).
func (r *BitWaveRunner) SetFaults(bf *BitFaultState) error {
	if bf != nil && bf.f != r.f {
		return fmt.Errorf("sim: bit fault state belongs to a different fabric")
	}
	r.faults = bf
	return nil
}

// RunTraffic steers one batch of len(rngs) waves (1 to 64) through the
// fabric: lane j's wave draws its destinations and tie-break salt from
// rngs[j] in exactly the order WaveRunner.RunTraffic consumes one rng,
// so lane j reproduces the scalar wave of the same stream bit for bit.
// Allocation-free in steady state.
func (r *BitWaveRunner) RunTraffic(pattern Traffic, rngs []*rand.Rand) (BitWaveResult, error) {
	f := r.f
	lanes := len(rngs)
	if lanes < 1 || lanes > 64 {
		return BitWaveResult{}, fmt.Errorf("sim: %d lanes out of [1,64]", lanes)
	}
	n, N := f.Spans, f.N
	saltWords := (f.H + 63) / 64
	r.clearPlanes()
	// Phase one, lane-major: draw each wave's destinations and salts in
	// the scalar stream order, parking the destinations column-wise in
	// dstAll. Nothing here touches the path-tag table.
	for j, rng := range rngs {
		pattern(r.dsts, rng)
		off := 0
		for src, dst := range r.dsts {
			if dst >= N {
				return BitWaveResult{}, fmt.Errorf("sim: destination %d out of range", dst)
			}
			if dst >= 0 {
				off++
			} else {
				dst = -1
			}
			r.dstAll[src*64+j] = int32(dst)
		}
		r.offered[j] = off
		// The stage salts, drawn in the scalar order: per stage, word
		// ascending. Row j of each 64-word block is this wave's word.
		for w := 0; w < n*saltWords; w++ {
			r.saltBlk[w*64+j] = rng.Uint64()
		}
	}
	// Phase two, source-major: build the live and tag planes one source
	// at a time, so each path-tag row is streamed exactly once per batch
	// (lane-major packing would re-walk the whole table per lane — with
	// the table past L2 that is the dominant cost of the batch) and the
	// per-plane bits accumulate in registers instead of heap RMWs. Lanes
	// beyond the batch are masked out of live; their stale tag and salt
	// bits are harmless, as every kernel read is masked by live.
	laneMask := ^uint64(0)
	if lanes < 64 {
		laneMask = 1<<uint(lanes) - 1
	}
	// Four sources share one 64x64 transpose: lane j's four 16-bit tags
	// pack into one word, and after the pivot word 16q+b is exactly
	// plane b's lane word for source src+q. This replaces a per-lane
	// per-bit scatter (64*Spans dependent ops per source) with ~1/3 the
	// work in straight-line word ops.
	var blk [64]uint64
	src := 0
	for ; src+3 < N; src += 4 {
		row0 := f.pathTag[src*N : src*N+N]
		row1 := f.pathTag[(src+1)*N : (src+2)*N]
		row2 := f.pathTag[(src+2)*N : (src+3)*N]
		row3 := f.pathTag[(src+3)*N : (src+4)*N]
		col := r.dstAll[src*64 : (src+4)*64]
		var lv0, lv1, lv2, lv3 uint64
		for j := 0; j < 64; j++ {
			d0, d1, d2, d3 := col[j], col[64+j], col[128+j], col[192+j]
			v0 := uint64(uint32(^d0) >> 31) // 1 when the lane targets d0
			v1 := uint64(uint32(^d1) >> 31)
			v2 := uint64(uint32(^d2) >> 31)
			v3 := uint64(uint32(^d3) >> 31)
			t0 := uint64(row0[d0&^(d0>>31)]) & -v0 // idle reads slot 0, masked off
			t1 := uint64(row1[d1&^(d1>>31)]) & -v1
			t2 := uint64(row2[d2&^(d2>>31)]) & -v2
			t3 := uint64(row3[d3&^(d3>>31)]) & -v3
			lv0 |= v0 << uint(j)
			lv1 |= v1 << uint(j)
			lv2 |= v2 << uint(j)
			lv3 |= v3 << uint(j)
			blk[j] = t0 | t1<<16 | t2<<32 | t3<<48
		}
		bitops.Transpose64(&blk)
		r.live[src] = lv0 & laneMask
		r.live[src+1] = lv1 & laneMask
		r.live[src+2] = lv2 & laneMask
		r.live[src+3] = lv3 & laneMask
		for b := 0; b < n; b++ {
			r.tag[b][src] = blk[b]
			r.tag[b][src+1] = blk[16+b]
			r.tag[b][src+2] = blk[32+b]
			r.tag[b][src+3] = blk[48+b]
		}
	}
	// Tail for N < 4 (two-stage fabrics): direct per-bit scatter.
	for ; src < N; src++ {
		row := f.pathTag[src*N : src*N+N]
		col := r.dstAll[src*64 : src*64+64]
		var lv uint64
		for b := 0; b < n; b++ {
			blk[b] = 0
		}
		for j := 0; j < 64; j++ {
			d := col[j]
			valid := uint64(uint32(^d) >> 31)
			tag := uint64(row[d&^(d>>31)]) & -valid
			lv |= valid << uint(j)
			for b := 0; b < n; b++ {
				blk[b] |= (tag >> uint(b) & 1) << uint(j)
			}
		}
		r.live[src] = lv & laneMask
		for b := 0; b < n; b++ {
			r.tag[b][src] = blk[b]
		}
	}
	// Pivot each salt block from per-wave rows to per-cell lane words:
	// after the transpose, word c of stage s's row is the lane word
	// whose bit j is wave j's tie-break for cell c.
	for w := 0; w < n*saltWords; w++ {
		bitops.Transpose64((*[64]uint64)(r.saltBlk[w*64 : w*64+64]))
	}
	r.steerPlanes()
	res := BitWaveResult{
		Lanes:        lanes,
		Offered:      r.offered,
		Dropped:      r.dropped,
		Misrouted:    r.misrouted,
		FaultDropped: r.faultDropped,
		DropStage:    r.dropStage,
	}
	for j := 0; j < lanes; j++ {
		res.Delivered[j] = r.offered[j] - r.dropped[j] - r.misrouted[j]
	}
	return res, nil
}

// clearPlanes resets the stage-0-visible state and counters for a new
// batch. The live and tag planes are NOT cleared: both packers assign
// every word of every plane, and every other kernel read is masked by a
// live bit, so stale contents are unreachable.
func (r *BitWaveRunner) clearPlanes() {
	clear(r.der)
	clear(r.dropStage)
	r.offered = [64]int{}
	r.dropped = [64]int{}
	r.misrouted = [64]int{}
	r.faultDropped = [64]int{}
}

// steerPlanes is the kernel: one pass per stage over the H cells,
// advancing all lanes with word-parallel boolean algebra in the scalar
// steer's exact fault precedence.
//
//minlint:hotpath
func (r *BitWaveRunner) steerPlanes() {
	f := r.f
	n, N, H := f.Spans, f.N, f.H
	saltWords := (H + 63) / 64
	bf := r.faults
	if bf == nil {
		bf = f.zeroFaults
	}
	for s := 0; s < n; s++ {
		last := s == n-1
		deadRow := bf.dead[s*H : (s+1)*H]
		st0Row := bf.stuck0[s*H : (s+1)*H]
		st1Row := bf.stuck1[s*H : (s+1)*H]
		ldRow := bf.linkDown[s*N : (s+1)*N]
		saltRow := r.saltBlk[s*saltWords*64 : (s+1)*saltWords*64]
		tagS := r.tag[s]
		var next []uint64
		if !last {
			next = f.stages[s].next
		}
		for c := 0; c < H; c++ {
			in0, in1 := 2*c, 2*c+1
			la, lb := r.live[in0], r.live[in1]
			if la|lb == 0 {
				if !last {
					r.liveN[next[in0]] = 0
					r.liveN[next[in1]] = 0
				}
				continue
			}
			// Dead switch: every arrival dies here, FaultDropped.
			dead := deadRow[c]
			if m := la & dead; m != 0 {
				r.countFault(s, m)
				la &^= m
			}
			if m := lb & dead; m != 0 {
				r.countFault(s, m)
				lb &^= m
			}
			// Upstream-derailed arrivals: off the unique path, this cell
			// cannot reach their destination — plain drop (the scalar's
			// portUnreachable classification).
			if m := la & r.der[in0]; m != 0 {
				r.countPlain(s, m)
				la &^= m
			}
			if m := lb & r.der[in1]; m != 0 {
				r.countPlain(s, m)
				lb &^= m
			}
			// Port planes; a stuck switch forces them, derailing the
			// lanes whose tag bit disagrees (tracked, dropped later).
			pA, pB := tagS[in0], tagS[in1]
			s0, s1 := st0Row[c], st1Row[c]
			fA := (pA &^ s0) | s1
			fB := (pB &^ s0) | s1
			ndA, ndB := la&(fA^pA), lb&(fB^pB)
			pA, pB = fA, fB
			// Severed chosen outlink: FaultDropped.
			ld0, ld1 := ldRow[in0], ldRow[in1]
			if m := la & ((ld0 &^ pA) | (ld1 & pA)); m != 0 {
				r.countFault(s, m)
				la &^= m
			}
			if m := lb & ((ld0 &^ pB) | (ld1 & pB)); m != 0 {
				r.countFault(s, m)
				lb &^= m
			}
			// Conflict: both inlinks live and wanting the same port. The
			// cell's salt bit picks the winning inlink parity — set means
			// inlink 1 wins (the scalar contract).
			if cf := la & lb &^ (pA ^ pB); cf != 0 {
				sw := saltRow[c]
				dcA, dcB := cf&sw, cf&^sw
				if dcA != 0 {
					r.countPlain(s, dcA)
					la &^= dcA
				}
				if dcB != 0 {
					r.countPlain(s, dcB)
					lb &^= dcB
				}
			}
			// Movement: split each inlink by chosen port, merge per
			// outlink, carry the derail marks of this stage's stuck
			// flips.
			m0A, m1A := la&^pA, la&pA
			m0B, m1B := lb&^pB, lb&pB
			d0 := (ndA & m0A) | (ndB & m0B)
			d1 := (ndA & m1A) | (ndB & m1B)
			if last {
				// Outlinks are terminals. A derailed exit is a wrong
				// terminal (unique-path argument) — Misrouted; everything
				// else exits at its destination.
				r.countMisrouted(d0)
				r.countMisrouted(d1)
				continue
			}
			na, nb := next[in0], next[in1]
			r.liveN[na], r.liveN[nb] = m0A|m0B, m1A|m1B
			r.derN[na], r.derN[nb] = d0, d1
			for b := s + 1; b < n; b++ {
				tb, tnb := r.tag[b], r.tagN[b]
				tnb[na] = (tb[in0] & m0A) | (tb[in1] & m0B)
				tnb[nb] = (tb[in0] & m1A) | (tb[in1] & m1B)
			}
		}
		if !last {
			r.live, r.liveN = r.liveN, r.live
			r.der, r.derN = r.derN, r.der
			r.tag, r.tagN = r.tagN, r.tag
		}
	}
}

// countFault books a fault-kill mask at stage s: pooled DropStage plus
// per-lane Dropped and FaultDropped.
func (r *BitWaveRunner) countFault(s int, m uint64) {
	r.dropStage[s] += bits.OnesCount64(m)
	for ; m != 0; m &= m - 1 {
		j := bits.TrailingZeros64(m)
		r.dropped[j]++
		r.faultDropped[j]++
	}
}

// countPlain books a plain drop mask at stage s.
func (r *BitWaveRunner) countPlain(s int, m uint64) {
	r.dropStage[s] += bits.OnesCount64(m)
	for ; m != 0; m &= m - 1 {
		r.dropped[bits.TrailingZeros64(m)]++
	}
}

// countMisrouted books a wrong-terminal exit mask.
func (r *BitWaveRunner) countMisrouted(m uint64) {
	for ; m != 0; m &= m - 1 {
		r.misrouted[bits.TrailingZeros64(m)]++
	}
}

// mix64 is a splitmix64 finalizer for the benchmark sweep's synthetic
// salts (the kernel benchmark must not depend on an rng).
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// BitSteerSweep drives the bit-sliced kernel across the whole fabric
// once: full load on all 64 lanes (lane-invariant destinations derived
// from salt), deterministic synthetic tie-break salts, one steerPlanes
// pass. It exists for the kernel benchmark, mirroring Fabric.SteerSweep
// (the plane algebra is unexported); the accumulated drop/misroute
// count defeats dead-code elimination. Allocation-free.
func (r *BitWaveRunner) BitSteerSweep(salt int) uint64 {
	f := r.f
	n, N := f.Spans, f.N
	r.clearPlanes()
	all := ^uint64(0)
	for src := 0; src < N; src++ {
		dst := (src + salt) & (N - 1)
		tag := uint64(f.pathTag[src*N+dst])
		r.live[src] = all
		for b := 0; b < n; b++ {
			r.tag[b][src] = (tag >> uint(b) & 1) * all
		}
	}
	for i := range r.saltBlk {
		r.saltBlk[i] = mix64(uint64(salt)<<32 + uint64(i))
	}
	r.steerPlanes()
	var acc uint64
	for j := 0; j < 64; j++ {
		acc += uint64(r.dropped[j] + r.misrouted[j])
	}
	return acc
}
