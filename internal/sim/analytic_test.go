package sim

import (
	"math"
	"math/rand/v2"
	"testing"

	"minequiv/internal/topology"
)

func TestAnalyticRecurrenceValues(t *testing.T) {
	// Known values of Patel's recurrence from q_0 = 1.
	cases := []struct {
		n    int
		want float64
	}{
		{0, 1.0},
		{1, 0.75},
		{2, 0.609375},
		{3, 0.51654052734375},
	}
	for _, c := range cases {
		if got := AnalyticUniformThroughput(c.n); math.Abs(got-c.want) > 1e-6 {
			t.Errorf("n=%d: %v, want %v", c.n, got, c.want)
		}
	}
	// Monotone decreasing in n.
	prev := 1.0
	for n := 1; n <= 12; n++ {
		cur := AnalyticUniformThroughput(n)
		if cur >= prev {
			t.Fatalf("recurrence not decreasing at n=%d", n)
		}
		prev = cur
	}
}

func TestAnalyticLoaded(t *testing.T) {
	// Zero load: zero throughput. Full load matches the basic form.
	if AnalyticUniformThroughputLoaded(5, 0) != 0 {
		t.Error("zero load nonzero")
	}
	if AnalyticUniformThroughputLoaded(5, 1) != AnalyticUniformThroughput(5) {
		t.Error("full load mismatch")
	}
	// Monotone in load.
	if AnalyticUniformThroughputLoaded(4, 0.3) >= AnalyticUniformThroughputLoaded(4, 0.9) {
		t.Error("not monotone in load")
	}
}

// TestSimulatorTracksAnalyticModel is the quantitative validation of the
// wave simulator: measured uniform throughput within 0.02 of the
// independence-approximation recurrence for several sizes and networks.
func TestSimulatorTracksAnalyticModel(t *testing.T) {
	for _, n := range []int{3, 5, 7} {
		want := AnalyticUniformThroughput(n)
		for _, name := range []string{topology.NameOmega, topology.NameBaseline} {
			f := fabricFor(t, name, n)
			got, err := f.Throughput(Uniform(), 400, rand.New(rand.NewPCG(uint64(n), 0)))
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(got-want) > 0.02 {
				t.Errorf("%s n=%d: simulated %v vs analytic %v", name, n, got, want)
			}
		}
	}
}

// TestBernoulliLoadTracksAnalytic checks the loaded recurrence against
// Bernoulli wave traffic.
func TestBernoulliLoadTracksAnalytic(t *testing.T) {
	n := 5
	f := fabricFor(t, topology.NameFlip, n)
	for _, load := range []float64{0.25, 0.5, 0.75} {
		want := AnalyticUniformThroughputLoaded(n, load) / load
		rng := rand.New(rand.NewPCG(9, 0))
		// Measure delivered fraction of offered packets.
		got, err := f.Throughput(Bernoulli(load), 600, rng)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want) > 0.03 {
			t.Errorf("load %v: simulated %v vs analytic %v", load, got, want)
		}
	}
}
