package sim

import (
	"math/rand/v2"

	"minequiv/internal/bitops"
	"minequiv/internal/perm"
)

// Traffic generates one wave of destinations in place: after the call,
// dsts[i] is the destination of input terminal i, or -1 for an idle
// input. Writing into the caller's buffer keeps the hot wave loop
// allocation-free. All patterns in this package are pure functions of
// (dsts, rng), so one Traffic value may be shared by concurrent workers
// as long as each worker passes its own buffer and rng.
type Traffic func(dsts []int, rng *rand.Rand)

// Uniform sends one packet from every input to an independently uniform
// destination.
func Uniform() Traffic {
	return func(dsts []int, rng *rand.Rand) {
		n := len(dsts)
		if n&(n-1) == 0 {
			// Power-of-two fan-out (every MIN here): IntN reduces to one
			// masked Uint64 draw (math/rand/v2 uint64n), so drawing it
			// directly skips three call layers while consuming the same
			// stream — the wave loop spends a double-digit share of its
			// time in this loop, and the stream shape is contractual.
			mask := uint64(n - 1)
			for i := range dsts {
				dsts[i] = int(rng.Uint64() & mask)
			}
			return
		}
		for i := range dsts {
			dsts[i] = rng.IntN(n)
		}
	}
}

// Bernoulli offers a packet on each input with probability load, uniform
// destination.
func Bernoulli(load float64) Traffic {
	return func(dsts []int, rng *rand.Rand) {
		n := len(dsts)
		if n&(n-1) == 0 {
			mask := uint64(n - 1) // same masked-draw fast path as Uniform
			for i := range dsts {
				if rng.Float64() < load {
					dsts[i] = int(rng.Uint64() & mask)
				} else {
					dsts[i] = -1
				}
			}
			return
		}
		for i := range dsts {
			if rng.Float64() < load {
				dsts[i] = rng.IntN(n)
			} else {
				dsts[i] = -1
			}
		}
	}
}

// Permutation sends input i to pi[i] (full permutation traffic).
func Permutation(pi perm.Perm) Traffic {
	return func(dsts []int, rng *rand.Rand) {
		for i := range dsts {
			if i < pi.N() {
				dsts[i] = int(pi[i])
			} else {
				dsts[i] = -1
			}
		}
	}
}

// RandomPermutation draws a fresh uniform permutation per wave
// (Fisher-Yates in place over the destination buffer).
func RandomPermutation() Traffic {
	return func(dsts []int, rng *rand.Rand) {
		for i := range dsts {
			dsts[i] = i
		}
		for i := len(dsts) - 1; i > 0; i-- {
			j := rng.IntN(i + 1)
			dsts[i], dsts[j] = dsts[j], dsts[i]
		}
	}
}

// BitReversal sends input i to the bit-reversal of i — the classic
// adversarial pattern for shuffle-based networks.
func BitReversal() Traffic {
	return func(dsts []int, rng *rand.Rand) {
		w := bitops.Log2(uint64(len(dsts)))
		for i := range dsts {
			dsts[i] = int(bitops.Reverse(uint64(i), w))
		}
	}
}

// HotSpot sends each input's packet to a single hot output with the
// given probability, uniform otherwise.
func HotSpot(target int, p float64) Traffic {
	return func(dsts []int, rng *rand.Rand) {
		n := len(dsts)
		for i := range dsts {
			if rng.Float64() < p {
				dsts[i] = target % n
			} else {
				dsts[i] = rng.IntN(n)
			}
		}
	}
}

// Tornado sends input i to (i + n/2) mod n — the worst-case offset
// pattern borrowed from ring/torus evaluation, a fixed permutation that
// maximally separates source and destination halves.
func Tornado() Traffic {
	return func(dsts []int, rng *rand.Rand) {
		n := len(dsts)
		for i := range dsts {
			dsts[i] = (i + n/2) % n
		}
	}
}

// Transpose rotates the w address bits of each input by w/2: for even w
// this is the matrix-transpose pattern on a sqrt(n) x sqrt(n) index grid,
// the canonical adversary for blocking banyans.
func Transpose() Traffic {
	return func(dsts []int, rng *rand.Rand) {
		n := len(dsts)
		w := bitops.Log2(uint64(n))
		half := w / 2
		if half == 0 { // n <= 2: rotation degenerates to the identity
			for i := range dsts {
				dsts[i] = i
			}
			return
		}
		mask := uint64(n - 1)
		for i := range dsts {
			x := uint64(i)
			dsts[i] = int(((x << half) | (x >> (w - half))) & mask)
		}
	}
}

// NearestNeighbor sends input i to (i+1) mod n — minimal-distance
// streaming traffic.
func NearestNeighbor() Traffic {
	return func(dsts []int, rng *rand.Rand) {
		n := len(dsts)
		for i := range dsts {
			dsts[i] = (i + 1) % n
		}
	}
}

// Thinned gates an inner pattern by an offered-load factor: each input
// that the inner pattern makes busy stays busy with probability load,
// else idles. Composing Thinned(load, pattern) is how full-injection
// patterns (uniform, tornado, transpose, ...) drive the buffered model
// at a chosen load. Thinned(1, p) is p itself.
func Thinned(load float64, inner Traffic) Traffic {
	if load >= 1 {
		return inner
	}
	return func(dsts []int, rng *rand.Rand) {
		inner(dsts, rng)
		for i := range dsts {
			if dsts[i] >= 0 && rng.Float64() >= load {
				dsts[i] = -1
			}
		}
	}
}

// Bursty models on/off sources at wave granularity: with probability
// burstProb a wave is a burst (every input offers with probability
// burstLoad), otherwise the fabric idles at idleLoad. Destinations are
// uniform. Each wave draws its phase independently, so trials stay
// independent and the pattern is safe to shard across engine workers;
// the bimodal offered load is what distinguishes it from a Bernoulli
// pattern with the same mean.
func Bursty(burstProb, burstLoad, idleLoad float64) Traffic {
	return func(dsts []int, rng *rand.Rand) {
		load := idleLoad
		if rng.Float64() < burstProb {
			load = burstLoad
		}
		n := len(dsts)
		for i := range dsts {
			if rng.Float64() < load {
				dsts[i] = rng.IntN(n)
			} else {
				dsts[i] = -1
			}
		}
	}
}
