package sim

import (
	"math/rand"

	"minequiv/internal/bitops"
	"minequiv/internal/perm"
)

// Traffic generates one wave of destinations: dsts[i] is the destination
// of input terminal i, or -1 for an idle input.
type Traffic func(n int, rng *rand.Rand) []int

// Uniform sends one packet from every input to an independently uniform
// destination.
func Uniform() Traffic {
	return func(n int, rng *rand.Rand) []int {
		dsts := make([]int, n)
		for i := range dsts {
			dsts[i] = rng.Intn(n)
		}
		return dsts
	}
}

// Bernoulli offers a packet on each input with probability load, uniform
// destination.
func Bernoulli(load float64) Traffic {
	return func(n int, rng *rand.Rand) []int {
		dsts := make([]int, n)
		for i := range dsts {
			if rng.Float64() < load {
				dsts[i] = rng.Intn(n)
			} else {
				dsts[i] = -1
			}
		}
		return dsts
	}
}

// Permutation sends input i to pi[i] (full permutation traffic).
func Permutation(pi perm.Perm) Traffic {
	return func(n int, rng *rand.Rand) []int {
		dsts := make([]int, n)
		for i := range dsts {
			if i < pi.N() {
				dsts[i] = int(pi[i])
			} else {
				dsts[i] = -1
			}
		}
		return dsts
	}
}

// RandomPermutation draws a fresh uniform permutation per wave.
func RandomPermutation() Traffic {
	return func(n int, rng *rand.Rand) []int {
		pi := perm.Random(rng, n)
		dsts := make([]int, n)
		for i := range dsts {
			dsts[i] = int(pi[i])
		}
		return dsts
	}
}

// BitReversal sends input i to the bit-reversal of i — the classic
// adversarial pattern for shuffle-based networks.
func BitReversal() Traffic {
	return func(n int, rng *rand.Rand) []int {
		w := bitops.Log2(uint64(n))
		dsts := make([]int, n)
		for i := range dsts {
			dsts[i] = int(bitops.Reverse(uint64(i), w))
		}
		return dsts
	}
}

// HotSpot sends each input's packet to a single hot output with the
// given probability, uniform otherwise.
func HotSpot(target int, p float64) Traffic {
	return func(n int, rng *rand.Rand) []int {
		dsts := make([]int, n)
		for i := range dsts {
			if rng.Float64() < p {
				dsts[i] = target % n
			} else {
				dsts[i] = rng.Intn(n)
			}
		}
		return dsts
	}
}
