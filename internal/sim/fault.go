package sim

import (
	"fmt"
	"math/rand/v2"
)

// FaultKind classifies one hardware failure of the fabric.
type FaultKind uint8

const (
	// SwitchDead kills the whole 2x2 switch: every packet at the cell is
	// discarded.
	SwitchDead FaultKind = iota + 1
	// SwitchStuck0 jams the crossbar: every packet leaves on port 0
	// regardless of its destination (and may be misrouted downstream).
	SwitchStuck0
	// SwitchStuck1 jams the crossbar toward port 1.
	SwitchStuck1
	// LinkDown severs one outlink of a stage; the last stage's outlinks
	// are the output terminals, so severing them cuts delivery.
	LinkDown
)

func (k FaultKind) String() string {
	switch k {
	case SwitchDead:
		return "switch-dead"
	case SwitchStuck0:
		return "switch-stuck0"
	case SwitchStuck1:
		return "switch-stuck1"
	case LinkDown:
		return "link-down"
	}
	return fmt.Sprintf("FaultKind(%d)", uint8(k))
}

// Fault pins one failure to a fabric element. Switch faults address
// (Stage, Cell); LinkDown addresses (Stage, Link) where Link is the
// outlink label cell*2+port.
type Fault struct {
	Kind  FaultKind
	Stage int
	Cell  int
	Link  int
}

// FaultPlan describes how a fabric degrades: a fixed list of pinned
// faults plus Bernoulli rates for random per-trial faults. The plan is
// pure data — it can be validated against a fabric and sampled into a
// FaultState any number of times; the engine resamples it per trial
// from a dedicated deterministic rng stream, so a degraded run is
// reproducible from (seed, plan) alone.
type FaultPlan struct {
	Faults []Fault // pinned faults, applied before any random draw

	// Per-element random fault rates, drawn independently each trial.
	// A switch first draws dead with SwitchDeadRate; a surviving switch
	// draws stuck with SwitchStuckRate (stuck port then a fair coin).
	// Every outlink draws severed with LinkDownRate.
	SwitchDeadRate  float64
	SwitchStuckRate float64
	LinkDownRate    float64
}

// Empty reports whether the plan describes an intact fabric.
func (p FaultPlan) Empty() bool {
	return len(p.Faults) == 0 && p.SwitchDeadRate == 0 && p.SwitchStuckRate == 0 && p.LinkDownRate == 0
}

// Random reports whether the plan draws random faults per trial (in
// addition to the pinned list).
func (p FaultPlan) Random() bool {
	return p.SwitchDeadRate > 0 || p.SwitchStuckRate > 0 || p.LinkDownRate > 0
}

// Validate checks the plan against a fabric's dimensions.
func (p FaultPlan) Validate(f *Fabric) error {
	rates := []struct {
		name string
		v    float64
	}{
		{"SwitchDeadRate", p.SwitchDeadRate},
		{"SwitchStuckRate", p.SwitchStuckRate},
		{"LinkDownRate", p.LinkDownRate},
	}
	for _, r := range rates {
		if r.v < 0 || r.v > 1 {
			return fmt.Errorf("sim: fault rate %s=%v out of [0,1]", r.name, r.v)
		}
	}
	for i, flt := range p.Faults {
		if flt.Stage < 0 || flt.Stage >= f.Spans {
			return fmt.Errorf("sim: fault %d: stage %d out of [0,%d)", i, flt.Stage, f.Spans)
		}
		switch flt.Kind {
		case SwitchDead, SwitchStuck0, SwitchStuck1:
			if flt.Cell < 0 || flt.Cell >= f.H {
				return fmt.Errorf("sim: fault %d: cell %d out of [0,%d)", i, flt.Cell, f.H)
			}
		case LinkDown:
			if flt.Link < 0 || flt.Link >= f.N {
				return fmt.Errorf("sim: fault %d: link %d out of [0,%d)", i, flt.Link, f.N)
			}
		default:
			return fmt.Errorf("sim: fault %d: unknown kind %d", i, flt.Kind)
		}
	}
	return nil
}

// Switch modes of a FaultState; switchOK must be the zero value so a
// cleared state is an intact fabric.
const (
	switchOK uint8 = iota
	switchDead
	switchStuck0
	switchStuck1
)

// FaultState is one sampled realization of a FaultPlan, sized for a
// fabric and owned by whoever drives a runner (the parallel engine
// gives each worker its own, like runner scratch). Sample is
// allocation-free so per-trial resampling stays on the 0 allocs/op
// hot path. A FaultState is NOT safe for concurrent use.
type FaultState struct {
	f        *Fabric
	active   bool
	mode     []uint8 // per stage*H + cell: switchOK/Dead/Stuck0/Stuck1
	linkDown []bool  // per stage*N + outlink
}

// NewFaultState returns a cleared (intact) fault state sized for f.
func (f *Fabric) NewFaultState() *FaultState {
	return &FaultState{
		f:        f,
		mode:     make([]uint8, f.Spans*f.H),
		linkDown: make([]bool, f.Spans*f.N),
	}
}

// Fabric returns the fabric this state is sized for.
func (fs *FaultState) Fabric() *Fabric { return fs.f }

// Active reports whether any fault is currently applied.
func (fs *FaultState) Active() bool { return fs.active }

// Reset clears every fault, restoring the intact fabric.
func (fs *FaultState) Reset() {
	if !fs.active {
		return
	}
	for i := range fs.mode {
		fs.mode[i] = switchOK
	}
	for i := range fs.linkDown {
		fs.linkDown[i] = false
	}
	fs.active = false
}

// apply pins one validated fault.
func (fs *FaultState) apply(flt Fault) {
	switch flt.Kind {
	case SwitchDead:
		fs.mode[flt.Stage*fs.f.H+flt.Cell] = switchDead
	case SwitchStuck0:
		fs.mode[flt.Stage*fs.f.H+flt.Cell] = switchStuck0
	case SwitchStuck1:
		fs.mode[flt.Stage*fs.f.H+flt.Cell] = switchStuck1
	case LinkDown:
		fs.linkDown[flt.Stage*fs.f.N+flt.Link] = true
	}
	fs.active = true
}

// Sample realizes the plan: clears the state, pins the plan's fixed
// faults, then draws the random ones from rng. The draw order is fixed
// (switches stage-major then links stage-major, one uniform draw per
// element per applicable rate), so the realized state is a pure
// function of (plan, rng stream) — the determinism the engine's
// per-trial fault streams rely on. Allocation-free. rng may be nil for
// a plan with no random rates.
func (fs *FaultState) Sample(p FaultPlan, rng *rand.Rand) error {
	if err := p.Validate(fs.f); err != nil {
		return err
	}
	fs.Resample(p, rng)
	return nil
}

// Resample is Sample minus the validation: for hot loops that realize
// one already-validated plan trial after trial (the engine validates
// once before sharding). Calling it with a plan that was never
// validated against this state's fabric may panic on out-of-range
// coordinates.
//
//minlint:hotpath
func (fs *FaultState) Resample(p FaultPlan, rng *rand.Rand) {
	fs.Reset()
	for _, flt := range p.Faults {
		fs.apply(flt)
	}
	if p.SwitchDeadRate > 0 || p.SwitchStuckRate > 0 {
		for i := range fs.mode {
			// Draw first, assign after: a pinned fault owns its cell, but
			// the draws still advance the stream identically whether or
			// not the cell was pinned, keeping the realized state a pure
			// function of (plan, stream).
			dead := p.SwitchDeadRate > 0 && rng.Float64() < p.SwitchDeadRate
			stuck := uint8(0)
			if !dead && p.SwitchStuckRate > 0 && rng.Float64() < p.SwitchStuckRate {
				stuck = switchStuck0 + uint8(rng.IntN(2))
			}
			if fs.mode[i] != switchOK {
				continue
			}
			switch {
			case dead:
				fs.mode[i] = switchDead
				fs.active = true
			case stuck != 0:
				fs.mode[i] = stuck
				fs.active = true
			}
		}
	}
	if p.LinkDownRate > 0 {
		for i := range fs.linkDown {
			if rng.Float64() < p.LinkDownRate {
				fs.linkDown[i] = true
				fs.active = true
			}
		}
	}
}

// CountFaults reports the currently-applied fault census: dead and
// stuck switches and severed links.
func (fs *FaultState) CountFaults() (dead, stuck, links int) {
	for _, m := range fs.mode {
		switch m {
		case switchDead:
			dead++
		case switchStuck0, switchStuck1:
			stuck++
		}
	}
	for _, d := range fs.linkDown {
		if d {
			links++
		}
	}
	return
}
