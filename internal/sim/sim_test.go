package sim

import (
	"math"
	"math/rand/v2"
	"reflect"
	"testing"

	"minequiv/internal/perm"
	"minequiv/internal/topology"
)

func fabricFor(t testing.TB, name string, n int) *Fabric {
	t.Helper()
	nw := topology.MustBuild(name, n)
	f, err := NewFabric(nw.LinkPerms)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestFabricShapes(t *testing.T) {
	f := fabricFor(t, topology.NameOmega, 4)
	if f.N != 16 || f.H != 8 || f.Spans != 4 {
		t.Fatalf("shape: N=%d H=%d Spans=%d", f.N, f.H, f.Spans)
	}
	if !f.Banyan() {
		t.Fatal("omega fabric not banyan")
	}
	if _, err := NewFabric([]perm.Perm{perm.Identity(4), perm.Identity(8)}); err == nil {
		t.Error("mismatched perm sizes accepted")
	}
}

func TestWaveSinglePacket(t *testing.T) {
	// One packet, no contention: always delivered, on every network.
	rng := rand.New(rand.NewPCG(1, 0))
	for _, name := range topology.Names() {
		f := fabricFor(t, name, 4)
		for src := 0; src < f.N; src += 3 {
			for dst := 0; dst < f.N; dst += 5 {
				dsts := make([]int, f.N)
				for i := range dsts {
					dsts[i] = -1
				}
				dsts[src] = dst
				res, err := f.RunWave(dsts, rng)
				if err != nil {
					t.Fatal(err)
				}
				if res.Offered != 1 || res.Delivered != 1 || res.Dropped != 0 || res.Misrouted != 0 {
					t.Fatalf("%s (%d->%d): %+v", name, src, dst, res)
				}
			}
		}
	}
}

func TestWaveConservation(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 0))
	f := fabricFor(t, topology.NameBaseline, 5)
	dsts := make([]int, f.N)
	for trial := 0; trial < 50; trial++ {
		Uniform()(dsts, rng)
		res, err := f.RunWave(dsts, rng)
		if err != nil {
			t.Fatal(err)
		}
		if res.Delivered+res.Dropped+res.Misrouted != res.Offered {
			t.Fatalf("conservation violated: %+v", res)
		}
		if res.Misrouted != 0 {
			t.Fatalf("banyan fabric misrouted: %+v", res)
		}
		drops := 0
		for _, d := range res.DropStage {
			drops += d
		}
		if drops != res.Dropped {
			t.Fatalf("per-stage drops %d != total %d", drops, res.Dropped)
		}
	}
}

func TestWaveAdmissiblePermutationAllDelivered(t *testing.T) {
	// Full permutation traffic realized by switch settings passes with
	// zero drops: uses a settings-realized permutation from the routing
	// layer's logic, rebuilt here by direct simulation of settings.
	rng := rand.New(rand.NewPCG(3, 0))
	nw := topology.MustBuild(topology.NameOmega, 4)
	f, err := NewFabric(nw.LinkPerms)
	if err != nil {
		t.Fatal(err)
	}
	// Trace every input through random fixed switch settings.
	settings := make([][]int, f.Spans)
	for s := range settings {
		settings[s] = make([]int, f.H)
		for c := range settings[s] {
			settings[s][c] = rng.IntN(2)
		}
	}
	dsts := make([]int, f.N)
	for src := 0; src < f.N; src++ {
		link := uint64(src)
		for s := 0; s < f.Spans; s++ {
			cell := link >> 1
			out := (link & 1) ^ uint64(settings[s][cell])
			link = cell<<1 | out
			if s < f.Spans-1 {
				link = nw.LinkPerms[s].Apply(link)
			}
		}
		dsts[src] = int(link)
	}
	res, err := f.RunWave(dsts, rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != f.N || res.Dropped != 0 {
		t.Fatalf("admissible permutation dropped packets: %+v", res)
	}
}

func TestUniformThroughputInRange(t *testing.T) {
	rng := rand.New(rand.NewPCG(4, 0))
	f := fabricFor(t, topology.NameOmega, 5)
	th, err := f.Throughput(Uniform(), 100, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Uniform full-load banyan throughput: well below 1 (blocking), well
	// above the hot-spot floor. The analytic recursion q_{k+1} =
	// 1-(1-q_k/2)^2 gives ~0.45 for n=5.
	if th < 0.30 || th > 0.70 {
		t.Fatalf("uniform throughput %v outside sane band", th)
	}
}

func TestSixNetworksStatisticallyEquivalent(t *testing.T) {
	// The systems-level corollary of the paper: isomorphic networks have
	// the same uniform-traffic throughput (up to sampling noise).
	waves := 200
	var ths []float64
	for _, name := range topology.Names() {
		f := fabricFor(t, name, 5)
		th, err := f.Throughput(Uniform(), waves, rand.New(rand.NewPCG(42, 0)))
		if err != nil {
			t.Fatal(err)
		}
		ths = append(ths, th)
	}
	for i := 1; i < len(ths); i++ {
		if math.Abs(ths[i]-ths[0]) > 0.05 {
			t.Fatalf("throughputs diverge: %v", ths)
		}
	}
}

func TestHotSpotDegradesThroughput(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 0))
	f := fabricFor(t, topology.NameBaseline, 5)
	uni, err := f.Throughput(Uniform(), 100, rng)
	if err != nil {
		t.Fatal(err)
	}
	hot, err := f.Throughput(HotSpot(0, 0.5), 100, rng)
	if err != nil {
		t.Fatal(err)
	}
	if hot >= uni {
		t.Fatalf("hot-spot throughput %v not below uniform %v", hot, uni)
	}
}

func wave(tr Traffic, n int, rng *rand.Rand) []int {
	dsts := make([]int, n)
	tr(dsts, rng)
	return dsts
}

func TestTrafficPatterns(t *testing.T) {
	rng := rand.New(rand.NewPCG(6, 0))
	n := 16
	// Uniform: all destinations in range.
	for _, d := range wave(Uniform(), n, rng) {
		if d < 0 || d >= n {
			t.Fatal("uniform out of range")
		}
	}
	// Bernoulli(0): all idle; Bernoulli(1): all busy.
	for _, d := range wave(Bernoulli(0), n, rng) {
		if d != -1 {
			t.Fatal("Bernoulli(0) generated traffic")
		}
	}
	for _, d := range wave(Bernoulli(1), n, rng) {
		if d < 0 {
			t.Fatal("Bernoulli(1) left idle input")
		}
	}
	// Permutation: exact pattern.
	pi := perm.Random(rng, n)
	for i, d := range wave(Permutation(pi), n, rng) {
		if d != int(pi[i]) {
			t.Fatal("permutation traffic wrong")
		}
	}
	// BitReversal: self-inverse pattern.
	br := wave(BitReversal(), n, rng)
	for i, d := range br {
		if br[d] != i {
			t.Fatal("bit reversal not involutive")
		}
	}
	// RandomPermutation: a valid permutation each wave.
	seen := make([]bool, n)
	for _, d := range wave(RandomPermutation(), n, rng) {
		if seen[d] {
			t.Fatal("random permutation repeated destination")
		}
		seen[d] = true
	}
	// HotSpot(target, 1): everything to target.
	for _, d := range wave(HotSpot(3, 1), n, rng) {
		if d != 3 {
			t.Fatal("hotspot(1) missed target")
		}
	}
	// Tornado: fixed half-offset permutation.
	for i, d := range wave(Tornado(), n, rng) {
		if d != (i+n/2)%n {
			t.Fatal("tornado offset wrong")
		}
	}
	// Transpose: an involution for even bit-width (16 = 2^4).
	tp := wave(Transpose(), n, rng)
	for i, d := range tp {
		if tp[d] != i {
			t.Fatal("transpose not involutive for even width")
		}
	}
	// NearestNeighbor: successor permutation.
	for i, d := range wave(NearestNeighbor(), n, rng) {
		if d != (i+1)%n {
			t.Fatal("neighbor offset wrong")
		}
	}
	// Bursty(1, 1, 0): always the burst phase at full load.
	for _, d := range wave(Bursty(1, 1, 0), n, rng) {
		if d < 0 || d >= n {
			t.Fatal("bursty burst phase left idle input")
		}
	}
	// Bursty(0, 1, 0): always the idle phase at zero load.
	for _, d := range wave(Bursty(0, 1, 0), n, rng) {
		if d != -1 {
			t.Fatal("bursty idle phase generated traffic")
		}
	}
}

func TestScenarioRegistry(t *testing.T) {
	rng := rand.New(rand.NewPCG(20, 0))
	names := ScenarioNames()
	if len(names) != len(Scenarios()) {
		t.Fatal("names/registry length mismatch")
	}
	seen := map[string]bool{}
	for _, sc := range Scenarios() {
		if sc.Name == "" || sc.Description == "" || sc.New == nil {
			t.Fatalf("malformed scenario %+v", sc)
		}
		if seen[sc.Name] {
			t.Fatalf("duplicate scenario %q", sc.Name)
		}
		seen[sc.Name] = true
		// Every scenario must produce a valid wave with defaults.
		tr := sc.New(DefaultScenarioParams())
		for _, d := range wave(tr, 16, rng) {
			if d < -1 || d >= 16 {
				t.Fatalf("scenario %q produced destination %d", sc.Name, d)
			}
		}
	}
	for _, want := range []string{"uniform", "bernoulli", "permutation", "bitreversal",
		"hotspot", "tornado", "transpose", "neighbor", "bursty"} {
		if _, ok := LookupScenario(want); !ok {
			t.Errorf("scenario %q missing", want)
		}
	}
	if _, ok := LookupScenario("nope"); ok {
		t.Error("LookupScenario accepted unknown name")
	}
}

func TestBanyanRejectsNonBanyanFabric(t *testing.T) {
	// With identity link permutations both switch ports of a stage-0
	// cell lead to the same child: paths are duplicated where they
	// exist and most destinations are unreachable. The compiled fabric
	// must still simulate, but Banyan() must report false.
	f, err := NewFabric([]perm.Perm{perm.Identity(8), perm.Identity(8)})
	if err != nil {
		t.Fatal(err)
	}
	if f.Banyan() {
		t.Fatal("identity fabric reported as Banyan")
	}
	// Pin the simulation behavior: a packet to an unreachable
	// destination is dropped (counted per stage), not misrouted.
	rng := rand.New(rand.NewPCG(21, 0))
	dsts := make([]int, f.N)
	for i := range dsts {
		dsts[i] = -1
	}
	dsts[0] = f.N - 1 // cell 0 cannot reach the top terminal via identity wiring
	res, err := f.RunWave(dsts, rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.Offered != 1 || res.Delivered != 0 || res.Dropped != 1 {
		t.Fatalf("unreachable destination not dropped: %+v", res)
	}
	// And every classical network still passes.
	for _, name := range topology.Names() {
		if !fabricFor(t, name, 4).Banyan() {
			t.Errorf("%s fabric not Banyan", name)
		}
	}
}

func TestWaveRunnerMatchesOneShot(t *testing.T) {
	// A reused runner and the one-shot Fabric.RunWave see identical
	// rng streams, so results must agree wave for wave.
	f := fabricFor(t, topology.NameOmega, 5)
	runner := f.NewWaveRunner()
	dsts := make([]int, f.N)
	for trial := 0; trial < 20; trial++ {
		Uniform()(dsts, rand.New(rand.NewPCG(uint64(trial), 1)))
		a, err := runner.RunWave(dsts, rand.New(rand.NewPCG(uint64(trial), 2)))
		if err != nil {
			t.Fatal(err)
		}
		b, err := f.RunWave(dsts, rand.New(rand.NewPCG(uint64(trial), 2)))
		if err != nil {
			t.Fatal(err)
		}
		if a.Offered != b.Offered || a.Delivered != b.Delivered ||
			a.Dropped != b.Dropped || a.Misrouted != b.Misrouted {
			t.Fatalf("runner diverged from one-shot: %+v vs %+v", a, b)
		}
		for s := range a.DropStage {
			if a.DropStage[s] != b.DropStage[s] {
				t.Fatalf("per-stage drops diverged: %v vs %v", a.DropStage, b.DropStage)
			}
		}
	}
}

func TestBufferedConservationAndLatency(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 0))
	f := fabricFor(t, topology.NameOmega, 4)
	cfg := BufferedConfig{Load: 0.3, Queue: 4, Cycles: 2000, Warmup: 200}
	res, err := f.RunBuffered(cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered == 0 {
		t.Fatal("nothing delivered")
	}
	// Latency is at least the pipeline depth.
	if res.MeanLatency < float64(f.Spans) {
		t.Fatalf("mean latency %v below pipeline depth %d", res.MeanLatency, f.Spans)
	}
	// Deliveries cannot exceed injections plus warmup backlog.
	slack := f.Spans * f.H * 2 * cfg.Queue
	if res.Delivered > res.Injected+slack {
		t.Fatalf("delivered %d >> injected %d", res.Delivered, res.Injected)
	}
	// Throughput roughly matches offered load at low load.
	if math.Abs(res.Throughput-0.3) > 0.08 {
		t.Fatalf("throughput %v far from offered 0.3", res.Throughput)
	}
	if res.MaxOccupancy > cfg.Queue {
		t.Fatalf("occupancy %d exceeded capacity %d", res.MaxOccupancy, cfg.Queue)
	}
}

func TestBufferedSaturation(t *testing.T) {
	rng := rand.New(rand.NewPCG(8, 0))
	f := fabricFor(t, topology.NameBaseline, 4)
	low, err := f.RunBuffered(BufferedConfig{Load: 0.2, Queue: 4, Cycles: 1500, Warmup: 200}, rng)
	if err != nil {
		t.Fatal(err)
	}
	high, err := f.RunBuffered(BufferedConfig{Load: 1.0, Queue: 4, Cycles: 1500, Warmup: 200}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if high.Throughput <= low.Throughput {
		t.Fatalf("saturated throughput %v not above low-load %v", high.Throughput, low.Throughput)
	}
	if high.Throughput > 0.95 {
		t.Fatalf("saturated banyan throughput %v implausibly near 1", high.Throughput)
	}
	if high.MeanLatency <= low.MeanLatency {
		t.Fatalf("latency should grow with load: %v vs %v", high.MeanLatency, low.MeanLatency)
	}
	if high.Rejected == 0 {
		t.Fatal("full load should reject some injections")
	}
}

func TestBufferedConfigValidation(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 0))
	f := fabricFor(t, topology.NameOmega, 3)
	bad := []BufferedConfig{
		{Load: -0.1, Queue: 2, Cycles: 10},
		{Load: 1.5, Queue: 2, Cycles: 10},
		{Load: 0.5, Queue: 0, Cycles: 10},
		{Load: 0.5, Queue: 2, Cycles: 0},
	}
	for _, cfg := range bad {
		if _, err := f.RunBuffered(cfg, rng); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
}

func TestWaveErrors(t *testing.T) {
	rng := rand.New(rand.NewPCG(10, 0))
	f := fabricFor(t, topology.NameOmega, 3)
	if _, err := f.RunWave(make([]int, 3), rng); err == nil {
		t.Error("short dsts accepted")
	}
	dsts := make([]int, f.N)
	dsts[0] = f.N + 1
	if _, err := f.RunWave(dsts, rng); err == nil {
		t.Error("out-of-range destination accepted")
	}
	if _, err := f.Throughput(Uniform(), 0, rng); err == nil {
		t.Error("zero waves accepted")
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	f := fabricFor(t, topology.NameFlip, 4)
	cfg := BufferedConfig{Load: 0.7, Queue: 3, Lanes: 2, Cycles: 500, Warmup: 50}
	r1, err := f.RunBuffered(cfg, rand.New(rand.NewPCG(11, 0)))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := f.RunBuffered(cfg, rand.New(rand.NewPCG(11, 0)))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1, r2) {
		t.Fatalf("same seed, different results:\n%+v\n%+v", r1, r2)
	}
}

func BenchmarkSimUniformWave(b *testing.B) {
	f := fabricFor(b, topology.NameOmega, 8)
	rng := rand.New(rand.NewPCG(12, 0))
	pattern := Uniform()
	runner := f.NewWaveRunner()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := runner.RunTraffic(pattern, rng); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimBuffered(b *testing.B) {
	f := fabricFor(b, topology.NameOmega, 6)
	rng := rand.New(rand.NewPCG(13, 0))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.RunBuffered(BufferedConfig{Load: 0.5, Queue: 4, Cycles: 200, Warmup: 20}, rng); err != nil {
			b.Fatal(err)
		}
	}
}
