package sim

import (
	"math"
	"math/rand"
	"testing"

	"minequiv/internal/perm"
	"minequiv/internal/topology"
)

func fabricFor(t testing.TB, name string, n int) *Fabric {
	t.Helper()
	nw := topology.MustBuild(name, n)
	f, err := NewFabric(nw.LinkPerms)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestFabricShapes(t *testing.T) {
	f := fabricFor(t, topology.NameOmega, 4)
	if f.N != 16 || f.H != 8 || f.Spans != 4 {
		t.Fatalf("shape: N=%d H=%d Spans=%d", f.N, f.H, f.Spans)
	}
	if !f.Banyan() {
		t.Fatal("omega fabric not banyan")
	}
	if _, err := NewFabric([]perm.Perm{perm.Identity(4), perm.Identity(8)}); err == nil {
		t.Error("mismatched perm sizes accepted")
	}
}

func TestWaveSinglePacket(t *testing.T) {
	// One packet, no contention: always delivered, on every network.
	rng := rand.New(rand.NewSource(1))
	for _, name := range topology.Names() {
		f := fabricFor(t, name, 4)
		for src := 0; src < f.N; src += 3 {
			for dst := 0; dst < f.N; dst += 5 {
				dsts := make([]int, f.N)
				for i := range dsts {
					dsts[i] = -1
				}
				dsts[src] = dst
				res, err := f.RunWave(dsts, rng)
				if err != nil {
					t.Fatal(err)
				}
				if res.Offered != 1 || res.Delivered != 1 || res.Dropped != 0 || res.Misrouted != 0 {
					t.Fatalf("%s (%d->%d): %+v", name, src, dst, res)
				}
			}
		}
	}
}

func TestWaveConservation(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f := fabricFor(t, topology.NameBaseline, 5)
	for trial := 0; trial < 50; trial++ {
		dsts := Uniform()(f.N, rng)
		res, err := f.RunWave(dsts, rng)
		if err != nil {
			t.Fatal(err)
		}
		if res.Delivered+res.Dropped+res.Misrouted != res.Offered {
			t.Fatalf("conservation violated: %+v", res)
		}
		if res.Misrouted != 0 {
			t.Fatalf("banyan fabric misrouted: %+v", res)
		}
		drops := 0
		for _, d := range res.DropStage {
			drops += d
		}
		if drops != res.Dropped {
			t.Fatalf("per-stage drops %d != total %d", drops, res.Dropped)
		}
	}
}

func TestWaveAdmissiblePermutationAllDelivered(t *testing.T) {
	// Full permutation traffic realized by switch settings passes with
	// zero drops: uses a settings-realized permutation from the routing
	// layer's logic, rebuilt here by direct simulation of settings.
	rng := rand.New(rand.NewSource(3))
	nw := topology.MustBuild(topology.NameOmega, 4)
	f, err := NewFabric(nw.LinkPerms)
	if err != nil {
		t.Fatal(err)
	}
	// Trace every input through random fixed switch settings.
	settings := make([][]int, f.Spans)
	for s := range settings {
		settings[s] = make([]int, f.H)
		for c := range settings[s] {
			settings[s][c] = rng.Intn(2)
		}
	}
	dsts := make([]int, f.N)
	for src := 0; src < f.N; src++ {
		link := uint64(src)
		for s := 0; s < f.Spans; s++ {
			cell := link >> 1
			out := (link & 1) ^ uint64(settings[s][cell])
			link = cell<<1 | out
			if s < f.Spans-1 {
				link = nw.LinkPerms[s].Apply(link)
			}
		}
		dsts[src] = int(link)
	}
	res, err := f.RunWave(dsts, rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != f.N || res.Dropped != 0 {
		t.Fatalf("admissible permutation dropped packets: %+v", res)
	}
}

func TestUniformThroughputInRange(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	f := fabricFor(t, topology.NameOmega, 5)
	th, err := f.Throughput(Uniform(), 100, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Uniform full-load banyan throughput: well below 1 (blocking), well
	// above the hot-spot floor. The analytic recursion q_{k+1} =
	// 1-(1-q_k/2)^2 gives ~0.45 for n=5.
	if th < 0.30 || th > 0.70 {
		t.Fatalf("uniform throughput %v outside sane band", th)
	}
}

func TestSixNetworksStatisticallyEquivalent(t *testing.T) {
	// The systems-level corollary of the paper: isomorphic networks have
	// the same uniform-traffic throughput (up to sampling noise).
	waves := 200
	var ths []float64
	for _, name := range topology.Names() {
		f := fabricFor(t, name, 5)
		th, err := f.Throughput(Uniform(), waves, rand.New(rand.NewSource(42)))
		if err != nil {
			t.Fatal(err)
		}
		ths = append(ths, th)
	}
	for i := 1; i < len(ths); i++ {
		if math.Abs(ths[i]-ths[0]) > 0.05 {
			t.Fatalf("throughputs diverge: %v", ths)
		}
	}
}

func TestHotSpotDegradesThroughput(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	f := fabricFor(t, topology.NameBaseline, 5)
	uni, err := f.Throughput(Uniform(), 100, rng)
	if err != nil {
		t.Fatal(err)
	}
	hot, err := f.Throughput(HotSpot(0, 0.5), 100, rng)
	if err != nil {
		t.Fatal(err)
	}
	if hot >= uni {
		t.Fatalf("hot-spot throughput %v not below uniform %v", hot, uni)
	}
}

func TestTrafficPatterns(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	n := 16
	// Uniform: all destinations in range.
	for _, d := range Uniform()(n, rng) {
		if d < 0 || d >= n {
			t.Fatal("uniform out of range")
		}
	}
	// Bernoulli(0): all idle; Bernoulli(1): all busy.
	for _, d := range Bernoulli(0)(n, rng) {
		if d != -1 {
			t.Fatal("Bernoulli(0) generated traffic")
		}
	}
	for _, d := range Bernoulli(1)(n, rng) {
		if d < 0 {
			t.Fatal("Bernoulli(1) left idle input")
		}
	}
	// Permutation: exact pattern.
	pi := perm.Random(rng, n)
	dsts := Permutation(pi)(n, rng)
	for i, d := range dsts {
		if d != int(pi[i]) {
			t.Fatal("permutation traffic wrong")
		}
	}
	// BitReversal: self-inverse pattern.
	br := BitReversal()(n, rng)
	for i, d := range br {
		if br[d] != i {
			t.Fatal("bit reversal not involutive")
		}
	}
	// RandomPermutation: a valid permutation each wave.
	rp := RandomPermutation()(n, rng)
	seen := make([]bool, n)
	for _, d := range rp {
		if seen[d] {
			t.Fatal("random permutation repeated destination")
		}
		seen[d] = true
	}
	// HotSpot(target, 1): everything to target.
	for _, d := range HotSpot(3, 1)(n, rng) {
		if d != 3 {
			t.Fatal("hotspot(1) missed target")
		}
	}
}

func TestBufferedConservationAndLatency(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := fabricFor(t, topology.NameOmega, 4)
	cfg := BufferedConfig{Load: 0.3, Queue: 4, Cycles: 2000, Warmup: 200}
	res, err := f.RunBuffered(cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered == 0 {
		t.Fatal("nothing delivered")
	}
	// Latency is at least the pipeline depth.
	if res.MeanLatency < float64(f.Spans) {
		t.Fatalf("mean latency %v below pipeline depth %d", res.MeanLatency, f.Spans)
	}
	// Deliveries cannot exceed injections plus warmup backlog.
	slack := f.Spans * f.H * 2 * cfg.Queue
	if res.Delivered > res.Injected+slack {
		t.Fatalf("delivered %d >> injected %d", res.Delivered, res.Injected)
	}
	// Throughput roughly matches offered load at low load.
	if math.Abs(res.Throughput-0.3) > 0.08 {
		t.Fatalf("throughput %v far from offered 0.3", res.Throughput)
	}
	if res.MaxOccupancy > cfg.Queue {
		t.Fatalf("occupancy %d exceeded capacity %d", res.MaxOccupancy, cfg.Queue)
	}
}

func TestBufferedSaturation(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	f := fabricFor(t, topology.NameBaseline, 4)
	low, err := f.RunBuffered(BufferedConfig{Load: 0.2, Queue: 4, Cycles: 1500, Warmup: 200}, rng)
	if err != nil {
		t.Fatal(err)
	}
	high, err := f.RunBuffered(BufferedConfig{Load: 1.0, Queue: 4, Cycles: 1500, Warmup: 200}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if high.Throughput <= low.Throughput {
		t.Fatalf("saturated throughput %v not above low-load %v", high.Throughput, low.Throughput)
	}
	if high.Throughput > 0.95 {
		t.Fatalf("saturated banyan throughput %v implausibly near 1", high.Throughput)
	}
	if high.MeanLatency <= low.MeanLatency {
		t.Fatalf("latency should grow with load: %v vs %v", high.MeanLatency, low.MeanLatency)
	}
	if high.Rejected == 0 {
		t.Fatal("full load should reject some injections")
	}
}

func TestBufferedConfigValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	f := fabricFor(t, topology.NameOmega, 3)
	bad := []BufferedConfig{
		{Load: -0.1, Queue: 2, Cycles: 10},
		{Load: 1.5, Queue: 2, Cycles: 10},
		{Load: 0.5, Queue: 0, Cycles: 10},
		{Load: 0.5, Queue: 2, Cycles: 0},
	}
	for _, cfg := range bad {
		if _, err := f.RunBuffered(cfg, rng); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
}

func TestWaveErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	f := fabricFor(t, topology.NameOmega, 3)
	if _, err := f.RunWave(make([]int, 3), rng); err == nil {
		t.Error("short dsts accepted")
	}
	dsts := make([]int, f.N)
	dsts[0] = f.N + 1
	if _, err := f.RunWave(dsts, rng); err == nil {
		t.Error("out-of-range destination accepted")
	}
	if _, err := f.Throughput(Uniform(), 0, rng); err == nil {
		t.Error("zero waves accepted")
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	f := fabricFor(t, topology.NameFlip, 4)
	r1, err := f.RunBuffered(BufferedConfig{Load: 0.7, Queue: 3, Cycles: 500, Warmup: 50}, rand.New(rand.NewSource(11)))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := f.RunBuffered(BufferedConfig{Load: 0.7, Queue: 3, Cycles: 500, Warmup: 50}, rand.New(rand.NewSource(11)))
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Fatalf("same seed, different results:\n%+v\n%+v", r1, r2)
	}
}

func BenchmarkSimUniformWave(b *testing.B) {
	f := fabricFor(b, topology.NameOmega, 8)
	rng := rand.New(rand.NewSource(12))
	pattern := Uniform()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dsts := pattern(f.N, rng)
		if _, err := f.RunWave(dsts, rng); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimBuffered(b *testing.B) {
	f := fabricFor(b, topology.NameOmega, 6)
	rng := rand.New(rand.NewSource(13))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.RunBuffered(BufferedConfig{Load: 0.5, Queue: 4, Cycles: 200, Warmup: 20}, rng); err != nil {
			b.Fatal(err)
		}
	}
}
