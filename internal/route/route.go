// Package route implements the "very simple bit directed routing" that
// §4 of the paper credits PIPID-built networks with, plus a generic
// unique-path router for arbitrary permutation-defined MINs.
//
// Terminal model. A network with n stages has N = 2^n input terminals
// and N output terminals. Input terminal a enters the stage-0 cell a>>1
// on port a&1. At each stage the switch chooses an output port d; the
// outlink label is (cell<<1)|d; the stage's link permutation carries it
// to the next stage's inlink, whose high n-1 bits name the next cell.
// The outlinks of the last stage are the output terminals themselves.
//
// For a PIPID network the port choice made at stage s ends up, untouched,
// at one fixed bit position of the output terminal label (the "tag
// position"); routing is then: read the destination's bit at that
// position and set the switch accordingly — no state, no lookup.
package route

import (
	"fmt"

	"minequiv/internal/perm"
	"minequiv/internal/pipid"
)

// Step records one hop of a routed path.
type Step struct {
	Stage   int    // 0-based stage index
	Cell    uint64 // cell label at this stage
	InPort  uint64 // port the packet arrived on (0/1)
	OutPort uint64 // port chosen to leave on (0/1)
}

// Path is a full route from an input terminal to an output terminal.
type Path struct {
	Src, Dst uint64
	Steps    []Step
}

// Router performs bit-directed routing on a PIPID-defined network.
type Router struct {
	n      int
	thetas []pipid.IndexPerm
	tagPos []int // tagPos[s] = output-terminal bit controlled by stage s
}

// NewRouter derives the tag positions for a PIPID network. It fails when
// some stage's port choice is overwritten before reaching the output —
// exactly the degenerate (non-Banyan) situations, e.g. a stage with
// theta^{-1}(0) = 0.
func NewRouter(thetas []pipid.IndexPerm) (*Router, error) {
	n := len(thetas) + 1
	for s, th := range thetas {
		if th.W() != n {
			return nil, fmt.Errorf("route: stage %d theta on %d bits, want %d", s, th.W(), n)
		}
	}
	r := &Router{n: n, thetas: thetas, tagPos: make([]int, n)}
	// The choice bit enters at link position 0 after stage s's switch and
	// is then carried through theta_s, ..., theta_{n-2}. Input position i
	// of A_theta appears at output position theta^{-1}(i).
	for s := 0; s < n; s++ {
		pos := 0
		for t := s; t < n-1; t++ {
			pos = r.thetas[t].Inverse().Theta[pos]
			if pos == 0 && t < n-2 {
				// Will be overwritten by the next switch's choice only if
				// it sits at position 0 when entering a switch; it always
				// does (position 0 IS the port). Overwrite happens at
				// every switch, so landing on 0 before the last stage
				// kills the bit.
				break
			}
		}
		r.tagPos[s] = pos
	}
	// Bits 0 is always the last stage's tag. Validate distinctness.
	seen := make([]bool, n)
	for s, p := range r.tagPos {
		if p < 0 || p >= n || seen[p] {
			return nil, fmt.Errorf("route: stage %d tag position %d collides or out of range (network not Banyan)", s, p)
		}
		seen[p] = true
	}
	return r, nil
}

// tagPosition is exported for experiments: which destination bit the
// switch at stage s consumes.
func (r *Router) TagPositions() []int {
	out := make([]int, len(r.tagPos))
	copy(out, r.tagPos)
	return out
}

// N returns the number of terminals.
func (r *Router) N() int { return 1 << uint(r.n) }

// Route computes the unique path from input terminal src to output
// terminal dst using destination-tag bits.
func (r *Router) Route(src, dst uint64) (Path, error) {
	nTerm := uint64(r.N())
	if src >= nTerm || dst >= nTerm {
		return Path{}, fmt.Errorf("route: terminal out of range (src=%d dst=%d N=%d)", src, dst, nTerm)
	}
	link := src
	path := Path{Src: src, Dst: dst, Steps: make([]Step, 0, r.n)}
	for s := 0; s < r.n; s++ {
		cell := link >> 1
		inPort := link & 1
		d := (dst >> uint(r.tagPos[s])) & 1
		path.Steps = append(path.Steps, Step{Stage: s, Cell: cell, InPort: inPort, OutPort: d})
		link = cell<<1 | d
		if s < r.n-1 {
			link = r.thetas[s].Apply(link)
		}
	}
	if link != dst {
		return Path{}, fmt.Errorf("route: tag routing landed on %d, want %d (internal error)", link, dst)
	}
	return path, nil
}

// DPRouter routes on a network defined by arbitrary link permutations,
// using backward reachability instead of closed-form tags. It is the
// semantic reference implementation the tag router is tested against.
type DPRouter struct {
	n     int
	perms []perm.Perm
}

// NewDPRouter wraps per-stage link permutations (length n-1, each on 2^n
// symbols).
func NewDPRouter(perms []perm.Perm) (*DPRouter, error) {
	n := len(perms) + 1
	for s, p := range perms {
		if p.N() != 1<<uint(n) {
			return nil, fmt.Errorf("route: stage %d permutation on %d symbols, want %d", s, p.N(), 1<<uint(n))
		}
	}
	return &DPRouter{n: n, perms: perms}, nil
}

// N returns the number of terminals.
func (r *DPRouter) N() int { return 1 << uint(r.n) }

// Route computes a path from src to dst, or fails when none exists. When
// the network is Banyan the path is the unique one.
func (r *DPRouter) Route(src, dst uint64) (Path, error) {
	nTerm := uint64(r.N())
	if src >= nTerm || dst >= nTerm {
		return Path{}, fmt.Errorf("route: terminal out of range (src=%d dst=%d N=%d)", src, dst, nTerm)
	}
	h := int(nTerm / 2)
	// canReach[s][cell]: cell at stage s can reach output terminal dst.
	canReach := make([][]bool, r.n)
	last := make([]bool, h)
	last[dst>>1] = true
	canReach[r.n-1] = last
	for s := r.n - 2; s >= 0; s-- {
		cur := make([]bool, h)
		for cell := 0; cell < h; cell++ {
			for d := uint64(0); d < 2; d++ {
				next := r.perms[s].Apply(uint64(cell)<<1|d) >> 1
				if canReach[s+1][next] {
					cur[cell] = true
				}
			}
		}
		canReach[s] = cur
	}
	link := src
	path := Path{Src: src, Dst: dst, Steps: make([]Step, 0, r.n)}
	for s := 0; s < r.n; s++ {
		cell := link >> 1
		inPort := link & 1
		if !canReach[s][cell] {
			return Path{}, fmt.Errorf("route: no path from %d to %d (stuck at stage %d cell %d)", src, dst, s, cell)
		}
		var d uint64
		if s == r.n-1 {
			d = dst & 1
		} else {
			chosen := false
			for cand := uint64(0); cand < 2; cand++ {
				next := r.perms[s].Apply(cell<<1|cand) >> 1
				if canReach[s+1][next] {
					d = cand
					chosen = true
					break
				}
			}
			if !chosen {
				return Path{}, fmt.Errorf("route: dead end at stage %d cell %d", s, cell)
			}
		}
		path.Steps = append(path.Steps, Step{Stage: s, Cell: cell, InPort: inPort, OutPort: d})
		link = cell<<1 | d
		if s < r.n-1 {
			link = r.perms[s].Apply(link)
		}
	}
	if link != dst {
		return Path{}, fmt.Errorf("route: landed on %d, want %d", link, dst)
	}
	return path, nil
}

// PathsEqual reports whether two paths traverse the same cells and ports.
func PathsEqual(a, b Path) bool {
	if a.Src != b.Src || a.Dst != b.Dst || len(a.Steps) != len(b.Steps) {
		return false
	}
	for i := range a.Steps {
		if a.Steps[i] != b.Steps[i] {
			return false
		}
	}
	return true
}
