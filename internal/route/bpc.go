package route

import (
	"fmt"

	"minequiv/internal/bitops"
	"minequiv/internal/pipid"
)

// BPCRouter extends bit-directed routing to bit-permute-complement
// stages: each stage applies A(y) = theta(y) ^ mask. The complement bits
// never disturb which destination bit a switch controls — they only flip
// the tag value the switch must read — so routing stays a stateless bit
// lookup with a per-stage XOR correction.
type BPCRouter struct {
	n      int
	stages []pipid.BPC
	tagPos []int
	tagFix []uint64 // correction: d_s = dst[tagPos[s]] ^ tagFix[s]
}

// NewBPCRouter derives tag positions and mask corrections. Like
// NewRouter it rejects networks where a port choice is overwritten.
func NewBPCRouter(stages []pipid.BPC) (*BPCRouter, error) {
	n := len(stages) + 1
	for s, st := range stages {
		if st.Theta.W() != n {
			return nil, fmt.Errorf("route: stage %d theta on %d bits, want %d", s, st.Theta.W(), n)
		}
	}
	r := &BPCRouter{n: n, stages: stages, tagPos: make([]int, n), tagFix: make([]uint64, n)}
	for s := 0; s < n; s++ {
		pos := 0
		var fix uint64
		dead := false
		for t := s; t < n-1; t++ {
			pos = r.stages[t].Theta.Inverse().Theta[pos]
			fix ^= bitops.Bit(r.stages[t].Mask, pos)
			if pos == 0 && t < n-2 {
				dead = true
				break
			}
		}
		if dead {
			return nil, fmt.Errorf("route: stage %d port choice overwritten (network not Banyan)", s)
		}
		r.tagPos[s] = pos
		r.tagFix[s] = fix
	}
	seen := make([]bool, n)
	for s, p := range r.tagPos {
		if seen[p] {
			return nil, fmt.Errorf("route: stage %d tag position %d collides (network not Banyan)", s, p)
		}
		seen[p] = true
	}
	return r, nil
}

// N returns the number of terminals.
func (r *BPCRouter) N() int { return 1 << uint(r.n) }

// TagPositions returns the destination bit consumed per stage.
func (r *BPCRouter) TagPositions() []int {
	out := make([]int, len(r.tagPos))
	copy(out, r.tagPos)
	return out
}

// Route computes the unique path from src to dst.
func (r *BPCRouter) Route(src, dst uint64) (Path, error) {
	nTerm := uint64(r.N())
	if src >= nTerm || dst >= nTerm {
		return Path{}, fmt.Errorf("route: terminal out of range (src=%d dst=%d N=%d)", src, dst, nTerm)
	}
	link := src
	path := Path{Src: src, Dst: dst, Steps: make([]Step, 0, r.n)}
	for s := 0; s < r.n; s++ {
		cell := link >> 1
		inPort := link & 1
		d := bitops.Bit(dst, r.tagPos[s]) ^ r.tagFix[s]
		path.Steps = append(path.Steps, Step{Stage: s, Cell: cell, InPort: inPort, OutPort: d})
		link = cell<<1 | d
		if s < r.n-1 {
			link = r.stages[s].Apply(link)
		}
	}
	if link != dst {
		return Path{}, fmt.Errorf("route: BPC tag routing landed on %d, want %d (internal error)", link, dst)
	}
	return path, nil
}

// VerifyAllPairs routes all terminal pairs.
func (r *BPCRouter) VerifyAllPairs() (int, error) {
	n := uint64(r.N())
	for src := uint64(0); src < n; src++ {
		for dst := uint64(0); dst < n; dst++ {
			if _, err := r.Route(src, dst); err != nil {
				return 0, fmt.Errorf("route: pair (%d,%d): %w", src, dst, err)
			}
		}
	}
	return int(n * n), nil
}
