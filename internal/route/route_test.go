package route

import (
	"math/rand/v2"
	"testing"

	"minequiv/internal/perm"
	"minequiv/internal/pipid"
	"minequiv/internal/topology"
)

func routersFor(t testing.TB, name string, n int) (*Router, *DPRouter) {
	t.Helper()
	nw := topology.MustBuild(name, n)
	r, err := NewRouter(nw.IndexPerms)
	if err != nil {
		t.Fatalf("%s n=%d: %v", name, n, err)
	}
	dp, err := NewDPRouter(nw.LinkPerms)
	if err != nil {
		t.Fatal(err)
	}
	return r, dp
}

func TestOmegaTagPositions(t *testing.T) {
	// Classic result: Omega consumes destination bits most significant
	// first: stage s reads bit n-1-s.
	for n := 2; n <= 8; n++ {
		r, _ := routersFor(t, topology.NameOmega, n)
		for s, p := range r.TagPositions() {
			if p != n-1-s {
				t.Fatalf("n=%d: omega stage %d tag %d, want %d", n, s, p, n-1-s)
			}
		}
	}
}

func TestTagVsDPAllNetworks(t *testing.T) {
	// The closed-form tag router and the reachability router must agree
	// on every pair for every catalog network.
	for n := 2; n <= 6; n++ {
		for _, name := range topology.Names() {
			r, dp := routersFor(t, name, n)
			N := uint64(r.N())
			for src := uint64(0); src < N; src++ {
				for dst := uint64(0); dst < N; dst++ {
					pt, err := r.Route(src, dst)
					if err != nil {
						t.Fatalf("%s n=%d (%d,%d): tag: %v", name, n, src, dst, err)
					}
					pd, err := dp.Route(src, dst)
					if err != nil {
						t.Fatalf("%s n=%d (%d,%d): dp: %v", name, n, src, dst, err)
					}
					if !PathsEqual(pt, pd) {
						t.Fatalf("%s n=%d (%d,%d): tag and DP paths differ:\n%v\nvs\n%v",
							name, n, src, dst, pt, pd)
					}
				}
			}
		}
	}
}

func TestPathShape(t *testing.T) {
	r, _ := routersFor(t, topology.NameBaseline, 5)
	p, err := r.Route(11, 23)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Steps) != 5 {
		t.Fatalf("path has %d steps, want 5", len(p.Steps))
	}
	if p.Steps[0].Cell != 11>>1 || p.Steps[0].InPort != 11&1 {
		t.Fatal("path does not start at source terminal")
	}
	last := p.Steps[len(p.Steps)-1]
	if last.Cell != 23>>1 || last.OutPort != 23&1 {
		t.Fatal("path does not end at destination terminal")
	}
	// Consecutive steps must be linked by the stage permutations.
	nw := topology.MustBuild(topology.NameBaseline, 5)
	for i := 0; i+1 < len(p.Steps); i++ {
		out := p.Steps[i].Cell<<1 | p.Steps[i].OutPort
		in := nw.LinkPerms[i].Apply(out)
		if in>>1 != p.Steps[i+1].Cell || in&1 != p.Steps[i+1].InPort {
			t.Fatalf("step %d -> %d not consistent with link permutation", i, i+1)
		}
	}
}

func TestVerifyAllPairs(t *testing.T) {
	for _, name := range topology.Names() {
		r, _ := routersFor(t, name, 5)
		pairs, err := r.VerifyAllPairs()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if pairs != 32*32 {
			t.Fatalf("%s: %d pairs", name, pairs)
		}
	}
}

func TestRouterRejectsDegenerate(t *testing.T) {
	// A stage with theta fixing position 0 overwrites its own choice:
	// routing must refuse (Fig 5 network).
	n := 3
	thetas := []pipid.IndexPerm{pipid.Identity(n), pipid.PerfectShuffle(n)}
	if _, err := NewRouter(thetas); err == nil {
		t.Fatal("degenerate network accepted")
	}
	// Wrong widths rejected.
	if _, err := NewRouter([]pipid.IndexPerm{pipid.Identity(2), pipid.Identity(3)}); err == nil {
		t.Fatal("width mismatch accepted")
	}
}

func TestRouteRangeErrors(t *testing.T) {
	r, dp := routersFor(t, topology.NameOmega, 3)
	if _, err := r.Route(8, 0); err == nil {
		t.Error("src out of range accepted")
	}
	if _, err := r.Route(0, 8); err == nil {
		t.Error("dst out of range accepted")
	}
	if _, err := dp.Route(9, 0); err == nil {
		t.Error("dp src out of range accepted")
	}
}

func TestDPRouterFailsOnUnreachable(t *testing.T) {
	// Two disjoint halves: identity link permutations keep a packet in
	// its source cell pair forever.
	perms := []perm.Perm{perm.Identity(8), perm.Identity(8)}
	dp, err := NewDPRouter(perms)
	if err != nil {
		t.Fatal(err)
	}
	// From terminal 0 only terminals 0,1 are reachable.
	if _, err := dp.Route(0, 1); err != nil {
		t.Errorf("reachable pair rejected: %v", err)
	}
	if _, err := dp.Route(0, 5); err == nil {
		t.Error("unreachable pair routed")
	}
}

func TestRealizedPermutationsAdmissible(t *testing.T) {
	// Any permutation realized by explicit switch settings is admissible,
	// on every catalog network; and distinct settings realize distinct
	// permutations (Banyan property at the terminal level).
	rng := rand.New(rand.NewPCG(7, 0))
	for _, name := range topology.Names() {
		r, _ := routersFor(t, name, 4)
		h := r.N() / 2
		seen := map[string]bool{}
		for trial := 0; trial < 30; trial++ {
			settings := make([][]uint64, 4)
			for s := range settings {
				settings[s] = make([]uint64, h)
				for c := range settings[s] {
					settings[s][c] = uint64(rng.IntN(2))
				}
			}
			pi, err := r.RealizedPermutation(settings)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			ok, err := r.Admissible(pi)
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				t.Fatalf("%s: realized permutation %v not admissible", name, pi)
			}
			seen[pi.String()] = true
		}
		if len(seen) < 25 {
			t.Errorf("%s: only %d distinct permutations from 30 random settings", name, len(seen))
		}
	}
	// Shape errors.
	r, _ := routersFor(t, topology.NameOmega, 3)
	if _, err := r.RealizedPermutation(nil); err == nil {
		t.Error("nil settings accepted")
	}
	if _, err := r.RealizedPermutation([][]uint64{{0}, {0}, {0}}); err == nil {
		t.Error("short stage settings accepted")
	}
}

func TestOmegaIdentityBlockedInThisModel(t *testing.T) {
	// In the MI-digraph terminal model (no input shuffle — I/O wiring is
	// invisible to topological equivalence), inputs 2c and 2c+1 share
	// cell c, and under identity traffic their destinations agree on the
	// first tag bit: Omega blocks the identity here. This differs from
	// textbook statements that assume the extra input shuffle; the count
	// of admissible permutations (2^#switches) is wiring-invariant.
	r, _ := routersFor(t, topology.NameOmega, 3)
	ok, err := r.Admissible(perm.Identity(r.N()))
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("identity unexpectedly admissible for omega in the direct-attachment model")
	}
}

func TestOmegaBlocksSomePermutation(t *testing.T) {
	// Banyan networks cannot realize all permutations in one pass; find
	// a blocked one for Omega N=8 (bit-reversal of 3 bits is the classic
	// non-admissible example for Omega... verify by search to be safe).
	r, _ := routersFor(t, topology.NameOmega, 3)
	adm, total, err := r.CountAdmissible()
	if err != nil {
		t.Fatal(err)
	}
	if total != 40320 { // 8!
		t.Fatalf("total = %d, want 40320", total)
	}
	// Exactly 2^(#switches) = 2^(4*3) = 4096 admissible permutations.
	if adm != 4096 {
		t.Fatalf("admissible = %d, want 4096", adm)
	}
}

func TestCountAdmissibleMatchesSwitchCount(t *testing.T) {
	// The 2^(switches) law holds for every classical network at N=4:
	// 2^(2*2) = 16 of 24 permutations.
	for _, name := range topology.Names() {
		r, _ := routersFor(t, name, 2)
		adm, total, err := r.CountAdmissible()
		if err != nil {
			t.Fatal(err)
		}
		if total != 24 || adm != 16 {
			t.Errorf("%s: adm/total = %d/%d, want 16/24", name, adm, total)
		}
	}
	// Oversized enumeration rejected.
	r, _ := routersFor(t, topology.NameOmega, 4)
	if _, _, err := r.CountAdmissible(); err == nil {
		t.Error("N=16 enumeration accepted")
	}
}

func TestConflictDetectionDetail(t *testing.T) {
	r, _ := routersFor(t, topology.NameOmega, 3)
	// Inputs 0 and 1 share cell 0; Omega's first tag is destination bit
	// 2, so sending them to destinations that agree on bit 2 must be
	// reported as a stage-0 conflict at cell 0.
	pi := perm.Perm{0, 1, 3, 2, 5, 4, 7, 6}
	cs, err := r.PermutationConflicts(pi)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, c := range cs {
		if c.Stage == 0 && c.Cell == 0 && c.SrcA == 0 && c.SrcB == 1 {
			found = true
			if c.String() == "" {
				t.Error("empty conflict string")
			}
		}
	}
	if !found {
		t.Fatalf("conflict (0,1)@stage0 not reported: %v", cs)
	}
	// A realized permutation reports zero conflicts.
	h := r.N() / 2
	settings := make([][]uint64, 3)
	for s := range settings {
		settings[s] = make([]uint64, h)
		for c := range settings[s] {
			settings[s][c] = uint64((s + c) % 2)
		}
	}
	clean, err := r.RealizedPermutation(settings)
	if err != nil {
		t.Fatal(err)
	}
	cs, err = r.PermutationConflicts(clean)
	if err != nil || len(cs) != 0 {
		t.Fatalf("realized permutation has conflicts: %v %v", cs, err)
	}
	// Errors.
	if _, err := r.PermutationConflicts(perm.Identity(4)); err == nil {
		t.Error("wrong-size permutation accepted")
	}
	if _, err := r.PermutationConflicts(perm.Perm{0, 0, 1, 2, 3, 4, 5, 6}); err == nil {
		t.Error("non-bijection accepted")
	}
}

func TestRandomPermutationAdmissibilityAgreesWithSim(t *testing.T) {
	// Cross-check Admissible against brute-force path overlap: pi is
	// admissible iff no two routed paths share an outlink.
	rng := rand.New(rand.NewPCG(1, 0))
	r, _ := routersFor(t, topology.NameBaseline, 4)
	for trial := 0; trial < 50; trial++ {
		pi := perm.Random(rng, r.N())
		ok, err := r.Admissible(pi)
		if err != nil {
			t.Fatal(err)
		}
		// Brute force: collect (stage, cell, port) per input.
		used := map[[3]uint64]bool{}
		clash := false
		for src := 0; src < r.N(); src++ {
			p, err := r.Route(uint64(src), pi[src])
			if err != nil {
				t.Fatal(err)
			}
			for _, st := range p.Steps {
				key := [3]uint64{uint64(st.Stage), st.Cell, st.OutPort}
				if used[key] {
					clash = true
				}
				used[key] = true
			}
		}
		if ok == clash {
			t.Fatalf("Admissible=%v but clash=%v", ok, clash)
		}
	}
}

func BenchmarkRouteAllPairs(b *testing.B) {
	nw := topology.MustBuild(topology.NameOmega, 8)
	r, err := NewRouter(nw.IndexPerms)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.VerifyAllPairs(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPermutationConflicts(b *testing.B) {
	nw := topology.MustBuild(topology.NameOmega, 10)
	r, err := NewRouter(nw.IndexPerms)
	if err != nil {
		b.Fatal(err)
	}
	pi := perm.Random(rand.New(rand.NewPCG(2, 0)), r.N())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.PermutationConflicts(pi); err != nil {
			b.Fatal(err)
		}
	}
}
