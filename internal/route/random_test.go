package route

import (
	"math/rand/v2"
	"testing"

	"minequiv/internal/randnet"
	"minequiv/internal/sim"
	"minequiv/internal/topology"
)

// TestRandomPIPIDNetworksRoute ties §4 together end to end: random
// Banyan PIPID networks admit bit-directed routing whose paths agree
// with the reachability reference on every pair.
func TestRandomPIPIDNetworksRoute(t *testing.T) {
	rng := rand.New(rand.NewPCG(42, 0))
	for n := 2; n <= 6; n++ {
		for trial := 0; trial < 3; trial++ {
			nw, err := randnet.PIPIDNetwork(rng, n, 2000)
			if err != nil {
				t.Fatalf("n=%d: %v", n, err)
			}
			r, err := NewRouter(nw.IndexPerms)
			if err != nil {
				t.Fatalf("n=%d %s: %v", n, nw.Name, err)
			}
			dp, err := NewDPRouter(nw.LinkPerms)
			if err != nil {
				t.Fatal(err)
			}
			N := uint64(r.N())
			step := uint64(1)
			if n >= 5 {
				step = 3 // sample pairs at larger sizes
			}
			for src := uint64(0); src < N; src += step {
				for dst := uint64(0); dst < N; dst += step {
					pt, err := r.Route(src, dst)
					if err != nil {
						t.Fatalf("n=%d (%d,%d): %v", n, src, dst, err)
					}
					pd, err := dp.Route(src, dst)
					if err != nil {
						t.Fatalf("n=%d (%d,%d): dp: %v", n, src, dst, err)
					}
					if !PathsEqual(pt, pd) {
						t.Fatalf("n=%d (%d,%d): paths differ", n, src, dst)
					}
				}
			}
		}
	}
}

// TestRouterRejectsNonBanyanPIPID: a PIPID cascade that repeats a
// butterfly is not Banyan; the tag construction must detect it.
func TestRouterRejectsNonBanyanPIPID(t *testing.T) {
	n := 4
	nw, err := topology.ButterflyCascade(n, []int{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewRouter(nw.IndexPerms); err != nil {
		t.Fatalf("valid cascade rejected: %v", err)
	}
	// Repeat beta_1 twice: destination bit 0 is set twice, bit 2 never —
	// collision in tag positions.
	bad := nw.IndexPerms
	bad[2] = bad[0]
	if _, err := NewRouter(bad); err == nil {
		t.Fatal("repeated butterfly accepted (not Banyan)")
	}
}

// TestRoutingAgreesWithSimulator: a single packet simulated through the
// fabric lands where the router says it should.
func TestRoutingAgreesWithSimulator(t *testing.T) {
	rng := rand.New(rand.NewPCG(43, 0))
	for _, name := range topology.Names() {
		nw := topology.MustBuild(name, 5)
		r, err := NewRouter(nw.IndexPerms)
		if err != nil {
			t.Fatal(err)
		}
		f, err := sim.NewFabric(nw.LinkPerms)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 20; trial++ {
			src := rng.IntN(f.N)
			dst := rng.IntN(f.N)
			if _, err := r.Route(uint64(src), uint64(dst)); err != nil {
				t.Fatal(err)
			}
			dsts := make([]int, f.N)
			for i := range dsts {
				dsts[i] = -1
			}
			dsts[src] = dst
			res, err := f.RunWave(dsts, rng)
			if err != nil {
				t.Fatal(err)
			}
			if res.Delivered != 1 {
				t.Fatalf("%s: lone packet (%d->%d) not delivered: %+v", name, src, dst, res)
			}
		}
	}
}
