package route

import (
	"math/rand/v2"
	"testing"

	"minequiv/internal/bitops"
	"minequiv/internal/midigraph"
	"minequiv/internal/perm"
	"minequiv/internal/pipid"
	"minequiv/internal/topology"
)

// randomBanyanBPCStages samples BPC stages whose underlying thetas form a
// Banyan PIPID network, with random complement masks.
func randomBanyanBPCStages(t testing.TB, rng *rand.Rand, n int) []pipid.BPC {
	t.Helper()
	for try := 0; try < 2000; try++ {
		stages := make([]pipid.BPC, n-1)
		ok := true
		for s := range stages {
			theta := pipid.Random(rng, n)
			if theta.PortSource() == 0 {
				ok = false
				break
			}
			b, err := pipid.NewBPC(theta, rng.Uint64()&bitops.Mask(n))
			if err != nil {
				t.Fatal(err)
			}
			stages[s] = b
		}
		if !ok {
			continue
		}
		// Banyan check on the induced cell graph.
		lps := make([]perm.Perm, n-1)
		for s, st := range stages {
			lps[s] = st.ToPerm()
		}
		g, err := midigraph.FromLinkPerms(n, lps)
		if err != nil {
			continue
		}
		if banyan, _ := g.IsBanyan(); banyan {
			return stages
		}
	}
	t.Fatal("no Banyan BPC network found")
	return nil
}

func TestBPCRouterMatchesDP(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 0))
	for n := 2; n <= 5; n++ {
		for trial := 0; trial < 5; trial++ {
			stages := randomBanyanBPCStages(t, rng, n)
			r, err := NewBPCRouter(stages)
			if err != nil {
				t.Fatalf("n=%d: %v", n, err)
			}
			lps := make([]perm.Perm, n-1)
			for s, st := range stages {
				lps[s] = st.ToPerm()
			}
			dp, err := NewDPRouter(lps)
			if err != nil {
				t.Fatal(err)
			}
			N := uint64(r.N())
			for src := uint64(0); src < N; src++ {
				for dst := uint64(0); dst < N; dst++ {
					pt, err := r.Route(src, dst)
					if err != nil {
						t.Fatalf("n=%d (%d,%d): %v", n, src, dst, err)
					}
					pd, err := dp.Route(src, dst)
					if err != nil {
						t.Fatalf("n=%d (%d,%d): dp: %v", n, src, dst, err)
					}
					if !PathsEqual(pt, pd) {
						t.Fatalf("n=%d (%d,%d): paths differ", n, src, dst)
					}
				}
			}
		}
	}
}

func TestBPCRouterZeroMaskEqualsPlain(t *testing.T) {
	// With all-zero masks the BPC router must agree with the PIPID
	// router exactly, including tag positions.
	for _, name := range topology.Names() {
		nw := topology.MustBuild(name, 4)
		plain, err := NewRouter(nw.IndexPerms)
		if err != nil {
			t.Fatal(err)
		}
		stages := make([]pipid.BPC, len(nw.IndexPerms))
		for s, th := range nw.IndexPerms {
			stages[s] = pipid.BPC{Theta: th}
		}
		bpc, err := NewBPCRouter(stages)
		if err != nil {
			t.Fatal(err)
		}
		for s := range plain.TagPositions() {
			if plain.TagPositions()[s] != bpc.TagPositions()[s] {
				t.Fatalf("%s: tag positions differ at stage %d", name, s)
			}
		}
		for src := uint64(0); src < uint64(plain.N()); src += 3 {
			for dst := uint64(0); dst < uint64(plain.N()); dst += 5 {
				pp, err1 := plain.Route(src, dst)
				pb, err2 := bpc.Route(src, dst)
				if err1 != nil || err2 != nil || !PathsEqual(pp, pb) {
					t.Fatalf("%s (%d,%d): plain and zero-mask BPC differ", name, src, dst)
				}
			}
		}
	}
}

func TestBPCRouterAllPairs(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 0))
	stages := randomBanyanBPCStages(t, rng, 5)
	r, err := NewBPCRouter(stages)
	if err != nil {
		t.Fatal(err)
	}
	pairs, err := r.VerifyAllPairs()
	if err != nil {
		t.Fatal(err)
	}
	if pairs != 32*32 {
		t.Fatalf("pairs = %d", pairs)
	}
}

func TestBPCRouterRejectsDegenerate(t *testing.T) {
	n := 3
	stages := []pipid.BPC{
		{Theta: pipid.Identity(n), Mask: 0b101},
		{Theta: pipid.PerfectShuffle(n)},
	}
	if _, err := NewBPCRouter(stages); err == nil {
		t.Fatal("degenerate BPC network accepted (masks cannot fix double links)")
	}
	// Width mismatch.
	bad := []pipid.BPC{{Theta: pipid.Identity(2)}, {Theta: pipid.Identity(3)}}
	if _, err := NewBPCRouter(bad); err == nil {
		t.Fatal("width mismatch accepted")
	}
}

func TestBPCRouterRangeErrors(t *testing.T) {
	stages := []pipid.BPC{
		{Theta: pipid.PerfectShuffle(3), Mask: 0b010},
		{Theta: pipid.PerfectShuffle(3), Mask: 0b001},
	}
	r, err := NewBPCRouter(stages)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Route(8, 0); err == nil {
		t.Error("src out of range accepted")
	}
	if _, err := r.Route(0, 8); err == nil {
		t.Error("dst out of range accepted")
	}
}

func BenchmarkBPCRouteAllPairs(b *testing.B) {
	stages := make([]pipid.BPC, 7)
	for s := range stages {
		stages[s] = pipid.BPC{Theta: pipid.PerfectShuffle(8), Mask: uint64(s * 13 % 256)}
	}
	r, err := NewBPCRouter(stages)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.VerifyAllPairs(); err != nil {
			b.Fatal(err)
		}
	}
}
