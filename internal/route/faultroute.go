package route

import (
	"fmt"

	"minequiv/internal/perm"
)

// Switch health modes for fault-aware routing. They mirror the fault
// kinds of the simulation layer without importing it: route stays a
// leaf package.
const (
	SwitchOK uint8 = iota
	SwitchDead
	SwitchStuck0
	SwitchStuck1
)

// FaultSpec describes the degraded fabric a FaultyRouter routes on.
// Nil callbacks mean "no faults of that kind".
type FaultSpec struct {
	// SwitchMode returns the health of the cell at (stage, cell):
	// SwitchOK, SwitchDead, or SwitchStuck0/1 (crossbar jammed to one
	// port).
	SwitchMode func(stage, cell int) uint8
	// LinkDown reports whether outlink `out` of `stage` is severed; the
	// last stage's outlinks are the output terminals.
	LinkDown func(stage, out int) bool
}

func (sp FaultSpec) mode(stage, cell int) uint8 {
	if sp.SwitchMode == nil {
		return SwitchOK
	}
	return sp.SwitchMode(stage, cell)
}

func (sp FaultSpec) down(stage, out int) bool {
	return sp.LinkDown != nil && sp.LinkDown(stage, out)
}

// FaultyRouter routes on a permutation-defined network with a fixed set
// of faulty elements, by backward reachability over the surviving
// wiring — the same fallback discipline DPRouter uses for the intact
// fabric. Reachability tables are compiled lazily per destination (a
// single Route touches one; CountAdmissible fills all N), so routing
// one pair costs O(n·h), not O(N·n·h). A FaultyRouter is NOT safe for
// concurrent use.
type FaultyRouter struct {
	n     int
	h     int
	perms []perm.Perm
	spec  FaultSpec
	// canReach[dst][s*h+cell]: cell at stage s reaches output dst
	// through surviving switches and links; nil until first needed.
	canReach [][]bool
}

// NewFaultyRouter wraps per-stage link permutations (length n-1, each
// on 2^n symbols) and the fault spec. The spec's callbacks are
// consulted as destination tables are compiled on first use.
func NewFaultyRouter(perms []perm.Perm, spec FaultSpec) (*FaultyRouter, error) {
	n := len(perms) + 1
	N := 1 << uint(n)
	for s, p := range perms {
		if p.N() != N {
			return nil, fmt.Errorf("route: stage %d permutation on %d symbols, want %d", s, p.N(), N)
		}
	}
	return &FaultyRouter{n: n, h: N / 2, perms: perms, spec: spec, canReach: make([][]bool, N)}, nil
}

// reach returns (building on first use) the surviving-reachability
// table for one destination.
func (r *FaultyRouter) reach(dst int) []bool {
	if cr := r.canReach[dst]; cr != nil {
		return cr
	}
	n, h, spec := r.n, r.h, r.spec
	cr := make([]bool, n*h)
	// Last stage: only cell dst>>1 can deliver, and only when the
	// switch is alive, not jammed away from dst's port, and the
	// terminal link survives.
	cell := dst >> 1
	d := uint8(dst & 1)
	if ok := spec.mode(n-1, cell); ok != SwitchDead &&
		!(ok == SwitchStuck0 && d == 1) && !(ok == SwitchStuck1 && d == 0) &&
		!spec.down(n-1, dst) {
		cr[(n-1)*h+cell] = true
	}
	for s := n - 2; s >= 0; s-- {
		for c := 0; c < h; c++ {
			mode := spec.mode(s, c)
			if mode == SwitchDead {
				continue
			}
			for _, p := range r.allowedPorts(mode) {
				out := c<<1 | int(p)
				if spec.down(s, out) {
					continue
				}
				next := int(r.perms[s].Apply(uint64(out))) >> 1
				if cr[(s+1)*h+next] {
					cr[s*h+c] = true
					break
				}
			}
		}
	}
	r.canReach[dst] = cr
	return cr
}

// allowedPorts lists the crossbar settings a switch in `mode` can make.
func (r *FaultyRouter) allowedPorts(mode uint8) []uint8 {
	switch mode {
	case SwitchStuck0:
		return ports0[:]
	case SwitchStuck1:
		return ports1[:]
	default:
		return portsBoth[:]
	}
}

var (
	ports0    = [1]uint8{0}
	ports1    = [1]uint8{1}
	portsBoth = [2]uint8{0, 1}
)

// N returns the number of terminals.
func (r *FaultyRouter) N() int { return 1 << uint(r.n) }

// Route computes a path from src to dst avoiding every faulty element,
// or fails when the surviving fabric offers none. On a Banyan fabric
// the surviving path, when it exists, is the unique intact path (faults
// only remove paths, never add them).
func (r *FaultyRouter) Route(src, dst uint64) (Path, error) {
	nTerm := uint64(r.N())
	if src >= nTerm || dst >= nTerm {
		return Path{}, fmt.Errorf("route: terminal out of range (src=%d dst=%d N=%d)", src, dst, nTerm)
	}
	cr := r.reach(int(dst))
	link := src
	path := Path{Src: src, Dst: dst, Steps: make([]Step, 0, r.n)}
	for s := 0; s < r.n; s++ {
		cell := int(link >> 1)
		inPort := link & 1
		if !cr[s*r.h+cell] {
			return Path{}, fmt.Errorf("route: no fault-free path from %d to %d (stuck at stage %d cell %d)", src, dst, s, cell)
		}
		mode := r.spec.mode(s, cell)
		var d uint64
		chosen := false
		if s == r.n-1 {
			d = dst & 1
			chosen = true // reachability above already vetted mode and link
		} else {
			for _, p := range r.allowedPorts(mode) {
				out := cell<<1 | int(p)
				if r.spec.down(s, out) {
					continue
				}
				next := int(r.perms[s].Apply(uint64(out))) >> 1
				if cr[(s+1)*r.h+next] {
					d = uint64(p)
					chosen = true
					break
				}
			}
		}
		if !chosen {
			return Path{}, fmt.Errorf("route: dead end at stage %d cell %d", s, cell)
		}
		path.Steps = append(path.Steps, Step{Stage: s, Cell: uint64(cell), InPort: inPort, OutPort: d})
		link = uint64(cell)<<1 | d
		if s < r.n-1 {
			link = r.perms[s].Apply(link)
		}
	}
	if link != dst {
		return Path{}, fmt.Errorf("route: landed on %d, want %d", link, dst)
	}
	return path, nil
}

// CountAdmissible enumerates all N! permutations (practical only for
// N <= 8) and counts those the degraded fabric routes without any
// outlink conflict: every source must have a surviving path and no two
// paths may share a link. With no faults this coincides with the tag
// router's classical 2^(switch count).
func (r *FaultyRouter) CountAdmissible() (admissible, total uint64, err error) {
	n := r.N()
	if n > 8 {
		return 0, 0, fmt.Errorf("route: CountAdmissible limited to N <= 8, got %d", n)
	}
	// Precompute each (src, dst) path's outlink trace once; nil = no
	// surviving path.
	traces := make([][][]uint64, n)
	for src := 0; src < n; src++ {
		traces[src] = make([][]uint64, n)
		for dst := 0; dst < n; dst++ {
			p, err := r.Route(uint64(src), uint64(dst))
			if err != nil {
				continue
			}
			tr := make([]uint64, r.n)
			for s, st := range p.Steps {
				tr[s] = st.Cell<<1 | st.OutPort
			}
			traces[src][dst] = tr
		}
	}
	pi := perm.Identity(n)
	claimed := make([][]bool, r.n)
	for s := range claimed {
		claimed[s] = make([]bool, n)
	}
	admitted := func() bool {
		for s := range claimed {
			for i := range claimed[s] {
				claimed[s][i] = false
			}
		}
		for src := 0; src < n; src++ {
			tr := traces[src][pi[src]]
			if tr == nil {
				return false
			}
			for s, out := range tr {
				if claimed[s][out] {
					return false
				}
				claimed[s][out] = true
			}
		}
		return true
	}
	var rec func(k int)
	rec = func(k int) {
		if k == n {
			total++
			if admitted() {
				admissible++
			}
			return
		}
		for i := k; i < n; i++ {
			pi[k], pi[i] = pi[i], pi[k]
			rec(k + 1)
			pi[k], pi[i] = pi[i], pi[k]
		}
	}
	rec(0)
	return admissible, total, nil
}
