package route

import (
	"testing"

	"minequiv/internal/topology"
)

// With no faults the FaultyRouter is exactly the DPRouter: same paths
// for every pair, and the classical admissible count.
func TestFaultyRouterIntactMatchesDP(t *testing.T) {
	nw := topology.MustBuild(topology.NameOmega, 3)
	dp, err := NewDPRouter(nw.LinkPerms)
	if err != nil {
		t.Fatal(err)
	}
	fr, err := NewFaultyRouter(nw.LinkPerms, FaultSpec{})
	if err != nil {
		t.Fatal(err)
	}
	N := uint64(fr.N())
	for src := uint64(0); src < N; src++ {
		for dst := uint64(0); dst < N; dst++ {
			a, err := dp.Route(src, dst)
			if err != nil {
				t.Fatal(err)
			}
			b, err := fr.Route(src, dst)
			if err != nil {
				t.Fatal(err)
			}
			if !PathsEqual(a, b) {
				t.Fatalf("pair (%d,%d): intact FaultyRouter path differs from DPRouter", src, dst)
			}
		}
	}
	adm, total, err := fr.CountAdmissible()
	if err != nil {
		t.Fatal(err)
	}
	// 3 stages x 4 switches: 2^12 admissible of 8!.
	if adm != 1<<12 || total != 40320 {
		t.Fatalf("intact admissible=%d/%d, want %d/40320", adm, total, 1<<12)
	}
}

// A dead stage-0 switch unroutes exactly its two inputs; every full
// permutation then needs a path it cannot have, so none is admissible.
func TestFaultyRouterDeadSwitch(t *testing.T) {
	nw := topology.MustBuild(topology.NameOmega, 3)
	spec := FaultSpec{SwitchMode: func(stage, cell int) uint8 {
		if stage == 0 && cell == 0 {
			return SwitchDead
		}
		return SwitchOK
	}}
	fr, err := NewFaultyRouter(nw.LinkPerms, spec)
	if err != nil {
		t.Fatal(err)
	}
	N := uint64(fr.N())
	for dst := uint64(0); dst < N; dst++ {
		for _, src := range []uint64{0, 1} {
			if _, err := fr.Route(src, dst); err == nil {
				t.Fatalf("route %d->%d through a dead switch", src, dst)
			}
		}
		if _, err := fr.Route(2, dst); err != nil {
			t.Fatalf("route 2->%d should survive: %v", dst, err)
		}
	}
	adm, _, err := fr.CountAdmissible()
	if err != nil {
		t.Fatal(err)
	}
	if adm != 0 {
		t.Fatalf("admissible=%d with a dead entry switch, want 0", adm)
	}
}

// A stuck crossbar halves the reachable set of its inputs: the switch
// can still deliver wherever the forced port leads.
func TestFaultyRouterStuckSwitch(t *testing.T) {
	nw := topology.MustBuild(topology.NameOmega, 4)
	intact, err := NewFaultyRouter(nw.LinkPerms, FaultSpec{})
	if err != nil {
		t.Fatal(err)
	}
	spec := FaultSpec{SwitchMode: func(stage, cell int) uint8 {
		if stage == 0 && cell == 0 {
			return SwitchStuck0
		}
		return SwitchOK
	}}
	fr, err := NewFaultyRouter(nw.LinkPerms, spec)
	if err != nil {
		t.Fatal(err)
	}
	N := uint64(fr.N())
	reachable := 0
	for dst := uint64(0); dst < N; dst++ {
		p, err := fr.Route(0, dst)
		if err != nil {
			continue
		}
		reachable++
		if p.Steps[0].OutPort != 0 {
			t.Fatalf("stuck0 switch routed out port %d", p.Steps[0].OutPort)
		}
		// The surviving path must be the intact unique path.
		q, err := intact.Route(0, dst)
		if err != nil {
			t.Fatal(err)
		}
		if !PathsEqual(p, q) {
			t.Fatalf("dst %d: stuck route differs from the intact unique path", dst)
		}
	}
	if reachable != int(N)/2 {
		t.Fatalf("stuck switch reaches %d destinations, want %d", reachable, N/2)
	}
}

// Severing one terminal link unroutes exactly that destination.
func TestFaultyRouterLinkDown(t *testing.T) {
	nw := topology.MustBuild(topology.NameFlip, 3)
	const target = 6
	spec := FaultSpec{LinkDown: func(stage, out int) bool {
		return stage == 2 && out == target
	}}
	fr, err := NewFaultyRouter(nw.LinkPerms, spec)
	if err != nil {
		t.Fatal(err)
	}
	N := uint64(fr.N())
	for src := uint64(0); src < N; src++ {
		for dst := uint64(0); dst < N; dst++ {
			_, err := fr.Route(src, dst)
			if dst == target && err == nil {
				t.Fatalf("route %d->%d over a severed terminal link", src, dst)
			}
			if dst != target && err != nil {
				t.Fatalf("route %d->%d should survive: %v", src, dst, err)
			}
		}
	}
	adm, _, err := fr.CountAdmissible()
	if err != nil {
		t.Fatal(err)
	}
	if adm != 0 {
		t.Fatalf("admissible=%d with a severed terminal, want 0", adm)
	}
}

// A severed inter-stage link removes some paths but leaves every
// (src, dst) pair with an alternative only when the fabric offers one —
// on a Banyan there is none, so exactly the pairs whose unique path
// used that link become unroutable.
func TestFaultyRouterInterStageLinkDown(t *testing.T) {
	nw := topology.MustBuild(topology.NameOmega, 3)
	intact, err := NewFaultyRouter(nw.LinkPerms, FaultSpec{})
	if err != nil {
		t.Fatal(err)
	}
	const stage, out = 1, 3
	fr, err := NewFaultyRouter(nw.LinkPerms, FaultSpec{LinkDown: func(s, o int) bool {
		return s == stage && o == out
	}})
	if err != nil {
		t.Fatal(err)
	}
	N := uint64(fr.N())
	lost := 0
	for src := uint64(0); src < N; src++ {
		for dst := uint64(0); dst < N; dst++ {
			p, ierr := intact.Route(src, dst)
			if ierr != nil {
				t.Fatal(ierr)
			}
			usesLink := p.Steps[stage].Cell<<1|p.Steps[stage].OutPort == out
			_, ferr := fr.Route(src, dst)
			if usesLink && ferr == nil {
				t.Fatalf("pair (%d,%d) routed over the severed link", src, dst)
			}
			if !usesLink && ferr != nil {
				t.Fatalf("pair (%d,%d) should be unaffected: %v", src, dst, ferr)
			}
			if usesLink {
				lost++
			}
		}
	}
	if lost == 0 {
		t.Fatal("no pair used the severed link?")
	}
}
