package route

import (
	"fmt"

	"minequiv/internal/perm"
)

// VerifyAllPairs routes every (src, dst) terminal pair through r and
// checks the paths are valid; for a Banyan network this exercises all
// N^2 unique paths. It returns the number of routed pairs.
func (r *Router) VerifyAllPairs() (int, error) {
	n := uint64(r.N())
	for src := uint64(0); src < n; src++ {
		for dst := uint64(0); dst < n; dst++ {
			if _, err := r.Route(src, dst); err != nil {
				return 0, fmt.Errorf("route: pair (%d,%d): %w", src, dst, err)
			}
		}
	}
	return int(n * n), nil
}

// Conflict describes two inputs colliding on one switch output.
type Conflict struct {
	Stage      int
	Cell       uint64
	Port       uint64
	SrcA, SrcB uint64
}

func (c Conflict) String() string {
	return fmt.Sprintf("stage %d cell %d port %d: inputs %d and %d collide",
		c.Stage, c.Cell, c.Port, c.SrcA, c.SrcB)
}

// PermutationConflicts routes all N inputs simultaneously, input i to
// output pi[i], and reports every switch-output collision. A permutation
// is admissible (realizable in one pass) iff the result is empty. This
// is the classic blocking analysis of banyan networks: they have unique
// paths, so conflicts cannot be routed around.
func (r *Router) PermutationConflicts(pi perm.Perm) ([]Conflict, error) {
	if pi.N() != r.N() {
		return nil, fmt.Errorf("route: permutation on %d symbols, want %d", pi.N(), r.N())
	}
	if err := pi.Validate(); err != nil {
		return nil, err
	}
	var conflicts []Conflict
	// owner[cell<<1|port] = first input using that outlink this stage.
	owner := make([]int64, r.N())
	links := make([]uint64, r.N()) // current link label per input
	for i := range links {
		links[i] = uint64(i)
	}
	for s := 0; s < r.n; s++ {
		for i := range owner {
			owner[i] = -1
		}
		for src := 0; src < r.N(); src++ {
			cell := links[src] >> 1
			d := (pi[src] >> uint(r.tagPos[s])) & 1
			out := cell<<1 | d
			if prev := owner[out]; prev >= 0 {
				conflicts = append(conflicts, Conflict{
					Stage: s, Cell: cell, Port: d,
					SrcA: uint64(prev), SrcB: uint64(src),
				})
			} else {
				owner[out] = int64(src)
			}
			links[src] = out
		}
		if s < r.n-1 {
			for src := range links {
				links[src] = r.thetas[s].Apply(links[src])
			}
		}
	}
	return conflicts, nil
}

// Admissible reports whether pi is realizable without conflicts.
func (r *Router) Admissible(pi perm.Perm) (bool, error) {
	cs, err := r.PermutationConflicts(pi)
	if err != nil {
		return false, err
	}
	return len(cs) == 0, nil
}

// RealizedPermutation computes the terminal permutation produced by an
// explicit switch-setting assignment: settings[s][cell] is 0 for a
// straight switch (port p -> p) and 1 for a crossed one (p -> 1-p). In a
// Banyan network distinct settings realize distinct permutations, and
// every realized permutation is admissible — the converse of conflict-
// freedom, exercised in tests.
func (r *Router) RealizedPermutation(settings [][]uint64) (perm.Perm, error) {
	h := r.N() / 2
	if len(settings) != r.n {
		return nil, fmt.Errorf("route: want %d setting stages, got %d", r.n, len(settings))
	}
	for s := range settings {
		if len(settings[s]) != h {
			return nil, fmt.Errorf("route: stage %d has %d settings, want %d", s, len(settings[s]), h)
		}
	}
	pi := make(perm.Perm, r.N())
	for src := 0; src < r.N(); src++ {
		link := uint64(src)
		for s := 0; s < r.n; s++ {
			cell := link >> 1
			port := link & 1
			out := port ^ (settings[s][cell] & 1)
			link = cell<<1 | out
			if s < r.n-1 {
				link = r.thetas[s].Apply(link)
			}
		}
		pi[src] = link
	}
	if err := pi.Validate(); err != nil {
		return nil, fmt.Errorf("route: settings did not realize a permutation: %w", err)
	}
	return pi, nil
}

// CountAdmissible enumerates all N! permutations (practical only for
// tiny N) and counts the admissible ones. A classical fact this
// reproduces: an n-stage banyan has N/2 * n switches and realizes
// exactly 2^(number of switches) of the N! permutations.
func (r *Router) CountAdmissible() (admissible, total uint64, err error) {
	n := r.N()
	if n > 8 {
		return 0, 0, fmt.Errorf("route: CountAdmissible limited to N <= 8, got %d", n)
	}
	p := perm.Identity(n)
	var rec func(k int) error
	rec = func(k int) error {
		if k == n {
			total++
			ok, aerr := r.Admissible(p)
			if aerr != nil {
				return aerr
			}
			if ok {
				admissible++
			}
			return nil
		}
		for i := k; i < n; i++ {
			p[k], p[i] = p[i], p[k]
			if err := rec(k + 1); err != nil {
				return err
			}
			p[k], p[i] = p[i], p[k]
		}
		return nil
	}
	if err := rec(0); err != nil {
		return 0, 0, err
	}
	return admissible, total, nil
}
