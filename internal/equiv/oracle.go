package equiv

import (
	"minequiv/internal/midigraph"
	"minequiv/internal/perm"
)

// OracleMaxStages bounds the instance size accepted by FindIsomorphism;
// the search is exponential in the worst case and exists to provide
// ground truth for small instances, not to scale.
const OracleMaxStages = 6

// FindIsomorphism searches exhaustively (backtracking with forward arc
// consistency) for a stage-respecting isomorphism from g onto h. It
// returns the isomorphism and true when one exists. Both graphs must
// have the same (small) stage count.
//
// Node assignment order is stage-major; a stage-s node's candidates are
// restricted by its already-assigned parents' images, which keeps the
// branching factor near 2 after the first stage.
func FindIsomorphism(g, h *midigraph.Graph) (Isomorphism, bool) {
	if g.Stages() != h.Stages() || g.Stages() > OracleMaxStages {
		return Isomorphism{}, false
	}
	n := g.Stages()
	hh := g.CellsPerStage()

	// Quick necessary invariants: sorted degree-pattern of parallel arcs
	// per stage.
	for s := 0; s < n-1; s++ {
		gp, hp := 0, 0
		for x := 0; x < hh; x++ {
			gf, gg := g.Children(s, uint32(x))
			if gf == gg {
				gp++
			}
			hf, hg := h.Children(s, uint32(x))
			if hf == hg {
				hp++
			}
		}
		if gp != hp {
			return Isomorphism{}, false
		}
	}

	// Precompute parent tables of g for constraint propagation.
	gParents := make([][][2]uint32, n)
	hParents := make([][][2]uint32, n)
	for s := 1; s < n; s++ {
		gParents[s] = g.ParentTable(s)
		hParents[s] = h.ParentTable(s)
	}

	const unset = ^uint32(0)
	phi := make([][]uint32, n) // phi[s][x] image or unset
	used := make([][]bool, n)  // used[s][y] image taken
	for s := 0; s < n; s++ {
		phi[s] = make([]uint32, hh)
		used[s] = make([]bool, hh)
		for x := range phi[s] {
			phi[s][x] = unset
		}
	}

	// candidatesFor lists the possible images of node (s, x) given the
	// current partial assignment.
	candidatesFor := func(s int, x uint32) []uint32 {
		if s == 0 {
			out := make([]uint32, 0, hh)
			for y := 0; y < hh; y++ {
				if !used[0][y] {
					out = append(out, uint32(y))
				}
			}
			return out
		}
		// Parents of x in g are already assigned (stage-major order).
		// The image must receive, from each mapped parent, exactly the
		// arc multiplicity that x receives from that parent; since total
		// indegree is 2 on both sides, this makes x's in-arcs fully
		// consistent, so a complete assignment is always a genuine
		// isomorphism.
		mult := func(gr *midigraph.Graph, st int, from, to uint32) int {
			f, c := gr.Children(st, from)
			n := 0
			if f == to {
				n++
			}
			if c == to {
				n++
			}
			return n
		}
		p := gParents[s][x]
		img0 := phi[s-1][p[0]]
		img1 := phi[s-1][p[1]]
		hf, hg := h.Children(s-1, img0)
		var out []uint32
		for _, cand := range []uint32{hf, hg} {
			if len(out) == 1 && out[0] == cand {
				continue // parallel arc: same candidate twice
			}
			if used[s][cand] {
				continue
			}
			if mult(g, s-1, p[0], x) != mult(h, s-1, img0, cand) {
				continue
			}
			if mult(g, s-1, p[1], x) != mult(h, s-1, img1, cand) {
				continue
			}
			out = append(out, cand)
		}
		return out
	}

	var rec func(idx int) bool
	rec = func(idx int) bool {
		if idx == n*hh {
			return true
		}
		s := idx / hh
		x := uint32(idx % hh)
		for _, cand := range candidatesFor(s, x) {
			phi[s][x] = cand
			used[s][cand] = true
			if rec(idx + 1) {
				return true
			}
			phi[s][x] = unset
			used[s][cand] = false
		}
		return false
	}

	if !rec(0) {
		return Isomorphism{}, false
	}
	maps := make([]perm.Perm, n)
	for s := 0; s < n; s++ {
		maps[s] = make(perm.Perm, hh)
		for x := 0; x < hh; x++ {
			maps[s][x] = uint64(phi[s][x])
		}
	}
	iso := Isomorphism{Maps: maps}
	if err := iso.Verify(g, h); err != nil {
		// The search invariantly produces arc-consistent assignments; a
		// failure here would be a bug, surfaced loudly in tests.
		return Isomorphism{}, false
	}
	return iso, true
}
