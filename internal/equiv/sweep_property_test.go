package equiv

import (
	"testing"

	"minequiv/internal/engine"
	"minequiv/internal/midigraph"
	"minequiv/internal/randnet"
)

// TestSweepMatchesNaiveOnRandomGraphs is the property test the sweep
// rewrite is gated on: on >= 100 random graphs — Banyan
// independent-connection networks (the paper's objects), arbitrary
// valid MI-digraphs (usually non-Banyan, often with parallel arcs), and
// tail-cycle counterexamples — every per-window component count from
// the sweep Analyzer must equal the naive per-window union-find's.
func TestSweepMatchesNaiveOnRandomGraphs(t *testing.T) {
	rng := engine.NewRand(113, 0)
	a := midigraph.NewAnalyzer()
	checked := 0
	check := func(g *midigraph.Graph, kind string) {
		t.Helper()
		n := g.Stages()
		sweep := a.CheckAllWindows(g, nil)
		naive := g.CheckAllWindowsNaive()
		if len(sweep) != n*(n+1)/2 || len(naive) != len(sweep) {
			t.Fatalf("%s n=%d: window table sizes %d/%d", kind, n, len(sweep), len(naive))
		}
		for k := range sweep {
			if sweep[k] != naive[k] {
				t.Fatalf("%s n=%d: window %d: sweep %+v, naive %+v", kind, n, k, sweep[k], naive[k])
			}
		}
		// The families the characterization actually consumes.
		for idx, w := range a.CheckPrefix(g, nil) {
			if want := g.ComponentCountNaive(0, idx); w.Got != want {
				t.Fatalf("%s n=%d: prefix %d: sweep=%d naive=%d", kind, n, idx, w.Got, want)
			}
		}
		for idx, w := range a.CheckSuffix(g, nil) {
			if want := g.ComponentCountNaive(idx, n-1); w.Got != want {
				t.Fatalf("%s n=%d: suffix %d: sweep=%d naive=%d", kind, n, idx, w.Got, want)
			}
		}
		checked++
	}

	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.IntN(5)
		g, _, err := randnet.IndependentBanyan(rng, n, 500)
		if err != nil {
			t.Fatal(err)
		}
		check(g, "independent-banyan")
	}
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.IntN(6)
		check(randnet.RandomValidGraph(rng, n), "random-valid")
	}
	for n := 3; n <= 8; n++ {
		g, err := randnet.TailCycleBanyan(n)
		if err != nil {
			t.Fatal(err)
		}
		check(g, "tail-cycle")
		scrambled, _ := randnet.Scramble(rng, g)
		check(scrambled, "tail-cycle-scrambled")
	}
	if checked < 100 {
		t.Fatalf("property test covered %d graphs, want >= 100", checked)
	}
}
