package equiv

import (
	"math/rand/v2"
	"testing"

	"minequiv/internal/randnet"
	"minequiv/internal/topology"
)

// TestBaselineAutomorphismCount enumerates the full automorphism group of
// the Baseline network and checks it against the closed form
// 2^(2*(2^(n-1)-1)) derived from the window-split analysis. This is also
// the exhaustive proof that every split choice made by the hierarchical
// labeling corresponds to a distinct automorphism.
func TestBaselineAutomorphismCount(t *testing.T) {
	for n := 2; n <= 4; n++ {
		g := topology.Baseline(n)
		got, err := CountIsomorphisms(g, g)
		if err != nil {
			t.Fatal(err)
		}
		want := BaselineAutomorphismFormula(n)
		if got != want {
			t.Fatalf("n=%d: |Aut| = %d, formula says %d", n, got, want)
		}
	}
}

func TestIsomorphismCountInvariant(t *testing.T) {
	// The number of isomorphisms g -> h equals |Aut| for any isomorphic
	// pair, so scrambles and other classical networks give the same count.
	rng := rand.New(rand.NewPCG(1, 0))
	n := 3
	want := BaselineAutomorphismFormula(n)
	base := topology.Baseline(n)
	for _, name := range topology.Names() {
		g := topology.MustBuild(name, n).Graph
		got, err := CountIsomorphisms(g, base)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("%s: %d isomorphisms onto baseline, want %d", name, got, want)
		}
	}
	sg, _ := randnet.Scramble(rng, base)
	got, err := CountIsomorphisms(sg, base)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("scramble: %d isomorphisms, want %d", got, want)
	}
}

func TestCountRejects(t *testing.T) {
	// Non-isomorphic graphs count zero.
	n := 4
	tail, err := randnet.TailCycleBanyan(n)
	if err != nil {
		t.Fatal(err)
	}
	got, err := CountIsomorphisms(tail, topology.Baseline(n))
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Fatalf("counterexample has %d isomorphisms onto baseline", got)
	}
	// Size mismatch counts zero without error.
	got, err = CountIsomorphisms(topology.Baseline(3), topology.Baseline(4))
	if err != nil || got != 0 {
		t.Fatalf("size mismatch: %d, %v", got, err)
	}
	// Oversized instances refused.
	big := topology.Baseline(OracleMaxStages + 1)
	if _, err := CountIsomorphisms(big, big); err == nil {
		t.Fatal("oversized count accepted")
	}
}

func TestTailCycleAutomorphismsExist(t *testing.T) {
	// The tail-cycle graph has automorphisms of its own (rotating the
	// cycle is not one — the prefix pins it — but there is at least the
	// identity). Count must be >= 1 and finite.
	tail, err := randnet.TailCycleBanyan(3)
	if err != nil {
		t.Fatal(err)
	}
	got, err := CountIsomorphisms(tail, tail)
	if err != nil {
		t.Fatal(err)
	}
	if got == 0 {
		t.Fatal("graph has no automorphisms at all (identity missing?)")
	}
}

func TestBaselineAutomorphismFormulaPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("overflow did not panic")
		}
	}()
	BaselineAutomorphismFormula(7) // exponent 126
}

func TestCanonicalForm(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 0))
	n := 5
	base := topology.Baseline(n)
	for _, name := range topology.Names() {
		g := topology.MustBuild(name, n).Graph
		cf, err := CanonicalForm(g)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !cf.EqualUnordered(base) {
			t.Fatalf("%s: canonical form differs from baseline", name)
		}
		// Scrambles canonicalize to the same graph.
		sg, _ := randnet.Scramble(rng, g)
		cf2, err := CanonicalForm(sg)
		if err != nil {
			t.Fatal(err)
		}
		if !cf2.EqualUnordered(cf) {
			t.Fatalf("%s: scrambled canonical form differs", name)
		}
	}
	// Non-equivalent graphs are rejected.
	tail, _ := randnet.TailCycleBanyan(n)
	if _, err := CanonicalForm(tail); err == nil {
		t.Fatal("canonical form of counterexample accepted")
	}
}

func BenchmarkCountAutomorphisms(b *testing.B) {
	g := topology.Baseline(3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := CountIsomorphisms(g, g); err != nil {
			b.Fatal(err)
		}
	}
}
