// Package equiv is the core of the reproduction: deciding whether an
// MI-digraph is topologically equivalent to the Baseline network.
//
// It implements the paper's characterization (Banyan + P(1,*) + P(*,n)
// implies isomorphic to Baseline), a constructive isomorphism built from
// the prefix/suffix window component hierarchies, an exact backtracking
// isomorphism oracle for ground truth on small instances, and helpers to
// compare two arbitrary networks.
package equiv

import (
	"fmt"

	"minequiv/internal/midigraph"
	"minequiv/internal/perm"
)

// Isomorphism is a stage-respecting node bijection between two
// MI-digraphs with the same stage count: Maps[s][x] is the image of node
// (s, x).
type Isomorphism struct {
	Maps []perm.Perm
}

// Verify checks that iso is a genuine isomorphism from g onto h: every
// per-stage map is a bijection and every arc of g maps to an arc of h
// with the same multiplicity (and the arc counts match, so this is also
// surjective on arcs).
func (iso Isomorphism) Verify(g, h *midigraph.Graph) error {
	if g.Stages() != h.Stages() {
		return fmt.Errorf("equiv: stage counts differ (%d vs %d)", g.Stages(), h.Stages())
	}
	n := g.Stages()
	if len(iso.Maps) != n {
		return fmt.Errorf("equiv: isomorphism has %d stage maps, want %d", len(iso.Maps), n)
	}
	hh := g.CellsPerStage()
	for s, m := range iso.Maps {
		if m.N() != hh {
			return fmt.Errorf("equiv: stage %d map on %d symbols, want %d", s, m.N(), hh)
		}
		if err := m.Validate(); err != nil {
			return fmt.Errorf("equiv: stage %d map: %w", s, err)
		}
	}
	for s := 0; s < n-1; s++ {
		for x := 0; x < hh; x++ {
			gf, gg := g.Children(s, uint32(x))
			hf, hg := h.Children(s, uint32(iso.Maps[s][x]))
			// The unordered pair {phi(gf), phi(gg)} must equal {hf, hg}
			// as a multiset.
			a, b := uint32(iso.Maps[s+1][gf]), uint32(iso.Maps[s+1][gg])
			if !(a == hf && b == hg || a == hg && b == hf) {
				return fmt.Errorf("equiv: arc mismatch at stage %d node %d: maps to (%d,%d), target has (%d,%d)",
					s, x, a, b, hf, hg)
			}
		}
	}
	return nil
}

// Inverse returns the inverse isomorphism.
func (iso Isomorphism) Inverse() Isomorphism {
	maps := make([]perm.Perm, len(iso.Maps))
	for s, m := range iso.Maps {
		maps[s] = m.Inverse()
	}
	return Isomorphism{Maps: maps}
}

// Compose returns "other after iso": stage maps other[s] ∘ iso[s],
// i.e. an isomorphism g -> k when iso: g -> h and other: h -> k.
func (iso Isomorphism) Compose(other Isomorphism) Isomorphism {
	maps := make([]perm.Perm, len(iso.Maps))
	for s, m := range iso.Maps {
		maps[s] = m.Compose(other.Maps[s])
	}
	return Isomorphism{Maps: maps}
}

// Identity returns the identity isomorphism for an n-stage graph with h
// cells per stage.
func Identity(n, h int) Isomorphism {
	maps := make([]perm.Perm, n)
	for s := range maps {
		maps[s] = perm.Identity(h)
	}
	return Isomorphism{Maps: maps}
}
