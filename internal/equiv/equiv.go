package equiv

import (
	"fmt"
	"strings"

	"minequiv/internal/midigraph"
)

// Report is the outcome of checking the paper's characterization on one
// MI-digraph.
type Report struct {
	Stages          int
	Banyan          bool
	BanyanViolation *midigraph.BanyanViolation
	Prefix          []midigraph.WindowResult // the P(1,*) family
	Suffix          []midigraph.WindowResult // the P(*,n) family
}

// Equivalent reports whether the graph satisfies the characterization
// and hence (by the theorem of [12] restated in §2) is isomorphic to the
// Baseline MI-digraph.
func (r Report) Equivalent() bool {
	return r.Banyan && midigraph.AllOK(r.Prefix) && midigraph.AllOK(r.Suffix)
}

// String renders a human-readable summary with every violated condition.
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "characterization check (n=%d): ", r.Stages)
	if r.Equivalent() {
		b.WriteString("baseline-equivalent\n")
	} else {
		b.WriteString("NOT baseline-equivalent\n")
	}
	if !r.Banyan {
		fmt.Fprintf(&b, "  banyan: violated (%v)\n", r.BanyanViolation)
	} else {
		b.WriteString("  banyan: ok\n")
	}
	for _, w := range midigraph.Violations(r.Prefix) {
		fmt.Fprintf(&b, "  %v\n", w)
	}
	for _, w := range midigraph.Violations(r.Suffix) {
		fmt.Fprintf(&b, "  %v\n", w)
	}
	return b.String()
}

// Check evaluates the hypotheses of the characterization theorem:
// the Banyan property and the window families P(1,*) and P(*,n).
func Check(g *midigraph.Graph) Report {
	banyan, violation := g.IsBanyan()
	return Report{
		Stages:          g.Stages(),
		Banyan:          banyan,
		BanyanViolation: violation,
		Prefix:          g.CheckPrefix(),
		Suffix:          g.CheckSuffix(),
	}
}

// IsBaselineEquivalent is the headline predicate of the paper.
func IsBaselineEquivalent(g *midigraph.Graph) bool {
	return Check(g).Equivalent()
}

// AreEquivalent decides topological equivalence of two same-size
// MI-digraphs. Fast path: if both satisfy the characterization they are
// equivalent (both isomorphic to Baseline); if exactly one does, they
// are not. When neither satisfies it, the question falls outside the
// paper's theory and we fall back to the exact oracle, which is only
// practical for small n; beyond OracleMaxStages an error is returned.
func AreEquivalent(g, h *midigraph.Graph) (bool, error) {
	if g.Stages() != h.Stages() {
		return false, nil
	}
	ge, he := IsBaselineEquivalent(g), IsBaselineEquivalent(h)
	switch {
	case ge && he:
		return true, nil
	case ge != he:
		return false, nil
	}
	if g.Stages() > OracleMaxStages {
		return false, oracleBoundError(g.Stages())
	}
	_, found := FindIsomorphism(g, h)
	return found, nil
}

// oracleBoundError is the shared failure for pairs the theory cannot
// decide and the exact oracle cannot reach.
func oracleBoundError(n int) error {
	return fmt.Errorf("equiv: neither graph is baseline-equivalent and n=%d exceeds the oracle bound %d",
		n, OracleMaxStages)
}
