package equiv

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"minequiv/internal/randnet"
	"minequiv/internal/topology"
)

// Property (testing/quick): for random seeds, a scrambled classical
// network still canonicalizes onto the Baseline and the composed
// isomorphism verifies. This exercises the whole positive pipeline.
func TestQuickScrambleCanonicalize(t *testing.T) {
	names := topology.Names()
	f := func(seed uint64, nRaw, nameRaw uint8) bool {
		n := int(nRaw%5) + 2 // 2..6
		rng := rand.New(rand.NewPCG(seed, 0))
		g := topology.MustBuild(names[int(nameRaw)%len(names)], n).Graph
		sg, _ := randnet.Scramble(rng, g)
		iso, err := IsoToBaseline(sg)
		if err != nil {
			return false
		}
		return iso.Verify(sg, topology.Baseline(n)) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property (testing/quick): IsoBetween is symmetric — the inverse of the
// returned isomorphism verifies in the opposite direction.
func TestQuickIsoBetweenSymmetric(t *testing.T) {
	names := topology.Names()
	f := func(seed uint64, aRaw, bRaw uint8) bool {
		n := 4
		a := topology.MustBuild(names[int(aRaw)%len(names)], n).Graph
		b := topology.MustBuild(names[int(bRaw)%len(names)], n).Graph
		iso, err := IsoBetween(a, b)
		if err != nil {
			return false
		}
		return iso.Inverse().Verify(b, a) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: Check never panics and is consistent on arbitrary valid
// graphs (the predicate equals the conjunction of its parts).
func TestQuickCheckConsistency(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%5) + 2
		rng := rand.New(rand.NewPCG(seed, 0))
		g := randnet.RandomValidGraph(rng, n)
		r := Check(g)
		banyan, _ := g.IsBanyan()
		if r.Banyan != banyan {
			return false
		}
		want := banyan
		for _, wr := range r.Prefix {
			if !wr.OK() {
				want = false
			}
		}
		for _, wr := range r.Suffix {
			if !wr.OK() {
				want = false
			}
		}
		return r.Equivalent() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: random valid graphs that happen to pass the characterization
// must admit a verified isomorphism (the theorem, fuzz-style); those
// that do not must be rejected by IsoToBaseline.
func TestQuickTheoremOnRandomGraphs(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%4) + 2
		rng := rand.New(rand.NewPCG(seed, 0))
		g := randnet.RandomValidGraph(rng, n)
		iso, err := IsoToBaseline(g)
		if IsBaselineEquivalent(g) {
			return err == nil && iso.Verify(g, topology.Baseline(n)) == nil
		}
		return err != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
