package equiv

import (
	"math/rand/v2"
	"strings"
	"testing"

	"minequiv/internal/midigraph"
	"minequiv/internal/perm"
	"minequiv/internal/randnet"
	"minequiv/internal/topology"
)

func TestBaselineEquivalentToItself(t *testing.T) {
	for n := 2; n <= 9; n++ {
		g := topology.Baseline(n)
		r := Check(g)
		if !r.Equivalent() {
			t.Fatalf("n=%d: baseline fails its own characterization:\n%v", n, r)
		}
		iso, err := IsoToBaseline(g)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if err := iso.Verify(g, topology.Baseline(n)); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

func TestSixClassicalNetworksEquivalent(t *testing.T) {
	// The paper's main corollary (and Wu & Feng's theorem): all six
	// classical networks are baseline-equivalent. We verify with
	// explicit constructed isomorphisms, not just the predicate.
	for n := 2; n <= 8; n++ {
		nets, err := topology.BuildAll(n)
		if err != nil {
			t.Fatal(err)
		}
		base := topology.Baseline(n)
		for _, nw := range nets {
			if !IsBaselineEquivalent(nw.Graph) {
				t.Errorf("n=%d %s: characterization fails", n, nw.Name)
				continue
			}
			iso, err := IsoToBaseline(nw.Graph)
			if err != nil {
				t.Errorf("n=%d %s: no isomorphism: %v", n, nw.Name, err)
				continue
			}
			if err := iso.Verify(nw.Graph, base); err != nil {
				t.Errorf("n=%d %s: isomorphism invalid: %v", n, nw.Name, err)
			}
		}
		// And pairwise.
		for i := range nets {
			for j := i + 1; j < len(nets); j++ {
				iso, err := IsoBetween(nets[i].Graph, nets[j].Graph)
				if err != nil {
					t.Errorf("n=%d %s~%s: %v", n, nets[i].Name, nets[j].Name, err)
					continue
				}
				if err := iso.Verify(nets[i].Graph, nets[j].Graph); err != nil {
					t.Errorf("n=%d %s~%s: %v", n, nets[i].Name, nets[j].Name, err)
				}
			}
		}
	}
}

func TestTheorem3OnRandomIndependentBanyans(t *testing.T) {
	// Theorem 3: Banyan + independent connections => isomorphic to
	// Baseline. Construct the isomorphism explicitly for random samples.
	rng := rand.New(rand.NewPCG(1, 0))
	for n := 2; n <= 8; n++ {
		for trial := 0; trial < 4; trial++ {
			g, _, err := randnet.IndependentBanyan(rng, n, 1000)
			if err != nil {
				t.Fatalf("n=%d: %v", n, err)
			}
			iso, err := IsoToBaseline(g)
			if err != nil {
				t.Fatalf("n=%d: Theorem 3 violated: %v", n, err)
			}
			if err := iso.Verify(g, topology.Baseline(n)); err != nil {
				t.Fatalf("n=%d: bad isomorphism: %v", n, err)
			}
		}
	}
}

func TestScrambledNetworksStillEquivalent(t *testing.T) {
	// Isomorphism is invariant under arbitrary per-stage relabeling.
	rng := rand.New(rand.NewPCG(2, 0))
	for n := 2; n <= 8; n++ {
		g := topology.MustBuild(topology.NameOmega, n).Graph
		for trial := 0; trial < 3; trial++ {
			sg, _ := randnet.Scramble(rng, g)
			iso, err := IsoToBaseline(sg)
			if err != nil {
				t.Fatalf("n=%d: scrambled omega not equivalent: %v", n, err)
			}
			if err := iso.Verify(sg, topology.Baseline(n)); err != nil {
				t.Fatalf("n=%d: %v", n, err)
			}
		}
	}
}

func TestLabelingAgreesWithOracle(t *testing.T) {
	// For small n, the constructive labeling and the exhaustive oracle
	// must agree on both positive and negative instances.
	rng := rand.New(rand.NewPCG(3, 0))
	for n := 2; n <= 4; n++ {
		base := topology.Baseline(n)
		// Positive: scrambled classical networks.
		for _, name := range topology.Names() {
			g := topology.MustBuild(name, n).Graph
			sg, _ := randnet.Scramble(rng, g)
			_, labelOK := isoErrNil(IsoToBaseline(sg))
			_, oracleOK := FindIsomorphism(sg, base)
			if labelOK != oracleOK || !labelOK {
				t.Errorf("n=%d %s: labeling=%v oracle=%v (want both true)", n, name, labelOK, oracleOK)
			}
		}
		// Negative: tail-cycle counterexample.
		if n >= 3 {
			g, err := randnet.TailCycleBanyan(n)
			if err != nil {
				t.Fatal(err)
			}
			if IsBaselineEquivalent(g) {
				t.Errorf("n=%d: counterexample passes characterization", n)
			}
			if _, ok := FindIsomorphism(g, base); ok {
				t.Errorf("n=%d: oracle found isomorphism for counterexample", n)
			}
		}
	}
}

func isoErrNil(iso Isomorphism, err error) (Isomorphism, bool) { return iso, err == nil }

func TestCounterexamplesRejectedWithDiagnosis(t *testing.T) {
	for n := 3; n <= 7; n++ {
		g, err := randnet.TailCycleBanyan(n)
		if err != nil {
			t.Fatal(err)
		}
		r := Check(g)
		if r.Equivalent() {
			t.Fatalf("n=%d: tail cycle accepted", n)
		}
		if !r.Banyan {
			t.Fatalf("n=%d: tail cycle should be Banyan", n)
		}
		if len(midigraph.Violations(r.Suffix)) == 0 {
			t.Fatalf("n=%d: no suffix violations reported", n)
		}
		if !strings.Contains(r.String(), "NOT baseline-equivalent") {
			t.Errorf("report text missing verdict: %q", r.String())
		}
		_, err = IsoToBaseline(g)
		if err == nil {
			t.Fatalf("n=%d: IsoToBaseline accepted counterexample", n)
		}
		var neErr *NotEquivalentError
		if !asNotEquivalent(err, &neErr) {
			t.Fatalf("n=%d: error type %T, want *NotEquivalentError", n, err)
		}
		if neErr.Report.Equivalent() {
			t.Fatal("error carries an equivalent report")
		}
	}
}

func asNotEquivalent(err error, target **NotEquivalentError) bool {
	ne, ok := err.(*NotEquivalentError)
	if ok {
		*target = ne
	}
	return ok
}

func TestNonBanyanRejected(t *testing.T) {
	for n := 3; n <= 6; n++ {
		g, err := randnet.NonBanyan(n)
		if err != nil {
			t.Fatal(err)
		}
		r := Check(g)
		if r.Equivalent() || r.Banyan {
			t.Fatalf("n=%d: non-banyan graph accepted", n)
		}
		if r.BanyanViolation == nil {
			t.Fatalf("n=%d: missing violation detail", n)
		}
	}
}

func TestAreEquivalent(t *testing.T) {
	n := 4
	omega := topology.MustBuild(topology.NameOmega, n).Graph
	flip := topology.MustBuild(topology.NameFlip, n).Graph
	tail, _ := randnet.TailCycleBanyan(n)
	head, _ := randnet.HeadCycleBanyan(n)

	if ok, err := AreEquivalent(omega, flip); err != nil || !ok {
		t.Errorf("omega~flip = %v,%v", ok, err)
	}
	if ok, err := AreEquivalent(omega, tail); err != nil || ok {
		t.Errorf("omega~tail = %v,%v", ok, err)
	}
	// tail vs head: both non-equivalent to baseline; oracle decides.
	// They are reverses of each other; for n=4 the tail cycle violates
	// P(3,4) while head violates P(1,2) — they are NOT isomorphic
	// (stage-respecting isomorphisms preserve window properties).
	if ok, err := AreEquivalent(tail, head); err != nil || ok {
		t.Errorf("tail~head = %v,%v (want false)", ok, err)
	}
	// tail vs itself (scrambled): isomorphic, decided by oracle.
	sg, _ := randnet.Scramble(rand.New(rand.NewPCG(4, 0)), tail)
	if ok, err := AreEquivalent(tail, sg); err != nil || !ok {
		t.Errorf("tail~scrambled(tail) = %v,%v (want true)", ok, err)
	}
	// Mismatched sizes: not equivalent, no error.
	if ok, err := AreEquivalent(omega, topology.Baseline(5)); err != nil || ok {
		t.Errorf("size mismatch = %v,%v", ok, err)
	}
	// Oversized undecidable case errors out.
	bigTail, _ := randnet.TailCycleBanyan(OracleMaxStages + 1)
	bigHead, _ := randnet.HeadCycleBanyan(OracleMaxStages + 1)
	if _, err := AreEquivalent(bigTail, bigHead); err == nil {
		t.Error("oversized oracle case should error")
	}
}

func TestOracleFindsAutomorphismsAndRejects(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 0))
	for n := 2; n <= 4; n++ {
		g := topology.Baseline(n)
		// Identity case.
		iso, ok := FindIsomorphism(g, g)
		if !ok {
			t.Fatalf("n=%d: no automorphism found", n)
		}
		if err := iso.Verify(g, g); err != nil {
			t.Fatal(err)
		}
		// Scramble case.
		sg, _ := randnet.Scramble(rng, g)
		if _, ok := FindIsomorphism(g, sg); !ok {
			t.Fatalf("n=%d: scramble not matched", n)
		}
		// Different graphs rejected.
		if n >= 3 {
			tail, _ := randnet.TailCycleBanyan(n)
			if _, ok := FindIsomorphism(g, tail); ok {
				t.Fatalf("n=%d: oracle matched baseline to counterexample", n)
			}
		}
	}
	// Size mismatch.
	if _, ok := FindIsomorphism(topology.Baseline(3), topology.Baseline(4)); ok {
		t.Error("size mismatch matched")
	}
	// Oversized instances refused.
	big := topology.Baseline(OracleMaxStages + 1)
	if _, ok := FindIsomorphism(big, big); ok {
		t.Error("oversized instance accepted")
	}
}

func TestIsomorphismAlgebra(t *testing.T) {
	rng := rand.New(rand.NewPCG(6, 0))
	n := 5
	g := topology.MustBuild(topology.NameIndirectCube, n).Graph
	sg, _ := randnet.Scramble(rng, g)
	isoG, err := IsoToBaseline(g)
	if err != nil {
		t.Fatal(err)
	}
	isoS, err := IsoToBaseline(sg)
	if err != nil {
		t.Fatal(err)
	}
	// g -> baseline -> sg.
	cross := isoG.Compose(isoS.Inverse())
	if err := cross.Verify(g, sg); err != nil {
		t.Fatalf("composed isomorphism invalid: %v", err)
	}
	// Inverse round trip.
	back := cross.Compose(cross.Inverse())
	id := Identity(n, g.CellsPerStage())
	for s := range back.Maps {
		if !back.Maps[s].Equal(id.Maps[s]) {
			t.Fatal("iso ∘ iso^-1 != identity")
		}
	}
}

func TestVerifyCatchesBadMaps(t *testing.T) {
	n := 3
	g := topology.Baseline(n)
	iso, err := IsoToBaseline(g)
	if err != nil {
		t.Fatal(err)
	}
	base := topology.Baseline(n)
	// Corrupt one stage map by swapping two entries whose images have
	// different children (buddies 0/1 share children, so swap 0 and 2).
	bad := Isomorphism{Maps: make([]perm.Perm, len(iso.Maps))}
	for s := range iso.Maps {
		bad.Maps[s] = iso.Maps[s].Clone()
	}
	bad.Maps[0][0], bad.Maps[0][2] = bad.Maps[0][2], bad.Maps[0][0]
	if err := bad.Verify(g, base); err == nil {
		t.Error("corrupted isomorphism verified")
	}
	// Wrong shapes.
	short := Isomorphism{Maps: iso.Maps[:2]}
	if err := short.Verify(g, base); err == nil {
		t.Error("short map list verified")
	}
	if err := iso.Verify(g, topology.Baseline(4)); err == nil {
		t.Error("size-mismatched verify passed")
	}
	// Non-bijection map.
	nb := Isomorphism{Maps: make([]perm.Perm, len(iso.Maps))}
	for s := range iso.Maps {
		nb.Maps[s] = iso.Maps[s].Clone()
	}
	nb.Maps[1][0] = nb.Maps[1][1]
	if err := nb.Verify(g, base); err == nil {
		t.Error("non-bijective map verified")
	}
}

func TestReportStages(t *testing.T) {
	r := Check(topology.Baseline(4))
	if r.Stages != 4 {
		t.Errorf("Stages = %d", r.Stages)
	}
	if len(r.Prefix) != 4 || len(r.Suffix) != 4 {
		t.Errorf("family lengths %d/%d", len(r.Prefix), len(r.Suffix))
	}
}

func BenchmarkCheckCharacterization(b *testing.B) {
	g := topology.MustBuild(topology.NameOmega, 10).Graph
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !Check(g).Equivalent() {
			b.Fatal("omega rejected")
		}
	}
}

func BenchmarkIsoToBaseline(b *testing.B) {
	g := topology.MustBuild(topology.NameOmega, 10).Graph
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := IsoToBaseline(g); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOracle(b *testing.B) {
	g := topology.Baseline(4)
	sg, _ := randnet.Scramble(rand.New(rand.NewPCG(7, 0)), g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := FindIsomorphism(g, sg); !ok {
			b.Fatal("not found")
		}
	}
}

func TestNotEquivalentErrorText(t *testing.T) {
	tail, err := randnet.TailCycleBanyan(4)
	if err != nil {
		t.Fatal(err)
	}
	_, err = IsoToBaseline(tail)
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), "not baseline-equivalent") ||
		!strings.Contains(err.Error(), "VIOLATED") {
		t.Errorf("error text uninformative: %q", err.Error())
	}
}

func TestIsoBetweenErrors(t *testing.T) {
	// Size mismatch.
	if _, err := IsoBetween(topology.Baseline(3), topology.Baseline(4)); err == nil {
		t.Error("size mismatch accepted")
	}
	// Non-equivalent operand.
	tail, _ := randnet.TailCycleBanyan(4)
	if _, err := IsoBetween(topology.Baseline(4), tail); err == nil {
		t.Error("non-equivalent second operand accepted")
	}
	if _, err := IsoBetween(tail, topology.Baseline(4)); err == nil {
		t.Error("non-equivalent first operand accepted")
	}
}
