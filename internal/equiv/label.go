package equiv

import (
	"fmt"

	"minequiv/internal/midigraph"
)

// NotEquivalentError reports a failed characterization check, carrying
// the full report for diagnosis.
type NotEquivalentError struct {
	Report Report
}

func (e *NotEquivalentError) Error() string {
	return "equiv: graph is not baseline-equivalent:\n" + e.Report.String()
}

// IsoToBaseline checks the characterization and, when it holds, returns
// an explicit isomorphism from g onto topology.Baseline(n).
//
// The construction mirrors how the Baseline's own labels encode its
// window components (DESIGN.md §5.4):
//
//   - the SUFFIX windows (stages b..n-1) form a binary refinement
//     hierarchy whose splits reveal, for every node of stages > b, the
//     label bit m-1-b (top field);
//   - the PREFIX windows (stages 0..e) form the complementary hierarchy
//     whose splits reveal, for every node of stage s < e, the label bit
//     e-1-s (low field).
//
// Each split makes an arbitrary 0/1 side choice; in the Baseline every
// such choice corresponds to an automorphism, so any choice yields a
// valid isomorphism. The result is verified before being returned; if
// verification fails (never observed on graphs passing the check, and
// believed impossible) the exact oracle is consulted for small n.
//
// The work runs on a pooled IsoBuilder, so in steady state the only
// allocations are the returned Isomorphism's stage maps; callers with a
// hot loop can hold their own builder instead.
func IsoToBaseline(g *midigraph.Graph) (Isomorphism, error) {
	b := isoBuilderPool.Get().(*IsoBuilder)
	iso, err := b.IsoToBaseline(g)
	isoBuilderPool.Put(b)
	return iso, err
}

// splitTable records, per parent component id, its (at most two)
// distinct child component ids in first-seen scan order: side 0 is
// zero[p], side 1 is one[p], -1 means unseen. Flat dense tables indexed
// by the parent id replace the old map[pairKey]int — the ids are dense
// by construction, so the table is direct-addressed.
type splitTable struct{ zero, one []int32 }

// fill computes the split table in place (st.zero/st.one already sized
// to the parent window's component count), requiring every parent
// component that meets the shared stages to split into exactly two
// child components. parentIDs and childIDs cover the same stages in the
// same order.
func (st *splitTable) fill(parentIDs, childIDs [][]int32) error {
	if len(parentIDs) != len(childIDs) {
		return fmt.Errorf("equiv: stage slices differ (%d vs %d)", len(parentIDs), len(childIDs))
	}
	for p := range st.zero {
		st.zero[p], st.one[p] = -1, -1
	}
	for t := range parentIDs {
		for x := range parentIDs[t] {
			p, c := parentIDs[t][x], childIDs[t][x]
			switch {
			case st.zero[p] < 0:
				st.zero[p] = c
			case st.zero[p] == c || st.one[p] == c:
			case st.one[p] < 0:
				st.one[p] = c
			default:
				return fmt.Errorf("equiv: component %d splits into more than two parts", p)
			}
		}
	}
	for p := range st.zero {
		if st.zero[p] >= 0 && st.one[p] < 0 {
			return fmt.Errorf("equiv: component %d splits into 1 parts, want 2", p)
		}
	}
	return nil
}

// IsoBetween returns an explicit isomorphism between two baseline-
// equivalent graphs by composing their isomorphisms through Baseline.
func IsoBetween(g, h *midigraph.Graph) (Isomorphism, error) {
	if g.Stages() != h.Stages() {
		return Isomorphism{}, fmt.Errorf("equiv: stage counts differ (%d vs %d)", g.Stages(), h.Stages())
	}
	ig, err := IsoToBaseline(g)
	if err != nil {
		return Isomorphism{}, err
	}
	ih, err := IsoToBaseline(h)
	if err != nil {
		return Isomorphism{}, err
	}
	iso := ig.Compose(ih.Inverse())
	if err := iso.Verify(g, h); err != nil {
		return Isomorphism{}, fmt.Errorf("equiv: composed isomorphism failed verification: %w", err)
	}
	return iso, nil
}
