package equiv

import (
	"fmt"

	"minequiv/internal/midigraph"
	"minequiv/internal/perm"
	"minequiv/internal/topology"
)

// NotEquivalentError reports a failed characterization check, carrying
// the full report for diagnosis.
type NotEquivalentError struct {
	Report Report
}

func (e *NotEquivalentError) Error() string {
	return "equiv: graph is not baseline-equivalent:\n" + e.Report.String()
}

// IsoToBaseline checks the characterization and, when it holds, returns
// an explicit isomorphism from g onto topology.Baseline(n).
//
// The construction mirrors how the Baseline's own labels encode its
// window components (DESIGN.md §5.4):
//
//   - the SUFFIX windows (stages b..n-1) form a binary refinement
//     hierarchy whose splits reveal, for every node of stages > b, the
//     label bit m-1-b (top field);
//   - the PREFIX windows (stages 0..e) form the complementary hierarchy
//     whose splits reveal, for every node of stage s < e, the label bit
//     e-1-s (low field).
//
// Each split makes an arbitrary 0/1 side choice; in the Baseline every
// such choice corresponds to an automorphism, so any choice yields a
// valid isomorphism. The result is verified before being returned; if
// verification fails (never observed on graphs passing the check, and
// believed impossible) the exact oracle is consulted for small n.
func IsoToBaseline(g *midigraph.Graph) (Isomorphism, error) {
	report := Check(g)
	if !report.Equivalent() {
		return Isomorphism{}, &NotEquivalentError{Report: report}
	}
	n := g.Stages()
	h := g.CellsPerStage()
	if n == 1 {
		return Identity(1, 1), nil
	}
	base := topology.Baseline(n)

	labels, err := hierarchicalLabels(g)
	if err == nil {
		iso, buildErr := labelsToIso(labels, n, h)
		if buildErr == nil {
			if verr := iso.Verify(g, base); verr == nil {
				return iso, nil
			}
		}
	}
	// Defensive fallback; exercised only by tests that feed adversarial
	// graphs directly to the labeler.
	if n <= OracleMaxStages {
		if iso, ok := FindIsomorphism(g, base); ok {
			return iso, nil
		}
	}
	return Isomorphism{}, fmt.Errorf("equiv: hierarchical labeling failed (%v) and oracle unavailable for n=%d", err, n)
}

// hierarchicalLabels computes the per-node Baseline labels from the two
// window-component hierarchies.
func hierarchicalLabels(g *midigraph.Graph) ([][]uint64, error) {
	n := g.Stages()
	h := g.CellsPerStage()
	m := g.LabelBits()
	labels := make([][]uint64, n)
	for s := range labels {
		labels[s] = make([]uint64, h)
	}

	// Suffix hierarchy: S_b = window (b .. n-1). Splitting S_b into
	// S_{b+1} assigns bit m-1-b to every node of stages b+1..n-1.
	prevIDs, prevCount := g.Components(0, n-1) // S_0
	for b := 0; b < n-1; b++ {
		curIDs, curCount := g.Components(b+1, n-1) // S_{b+1}
		split, err := splitSides(prevIDs[1:], curIDs, prevCount)
		if err != nil {
			return nil, fmt.Errorf("suffix window %d: %w", b, err)
		}
		bit := uint(m - 1 - b)
		for t := range curIDs { // t indexes stages b+1..n-1
			s := b + 1 + t
			for x := 0; x < h; x++ {
				if curIDs[t][x] == split.one[prevIDs[t+1][x]] {
					labels[s][x] |= 1 << bit
				}
			}
		}
		prevIDs, prevCount = curIDs, curCount
	}

	// Prefix hierarchy: W_e = window (0 .. e). Splitting W_e into
	// W_{e-1} assigns bit e-1-s to every node of stage s <= e-1.
	prevIDs, prevCount = g.Components(0, n-1) // W_{n-1}
	for e := n - 1; e >= 1; e-- {
		curIDs, curCount := g.Components(0, e-1) // W_{e-1}
		split, err := splitSides(prevIDs[:e], curIDs, prevCount)
		if err != nil {
			return nil, fmt.Errorf("prefix window %d: %w", e, err)
		}
		for s := 0; s <= e-1; s++ {
			bit := uint(e - 1 - s)
			for x := 0; x < h; x++ {
				if curIDs[s][x] == split.one[prevIDs[s][x]] {
					labels[s][x] |= 1 << bit
				}
			}
		}
		prevIDs, prevCount = curIDs, curCount
	}
	return labels, nil
}

// splitTable records, per parent component id, its (at most two)
// distinct child component ids in first-seen scan order: side 0 is
// zero[p], side 1 is one[p], -1 means unseen. Flat dense tables indexed
// by the parent id replace the old map[pairKey]int — the ids are dense
// by construction, so the table is direct-addressed.
type splitTable struct{ zero, one []int32 }

// splitSides computes the split table, requiring every parent component
// that meets the shared stages to split into exactly two child
// components. parentIDs and childIDs cover the same stages in the same
// order; parents is the parent window's component count (the table
// bound).
func splitSides(parentIDs, childIDs [][]int32, parents int) (splitTable, error) {
	if len(parentIDs) != len(childIDs) {
		return splitTable{}, fmt.Errorf("equiv: stage slices differ (%d vs %d)", len(parentIDs), len(childIDs))
	}
	st := splitTable{zero: make([]int32, parents), one: make([]int32, parents)}
	for p := range st.zero {
		st.zero[p], st.one[p] = -1, -1
	}
	for t := range parentIDs {
		for x := range parentIDs[t] {
			p, c := parentIDs[t][x], childIDs[t][x]
			switch {
			case st.zero[p] < 0:
				st.zero[p] = c
			case st.zero[p] == c || st.one[p] == c:
			case st.one[p] < 0:
				st.one[p] = c
			default:
				return splitTable{}, fmt.Errorf("equiv: component %d splits into more than two parts", p)
			}
		}
	}
	for p := range st.zero {
		if st.zero[p] >= 0 && st.one[p] < 0 {
			return splitTable{}, fmt.Errorf("equiv: component %d splits into 1 parts, want 2", p)
		}
	}
	return st, nil
}

// labelsToIso validates that each stage's labels are a bijection and
// packages them as an Isomorphism.
func labelsToIso(labels [][]uint64, n, h int) (Isomorphism, error) {
	maps := make([]perm.Perm, n)
	for s := 0; s < n; s++ {
		p := make(perm.Perm, h)
		copy(p, labels[s])
		if err := p.Validate(); err != nil {
			return Isomorphism{}, fmt.Errorf("equiv: stage %d labels not a bijection: %w", s, err)
		}
		maps[s] = p
	}
	return Isomorphism{Maps: maps}, nil
}

// IsoBetween returns an explicit isomorphism between two baseline-
// equivalent graphs by composing their isomorphisms through Baseline.
func IsoBetween(g, h *midigraph.Graph) (Isomorphism, error) {
	if g.Stages() != h.Stages() {
		return Isomorphism{}, fmt.Errorf("equiv: stage counts differ (%d vs %d)", g.Stages(), h.Stages())
	}
	ig, err := IsoToBaseline(g)
	if err != nil {
		return Isomorphism{}, err
	}
	ih, err := IsoToBaseline(h)
	if err != nil {
		return Isomorphism{}, err
	}
	iso := ig.Compose(ih.Inverse())
	if err := iso.Verify(g, h); err != nil {
		return Isomorphism{}, fmt.Errorf("equiv: composed isomorphism failed verification: %w", err)
	}
	return iso, nil
}
