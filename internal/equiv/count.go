package equiv

import (
	"fmt"

	"minequiv/internal/midigraph"
)

// CountIsomorphisms exhaustively counts the stage-respecting isomorphisms
// from g onto h (for g == h, the automorphism group order). Exponential
// worst case; bounded by OracleMaxStages like FindIsomorphism.
//
// For the Baseline network the count has a closed form that this library
// derives from the window-component hierarchy of label.go: every prefix
// or suffix component split admits an independent binary choice, there
// are 2^(n-1) - 1 splits in each hierarchy, and so
//
//	|Aut(Baseline(n))| = 2^(2 * (2^(n-1) - 1)).
//
// The test suite checks the count against this formula for n <= 4, which
// is also the proof-by-enumeration that every split choice in
// IsoToBaseline yields a distinct valid isomorphism.
func CountIsomorphisms(g, h *midigraph.Graph) (uint64, error) {
	if g.Stages() != h.Stages() {
		return 0, nil
	}
	if g.Stages() > OracleMaxStages {
		return 0, fmt.Errorf("equiv: counting limited to %d stages, got %d", OracleMaxStages, g.Stages())
	}
	n := g.Stages()
	hh := g.CellsPerStage()

	gParents := make([][][2]uint32, n)
	for s := 1; s < n; s++ {
		gParents[s] = g.ParentTable(s)
	}
	const unset = ^uint32(0)
	phi := make([][]uint32, n)
	used := make([][]bool, n)
	for s := 0; s < n; s++ {
		phi[s] = make([]uint32, hh)
		used[s] = make([]bool, hh)
		for x := range phi[s] {
			phi[s][x] = unset
		}
	}
	mult := func(gr *midigraph.Graph, st int, from, to uint32) int {
		f, c := gr.Children(st, from)
		m := 0
		if f == to {
			m++
		}
		if c == to {
			m++
		}
		return m
	}
	var count uint64
	var rec func(idx int)
	rec = func(idx int) {
		if idx == n*hh {
			count++
			return
		}
		s := idx / hh
		x := uint32(idx % hh)
		if s == 0 {
			for y := 0; y < hh; y++ {
				if used[0][y] {
					continue
				}
				phi[0][x] = uint32(y)
				used[0][y] = true
				rec(idx + 1)
				phi[0][x] = unset
				used[0][y] = false
			}
			return
		}
		p := gParents[s][x]
		img0 := phi[s-1][p[0]]
		img1 := phi[s-1][p[1]]
		hf, hg := h.Children(s-1, img0)
		tried := [2]uint32{unset, unset}
		for slot, cand := range []uint32{hf, hg} {
			if slot == 1 && cand == tried[0] {
				continue
			}
			tried[slot] = cand
			if used[s][cand] {
				continue
			}
			if mult(g, s-1, p[0], x) != mult(h, s-1, img0, cand) {
				continue
			}
			if mult(g, s-1, p[1], x) != mult(h, s-1, img1, cand) {
				continue
			}
			phi[s][x] = cand
			used[s][cand] = true
			rec(idx + 1)
			phi[s][x] = unset
			used[s][cand] = false
		}
	}
	rec(0)
	return count, nil
}

// BaselineAutomorphismFormula returns the predicted automorphism group
// order 2^(2*(2^(n-1)-1)) of the n-stage Baseline (see CountIsomorphisms).
// It panics if the exponent overflows uint64 (n > 6 in practice — callers
// wanting the formula at scale should work with the exponent).
func BaselineAutomorphismFormula(n int) uint64 {
	exp := 2 * ((1 << uint(n-1)) - 1)
	if exp >= 64 {
		panic(fmt.Sprintf("equiv: automorphism count 2^%d overflows uint64", exp))
	}
	return 1 << uint(exp)
}

// CanonicalForm relabels a baseline-equivalent graph into Baseline
// coordinates: the result is structurally equal (up to child slot order)
// to topology.Baseline(n). Two baseline-equivalent graphs always have
// identical canonical forms, giving an O(n * h alpha(h)) equality check.
func CanonicalForm(g *midigraph.Graph) (*midigraph.Graph, error) {
	iso, err := IsoToBaseline(g)
	if err != nil {
		return nil, err
	}
	return g.Relabel(iso.Maps)
}
