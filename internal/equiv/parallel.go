package equiv

import (
	"runtime"
	"sync"
	"sync/atomic"

	"minequiv/internal/midigraph"
)

// shardIndices mirrors internal/engine's sharding discipline: workers
// claim indices from a shared atomic counter, every result lands in
// per-index storage owned by the caller's fn, and the first error in
// *index order* is returned after all workers drain — so both results
// and errors are deterministic for any worker count.
func shardIndices(workers, n int, fn func(idx int) error) error {
	if n == 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	errs := make([]error, n)
	var next atomic.Int64
	var failed atomic.Bool
	var wg sync.WaitGroup
	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !failed.Load() {
				idx := int(next.Add(1)) - 1
				if idx >= n {
					return
				}
				if err := fn(idx); err != nil {
					errs[idx] = err
					failed.Store(true)
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// ForEachPair runs fn over every unordered pair {i, j}, i <= j, of
// [0, count), sharded across workers (<= 0 means GOMAXPROCS). fn must
// write any result into per-pair storage; results are deterministic
// because storage is indexed, and the returned error is the first one
// in pair-scan order. Used by the pairwise sweeps here and by the
// experiment harness's catalog matrices.
func ForEachPair(count, workers int, fn func(i, j int) error) error {
	pairs := make([][2]int, 0, count*(count+1)/2)
	for i := 0; i < count; i++ {
		for j := i; j < count; j++ {
			pairs = append(pairs, [2]int{i, j})
		}
	}
	return shardIndices(workers, len(pairs), func(idx int) error {
		return fn(pairs[idx][0], pairs[idx][1])
	})
}

// PairwiseEquivalent computes the full topological-equivalence matrix of
// the given graphs with a worker pool, the parallel counterpart of
// calling AreEquivalent on every pair. The output ordering is
// deterministic for any worker count (results are stored by pair index
// and reduced in order, like internal/engine's trial sharding).
//
// Each graph's characterization is evaluated exactly once — not once
// per pair — so a catalog sweep over k graphs costs k checks plus an
// exact-oracle fallback only for pairs where neither graph is
// baseline-equivalent (bounded by OracleMaxStages, as in AreEquivalent;
// such a pair beyond the bound yields the same error AreEquivalent
// reports for it). The diagonal is true by reflexivity.
func PairwiseEquivalent(graphs []*midigraph.Graph, workers int) ([][]bool, error) {
	k := len(graphs)
	out := make([][]bool, k)
	for i := range out {
		out[i] = make([]bool, k)
		out[i][i] = true
	}
	if k < 2 {
		return out, nil
	}
	// Phase 1: one characterization per graph, sharded.
	base := make([]bool, k)
	_ = shardIndices(workers, k, func(i int) error {
		base[i] = IsBaselineEquivalent(graphs[i])
		return nil
	})
	// Phase 2: pairwise decisions, oracle only where the theory is silent.
	err := ForEachPair(k, workers, func(i, j int) error {
		if i == j {
			return nil
		}
		eq, perr := pairDecision(graphs[i], graphs[j], base[i], base[j])
		if perr != nil {
			return perr
		}
		out[i][j], out[j][i] = eq, eq
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// pairDecision resolves one off-diagonal pair given the precomputed
// characterizations, with AreEquivalent's exact semantics.
func pairDecision(g, h *midigraph.Graph, ge, he bool) (bool, error) {
	if g.Stages() != h.Stages() {
		return false, nil
	}
	switch {
	case ge && he:
		return true, nil
	case ge != he:
		return false, nil
	}
	if g.Stages() > OracleMaxStages {
		return false, oracleBoundError(g.Stages())
	}
	_, found := FindIsomorphism(g, h)
	return found, nil
}
