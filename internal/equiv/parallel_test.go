package equiv

import (
	"sync"
	"testing"

	"minequiv/internal/engine"
	"minequiv/internal/midigraph"
	"minequiv/internal/randnet"
	"minequiv/internal/topology"
)

// gatherTestGraphs builds a mixed population: the classical catalog, a
// scramble, the tail-cycle counterexample, and a random non-Banyan.
func gatherTestGraphs(t *testing.T, n int) []*midigraph.Graph {
	t.Helper()
	nets, err := topology.BuildAll(n)
	if err != nil {
		t.Fatal(err)
	}
	var gs []*midigraph.Graph
	for _, nw := range nets {
		gs = append(gs, nw.Graph)
	}
	rng := engine.NewRand(71, 0)
	scrambled, _ := randnet.Scramble(rng, gs[0])
	gs = append(gs, scrambled)
	tail, err := randnet.TailCycleBanyan(n)
	if err != nil {
		t.Fatal(err)
	}
	gs = append(gs, tail, randnet.RandomValidGraph(rng, n))
	return gs
}

// TestPairwiseEquivalentMatchesSequential pins the parallel matrix to
// per-pair AreEquivalent for every worker count, including errors.
func TestPairwiseEquivalentMatchesSequential(t *testing.T) {
	gs := gatherTestGraphs(t, 5)
	want := make([][]bool, len(gs))
	for i := range gs {
		want[i] = make([]bool, len(gs))
		for j := range gs {
			eq, err := AreEquivalent(gs[i], gs[j])
			if err != nil {
				t.Fatalf("sequential AreEquivalent(%d,%d): %v", i, j, err)
			}
			want[i][j] = eq
		}
	}
	for _, workers := range []int{1, 2, 4, 8, 0} {
		got, err := PairwiseEquivalent(gs, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range want {
			for j := range want[i] {
				if got[i][j] != want[i][j] {
					t.Fatalf("workers=%d: matrix[%d][%d]=%v, sequential=%v", workers, i, j, got[i][j], want[i][j])
				}
			}
		}
	}
}

// TestPairwiseEquivalentOracleBound: a pair of non-equivalent graphs
// beyond the oracle bound must surface AreEquivalent's error, for any
// worker count.
func TestPairwiseEquivalentOracleBound(t *testing.T) {
	n := OracleMaxStages + 1
	a, err := randnet.TailCycleBanyan(n)
	if err != nil {
		t.Fatal(err)
	}
	b, err := randnet.TailCycleBanyan(n)
	if err != nil {
		t.Fatal(err)
	}
	wantEq, wantErr := AreEquivalent(a, b)
	if wantErr == nil || wantEq {
		t.Fatalf("expected oracle-bound error from sequential path, got eq=%v err=%v", wantEq, wantErr)
	}
	for _, workers := range []int{1, 3} {
		if _, err := PairwiseEquivalent([]*midigraph.Graph{a, b}, workers); err == nil {
			t.Fatalf("workers=%d: expected oracle-bound error", workers)
		} else if err.Error() != wantErr.Error() {
			t.Fatalf("workers=%d: error %q, want %q", workers, err, wantErr)
		}
	}
}

// TestPairwiseEquivalentMixedStages: differing stage counts are simply
// non-equivalent, never an error.
func TestPairwiseEquivalentMixedStages(t *testing.T) {
	gs := []*midigraph.Graph{
		topology.Baseline(4),
		topology.Baseline(5),
		topology.MustBuild(topology.NameOmega, 4).Graph,
	}
	got, err := PairwiseEquivalent(gs, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got[0][1] || got[1][0] || got[1][2] || got[2][1] {
		t.Fatal("graphs of different sizes reported equivalent")
	}
	if !got[0][2] || !got[2][0] {
		t.Fatal("baseline(4) and omega(4) must be equivalent")
	}
	for i := range gs {
		if !got[i][i] {
			t.Fatalf("diagonal [%d][%d] not true", i, i)
		}
	}
}

// TestForEachPairCoversAllPairsOnce: the shard loop must visit every
// unordered pair exactly once regardless of worker count.
func TestForEachPairCoversAllPairsOnce(t *testing.T) {
	const k = 7
	for _, workers := range []int{1, 3, 16} {
		seen := make([][]int32, k)
		for i := range seen {
			seen[i] = make([]int32, k)
		}
		var mu sync.Mutex
		err := ForEachPair(k, workers, func(i, j int) error {
			mu.Lock()
			seen[i][j]++
			mu.Unlock()
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < k; i++ {
			for j := 0; j < k; j++ {
				want := int32(0)
				if j >= i {
					want = 1
				}
				if seen[i][j] != want {
					t.Fatalf("workers=%d: pair (%d,%d) visited %d times, want %d", workers, i, j, seen[i][j], want)
				}
			}
		}
	}
}
