package equiv

import (
	"fmt"
	"sync"

	"minequiv/internal/midigraph"
	"minequiv/internal/perm"
	"minequiv/internal/topology"
)

// IsoBuilder owns every piece of scratch the constructive isomorphism
// needs — the window Analyzer, the path-count buffers of the Banyan
// check, the double-buffered component-id tables the two hierarchies
// walk, the split tables, the label planes and the bijection-check
// bitmap — following the same discipline as midigraph.Analyzer: sized
// on first use, retained across calls, so repeated IsoToBaseline runs
// on one builder allocate only the returned Isomorphism itself. The
// compiled Baseline target is cached per stage count. A builder is NOT
// safe for concurrent use; the package-level IsoToBaseline draws one
// from a pool so one-shot callers share scratch across the process.
type IsoBuilder struct {
	an         *midigraph.Analyzer
	prefix     []midigraph.WindowResult
	suffix     []midigraph.WindowResult
	pathCur    []uint64
	pathNext   []uint64
	idsA, idsB [][]int32
	split      splitTable
	labels     [][]uint64
	labelRow   []uint64
	seen       []bool
	baseN      int
	base       *midigraph.Graph
}

// NewIsoBuilder returns an empty builder; scratch grows on first use.
func NewIsoBuilder() *IsoBuilder {
	return &IsoBuilder{an: midigraph.NewAnalyzer()}
}

// isoBuilderPool backs the package-level IsoToBaseline so even one-shot
// calls reuse scratch across the process.
var isoBuilderPool = sync.Pool{New: func() any { return NewIsoBuilder() }}

// banyanOK is the allocation-free fast path of Graph.IsBanyan: one
// reused pair of path-count rows swept per source node, succeeding only
// when every count is exactly one. Diagnosis of a failure (which node,
// how many paths) is left to the allocating slow path.
func (b *IsoBuilder) banyanOK(g *midigraph.Graph) bool {
	n, h := g.Stages(), g.CellsPerStage()
	if cap(b.pathCur) < h {
		b.pathCur = make([]uint64, h)
		b.pathNext = make([]uint64, h)
	}
	cur, next := b.pathCur[:h], b.pathNext[:h]
	for src := 0; src < h; src++ {
		for i := range cur {
			cur[i] = 0
		}
		cur[src] = 1
		for s := 0; s < n-1; s++ {
			for i := range next {
				next[i] = 0
			}
			for x, c := range cur {
				if c == 0 {
					continue
				}
				f, g2 := g.Children(s, uint32(x))
				next[f] += c
				next[g2] += c
			}
			cur, next = next, cur
		}
		for _, c := range cur {
			if c != 1 {
				return false
			}
		}
	}
	return true
}

// splitInto is splitSides writing into the builder's reused tables.
func (b *IsoBuilder) splitInto(parentIDs, childIDs [][]int32, parents int) error {
	if cap(b.split.zero) < parents {
		b.split.zero = make([]int32, parents)
		b.split.one = make([]int32, parents)
	}
	b.split.zero = b.split.zero[:parents]
	b.split.one = b.split.one[:parents]
	return b.split.fill(parentIDs, childIDs)
}

// growLabels zeroes and shapes the n-by-h label planes over one flat
// reused row.
func (b *IsoBuilder) growLabels(n, h int) [][]uint64 {
	if cap(b.labelRow) < n*h {
		b.labelRow = make([]uint64, n*h)
	}
	if cap(b.labels) < n {
		b.labels = make([][]uint64, n)
	}
	row := b.labelRow[:n*h]
	for i := range row {
		row[i] = 0
	}
	b.labels = b.labels[:n]
	for s := range b.labels {
		b.labels[s] = row[s*h : (s+1)*h]
	}
	return b.labels
}

// hierarchicalLabels computes the per-node Baseline labels from the two
// window-component hierarchies (see IsoToBaseline); every table it
// touches is builder-owned and reused.
func (b *IsoBuilder) hierarchicalLabels(g *midigraph.Graph) ([][]uint64, error) {
	n := g.Stages()
	h := g.CellsPerStage()
	m := g.LabelBits()
	labels := b.growLabels(n, h)

	// The hierarchies alternate between the two id buffers: the parent
	// window's ids live in one while the child window's are computed
	// into the other, so no iteration reads storage it just overwrote.
	bufs := [2]*[][]int32{&b.idsA, &b.idsB}

	// Suffix hierarchy: S_b = window (b .. n-1). Splitting S_b into
	// S_{b+1} assigns bit m-1-b to every node of stages b+1..n-1.
	prevIDs, prevCount := b.an.Components(g, 0, n-1, *bufs[0])
	*bufs[0] = prevIDs
	for bb := 0; bb < n-1; bb++ {
		buf := bufs[(bb+1)&1]
		curIDs, curCount := b.an.Components(g, bb+1, n-1, *buf)
		*buf = curIDs
		if err := b.splitInto(prevIDs[1:], curIDs, prevCount); err != nil {
			return nil, fmt.Errorf("suffix window %d: %w", bb, err)
		}
		bit := uint(m - 1 - bb)
		for t := range curIDs { // t indexes stages bb+1..n-1
			s := bb + 1 + t
			for x := 0; x < h; x++ {
				if curIDs[t][x] == b.split.one[prevIDs[t+1][x]] {
					labels[s][x] |= 1 << bit
				}
			}
		}
		prevIDs, prevCount = curIDs, curCount
	}

	// Prefix hierarchy: W_e = window (0 .. e). Splitting W_e into
	// W_{e-1} assigns bit e-1-s to every node of stage s <= e-1.
	prevIDs, prevCount = b.an.Components(g, 0, n-1, *bufs[(n-1)&1])
	*bufs[(n-1)&1] = prevIDs
	for e := n - 1; e >= 1; e-- {
		buf := bufs[(e+1)&1]
		curIDs, curCount := b.an.Components(g, 0, e-1, *buf)
		*buf = curIDs
		if err := b.splitInto(prevIDs[:e], curIDs, prevCount); err != nil {
			return nil, fmt.Errorf("prefix window %d: %w", e, err)
		}
		for s := 0; s <= e-1; s++ {
			bit := uint(e - 1 - s)
			for x := 0; x < h; x++ {
				if curIDs[s][x] == b.split.one[prevIDs[s][x]] {
					labels[s][x] |= 1 << bit
				}
			}
		}
		prevIDs, prevCount = curIDs, curCount
	}
	return labels, nil
}

// bijection reports whether p is a permutation of [0,h), using the
// builder's reused bitmap instead of perm.Validate's fresh one.
func (b *IsoBuilder) bijection(p perm.Perm, h int) bool {
	if cap(b.seen) < h {
		b.seen = make([]bool, h)
	}
	seen := b.seen[:h]
	for i := range seen {
		seen[i] = false
	}
	for _, v := range p {
		if v >= uint64(h) || seen[v] {
			return false
		}
		seen[v] = true
	}
	return true
}

// verifyArcs is Isomorphism.Verify minus the per-stage bijection
// re-validation (the builder already checked each map) — every arc of g
// must map to an arc of the target with the same multiplicity.
func (b *IsoBuilder) verifyArcs(iso Isomorphism, g, target *midigraph.Graph) bool {
	n, h := g.Stages(), g.CellsPerStage()
	for s := 0; s < n-1; s++ {
		for x := 0; x < h; x++ {
			gf, gg := g.Children(s, uint32(x))
			hf, hg := target.Children(s, uint32(iso.Maps[s][x]))
			a, c := uint32(iso.Maps[s+1][gf]), uint32(iso.Maps[s+1][gg])
			if !(a == hf && c == hg || a == hg && c == hf) {
				return false
			}
		}
	}
	return true
}

// baseline returns the cached Baseline MI-digraph for n stages.
func (b *IsoBuilder) baseline(n int) *midigraph.Graph {
	if b.baseN != n {
		b.base = topology.Baseline(n)
		b.baseN = n
	}
	return b.base
}

// IsoToBaseline is the builder-backed form of the package-level
// IsoToBaseline: identical semantics, but the check and the label
// construction run entirely on reused scratch, so in steady state the
// only allocations are the returned Isomorphism's own stage maps. The
// failure paths (a graph flunking the characterization, or the
// never-observed labeling fallback) use the allocating diagnostics.
func (b *IsoBuilder) IsoToBaseline(g *midigraph.Graph) (Isomorphism, error) {
	b.prefix = b.an.CheckPrefix(g, b.prefix)
	b.suffix = b.an.CheckSuffix(g, b.suffix)
	if !b.banyanOK(g) || !midigraph.AllOK(b.prefix) || !midigraph.AllOK(b.suffix) {
		return Isomorphism{}, &NotEquivalentError{Report: Check(g)}
	}
	n := g.Stages()
	h := g.CellsPerStage()
	if n == 1 {
		return Identity(1, 1), nil
	}
	base := b.baseline(n)

	labels, err := b.hierarchicalLabels(g)
	if err == nil {
		iso := Isomorphism{Maps: make([]perm.Perm, n)}
		ok := true
		for s := 0; s < n && ok; s++ {
			p := make(perm.Perm, h)
			copy(p, labels[s])
			if !b.bijection(p, h) {
				err = fmt.Errorf("equiv: stage %d labels not a bijection", s)
				ok = false
			}
			iso.Maps[s] = p
		}
		if ok && b.verifyArcs(iso, g, base) {
			return iso, nil
		}
	}
	// Defensive fallback; exercised only by tests that feed adversarial
	// graphs directly to the labeler.
	if n <= OracleMaxStages {
		if iso, ok := FindIsomorphism(g, base); ok {
			return iso, nil
		}
	}
	return Isomorphism{}, fmt.Errorf("equiv: hierarchical labeling failed (%v) and oracle unavailable for n=%d", err, n)
}
