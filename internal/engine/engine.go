// Package engine is the parallel trial runner on top of internal/sim:
// it shards independent wave simulations (and buffered-model
// replications) across workers, gives each trial its own
// deterministically-derived PCG stream and each worker its own reusable
// scratch state, and aggregates delivered/dropped/latency statistics
// with means and confidence intervals.
//
// Determinism is the core contract: trial t always runs with the rng
// NewRand(seed, t) and per-trial results are stored by index, then
// reduced sequentially in index order. Aggregate statistics are
// therefore byte-identical for any worker count, which is what makes
// parallel runs trustworthy replacements for the old sequential loops.
// Fault injection obeys the same discipline: a Config.Faults plan is
// resampled per trial from the decorrelated stream NewFaultRand(seed, t)
// into worker-owned FaultStates, so degraded runs are reproducible from
// (seed, plan) alone and never perturb the traffic streams.
package engine

import (
	"context"
	"fmt"
	"math"
	"math/rand/v2"
	"runtime"
	"sync"
	"sync/atomic"

	"minequiv/internal/sim"
)

// Config parametrizes one engine run.
type Config struct {
	Workers int    // goroutines; <= 0 means GOMAXPROCS
	Seed    uint64 // root seed; trial t uses stream NewRand(Seed, t)

	// Faults degrades the fabric: each trial samples the plan into a
	// worker-owned FaultState using the dedicated stream
	// NewFaultRand(Seed, t), so pinned faults hold for every trial,
	// random rates redraw per trial, traffic draws are untouched, and
	// aggregates remain byte-identical for any worker count. nil (or a
	// pointer to an empty plan) simulates the intact fabric.
	Faults *sim.FaultPlan

	// Kernel selects the unbuffered executor (see the Kernel type); the
	// zero value KernelAuto uses the bit-sliced kernel whenever the
	// fabric qualifies. Results never depend on the choice.
	Kernel Kernel
}

// faultPlan returns the active plan, or nil for an intact run.
func (c Config) faultPlan() *sim.FaultPlan {
	if c.Faults == nil || c.Faults.Empty() {
		return nil
	}
	return c.Faults
}

func (c Config) workers(trials int) int {
	w := c.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > trials {
		w = trials
	}
	return w
}

// shard runs fn(t) for every t in [0, trials) across the configured
// worker count, each worker claiming trial indices from a shared atomic
// counter. fn must write its result into per-index storage; the first
// error aborts remaining trials. Cancelling ctx stops every worker at
// its next trial boundary (a single trial is never interrupted
// mid-flight) and ctx.Err() is returned.
func shard(ctx context.Context, cfg Config, trials int, scratch func() any, fn func(t int, scratch any) error) error {
	nw := cfg.workers(trials)
	var next atomic.Int64
	var failed atomic.Bool
	errs := make([]error, nw)
	var wg sync.WaitGroup
	for wk := 0; wk < nw; wk++ {
		wg.Add(1)
		go func(wk int) {
			defer wg.Done()
			sc := scratch()
			for !failed.Load() {
				if ctx.Err() != nil {
					return
				}
				t := int(next.Add(1)) - 1
				if t >= trials {
					return
				}
				if err := fn(t, sc); err != nil {
					errs[wk] = err
					failed.Store(true)
					return
				}
			}
		}(wk)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return ctx.Err()
}

// WaveStats aggregates a sharded run of independent waves.
type WaveStats struct {
	Waves        int
	Offered      int
	Delivered    int
	Dropped      int
	Misrouted    int
	FaultDropped int // subset of Dropped killed directly by faults
	// Throughput is the pooled delivered/offered ratio (the quantity the
	// analytic blocking recurrence models), with dispersion from the
	// linearized ratio-estimator variance over waves. For patterns that
	// offer a constant packet count per wave this coincides with the
	// mean and sample std of per-wave delivered fractions; for variable
	// -load patterns (bernoulli, bursty) the pooled ratio weights every
	// packet equally instead of every wave.
	Throughput Stats
}

// waveTrial is one trial's counters, stored by trial index so reduction
// order (and therefore every aggregate) is worker-count independent.
type waveTrial struct{ offered, delivered, dropped, misrouted, faultDropped int }

// RunWaves pushes `waves` independent waves of the pattern through the
// fabric, sharded across cfg.Workers goroutines. The pattern must be a
// pure function of (dsts, rng) — every pattern in the sim registry is —
// since all workers share it with distinct buffers and rngs. Cancelling
// ctx aborts the run within one trial (one 64-trial batch under the
// bit-sliced kernel) and returns ctx.Err().
//
// Trial t always draws from the streams NewRand(Seed, t) and
// NewFaultRand(Seed, t) no matter which kernel executes it, and both
// kernels are byte-identical per stream, so aggregates are invariant
// under both worker count and kernel choice.
func RunWaves(ctx context.Context, f *sim.Fabric, pattern sim.Traffic, waves int, cfg Config) (WaveStats, error) {
	if waves <= 0 {
		return WaveStats{}, fmt.Errorf("engine: waves must be positive")
	}
	plan := cfg.faultPlan()
	if plan != nil {
		if err := plan.Validate(f); err != nil {
			return WaveStats{}, err
		}
	}
	useBit := false
	switch cfg.Kernel {
	case KernelAuto:
		useBit = f.BitSliceable()
	case KernelScalar:
	case KernelBit:
		if !f.BitSliceable() {
			return WaveStats{}, fmt.Errorf(`engine: kernel "bit" requested but the fabric is not bit-sliceable (needs Banyan reachability and <= 16 stages)`)
		}
		useBit = true
	default:
		return WaveStats{}, fmt.Errorf("engine: unknown kernel %d", uint8(cfg.Kernel))
	}
	results := make([]waveTrial, waves)
	var err error
	if useBit {
		err = runWavesBit(ctx, f, pattern, waves, cfg, plan, results)
	} else {
		err = runWavesScalar(ctx, f, pattern, waves, cfg, plan, results)
	}
	if err != nil {
		return WaveStats{}, err
	}
	out := WaveStats{Waves: waves}
	for _, r := range results {
		out.Offered += r.offered
		out.Delivered += r.delivered
		out.Dropped += r.dropped
		out.Misrouted += r.misrouted
		out.FaultDropped += r.faultDropped
	}
	if out.Offered > 0 {
		m := float64(out.Delivered) / float64(out.Offered)
		// Linearized variance of the ratio-of-sums estimator:
		// Var(m) ~= n/(n-1) * sum_t (d_t - m*o_t)^2 / (sum_t o_t)^2.
		// Std is scaled so that Stats.CI95 = 1.96*Std/sqrt(N) yields
		// exactly 1.96*sqrt(Var); for constant offered load it reduces
		// to the sample std of per-wave delivered fractions.
		n := 0
		var sq float64
		for _, r := range results {
			if r.offered == 0 {
				continue
			}
			n++
			d := float64(r.delivered) - m*float64(r.offered)
			sq += d * d
		}
		st := Stats{N: n, Mean: m}
		if n > 1 {
			st.Std = float64(n) / float64(out.Offered) * math.Sqrt(sq/float64(n-1))
		}
		out.Throughput = st
	}
	return out, nil
}

// runWavesScalar executes one trial per shard unit with the scalar
// wave kernel. A pinned-only plan realizes identically every trial:
// sample it once per worker. Random rates resample per trial from the
// dedicated fault stream (the plan is already validated, so Resample
// suffices).
func runWavesScalar(ctx context.Context, f *sim.Fabric, pattern sim.Traffic, waves int, cfg Config, plan *sim.FaultPlan, results []waveTrial) error {
	resample := plan != nil && plan.Random()
	type waveScratch struct {
		runner *sim.WaveRunner
		faults *sim.FaultState
	}
	return shard(ctx, cfg, waves,
		func() any {
			sc := &waveScratch{runner: f.NewWaveRunner()}
			if plan != nil {
				sc.faults = f.NewFaultState()
				_ = sc.runner.SetFaults(sc.faults)
				if !resample {
					sc.faults.Resample(*plan, nil)
				}
			}
			return sc
		},
		func(t int, scratch any) error {
			sc := scratch.(*waveScratch)
			if resample {
				sc.faults.Resample(*plan, NewFaultRand(cfg.Seed, uint64(t)))
			}
			res, err := sc.runner.RunTraffic(pattern, NewRand(cfg.Seed, uint64(t)))
			if err != nil {
				return err
			}
			results[t] = waveTrial{res.Offered, res.Delivered, res.Dropped, res.Misrouted, res.FaultDropped}
			return nil
		})
}

// runWavesBit executes the trials in 64-wide batches with the
// bit-sliced kernel: shard unit u covers trials [64u, 64u+64), lane j
// of the batch running trial 64u+j on its own reseeded PCG — the exact
// NewRand/NewFaultRand streams the scalar executor would use, so the
// per-trial results are byte-identical to runWavesScalar's. A trailing
// remainder of fewer than 64 waves runs through the worker's scalar
// runner inside the final unit (the kernels mix freely for the same
// reason). All per-batch work — PCG reseeding, fault refolds, the
// kernel itself — is allocation-free.
func runWavesBit(ctx context.Context, f *sim.Fabric, pattern sim.Traffic, waves int, cfg Config, plan *sim.FaultPlan, results []waveTrial) error {
	resample := plan != nil && plan.Random()
	batches := waves / 64
	units := batches
	if waves%64 != 0 {
		units++
	}
	froot := FaultRoot(cfg.Seed)
	type bitScratch struct {
		bit    *sim.BitWaveRunner
		scalar *sim.WaveRunner
		faults *sim.FaultState
		bits   *sim.BitFaultState
		pcg    [64]rand.PCG
		rngs   [64]*rand.Rand
		fpcg   rand.PCG
		frng   *rand.Rand
	}
	return shard(ctx, cfg, units,
		func() any {
			sc := &bitScratch{scalar: f.NewWaveRunner()}
			sc.bit, _ = f.NewBitWaveRunner() // BitSliceable was checked by RunWaves
			for j := range sc.rngs {
				sc.rngs[j] = rand.New(&sc.pcg[j])
			}
			sc.frng = rand.New(&sc.fpcg)
			if plan != nil {
				sc.faults = f.NewFaultState()
				sc.bits = f.NewBitFaultState()
				_ = sc.scalar.SetFaults(sc.faults)
				_ = sc.bit.SetFaults(sc.bits)
				if !resample {
					sc.faults.Resample(*plan, nil)
					_ = sc.bits.SetAll(sc.faults)
				}
			}
			return sc
		},
		func(u int, scratch any) error {
			sc := scratch.(*bitScratch)
			t0 := u * 64
			if u == batches {
				// Remainder unit: fewer than 64 trailing waves, scalar.
				for t := t0; t < waves; t++ {
					if resample {
						sc.fpcg.Seed(SeedPair(froot, uint64(t)))
						sc.faults.Resample(*plan, sc.frng)
					}
					sc.pcg[0].Seed(SeedPair(cfg.Seed, uint64(t)))
					res, err := sc.scalar.RunTraffic(pattern, sc.rngs[0])
					if err != nil {
						return err
					}
					results[t] = waveTrial{res.Offered, res.Delivered, res.Dropped, res.Misrouted, res.FaultDropped}
				}
				return nil
			}
			for j := 0; j < 64; j++ {
				sc.pcg[j].Seed(SeedPair(cfg.Seed, uint64(t0+j)))
			}
			if resample {
				for j := 0; j < 64; j++ {
					sc.fpcg.Seed(SeedPair(froot, uint64(t0+j)))
					sc.faults.Resample(*plan, sc.frng)
					if err := sc.bits.SetLane(j, sc.faults); err != nil {
						return err
					}
				}
			}
			res, err := sc.bit.RunTraffic(pattern, sc.rngs[:])
			if err != nil {
				return err
			}
			for j := 0; j < 64; j++ {
				results[t0+j] = waveTrial{res.Offered[j], res.Delivered[j], res.Dropped[j], res.Misrouted[j], res.FaultDropped[j]}
			}
			return nil
		})
}

// BufferedStats aggregates independent replications of the buffered
// (multi-lane FIFO store-and-forward) model.
type BufferedStats struct {
	Replications int
	Injected     int
	Rejected     int
	Delivered    int
	Dropped      int // undeliverable packets discarded (non-Banyan fabrics, faults)
	FaultDropped int // subset of Dropped killed directly by faults
	Misrouted    int // wrong-terminal exits forced by stuck last-stage switches
	InFlight     int
	MaxOccupancy int   // largest single-lane queue length over all replications
	Throughput   Stats // per-replication delivered per terminal per cycle
	Latency      Stats // per-replication mean delivery latency, cycles
	LatencyP50   Stats // per-replication latency percentiles, cycles
	LatencyP95   Stats
	LatencyP99   Stats
	// StageOccupancy[s] is the mean over replications of the mean
	// packets queued at stage s per measured cycle.
	StageOccupancy []float64
}

// RunBuffered runs `reps` independent replications of the buffered model
// (distinct rng streams, same configuration), sharded across workers.
// Each worker owns one reused BufferedRunner — the simulation's cycle
// loop allocates nothing; per trial only the derived rng is allocated.
// Trial t always uses the stream NewRand(cfg.Seed, t) and reduction is
// by trial index, keeping the aggregates byte-identical for any worker
// count. Cancelling ctx aborts the run within one replication and
// returns ctx.Err().
func RunBuffered(ctx context.Context, f *sim.Fabric, bc sim.BufferedConfig, reps int, cfg Config) (BufferedStats, error) {
	if reps <= 0 {
		return BufferedStats{}, fmt.Errorf("engine: replications must be positive")
	}
	// Validate once, up front, without sizing any buffers; per-worker
	// construction below cannot fail for a valid config.
	if err := bc.Validate(); err != nil {
		return BufferedStats{}, err
	}
	plan := cfg.faultPlan()
	if plan != nil {
		if err := plan.Validate(f); err != nil {
			return BufferedStats{}, err
		}
	}
	// Same discipline as RunWaves: pinned-only plans sample once per
	// worker, random rates resample per trial from the fault stream.
	resample := plan != nil && plan.Random()
	type bufScratch struct {
		runner *sim.BufferedRunner
		faults *sim.FaultState
	}
	results := make([]sim.BufferedResult, reps)
	// One flat per-trial occupancy buffer: each trial copies the
	// runner-owned StageOccupancy into its own slot so the worker's
	// next replication cannot overwrite it, without per-trial allocs.
	occ := make([]float64, reps*f.Spans)
	err := shard(ctx, cfg, reps,
		func() any {
			r, _ := f.NewBufferedRunner(bc)
			sc := &bufScratch{runner: r}
			if plan != nil {
				sc.faults = f.NewFaultState()
				_ = r.SetFaults(sc.faults)
				if !resample {
					sc.faults.Resample(*plan, nil)
				}
			}
			return sc
		},
		func(t int, scratch any) error {
			sc := scratch.(*bufScratch)
			if resample {
				sc.faults.Resample(*plan, NewFaultRand(cfg.Seed, uint64(t)))
			}
			res := sc.runner.Run(NewRand(cfg.Seed, uint64(t)))
			copy(occ[t*f.Spans:(t+1)*f.Spans], res.StageOccupancy)
			res.StageOccupancy = nil
			results[t] = res
			return nil
		})
	if err != nil {
		return BufferedStats{}, err
	}
	out := BufferedStats{Replications: reps, StageOccupancy: make([]float64, f.Spans)}
	throughputs := make([]float64, reps)
	latencies := make([]float64, reps)
	p50s := make([]float64, reps)
	p95s := make([]float64, reps)
	p99s := make([]float64, reps)
	for t, r := range results {
		out.Injected += r.Injected
		out.Rejected += r.Rejected
		out.Delivered += r.Delivered
		out.Dropped += r.Dropped
		out.FaultDropped += r.FaultDropped
		out.Misrouted += r.Misrouted
		out.InFlight += r.InFlight
		if r.MaxOccupancy > out.MaxOccupancy {
			out.MaxOccupancy = r.MaxOccupancy
		}
		throughputs[t] = r.Throughput
		latencies[t] = r.MeanLatency
		p50s[t] = float64(r.P50)
		p95s[t] = float64(r.P95)
		p99s[t] = float64(r.P99)
		for s := 0; s < f.Spans; s++ {
			out.StageOccupancy[s] += occ[t*f.Spans+s]
		}
	}
	for s := range out.StageOccupancy {
		out.StageOccupancy[s] /= float64(reps)
	}
	out.Throughput = summarize(throughputs)
	out.Latency = summarize(latencies)
	out.LatencyP50 = summarize(p50s)
	out.LatencyP95 = summarize(p95s)
	out.LatencyP99 = summarize(p99s)
	return out, nil
}
