package engine

import "fmt"

// Kernel selects the executor RunWaves steers unbuffered waves with.
// The two kernels are byte-identical per trial stream — the bit-sliced
// one packs 64 trials into uint64 bit-planes and steers them with
// word-parallel boolean algebra (see internal/sim/bitfabric.go), the
// scalar one walks packets one by one — so the choice affects only
// throughput, never results. RunBuffered ignores it (the queued model
// has no bit-sliced form).
type Kernel uint8

const (
	// KernelAuto picks the bit-sliced kernel whenever the fabric
	// qualifies (Fabric.BitSliceable) and falls back to scalar. The
	// default: zero value, zero configuration.
	KernelAuto Kernel = iota
	// KernelScalar forces the one-packet-at-a-time kernel (the oracle
	// the bit-sliced kernel is verified against).
	KernelScalar
	// KernelBit forces the bit-sliced kernel; RunWaves fails when the
	// fabric is not bit-sliceable rather than silently degrading.
	KernelBit
)

func (k Kernel) String() string {
	switch k {
	case KernelAuto:
		return "auto"
	case KernelScalar:
		return "scalar"
	case KernelBit:
		return "bit"
	}
	return fmt.Sprintf("Kernel(%d)", uint8(k))
}

// ParseKernel maps the wire/flag spelling of a kernel choice ("auto",
// "scalar", "bit"; empty means auto) to its Kernel value.
func ParseKernel(s string) (Kernel, error) {
	switch s {
	case "", "auto":
		return KernelAuto, nil
	case "scalar":
		return KernelScalar, nil
	case "bit":
		return KernelBit, nil
	}
	return KernelAuto, fmt.Errorf(`engine: unknown kernel %q (want "auto", "scalar" or "bit")`, s)
}
