package engine

import "math/rand/v2"

// splitmix64 is the canonical 64-bit finalizer used to decorrelate
// nearby seeds; two inputs differing in one bit produce statistically
// independent outputs.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// SeedPair derives the two PCG seed words for stream `stream` of a root
// seed. Every trial of an engine run gets its own stream, so results
// depend only on (root, trial index) — never on which worker ran the
// trial or in what order.
func SeedPair(root, stream uint64) (uint64, uint64) {
	hi := splitmix64(root ^ 0x6d696e6571756976) // "minequiv"
	lo := splitmix64(hi + stream)
	return splitmix64(lo ^ root), splitmix64(lo + 0x9e3779b97f4a7c15)
}

// NewRand returns the deterministic PCG stream for (root, stream). This
// is the repo-wide seed-derivation discipline: all non-test consumers
// construct their generators here (or inline with rand.NewPCG for
// single-stream uses).
func NewRand(root, stream uint64) *rand.Rand {
	hi, lo := SeedPair(root, stream)
	return rand.New(rand.NewPCG(hi, lo))
}

// FaultRoot derives the root of the fault-sampling stream family from a
// run's root seed, decorrelated from every NewRand traffic stream of
// the same root. Exposed (alongside SeedPair) so allocation-free
// executors can reseed preallocated PCGs to the exact NewFaultRand
// stream instead of constructing generators per trial.
func FaultRoot(root uint64) uint64 {
	return splitmix64(root ^ 0x6661756c7473) // "faults"
}

// NewFaultRand returns the fault-sampling stream for (root, stream): a
// PCG stream decorrelated from every NewRand traffic stream of the same
// root, so adding a FaultPlan to a run never perturbs its traffic draws
// — trial t's traffic is identical with and without faults, and a
// degraded run is reproducible from (root, plan) alone.
func NewFaultRand(root, stream uint64) *rand.Rand {
	return NewRand(FaultRoot(root), stream)
}
