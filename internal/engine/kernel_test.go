package engine

import (
	"context"
	"strings"
	"testing"

	"minequiv/internal/perm"
	"minequiv/internal/sim"
	"minequiv/internal/topology"
)

func TestKernelStringAndParse(t *testing.T) {
	for _, k := range []Kernel{KernelAuto, KernelScalar, KernelBit} {
		got, err := ParseKernel(k.String())
		if err != nil || got != k {
			t.Errorf("ParseKernel(%q) = %v, %v; want %v", k.String(), got, err, k)
		}
	}
	if k, err := ParseKernel(""); err != nil || k != KernelAuto {
		t.Errorf(`ParseKernel("") = %v, %v; want auto`, k, err)
	}
	if _, err := ParseKernel("simd"); err == nil {
		t.Errorf("ParseKernel accepted an unknown kernel")
	}
	if s := Kernel(99).String(); !strings.Contains(s, "99") {
		t.Errorf("Kernel(99).String() = %q", s)
	}
}

// TestKernelsByteIdentical is the tentpole's acceptance property: the
// bit-sliced and scalar kernels produce byte-identical pooled
// aggregates — every counter and both throughput moments — over
// randomized networks × loads × fault plans × worker counts, intact
// and faulted, including wave counts that mix full 64-wide batches
// with a scalar remainder.
func TestKernelsByteIdentical(t *testing.T) {
	plans := []*sim.FaultPlan{
		nil,
		{Faults: []sim.Fault{
			{Kind: sim.SwitchDead, Stage: 0, Cell: 2},
			{Kind: sim.SwitchStuck1, Stage: 2, Cell: 1},
			{Kind: sim.LinkDown, Stage: 1, Link: 5},
		}},
		{SwitchDeadRate: 0.03, SwitchStuckRate: 0.08, LinkDownRate: 0.03},
	}
	loads := []struct {
		name string
		tr   sim.Traffic
	}{
		{"uniform", sim.Uniform()},
		{"bernoulli-0.45", sim.Bernoulli(0.45)},
		{"bursty", sim.Bursty(0.3, 1.0, 0.1)},
	}
	for _, name := range topology.Names() {
		for _, n := range []int{4, 6} {
			f := fabricFor(t, name, n)
			for pi, plan := range plans {
				for _, ld := range loads {
					// 150 waves = two full bit batches plus a 22-wave
					// scalar remainder.
					const waves, seed = 150, 0xC0FFEE
					base, err := RunWaves(context.Background(), f, ld.tr, waves,
						Config{Workers: 1, Seed: seed, Faults: plan, Kernel: KernelScalar})
					if err != nil {
						t.Fatal(err)
					}
					for _, kernel := range []Kernel{KernelBit, KernelAuto} {
						for _, workers := range []int{1, 3, 8} {
							got, err := RunWaves(context.Background(), f, ld.tr, waves,
								Config{Workers: workers, Seed: seed, Faults: plan, Kernel: kernel})
							if err != nil {
								t.Fatal(err)
							}
							if got != base {
								t.Fatalf("%s/n=%d/plan%d/%s kernel=%v workers=%d diverged from scalar:\n bit    %+v\n scalar %+v",
									name, n, pi, ld.name, kernel, workers, got, base)
							}
						}
					}
				}
			}
		}
	}
}

// TestKernelBitRejectsScalarOnlyFabric: forcing the bit kernel on a
// fabric outside its domain must fail loudly, while auto degrades to
// the scalar kernel silently.
func TestKernelBitRejectsScalarOnlyFabric(t *testing.T) {
	N := 16
	perms := make([]perm.Perm, 3)
	for i := range perms {
		perms[i] = perm.Identity(N)
	}
	f, err := sim.NewFabric(perms)
	if err != nil {
		t.Fatal(err)
	}
	if f.BitSliceable() {
		t.Fatal("identity-linked fabric reported bit-sliceable")
	}
	if _, err := RunWaves(context.Background(), f, sim.Uniform(), 10, Config{Kernel: KernelBit}); err == nil {
		t.Fatal("KernelBit on a scalar-only fabric: no error")
	}
	if _, err := RunWaves(context.Background(), f, sim.Uniform(), 10, Config{Kernel: KernelAuto}); err != nil {
		t.Fatalf("KernelAuto on a scalar-only fabric: %v", err)
	}
	if _, err := RunWaves(context.Background(), f, sim.Uniform(), 10, Config{Kernel: Kernel(42)}); err == nil {
		t.Fatal("unknown kernel value: no error")
	}
}
