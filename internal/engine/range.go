package engine

import (
	"context"
	"fmt"
	"math"
	"math/rand/v2"

	"minequiv/internal/sim"
)

// WavePartial is the exact partial aggregate of a contiguous trial
// range [Lo, Hi) of a wave run. Every field is an integer sum of
// per-trial counters, so merging partials is exact and associative:
// any split of [0, waves) into ranges, run in any order on any
// machine, merges to the same WavePartial — which is what lets a
// checkpointed sweep resume after a crash and still produce results
// byte-identical to an uninterrupted run (the jobs plane's core
// contract; see internal/jobs).
//
// The three quadratic sums carry what the linearized ratio-estimator
// variance needs: with m = Delivered/Offered,
//
//	sq = Σ_t (d_t − m·o_t)² = SumDD − 2m·SumDO + m²·SumOO
//
// and per-trial counts are bounded by the terminal count (≤ 2^16), so
// the products fit int64 exactly for > 10^9 trials — no floating-point
// accumulation order can leak into the result.
type WavePartial struct {
	Lo           int   `json:"lo"` // trial range [Lo, Hi)
	Hi           int   `json:"hi"`
	Offered      int64 `json:"offered"`
	Delivered    int64 `json:"delivered"`
	Dropped      int64 `json:"dropped"`
	Misrouted    int64 `json:"misrouted"`
	FaultDropped int64 `json:"faultDropped"`
	NonEmpty     int64 `json:"nonEmpty"` // trials with Offered > 0
	SumDD        int64 `json:"sumDD"`    // Σ delivered²
	SumDO        int64 `json:"sumDO"`    // Σ delivered·offered
	SumOO        int64 `json:"sumOO"`    // Σ offered²
}

// Trials returns the number of trials the partial covers.
func (p WavePartial) Trials() int { return p.Hi - p.Lo }

// add folds one trial's counters in.
func (p *WavePartial) add(offered, delivered, dropped, misrouted, faultDropped int) {
	o, d := int64(offered), int64(delivered)
	p.Offered += o
	p.Delivered += d
	p.Dropped += int64(dropped)
	p.Misrouted += int64(misrouted)
	p.FaultDropped += int64(faultDropped)
	if o > 0 {
		p.NonEmpty++
	}
	p.SumDD += d * d
	p.SumDO += d * o
	p.SumOO += o * o
}

// Merge folds q into p. Merging is exact integer addition, so the
// result is independent of merge order; the range bounds extend to
// cover both operands (merging non-adjacent ranges is allowed — the
// sums stay correct, only the [Lo, Hi) annotation turns into a hull).
func (p *WavePartial) Merge(q WavePartial) {
	if q.Trials() == 0 {
		return
	}
	if p.Trials() == 0 {
		*p = q
		return
	}
	if q.Lo < p.Lo {
		p.Lo = q.Lo
	}
	if q.Hi > p.Hi {
		p.Hi = q.Hi
	}
	p.Offered += q.Offered
	p.Delivered += q.Delivered
	p.Dropped += q.Dropped
	p.Misrouted += q.Misrouted
	p.FaultDropped += q.FaultDropped
	p.NonEmpty += q.NonEmpty
	p.SumDD += q.SumDD
	p.SumDO += q.SumDO
	p.SumOO += q.SumOO
}

// Throughput finalizes the pooled delivered/offered ratio with the
// linearized ratio-estimator dispersion, computed from the exact sums
// (same estimator as RunWaves; the only difference is that the
// quadratic expansion here is exact where RunWaves accumulates the
// residuals in floating point, so the two can differ in the last ulp
// of Std — the mean is bit-equal).
func (p WavePartial) Throughput() Stats {
	if p.Offered == 0 {
		return Stats{}
	}
	m := float64(p.Delivered) / float64(p.Offered)
	st := Stats{N: int(p.NonEmpty), Mean: m}
	if st.N > 1 {
		sq := float64(p.SumDD) - 2*m*float64(p.SumDO) + m*m*float64(p.SumOO)
		if sq < 0 {
			sq = 0 // the exact value is ≥ 0; clamp float cancellation noise
		}
		st.Std = float64(st.N) / float64(p.Offered) * math.Sqrt(sq/float64(st.N-1))
	}
	return st
}

// RunWaveRange runs the trials [lo, hi) of the wave run defined by
// (cfg.Seed, pattern, cfg.Faults) and returns their exact partial
// aggregate. Trial t draws from the same NewRand(Seed, t) and
// NewFaultRand(Seed, t) streams RunWaves uses, for either kernel, so
// any partition of [0, waves) into ranges merges to the aggregate of
// one full run — regardless of which process ran which range, in what
// order, or how many times it was retried in between.
//
// The range is executed sequentially on the calling goroutine: the
// shard IS the unit of parallelism for callers like the jobs plane,
// which runs many ranges concurrently on its own workers. Cancelling
// ctx aborts between trials (between 64-trial batches under the
// bit-sliced kernel) and returns ctx.Err().
func RunWaveRange(ctx context.Context, f *sim.Fabric, pattern sim.Traffic, lo, hi int, cfg Config) (WavePartial, error) {
	if lo < 0 || hi <= lo {
		return WavePartial{}, fmt.Errorf("engine: bad trial range [%d,%d)", lo, hi)
	}
	plan := cfg.faultPlan()
	if plan != nil {
		if err := plan.Validate(f); err != nil {
			return WavePartial{}, err
		}
	}
	useBit := false
	switch cfg.Kernel {
	case KernelAuto:
		useBit = f.BitSliceable()
	case KernelScalar:
	case KernelBit:
		if !f.BitSliceable() {
			return WavePartial{}, fmt.Errorf(`engine: kernel "bit" requested but the fabric is not bit-sliceable (needs Banyan reachability and <= 16 stages)`)
		}
		useBit = true
	default:
		return WavePartial{}, fmt.Errorf("engine: unknown kernel %d", uint8(cfg.Kernel))
	}
	if useBit {
		return runRangeBit(ctx, f, pattern, lo, hi, cfg, plan)
	}
	return runRangeScalar(ctx, f, pattern, lo, hi, cfg, plan)
}

// runRangeScalar walks the range one trial at a time on the scalar
// kernel, following the same fault-sampling discipline as
// runWavesScalar: pinned-only plans sample once, random rates resample
// per trial from the dedicated fault stream.
func runRangeScalar(ctx context.Context, f *sim.Fabric, pattern sim.Traffic, lo, hi int, cfg Config, plan *sim.FaultPlan) (WavePartial, error) {
	resample := plan != nil && plan.Random()
	runner := f.NewWaveRunner()
	var faults *sim.FaultState
	if plan != nil {
		faults = f.NewFaultState()
		_ = runner.SetFaults(faults)
		if !resample {
			faults.Resample(*plan, nil)
		}
	}
	p := WavePartial{Lo: lo, Hi: hi}
	for t := lo; t < hi; t++ {
		if err := ctx.Err(); err != nil {
			return WavePartial{}, err
		}
		if resample {
			faults.Resample(*plan, NewFaultRand(cfg.Seed, uint64(t)))
		}
		res, err := runner.RunTraffic(pattern, NewRand(cfg.Seed, uint64(t)))
		if err != nil {
			return WavePartial{}, err
		}
		p.add(res.Offered, res.Delivered, res.Dropped, res.Misrouted, res.FaultDropped)
	}
	return p, nil
}

// runRangeBit executes the range in 64-wide batches on the bit-sliced
// kernel, lane j of a batch starting at t0 running trial t0+j on the
// exact NewRand/NewFaultRand streams the scalar kernel would use; a
// trailing remainder shorter than 64 trials runs scalar. Batches are
// anchored at lo (not at multiples of 64): per-trial byte-identity is
// a property of the reseeded streams, so batch alignment cannot leak
// into the sums.
func runRangeBit(ctx context.Context, f *sim.Fabric, pattern sim.Traffic, lo, hi int, cfg Config, plan *sim.FaultPlan) (WavePartial, error) {
	resample := plan != nil && plan.Random()
	bit, err := f.NewBitWaveRunner()
	if err != nil {
		return WavePartial{}, err
	}
	scalar := f.NewWaveRunner()
	var (
		faults *sim.FaultState
		bits   *sim.BitFaultState
	)
	if plan != nil {
		faults = f.NewFaultState()
		bits = f.NewBitFaultState()
		_ = scalar.SetFaults(faults)
		_ = bit.SetFaults(bits)
		if !resample {
			faults.Resample(*plan, nil)
			_ = bits.SetAll(faults)
		}
	}
	froot := FaultRoot(cfg.Seed)
	var pcg [64]rand.PCG
	var rngs [64]*rand.Rand
	for j := range rngs {
		rngs[j] = rand.New(&pcg[j])
	}
	var fpcg rand.PCG
	frng := rand.New(&fpcg)

	p := WavePartial{Lo: lo, Hi: hi}
	t0 := lo
	for ; t0+64 <= hi; t0 += 64 {
		if err := ctx.Err(); err != nil {
			return WavePartial{}, err
		}
		for j := 0; j < 64; j++ {
			pcg[j].Seed(SeedPair(cfg.Seed, uint64(t0+j)))
		}
		if resample {
			for j := 0; j < 64; j++ {
				fpcg.Seed(SeedPair(froot, uint64(t0+j)))
				faults.Resample(*plan, frng)
				if err := bits.SetLane(j, faults); err != nil {
					return WavePartial{}, err
				}
			}
		}
		res, err := bit.RunTraffic(pattern, rngs[:])
		if err != nil {
			return WavePartial{}, err
		}
		for j := 0; j < 64; j++ {
			p.add(res.Offered[j], res.Delivered[j], res.Dropped[j], res.Misrouted[j], res.FaultDropped[j])
		}
	}
	for t := t0; t < hi; t++ {
		if err := ctx.Err(); err != nil {
			return WavePartial{}, err
		}
		if resample {
			fpcg.Seed(SeedPair(froot, uint64(t)))
			faults.Resample(*plan, frng)
		}
		pcg[0].Seed(SeedPair(cfg.Seed, uint64(t)))
		res, err := scalar.RunTraffic(pattern, rngs[0])
		if err != nil {
			return WavePartial{}, err
		}
		p.add(res.Offered, res.Delivered, res.Dropped, res.Misrouted, res.FaultDropped)
	}
	return p, nil
}
