package engine

import "math"

// Stats summarizes one per-trial metric.
type Stats struct {
	N    int // trials contributing a value
	Mean float64
	Std  float64 // sample standard deviation (0 when N < 2)
}

// CI95 returns the half-width of the normal-approximation 95% confidence
// interval for the mean.
func (s Stats) CI95() float64 {
	if s.N < 2 {
		return 0
	}
	return 1.96 * s.Std / math.Sqrt(float64(s.N))
}

// summarize reduces xs with a two-pass mean/variance so the result is a
// pure function of the slice contents in order — identical however many
// workers produced the values.
func summarize(xs []float64) Stats {
	s := Stats{N: len(xs)}
	if s.N == 0 {
		return s
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	s.Mean = sum / float64(s.N)
	if s.N < 2 {
		return s
	}
	var sq float64
	for _, x := range xs {
		d := x - s.Mean
		sq += d * d
	}
	s.Std = math.Sqrt(sq / float64(s.N-1))
	return s
}
