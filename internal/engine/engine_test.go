package engine

import (
	"context"
	"errors"
	"math"
	"math/rand/v2"
	"reflect"
	"sync/atomic"
	"testing"

	"minequiv/internal/sim"
	"minequiv/internal/topology"
)

func fabricFor(t testing.TB, name string, n int) *sim.Fabric {
	t.Helper()
	f, err := sim.NewFabric(topology.MustBuild(name, n).LinkPerms)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// TestWaveDeterminismAcrossWorkers is the engine's core contract: the
// same root seed produces byte-identical aggregate statistics for 1
// worker and for K workers, because trial t always gets stream
// NewRand(seed, t) and reduction happens in trial order.
func TestWaveDeterminismAcrossWorkers(t *testing.T) {
	f := fabricFor(t, topology.NameOmega, 6)
	for _, pattern := range []sim.Traffic{sim.Uniform(), sim.Bernoulli(0.6), sim.Bursty(0.3, 1.0, 0.1)} {
		base, err := RunWaves(context.Background(), f, pattern, 96, Config{Workers: 1, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 3, 8, 17} {
			got, err := RunWaves(context.Background(), f, pattern, 96, Config{Workers: workers, Seed: 7})
			if err != nil {
				t.Fatal(err)
			}
			if got != base {
				t.Fatalf("workers=%d diverged:\n%+v\n%+v", workers, got, base)
			}
		}
	}
}

// TestBufferedDeterminismAcrossWorkers: same contract for the buffered
// replication model on the reused per-worker BufferedRunner, including
// the multi-lane configuration and the percentile/occupancy aggregates.
func TestBufferedDeterminismAcrossWorkers(t *testing.T) {
	f := fabricFor(t, topology.NameBaseline, 4)
	for _, cfg := range []sim.BufferedConfig{
		{Load: 0.7, Queue: 3, Cycles: 300, Warmup: 30},
		{Load: 1.0, Queue: 2, Lanes: 3, Cycles: 300, Warmup: 30, Arbiter: sim.ArbRoundRobin},
		{Queue: 2, Lanes: 2, Cycles: 200, Warmup: 20, Pattern: sim.Thinned(0.5, sim.Transpose())},
	} {
		base, err := RunBuffered(context.Background(), f, cfg, 12, Config{Workers: 1, Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 5, 12} {
			got, err := RunBuffered(context.Background(), f, cfg, 12, Config{Workers: workers, Seed: 11})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, base) {
				t.Fatalf("workers=%d diverged:\n%+v\n%+v", workers, got, base)
			}
		}
	}
}

// TestSeedChangesResults: different root seeds must not reproduce the
// same sample path.
func TestSeedChangesResults(t *testing.T) {
	f := fabricFor(t, topology.NameOmega, 5)
	a, err := RunWaves(context.Background(), f, sim.Uniform(), 32, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunWaves(context.Background(), f, sim.Uniform(), 32, Config{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Fatal("distinct seeds produced identical aggregates")
	}
}

// TestWaveStatsTrackAnalytic: the parallel engine reproduces the same
// physics as the sequential simulator (Patel's blocking recurrence).
func TestWaveStatsTrackAnalytic(t *testing.T) {
	n := 6
	f := fabricFor(t, topology.NameOmega, n)
	st, err := RunWaves(context.Background(), f, sim.Uniform(), 400, Config{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	want := sim.AnalyticUniformThroughput(n)
	if math.Abs(st.Throughput.Mean-want) > 0.02 {
		t.Fatalf("engine throughput %v vs analytic %v", st.Throughput.Mean, want)
	}
	if st.Offered != st.Delivered+st.Dropped+st.Misrouted {
		t.Fatalf("conservation violated: %+v", st)
	}
	if st.Throughput.N != 400 || st.Throughput.Std <= 0 || st.Throughput.CI95() <= 0 {
		t.Fatalf("degenerate stats: %+v", st.Throughput)
	}
}

// TestBufferedStatsAggregate sanity-checks sums and per-replication
// dispersion.
func TestBufferedStatsAggregate(t *testing.T) {
	f := fabricFor(t, topology.NameFlip, 4)
	cfg := sim.BufferedConfig{Load: 0.4, Queue: 4, Cycles: 500, Warmup: 50}
	st, err := RunBuffered(context.Background(), f, cfg, 6, Config{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if st.Replications != 6 || st.Delivered == 0 || st.Injected == 0 {
		t.Fatalf("empty aggregate: %+v", st)
	}
	if st.Latency.Mean < float64(f.Spans) {
		t.Fatalf("mean latency %v below pipeline depth %d", st.Latency.Mean, f.Spans)
	}
	if math.Abs(st.Throughput.Mean-0.4) > 0.1 {
		t.Fatalf("low-load throughput %v far from offered 0.4", st.Throughput.Mean)
	}
	if st.LatencyP50.Mean < float64(f.Spans) || st.LatencyP50.Mean > st.LatencyP95.Mean ||
		st.LatencyP95.Mean > st.LatencyP99.Mean {
		t.Fatalf("percentile aggregates disordered: %+v %+v %+v",
			st.LatencyP50, st.LatencyP95, st.LatencyP99)
	}
	if len(st.StageOccupancy) != f.Spans {
		t.Fatalf("stage occupancy has %d entries, want %d", len(st.StageOccupancy), f.Spans)
	}
	if st.Dropped != 0 {
		t.Fatalf("banyan fabric dropped %d packets", st.Dropped)
	}
	if st.MaxOccupancy < 1 || st.MaxOccupancy > 4 {
		t.Fatalf("max occupancy %d outside [1, queue]", st.MaxOccupancy)
	}
}

// TestThroughputIsPooledRatio: for variable-load traffic the headline
// throughput must be the pooled delivered/offered ratio (what the
// analytic recurrence models), not an unweighted mean of per-wave
// fractions — near-idle waves deliver almost everything and would
// otherwise dominate the average.
func TestThroughputIsPooledRatio(t *testing.T) {
	f := fabricFor(t, topology.NameOmega, 6)
	st, err := RunWaves(context.Background(), f, sim.Bursty(0.2, 1.0, 0.05), 200, Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	want := float64(st.Delivered) / float64(st.Offered)
	if math.Abs(st.Throughput.Mean-want) > 1e-12 {
		t.Fatalf("throughput %v != pooled ratio %v", st.Throughput.Mean, want)
	}
	if st.Throughput.CI95() <= 0 {
		t.Fatalf("degenerate CI: %+v", st.Throughput)
	}
}

func TestEngineErrors(t *testing.T) {
	f := fabricFor(t, topology.NameOmega, 3)
	if _, err := RunWaves(context.Background(), f, sim.Uniform(), 0, Config{}); err == nil {
		t.Error("zero waves accepted")
	}
	if _, err := RunBuffered(context.Background(), f, sim.BufferedConfig{Load: 0.5, Queue: 1, Cycles: 10}, 0, Config{}); err == nil {
		t.Error("zero replications accepted")
	}
	// A trial error (out-of-range destination) must propagate out of
	// the worker pool.
	bad := sim.Traffic(func(dsts []int, _ *rand.Rand) {
		for i := range dsts {
			dsts[i] = len(dsts) // one past the last terminal
		}
	})
	if _, err := RunWaves(context.Background(), f, bad, 16, Config{Workers: 4}); err == nil {
		t.Error("out-of-range traffic accepted")
	}
	// An invalid buffered config must propagate too.
	if _, err := RunBuffered(context.Background(), f, sim.BufferedConfig{Load: 2, Queue: 1, Cycles: 10}, 4, Config{Workers: 2}); err == nil {
		t.Error("invalid buffered config accepted")
	}
}

// TestCancellation: a cancelled context stops a sharded run between
// trials and surfaces ctx.Err(); an already-cancelled context runs no
// trials at all.
func TestCancellation(t *testing.T) {
	f := fabricFor(t, topology.NameOmega, 6)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunWaves(ctx, f, sim.Uniform(), 1<<20, Config{Workers: 2, Seed: 1}); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	bc := sim.BufferedConfig{Load: 0.9, Queue: 4, Cycles: 200, Warmup: 20}
	if _, err := RunBuffered(ctx, f, bc, 1<<16, Config{Workers: 2, Seed: 1}); !errors.Is(err, context.Canceled) {
		t.Fatalf("buffered: want context.Canceled, got %v", err)
	}
	// Mid-run cancellation: cancel from a trial callback and check the
	// run aborts long before the full trial count.
	var ran atomic.Int64
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	pattern := sim.Traffic(func(dsts []int, rng *rand.Rand) {
		if ran.Add(1) == 8 {
			cancel2()
		}
		sim.Uniform()(dsts, rng)
	})
	_, err := RunWaves(ctx2, f, pattern, 1<<20, Config{Workers: 2, Seed: 1})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-run: want context.Canceled, got %v", err)
	}
	if n := ran.Load(); n >= 1<<20 {
		t.Fatalf("run did not stop early (ran %d trials)", n)
	}
}

// TestNewRandDeterminism: NewRand is a pure function of (root, stream),
// and distinct streams decorrelate.
func TestNewRandDeterminism(t *testing.T) {
	a, b := NewRand(9, 4), NewRand(9, 4)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same (root, stream) diverged")
		}
	}
	c, d := NewRand(9, 5), NewRand(10, 4)
	same := 0
	e := NewRand(9, 4)
	for i := 0; i < 64; i++ {
		x := e.Uint64()
		if c.Uint64() == x {
			same++
		}
		if d.Uint64() == x {
			same++
		}
	}
	if same > 4 {
		t.Fatalf("neighboring streams correlated: %d collisions", same)
	}
}

// TestFaultDeterminismAcrossWorkers extends the core contract to
// degraded runs: with a FaultPlan in force (pinned faults plus random
// per-trial rates) the aggregates stay byte-identical for any worker
// count, for both models.
func TestFaultDeterminismAcrossWorkers(t *testing.T) {
	f := fabricFor(t, topology.NameOmega, 5)
	plan := &sim.FaultPlan{
		Faults:          []sim.Fault{{Kind: sim.SwitchDead, Stage: 1, Cell: 2}},
		SwitchDeadRate:  0.02,
		SwitchStuckRate: 0.05,
		LinkDownRate:    0.02,
	}
	base, err := RunWaves(context.Background(), f, sim.Uniform(), 64, Config{Workers: 1, Seed: 21, Faults: plan})
	if err != nil {
		t.Fatal(err)
	}
	if base.FaultDropped == 0 {
		t.Fatal("fault plan produced no fault drops")
	}
	for _, workers := range []int{2, 7, 16} {
		got, err := RunWaves(context.Background(), f, sim.Uniform(), 64, Config{Workers: workers, Seed: 21, Faults: plan})
		if err != nil {
			t.Fatal(err)
		}
		if got != base {
			t.Fatalf("faulty wave run diverged at workers=%d:\n%+v\n%+v", workers, got, base)
		}
	}

	bc := sim.BufferedConfig{Load: 0.8, Queue: 3, Lanes: 2, Cycles: 250, Warmup: 25}
	bbase, err := RunBuffered(context.Background(), f, bc, 8, Config{Workers: 1, Seed: 22, Faults: plan})
	if err != nil {
		t.Fatal(err)
	}
	if bbase.FaultDropped == 0 {
		t.Fatal("buffered fault plan produced no fault drops")
	}
	for _, workers := range []int{3, 8} {
		got, err := RunBuffered(context.Background(), f, bc, 8, Config{Workers: workers, Seed: 22, Faults: plan})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, bbase) {
			t.Fatalf("faulty buffered run diverged at workers=%d:\n%+v\n%+v", workers, got, bbase)
		}
	}
}

// TestFaultsDoNotPerturbTraffic: adding a plan must leave every trial's
// traffic stream untouched — with fault rates of zero probability the
// run is identical to a fault-free one, and with a pinned plan the
// offered counts match the intact run exactly.
func TestFaultsDoNotPerturbTraffic(t *testing.T) {
	f := fabricFor(t, topology.NameOmega, 5)
	intact, err := RunWaves(context.Background(), f, sim.Bernoulli(0.7), 48, Config{Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	pinned := &sim.FaultPlan{Faults: []sim.Fault{{Kind: sim.SwitchDead, Stage: 0, Cell: 1}}}
	faulty, err := RunWaves(context.Background(), f, sim.Bernoulli(0.7), 48, Config{Seed: 31, Faults: pinned})
	if err != nil {
		t.Fatal(err)
	}
	if faulty.Offered != intact.Offered {
		t.Fatalf("fault plan changed the offered traffic: %d vs %d", faulty.Offered, intact.Offered)
	}
	if faulty.Delivered >= intact.Delivered {
		t.Fatalf("dead switch did not degrade delivery: %d >= %d", faulty.Delivered, intact.Delivered)
	}
	// An explicitly empty plan is the intact run, byte for byte.
	empty, err := RunWaves(context.Background(), f, sim.Bernoulli(0.7), 48, Config{Seed: 31, Faults: &sim.FaultPlan{}})
	if err != nil {
		t.Fatal(err)
	}
	if empty != intact {
		t.Fatalf("empty plan diverged from intact run:\n%+v\n%+v", empty, intact)
	}

	// Buffered model: injection runs on its own per-trial stream, so the
	// offered-attempt sequence (Injected + Rejected) is identical with
	// and without a plan — faults change acceptance and delivery, never
	// what the sources offer.
	bc := sim.BufferedConfig{Load: 0.8, Queue: 2, Cycles: 300, Warmup: 30}
	bIntact, err := RunBuffered(context.Background(), f, bc, 6, Config{Seed: 33})
	if err != nil {
		t.Fatal(err)
	}
	bFaulty, err := RunBuffered(context.Background(), f, bc, 6, Config{Seed: 33, Faults: pinned})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := bFaulty.Injected+bFaulty.Rejected, bIntact.Injected+bIntact.Rejected; got != want {
		t.Fatalf("fault plan changed buffered offered attempts: %d vs %d", got, want)
	}
	if bFaulty.Delivered >= bIntact.Delivered {
		t.Fatalf("buffered dead switch did not degrade delivery: %d >= %d", bFaulty.Delivered, bIntact.Delivered)
	}
}

// TestFaultReproducibleFromSeedAndPlan: a degraded run is a pure
// function of (seed, plan); rerunning reproduces it and changing either
// input changes the outcome.
func TestFaultReproducibleFromSeedAndPlan(t *testing.T) {
	f := fabricFor(t, topology.NameOmega, 5)
	plan := &sim.FaultPlan{SwitchDeadRate: 0.08, LinkDownRate: 0.04}
	run := func(seed uint64, p *sim.FaultPlan) WaveStats {
		st, err := RunWaves(context.Background(), f, sim.Uniform(), 40, Config{Seed: seed, Faults: p})
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	a, b := run(5, plan), run(5, plan)
	if a != b {
		t.Fatalf("same (seed, plan) diverged:\n%+v\n%+v", a, b)
	}
	if c := run(6, plan); c == a {
		t.Fatal("different seed reproduced the same degraded run")
	}
	if d := run(5, &sim.FaultPlan{SwitchDeadRate: 0.3}); d == a {
		t.Fatal("different plan reproduced the same degraded run")
	}
	// Invalid plans are rejected up front.
	if _, err := RunWaves(context.Background(), f, sim.Uniform(), 8,
		Config{Seed: 5, Faults: &sim.FaultPlan{SwitchDeadRate: 2}}); err == nil {
		t.Fatal("invalid fault rate accepted")
	}
	if _, err := RunBuffered(context.Background(), f, sim.BufferedConfig{Load: 0.5, Queue: 2, Cycles: 20}, 2,
		Config{Seed: 5, Faults: &sim.FaultPlan{Faults: []sim.Fault{{Kind: sim.LinkDown, Stage: 9, Link: 0}}}}); err == nil {
		t.Fatal("out-of-range fault accepted")
	}
}
