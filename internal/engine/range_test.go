package engine

import (
	"context"
	"math"
	"testing"

	"minequiv/internal/perm"
	"minequiv/internal/sim"
	"minequiv/internal/topology"
)

// runRange is a test shorthand over RunWaveRange with a background ctx.
func runRange(t *testing.T, f *sim.Fabric, pattern sim.Traffic, lo, hi int, cfg Config) WavePartial {
	t.Helper()
	p, err := RunWaveRange(context.Background(), f, pattern, lo, hi, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestRangeSplitMergeExact is the jobs plane's foundation: splitting
// [0, waves) into arbitrary contiguous ranges and merging the partials
// in any order must reproduce the single-range partial field-for-field
// — integer sums make the merge exact, not approximately commutative.
func TestRangeSplitMergeExact(t *testing.T) {
	f := fabricFor(t, topology.NameOmega, 6)
	cfgs := []Config{
		{Seed: 7, Kernel: KernelScalar},
		{Seed: 7, Kernel: KernelBit},
		{Seed: 7, Kernel: KernelScalar, Faults: &sim.FaultPlan{SwitchDeadRate: 0.05}},
		{Seed: 7, Kernel: KernelBit, Faults: &sim.FaultPlan{SwitchDeadRate: 0.05}},
	}
	const waves = 200
	splits := [][]int{
		{0, waves},
		{0, 1, waves},
		{0, 63, 64, 65, 127, 128, waves},
		{0, 50, 100, 150, waves},
		{0, 199, waves},
	}
	for _, cfg := range cfgs {
		whole := runRange(t, f, sim.Uniform(), 0, waves, cfg)
		for _, cuts := range splits {
			var merged WavePartial
			// Merge back-to-front so order independence is exercised too.
			for i := len(cuts) - 2; i >= 0; i-- {
				part := runRange(t, f, sim.Uniform(), cuts[i], cuts[i+1], cfg)
				merged.Merge(part)
			}
			if merged != whole {
				t.Fatalf("kernel=%v cuts=%v merged != whole:\n%+v\n%+v", cfg.Kernel, cuts, merged, whole)
			}
		}
	}
}

// TestRangeKernelsAgree: the scalar and bit-sliced executors must
// produce identical partials for any range, including misaligned ones
// where the bit path's 64-wide batches do not start at a multiple of
// 64 — per-trial byte identity comes from the reseeded streams, not
// from batch alignment.
func TestRangeKernelsAgree(t *testing.T) {
	f := fabricFor(t, topology.NameOmega, 6)
	for _, r := range [][2]int{{0, 64}, {0, 130}, {37, 201}, {63, 65}, {100, 110}} {
		for _, plan := range []*sim.FaultPlan{nil, {SwitchDeadRate: 0.05}} {
			s := runRange(t, f, sim.Bernoulli(0.7), r[0], r[1], Config{Seed: 3, Kernel: KernelScalar, Faults: plan})
			b := runRange(t, f, sim.Bernoulli(0.7), r[0], r[1], Config{Seed: 3, Kernel: KernelBit, Faults: plan})
			if s != b {
				t.Fatalf("range %v plan=%v kernels disagree:\n%+v\n%+v", r, plan, s, b)
			}
		}
	}
}

// TestRangeMatchesRunWaves: a full-range partial must agree with
// RunWaves on every integer counter, exactly on the throughput mean,
// and to float tolerance on Std (RunWaves accumulates residuals in
// float where the partial expands the quadratic exactly).
func TestRangeMatchesRunWaves(t *testing.T) {
	f := fabricFor(t, topology.NameBaseline, 6)
	for _, cfg := range []Config{
		{Seed: 11},
		{Seed: 11, Faults: &sim.FaultPlan{SwitchDeadRate: 0.1}},
	} {
		const waves = 150
		ws, err := RunWaves(context.Background(), f, sim.Bernoulli(0.8), waves, cfg)
		if err != nil {
			t.Fatal(err)
		}
		p := runRange(t, f, sim.Bernoulli(0.8), 0, waves, cfg)
		if p.Trials() != ws.Waves || int(p.Offered) != ws.Offered ||
			int(p.Delivered) != ws.Delivered || int(p.Dropped) != ws.Dropped ||
			int(p.Misrouted) != ws.Misrouted || int(p.FaultDropped) != ws.FaultDropped {
			t.Fatalf("counters diverge from RunWaves:\n%+v\n%+v", p, ws)
		}
		st := p.Throughput()
		if st.N != ws.Throughput.N || st.Mean != ws.Throughput.Mean {
			t.Fatalf("throughput N/Mean diverge: %+v vs %+v", st, ws.Throughput)
		}
		if d := math.Abs(st.Std - ws.Throughput.Std); d > 1e-12*(1+ws.Throughput.Std) {
			t.Fatalf("throughput Std diverges beyond float tolerance: %v vs %v", st.Std, ws.Throughput.Std)
		}
	}
}

// TestRangeMergeHull: merging non-adjacent ranges keeps exact sums and
// extends the [Lo, Hi) annotation to the hull; empty partials are
// identity elements.
func TestRangeMergeHull(t *testing.T) {
	f := fabricFor(t, topology.NameOmega, 4)
	a := runRange(t, f, sim.Uniform(), 0, 10, Config{Seed: 5})
	b := runRange(t, f, sim.Uniform(), 20, 30, Config{Seed: 5})
	var m WavePartial
	m.Merge(a)
	m.Merge(WavePartial{}) // identity
	m.Merge(b)
	if m.Lo != 0 || m.Hi != 30 {
		t.Fatalf("hull = [%d,%d), want [0,30)", m.Lo, m.Hi)
	}
	if m.Offered != a.Offered+b.Offered || m.SumDD != a.SumDD+b.SumDD {
		t.Fatalf("non-adjacent merge lost counts: %+v", m)
	}
	var id WavePartial
	id.Merge(a)
	if id != a {
		t.Fatalf("merge into empty != operand: %+v vs %+v", id, a)
	}
}

// TestRangeErrors: invalid ranges, a bit kernel on a non-sliceable
// fabric, and cancelled contexts all fail cleanly.
func TestRangeErrors(t *testing.T) {
	f := fabricFor(t, topology.NameOmega, 4)
	if _, err := RunWaveRange(context.Background(), f, sim.Uniform(), 5, 5, Config{}); err == nil {
		t.Fatal("empty range must error")
	}
	if _, err := RunWaveRange(context.Background(), f, sim.Uniform(), -1, 3, Config{}); err == nil {
		t.Fatal("negative lo must error")
	}
	perms := []perm.Perm{perm.Identity(16), perm.Identity(16), perm.Identity(16)}
	scalarOnly, err := sim.NewFabric(perms)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunWaveRange(context.Background(), scalarOnly, sim.Uniform(), 0, 4, Config{Kernel: KernelBit}); err == nil {
		t.Fatal("bit kernel on a scalar-only fabric must error")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunWaveRange(ctx, f, sim.Uniform(), 0, 100, Config{}); err != context.Canceled {
		t.Fatalf("cancelled ctx: got %v, want context.Canceled", err)
	}
}
