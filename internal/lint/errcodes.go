package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"path"
	"sort"
	"strings"
)

// ErrCodes keeps the serving error-code contract honest: minserve's
// envelope promises stable, documented codes, pinned by golden tests.
// The analyzer activates on any package that declares a string-code
// registry (package-level `Code*` string constants) and then requires
// every `code`/`Code` string field written anywhere in the package to
// come from a registered constant — a raw string literal, or a
// constant that is not in the registry, is a finding. New codes are
// added by extending the registry file, never inline.
var ErrCodes = &Analyzer{
	Name: "errcodes",
	Doc:  "error codes written through the serving envelope must be constants registered in the Code* registry",
}

func init() {
	ErrCodes.Run = runErrCodes
}

// codeRegistry is the discovered registry: the set of registered code
// string values and the files that declare them.
type codeRegistry struct {
	values map[string]bool // registered code strings
	consts map[types.Object]bool
	files  map[string]bool // files declaring registry constants
}

func findRegistry(pass *Pass) *codeRegistry {
	reg := &codeRegistry{
		values: map[string]bool{},
		consts: map[types.Object]bool{},
		files:  map[string]bool{},
	}
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		obj, ok := scope.Lookup(name).(*types.Const)
		if !ok || !strings.HasPrefix(name, "Code") || name == "Code" {
			continue
		}
		if !isString(obj.Type()) || obj.Val().Kind() != constant.String {
			continue
		}
		reg.values[constant.StringVal(obj.Val())] = true
		reg.consts[obj] = true
		reg.files[pass.Fset.Position(obj.Pos()).Filename] = true
	}
	if len(reg.values) == 0 {
		return nil
	}
	return reg
}

func runErrCodes(pass *Pass) error {
	reg := findRegistry(pass)
	if reg == nil {
		return nil // no registry, contract not in force here
	}
	checkValue := func(field string, v ast.Expr) {
		tv, ok := pass.Info.Types[v]
		if !ok || !isString(tv.Type) {
			return
		}
		if tv.Value == nil {
			return // dynamic value (plumbing like envelopeFor); runtime tests pin those
		}
		code := constant.StringVal(tv.Value)
		if code == "" || reg.values[code] {
			// Empty defers to defaultCode-style fallbacks; registered is fine —
			// but a literal should still name the constant.
			if _, isLit := v.(*ast.BasicLit); isLit && code != "" {
				pass.Reportf(v.Pos(), "error code %q written as a string literal; use the registered Code* constant (%s)", code, registryNames(pass, reg))
			}
			return
		}
		pass.Reportf(v.Pos(), "error code %q is not registered in the Code* registry (%s); add it there first", code, registryNames(pass, reg))
	}
	isCodeField := func(name string) bool { return name == "code" || name == "Code" }
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CompositeLit:
				t := pass.Info.Types[n].Type
				if t == nil {
					return true
				}
				if _, ok := t.Underlying().(*types.Struct); !ok {
					return true
				}
				for _, elt := range n.Elts {
					kv, ok := elt.(*ast.KeyValueExpr)
					if !ok {
						continue
					}
					key, ok := kv.Key.(*ast.Ident)
					if ok && isCodeField(key.Name) {
						checkValue(key.Name, kv.Value)
					}
				}
			case *ast.AssignStmt:
				for i, lhs := range n.Lhs {
					sel, ok := lhs.(*ast.SelectorExpr)
					if !ok || !isCodeField(sel.Sel.Name) || i >= len(n.Rhs) {
						continue
					}
					checkValue(sel.Sel.Name, n.Rhs[i])
				}
			}
			return true
		})
	}
	return nil
}

// registryNames renders the registry location for the diagnostic.
func registryNames(pass *Pass, reg *codeRegistry) string {
	names := make([]string, 0, len(reg.files))
	for f := range reg.files {
		names = append(names, path.Base(f))
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}
