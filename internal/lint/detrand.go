package lint

import (
	"go/ast"
	"go/types"
	"strconv"
)

// DeterministicPackages are the packages bound by the byte-identity
// contract: their outputs must be a pure function of (inputs, seed),
// for any worker count and kernel. This table IS the policy — adding a
// package here puts it under detrand.
//
// internal/experiments is listed even though its reports include
// wall-clock timings: the timing files carry a file-level
// //minlint:allow detrand directive explaining why, so any NEW
// nondeterminism source there must either be justified the same way or
// fixed.
var DeterministicPackages = []string{
	"minequiv/internal/sim",
	"minequiv/internal/engine",
	"minequiv/internal/equiv",
	"minequiv/internal/midigraph",
	"minequiv/internal/experiments",
}

// Detrand is the determinism analyzer over the default package set.
var Detrand = NewDetrand(DeterministicPackages)

// NewDetrand builds a detrand analyzer scoped to the given import
// paths (exact matches). It flags the three classic determinism
// killers:
//
//   - importing math/rand (v1): its global functions share seeded
//     process-wide state; the module's seed discipline is built on
//     math/rand/v2 value generators.
//   - calling time.Now: wall-clock reads make output depend on when
//     the run happened, not what it computed.
//   - ranging over a map when the body's effects escape the loop:
//     map iteration order is randomized per run, so any escaping
//     effect (writes to outer variables, function calls, returns)
//     can leak that order into results.
func NewDetrand(packages []string) *Analyzer {
	covered := map[string]bool{}
	for _, p := range packages {
		covered[p] = true
	}
	a := &Analyzer{
		Name: "detrand",
		Doc:  "forbid nondeterminism sources (math/rand v1, time.Now, order-sensitive map ranges) in byte-identity packages",
	}
	a.Run = func(pass *Pass) error {
		if !covered[pass.Path] {
			return nil
		}
		for _, f := range pass.Files {
			if pass.IsTestFile(f.Pos()) {
				continue
			}
			for _, imp := range f.Imports {
				path, _ := strconv.Unquote(imp.Path.Value)
				if path == "math/rand" {
					pass.Reportf(imp.Pos(), "deterministic package imports math/rand (v1); use math/rand/v2 with the engine seed discipline")
				}
			}
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.CallExpr:
					if isTimeNow(pass.Info, n) {
						pass.Reportf(n.Pos(), "deterministic package calls time.Now; inject a clock or derive timestamps from inputs")
					}
				case *ast.RangeStmt:
					checkMapRange(pass, n)
				}
				return true
			})
		}
		return nil
	}
	return a
}

// isTimeNow reports whether call is time.Now() from the standard time
// package.
func isTimeNow(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	return ok && fn.FullName() == "time.Now"
}

// checkMapRange flags `for ... := range m` over a map when the body's
// effects escape the loop. Effects confined to variables declared
// inside the body (or the loop variables themselves) cannot observe
// iteration order; anything else — assignments to outer variables or
// their elements, function calls, returns, sends, defers — can.
func checkMapRange(pass *Pass, rng *ast.RangeStmt) {
	tv, ok := pass.Info.Types[rng.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	if reason := mapRangeEscape(pass, rng); reason != "" {
		pass.Reportf(rng.For, "range over map with order-sensitive body (%s); iterate a sorted key slice instead", reason)
	}
}

// mapRangeEscape returns a non-empty reason if the range body's
// effects escape it.
func mapRangeEscape(pass *Pass, rng *ast.RangeStmt) string {
	local := func(id *ast.Ident) bool {
		obj := pass.Info.Defs[id]
		if obj == nil {
			obj = pass.Info.Uses[id]
		}
		if obj == nil {
			return true // unresolved (e.g. blank); harmless
		}
		return obj.Pos() >= rng.Pos() && obj.Pos() < rng.End()
	}
	rootIdent := func(e ast.Expr) *ast.Ident {
		for {
			switch x := e.(type) {
			case *ast.Ident:
				return x
			case *ast.IndexExpr:
				e = x.X
			case *ast.SelectorExpr:
				e = x.X
			case *ast.StarExpr:
				e = x.X
			case *ast.ParenExpr:
				e = x.X
			default:
				return nil
			}
		}
	}
	reason := ""
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if reason != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if id := rootIdent(lhs); id == nil || (id.Name != "_" && !local(id)) {
					reason = "assigns outside the loop"
					return false
				}
			}
		case *ast.IncDecStmt:
			if id := rootIdent(n.X); id == nil || !local(id) {
				reason = "assigns outside the loop"
				return false
			}
		case *ast.CallExpr:
			if pass.Info.Types[n.Fun].IsType() {
				return true // conversion, effect-free
			}
			if id, ok := n.Fun.(*ast.Ident); ok {
				switch id.Name {
				case "len", "cap", "min", "max":
					if pass.Info.Uses[id] == nil || pass.Info.Uses[id].Parent() == types.Universe {
						return true
					}
				}
			}
			reason = "calls a function"
			return false
		case *ast.ReturnStmt:
			reason = "returns from inside the range"
			return false
		case *ast.SendStmt:
			reason = "sends on a channel"
			return false
		case *ast.GoStmt, *ast.DeferStmt:
			reason = "spawns deferred/concurrent work"
			return false
		case *ast.BranchStmt:
			if n.Label != nil {
				reason = "jumps out of the loop"
				return false
			}
		}
		return true
	})
	return reason
}
