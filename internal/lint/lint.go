// Package lint is the repo's static-contract enforcement suite: five
// analyzers that codify, at the AST/type level, invariants DESIGN.md
// states in prose and the test suite pins at runtime — determinism of
// the simulation packages (detrand), the sealed internal/ import
// boundary (impboundary), allocation-free hot paths (hotalloc), the
// stable serving error-code registry (errcodes), and the /metrics
// exposition contract (metriclint).
//
// The framework deliberately mirrors golang.org/x/tools/go/analysis —
// an Analyzer with a Run(*Pass) hook reporting Diagnostics — but is
// built entirely on the standard library (go/ast, go/types, and a
// `go list -export` package loader) so the module keeps its zero
// -dependency go.mod. cmd/minlint is the multichecker driver; it also
// speaks the `go vet -vettool` unit-checker protocol.
//
// Suppression policy: a finding is silenced by the directive comment
//
//	//minlint:allow <analyzer>[,<analyzer>...] [-- reason]
//
// placed on the flagged line or the line directly above it. The same
// directive before the package clause applies file-wide — that form is
// for files that are nondeterministic (or allocating) by design and
// must say why in the reason. Suppressions are grep-able on purpose:
// the reviewer budget for them is part of the contract.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer is one static contract check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //minlint:allow directives.
	Name string
	// Doc is the one-paragraph contract statement.
	Doc string
	// Run inspects one package and reports findings through the Pass.
	Run func(*Pass) error
}

// A Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Path is the package's import path. Unit-checker drivers report
	// test variants like "p [p.test]"; Path is always the base path.
	Path string
	// Files are the parsed, type-checked compile files (tests excluded).
	Files []*ast.File
	// ExtraFiles are parsed-only companions — in-package and external
	// test files — for analyzers that work syntactically (impboundary
	// reads their imports). They are NOT in scope of Pkg/Info.
	ExtraFiles []*ast.File
	Pkg        *types.Package
	Info       *types.Info

	suppress *suppressionIndex
	diags    *[]Diagnostic
}

// Diagnostic is one reported finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (%s)", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
}

// Reportf records a finding unless a //minlint:allow directive covers
// it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.suppress.allows(p.Analyzer.Name, position) {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// AllFiles ranges over compile files and extra (test) files together.
func (p *Pass) AllFiles() []*ast.File {
	out := make([]*ast.File, 0, len(p.Files)+len(p.ExtraFiles))
	out = append(out, p.Files...)
	return append(out, p.ExtraFiles...)
}

// IsTestFile reports whether the file containing pos is a _test.go
// file. Analyzers that enforce production-code contracts skip those so
// standalone and vet-driver runs agree (the vet driver hands test
// variants to analyzers as full packages).
func (p *Pass) IsTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// directive prefixes recognized in comments.
const (
	allowDirective   = "//minlint:allow"
	hotpathDirective = "//minlint:hotpath"
)

// HotPath reports whether fn carries the //minlint:hotpath annotation
// in its doc comment.
func HotPath(fn *ast.FuncDecl) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if strings.HasPrefix(c.Text, hotpathDirective) {
			return true
		}
	}
	return false
}

// suppressionIndex records where //minlint:allow directives apply.
type suppressionIndex struct {
	// line[file][line] = analyzer names allowed on that line.
	line map[string]map[int][]string
	// file[file] = analyzer names allowed file-wide.
	file map[string][]string
}

// parseAllow splits "//minlint:allow a,b -- reason" into names.
func parseAllow(text string) []string {
	rest := strings.TrimPrefix(text, allowDirective)
	if rest == text {
		return nil
	}
	if i := strings.Index(rest, "--"); i >= 0 {
		rest = rest[:i]
	}
	var names []string
	for _, f := range strings.FieldsFunc(rest, func(r rune) bool { return r == ',' || r == ' ' || r == '\t' }) {
		names = append(names, f)
	}
	return names
}

// buildSuppressions indexes every allow directive in the package's
// files. A directive before the package clause covers the whole file;
// any other covers its own line and the next.
func buildSuppressions(fset *token.FileSet, files []*ast.File) *suppressionIndex {
	idx := &suppressionIndex{
		line: map[string]map[int][]string{},
		file: map[string][]string{},
	}
	for _, f := range files {
		pkgLine := fset.Position(f.Package).Line
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				names := parseAllow(c.Text)
				if len(names) == 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				if pos.Line < pkgLine {
					idx.file[pos.Filename] = append(idx.file[pos.Filename], names...)
					continue
				}
				lines := idx.line[pos.Filename]
				if lines == nil {
					lines = map[int][]string{}
					idx.line[pos.Filename] = lines
				}
				lines[pos.Line] = append(lines[pos.Line], names...)
			}
		}
	}
	return idx
}

func (s *suppressionIndex) allows(analyzer string, pos token.Position) bool {
	if s == nil {
		return false
	}
	for _, n := range s.file[pos.Filename] {
		if n == analyzer {
			return true
		}
	}
	lines := s.line[pos.Filename]
	if lines == nil {
		return false
	}
	for _, ln := range [2]int{pos.Line, pos.Line - 1} {
		for _, n := range lines[ln] {
			if n == analyzer {
				return true
			}
		}
	}
	return false
}

// Package is one loaded, analyzable package (see load.go and the
// linttest fixture loader).
type Package struct {
	Path       string
	Fset       *token.FileSet
	Files      []*ast.File
	ExtraFiles []*ast.File
	Pkg        *types.Package
	Info       *types.Info
}

// Run applies the analyzers to the packages and returns the surviving
// diagnostics sorted by position.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		suppress := buildSuppressions(pkg.Fset, append(append([]*ast.File{}, pkg.Files...), pkg.ExtraFiles...))
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:   a,
				Fset:       pkg.Fset,
				Path:       pkg.Path,
				Files:      pkg.Files,
				ExtraFiles: pkg.ExtraFiles,
				Pkg:        pkg.Pkg,
				Info:       pkg.Info,
				suppress:   suppress,
				diags:      &diags,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

// NewInfo returns a types.Info with every map analyzers rely on
// populated.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}
