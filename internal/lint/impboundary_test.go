package lint_test

import (
	"testing"

	"minequiv/internal/lint"
	"minequiv/internal/lint/linttest"
)

func TestImpBoundary(t *testing.T) {
	a := lint.NewImpBoundary(lint.BoundaryConfig{
		InternalPrefix:  "boundfix/internal",
		AllowedPackages: []string{"boundfix/min"},
		AllowedFiles:    []string{"boundfix/tool/bench_test.go"},
	})
	// app crosses the boundary: the deliberate violation must be caught.
	linttest.Run(t, "testdata", a, "boundfix/app")
	// min is the allowlisted facade; internal packages import each other
	// freely (including subpackages).
	linttest.Run(t, "testdata", a, "boundfix/min")
	linttest.Run(t, "testdata", a, "boundfix/internal/secret")
	// tool: bench_test.go is file-allowlisted, leak_test.go is not —
	// proving test files are covered.
	linttest.Run(t, "testdata", a, "boundfix/tool")
}
