package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// The standalone loader: `go list -deps -export -json` enumerates the
// target packages and produces compiled export data for every
// dependency, and the stdlib gc importer consumes that export data, so
// whole-module analysis needs no third-party loader and works offline.
// Target packages are re-parsed from source (types.Info in hand); test
// files are parsed syntax-only into ExtraFiles for the analyzers that
// read imports.

// listPackage is the subset of `go list -json` output the loader uses.
type listPackage struct {
	ImportPath   string
	Name         string
	Dir          string
	Export       string
	GoFiles      []string
	CgoFiles     []string
	TestGoFiles  []string
	XTestGoFiles []string
	Standard     bool
	DepOnly      bool
	Module       *struct{ Path string }
	Error        *struct{ Err string }
}

// goList runs the go command and decodes its JSON package stream.
func goList(dir string, args ...string) ([]*listPackage, error) {
	cmd := exec.Command("go", append([]string{"list"}, args...)...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	var pkgs []*listPackage
	for {
		var p listPackage
		if derr := dec.Decode(&p); derr == io.EOF {
			break
		} else if derr != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", derr)
		}
		pkgs = append(pkgs, &p)
	}
	return pkgs, nil
}

// exportLookup resolves import paths to their compiled export data.
type exportLookup map[string]string

func (e exportLookup) open(path string) (io.ReadCloser, error) {
	f, ok := e[path]
	if !ok || f == "" {
		return nil, fmt.Errorf("lint: no export data for %q", path)
	}
	return os.Open(f)
}

// LoadPackages loads, parses, and type-checks the packages matched by
// patterns (relative to dir, "" = cwd), ready for Run. Dependencies are
// type-checked from export data; only the matched packages get syntax.
func LoadPackages(dir string, patterns ...string) ([]*Package, error) {
	args := append([]string{"-e", "-deps", "-export",
		"-json=ImportPath,Name,Dir,Export,GoFiles,CgoFiles,TestGoFiles,XTestGoFiles,Standard,DepOnly,Module,Error"},
		patterns...)
	listed, err := goList(dir, args...)
	if err != nil {
		return nil, err
	}
	exports := exportLookup{}
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", exports.open)
	var pkgs []*Package
	for _, p := range listed {
		if p.DepOnly || p.Standard || p.Name == "" {
			continue
		}
		if p.Error != nil {
			return nil, fmt.Errorf("lint: %s: %s", p.ImportPath, p.Error.Err)
		}
		pkg, err := typeCheckListed(fset, imp, p)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

func typeCheckListed(fset *token.FileSet, imp types.Importer, p *listPackage) (*Package, error) {
	var files []*ast.File
	for _, name := range append(append([]string{}, p.GoFiles...), p.CgoFiles...) {
		f, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: parsing %s: %w", name, err)
		}
		files = append(files, f)
	}
	var extra []*ast.File
	for _, name := range append(append([]string{}, p.TestGoFiles...), p.XTestGoFiles...) {
		f, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: parsing %s: %w", name, err)
		}
		extra = append(extra, f)
	}
	info := NewInfo()
	conf := types.Config{
		Importer: imp,
		Error:    func(error) {}, // collect what we can; first hard error below
	}
	tpkg, err := conf.Check(p.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", p.ImportPath, err)
	}
	return &Package{
		Path:       p.ImportPath,
		Fset:       fset,
		Files:      files,
		ExtraFiles: extra,
		Pkg:        tpkg,
		Info:       info,
	}, nil
}

// GoListExports resolves patterns (typically standard-library import
// paths) to compiled export data for them and all their dependencies:
// import path -> export file.
func GoListExports(patterns ...string) (map[string]string, error) {
	listed, err := goList("", append([]string{"-deps", "-export", "-json=ImportPath,Export"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	out := make(map[string]string, len(listed))
	for _, p := range listed {
		if p.Export != "" {
			out[p.ImportPath] = p.Export
		}
	}
	return out, nil
}

// ModuleDir returns the root directory of the main module at dir.
func ModuleDir(dir string) (string, error) {
	cmd := exec.Command("go", "list", "-m", "-f", "{{.Dir}}")
	cmd.Dir = dir
	out, err := cmd.Output()
	if err != nil {
		return "", fmt.Errorf("go list -m: %w", err)
	}
	return strings.TrimSpace(string(out)), nil
}
