package hot

import (
	"errors"
	"fmt"
)

type runner struct {
	buf []int
}

type iface interface{ m() }

type impl struct{ v int }

func (impl) m() {}

func takes(iface) {}

// bad exercises every allocating construct hotalloc flags.
//
//minlint:hotpath
func bad(r *runner, s string, v int) {
	_ = fmt.Sprintf("x %d", v) // want `calls fmt.Sprintf`
	_ = errors.New("boom")     // want `constructs an error`
	var out []int
	out = append(out, v) // want `appends without preallocated-capacity evidence`
	_ = out
	m := map[int]int{} // want `builds a map literal`
	_ = m
	sl := []int{1, 2} // want `builds a slice literal`
	_ = sl
	p := &runner{} // want `address of a composite literal`
	_ = p
	n := new(runner) // want `calls new`
	_ = n
	cs := s + "x" // want `concatenates strings`
	_ = cs
	bs := []byte(s) // want `converts between string and byte/rune slice`
	_ = bs
	var i iface
	i = impl{} // want `boxes a hotfix/hot.impl into interface`
	_ = i
	takes(impl{v: v})            // want `boxes a hotfix/hot.impl into interface`
	go spin()                    // want `spawns a goroutine`
	f := func() int { return v } // want `builds a capturing closure`
	_ = f()
}

// amortized shows the allowed idioms: owned-scratch appends, reslice
// evidence, make-with-cap evidence, value literals, non-capturing
// closures, and cold panic paths.
//
//minlint:hotpath
func amortized(r *runner, xs []int) int {
	if len(xs) > 1<<20 {
		panic(fmt.Sprintf("hot: absurd wave size %d", len(xs))) // cold path: exempt
	}
	scratch := r.buf[:0]
	for _, x := range xs {
		scratch = append(scratch, x) // reslice evidence
	}
	r.buf = append(r.buf, len(scratch)) // owned scratch
	made := make([]int, 0, 4)           // want `calls make`
	made = append(made, 1)              // make evidence still counts line-by-line
	g := func() int { return 2 }        // non-capturing: static, no allocation
	st := impl{v: g()}                  // value composite literal: stack
	return st.v + made[0]
}

// deferred demonstrates the defer finding plus a same-line second
// finding from the deferred call itself.
//
//minlint:hotpath
func deferred() {
	defer fmt.Println("bye") // want `defers` `calls fmt.Println`
}

// suppressed shows the reviewed-escape path.
//
//minlint:hotpath
func suppressed() error {
	return errors.New("cold construction") //minlint:allow hotalloc -- constructed once per run, not per wave
}

// cold has every construct but no annotation: hotalloc must stay
// silent.
func cold(s string) string {
	_ = errors.New("x")
	m := map[int]int{1: 2}
	_ = m
	return fmt.Sprintf("%s+%d", s, len(s))
}

func spin() {}
