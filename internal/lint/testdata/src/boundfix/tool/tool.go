// Package tool has one file-level exemption (bench_test.go, mirroring
// the root benchmark harness); every other file is still checked.
package tool

// T anchors the package.
const T = 1
