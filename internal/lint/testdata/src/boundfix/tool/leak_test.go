package tool

import "boundfix/internal/secret" // want `imports boundfix/internal/secret across the public API boundary`

var _ = secret.Y
