package tool

import "boundfix/internal/secret" // allowlisted file: no finding

var _ = secret.X
