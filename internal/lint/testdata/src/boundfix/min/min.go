// Package min is the allowlisted facade: internal imports are its job.
package min

import "boundfix/internal/secret"

// V re-exports through the facade.
const V = secret.X
