// Package app sits outside the allowlist: importing the internal
// surface is the deliberate violation the acceptance criteria require
// impboundary to catch.
package app

import "boundfix/internal/secret" // want `imports boundfix/internal/secret across the public API boundary`

// V leaks the internal constant.
const V = secret.X
