package secret

import "boundfix/internal/secret/deeper"

// Y shows internal packages may import each other freely.
const Y = deeper.Z
