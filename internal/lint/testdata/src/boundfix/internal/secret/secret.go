// Package secret is the guarded internal surface of the boundary
// fixtures.
package secret

// X is the internal symbol the fixtures import.
const X = 42
