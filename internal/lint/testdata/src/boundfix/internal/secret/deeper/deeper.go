// Package deeper is a nested internal package.
package deeper

// Z is nested internal state.
const Z = 7
