package codes

const codeRogue = "rogue"

// ok writes codes the registered way.
func ok() *httpError {
	return &httpError{status: 400, code: CodeGood, msg: "fine"}
}

// literalRegistered writes a registered value as a raw literal: the
// constant must be named instead.
func literalRegistered() *httpError {
	return &httpError{code: "good"} // want `error code "good" written as a string literal`
}

// literalUnregistered invents a code inline.
func literalUnregistered() *httpError {
	return &httpError{code: "oops"} // want `error code "oops" is not registered`
}

// constUnregistered launders an unregistered code through a local
// constant.
func constUnregistered() detail {
	return detail{Code: codeRogue} // want `error code "rogue" is not registered`
}

// assigned catches field assignment too.
func assigned(e *httpError) {
	e.code = "inline" // want `error code "inline" is not registered`
	e.code = CodeAlso
}

// dynamic plumbing (envelopeFor-style) is out of static reach; runtime
// golden tests pin it.
func dynamic(e *httpError, code string) detail {
	return detail{Code: code, Message: e.msg}
}

// suppressed keeps a grandfathered code with a reviewed reason.
func suppressed(e *httpError) {
	e.code = "legacy_v0" //minlint:allow errcodes -- pre-registry code kept for one release
}

// jobMapping mirrors the serving layer's sentinel-to-code mapping: the
// registered constants flow through switches and composite literals.
func jobMapping(missing bool) *httpError {
	e := &httpError{status: 404, code: CodeJobGone, msg: "gone"}
	if !missing {
		e.code = CodeJobTainted
	}
	return e
}

// jobLiteral spells a registered job code inline; the constant must be
// named so the registry stays the single source.
func jobLiteral() detail {
	return detail{Code: "job_gone"} // want `error code "job_gone" written as a string literal`
}

// jobUnregistered invents a job-plane code without growing the registry.
func jobUnregistered(e *httpError) {
	e.code = "job_lost" // want `error code "job_lost" is not registered`
}

// negotiation mirrors content negotiation's 415: the registered
// constant is fine, the inline spelling must name the constant.
func negotiation(ok bool) *httpError {
	if ok {
		return &httpError{status: 415, code: CodeUnsupportedMediaType, msg: "use application/json"}
	}
	return &httpError{status: 415, code: "unsupported_media_type"} // want `error code "unsupported_media_type" written as a string literal`
}
