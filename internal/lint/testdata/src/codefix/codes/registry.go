// Package codes mirrors minserve's error-code discipline: this file is
// the registry; codes may only be written through its constants.
package codes

// Registered stable codes.
const (
	CodeGood = "good"
	CodeAlso = "also_good"
)

// httpError mirrors minserve's wire error.
type httpError struct {
	status int
	code   string
	msg    string
}

// detail mirrors the envelope's structured object.
type detail struct {
	Code    string
	Message string
}

// Job-plane codes: multi-word codes arrive by growing the registry,
// exactly like minserve's job_not_found / checkpoint_corrupt family.
const (
	CodeJobGone    = "job_gone"
	CodeJobTainted = "job_tainted"
)

// Negotiation codes: the wire-codec layer registers its 415 the same
// way, mirroring minserve's unsupported_media_type.
const CodeUnsupportedMediaType = "unsupported_media_type"
