// Package metrics mirrors minserve's dependency-free exposition
// renderer: HELP/TYPE literals plus gauge/counter registration
// helpers.
package metrics

import (
	"fmt"
	"io"
)

func gauge(name, help string, value string)   { _, _, _ = name, help, value }
func counter(name, help string, value uint64) { _, _, _ = name, help, value }

// render emits well-formed and malformed families.
func render(w io.Writer) {
	// Well-formed family with histogram suffixes.
	fmt.Fprint(w, "# HELP minserve_good_seconds Latency.\n# TYPE minserve_good_seconds histogram\n")
	fmt.Fprintf(w, "minserve_good_seconds_bucket{le=%q} %d\n", "+Inf", 1)
	fmt.Fprintf(w, "minserve_good_seconds_sum %f\n", 0.5)
	fmt.Fprintf(w, "minserve_good_seconds_count %d\n", 1)

	fmt.Fprintf(w, "minserve_ghost_total %d\n", 2) // want `metric minserve_ghost_total is emitted but never registered`

	fmt.Fprint(w, "# HELP wrong_total Off-namespace.\n# TYPE wrong_total counter\n") // want `metric family wrong_total lacks the minserve_ namespace prefix`

	fmt.Fprint(w, "# HELP minserve_BadCase_total Mixed case.\n# TYPE minserve_BadCase_total counter\n") // want `metric family minserve_BadCase_total is not lower snake_case`

	fmt.Fprint(w, "# TYPE minserve_helpless_total counter\n") // want `metric family minserve_helpless_total has TYPE but no HELP`

	fmt.Fprint(w, "# HELP minserve_empty_help \n") // want `metric family minserve_empty_help has HELP but no TYPE` `metric family minserve_empty_help has empty help text`

	fmt.Fprint(w, "# TYPE minserve_good_seconds histogram\n") // want `metric family minserve_good_seconds registered more than once`
}

// reg exercises the registration helpers.
func reg() {
	gauge("minserve_depth", "Queue depth.", "0")
	counter("minserve_depth", "Duplicate registration.", 1) // want `metric family minserve_depth registered more than once`
	name := "minserve_dyn"                                  // want `metric minserve_dyn is emitted but never registered`
	gauge(name, "Dynamic name.", "0")                       // want `metric registered through gauge with a dynamic name`
}

// suppressed shows the reviewed-escape path for a migration window.
func legacy(w io.Writer) {
	fmt.Fprintf(w, "legacy_requests_total %d\n", 1) // no namespace prefix: not a sample usage, LintExposition catches it at runtime
	//minlint:allow metriclint -- emitted for one release while dashboards migrate
	fmt.Fprintf(w, "minserve_old_total %d\n", 1)
}

// jobs mirrors the job-plane families: several counters and a gauge
// registered through the helpers with literal names, and a sample line
// emitted for a helper-registered family (fine — registration is
// registration, whichever spelling produced it).
func jobs(w io.Writer) {
	gauge("minserve_jobs_live", "Live jobs.", "0")
	counter("minserve_jobs_swept_total", "Jobs garbage-collected.", 3)
	counter("minserve_job_shards_landed_total", "Shards checkpointed.", 12)
	fmt.Fprintf(w, "minserve_jobs_swept_total %d\n", 3)
}

// codecs mirrors the wire-codec families: per-codec labelled counters
// registered once per family, samples emitted per label value.
func codecs(w io.Writer) {
	fmt.Fprint(w, "# HELP minserve_codec_requests_total Request bodies decoded, by wire codec.\n# TYPE minserve_codec_requests_total counter\n")
	fmt.Fprintf(w, "minserve_codec_requests_total{codec=%q} %d\n", "json", 4)
	fmt.Fprintf(w, "minserve_codec_requests_total{codec=%q} %d\n", "bin", 2)
	fmt.Fprint(w, "# HELP minserve_codec_responses_total Response bodies encoded, by wire codec.\n# TYPE minserve_codec_responses_total counter\n")
	fmt.Fprintf(w, "minserve_codec_responses_total{codec=%q} %d\n", "bin", 2)
}
