// Package free is NOT in the deterministic set: detrand must stay
// silent here even though every violation appears.
package free

import (
	"math/rand"
	"time"
)

// Both reports a timestamped draw.
func Both(m map[string]int) int {
	total := rand.Intn(int(time.Now().Unix()&0xff) + 1)
	for _, v := range m {
		total += v
	}
	return total
}
