// This file mirrors internal/experiments/theorems.go: wall-clock reads
// are the point (it reports how long things took), so the whole file
// is declared nondeterministic by design.
//minlint:allow detrand -- reporting-only wall clock; results never feed aggregates

package simlike

import "time"

// Elapsed times fn; the duration is reported, never aggregated.
func Elapsed(fn func()) time.Duration {
	start := time.Now()
	fn()
	return time.Since(start)
}
