package simlike

import (
	"math/rand" // want `imports math/rand \(v1\)`
	"time"
)

var sink int

// Stamp reads the wall clock.
func Stamp() time.Time {
	return time.Now() // want `calls time.Now`
}

// StampAllowed demonstrates the line-scoped suppression path.
func StampAllowed() time.Time {
	//minlint:allow detrand -- cache TTL bookkeeping, not simulation state
	return time.Now()
}

// Draw uses the v1 global generator.
func Draw() int {
	return rand.Intn(8)
}

// SumEscapes accumulates into an outer variable: iteration order can
// leak through float rounding or early termination in later edits.
func SumEscapes(m map[string]int) int {
	total := 0
	for _, v := range m { // want `range over map with order-sensitive body`
		total += v
	}
	return total
}

// CallEscapes calls a function from the body.
func CallEscapes(m map[string]int) {
	for k := range m { // want `range over map with order-sensitive body \(calls a function\)`
		observe(k)
	}
}

// ReturnEscapes returns mid-iteration: which entry wins depends on
// order.
func ReturnEscapes(m map[string]int) int {
	for _, v := range m { // want `range over map with order-sensitive body \(returns from inside the range\)`
		return v
	}
	return 0
}

// LocalOnly keeps every effect inside the body: order cannot escape.
func LocalOnly(m map[string]int) {
	for _, v := range m {
		x := v * 2
		x++
		_ = x
	}
}

// SliceRange is not a map range; nothing to report.
func SliceRange(xs []int) int {
	total := 0
	for _, v := range xs {
		total += v
	}
	return total
}

// AllowedRange demonstrates suppressing a reviewed map range.
func AllowedRange(m map[string]int) {
	//minlint:allow detrand -- order-insensitive: observe is commutative over keys
	for k := range m {
		observe(k)
	}
}

func observe(string) { sink++ }
