package lint

// Analyzers is the full minlint suite in reporting order. cmd/minlint
// runs all of them by default; each can be selected individually.
var Analyzers = []*Analyzer{
	Detrand,
	ImpBoundary,
	HotAlloc,
	ErrCodes,
	MetricLint,
}

// ByName returns the suite analyzer with the given name, or nil.
func ByName(name string) *Analyzer {
	for _, a := range Analyzers {
		if a.Name == name {
			return a
		}
	}
	return nil
}
