package lint_test

import (
	"testing"

	"minequiv/internal/lint"
	"minequiv/internal/lint/linttest"
)

func TestErrCodes(t *testing.T) {
	linttest.Run(t, "testdata", lint.ErrCodes, "codefix/codes")
}
