package lint_test

import (
	"testing"

	"minequiv/internal/lint"
	"minequiv/internal/lint/linttest"
)

func TestMetricLint(t *testing.T) {
	linttest.Run(t, "testdata", lint.MetricLint, "metricfix/metrics")
}
