package lint

import (
	"go/ast"
	"go/token"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// MetricLint is the static counterpart to minserve.LintExposition: the
// runtime linter validates what one /metrics render produced, this
// analyzer validates what the source can ever produce. It activates on
// any package whose string literals mention the metric namespace and
// checks that:
//
//   - every declared family (a "# HELP <name> ..."/"# TYPE <name> ..."
//     literal, or a registration-helper call like gauge(name, help, v))
//     is namespace-prefixed lower snake_case;
//   - each family is registered exactly once and carries non-empty
//     help text;
//   - every emitted sample name (a literal starting with the
//     namespace, e.g. a Fprintf format) belongs to a registered
//     family, with histogram _bucket/_sum/_count suffixes resolved.
//
// Registration helpers keep the exposition deterministic and
// single-sourced; dynamic family names cannot be checked statically
// and are reported too.
var MetricLint = NewMetricLint("minserve_")

// metricNameRE is prometheus lower-snake-case.
var metricNameRE = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)

// declRE extracts "# HELP name rest" / "# TYPE name rest" from a
// literal (the literal may hold several exposition lines).
var declRE = regexp.MustCompile(`# (HELP|TYPE) ([^ \n]+)([^\n]*)`)

// NewMetricLint builds the analyzer for one metric namespace prefix.
func NewMetricLint(prefix string) *Analyzer {
	a := &Analyzer{
		Name: "metriclint",
		Doc:  "metric families must be " + prefix + "-prefixed snake_case, registered exactly once with help text, and every emitted sample must belong to a registered family",
	}
	a.Run = func(pass *Pass) error {
		runMetricLint(pass, prefix)
		return nil
	}
	return a
}

type metricDecl struct {
	help, typ int // declaration counts
	helpText  string
	pos       token.Pos
}

func runMetricLint(pass *Pass, prefix string) {
	decls := map[string]*metricDecl{}
	type usage struct {
		name string
		pos  token.Pos
	}
	var usages []usage
	active := false

	record := func(name string) *metricDecl {
		d := decls[name]
		if d == nil {
			d = &metricDecl{}
			decls[name] = d
		}
		return d
	}

	// Pass 1: collect declarations and usages from every string literal
	// and registration-helper call.
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if id, ok := n.Fun.(*ast.Ident); ok && (id.Name == "gauge" || id.Name == "counter") && len(n.Args) >= 3 {
					lit, ok := n.Args[0].(*ast.BasicLit)
					if !ok || lit.Kind != token.STRING {
						pass.Reportf(n.Args[0].Pos(), "metric registered through %s with a dynamic name; use a string literal so the family set is static", id.Name)
						return true
					}
					name, _ := strconv.Unquote(lit.Value)
					active = true
					d := record(name)
					d.help++
					d.typ++
					d.pos = lit.Pos()
					if help, ok := n.Args[1].(*ast.BasicLit); ok {
						d.helpText, _ = strconv.Unquote(help.Value)
					} else {
						d.helpText = "dynamic"
					}
					if d.typ > 1 {
						pass.Reportf(lit.Pos(), "metric family %s registered more than once", name)
					}
				}
			case *ast.BasicLit:
				if n.Kind != token.STRING {
					return true
				}
				s, err := strconv.Unquote(n.Value)
				if err != nil {
					return true
				}
				for _, m := range declRE.FindAllStringSubmatch(s, -1) {
					kind, name, rest := m[1], m[2], strings.TrimSpace(m[3])
					if strings.Contains(name, "%") {
						continue // registration-helper format string; call sites carry the names
					}
					active = true
					d := record(name)
					d.pos = n.Pos()
					if kind == "HELP" {
						d.help++
						d.helpText = rest
						if d.help > 1 {
							pass.Reportf(n.Pos(), "duplicate HELP for metric family %s", name)
						}
					} else {
						// TYPE line: "name type".
						d.typ++
						if d.typ > 1 {
							pass.Reportf(n.Pos(), "metric family %s registered more than once", name)
						}
					}
				}
				// Sample usages: the literal starts with the namespace. A
				// literal that is exactly the bare prefix is configuration
				// (e.g. the namespace constant itself), not a sample.
				if strings.HasPrefix(s, prefix) {
					name := s
					for i, r := range s {
						if !(r == '_' || r >= 'a' && r <= 'z' || r >= '0' && r <= '9' || r >= 'A' && r <= 'Z') {
							name = s[:i]
							break
						}
					}
					if name != prefix {
						usages = append(usages, usage{name: name, pos: n.Pos()})
						active = true
					}
				}
			}
			return true
		})
	}
	if !active {
		return
	}

	// Pass 2: family-level rules.
	for _, name := range declNames(decls) {
		d := decls[name]
		if !strings.HasPrefix(name, prefix) {
			pass.Reportf(d.pos, "metric family %s lacks the %s namespace prefix", name, prefix)
		} else if !metricNameRE.MatchString(name) {
			pass.Reportf(d.pos, "metric family %s is not lower snake_case", name)
		}
		if d.typ > 0 && d.help == 0 {
			pass.Reportf(d.pos, "metric family %s has TYPE but no HELP text", name)
		}
		if d.help > 0 && d.typ == 0 {
			pass.Reportf(d.pos, "metric family %s has HELP but no TYPE", name)
		}
		if d.help > 0 && strings.TrimSpace(d.helpText) == "" {
			pass.Reportf(d.pos, "metric family %s has empty help text", name)
		}
	}

	// Pass 3: every emitted sample belongs to a registered family.
	registered := func(name string) bool {
		if _, ok := decls[name]; ok {
			return true
		}
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if base := strings.TrimSuffix(name, suffix); base != name {
				if _, ok := decls[base]; ok {
					return true
				}
			}
		}
		return false
	}
	for _, u := range usages {
		if !registered(u.name) {
			pass.Reportf(u.pos, "metric %s is emitted but never registered with HELP/TYPE", u.name)
		}
	}
}

func declNames(decls map[string]*metricDecl) []string {
	names := make([]string, 0, len(decls))
	for n := range decls {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
