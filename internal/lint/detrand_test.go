package lint_test

import (
	"testing"

	"minequiv/internal/lint"
	"minequiv/internal/lint/linttest"
)

func TestDetrand(t *testing.T) {
	a := lint.NewDetrand([]string{"detfix/simlike"})
	// simlike is in the deterministic set: every violation fires, the
	// suppressed ones stay silent.
	linttest.Run(t, "testdata", a, "detfix/simlike")
	// free has the same constructs but is not in the set: no findings.
	linttest.Run(t, "testdata", a, "detfix/free")
}
