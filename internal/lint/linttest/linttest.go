// Package linttest runs lint analyzers over fixture packages under a
// testdata/src tree and checks their diagnostics against `// want`
// expectation comments — the same contract as x/tools' analysistest,
// reimplemented on the standard library so the module stays
// dependency-free.
//
// Expectations: a comment `// want "re1" "re2"` on a line means the
// analyzer must report on that line with messages matching each regexp
// (in any order); every reported diagnostic must be matched by some
// expectation. Fixture packages may import each other (resolved inside
// the testdata/src tree) and the standard library (resolved through
// the toolchain's export data).
package linttest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"minequiv/internal/lint"
)

// Run loads the fixture package at root/src/<pkgPath>, applies the
// analyzer, and verifies the // want expectations.
func Run(t *testing.T, root string, a *lint.Analyzer, pkgPath string) {
	t.Helper()
	ld := newLoader(t, root)
	pkg := ld.load(pkgPath)
	diags, err := lint.Run([]*lint.Package{pkg}, []*lint.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, pkgPath, err)
	}
	checkExpectations(t, ld.fset, pkg, diags)
}

// loader resolves fixture packages from root/src and the standard
// library from compiled export data.
type loader struct {
	t       *testing.T
	root    string
	fset    *token.FileSet
	pkgs    map[string]*lint.Package
	typed   map[string]*types.Package
	exports map[string]string
	gc      types.Importer
}

func newLoader(t *testing.T, root string) *loader {
	ld := &loader{
		t:       t,
		root:    root,
		fset:    token.NewFileSet(),
		pkgs:    map[string]*lint.Package{},
		typed:   map[string]*types.Package{},
		exports: map[string]string{},
	}
	ld.gc = importer.ForCompiler(ld.fset, "gc", func(path string) (io.ReadCloser, error) {
		f := ld.exports[path]
		if f == "" {
			return nil, fmt.Errorf("linttest: no export data for %q", path)
		}
		return os.Open(f)
	})
	return ld
}

func (ld *loader) Import(path string) (*types.Package, error) {
	if p, ok := ld.typed[path]; ok {
		return p, nil
	}
	if dir := filepath.Join(ld.root, "src", filepath.FromSlash(path)); isDir(dir) {
		return ld.load(path).Pkg, nil
	}
	// Standard library: fetch export data for the path and its deps.
	if _, ok := ld.exports[path]; !ok {
		listed, err := listExports(path)
		if err != nil {
			return nil, err
		}
		for p, f := range listed {
			ld.exports[p] = f
		}
	}
	p, err := ld.gc.Import(path)
	if err != nil {
		return nil, err
	}
	ld.typed[path] = p
	return p, nil
}

// load parses and type-checks one fixture package (memoized).
func (ld *loader) load(pkgPath string) *lint.Package {
	ld.t.Helper()
	if p, ok := ld.pkgs[pkgPath]; ok {
		return p
	}
	dir := filepath.Join(ld.root, "src", filepath.FromSlash(pkgPath))
	entries, err := os.ReadDir(dir)
	if err != nil {
		ld.t.Fatalf("linttest: fixture %s: %v", pkgPath, err)
	}
	var files, extra []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(ld.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			ld.t.Fatalf("linttest: parsing %s: %v", e.Name(), err)
		}
		if strings.HasSuffix(e.Name(), "_test.go") {
			extra = append(extra, f)
		} else {
			files = append(files, f)
		}
	}
	if len(files) == 0 {
		ld.t.Fatalf("linttest: fixture %s has no Go files", pkgPath)
	}
	info := lint.NewInfo()
	conf := types.Config{Importer: ld}
	tpkg, err := conf.Check(pkgPath, ld.fset, files, info)
	if err != nil {
		ld.t.Fatalf("linttest: type-checking %s: %v", pkgPath, err)
	}
	pkg := &lint.Package{
		Path:       pkgPath,
		Fset:       ld.fset,
		Files:      files,
		ExtraFiles: extra,
		Pkg:        tpkg,
		Info:       info,
	}
	ld.pkgs[pkgPath] = pkg
	ld.typed[pkgPath] = tpkg
	return pkg
}

// listExports shells to `go list -deps -export` for a stdlib path.
func listExports(path string) (map[string]string, error) {
	pkgs, err := lint.GoListExports(path)
	if err != nil {
		return nil, err
	}
	return pkgs, nil
}

func isDir(dir string) bool {
	st, err := os.Stat(dir)
	return err == nil && st.IsDir()
}

// wantRE matches an expectation comment; quoted regexps follow.
var wantRE = regexp.MustCompile(`// want (.*)$`)

type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

func checkExpectations(t *testing.T, fset *token.FileSet, pkg *lint.Package, diags []lint.Diagnostic) {
	t.Helper()
	var wants []*expectation
	all := append(append([]*ast.File{}, pkg.Files...), pkg.ExtraFiles...)
	for _, f := range all {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, raw := range splitQuoted(t, m[1], pos) {
					re, err := regexp.Compile(raw)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, raw, err)
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re, raw: raw})
				}
			}
		}
	}
	matchedDiag := make([]bool, len(diags))
	for _, w := range wants {
		for i, d := range diags {
			if matchedDiag[i] || d.Pos.Filename != w.file || d.Pos.Line != w.line {
				continue
			}
			if w.re.MatchString(d.Message) {
				w.matched = true
				matchedDiag[i] = true
				break
			}
		}
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", filepath.Base(w.file), w.line, w.raw)
		}
	}
	for i, d := range diags {
		if !matchedDiag[i] {
			t.Errorf("%s: unexpected diagnostic: %s", filepath.Base(d.Pos.Filename), d)
		}
	}
}

// splitQuoted extracts the sequence of quoted strings from a want
// payload.
func splitQuoted(t *testing.T, s string, pos token.Position) []string {
	t.Helper()
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		if s[0] != '"' && s[0] != '`' {
			t.Fatalf("%s:%d: malformed want payload at %q", pos.Filename, pos.Line, s)
		}
		quote := s[0]
		end := 1
		for end < len(s) {
			if s[end] == quote && (quote == '`' || s[end-1] != '\\') {
				break
			}
			end++
		}
		if end == len(s) {
			t.Fatalf("%s:%d: unterminated want string", pos.Filename, pos.Line)
		}
		raw, err := strconv.Unquote(s[:end+1])
		if err != nil {
			t.Fatalf("%s:%d: bad want string %q: %v", pos.Filename, pos.Line, s[:end+1], err)
		}
		out = append(out, raw)
		s = strings.TrimSpace(s[end+1:])
	}
	return out
}
