package lint_test

import (
	"testing"

	"minequiv/internal/lint"
	"minequiv/internal/lint/linttest"
)

func TestHotAlloc(t *testing.T) {
	linttest.Run(t, "testdata", lint.HotAlloc, "hotfix/hot")
}
