package lint

import (
	"go/ast"
	"go/types"
)

// HotAlloc flags allocating constructs inside functions annotated
// //minlint:hotpath. It complements the CI 0-allocs/op benchmark gate:
// the benchmark proves the steady state, the analyzer points at the
// exact line when a change breaks it — before the benchmark job ever
// runs.
//
// Flagged: fmt/errors constructors, append without preallocation
// evidence, make/new, slice and map composite literals, &T{...},
// string concatenation and string<->[]byte conversions, closures that
// capture variables, go/defer statements, and interface boxing at call
// sites, assignments, and returns.
//
// Deliberately allowed: append to runner-owned scratch (the first
// argument is a field selector, or a local provably derived from make
// or a reslice — the repo's amortized-growth idiom), value composite
// literals (stack), and anything reachable only through panic(...) —
// a panic path is cold by definition.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "forbid allocating constructs in //minlint:hotpath functions",
}

func init() {
	HotAlloc.Run = runHotAlloc
}

func runHotAlloc(pass *Pass) error {
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !HotPath(fn) {
				continue
			}
			(&hotChecker{pass: pass, fn: fn}).check(fn.Body)
		}
	}
	return nil
}

type hotChecker struct {
	pass *Pass
	fn   *ast.FuncDecl
}

func (h *hotChecker) check(body ast.Node) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			return h.checkCall(n)
		case *ast.FuncLit:
			h.checkClosure(n)
			return false // its body is the closure's problem
		case *ast.CompositeLit:
			h.checkComposite(n)
		case *ast.UnaryExpr:
			if n.Op.String() == "&" {
				if _, ok := n.X.(*ast.CompositeLit); ok {
					h.pass.Reportf(n.Pos(), "hotpath %s takes the address of a composite literal (heap allocation)", h.fn.Name.Name)
					return false
				}
			}
		case *ast.BinaryExpr:
			if n.Op.String() == "+" && isString(h.pass.Info.Types[n].Type) {
				h.pass.Reportf(n.Pos(), "hotpath %s concatenates strings (allocates)", h.fn.Name.Name)
			}
		case *ast.GoStmt:
			h.pass.Reportf(n.Pos(), "hotpath %s spawns a goroutine", h.fn.Name.Name)
		case *ast.DeferStmt:
			h.pass.Reportf(n.Pos(), "hotpath %s defers (allocates a defer record on some paths)", h.fn.Name.Name)
		case *ast.AssignStmt:
			h.checkBoxingAssign(n)
		case *ast.ReturnStmt:
			h.checkBoxingReturn(n)
		}
		return true
	})
}

// checkCall handles builtins, conversions, fmt/errors constructors,
// and interface boxing of arguments. Returns false to prune the walk.
func (h *hotChecker) checkCall(call *ast.CallExpr) bool {
	info := h.pass.Info
	// panic(...) and its arguments are a cold path: skip entirely.
	if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" && isUniverse(info, id) {
		return false
	}
	// Conversions: only string <-> byte/rune slice pay.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			to := tv.Type
			from := info.Types[call.Args[0]].Type
			if (isString(to) && isByteOrRuneSlice(from)) || (isByteOrRuneSlice(to) && isString(from)) {
				h.pass.Reportf(call.Pos(), "hotpath %s converts between string and byte/rune slice (allocates)", h.fn.Name.Name)
			}
		}
		return true
	}
	if id, ok := call.Fun.(*ast.Ident); ok && isUniverse(info, id) {
		switch id.Name {
		case "append":
			if len(call.Args) > 0 && !h.appendEvidence(call.Args[0]) {
				h.pass.Reportf(call.Pos(), "hotpath %s appends without preallocated-capacity evidence (make with cap, reslice, or owned scratch field)", h.fn.Name.Name)
			}
		case "new":
			h.pass.Reportf(call.Pos(), "hotpath %s calls new (heap allocation)", h.fn.Name.Name)
		case "make":
			h.pass.Reportf(call.Pos(), "hotpath %s calls make (allocates); hoist the buffer into runner-owned scratch", h.fn.Name.Name)
		}
		return true
	}
	// fmt/errors constructors.
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if fn, ok := info.Uses[sel.Sel].(*types.Func); ok && fn.Pkg() != nil {
			switch fn.Pkg().Path() {
			case "fmt":
				h.pass.Reportf(call.Pos(), "hotpath %s calls fmt.%s (allocates and boxes)", h.fn.Name.Name, fn.Name())
				return false
			case "errors":
				if fn.Name() == "New" {
					h.pass.Reportf(call.Pos(), "hotpath %s constructs an error (allocates); return a sentinel", h.fn.Name.Name)
					return false
				}
			}
		}
	}
	h.checkBoxingCall(call)
	return true
}

// appendEvidence reports whether the append target shows preallocation
// evidence: a field selector (runner-owned scratch, growth amortized
// across calls), or a local whose definition/assignments include a
// make or a reslice.
func (h *hotChecker) appendEvidence(target ast.Expr) bool {
	switch t := target.(type) {
	case *ast.SelectorExpr:
		return true
	case *ast.SliceExpr:
		return true
	case *ast.Ident:
		obj := h.pass.Info.Uses[t]
		if obj == nil {
			obj = h.pass.Info.Defs[t]
		}
		if obj == nil {
			return false
		}
		evidence := false
		ast.Inspect(h.fn.Body, func(n ast.Node) bool {
			if evidence {
				return false
			}
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for i, lhs := range as.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || i >= len(as.Rhs) {
					continue
				}
				lobj := h.pass.Info.Defs[id]
				if lobj == nil {
					lobj = h.pass.Info.Uses[id]
				}
				if lobj != obj {
					continue
				}
				switch rhs := as.Rhs[i].(type) {
				case *ast.SliceExpr:
					evidence = true
				case *ast.CallExpr:
					if fid, ok := rhs.Fun.(*ast.Ident); ok && fid.Name == "make" &&
						isUniverse(h.pass.Info, fid) && len(rhs.Args) >= 2 {
						evidence = true
					}
				}
			}
			return true
		})
		return evidence
	}
	return false
}

// checkClosure flags func literals that capture variables — those
// escape to the heap when the closure does.
func (h *hotChecker) checkClosure(lit *ast.FuncLit) {
	info := h.pass.Info
	captures := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if captures {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := info.Uses[id].(*types.Var)
		if !ok || obj.Pos() == 0 {
			return true
		}
		// Captured: a variable declared outside the literal but inside
		// some function (package-level vars are static).
		if (obj.Pos() < lit.Pos() || obj.Pos() > lit.End()) && obj.Parent() != h.pass.Pkg.Scope() {
			captures = true
		}
		return true
	})
	if captures {
		h.pass.Reportf(lit.Pos(), "hotpath %s builds a capturing closure (allocates)", h.fn.Name.Name)
	}
}

// checkComposite flags slice and map literals (always allocate); value
// struct/array literals stay on the stack and pass.
func (h *hotChecker) checkComposite(lit *ast.CompositeLit) {
	t := h.pass.Info.Types[lit].Type
	if t == nil {
		return
	}
	switch t.Underlying().(type) {
	case *types.Slice:
		h.pass.Reportf(lit.Pos(), "hotpath %s builds a slice literal (allocates)", h.fn.Name.Name)
	case *types.Map:
		h.pass.Reportf(lit.Pos(), "hotpath %s builds a map literal (allocates)", h.fn.Name.Name)
	}
}

// checkBoxingCall flags non-interface arguments passed to interface
// parameters.
func (h *hotChecker) checkBoxingCall(call *ast.CallExpr) {
	info := h.pass.Info
	sigTV, ok := info.Types[call.Fun]
	if !ok {
		return
	}
	sig, ok := sigTV.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // forwarding a slice, no per-element boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if !types.IsInterface(pt) {
			continue
		}
		at := info.Types[arg]
		if at.Type == nil || types.IsInterface(at.Type) || at.IsNil() || at.Value != nil {
			continue // already boxed, nil, or a constant the compiler can intern
		}
		if bt, ok := at.Type.Underlying().(*types.Basic); ok && bt.Info()&types.IsUntyped != 0 {
			continue
		}
		h.pass.Reportf(arg.Pos(), "hotpath %s boxes a %s into interface %s (allocates)", h.fn.Name.Name, at.Type, pt)
	}
}

func (h *hotChecker) checkBoxingAssign(as *ast.AssignStmt) {
	info := h.pass.Info
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i := range as.Lhs {
		if as.Tok.String() == ":=" {
			continue // inferred type, no boxing introduced
		}
		lt := info.Types[as.Lhs[i]].Type
		rt := info.Types[as.Rhs[i]]
		if lt == nil || !types.IsInterface(lt) || rt.Type == nil || types.IsInterface(rt.Type) || rt.IsNil() {
			continue
		}
		h.pass.Reportf(as.Rhs[i].Pos(), "hotpath %s boxes a %s into interface %s (allocates)", h.fn.Name.Name, rt.Type, lt)
	}
}

func (h *hotChecker) checkBoxingReturn(ret *ast.ReturnStmt) {
	info := h.pass.Info
	sig, ok := info.Defs[h.fn.Name].(*types.Func)
	if !ok {
		return
	}
	results := sig.Type().(*types.Signature).Results()
	if results.Len() != len(ret.Results) {
		return // naked return or comma-ok spread
	}
	for i, r := range ret.Results {
		rt := results.At(i).Type()
		at := info.Types[r]
		if !types.IsInterface(rt) || at.Type == nil || types.IsInterface(at.Type) || at.IsNil() {
			continue
		}
		h.pass.Reportf(r.Pos(), "hotpath %s boxes a %s into interface result %s (allocates)", h.fn.Name.Name, at.Type, rt)
	}
}

func isUniverse(info *types.Info, id *ast.Ident) bool {
	obj := info.Uses[id]
	return obj == nil || obj.Parent() == types.Universe
}

func isString(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}
