package lint

import (
	"path"
	"strconv"
	"strings"
)

// BoundaryConfig is the public-API boundary policy: who may import the
// module's internal packages. This Go table replaces the shell grep
// that used to live in CI — the allowlist is code, reviewed like code.
type BoundaryConfig struct {
	// InternalPrefix guards every package under it (and the prefix
	// itself), e.g. "minequiv/internal".
	InternalPrefix string
	// AllowedPackages may import internal packages (exact import
	// paths). Packages under InternalPrefix are always allowed.
	AllowedPackages []string
	// AllowedFiles are "importPath/filename" entries exempting one
	// file — the root bench harness needs the internal experiment
	// tables without opening the boundary for the whole root package.
	AllowedFiles []string
}

// DefaultBoundary is the repo's sealed-surface policy: the public
// `min` facade is the only supported library surface; everything else
// reaches internals through it. cmd/minbench regenerates the
// EXPERIMENTS.md tables, cmd/minlint is the static-contract driver
// over internal/lint, and bench_test.go is the root benchmark harness
// — all module-internal tooling, not API consumers. minserve is the
// HTTP service: its request surface rides the min facade, but its
// asynchronous job plane is internal/jobs (sweep scheduling and
// checkpointing are serving concerns, not library API).
var DefaultBoundary = BoundaryConfig{
	InternalPrefix: "minequiv/internal",
	AllowedPackages: []string{
		"minequiv/min",
		"minequiv/minserve",
		"minequiv/cmd/minbench",
		"minequiv/cmd/minlint",
	},
	AllowedFiles: []string{
		"minequiv/bench_test.go",
	},
}

// ImpBoundary is the boundary analyzer under the default policy.
var ImpBoundary = NewImpBoundary(DefaultBoundary)

// NewImpBoundary builds the import-boundary analyzer. It is purely
// syntactic (import declarations only), so it covers test files too —
// the old grep did, and external test packages are a classic leak
// path.
func NewImpBoundary(cfg BoundaryConfig) *Analyzer {
	allowedPkg := map[string]bool{}
	for _, p := range cfg.AllowedPackages {
		allowedPkg[p] = true
	}
	allowedFile := map[string]bool{}
	for _, f := range cfg.AllowedFiles {
		allowedFile[f] = true
	}
	guarded := func(importPath string) bool {
		return importPath == cfg.InternalPrefix ||
			strings.HasPrefix(importPath, cfg.InternalPrefix+"/")
	}
	a := &Analyzer{
		Name: "impboundary",
		Doc:  "seal the internal/ surface: only the min facade, internal packages, and listed tooling may import " + cfg.InternalPrefix + "/...",
	}
	a.Run = func(pass *Pass) error {
		if guarded(pass.Path) || allowedPkg[pass.Path] {
			return nil
		}
		for _, f := range pass.AllFiles() {
			fileName := path.Base(pass.Fset.Position(f.Pos()).Filename)
			if allowedFile[pass.Path+"/"+fileName] {
				continue
			}
			for _, imp := range f.Imports {
				target, _ := strconv.Unquote(imp.Path.Value)
				if guarded(target) {
					pass.Reportf(imp.Pos(), "package %s imports %s across the public API boundary; use the min facade (allowlist: internal/lint/impboundary.go)", pass.Path, target)
				}
			}
		}
		return nil
	}
	return a
}
