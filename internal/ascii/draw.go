// Package ascii renders MI-digraphs and link-permutation stages as plain
// text, reproducing the paper's figures (networks, labelings, link
// tables) in machine-checkable form.
package ascii

import (
	"fmt"
	"strings"

	"minequiv/internal/bitops"
	"minequiv/internal/midigraph"
	"minequiv/internal/perm"
)

// Options controls rendering.
type Options struct {
	Tuples   bool // print labels as binary tuples (Fig 2 style)
	OneBased bool // number stages 1..n as the paper does
	Title    string
}

// Network renders an MI-digraph stage by stage: each line shows a cell
// and its ordered children in the next stage.
func Network(g *midigraph.Graph, opt Options) string {
	var b strings.Builder
	if opt.Title != "" {
		fmt.Fprintf(&b, "%s\n", opt.Title)
	}
	fmt.Fprintf(&b, "MI-digraph: %d stages x %d cells (N = %d terminals)\n",
		g.Stages(), g.CellsPerStage(), g.Terminals())
	label := func(x uint32) string {
		if opt.Tuples {
			return bitops.Tuple(uint64(x), g.LabelBits())
		}
		return fmt.Sprintf("%d", x)
	}
	for s := 0; s < g.Stages()-1; s++ {
		stageNo := s
		if opt.OneBased {
			stageNo = s + 1
		}
		fmt.Fprintf(&b, "stage %d -> %d:\n", stageNo, stageNo+1)
		for x := 0; x < g.CellsPerStage(); x++ {
			f, c := g.Children(s, uint32(x))
			marker := ""
			if f == c {
				marker = "   (double link)"
			}
			fmt.Fprintf(&b, "  %-12s -> %s, %s%s\n", label(uint32(x)), label(f), label(c), marker)
		}
	}
	return b.String()
}

// Columns renders the network as side-by-side columns of cell labels
// with per-stage adjacency digests — the closest text analogue of the
// paper's drawings.
func Columns(g *midigraph.Graph, opt Options) string {
	n := g.Stages()
	h := g.CellsPerStage()
	cols := make([][]string, n)
	width := 0
	for s := 0; s < n; s++ {
		cols[s] = make([]string, h)
		for x := 0; x < h; x++ {
			var cell string
			if opt.Tuples {
				cell = bitops.Tuple(uint64(x), g.LabelBits())
			} else {
				cell = fmt.Sprintf("%2d", x)
			}
			if s < n-1 {
				f, c := g.Children(s, uint32(x))
				cell = fmt.Sprintf("[%s]->%d,%d", cell, f, c)
			} else {
				cell = fmt.Sprintf("[%s]", cell)
			}
			cols[s][x] = cell
			if len(cell) > width {
				width = len(cell)
			}
		}
	}
	var b strings.Builder
	if opt.Title != "" {
		fmt.Fprintf(&b, "%s\n", opt.Title)
	}
	for s := 0; s < n; s++ {
		stageNo := s
		if opt.OneBased {
			stageNo++
		}
		fmt.Fprintf(&b, "%-*s", width+2, fmt.Sprintf("stage %d", stageNo))
	}
	b.WriteByte('\n')
	for x := 0; x < h; x++ {
		for s := 0; s < n; s++ {
			fmt.Fprintf(&b, "%-*s", width+2, cols[s][x])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// LinkTable renders a link permutation the way the paper's Fig 4 labels
// links: outlink tuple -> inlink tuple, with the cell part separated
// from the port bit.
func LinkTable(p perm.Perm, title string) string {
	n := len(p)
	w := bitops.Log2(uint64(n))
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	fmt.Fprintf(&b, "%-18s %-18s %-10s %s\n", "outlink", "inlink", "from cell", "to cell")
	for x := 0; x < n; x++ {
		y := p[x]
		fmt.Fprintf(&b, "%-18s %-18s %-10d %d\n",
			bitops.Tuple(uint64(x), w), bitops.Tuple(y, w), x>>1, y>>1)
	}
	return b.String()
}

// ComponentTable renders per-component stage intersections (Fig 3): one
// row per component of a window, one column per stage in the window.
func ComponentTable(rows []midigraph.StageIntersection, loStage int, oneBased bool) string {
	var b strings.Builder
	b.WriteString("component")
	if len(rows) == 0 {
		return "no components\n"
	}
	for t := range rows[0].PerStage {
		s := loStage + t
		if oneBased {
			s++
		}
		fmt.Fprintf(&b, "  |V%d|", s)
	}
	b.WriteByte('\n')
	for _, r := range rows {
		fmt.Fprintf(&b, "C%-8d", r.Component)
		for _, c := range r.PerStage {
			fmt.Fprintf(&b, "  %4d", c)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// WindowResults renders a slice of P(i,j) outcomes as a compact table.
func WindowResults(rs []midigraph.WindowResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %-12s %-12s %s\n", "window", "components", "expected", "P(i,j)")
	for _, r := range rs {
		status := "ok"
		if !r.OK() {
			status = "VIOLATED"
		}
		fmt.Fprintf(&b, "(%d,%d)%-5s %-12d %-12d %s\n", r.I, r.J, "", r.Got, r.Expected, status)
	}
	return b.String()
}
