package ascii

import (
	"strings"
	"testing"

	"minequiv/internal/pipid"
	"minequiv/internal/topology"
)

func TestNetworkRendering(t *testing.T) {
	g := topology.Baseline(3)
	out := Network(g, Options{Title: "Baseline(8)", OneBased: true})
	for _, want := range []string{
		"Baseline(8)",
		"3 stages x 4 cells (N = 8 terminals)",
		"stage 1 -> 2:",
		"stage 2 -> 3:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("rendering missing %q:\n%s", want, out)
		}
	}
	// Every cell appears with its two children.
	if !strings.Contains(out, "-> 0, 2") {
		t.Errorf("children listing missing:\n%s", out)
	}
}

func TestNetworkTuples(t *testing.T) {
	g := topology.Baseline(3)
	out := Network(g, Options{Tuples: true})
	if !strings.Contains(out, "(0,0)") || !strings.Contains(out, "(1,1)") {
		t.Errorf("tuple labels missing:\n%s", out)
	}
}

func TestDoubleLinkMarker(t *testing.T) {
	nw, err := topology.FromIndexPerms("fig5", 3,
		[]pipid.IndexPerm{pipid.Identity(3), pipid.PerfectShuffle(3)})
	if err != nil {
		t.Fatal(err)
	}
	out := Network(nw.Graph, Options{})
	if !strings.Contains(out, "(double link)") {
		t.Errorf("double link not marked:\n%s", out)
	}
}

func TestColumns(t *testing.T) {
	g := topology.Baseline(3)
	out := Columns(g, Options{OneBased: true, Title: "cols"})
	if !strings.Contains(out, "stage 1") || !strings.Contains(out, "stage 3") {
		t.Errorf("column headers missing:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Title + header + one line per cell.
	if len(lines) != 2+g.CellsPerStage() {
		t.Errorf("got %d lines:\n%s", len(lines), out)
	}
}

func TestLinkTable(t *testing.T) {
	p := pipid.PerfectShuffle(4).ToPerm()
	out := LinkTable(p, "sigma on 16 links")
	if !strings.Contains(out, "sigma on 16 links") {
		t.Error("title missing")
	}
	if !strings.Contains(out, "(0,0,0,1)") || !strings.Contains(out, "(0,0,1,0)") {
		t.Errorf("tuple columns missing:\n%s", out)
	}
	// 16 data rows + header + title.
	if got := strings.Count(out, "\n"); got != 18 {
		t.Errorf("line count %d, want 18", got)
	}
}

func TestComponentTable(t *testing.T) {
	g := topology.Baseline(4)
	rows := g.ComponentStageTable(1, 3)
	out := ComponentTable(rows, 1, true)
	if !strings.Contains(out, "|V2|") || !strings.Contains(out, "C0") {
		t.Errorf("component table malformed:\n%s", out)
	}
	if got := ComponentTable(nil, 0, false); got != "no components\n" {
		t.Errorf("empty table: %q", got)
	}
}

func TestWindowResults(t *testing.T) {
	g := topology.Baseline(4)
	out := WindowResults(g.CheckSuffix())
	if !strings.Contains(out, "ok") || strings.Contains(out, "VIOLATED") {
		t.Errorf("baseline window table wrong:\n%s", out)
	}
	bad := g.Clone()
	h := uint32(bad.CellsPerStage())
	for y := uint32(0); y < h; y++ {
		bad.SetChildren(2, y, y, (y+1)%h)
	}
	out = WindowResults(bad.CheckSuffix())
	if !strings.Contains(out, "VIOLATED") {
		t.Errorf("violation not rendered:\n%s", out)
	}
}
