// Package perm implements permutations on {0, ..., N-1}, the link-level
// interconnection patterns of §4 of the paper. A stage of a multistage
// interconnection network is specified by one such permutation mapping
// outlink labels of stage i to inlink labels of stage i+1.
package perm

import (
	"fmt"
	"math/rand/v2"
	"sort"
	"strings"
)

// Perm is a permutation: p[i] is the image of i. The zero value is the
// empty permutation on zero symbols.
type Perm []uint64

// Identity returns the identity permutation on n symbols.
func Identity(n int) Perm {
	p := make(Perm, n)
	for i := range p {
		p[i] = uint64(i)
	}
	return p
}

// FromFunc builds the permutation i -> f(i) on n symbols and validates it.
func FromFunc(n int, f func(uint64) uint64) (Perm, error) {
	p := make(Perm, n)
	for i := 0; i < n; i++ {
		p[i] = f(uint64(i))
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// MustFromFunc is FromFunc that panics on invalid input; for package-level
// constructions of the classical permutations whose bijectivity is a
// structural invariant.
func MustFromFunc(n int, f func(uint64) uint64) Perm {
	p, err := FromFunc(n, f)
	if err != nil {
		panic(err)
	}
	return p
}

// Validate checks that p is a bijection on {0..len(p)-1}.
func (p Perm) Validate() error {
	seen := make([]bool, len(p))
	for i, v := range p {
		if v >= uint64(len(p)) {
			return fmt.Errorf("perm: image %d of %d out of range [0,%d)", v, i, len(p))
		}
		if seen[v] {
			return fmt.Errorf("perm: image %d repeated (first duplicate at source %d)", v, i)
		}
		seen[v] = true
	}
	return nil
}

// N returns the number of symbols.
func (p Perm) N() int { return len(p) }

// Apply returns the image of x.
func (p Perm) Apply(x uint64) uint64 { return p[x] }

// Compose returns the permutation "q after p": x -> q(p(x)).
func (p Perm) Compose(q Perm) Perm {
	if len(p) != len(q) {
		panic(fmt.Sprintf("perm: composing permutations on %d and %d symbols", len(p), len(q)))
	}
	r := make(Perm, len(p))
	for i, v := range p {
		r[i] = q[v]
	}
	return r
}

// Inverse returns the inverse permutation.
func (p Perm) Inverse() Perm {
	inv := make(Perm, len(p))
	for i, v := range p {
		inv[v] = uint64(i)
	}
	return inv
}

// Equal reports whether p and q are the same permutation.
func (p Perm) Equal(q Perm) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		if p[i] != q[i] {
			return false
		}
	}
	return true
}

// IsIdentity reports whether p fixes every symbol.
func (p Perm) IsIdentity() bool {
	for i, v := range p {
		if v != uint64(i) {
			return false
		}
	}
	return true
}

// Clone returns a copy of p.
func (p Perm) Clone() Perm {
	q := make(Perm, len(p))
	copy(q, p)
	return q
}

// Cycles returns the cycle decomposition of p, each cycle starting at its
// smallest element, cycles sorted by that element. Fixed points are
// included as 1-cycles.
func (p Perm) Cycles() [][]uint64 {
	seen := make([]bool, len(p))
	var cycles [][]uint64
	for i := range p {
		if seen[i] {
			continue
		}
		var cyc []uint64
		for j := uint64(i); !seen[j]; j = p[j] {
			seen[j] = true
			cyc = append(cyc, j)
		}
		cycles = append(cycles, cyc)
	}
	return cycles
}

// Order returns the multiplicative order of p (lcm of cycle lengths).
func (p Perm) Order() uint64 {
	order := uint64(1)
	for _, c := range p.Cycles() {
		order = lcm(order, uint64(len(c)))
	}
	return order
}

// Parity returns 0 for even permutations and 1 for odd ones.
func (p Perm) Parity() int {
	transpositions := 0
	for _, c := range p.Cycles() {
		transpositions += len(c) - 1
	}
	return transpositions & 1
}

// FixedPoints returns the symbols fixed by p, in increasing order.
func (p Perm) FixedPoints() []uint64 {
	var fp []uint64
	for i, v := range p {
		if v == uint64(i) {
			fp = append(fp, uint64(i))
		}
	}
	return fp
}

// Random returns a uniformly random permutation on n symbols
// (Fisher-Yates driven by rng).
func Random(rng *rand.Rand, n int) Perm {
	p := Identity(n)
	for i := n - 1; i > 0; i-- {
		j := rng.IntN(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Power returns p composed with itself k times (k >= 0).
func (p Perm) Power(k int) Perm {
	r := Identity(len(p))
	base := p.Clone()
	for k > 0 {
		if k&1 == 1 {
			r = r.Compose(base)
		}
		base = base.Compose(base)
		k >>= 1
	}
	return r
}

// String renders p in cycle notation, e.g. "(0 2 1)(3)".
func (p Perm) String() string {
	cycles := p.Cycles()
	sort.Slice(cycles, func(i, j int) bool { return cycles[i][0] < cycles[j][0] })
	var b strings.Builder
	for _, c := range cycles {
		b.WriteByte('(')
		for i, v := range c {
			if i > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%d", v)
		}
		b.WriteByte(')')
	}
	if b.Len() == 0 {
		return "()"
	}
	return b.String()
}

func gcd(a, b uint64) uint64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func lcm(a, b uint64) uint64 {
	if a == 0 || b == 0 {
		return 0
	}
	return a / gcd(a, b) * b
}
