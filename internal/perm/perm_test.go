package perm

import (
	mrand "math/rand"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestIdentity(t *testing.T) {
	p := Identity(8)
	if !p.IsIdentity() {
		t.Fatal("Identity not identity")
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.N() != 8 {
		t.Fatal("N wrong")
	}
	for x := uint64(0); x < 8; x++ {
		if p.Apply(x) != x {
			t.Fatal("Apply wrong")
		}
	}
}

func TestValidate(t *testing.T) {
	bad := Perm{0, 1, 1}
	if bad.Validate() == nil {
		t.Error("duplicate image accepted")
	}
	bad = Perm{0, 3, 1}
	if bad.Validate() == nil {
		t.Error("out-of-range image accepted")
	}
	good := Perm{2, 0, 1}
	if err := good.Validate(); err != nil {
		t.Errorf("valid perm rejected: %v", err)
	}
	var empty Perm
	if err := empty.Validate(); err != nil {
		t.Errorf("empty perm rejected: %v", err)
	}
}

func TestFromFunc(t *testing.T) {
	p, err := FromFunc(4, func(x uint64) uint64 { return 3 - x })
	if err != nil {
		t.Fatal(err)
	}
	if !p.Equal(Perm{3, 2, 1, 0}) {
		t.Fatalf("FromFunc = %v", p)
	}
	if _, err := FromFunc(4, func(x uint64) uint64 { return 0 }); err == nil {
		t.Error("constant function accepted as permutation")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustFromFunc did not panic on invalid input")
		}
	}()
	MustFromFunc(4, func(x uint64) uint64 { return 0 })
}

func TestComposeInverse(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 0))
	for trial := 0; trial < 100; trial++ {
		n := rng.IntN(30) + 1
		p := Random(rng, n)
		q := Random(rng, n)
		// Compose order: (p.Compose(q))(x) = q(p(x)).
		for x := uint64(0); x < uint64(n); x++ {
			if p.Compose(q).Apply(x) != q.Apply(p.Apply(x)) {
				t.Fatal("compose order wrong")
			}
		}
		if !p.Compose(p.Inverse()).IsIdentity() || !p.Inverse().Compose(p).IsIdentity() {
			t.Fatal("inverse law fails")
		}
		if !p.Inverse().Inverse().Equal(p) {
			t.Fatal("double inverse != p")
		}
	}
}

func TestCycles(t *testing.T) {
	p := Perm{1, 2, 0, 3, 5, 4}
	cycles := p.Cycles()
	want := [][]uint64{{0, 1, 2}, {3}, {4, 5}}
	if len(cycles) != len(want) {
		t.Fatalf("cycles = %v", cycles)
	}
	for i := range want {
		if len(cycles[i]) != len(want[i]) {
			t.Fatalf("cycle %d = %v, want %v", i, cycles[i], want[i])
		}
		for j := range want[i] {
			if cycles[i][j] != want[i][j] {
				t.Fatalf("cycle %d = %v, want %v", i, cycles[i], want[i])
			}
		}
	}
	if p.Order() != 6 {
		t.Errorf("Order = %d, want 6", p.Order())
	}
	if p.Parity() != 1 { // (3-cycle: even) * (2-cycle: odd) = odd
		t.Errorf("Parity = %d, want 1", p.Parity())
	}
	fp := p.FixedPoints()
	if len(fp) != 1 || fp[0] != 3 {
		t.Errorf("FixedPoints = %v", fp)
	}
}

func TestPower(t *testing.T) {
	p := Perm{1, 2, 3, 0}
	if !p.Power(0).IsIdentity() {
		t.Error("p^0 != id")
	}
	if !p.Power(1).Equal(p) {
		t.Error("p^1 != p")
	}
	if !p.Power(4).IsIdentity() {
		t.Error("p^4 != id for 4-cycle")
	}
	if !p.Power(2).Equal(Perm{2, 3, 0, 1}) {
		t.Errorf("p^2 = %v", p.Power(2))
	}
	// p^order == identity for random permutations.
	rng := rand.New(rand.NewPCG(2, 0))
	for trial := 0; trial < 20; trial++ {
		q := Random(rng, rng.IntN(12)+1)
		if !q.Power(int(q.Order())).IsIdentity() {
			t.Fatal("p^order != id")
		}
	}
}

func TestString(t *testing.T) {
	if got := (Perm{1, 0, 2}).String(); got != "(0 1)(2)" {
		t.Errorf("String = %q", got)
	}
	var empty Perm
	if got := empty.String(); got != "()" {
		t.Errorf("empty String = %q", got)
	}
}

func TestRandomIsUniformish(t *testing.T) {
	// Sanity check: all 6 permutations of 3 symbols appear in 600 draws.
	rng := rand.New(rand.NewPCG(3, 0))
	counts := map[string]int{}
	for i := 0; i < 600; i++ {
		counts[Random(rng, 3).String()]++
	}
	if len(counts) != 6 {
		t.Fatalf("saw %d distinct perms of 3 symbols, want 6", len(counts))
	}
	for s, c := range counts {
		if c < 50 {
			t.Errorf("perm %s badly undersampled: %d/600", s, c)
		}
	}
}

// Property: parity is a homomorphism: parity(pq) = parity(p)+parity(q) mod 2.
func TestParityHomomorphism(t *testing.T) {
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 0))
		n := r.IntN(20) + 2
		p := Random(r, n)
		q := Random(r, n)
		return p.Compose(q).Parity() == (p.Parity()+q.Parity())&1
	}
	if err := quick.Check(f, &quick.Config{Rand: mrand.New(mrand.NewSource(1)), MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Cycles partitions the symbol set.
func TestCyclesPartition(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 0))
	for trial := 0; trial < 100; trial++ {
		n := rng.IntN(40) + 1
		p := Random(rng, n)
		seen := make([]bool, n)
		total := 0
		for _, c := range p.Cycles() {
			for _, v := range c {
				if seen[v] {
					t.Fatal("symbol in two cycles")
				}
				seen[v] = true
				total++
			}
			// Each cycle is really a cycle of p.
			for i, v := range c {
				if p[v] != c[(i+1)%len(c)] {
					t.Fatal("cycle does not follow p")
				}
			}
		}
		if total != n {
			t.Fatal("cycles miss symbols")
		}
	}
}

func BenchmarkCompose(b *testing.B) {
	rng := rand.New(rand.NewPCG(6, 0))
	p := Random(rng, 1<<12)
	q := Random(rng, 1<<12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Compose(q)
	}
}
