// Package census exhaustively enumerates small MI-digraphs and counts
// how the paper's properties partition them: valid graphs, Banyan
// graphs, baseline-equivalent graphs, and the window-signature classes
// of the Banyan-but-not-equivalent remainder. It quantifies how sharp
// the characterization is — e.g. for n = 3, only a minority of Banyan
// digraphs are equivalent to the Baseline.
//
// The enumeration space is the square of the set of valid connections
// (6.35M graphs at n = 3), so the census shards the outer connection
// across a worker pool and merges partial tallies over a channel.
package census

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"minequiv/internal/midigraph"
)

// Connections enumerates every valid connection (f,g) on 2^m cells:
// ordered child pairs such that every target cell has total indegree
// exactly 2. The count for m bits is (2h)! / 2!^h arrangements of arc
// endpoints — 6 for h = 2, 2520 for h = 4 — so this is only feasible for
// m <= 2.
func Connections(m int) [][2][]uint8 {
	if m < 1 || m > 2 {
		panic(fmt.Sprintf("census: connection enumeration limited to m in {1,2}, got %d", m))
	}
	h := 1 << uint(m)
	var out [][2][]uint8
	f := make([]uint8, h)
	g := make([]uint8, h)
	indeg := make([]int, h)
	var rec func(slot int)
	rec = func(slot int) {
		if slot == 2*h {
			cf := make([]uint8, h)
			cg := make([]uint8, h)
			copy(cf, f)
			copy(cg, g)
			out = append(out, [2][]uint8{cf, cg})
			return
		}
		cell := slot / 2
		for target := 0; target < h; target++ {
			if indeg[target] == 2 {
				continue
			}
			indeg[target]++
			if slot%2 == 0 {
				f[cell] = uint8(target)
			} else {
				g[cell] = uint8(target)
			}
			rec(slot + 1)
			indeg[target]--
		}
	}
	rec(0)
	return out
}

// Result tallies one census run.
type Result struct {
	N                int    // stages
	Valid            uint64 // valid MI-digraphs enumerated
	Banyan           uint64 // ... of which Banyan
	Equivalent       uint64 // ... of which baseline-equivalent
	BanyanNotEquiv   uint64 // Banyan minus equivalent
	SignatureClasses int    // distinct all-window component signatures among Banyan graphs
	// SignatureCounts maps each signature (as a printable key) to the
	// number of Banyan graphs carrying it; the equivalent class is the
	// one whose signature matches the Baseline.
	SignatureCounts map[string]uint64
}

// signature serializes the all-window component counts of a graph.
func signature(g *midigraph.Graph) string {
	rs := g.CheckAllWindows()
	b := make([]byte, 0, len(rs)*3)
	for _, r := range rs {
		b = append(b, byte('0'+r.I), byte('0'+r.J), ':')
		b = append(b, []byte(fmt.Sprintf("%d,", r.Got))...)
	}
	return string(b)
}

// Run enumerates every n-stage MI-digraph whose connections come from
// the valid-connection set and tallies the properties. Only n = 2 and
// n = 3 are feasible (6 and ~6.35M graphs respectively). Workers <= 0
// selects GOMAXPROCS.
func Run(n int, workers int) (Result, error) {
	if n != 2 && n != 3 {
		return Result{}, fmt.Errorf("census: exhaustive run supports n in {2,3}, got %d", n)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	m := n - 1
	conns := Connections(m)
	res := Result{N: n, SignatureCounts: map[string]uint64{}}

	if n == 2 {
		for _, c := range conns {
			g := graphFromConns(n, [][2][]uint8{c})
			tally(&res, g)
		}
		res.finish()
		return res, nil
	}

	// n == 3: shard the first connection across workers.
	type partial struct {
		valid, banyan, equivalent uint64
		sigs                      map[string]uint64
	}
	jobs := make(chan int, workers)
	parts := make(chan partial, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p := partial{sigs: map[string]uint64{}}
			for i := range jobs {
				first := conns[i]
				for _, second := range conns {
					g := graphFromConns(n, [][2][]uint8{first, second})
					p.valid++
					banyan, _ := g.IsBanyan()
					if !banyan {
						continue
					}
					p.banyan++
					sig := signature(g)
					p.sigs[sig]++
					if midigraph.AllOK(g.CheckPrefix()) && midigraph.AllOK(g.CheckSuffix()) {
						p.equivalent++
					}
				}
			}
			parts <- p
		}()
	}
	for i := range conns {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	close(parts)
	for p := range parts {
		res.Valid += p.valid
		res.Banyan += p.banyan
		res.Equivalent += p.equivalent
		for k, v := range p.sigs {
			res.SignatureCounts[k] += v
		}
	}
	res.finish()
	return res, nil
}

func tally(res *Result, g *midigraph.Graph) {
	res.Valid++
	banyan, _ := g.IsBanyan()
	if !banyan {
		return
	}
	res.Banyan++
	res.SignatureCounts[signature(g)]++
	if midigraph.AllOK(g.CheckPrefix()) && midigraph.AllOK(g.CheckSuffix()) {
		res.Equivalent++
	}
}

func (r *Result) finish() {
	r.BanyanNotEquiv = r.Banyan - r.Equivalent
	r.SignatureClasses = len(r.SignatureCounts)
}

func graphFromConns(n int, conns [][2][]uint8) *midigraph.Graph {
	g := midigraph.New(n)
	for s, c := range conns {
		for x := range c[0] {
			g.SetChildren(s, uint32(x), uint32(c[0][x]), uint32(c[1][x]))
		}
	}
	return g
}

// TopSignatures returns the signature classes sorted by descending count
// (ties by key), up to limit entries.
func (r Result) TopSignatures(limit int) []struct {
	Signature string
	Count     uint64
} {
	type kv struct {
		Signature string
		Count     uint64
	}
	all := make([]kv, 0, len(r.SignatureCounts))
	for k, v := range r.SignatureCounts {
		all = append(all, kv{k, v})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Count != all[j].Count {
			return all[i].Count > all[j].Count
		}
		return all[i].Signature < all[j].Signature
	})
	if limit > len(all) {
		limit = len(all)
	}
	out := make([]struct {
		Signature string
		Count     uint64
	}, limit)
	for i := 0; i < limit; i++ {
		out[i] = struct {
			Signature string
			Count     uint64
		}{all[i].Signature, all[i].Count}
	}
	return out
}
