package census

import (
	"testing"

	"minequiv/internal/conn"
	"minequiv/internal/midigraph"
	"minequiv/internal/topology"
)

func TestConnectionsCount(t *testing.T) {
	// (2h)!/(2!)^h arc arrangements: h=2 -> 4!/4 = 6; h=4 -> 8!/16 = 2520.
	if got := len(Connections(1)); got != 6 {
		t.Fatalf("m=1: %d connections, want 6", got)
	}
	if got := len(Connections(2)); got != 2520 {
		t.Fatalf("m=2: %d connections, want 2520", got)
	}
}

func TestConnectionsAreValid(t *testing.T) {
	for _, m := range []int{1, 2} {
		for _, c := range Connections(m) {
			f := make([]uint32, len(c[0]))
			g := make([]uint32, len(c[1]))
			for i := range c[0] {
				f[i], g[i] = uint32(c[0][i]), uint32(c[1][i])
			}
			cc, err := conn.New(m, f, g)
			if err != nil {
				t.Fatal(err)
			}
			if !cc.IsValid() {
				t.Fatalf("m=%d: enumerated connection invalid: %v %v", m, f, g)
			}
		}
	}
}

func TestConnectionsDistinct(t *testing.T) {
	seen := map[string]bool{}
	for _, c := range Connections(2) {
		key := string(c[0]) + "|" + string(c[1])
		if seen[key] {
			t.Fatal("duplicate connection enumerated")
		}
		seen[key] = true
	}
}

func TestRunN2Exact(t *testing.T) {
	// Hand-verified: 6 valid 2-stage graphs; 4 are Banyan (the K_{2,2}
	// patterns); all 4 Banyan ones are baseline-equivalent.
	res, err := Run(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Valid != 6 || res.Banyan != 4 || res.Equivalent != 4 || res.BanyanNotEquiv != 0 {
		t.Fatalf("n=2 census: %+v", res)
	}
	if res.SignatureClasses != 1 {
		t.Fatalf("n=2: %d signature classes, want 1", res.SignatureClasses)
	}
}

func TestRunN3Consistency(t *testing.T) {
	if testing.Short() {
		t.Skip("full n=3 census is a few seconds")
	}
	res, err := Run(3, 0)
	if err != nil {
		t.Fatal(err)
	}
	// 2520^2 valid graphs.
	if res.Valid != 2520*2520 {
		t.Fatalf("valid = %d, want %d", res.Valid, 2520*2520)
	}
	if res.Banyan == 0 || res.Equivalent == 0 {
		t.Fatalf("degenerate census: %+v", res)
	}
	if res.Equivalent > res.Banyan || res.Banyan > res.Valid {
		t.Fatalf("inconsistent tallies: %+v", res)
	}
	if res.BanyanNotEquiv != res.Banyan-res.Equivalent {
		t.Fatalf("remainder wrong: %+v", res)
	}
	// The equivalent graphs form exactly one signature class — the
	// Baseline's — and it must be present.
	base := topology.Baseline(3)
	baseSig := signature(base)
	if res.SignatureCounts[baseSig] == 0 {
		t.Fatal("baseline signature missing from census")
	}
	// Every baseline-equivalent graph carries the baseline signature
	// (window counts are isomorphism invariants), so the class count of
	// that signature is at least the equivalent tally.
	if res.SignatureCounts[baseSig] < res.Equivalent {
		t.Fatalf("baseline signature class %d smaller than equivalent count %d",
			res.SignatureCounts[baseSig], res.Equivalent)
	}
	// Signature counts add up to the Banyan tally.
	var sum uint64
	for _, v := range res.SignatureCounts {
		sum += v
	}
	if sum != res.Banyan {
		t.Fatalf("signature counts sum %d != banyan %d", sum, res.Banyan)
	}
	// Determinism across worker counts.
	res2, err := Run(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Banyan != res.Banyan || res2.Equivalent != res.Equivalent {
		t.Fatalf("worker count changed tallies: %+v vs %+v", res, res2)
	}
}

func TestRunRejectsBadN(t *testing.T) {
	if _, err := Run(4, 1); err == nil {
		t.Error("n=4 accepted")
	}
	if _, err := Run(1, 1); err == nil {
		t.Error("n=1 accepted")
	}
}

func TestTopSignatures(t *testing.T) {
	res, err := Run(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	top := res.TopSignatures(5)
	if len(top) != 1 || top[0].Count != 4 {
		t.Fatalf("top signatures wrong: %+v", top)
	}
}

func TestSignatureMatchesWindows(t *testing.T) {
	g := topology.Baseline(3)
	sig := signature(g)
	// Baseline windows: (1,1):4 (1,2):2 (1,3):1 (2,2):4 (2,3):2 (3,3):4.
	for _, r := range g.CheckAllWindows() {
		if !r.OK() {
			t.Fatal("baseline window violated")
		}
	}
	other, err := randTail()
	if err != nil {
		t.Fatal(err)
	}
	if signature(other) == sig {
		t.Fatal("counterexample shares baseline signature")
	}
}

func randTail() (*midigraph.Graph, error) {
	g := topology.Baseline(3)
	h := uint32(g.CellsPerStage())
	for y := uint32(0); y < h; y++ {
		g.SetChildren(1, y, y, (y+1)%h)
	}
	return g, g.Validate()
}
