package bitops

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestMask(t *testing.T) {
	cases := []struct {
		w    int
		want uint64
	}{
		{-1, 0}, {0, 0}, {1, 1}, {2, 3}, {3, 7}, {8, 255},
		{63, 1<<63 - 1}, {64, ^uint64(0)}, {70, ^uint64(0)},
	}
	for _, c := range cases {
		if got := Mask(c.w); got != c.want {
			t.Errorf("Mask(%d) = %#x, want %#x", c.w, got, c.want)
		}
	}
}

func TestBitSetFlip(t *testing.T) {
	x := uint64(0b1010)
	if Bit(x, 0) != 0 || Bit(x, 1) != 1 || Bit(x, 2) != 0 || Bit(x, 3) != 1 {
		t.Fatalf("Bit readings wrong for %b", x)
	}
	if got := SetBit(x, 0, 1); got != 0b1011 {
		t.Errorf("SetBit(1010,0,1) = %b", got)
	}
	if got := SetBit(x, 1, 0); got != 0b1000 {
		t.Errorf("SetBit(1010,1,0) = %b", got)
	}
	if got := SetBit(x, 1, 1); got != x {
		t.Errorf("SetBit same value changed input: %b", got)
	}
	if got := FlipBit(x, 3); got != 0b0010 {
		t.Errorf("FlipBit(1010,3) = %b", got)
	}
	if got := FlipBit(FlipBit(x, 2), 2); got != x {
		t.Errorf("FlipBit twice not identity: %b", got)
	}
}

func TestInsertDeleteBit(t *testing.T) {
	// Inserting then deleting at the same position is the identity.
	for x := uint64(0); x < 64; x++ {
		for i := 0; i < 7; i++ {
			for b := uint64(0); b < 2; b++ {
				ins := InsertBit(x, i, b)
				if Bit(ins, i) != b {
					t.Fatalf("InsertBit(%d,%d,%d): bit not set", x, i, b)
				}
				if got := DeleteBit(ins, i); got != x {
					t.Fatalf("DeleteBit(InsertBit(%d,%d,%d)) = %d", x, i, b, got)
				}
			}
		}
	}
	if got := InsertBit(0b101, 0, 1); got != 0b1011 {
		t.Errorf("InsertBit(101,0,1) = %b", got)
	}
	if got := InsertBit(0b101, 2, 0); got != 0b1001 {
		t.Errorf("InsertBit(101,2,0) = %b", got)
	}
	if got := DeleteBit(0b1011, 1); got != 0b101 {
		t.Errorf("DeleteBit(1011,1) = %b", got)
	}
	if got := DeleteBit(0b1011, 3); got != 0b011 {
		t.Errorf("DeleteBit(1011,3) = %b", got)
	}
}

func TestExtractBit(t *testing.T) {
	b, rest := ExtractBit(0b1101, 1)
	if b != 0 || rest != 0b111 {
		t.Errorf("ExtractBit(1101,1) = %d,%b", b, rest)
	}
	b, rest = ExtractBit(0b1101, 2)
	if b != 1 || rest != 0b101 {
		t.Errorf("ExtractBit(1101,2) = %d,%b", b, rest)
	}
}

func TestRotations(t *testing.T) {
	// Perfect shuffle on 3 bits: (x2,x1,x0) -> (x1,x0,x2).
	cases := []struct{ x, want uint64 }{
		{0b000, 0b000}, {0b001, 0b010}, {0b010, 0b100}, {0b100, 0b001},
		{0b110, 0b101}, {0b111, 0b111},
	}
	for _, c := range cases {
		if got := RotLeft(c.x, 3); got != c.want {
			t.Errorf("RotLeft(%03b,3) = %03b, want %03b", c.x, got, c.want)
		}
		if got := RotRight(c.want, 3); got != c.x {
			t.Errorf("RotRight(%03b,3) = %03b, want %03b", c.want, got, c.x)
		}
	}
	// Width-1 and width-0 rotations are the identity.
	if RotLeft(1, 1) != 1 || RotRight(1, 1) != 1 || RotLeft(0, 0) != 0 {
		t.Error("degenerate rotations wrong")
	}
	// w rotations of w bits is the identity.
	for w := 1; w <= 10; w++ {
		x := uint64(0x2f) & Mask(w)
		y := x
		for i := 0; i < w; i++ {
			y = RotLeft(y, w)
		}
		if y != x {
			t.Errorf("w=%d: %d rotations != identity (got %b want %b)", w, w, y, x)
		}
	}
}

func TestRotK(t *testing.T) {
	// sigma_2 on 4 bits touches only bits 0..1.
	x := uint64(0b1101)
	if got := RotLeftK(x, 4, 2); got != 0b1110 {
		t.Errorf("RotLeftK(1101,4,2) = %04b", got)
	}
	if got := RotRightK(0b1110, 4, 2); got != x {
		t.Errorf("RotRightK(1110,4,2) = %04b", got)
	}
	// k = w degenerates to a full rotation.
	if RotLeftK(x, 4, 4) != RotLeft(x, 4) {
		t.Error("RotLeftK(k=w) != RotLeft")
	}
	// k > w is clamped.
	if RotLeftK(x, 4, 9) != RotLeft(x, 4) {
		t.Error("RotLeftK(k>w) != RotLeft")
	}
	// k = 1 and k = 0 are identities.
	if RotLeftK(x, 4, 1) != x || RotLeftK(x, 4, 0) != x {
		t.Error("RotLeftK small k not identity")
	}
}

func TestSwapBits(t *testing.T) {
	if got := SwapBits(0b0001, 0, 3); got != 0b1000 {
		t.Errorf("SwapBits(0001,0,3) = %04b", got)
	}
	if got := SwapBits(0b1001, 0, 3); got != 0b1001 {
		t.Errorf("SwapBits equal bits changed value: %04b", got)
	}
	if got := SwapBits(0b0101, 2, 2); got != 0b0101 {
		t.Errorf("SwapBits(i==j) changed value: %04b", got)
	}
}

func TestReverse(t *testing.T) {
	cases := []struct {
		x    uint64
		w    int
		want uint64
	}{
		{0b001, 3, 0b100}, {0b110, 3, 0b011}, {0b101, 3, 0b101},
		{0b0001, 4, 0b1000}, {1, 1, 1}, {0, 5, 0},
	}
	for _, c := range cases {
		if got := Reverse(c.x, c.w); got != c.want {
			t.Errorf("Reverse(%b,%d) = %b, want %b", c.x, c.w, got, c.want)
		}
	}
}

func TestTupleRoundTrip(t *testing.T) {
	if got := Tuple(5, 4); got != "(0,1,0,1)" {
		t.Errorf("Tuple(5,4) = %q", got)
	}
	if got := Tuple(0, 3); got != "(0,0,0)" {
		t.Errorf("Tuple(0,3) = %q", got)
	}
	for x := uint64(0); x < 32; x++ {
		s := Tuple(x, 5)
		y, w, err := ParseTuple(s)
		if err != nil || y != x || w != 5 {
			t.Errorf("ParseTuple(Tuple(%d,5)) = %d,%d,%v", x, y, w, err)
		}
	}
	if _, _, err := ParseTuple("(0,2,1)"); err == nil {
		t.Error("ParseTuple accepted digit 2")
	}
	if _, _, err := ParseTuple("0,1"); err == nil {
		t.Error("ParseTuple accepted unparenthesized input")
	}
	if x, w, err := ParseTuple(" (1, 0, 1) "); err != nil || x != 5 || w != 3 {
		t.Errorf("ParseTuple with spaces = %d,%d,%v", x, w, err)
	}
}

func TestBitsFromBits(t *testing.T) {
	for x := uint64(0); x < 64; x++ {
		if got := FromBits(Bits(x, 6)); got != x {
			t.Errorf("FromBits(Bits(%d)) = %d", x, got)
		}
	}
	bits := Bits(0b1011, 4)
	want := []uint64{1, 1, 0, 1}
	for i := range want {
		if bits[i] != want[i] {
			t.Errorf("Bits(1011)[%d] = %d, want %d", i, bits[i], want[i])
		}
	}
}

func TestLog2(t *testing.T) {
	for i := 0; i < 30; i++ {
		if got := Log2(1 << uint(i)); got != i {
			t.Errorf("Log2(2^%d) = %d", i, got)
		}
	}
	for _, bad := range []uint64{0, 3, 5, 6, 7, 12, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Log2(%d) did not panic", bad)
				}
			}()
			Log2(bad)
		}()
	}
	if IsPow2(0) || IsPow2(3) || !IsPow2(1) || !IsPow2(1024) {
		t.Error("IsPow2 wrong")
	}
}

// Property: RotLeft and RotRight are inverse bijections on w-bit values.
func TestRotInverseProperty(t *testing.T) {
	f := func(x uint64, wRaw uint8) bool {
		w := int(wRaw%16) + 1
		x &= Mask(w)
		return RotRight(RotLeft(x, w), w) == x && RotLeft(RotRight(x, w), w) == x
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Reverse is an involution.
func TestReverseInvolution(t *testing.T) {
	f := func(x uint64, wRaw uint8) bool {
		w := int(wRaw%20) + 1
		x &= Mask(w)
		return Reverse(Reverse(x, w), w) == x
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: SwapBits is an involution and preserves the number of set bits.
func TestSwapInvolution(t *testing.T) {
	f := func(x uint64, iRaw, jRaw uint8) bool {
		i, j := int(iRaw%16), int(jRaw%16)
		return SwapBits(SwapBits(x, i, j), i, j) == x
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: InsertBit/DeleteBit round-trip at random positions.
func TestInsertDeleteProperty(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 0))
	for trial := 0; trial < 2000; trial++ {
		w := rng.IntN(20) + 1
		x := rng.Uint64() & Mask(w)
		i := rng.IntN(w + 1)
		b := rng.Uint64() & 1
		ins := InsertBit(x, i, b)
		if DeleteBit(ins, i) != x {
			t.Fatalf("round trip failed: x=%b i=%d b=%d", x, i, b)
		}
		// Deleting a bit then reinserting the deleted value restores x.
		db, rest := ExtractBit(x, i%w)
		if InsertBit(rest, i%w, db) != x {
			t.Fatalf("extract/insert failed: x=%b i=%d", x, i%w)
		}
	}
}

// TestTranspose64: reference bit-by-bit transpose, involution, and a
// randomized property sweep.
func TestTranspose64(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 0))
	for trial := 0; trial < 200; trial++ {
		var a, orig [64]uint64
		for i := range a {
			a[i] = rng.Uint64()
		}
		orig = a
		Transpose64(&a)
		for i := 0; i < 64; i++ {
			for j := 0; j < 64; j++ {
				if Bit(a[i], j) != Bit(orig[j], i) {
					t.Fatalf("trial %d: transposed[%d] bit %d = %d, want orig[%d] bit %d = %d",
						trial, i, j, Bit(a[i], j), j, i, Bit(orig[j], i))
				}
			}
		}
		Transpose64(&a)
		if a != orig {
			t.Fatalf("trial %d: transpose is not an involution", trial)
		}
	}
}
