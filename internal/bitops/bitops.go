// Package bitops provides bit-field manipulation helpers for the binary
// cell and link labels used throughout the multistage interconnection
// network (MIN) literature and in Bermond & Fourneau's paper.
//
// Labels are w-bit unsigned values. Bit 0 is the least significant digit
// x_0 of the paper's tuple notation (x_{w-1}, ..., x_1, x_0). All
// functions treat bits above position w-1 as absent: inputs are masked,
// outputs never carry stray high bits.
package bitops

import (
	"fmt"
	"strings"
)

// Mask returns a value with the low w bits set. Mask(0) == 0.
func Mask(w int) uint64 {
	if w <= 0 {
		return 0
	}
	if w >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << uint(w)) - 1
}

// Bit returns bit i of x (0 or 1).
func Bit(x uint64, i int) uint64 {
	return (x >> uint(i)) & 1
}

// SetBit returns x with bit i forced to b (b must be 0 or 1).
func SetBit(x uint64, i int, b uint64) uint64 {
	if b&1 == 0 {
		return x &^ (uint64(1) << uint(i))
	}
	return x | (uint64(1) << uint(i))
}

// FlipBit returns x with bit i complemented.
func FlipBit(x uint64, i int) uint64 {
	return x ^ (uint64(1) << uint(i))
}

// InsertBit widens x by one bit: bits above position i shift left, bit i
// becomes b, bits below i stay. The result has one more significant bit
// than x. InsertBit(x, 0, b) == x<<1 | b.
func InsertBit(x uint64, i int, b uint64) uint64 {
	hi := x >> uint(i) << uint(i+1)
	lo := x & Mask(i)
	return hi | (b&1)<<uint(i) | lo
}

// DeleteBit narrows x by one bit: bit i is removed and bits above it
// shift right. DeleteBit(x, 0) == x>>1.
func DeleteBit(x uint64, i int) uint64 {
	hi := x >> uint(i+1) << uint(i)
	lo := x & Mask(i)
	return hi | lo
}

// ExtractBit returns bit i of x together with x with that bit deleted.
func ExtractBit(x uint64, i int) (bit uint64, rest uint64) {
	return Bit(x, i), DeleteBit(x, i)
}

// RotLeft rotates the low w bits of x left by one position: the most
// significant of the w bits becomes bit 0. This is the perfect shuffle
// sigma of the paper restricted to w digits:
//
//	sigma(x_{w-1}, x_{w-2}, ..., x_0) = (x_{w-2}, ..., x_0, x_{w-1}).
//
// Bits of x at position >= w are discarded.
func RotLeft(x uint64, w int) uint64 {
	if w <= 1 {
		return x & Mask(w)
	}
	x &= Mask(w)
	return ((x << 1) | (x >> uint(w-1))) & Mask(w)
}

// RotRight rotates the low w bits of x right by one position: bit 0 moves
// to position w-1. This is the inverse perfect shuffle (unshuffle).
func RotRight(x uint64, w int) uint64 {
	if w <= 1 {
		return x & Mask(w)
	}
	x &= Mask(w)
	return (x >> 1) | ((x & 1) << uint(w-1))
}

// RotLeftK rotates only the low k bits of x left by one, leaving bits k
// and above untouched. This is the paper's k-subshuffle sigma_k.
func RotLeftK(x uint64, w, k int) uint64 {
	if k > w {
		k = w
	}
	hi := x & (Mask(w) &^ Mask(k))
	return hi | RotLeft(x&Mask(k), k)
}

// RotRightK rotates only the low k bits of x right by one, leaving bits k
// and above untouched (inverse k-subshuffle).
func RotRightK(x uint64, w, k int) uint64 {
	if k > w {
		k = w
	}
	hi := x & (Mask(w) &^ Mask(k))
	return hi | RotRight(x&Mask(k), k)
}

// SwapBits returns x with bits i and j exchanged. SwapBits with i == j is
// the identity. Exchanging bit 0 with bit k is the paper's k-butterfly.
func SwapBits(x uint64, i, j int) uint64 {
	bi, bj := Bit(x, i), Bit(x, j)
	if bi == bj {
		return x
	}
	return FlipBit(FlipBit(x, i), j)
}

// Reverse reverses the low w bits of x: bit i moves to position w-1-i.
// This is the bit-reversal permutation rho of the paper.
func Reverse(x uint64, w int) uint64 {
	var r uint64
	x &= Mask(w)
	for i := 0; i < w; i++ {
		r = (r << 1) | (x & 1)
		x >>= 1
	}
	return r
}

// Tuple formats x as the paper's w-digit binary tuple, most significant
// digit first: Tuple(5, 4) == "(0,1,0,1)".
func Tuple(x uint64, w int) string {
	var b strings.Builder
	b.WriteByte('(')
	for i := w - 1; i >= 0; i-- {
		if Bit(x, i) == 1 {
			b.WriteByte('1')
		} else {
			b.WriteByte('0')
		}
		if i > 0 {
			b.WriteByte(',')
		}
	}
	b.WriteByte(')')
	return b.String()
}

// ParseTuple parses the format produced by Tuple and reports the value and
// width. Whitespace inside the tuple is ignored.
func ParseTuple(s string) (x uint64, w int, err error) {
	s = strings.TrimSpace(s)
	if len(s) < 2 || s[0] != '(' || s[len(s)-1] != ')' {
		return 0, 0, fmt.Errorf("bitops: tuple %q must be parenthesized", s)
	}
	body := s[1 : len(s)-1]
	if strings.TrimSpace(body) == "" {
		return 0, 0, nil
	}
	for _, part := range strings.Split(body, ",") {
		part = strings.TrimSpace(part)
		switch part {
		case "0":
			x = x << 1
		case "1":
			x = x<<1 | 1
		default:
			return 0, 0, fmt.Errorf("bitops: tuple digit %q is not 0 or 1", part)
		}
		w++
		if w > 64 {
			return 0, 0, fmt.Errorf("bitops: tuple wider than 64 bits")
		}
	}
	return x, w, nil
}

// Bits expands x into a slice of its low w bits, index i holding x_i.
func Bits(x uint64, w int) []uint64 {
	out := make([]uint64, w)
	for i := range out {
		out[i] = Bit(x, i)
	}
	return out
}

// FromBits reassembles a value from a bit slice as produced by Bits.
func FromBits(bits []uint64) uint64 {
	var x uint64
	for i, b := range bits {
		x |= (b & 1) << uint(i)
	}
	return x
}

// Transpose64 transposes a 64x64 bit matrix in place: after the call,
// bit j of word i equals bit i of word j of the original. The operation
// is an involution. This is the lane/plane pivot of the bit-sliced wave
// kernel (internal/sim): per-wave draws land row-major (one word per
// wave) and the kernel consumes them column-major (one lane word per
// cell), and one transpose converts a whole 64-wave block. Classic
// recursive block-swap (Hacker's Delight 7-3), 6 rounds of masked
// exchanges, allocation-free.
func Transpose64(a *[64]uint64) {
	for j, m := 32, uint64(0x00000000FFFFFFFF); j != 0; j, m = j>>1, m^(m<<uint(j>>1)) {
		for k := 0; k < 64; k = (k + j + 1) &^ j {
			t := ((a[k] >> uint(j)) ^ a[k+j]) & m
			a[k] ^= t << uint(j)
			a[k+j] ^= t
		}
	}
}

// Log2 returns the exact base-2 logarithm of x. It panics if x is not a
// positive power of two; network sizes in this library are always exact
// powers of two and a silent rounding would corrupt every stage count.
func Log2(x uint64) int {
	if x == 0 || x&(x-1) != 0 {
		panic(fmt.Sprintf("bitops: %d is not a power of two", x))
	}
	n := 0
	for x > 1 {
		x >>= 1
		n++
	}
	return n
}

// IsPow2 reports whether x is a positive power of two.
func IsPow2(x uint64) bool {
	return x != 0 && x&(x-1) == 0
}
