// Package pipid implements Permutations Induced by a Permutation on the
// Index Digits (PIPID), the family of link permutations from §4 of
// Bermond & Fourneau and from Lenfant & Tahe. A PIPID permutation on
// N = 2^w symbols is determined by a permutation theta of the w bit
// positions of the symbol's binary representation:
//
//	A(x_{w-1}, ..., x_1, x_0) = (x_{theta(w-1)}, ..., x_{theta(1)}, x_{theta(0)})
//
// i.e. output bit j equals input bit theta(j). The perfect shuffle,
// k-subshuffle, k-butterfly and bit reversal are all PIPID; they are the
// building blocks of the six classical multistage interconnection
// networks whose equivalence the paper establishes.
package pipid

import (
	"fmt"
	"math/rand/v2"
	"strings"

	"minequiv/internal/bitops"
	"minequiv/internal/perm"
)

// IndexPerm is a permutation theta of bit positions {0..w-1}: Theta[j] is
// the input bit position that output bit j copies.
type IndexPerm struct {
	Theta []int
}

// New validates and wraps a theta slice.
func New(theta []int) (IndexPerm, error) {
	seen := make([]bool, len(theta))
	for j, t := range theta {
		if t < 0 || t >= len(theta) {
			return IndexPerm{}, fmt.Errorf("pipid: theta[%d]=%d out of range [0,%d)", j, t, len(theta))
		}
		if seen[t] {
			return IndexPerm{}, fmt.Errorf("pipid: theta value %d repeated", t)
		}
		seen[t] = true
	}
	cp := make([]int, len(theta))
	copy(cp, theta)
	return IndexPerm{Theta: cp}, nil
}

// MustNew is New that panics on invalid input.
func MustNew(theta []int) IndexPerm {
	ip, err := New(theta)
	if err != nil {
		panic(err)
	}
	return ip
}

// W returns the number of bit positions.
func (ip IndexPerm) W() int { return len(ip.Theta) }

// Apply permutes the bits of x: output bit j is input bit Theta[j].
func (ip IndexPerm) Apply(x uint64) uint64 {
	var y uint64
	for j, t := range ip.Theta {
		y |= bitops.Bit(x, t) << uint(j)
	}
	return y
}

// ToPerm expands the index permutation into the induced permutation on
// all 2^w symbols — the paper's PIPID(2^w) element.
func (ip IndexPerm) ToPerm() perm.Perm {
	n := 1 << uint(ip.W())
	p := make(perm.Perm, n)
	for x := 0; x < n; x++ {
		p[x] = ip.Apply(uint64(x))
	}
	return p
}

// Compose returns the index permutation of "other after ip" on symbols:
// first permute bits by ip, then by other. Because output bit j of the
// composite reads bit Theta_ip[Theta_other[j]] of the original input, the
// underlying theta slices compose in that order.
func (ip IndexPerm) Compose(other IndexPerm) IndexPerm {
	if ip.W() != other.W() {
		panic(fmt.Sprintf("pipid: composing widths %d and %d", ip.W(), other.W()))
	}
	theta := make([]int, ip.W())
	for j := range theta {
		theta[j] = ip.Theta[other.Theta[j]]
	}
	return IndexPerm{Theta: theta}
}

// Inverse returns the inverse index permutation.
func (ip IndexPerm) Inverse() IndexPerm {
	theta := make([]int, ip.W())
	for j, t := range ip.Theta {
		theta[t] = j
	}
	return IndexPerm{Theta: theta}
}

// Equal reports whether two index permutations are identical.
func (ip IndexPerm) Equal(o IndexPerm) bool {
	if ip.W() != o.W() {
		return false
	}
	for i := range ip.Theta {
		if ip.Theta[i] != o.Theta[i] {
			return false
		}
	}
	return true
}

// IsIdentity reports whether theta fixes every position.
func (ip IndexPerm) IsIdentity() bool {
	for j, t := range ip.Theta {
		if j != t {
			return false
		}
	}
	return true
}

// PortSource returns theta^{-1}(0): the output bit position that receives
// input bit 0. In the paper's §4 this is the k such that the switch-port
// bit lands at position k of the next stage's link label; k = 0 produces
// the degenerate double-link stage of Fig 5.
func (ip IndexPerm) PortSource() int {
	for j, t := range ip.Theta {
		if t == 0 {
			return j
		}
	}
	panic("pipid: malformed theta (no source for bit 0)")
}

// String renders theta in one-line notation: "[theta(w-1) ... theta(0)]".
func (ip IndexPerm) String() string {
	var b strings.Builder
	b.WriteByte('[')
	for j := ip.W() - 1; j >= 0; j-- {
		fmt.Fprintf(&b, "%d", ip.Theta[j])
		if j > 0 {
			b.WriteByte(' ')
		}
	}
	b.WriteByte(']')
	return b.String()
}

// Identity returns the identity index permutation on w positions.
func Identity(w int) IndexPerm {
	theta := make([]int, w)
	for i := range theta {
		theta[i] = i
	}
	return IndexPerm{Theta: theta}
}

// PerfectShuffle returns sigma on w bits: a circular left shift of the
// binary representation, sigma(x_{w-1},...,x_0) = (x_{w-2},...,x_0,x_{w-1}).
func PerfectShuffle(w int) IndexPerm {
	theta := make([]int, w)
	for j := range theta {
		theta[j] = ((j - 1) + w) % w
	}
	return IndexPerm{Theta: theta}
}

// InverseShuffle returns sigma^{-1} (circular right shift).
func InverseShuffle(w int) IndexPerm { return PerfectShuffle(w).Inverse() }

// Subshuffle returns sigma_k: the perfect shuffle restricted to the low k
// bits, fixing bits k..w-1.
func Subshuffle(w, k int) IndexPerm {
	if k > w {
		k = w
	}
	theta := make([]int, w)
	for j := range theta {
		if j < k && k > 0 {
			theta[j] = ((j - 1) + k) % k
		} else {
			theta[j] = j
		}
	}
	return IndexPerm{Theta: theta}
}

// InverseSubshuffle returns sigma_k^{-1}.
func InverseSubshuffle(w, k int) IndexPerm { return Subshuffle(w, k).Inverse() }

// Butterfly returns beta_k: the transposition of bit 0 and bit k.
// Butterfly(w, 0) is the identity.
func Butterfly(w, k int) IndexPerm {
	theta := make([]int, w)
	for j := range theta {
		theta[j] = j
	}
	if k > 0 && k < w {
		theta[0], theta[k] = k, 0
	}
	return IndexPerm{Theta: theta}
}

// BitReversal returns rho: bit j moves to position w-1-j.
func BitReversal(w int) IndexPerm {
	theta := make([]int, w)
	for j := range theta {
		theta[j] = w - 1 - j
	}
	return IndexPerm{Theta: theta}
}

// Random returns a uniformly random index permutation on w positions.
func Random(rng *rand.Rand, w int) IndexPerm {
	p := perm.Random(rng, w)
	theta := make([]int, w)
	for j := range theta {
		theta[j] = int(p[j])
	}
	return IndexPerm{Theta: theta}
}

// All enumerates every index permutation on w positions (w! of them), in
// lexicographic order of the theta slice. Intended for exhaustive tests
// with small w.
func All(w int) []IndexPerm {
	var out []IndexPerm
	theta := make([]int, w)
	for i := range theta {
		theta[i] = i
	}
	var rec func(k int)
	rec = func(k int) {
		if k == w {
			cp := make([]int, w)
			copy(cp, theta)
			out = append(out, IndexPerm{Theta: cp})
			return
		}
		for i := k; i < w; i++ {
			theta[k], theta[i] = theta[i], theta[k]
			rec(k + 1)
			theta[k], theta[i] = theta[i], theta[k]
		}
	}
	rec(0)
	return out
}

// Detect decides whether p (a permutation on 2^w symbols) is PIPID, and
// if so recovers theta. It runs in O(2^w) after an O(w) candidate
// extraction.
func Detect(p perm.Perm) (IndexPerm, bool) {
	n := len(p)
	if n == 0 || !bitops.IsPow2(uint64(n)) {
		return IndexPerm{}, false
	}
	w := bitops.Log2(uint64(n))
	if p[0] != 0 {
		return IndexPerm{}, false
	}
	theta := make([]int, w)
	for i := 0; i < w; i++ {
		img := p[1<<uint(i)]
		if img == 0 || img&(img-1) != 0 {
			return IndexPerm{}, false // image of a unit vector must be a unit vector
		}
		j := bitops.Log2(img)
		theta[j] = i
	}
	ip, err := New(theta)
	if err != nil {
		return IndexPerm{}, false
	}
	for x := 0; x < n; x++ {
		if p[x] != ip.Apply(uint64(x)) {
			return IndexPerm{}, false
		}
	}
	return ip, true
}

// BPC is a bit-permute-complement permutation: a PIPID permutation
// followed by XOR with a complement mask. BPC strictly contains PIPID
// (Mask 0) and still induces independent connections, which is the
// natural extension the paper's machinery covers; see conn.FromBPC.
type BPC struct {
	Theta IndexPerm
	Mask  uint64
}

// NewBPC validates the mask width against theta.
func NewBPC(theta IndexPerm, mask uint64) (BPC, error) {
	if mask&^bitops.Mask(theta.W()) != 0 {
		return BPC{}, fmt.Errorf("pipid: BPC mask %#x exceeds %d bits", mask, theta.W())
	}
	return BPC{Theta: theta, Mask: mask}, nil
}

// Apply evaluates the BPC permutation.
func (b BPC) Apply(x uint64) uint64 { return b.Theta.Apply(x) ^ b.Mask }

// ToPerm expands the BPC permutation on all 2^w symbols.
func (b BPC) ToPerm() perm.Perm {
	n := 1 << uint(b.Theta.W())
	p := make(perm.Perm, n)
	for x := 0; x < n; x++ {
		p[x] = b.Apply(uint64(x))
	}
	return p
}

// DetectBPC decides whether p is bit-permute-complement and recovers it.
func DetectBPC(p perm.Perm) (BPC, bool) {
	n := len(p)
	if n == 0 || !bitops.IsPow2(uint64(n)) {
		return BPC{}, false
	}
	w := bitops.Log2(uint64(n))
	mask := p[0]
	theta := make([]int, w)
	for i := 0; i < w; i++ {
		img := p[1<<uint(i)] ^ mask
		if img == 0 || img&(img-1) != 0 {
			return BPC{}, false
		}
		j := bitops.Log2(img)
		theta[j] = i
	}
	ip, err := New(theta)
	if err != nil {
		return BPC{}, false
	}
	b := BPC{Theta: ip, Mask: mask}
	for x := 0; x < n; x++ {
		if p[x] != b.Apply(uint64(x)) {
			return BPC{}, false
		}
	}
	return b, true
}
