package pipid

import (
	"math/rand/v2"
	"testing"

	"minequiv/internal/bitops"
	"minequiv/internal/perm"
)

func TestNewValidation(t *testing.T) {
	if _, err := New([]int{0, 1, 2}); err != nil {
		t.Errorf("valid theta rejected: %v", err)
	}
	if _, err := New([]int{0, 0, 2}); err == nil {
		t.Error("duplicate theta accepted")
	}
	if _, err := New([]int{0, 3, 1}); err == nil {
		t.Error("out-of-range theta accepted")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustNew did not panic")
		}
	}()
	MustNew([]int{1, 1})
}

func TestPerfectShuffleMatchesRotLeft(t *testing.T) {
	// The paper defines sigma as the circular left shift of the binary
	// representation; bitops.RotLeft is the reference implementation.
	for w := 1; w <= 8; w++ {
		s := PerfectShuffle(w)
		for x := uint64(0); x < 1<<uint(w); x++ {
			if got, want := s.Apply(x), bitops.RotLeft(x, w); got != want {
				t.Fatalf("w=%d: sigma(%b) = %b, want %b", w, x, got, want)
			}
		}
		// And the inverse matches RotRight.
		si := InverseShuffle(w)
		for x := uint64(0); x < 1<<uint(w); x++ {
			if got, want := si.Apply(x), bitops.RotRight(x, w); got != want {
				t.Fatalf("w=%d: sigma^-1(%b) = %b, want %b", w, x, got, want)
			}
		}
	}
}

func TestSubshuffleMatchesRotLeftK(t *testing.T) {
	for w := 1; w <= 7; w++ {
		for k := 0; k <= w+1; k++ {
			s := Subshuffle(w, k)
			for x := uint64(0); x < 1<<uint(w); x++ {
				if got, want := s.Apply(x), bitops.RotLeftK(x, w, k); got != want {
					t.Fatalf("w=%d k=%d: sigma_k(%b) = %b, want %b", w, k, x, got, want)
				}
			}
		}
	}
	// sigma_w == sigma.
	if !Subshuffle(5, 5).Equal(PerfectShuffle(5)) {
		t.Error("sigma_w != sigma")
	}
	// sigma_1 and sigma_0 are identities.
	if !Subshuffle(5, 1).IsIdentity() || !Subshuffle(5, 0).IsIdentity() {
		t.Error("sigma_1 / sigma_0 not identity")
	}
}

func TestButterflyMatchesSwapBits(t *testing.T) {
	for w := 1; w <= 7; w++ {
		for k := 0; k < w; k++ {
			b := Butterfly(w, k)
			for x := uint64(0); x < 1<<uint(w); x++ {
				if got, want := b.Apply(x), bitops.SwapBits(x, 0, k); got != want {
					t.Fatalf("w=%d k=%d: beta_k(%b) = %b, want %b", w, k, x, got, want)
				}
			}
		}
	}
	if !Butterfly(4, 0).IsIdentity() {
		t.Error("beta_0 not identity")
	}
	// Butterflies are involutions.
	for k := 1; k < 5; k++ {
		if !Butterfly(5, k).Compose(Butterfly(5, k)).IsIdentity() {
			t.Errorf("beta_%d not involutive", k)
		}
	}
}

func TestBitReversalMatchesReverse(t *testing.T) {
	for w := 1; w <= 8; w++ {
		r := BitReversal(w)
		for x := uint64(0); x < 1<<uint(w); x++ {
			if got, want := r.Apply(x), bitops.Reverse(x, w); got != want {
				t.Fatalf("w=%d: rho(%b) = %b, want %b", w, x, got, want)
			}
		}
		if !r.Compose(r).IsIdentity() {
			t.Fatalf("w=%d: rho not involutive", w)
		}
	}
}

func TestComposeApplyAgreement(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 0))
	for trial := 0; trial < 200; trial++ {
		w := rng.IntN(10) + 1
		a := Random(rng, w)
		b := Random(rng, w)
		x := rng.Uint64() & bitops.Mask(w)
		// Compose = "b after a" on symbols.
		if a.Compose(b).Apply(x) != b.Apply(a.Apply(x)) {
			t.Fatal("IndexPerm.Compose order wrong")
		}
		// ToPerm is a homomorphism.
		if !a.Compose(b).ToPerm().Equal(a.ToPerm().Compose(b.ToPerm())) {
			t.Fatal("ToPerm not a homomorphism")
		}
	}
}

func TestInverse(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 0))
	for trial := 0; trial < 100; trial++ {
		w := rng.IntN(10) + 1
		a := Random(rng, w)
		if !a.Compose(a.Inverse()).IsIdentity() || !a.Inverse().Compose(a).IsIdentity() {
			t.Fatal("inverse law fails")
		}
		if !a.Inverse().ToPerm().Equal(a.ToPerm().Inverse()) {
			t.Fatal("ToPerm of inverse != inverse of ToPerm")
		}
	}
}

func TestPortSource(t *testing.T) {
	// sigma sends input bit 0 to output position 1 (left shift).
	if got := PerfectShuffle(4).PortSource(); got != 1 {
		t.Errorf("sigma PortSource = %d, want 1", got)
	}
	// sigma^{-1} sends bit 0 to the top position.
	if got := InverseShuffle(4).PortSource(); got != 3 {
		t.Errorf("sigma^-1 PortSource = %d, want 3", got)
	}
	// beta_k sends bit 0 to position k.
	for k := 1; k < 5; k++ {
		if got := Butterfly(5, k).PortSource(); got != k {
			t.Errorf("beta_%d PortSource = %d, want %d", k, got, k)
		}
	}
	// identity has the degenerate (Fig 5) port source 0.
	if got := Identity(4).PortSource(); got != 0 {
		t.Errorf("identity PortSource = %d, want 0", got)
	}
	// rho sends bit 0 to position w-1.
	if got := BitReversal(6).PortSource(); got != 5 {
		t.Errorf("rho PortSource = %d, want 5", got)
	}
}

func TestDetectRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 0))
	for trial := 0; trial < 200; trial++ {
		w := rng.IntN(8) + 1
		a := Random(rng, w)
		got, ok := Detect(a.ToPerm())
		if !ok {
			t.Fatalf("w=%d: PIPID permutation not detected", w)
		}
		if !got.Equal(a) {
			t.Fatalf("w=%d: detected %v, want %v", w, got, a)
		}
	}
}

func TestDetectRejectsNonPIPID(t *testing.T) {
	// A transposition of symbols 0 and 1 on 8 symbols moves p[0] != 0.
	p := perm.Identity(8)
	p[0], p[1] = 1, 0
	if _, ok := Detect(p); ok {
		t.Error("symbol transposition detected as PIPID")
	}
	// x -> x+1 mod 8 is not PIPID.
	q, _ := perm.FromFunc(8, func(x uint64) uint64 { return (x + 1) % 8 })
	if _, ok := Detect(q); ok {
		t.Error("cyclic shift detected as PIPID")
	}
	// A permutation fixing 0 and unit vectors but scrambling elsewhere.
	r := perm.Identity(8)
	r[3], r[5] = 5, 3
	if _, ok := Detect(r); ok {
		t.Error("non-PIPID fixing units detected as PIPID")
	}
	// Non-power-of-two sizes are never PIPID.
	if _, ok := Detect(perm.Identity(6)); ok {
		t.Error("size-6 permutation detected as PIPID")
	}
	var empty perm.Perm
	if _, ok := Detect(empty); ok {
		t.Error("empty permutation detected as PIPID")
	}
}

func TestDetectExhaustiveSmall(t *testing.T) {
	// For w = 3 there are exactly 6 PIPID permutations among the 8! = 40320
	// permutations of 8 symbols; enumerate all theta and confirm detection
	// agrees with construction.
	all := All(3)
	if len(all) != 6 {
		t.Fatalf("All(3) returned %d permutations, want 6", len(all))
	}
	seen := map[string]bool{}
	for _, ip := range all {
		p := ip.ToPerm()
		got, ok := Detect(p)
		if !ok || !got.Equal(ip) {
			t.Fatalf("round trip failed for %v", ip)
		}
		seen[p.String()] = true
	}
	if len(seen) != 6 {
		t.Fatalf("All(3) produced %d distinct symbol permutations, want 6", len(seen))
	}
}

func TestAllCounts(t *testing.T) {
	want := map[int]int{0: 1, 1: 1, 2: 2, 3: 6, 4: 24, 5: 120}
	for w, count := range want {
		if got := len(All(w)); got != count {
			t.Errorf("len(All(%d)) = %d, want %d", w, got, count)
		}
	}
}

func TestBPC(t *testing.T) {
	rng := rand.New(rand.NewPCG(4, 0))
	for trial := 0; trial < 200; trial++ {
		w := rng.IntN(8) + 1
		theta := Random(rng, w)
		mask := rng.Uint64() & bitops.Mask(w)
		b, err := NewBPC(theta, mask)
		if err != nil {
			t.Fatal(err)
		}
		p := b.ToPerm()
		if err := p.Validate(); err != nil {
			t.Fatalf("BPC not a permutation: %v", err)
		}
		got, ok := DetectBPC(p)
		if !ok || !got.Theta.Equal(theta) || got.Mask != mask {
			t.Fatalf("BPC round trip failed: %v mask %b", theta, mask)
		}
		// A BPC with nonzero mask is not PIPID.
		if mask != 0 {
			if _, ok := Detect(p); ok {
				t.Fatal("BPC with nonzero mask detected as plain PIPID")
			}
		}
	}
	if _, err := NewBPC(Identity(3), 0b1000); err == nil {
		t.Error("oversized BPC mask accepted")
	}
	// Non-BPC rejection.
	q, _ := perm.FromFunc(16, func(x uint64) uint64 { return (x + 3) % 16 })
	if _, ok := DetectBPC(q); ok {
		t.Error("cyclic shift detected as BPC")
	}
}

func TestString(t *testing.T) {
	// theta for sigma on 3 bits: theta = [2(for j=0), 0(j=1), 1(j=2)]
	s := PerfectShuffle(3)
	if got := s.String(); got != "[1 0 2]" {
		t.Errorf("sigma(3).String() = %q", got)
	}
	if got := Identity(2).String(); got != "[1 0]" {
		t.Errorf("id(2).String() = %q", got)
	}
}

func TestShuffleOrder(t *testing.T) {
	// sigma has order w on w bits.
	for w := 1; w <= 8; w++ {
		s := PerfectShuffle(w)
		acc := Identity(w)
		for i := 0; i < w; i++ {
			acc = acc.Compose(s)
		}
		if !acc.IsIdentity() {
			t.Errorf("sigma^%d != id on %d bits", w, w)
		}
		if w > 1 {
			acc = Identity(w).Compose(s)
			for i := 1; i < w; i++ {
				if acc.IsIdentity() {
					t.Errorf("sigma has order < %d on %d bits", w, w)
				}
				acc = acc.Compose(s)
			}
		}
	}
}

func BenchmarkToPerm(b *testing.B) {
	s := PerfectShuffle(16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.ToPerm()
	}
}

func BenchmarkDetect(b *testing.B) {
	p := BitReversal(14).ToPerm()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := Detect(p); !ok {
			b.Fatal("detect failed")
		}
	}
}
