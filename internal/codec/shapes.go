package codec

import (
	"encoding/json"

	"minequiv/internal/jobs"
	"minequiv/min"
)

// The wire shapes. These are the single source of truth for the hot
// request/response bodies: minserve aliases them, so the JSON tags
// here ARE the JSON API (byte-for-byte, including field order and
// omitempty), and the binary payload layout below is their second
// rendering. Both codecs round-trip the same struct values.

// NetworkSpec names or defines the network a request operates on:
// either a catalog name (or "tail-cycle") with a stage count, or
// explicit per-stage permutations.
type NetworkSpec struct {
	Network    string  `json:"network,omitempty"`
	Stages     int     `json:"stages"`
	LinkPerms  [][]int `json:"linkPerms,omitempty"`
	IndexPerms [][]int `json:"indexPerms,omitempty"`
}

// CheckRequest asks for the characterization report of one network;
// with Iso true the explicit isomorphism onto Baseline is included
// (only present when the network is equivalent).
type CheckRequest struct {
	NetworkSpec
	Iso bool `json:"iso,omitempty"`
}

// CheckResponse is the /v1/check body.
type CheckResponse struct {
	Report min.Report       `json:"report"`
	Iso    *min.Isomorphism `json:"iso,omitempty"`
}

// RouteRequest asks for one routed path.
type RouteRequest struct {
	NetworkSpec
	Src int `json:"src"`
	Dst int `json:"dst"`
	// Faults degrades the fabric: the route then avoids the plan's
	// pinned dead/stuck switches and severed links (random rates are
	// rejected — routing has no trial to sample them in).
	Faults *min.FaultPlan `json:"faults,omitempty"`
}

// RouteResponse is the /v1/route body.
type RouteResponse struct {
	Network string   `json:"network"`
	Path    min.Path `json:"path"`
	// TagPositions is the bit-directed routing schedule, present for
	// PIPID-defined networks.
	TagPositions []int `json:"tagPositions,omitempty"`
}

// SimulateRequest runs the wave model (default) or the buffered
// model. Zero-valued tunables take the min package defaults (waves
// 500, replications 1, queue 4, lanes 1, cycles 5000, warmup 500 —
// resolved before the server's limits are checked); Seed defaults to
// 1 so unseeded requests are reproducible too.
type SimulateRequest struct {
	NetworkSpec
	Model    string  `json:"model,omitempty"` // "wave" (default) or "buffered"
	Scenario string  `json:"scenario,omitempty"`
	Load     float64 `json:"load,omitempty"`
	HotDst   int     `json:"hotDst,omitempty"`
	HotProb  float64 `json:"hotProb,omitempty"`
	Seed     uint64  `json:"seed,omitempty"`
	Workers  int     `json:"workers,omitempty"`
	// Faults degrades the fabric for the run: pinned faults hold for
	// every trial, random rates are redrawn per trial; the response
	// stays a pure function of the request body.
	Faults *min.FaultPlan `json:"faults,omitempty"`

	// Wave-model fields. Kernel selects the executor ("auto" default,
	// "scalar", "bit"); kernels are byte-identical per (seed, trial)
	// stream, so responses never depend on the choice.
	Waves  int    `json:"waves,omitempty"`
	Kernel string `json:"kernel,omitempty"`

	Replications int    `json:"replications,omitempty"` // buffered model
	Queue        int    `json:"queue,omitempty"`
	Lanes        int    `json:"lanes,omitempty"`
	Cycles       int    `json:"cycles,omitempty"`
	Warmup       int    `json:"warmup,omitempty"`
	Arbiter      string `json:"arbiter,omitempty"`
	LaneSelect   string `json:"laneSelect,omitempty"`
}

// SimulateResponse is the /v1/simulate body.
type SimulateResponse struct {
	Model    string             `json:"model"`
	Wave     *min.WaveStats     `json:"wave,omitempty"`
	Buffered *min.BufferedStats `json:"buffered,omitempty"`
}

// BatchItem is one batch sub-request: the operation and its verbatim
// single-endpoint request body. Raw bytes are preserved (not
// re-marshalled) so the cache's raw lookaside sees exactly what a
// single call would send. Bin marks the payload codec inside a binary
// envelope; the JSON envelope can only carry JSON payloads, so it has
// no wire rendering there.
type BatchItem struct {
	Op      string          `json:"op"` // "check", "route" or "simulate"
	Request json.RawMessage `json:"request"`
	Bin     bool            `json:"-"`
}

// BatchRequest is the /v1/batch envelope.
type BatchRequest struct {
	Requests []BatchItem `json:"requests"`
}

// Cache-attribution values of a BatchResult.
const (
	CacheNone = 0 // op carries no attribution (simulate), or an error
	CacheMiss = 1
	CacheHit  = 2
)

// BatchResult is one positional sub-response of a binary batch
// envelope; Body is the verbatim single-endpoint response (a binary
// frame, or a JSON error envelope — errors are always JSON).
type BatchResult struct {
	Op     string
	Status int
	Cache  uint8 // CacheNone/CacheMiss/CacheHit
	Body   []byte
}

// BatchResponse is the binary /v1/batch response envelope.
type BatchResponse struct {
	Responses []BatchResult
}

// JobSpec and JobResult give the job plane's sweep spec and result
// manifest their binary rendering; the structs (and their JSON form)
// live with the scheduler.
type (
	JobSpec   = jobs.Spec
	JobResult = jobs.Result
)

// --- encode ---------------------------------------------------------

//minlint:hotpath
func (e *Encoder) networkSpec(v *NetworkSpec) {
	e.str(v.Network)
	e.int(v.Stages)
	e.perms(v.LinkPerms)
	e.perms(v.IndexPerms)
}

//minlint:hotpath
func (e *Encoder) faultPlan(v *min.FaultPlan) {
	e.presence(v != nil)
	if v == nil {
		return
	}
	e.presence(v.Faults != nil)
	if v.Faults != nil {
		e.u64(uint64(len(v.Faults)))
		for i := range v.Faults {
			f := &v.Faults[i]
			e.faultKind(f.Kind)
			e.int(f.Stage)
			e.int(f.Cell)
			e.int(f.Link)
		}
	}
	e.f64(v.SwitchDeadRate)
	e.f64(v.SwitchStuckRate)
	e.f64(v.LinkDownRate)
}

// faultKind writes the closed set of fault kinds as one-byte tags —
// the dominant content of a degraded-sweep request, so the tag (vs the
// kind string) is most of the codec's wire win on that path. Unknown
// kinds (forward compatibility) travel as tag 0 plus the string.
//
//minlint:hotpath
func (e *Encoder) faultKind(k min.FaultKind) {
	switch k {
	case min.SwitchDead:
		e.u64(1)
	case min.SwitchStuck0:
		e.u64(2)
	case min.SwitchStuck1:
		e.u64(3)
	case min.LinkDown:
		e.u64(4)
	default:
		e.u64(0)
		e.str(string(k))
	}
}

//minlint:hotpath
func (e *Encoder) stat(v *min.Stat) {
	e.int(v.N)
	e.f64(v.Mean)
	e.f64(v.Std)
	e.f64(v.CI95)
}

//minlint:hotpath
func (e *Encoder) windows(s []min.WindowCheck) {
	e.presence(s != nil)
	if s == nil {
		return
	}
	e.u64(uint64(len(s)))
	for i := range s {
		w := &s[i]
		e.int(w.I)
		e.int(w.J)
		e.int(w.Components)
		e.int(w.Expected)
		e.bool(w.OK)
	}
}

// CheckRequest appends v as one frame.
//
//minlint:hotpath
func (e *Encoder) CheckRequest(v *CheckRequest) {
	start := e.begin(ShapeCheckRequest)
	e.networkSpec(&v.NetworkSpec)
	e.bool(v.Iso)
	e.end(start)
}

// CheckResponse appends v as one frame.
//
//minlint:hotpath
func (e *Encoder) CheckResponse(v *CheckResponse) {
	start := e.begin(ShapeCheckResponse)
	e.str(v.Report.Network)
	e.int(v.Report.Stages)
	e.bool(v.Report.Equivalent)
	e.bool(v.Report.Banyan)
	e.str(v.Report.BanyanViolation)
	e.windows(v.Report.Prefix)
	e.windows(v.Report.Suffix)
	e.presence(v.Iso != nil)
	if v.Iso != nil {
		e.perms(v.Iso.Maps)
	}
	e.end(start)
}

// RouteRequest appends v as one frame.
//
//minlint:hotpath
func (e *Encoder) RouteRequest(v *RouteRequest) {
	start := e.begin(ShapeRouteRequest)
	e.networkSpec(&v.NetworkSpec)
	e.int(v.Src)
	e.int(v.Dst)
	e.faultPlan(v.Faults)
	e.end(start)
}

// RouteResponse appends v as one frame.
//
//minlint:hotpath
func (e *Encoder) RouteResponse(v *RouteResponse) {
	start := e.begin(ShapeRouteResponse)
	e.str(v.Network)
	e.int(v.Path.Src)
	e.int(v.Path.Dst)
	e.presence(v.Path.Hops != nil)
	if v.Path.Hops != nil {
		e.u64(uint64(len(v.Path.Hops)))
		for i := range v.Path.Hops {
			h := &v.Path.Hops[i]
			e.int(h.Stage)
			e.int(h.Cell)
			e.int(h.InPort)
			e.int(h.OutPort)
		}
	}
	e.ints(v.TagPositions)
	e.end(start)
}

// SimulateRequest appends v as one frame.
//
//minlint:hotpath
func (e *Encoder) SimulateRequest(v *SimulateRequest) {
	start := e.begin(ShapeSimulateRequest)
	e.networkSpec(&v.NetworkSpec)
	e.str(v.Model)
	e.str(v.Scenario)
	e.f64(v.Load)
	e.int(v.HotDst)
	e.f64(v.HotProb)
	e.u64(v.Seed)
	e.int(v.Workers)
	e.faultPlan(v.Faults)
	e.int(v.Waves)
	e.str(v.Kernel)
	e.int(v.Replications)
	e.int(v.Queue)
	e.int(v.Lanes)
	e.int(v.Cycles)
	e.int(v.Warmup)
	e.str(v.Arbiter)
	e.str(v.LaneSelect)
	e.end(start)
}

// SimulateResponse appends v as one frame.
//
//minlint:hotpath
func (e *Encoder) SimulateResponse(v *SimulateResponse) {
	start := e.begin(ShapeSimulateResponse)
	e.str(v.Model)
	e.presence(v.Wave != nil)
	if w := v.Wave; w != nil {
		e.str(w.Network)
		e.int(w.Stages)
		e.int(w.Terminals)
		e.str(w.Scenario)
		e.int(w.Waves)
		e.u64(w.Seed)
		e.int(w.Offered)
		e.int(w.Delivered)
		e.int(w.Dropped)
		e.int(w.Misrouted)
		e.int(w.FaultDropped)
		e.stat(&w.Throughput)
	}
	e.presence(v.Buffered != nil)
	if b := v.Buffered; b != nil {
		e.str(b.Network)
		e.int(b.Stages)
		e.int(b.Terminals)
		e.str(b.Scenario)
		e.int(b.Replications)
		e.u64(b.Seed)
		e.int(b.Injected)
		e.int(b.Rejected)
		e.int(b.Delivered)
		e.int(b.Dropped)
		e.int(b.FaultDropped)
		e.int(b.Misrouted)
		e.int(b.InFlight)
		e.int(b.MaxOccupancy)
		e.stat(&b.Throughput)
		e.stat(&b.Latency)
		e.stat(&b.LatencyP50)
		e.stat(&b.LatencyP95)
		e.stat(&b.LatencyP99)
		e.floats(b.StageOccupancy)
	}
	e.end(start)
}

// BatchRequest appends v as one frame.
//
//minlint:hotpath
func (e *Encoder) BatchRequest(v *BatchRequest) {
	start := e.begin(ShapeBatchRequest)
	e.presence(v.Requests != nil)
	if v.Requests != nil {
		e.u64(uint64(len(v.Requests)))
		for i := range v.Requests {
			it := &v.Requests[i]
			e.str(it.Op)
			e.bool(it.Bin)
			e.bytes(it.Request)
		}
	}
	e.end(start)
}

// BatchResponse appends v as one frame.
//
//minlint:hotpath
func (e *Encoder) BatchResponse(v *BatchResponse) {
	start := e.begin(ShapeBatchResponse)
	e.presence(v.Responses != nil)
	if v.Responses != nil {
		e.u64(uint64(len(v.Responses)))
		for i := range v.Responses {
			r := &v.Responses[i]
			e.str(r.Op)
			e.int(r.Status)
			e.u64(uint64(r.Cache))
			e.bytes(r.Body)
		}
	}
	e.end(start)
}

// JobSpec appends v as one frame.
//
//minlint:hotpath
func (e *Encoder) JobSpec(v *JobSpec) {
	start := e.begin(ShapeJobSpec)
	e.jobSpecBody(v)
	e.end(start)
}

//minlint:hotpath
func (e *Encoder) jobSpecBody(v *jobs.Spec) {
	e.strs(v.Networks)
	e.int(v.Stages)
	e.floats(v.Loads)
	e.floats(v.FaultRates)
	e.str(v.Scenario)
	e.str(v.Kernel)
	e.int(v.TrialsPerCell)
	e.u64(v.Seed)
	e.int(v.ShardTrials)
}

//minlint:hotpath
func (e *Encoder) jobStat(v *jobs.Stat) {
	e.int(v.N)
	e.f64(v.Mean)
	e.f64(v.Std)
	e.f64(v.CI95)
}

// JobResult appends v as one frame.
//
//minlint:hotpath
func (e *Encoder) JobResult(v *JobResult) {
	start := e.begin(ShapeJobResult)
	e.jobSpecBody(&v.Spec)
	e.presence(v.Cells != nil)
	if v.Cells != nil {
		e.u64(uint64(len(v.Cells)))
		for i := range v.Cells {
			c := &v.Cells[i]
			e.str(c.Network)
			e.int(c.Stages)
			e.f64(c.Load)
			e.f64(c.FaultRate)
			e.int(c.Trials)
			e.i64(c.Offered)
			e.i64(c.Delivered)
			e.i64(c.Dropped)
			e.i64(c.Misrouted)
			e.i64(c.FaultDropped)
			e.jobStat(&c.Throughput)
			e.int(c.QuarantinedTrials)
		}
	}
	e.bool(v.Degraded)
	e.presence(v.QuarantinedShards != nil)
	if v.QuarantinedShards != nil {
		e.u64(uint64(len(v.QuarantinedShards)))
		for i := range v.QuarantinedShards {
			q := &v.QuarantinedShards[i]
			e.int(q.Shard)
			e.int(q.Cell)
			e.int(q.Lo)
			e.int(q.Hi)
			e.str(q.Reason)
		}
	}
	e.end(start)
}

// --- decode ---------------------------------------------------------

func (d *Decoder) networkSpec(v *NetworkSpec) {
	v.Network = d.str()
	v.Stages = d.int()
	v.LinkPerms = d.permsInto(v.LinkPerms)
	v.IndexPerms = d.permsInto(v.IndexPerms)
}

func (d *Decoder) faultPlanInto(v *min.FaultPlan) *min.FaultPlan {
	if !d.presence() || d.err != nil {
		return nil
	}
	if v == nil {
		v = new(min.FaultPlan)
	}
	if !d.presence() {
		v.Faults = nil
	} else {
		n := d.count()
		if cap(v.Faults) < n || v.Faults == nil {
			v.Faults = make([]min.Fault, n)
		} else {
			v.Faults = v.Faults[:n]
		}
		d.faultLoop(v.Faults)
	}
	v.SwitchDeadRate = d.f64()
	v.SwitchStuckRate = d.f64()
	v.LinkDownRate = d.f64()
	return v
}

//minlint:hotpath
func (d *Decoder) faultLoop(s []min.Fault) {
	for i := range s {
		s[i] = min.Fault{Kind: d.faultKind(), Stage: d.int(), Cell: d.int(), Link: d.int()}
	}
}

// faultKind reads a fault-kind tag (see Encoder.faultKind); an
// out-of-range tag fails the frame.
//
//minlint:hotpath
func (d *Decoder) faultKind() min.FaultKind {
	switch tag := d.u64(); tag {
	case 0:
		return min.FaultKind(d.str())
	case 1:
		return min.SwitchDead
	case 2:
		return min.SwitchStuck0
	case 3:
		return min.SwitchStuck1
	case 4:
		return min.LinkDown
	default:
		d.fail(ErrValue)
		return ""
	}
}

//minlint:hotpath
func (d *Decoder) stat(v *min.Stat) {
	v.N = d.int()
	v.Mean = d.f64()
	v.Std = d.f64()
	v.CI95 = d.f64()
}

func (d *Decoder) windowsInto(s []min.WindowCheck) []min.WindowCheck {
	if !d.presence() || d.err != nil {
		return nil
	}
	n := d.count()
	if cap(s) < n || s == nil {
		s = make([]min.WindowCheck, n)
	} else {
		s = s[:n]
	}
	d.windowLoop(s)
	return s
}

//minlint:hotpath
func (d *Decoder) windowLoop(s []min.WindowCheck) {
	for i := range s {
		s[i] = min.WindowCheck{I: d.int(), J: d.int(), Components: d.int(), Expected: d.int(), OK: d.bool()}
	}
}

// CheckRequest decodes one frame into v, reusing its storage.
func (d *Decoder) CheckRequest(v *CheckRequest) error {
	if err := d.frame(ShapeCheckRequest); err != nil {
		return err
	}
	d.networkSpec(&v.NetworkSpec)
	v.Iso = d.bool()
	return d.finish()
}

// CheckResponse decodes one frame into v, reusing its storage.
func (d *Decoder) CheckResponse(v *CheckResponse) error {
	if err := d.frame(ShapeCheckResponse); err != nil {
		return err
	}
	v.Report.Network = d.str()
	v.Report.Stages = d.int()
	v.Report.Equivalent = d.bool()
	v.Report.Banyan = d.bool()
	v.Report.BanyanViolation = d.str()
	v.Report.Prefix = d.windowsInto(v.Report.Prefix)
	v.Report.Suffix = d.windowsInto(v.Report.Suffix)
	if !d.presence() {
		v.Iso = nil
	} else {
		if v.Iso == nil {
			v.Iso = new(min.Isomorphism)
		}
		v.Iso.Maps = d.permsInto(v.Iso.Maps)
	}
	return d.finish()
}

// RouteRequest decodes one frame into v, reusing its storage.
func (d *Decoder) RouteRequest(v *RouteRequest) error {
	if err := d.frame(ShapeRouteRequest); err != nil {
		return err
	}
	d.networkSpec(&v.NetworkSpec)
	v.Src = d.int()
	v.Dst = d.int()
	v.Faults = d.faultPlanInto(v.Faults)
	return d.finish()
}

// RouteResponse decodes one frame into v, reusing its storage.
func (d *Decoder) RouteResponse(v *RouteResponse) error {
	if err := d.frame(ShapeRouteResponse); err != nil {
		return err
	}
	v.Network = d.str()
	v.Path.Src = d.int()
	v.Path.Dst = d.int()
	if !d.presence() {
		v.Path.Hops = nil
	} else {
		n := d.count()
		if cap(v.Path.Hops) < n || v.Path.Hops == nil {
			v.Path.Hops = make([]min.Hop, n)
		} else {
			v.Path.Hops = v.Path.Hops[:n]
		}
		d.hopLoop(v.Path.Hops)
	}
	v.TagPositions = d.intsInto(v.TagPositions)
	return d.finish()
}

//minlint:hotpath
func (d *Decoder) hopLoop(s []min.Hop) {
	for i := range s {
		s[i] = min.Hop{Stage: d.int(), Cell: d.int(), InPort: d.int(), OutPort: d.int()}
	}
}

// SimulateRequest decodes one frame into v, reusing its storage.
func (d *Decoder) SimulateRequest(v *SimulateRequest) error {
	if err := d.frame(ShapeSimulateRequest); err != nil {
		return err
	}
	d.networkSpec(&v.NetworkSpec)
	v.Model = d.str()
	v.Scenario = d.str()
	v.Load = d.f64()
	v.HotDst = d.int()
	v.HotProb = d.f64()
	v.Seed = d.u64()
	v.Workers = d.int()
	v.Faults = d.faultPlanInto(v.Faults)
	v.Waves = d.int()
	v.Kernel = d.str()
	v.Replications = d.int()
	v.Queue = d.int()
	v.Lanes = d.int()
	v.Cycles = d.int()
	v.Warmup = d.int()
	v.Arbiter = d.str()
	v.LaneSelect = d.str()
	return d.finish()
}

// SimulateResponse decodes one frame into v, reusing its storage.
func (d *Decoder) SimulateResponse(v *SimulateResponse) error {
	if err := d.frame(ShapeSimulateResponse); err != nil {
		return err
	}
	v.Model = d.str()
	if !d.presence() {
		v.Wave = nil
	} else {
		if v.Wave == nil {
			v.Wave = new(min.WaveStats)
		}
		w := v.Wave
		w.Network = d.str()
		w.Stages = d.int()
		w.Terminals = d.int()
		w.Scenario = d.str()
		w.Waves = d.int()
		w.Seed = d.u64()
		w.Offered = d.int()
		w.Delivered = d.int()
		w.Dropped = d.int()
		w.Misrouted = d.int()
		w.FaultDropped = d.int()
		d.stat(&w.Throughput)
	}
	if !d.presence() {
		v.Buffered = nil
	} else {
		if v.Buffered == nil {
			v.Buffered = new(min.BufferedStats)
		}
		b := v.Buffered
		b.Network = d.str()
		b.Stages = d.int()
		b.Terminals = d.int()
		b.Scenario = d.str()
		b.Replications = d.int()
		b.Seed = d.u64()
		b.Injected = d.int()
		b.Rejected = d.int()
		b.Delivered = d.int()
		b.Dropped = d.int()
		b.FaultDropped = d.int()
		b.Misrouted = d.int()
		b.InFlight = d.int()
		b.MaxOccupancy = d.int()
		d.stat(&b.Throughput)
		d.stat(&b.Latency)
		d.stat(&b.LatencyP50)
		d.stat(&b.LatencyP95)
		d.stat(&b.LatencyP99)
		b.StageOccupancy = d.floatsInto(b.StageOccupancy)
	}
	return d.finish()
}

// BatchRequest decodes one frame into v. Item payloads alias the
// input buffer.
func (d *Decoder) BatchRequest(v *BatchRequest) error {
	if err := d.frame(ShapeBatchRequest); err != nil {
		return err
	}
	if !d.presence() {
		v.Requests = nil
	} else {
		n := d.count()
		if cap(v.Requests) < n || v.Requests == nil {
			v.Requests = make([]BatchItem, n)
		} else {
			v.Requests = v.Requests[:n]
		}
		for i := range v.Requests {
			it := &v.Requests[i]
			it.Op = d.str()
			it.Bin = d.bool()
			it.Request = d.rawBytes()
		}
	}
	return d.finish()
}

// BatchResponse decodes one frame into v. Sub-bodies alias the input
// buffer.
func (d *Decoder) BatchResponse(v *BatchResponse) error {
	if err := d.frame(ShapeBatchResponse); err != nil {
		return err
	}
	if !d.presence() {
		v.Responses = nil
	} else {
		n := d.count()
		if cap(v.Responses) < n || v.Responses == nil {
			v.Responses = make([]BatchResult, n)
		} else {
			v.Responses = v.Responses[:n]
		}
		for i := range v.Responses {
			r := &v.Responses[i]
			r.Op = d.str()
			r.Status = d.int()
			c := d.u64()
			if c > CacheHit {
				d.fail(ErrValue)
			}
			r.Cache = uint8(c)
			r.Body = d.rawBytes()
		}
	}
	return d.finish()
}

// JobSpec decodes one frame into v, reusing its storage.
func (d *Decoder) JobSpec(v *JobSpec) error {
	if err := d.frame(ShapeJobSpec); err != nil {
		return err
	}
	d.jobSpecBody(v)
	return d.finish()
}

func (d *Decoder) jobSpecBody(v *jobs.Spec) {
	v.Networks = d.strsInto(v.Networks)
	v.Stages = d.int()
	v.Loads = d.floatsInto(v.Loads)
	v.FaultRates = d.floatsInto(v.FaultRates)
	v.Scenario = d.str()
	v.Kernel = d.str()
	v.TrialsPerCell = d.int()
	v.Seed = d.u64()
	v.ShardTrials = d.int()
}

//minlint:hotpath
func (d *Decoder) jobStat(v *jobs.Stat) {
	v.N = d.int()
	v.Mean = d.f64()
	v.Std = d.f64()
	v.CI95 = d.f64()
}

// JobResult decodes one frame into v, reusing its storage.
func (d *Decoder) JobResult(v *JobResult) error {
	if err := d.frame(ShapeJobResult); err != nil {
		return err
	}
	d.jobSpecBody(&v.Spec)
	if !d.presence() {
		v.Cells = nil
	} else {
		n := d.count()
		if cap(v.Cells) < n || v.Cells == nil {
			v.Cells = make([]jobs.CellResult, n)
		} else {
			v.Cells = v.Cells[:n]
		}
		for i := range v.Cells {
			c := &v.Cells[i]
			c.Network = d.str()
			c.Stages = d.int()
			c.Load = d.f64()
			c.FaultRate = d.f64()
			c.Trials = d.int()
			c.Offered = d.i64()
			c.Delivered = d.i64()
			c.Dropped = d.i64()
			c.Misrouted = d.i64()
			c.FaultDropped = d.i64()
			d.jobStat(&c.Throughput)
			c.QuarantinedTrials = d.int()
		}
	}
	v.Degraded = d.bool()
	if !d.presence() {
		v.QuarantinedShards = nil
	} else {
		n := d.count()
		if cap(v.QuarantinedShards) < n || v.QuarantinedShards == nil {
			v.QuarantinedShards = make([]jobs.QuarantinedShard, n)
		} else {
			v.QuarantinedShards = v.QuarantinedShards[:n]
		}
		for i := range v.QuarantinedShards {
			q := &v.QuarantinedShards[i]
			q.Shard = d.int()
			q.Cell = d.int()
			q.Lo = d.int()
			q.Hi = d.int()
			q.Reason = d.str()
		}
	}
	return d.finish()
}
