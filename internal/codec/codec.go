// Package codec is the serving plane's binary wire format: a
// versioned, length-prefixed, little-endian codec for the hot
// request/response shapes — simulate requests (fault plans and kernel
// selection included), simulate statistics, batch envelopes, job
// specs and result manifests. It exists because JSON encode/decode is
// the dominant per-request cost of a warm simulate sweep once the
// bit-sliced kernel made the compute cheap; minserve negotiates it
// per request via Content-Type/Accept: application/x-min-bin.
//
// Frame layout (all multi-byte integers little-endian):
//
//	offset  size  field
//	0       2     magic "MB" (0x4D 0x42)
//	2       1     format version (currently 1)
//	3       1     shape id (Shape* constants)
//	4       4     payload length, uint32
//	8       n     payload
//
// Inside a payload: unsigned integers are uvarint, signed integers
// are zigzag varint, float64 is its 8-byte IEEE-754 bit pattern,
// bool is one strict 0/1 byte, a string or byte field is a uvarint
// length followed by the raw bytes, and every nillable slice or
// pointer field is led by a presence byte (0 = nil, 1 = present) so
// nil and empty round-trip exactly.
//
// Performance contract: encoding appends to a pooled Encoder buffer
// and decoding reuses the destination struct's slices plus a bounded
// string intern table, so the steady state of a request/response loop
// is alloc-free — the per-element loops carry //minlint:hotpath and
// the hotalloc analyzer plus the CI 0-allocs/op benchmark gate keep
// them that way. Decoded strings are copies; decoded byte fields
// (batch sub-payloads) alias the input buffer and must be consumed
// before the caller recycles it.
package codec

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sync"
)

// Wire constants. Version only moves when the payload layout of an
// existing shape changes; new shapes extend the id space instead.
const (
	magic0  = 0x4D // 'M'
	magic1  = 0x42 // 'B'
	Version = 1

	headerLen = 8
)

// Shape ids, one per wire shape. Stable: ids are only ever added.
const (
	ShapeCheckRequest     = 1
	ShapeCheckResponse    = 2
	ShapeRouteRequest     = 3
	ShapeRouteResponse    = 4
	ShapeSimulateRequest  = 5
	ShapeSimulateResponse = 6
	ShapeBatchRequest     = 7
	ShapeBatchResponse    = 8
	ShapeJobSpec          = 9
	ShapeJobResult        = 10
)

// Decode failure sentinels. Frame-level corruption (bad magic,
// version, shape, torn length) and payload-level truncation both
// reject the whole frame; there is no partial decode.
var (
	ErrFrame     = errors.New("codec: malformed frame header")
	ErrTruncated = errors.New("codec: truncated frame")
	ErrTrailing  = errors.New("codec: trailing bytes after frame")
	ErrValue     = errors.New("codec: invalid field value")
)

// internCap bounds the Decoder's string intern table so adversarial
// inputs cannot grow a pooled decoder without bound; past the cap
// strings simply allocate like JSON's would.
const internCap = 512

// --- Encoder --------------------------------------------------------

// Encoder appends frames to an owned buffer. The zero value is ready;
// Reset between frames to reuse the buffer. Not safe for concurrent
// use.
type Encoder struct {
	buf []byte
}

// Reset truncates the buffer, keeping its capacity.
func (e *Encoder) Reset() { e.buf = e.buf[:0] }

// Bytes returns the encoded frame(s); the slice aliases the encoder's
// buffer and is invalidated by the next Reset.
func (e *Encoder) Bytes() []byte { return e.buf }

// begin appends a frame header with a zero length and returns the
// payload start for end to patch.
//
//minlint:hotpath
func (e *Encoder) begin(shape byte) int {
	e.buf = append(e.buf, magic0, magic1, Version, shape, 0, 0, 0, 0)
	return len(e.buf)
}

// end patches the length field of the frame opened at start.
//
//minlint:hotpath
func (e *Encoder) end(start int) {
	binary.LittleEndian.PutUint32(e.buf[start-4:start], uint32(len(e.buf)-start))
}

//minlint:hotpath
func (e *Encoder) u64(v uint64) {
	for v >= 0x80 {
		e.buf = append(e.buf, byte(v)|0x80)
		v >>= 7
	}
	e.buf = append(e.buf, byte(v))
}

//minlint:hotpath
func (e *Encoder) int(v int) { e.u64(zigzag(int64(v))) }

//minlint:hotpath
func (e *Encoder) i64(v int64) { e.u64(zigzag(v)) }

//minlint:hotpath
func (e *Encoder) f64(v float64) {
	bits := math.Float64bits(v)
	e.buf = append(e.buf,
		byte(bits), byte(bits>>8), byte(bits>>16), byte(bits>>24),
		byte(bits>>32), byte(bits>>40), byte(bits>>48), byte(bits>>56))
}

//minlint:hotpath
func (e *Encoder) bool(v bool) {
	b := byte(0)
	if v {
		b = 1
	}
	e.buf = append(e.buf, b)
}

//minlint:hotpath
func (e *Encoder) str(s string) {
	e.u64(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

//minlint:hotpath
func (e *Encoder) bytes(b []byte) {
	e.u64(uint64(len(b)))
	e.buf = append(e.buf, b...)
}

// presence leads a nillable field: 0 = nil, 1 = present.
//
//minlint:hotpath
func (e *Encoder) presence(present bool) { e.bool(present) }

//minlint:hotpath
func (e *Encoder) ints(s []int) {
	e.presence(s != nil)
	if s == nil {
		return
	}
	e.u64(uint64(len(s)))
	for _, v := range s {
		e.int(v)
	}
}

//minlint:hotpath
func (e *Encoder) floats(s []float64) {
	e.presence(s != nil)
	if s == nil {
		return
	}
	e.u64(uint64(len(s)))
	for _, v := range s {
		e.f64(v)
	}
}

//minlint:hotpath
func (e *Encoder) strs(s []string) {
	e.presence(s != nil)
	if s == nil {
		return
	}
	e.u64(uint64(len(s)))
	for _, v := range s {
		e.str(v)
	}
}

//minlint:hotpath
func (e *Encoder) perms(s [][]int) {
	e.presence(s != nil)
	if s == nil {
		return
	}
	e.u64(uint64(len(s)))
	for _, row := range s {
		e.ints(row)
	}
}

func zigzag(v int64) uint64 { return uint64(v<<1) ^ uint64(v>>63) }

func unzigzag(v uint64) int64 { return int64(v>>1) ^ -int64(v&1) }

// --- Decoder --------------------------------------------------------

// Decoder consumes exactly one frame per Reset. The first failure
// latches into err; subsequent primitive reads return zero values, so
// shape decoders run straight-line and check the error once at the
// end. Not safe for concurrent use.
type Decoder struct {
	buf []byte
	off int
	err error
	// strs interns decoded strings so a steady request stream stops
	// allocating for repeated names; bounded by internCap.
	strs map[string]string
}

// Reset points the decoder at a new frame.
func (d *Decoder) Reset(data []byte) {
	d.buf = data
	d.off = 0
	d.err = nil
}

// frame validates the header and requires the payload length to cover
// the remaining bytes exactly — a short buffer is a torn frame, extra
// bytes are trailing garbage; both reject.
func (d *Decoder) frame(shape byte) error {
	if len(d.buf) < headerLen {
		return ErrTruncated
	}
	if d.buf[0] != magic0 || d.buf[1] != magic1 {
		return ErrFrame
	}
	if d.buf[2] != Version {
		return fmt.Errorf("%w: version %d, want %d", ErrFrame, d.buf[2], Version)
	}
	if d.buf[3] != shape {
		return fmt.Errorf("%w: shape %d, want %d", ErrFrame, d.buf[3], shape)
	}
	n := binary.LittleEndian.Uint32(d.buf[4:8])
	switch rest := uint32(len(d.buf) - headerLen); {
	case n > rest:
		return ErrTruncated
	case n < rest:
		return ErrTrailing
	}
	d.off = headerLen
	return nil
}

// finish reports the latched error, or whether payload bytes remain
// unconsumed (a shape/payload length mismatch).
func (d *Decoder) finish() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.buf) {
		return ErrTrailing
	}
	return nil
}

func (d *Decoder) fail(err error) {
	if d.err == nil {
		d.err = err
	}
}

//minlint:hotpath
func (d *Decoder) u64() uint64 {
	var v uint64
	var shift uint
	for i := 0; i < 10; i++ {
		if d.off >= len(d.buf) {
			d.fail(ErrTruncated)
			return 0
		}
		b := d.buf[d.off]
		d.off++
		if shift == 63 && b > 1 {
			d.fail(ErrValue)
			return 0
		}
		v |= uint64(b&0x7F) << shift
		if b < 0x80 {
			return v
		}
		shift += 7
	}
	d.fail(ErrValue)
	return 0
}

//minlint:hotpath
func (d *Decoder) int() int { return int(unzigzag(d.u64())) }

//minlint:hotpath
func (d *Decoder) i64() int64 { return unzigzag(d.u64()) }

//minlint:hotpath
func (d *Decoder) f64() float64 {
	if d.off+8 > len(d.buf) {
		d.fail(ErrTruncated)
		return 0
	}
	bits := binary.LittleEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return math.Float64frombits(bits)
}

//minlint:hotpath
func (d *Decoder) bool() bool {
	if d.off >= len(d.buf) {
		d.fail(ErrTruncated)
		return false
	}
	b := d.buf[d.off]
	d.off++
	if b > 1 {
		d.fail(ErrValue)
		return false
	}
	return b == 1
}

//minlint:hotpath
func (d *Decoder) presence() bool { return d.bool() }

// count reads a slice length and bounds it by the remaining payload
// (every element costs at least one byte), so corrupt input cannot
// demand a huge allocation.
//
//minlint:hotpath
func (d *Decoder) count() int {
	n := d.u64()
	if n > uint64(len(d.buf)-d.off) {
		d.fail(ErrTruncated)
		return 0
	}
	return int(n)
}

//minlint:hotpath
func (d *Decoder) str() string {
	n := d.count()
	if d.err != nil {
		return ""
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return d.intern(b)
}

// rawBytes returns a length-prefixed byte field aliasing the input
// buffer (nil when empty, matching json.RawMessage round-trips where
// an absent field decodes nil).
//
//minlint:hotpath
func (d *Decoder) rawBytes() []byte {
	n := d.count()
	if d.err != nil || n == 0 {
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

// intern returns a string for b, reusing a prior copy when the table
// holds one. The map lookup converts without copying; only a miss
// allocates, and the table is capped so hostile streams degrade to
// plain copies instead of growing the pooled decoder forever.
func (d *Decoder) intern(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	if s, ok := d.strs[string(b)]; ok {
		return s
	}
	s := string(b)
	if d.strs == nil {
		d.strs = make(map[string]string, 16)
	}
	if len(d.strs) < internCap {
		d.strs[s] = s
	}
	return s
}

// growInts reslices s to n elements, reusing capacity; presence was
// already consumed true, so n == 0 must yield empty, not nil.
func growInts(s []int, n int) []int {
	if cap(s) < n || s == nil {
		return make([]int, n)
	}
	return s[:n]
}

func growFloats(s []float64, n int) []float64 {
	if cap(s) < n || s == nil {
		return make([]float64, n)
	}
	return s[:n]
}

func growStrs(s []string, n int) []string {
	if cap(s) < n || s == nil {
		return make([]string, n)
	}
	return s[:n]
}

// ints decodes a presence-led int slice into s's storage.
func (d *Decoder) intsInto(s []int) []int {
	if !d.presence() || d.err != nil {
		return nil
	}
	s = growInts(s, d.count())
	d.intLoop(s)
	return s
}

//minlint:hotpath
func (d *Decoder) intLoop(s []int) {
	for i := range s {
		s[i] = d.int()
	}
}

func (d *Decoder) floatsInto(s []float64) []float64 {
	if !d.presence() || d.err != nil {
		return nil
	}
	s = growFloats(s, d.count())
	d.floatLoop(s)
	return s
}

//minlint:hotpath
func (d *Decoder) floatLoop(s []float64) {
	for i := range s {
		s[i] = d.f64()
	}
}

func (d *Decoder) strsInto(s []string) []string {
	if !d.presence() || d.err != nil {
		return nil
	}
	s = growStrs(s, d.count())
	for i := range s {
		s[i] = d.str()
	}
	return s
}

func (d *Decoder) permsInto(s [][]int) [][]int {
	if !d.presence() || d.err != nil {
		return nil
	}
	n := d.count()
	if cap(s) < n || s == nil {
		s = make([][]int, n)
	} else {
		s = s[:n]
	}
	for i := range s {
		s[i] = d.intsInto(s[i])
	}
	return s
}

// --- pooled entry points --------------------------------------------

var encPool = sync.Pool{New: func() any { return new(Encoder) }}
var decPool = sync.Pool{New: func() any { return new(Decoder) }}

// Encode renders one wire shape (a pointer or value of the shapes in
// this package, or *jobs.Spec / *jobs.Result) as a standalone frame,
// using a pooled encoder under the hood. The returned slice is owned
// by the caller.
func Encode(v any) ([]byte, error) {
	e := encPool.Get().(*Encoder)
	e.Reset()
	if err := e.encodeAny(v); err != nil {
		encPool.Put(e)
		return nil, err
	}
	out := make([]byte, len(e.buf))
	copy(out, e.buf)
	encPool.Put(e)
	return out, nil
}

// Decode parses one standalone frame into v (a pointer to a wire
// shape), using a pooled decoder whose intern table persists across
// calls. Torn, truncated, or trailing-garbage frames are rejected.
// Byte fields of the decoded value alias data.
func Decode(data []byte, v any) error {
	d := decPool.Get().(*Decoder)
	d.Reset(data)
	err := d.decodeAny(v)
	decPool.Put(d)
	return err
}

func (e *Encoder) encodeAny(v any) error {
	switch v := v.(type) {
	case *CheckRequest:
		e.CheckRequest(v)
	case CheckRequest:
		e.CheckRequest(&v)
	case *CheckResponse:
		e.CheckResponse(v)
	case CheckResponse:
		e.CheckResponse(&v)
	case *RouteRequest:
		e.RouteRequest(v)
	case RouteRequest:
		e.RouteRequest(&v)
	case *RouteResponse:
		e.RouteResponse(v)
	case RouteResponse:
		e.RouteResponse(&v)
	case *SimulateRequest:
		e.SimulateRequest(v)
	case SimulateRequest:
		e.SimulateRequest(&v)
	case *SimulateResponse:
		e.SimulateResponse(v)
	case SimulateResponse:
		e.SimulateResponse(&v)
	case *BatchRequest:
		e.BatchRequest(v)
	case BatchRequest:
		e.BatchRequest(&v)
	case *BatchResponse:
		e.BatchResponse(v)
	case BatchResponse:
		e.BatchResponse(&v)
	case *JobSpec:
		e.JobSpec(v)
	case JobSpec:
		e.JobSpec(&v)
	case *JobResult:
		e.JobResult(v)
	case JobResult:
		e.JobResult(&v)
	default:
		return fmt.Errorf("codec: cannot encode %T", v)
	}
	return nil
}

func (d *Decoder) decodeAny(v any) error {
	switch v := v.(type) {
	case *CheckRequest:
		return d.CheckRequest(v)
	case *CheckResponse:
		return d.CheckResponse(v)
	case *RouteRequest:
		return d.RouteRequest(v)
	case *RouteResponse:
		return d.RouteResponse(v)
	case *SimulateRequest:
		return d.SimulateRequest(v)
	case *SimulateResponse:
		return d.SimulateResponse(v)
	case *BatchRequest:
		return d.BatchRequest(v)
	case *BatchResponse:
		return d.BatchResponse(v)
	case *JobSpec:
		return d.JobSpec(v)
	case *JobResult:
		return d.JobResult(v)
	default:
		return fmt.Errorf("codec: cannot decode into %T", v)
	}
}
