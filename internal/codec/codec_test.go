package codec

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"

	"minequiv/internal/jobs"
	"minequiv/min"
)

// Fully populated fixtures, one per wire shape. Every optional field
// is exercised somewhere so a round-trip failure cannot hide in an
// always-nil branch.

func fixtureCheckRequest() *CheckRequest {
	return &CheckRequest{
		NetworkSpec: NetworkSpec{
			Network:    "omega",
			Stages:     4,
			LinkPerms:  [][]int{{0, 2, 1, 3}, {3, 1, 2, 0}},
			IndexPerms: [][]int{{1, 0}},
		},
		Iso: true,
	}
}

func fixtureCheckResponse() *CheckResponse {
	return &CheckResponse{
		Report: min.Report{
			Network:         "flip",
			Stages:          5,
			Equivalent:      true,
			Banyan:          false,
			BanyanViolation: "paths (0,0) collide",
			Prefix: []min.WindowCheck{
				{I: 0, J: 2, Components: 4, Expected: 4, OK: true},
				{I: 1, J: 3, Components: 2, Expected: 4, OK: false},
			},
			Suffix: []min.WindowCheck{{I: 2, J: 4, Components: 8, Expected: 8, OK: true}},
		},
		Iso: &min.Isomorphism{Maps: [][]int{{0, 1, 3, 2}, {2, 3, 0, 1}}},
	}
}

func fixtureRouteRequest() *RouteRequest {
	return &RouteRequest{
		NetworkSpec: NetworkSpec{Network: "baseline", Stages: 6},
		Src:         11,
		Dst:         52,
		Faults: &min.FaultPlan{
			Faults: []min.Fault{
				{Kind: min.SwitchDead, Stage: 1, Cell: 3},
				{Kind: min.LinkDown, Stage: 2, Link: 7},
			},
		},
	}
}

func fixtureRouteResponse() *RouteResponse {
	return &RouteResponse{
		Network: "omega",
		Path: min.Path{Src: 3, Dst: 9, Hops: []min.Hop{
			{Stage: 0, Cell: 1, InPort: 1, OutPort: 0},
			{Stage: 1, Cell: 4, InPort: 0, OutPort: 1},
		}},
		TagPositions: []int{3, 2, 1, 0},
	}
}

func fixtureSimulateRequest() *SimulateRequest {
	return &SimulateRequest{
		NetworkSpec: NetworkSpec{Network: "indirect-binary-cube", Stages: 5},
		Model:       "wave",
		Scenario:    "hotspot",
		Load:        0.75,
		HotDst:      13,
		HotProb:     0.2,
		Seed:        0xDEADBEEFCAFE,
		Workers:     4,
		Faults: &min.FaultPlan{
			SwitchDeadRate:  0.01,
			SwitchStuckRate: 0.005,
			LinkDownRate:    0.02,
		},
		Waves:  32,
		Kernel: "bit",
	}
}

func fixtureSimulateResponse() *SimulateResponse {
	return &SimulateResponse{
		Model: "wave",
		Wave: &min.WaveStats{
			Network: "omega", Stages: 5, Terminals: 32, Scenario: "uniform",
			Waves: 500, Seed: 1, Offered: 16000, Delivered: 11000,
			Dropped: 4800, Misrouted: 0, FaultDropped: 200,
			Throughput: min.Stat{N: 500, Mean: 0.6875, Std: 0.04, CI95: 0.0035},
		},
	}
}

func fixtureBufferedResponse() *SimulateResponse {
	return &SimulateResponse{
		Model: "buffered",
		Buffered: &min.BufferedStats{
			Network: "flip", Stages: 4, Terminals: 16, Scenario: "uniform",
			Replications: 3, Seed: 7, Injected: 9000, Rejected: 120,
			Delivered: 8700, Dropped: 100, FaultDropped: 30, Misrouted: 2,
			InFlight: 48, MaxOccupancy: 64,
			Throughput:     min.Stat{N: 3, Mean: 0.58, Std: 0.01, CI95: 0.011},
			Latency:        min.Stat{N: 8700, Mean: 9.4, Std: 3.1, CI95: 0.065},
			LatencyP50:     min.Stat{N: 3, Mean: 8, Std: 0.5, CI95: 0.57},
			LatencyP95:     min.Stat{N: 3, Mean: 16, Std: 1, CI95: 1.13},
			LatencyP99:     min.Stat{N: 3, Mean: 21, Std: 1.5, CI95: 1.7},
			StageOccupancy: []float64{0.31, 0.42, 0.55, 0.61},
		},
	}
}

func fixtureBatchRequest() *BatchRequest {
	return &BatchRequest{Requests: []BatchItem{
		{Op: "check", Request: json.RawMessage(`{"network":"omega","stages":4}`)},
		{Op: "simulate", Request: []byte{magic0, magic1, Version, ShapeSimulateRequest, 0, 0, 0, 0}, Bin: true},
	}}
}

func fixtureBatchResponse() *BatchResponse {
	return &BatchResponse{Responses: []BatchResult{
		{Op: "check", Status: 200, Cache: CacheHit, Body: []byte(`{"report":{}}`)},
		{Op: "simulate", Status: 400, Cache: CacheNone, Body: []byte(`{"error":{}}`)},
	}}
}

func fixtureJobSpec() *JobSpec {
	return &jobs.Spec{
		Networks:      []string{"omega", "flip"},
		Stages:        6,
		Loads:         []float64{0.25, 0.5, 1},
		FaultRates:    []float64{0, 0.01},
		Scenario:      "uniform",
		Kernel:        "bit",
		TrialsPerCell: 256,
		Seed:          42,
		ShardTrials:   64,
	}
}

func fixtureJobResult() *JobResult {
	return &jobs.Result{
		Spec: *fixtureJobSpec(),
		Cells: []jobs.CellResult{
			{
				Network: "omega", Stages: 6, Load: 0.5, FaultRate: 0.01,
				Trials: 256, Offered: 100000, Delivered: 80000, Dropped: 19000,
				Misrouted: 0, FaultDropped: 1000,
				Throughput:        jobs.Stat{N: 256, Mean: 0.8, Std: 0.05, CI95: 0.006},
				QuarantinedTrials: 64,
			},
			{Network: "flip", Stages: 6, Load: 1, Trials: 256, Throughput: jobs.Stat{N: 256}},
		},
		Degraded: true,
		QuarantinedShards: []jobs.QuarantinedShard{
			{Shard: 3, Cell: 1, Lo: 128, Hi: 192, Reason: "worker panic: poison trial"},
		},
	}
}

// fixtures returns one populated value per shape, keyed by name.
func fixtures() map[string]any {
	return map[string]any{
		"checkRequest":     fixtureCheckRequest(),
		"checkResponse":    fixtureCheckResponse(),
		"routeRequest":     fixtureRouteRequest(),
		"routeResponse":    fixtureRouteResponse(),
		"simulateRequest":  fixtureSimulateRequest(),
		"simulateResponse": fixtureSimulateResponse(),
		"bufferedResponse": fixtureBufferedResponse(),
		"batchRequest":     fixtureBatchRequest(),
		"batchResponse":    fixtureBatchResponse(),
		"jobSpec":          fixtureJobSpec(),
		"jobResult":        fixtureJobResult(),
	}
}

// fresh returns a zero value of the same pointer type as v.
func fresh(v any) any {
	return reflect.New(reflect.TypeOf(v).Elem()).Interface()
}

func TestRoundTripAllShapes(t *testing.T) {
	for name, v := range fixtures() {
		t.Run(name, func(t *testing.T) {
			wire, err := Encode(v)
			if err != nil {
				t.Fatalf("Encode: %v", err)
			}
			got := fresh(v)
			if err := Decode(wire, got); err != nil {
				t.Fatalf("Decode: %v", err)
			}
			if !reflect.DeepEqual(got, v) {
				t.Fatalf("round-trip mismatch:\n got %+v\nwant %+v", got, v)
			}
		})
	}
}

func TestEncodeValueAndPointerAgree(t *testing.T) {
	ptr := fixtureSimulateRequest()
	a, err := Encode(ptr)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Encode(*ptr)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("value and pointer encodings differ")
	}
}

func TestNilVsEmptyRoundTrip(t *testing.T) {
	cases := []*CheckRequest{
		{NetworkSpec: NetworkSpec{Network: "omega", Stages: 3}},                             // nil perms
		{NetworkSpec: NetworkSpec{Stages: 3, LinkPerms: [][]int{}}},                         // empty outer
		{NetworkSpec: NetworkSpec{Stages: 3, LinkPerms: [][]int{{}}}},                       // empty row
		{NetworkSpec: NetworkSpec{Stages: 3, LinkPerms: [][]int{nil}}},                      // nil row
		{NetworkSpec: NetworkSpec{Stages: 3, IndexPerms: [][]int{{0, 1}, nil, {}, {2}}}},    // mixed
		{NetworkSpec: NetworkSpec{Network: "", Stages: 0, LinkPerms: nil, IndexPerms: nil}}, // zero
	}
	for i, v := range cases {
		wire, err := Encode(v)
		if err != nil {
			t.Fatalf("case %d: Encode: %v", i, err)
		}
		got := new(CheckRequest)
		if err := Decode(wire, got); err != nil {
			t.Fatalf("case %d: Decode: %v", i, err)
		}
		if !reflect.DeepEqual(got, v) {
			t.Errorf("case %d: got %#v want %#v", i, got, v)
		}
	}

	// A present-but-empty fault plan is distinct from an absent one.
	withPlan := &RouteRequest{NetworkSpec: NetworkSpec{Stages: 3}, Faults: &min.FaultPlan{}}
	wire, err := Encode(withPlan)
	if err != nil {
		t.Fatal(err)
	}
	got := new(RouteRequest)
	if err := Decode(wire, got); err != nil {
		t.Fatal(err)
	}
	if got.Faults == nil || got.Faults.Faults != nil {
		t.Fatalf("empty fault plan mangled: %#v", got.Faults)
	}
}

func TestDecodeReusesStorage(t *testing.T) {
	v := fixtureSimulateResponse()
	wire, err := Encode(v)
	if err != nil {
		t.Fatal(err)
	}
	var d Decoder
	dst := new(SimulateResponse)
	d.Reset(wire)
	if err := d.SimulateResponse(dst); err != nil {
		t.Fatal(err)
	}
	wave := dst.Wave
	d.Reset(wire)
	if err := d.SimulateResponse(dst); err != nil {
		t.Fatal(err)
	}
	if dst.Wave != wave {
		t.Fatal("second decode did not reuse the Wave pointer")
	}
	if !reflect.DeepEqual(dst, v) {
		t.Fatal("reused decode mismatch")
	}
}

func TestRejectsTornAndTrailingFrames(t *testing.T) {
	v := fixtureSimulateRequest()
	wire, err := Encode(v)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(wire); cut++ {
		if err := Decode(wire[:cut], new(SimulateRequest)); err == nil {
			t.Fatalf("prefix of %d/%d bytes decoded without error", cut, len(wire))
		}
	}
	if err := Decode(append(bytes.Clone(wire), 0), new(SimulateRequest)); err == nil {
		t.Fatal("frame with trailing byte decoded without error")
	}
}

func TestRejectsHeaderCorruption(t *testing.T) {
	wire, err := Encode(fixtureCheckRequest())
	if err != nil {
		t.Fatal(err)
	}
	mut := func(i int, b byte) []byte {
		c := bytes.Clone(wire)
		c[i] = b
		return c
	}
	cases := map[string][]byte{
		"bad magic0":    mut(0, 'X'),
		"bad magic1":    mut(1, 'X'),
		"bad version":   mut(2, Version+1),
		"wrong shape":   mut(3, ShapeRouteRequest),
		"length short":  mut(4, wire[4]-1),
		"length long":   mut(4, wire[4]+1),
		"unknown shape": mut(3, 0),
	}
	for name, data := range cases {
		if err := Decode(data, new(CheckRequest)); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
}

func TestHostileLengthsRejectNotAllocate(t *testing.T) {
	// A frame whose payload claims a huge slice must fail fast: count()
	// bounds every length by the remaining payload bytes.
	var e Encoder
	start := e.begin(ShapeCheckRequest)
	e.str("omega")
	e.int(4)
	e.presence(true)
	e.u64(1 << 40) // LinkPerms outer count: absurd
	e.end(start)
	if err := Decode(e.Bytes(), new(CheckRequest)); err == nil {
		t.Fatal("hostile count decoded without error")
	}
}

func TestJSONTagsMatchServingContract(t *testing.T) {
	// The shapes here are aliased by minserve, so their JSON tags ARE
	// the HTTP API. Pin the request-side key set against drift.
	b, err := json.Marshal(fixtureSimulateRequest())
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"network", "stages", "model", "scenario", "load", "hotDst", "hotProb", "seed", "workers", "faults", "waves", "kernel"} {
		if _, ok := m[key]; !ok {
			t.Errorf("marshalled SimulateRequest lacks %q (got %v)", key, m)
		}
	}
	if _, ok := m["replications"]; ok {
		t.Error("zero replications should be omitted")
	}
}

func TestSteadyStateAllocFree(t *testing.T) {
	v := fixtureSimulateResponse()
	var e Encoder
	e.SimulateResponse(v) // prime buffer capacity
	if allocs := testing.AllocsPerRun(100, func() {
		e.Reset()
		e.SimulateResponse(v)
	}); allocs != 0 {
		t.Errorf("encode steady state: %v allocs/op, want 0", allocs)
	}

	wire := bytes.Clone(e.Bytes())
	var d Decoder
	dst := new(SimulateResponse)
	d.Reset(wire)
	if err := d.SimulateResponse(dst); err != nil { // prime scratch + intern table
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(100, func() {
		d.Reset(wire)
		if err := d.SimulateResponse(dst); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Errorf("decode steady state: %v allocs/op, want 0", allocs)
	}
}

// FuzzCodecRoundTrip feeds arbitrary bytes to the decoder for the
// shape named in the header: decoding must never panic, a success must
// re-encode to a value-identical frame, and no strict prefix of an
// accepted frame may also be accepted.
func FuzzCodecRoundTrip(f *testing.F) {
	for _, v := range fixtures() {
		wire, err := Encode(v)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(wire)
	}
	f.Add([]byte{magic0, magic1, Version, ShapeSimulateRequest, 0, 0, 0, 0})
	f.Add([]byte{magic0, magic1})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 4 {
			if err := Decode(data, new(CheckRequest)); err == nil {
				t.Fatal("short input accepted")
			}
			return
		}
		target := targetForShape(data[3])
		if target == nil {
			if err := Decode(data, new(CheckRequest)); err == nil {
				t.Fatal("unknown shape accepted")
			}
			return
		}
		if err := Decode(data, target); err != nil {
			return
		}
		wire, err := Encode(target)
		if err != nil {
			t.Fatalf("re-encode of accepted frame failed: %v", err)
		}
		again := fresh(target)
		if err := Decode(wire, again); err != nil {
			t.Fatalf("decode of re-encoded frame failed: %v", err)
		}
		// Wire-level fixpoint: a second encode must reproduce the first
		// byte-for-byte. (DeepEqual would be too strict here — floats
		// round-trip bit-exactly, but NaN != NaN.)
		rewire, err := Encode(again)
		if err != nil {
			t.Fatalf("re-encode of round-tripped value failed: %v", err)
		}
		if !bytes.Equal(rewire, wire) {
			t.Fatalf("round-trip not a fixpoint:\n got %x\nwant %x\nvalue %+v", rewire, wire, again)
		}
		for cut := headerLen; cut < len(data); cut += 1 + len(data)/64 {
			if err := Decode(data[:cut], fresh(target)); err == nil {
				t.Fatalf("accepted frame's %d-byte prefix also accepted", cut)
			}
		}
	})
}

func targetForShape(shape byte) any {
	switch shape {
	case ShapeCheckRequest:
		return new(CheckRequest)
	case ShapeCheckResponse:
		return new(CheckResponse)
	case ShapeRouteRequest:
		return new(RouteRequest)
	case ShapeRouteResponse:
		return new(RouteResponse)
	case ShapeSimulateRequest:
		return new(SimulateRequest)
	case ShapeSimulateResponse:
		return new(SimulateResponse)
	case ShapeBatchRequest:
		return new(BatchRequest)
	case ShapeBatchResponse:
		return new(BatchResponse)
	case ShapeJobSpec:
		return new(JobSpec)
	case ShapeJobResult:
		return new(JobResult)
	}
	return nil
}

func BenchmarkCodecEncode(b *testing.B) {
	v := fixtureSimulateResponse()
	var e Encoder
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.Reset()
		e.SimulateResponse(v)
	}
}

func BenchmarkCodecDecode(b *testing.B) {
	wire, err := Encode(fixtureSimulateResponse())
	if err != nil {
		b.Fatal(err)
	}
	var d Decoder
	dst := new(SimulateResponse)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d.Reset(wire)
		if err := d.SimulateResponse(dst); err != nil {
			b.Fatal(err)
		}
	}
}
