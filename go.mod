module minequiv

go 1.23
