module minequiv

go 1.24
