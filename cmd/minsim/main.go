// Command minsim runs packet-level simulations of a multistage
// interconnection network on the parallel trial engine.
//
// Usage:
//
//	minsim -net omega -n 6 -model wave     -waves 500 -pattern uniform
//	minsim -net flip  -n 6 -model buffered -load 0.7 -queue 4 -cycles 5000
//	minsim -counter -n 6 -model wave       # simulate the tail-cycle counterexample
//	minsim -sweep -n 6 -loads 0.2,0.4,0.6,0.8,1.0    # load x network grid
//	minsim -patterns                       # list traffic scenarios
//
// Every run shards its trials across -workers goroutines (default
// GOMAXPROCS); results are identical for any worker count.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"minequiv/internal/engine"
	"minequiv/internal/randnet"
	"minequiv/internal/sim"
	"minequiv/internal/topology"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "minsim:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("minsim", flag.ContinueOnError)
	netName := fs.String("net", topology.NameOmega, "network name")
	counter := fs.Bool("counter", false, "simulate the tail-cycle counterexample instead of -net")
	n := fs.Int("n", 6, "number of stages")
	model := fs.String("model", "wave", "wave or buffered")
	pattern := fs.String("pattern", "uniform", "traffic scenario (see -patterns)")
	listPatterns := fs.Bool("patterns", false, "list traffic scenarios and exit")
	waves := fs.Int("waves", 500, "waves (wave model)")
	reps := fs.Int("reps", 1, "independent replications (buffered model)")
	load := fs.Float64("load", 0.6, "offered load (buffered model; bernoulli/bursty patterns)")
	queue := fs.Int("queue", 4, "queue capacity (buffered model)")
	cycles := fs.Int("cycles", 5000, "measured cycles (buffered model)")
	warmup := fs.Int("warmup", 500, "warmup cycles (buffered model)")
	hotspot := fs.Float64("hotspot", 0.3, "hot-spot probability (hotspot pattern)")
	burst := fs.Float64("burst", 0.2, "burst-wave probability (bursty pattern)")
	idleLoad := fs.Float64("idleload", 0.1, "off-phase load (bursty pattern)")
	seed := fs.Uint64("seed", 1, "root rng seed")
	workers := fs.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
	sweep := fs.Bool("sweep", false, "run a load x network grid in one invocation")
	nets := fs.String("nets", "", "comma-separated networks for -sweep (default: all)")
	loads := fs.String("loads", "0.2,0.4,0.6,0.8,1.0", "comma-separated loads for -sweep")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *listPatterns {
		for _, s := range sim.Scenarios() {
			fmt.Fprintf(w, "%-12s %s\n", s.Name, s.Description)
		}
		return nil
	}

	cfg := engine.Config{Workers: *workers, Seed: *seed}
	params := sim.ScenarioParams{
		Load: *load, HotProb: *hotspot, HotDst: 0,
		BurstProb: *burst, IdleLoad: *idleLoad,
	}

	if *sweep {
		// The sweep grid fixes its own traffic (Bernoulli at each grid
		// load) and network list; reject flags it would silently drop.
		if *counter {
			return fmt.Errorf("-sweep runs the catalog networks; it cannot be combined with -counter")
		}
		patternSet := false
		fs.Visit(func(f *flag.Flag) {
			if f.Name == "pattern" {
				patternSet = true
			}
		})
		if patternSet {
			return fmt.Errorf("-sweep always uses bernoulli traffic at each grid load; -pattern is not supported")
		}
		return runSweep(w, *model, *n, *nets, *loads, *waves, *reps, *queue, *cycles, *warmup, cfg)
	}

	f, name, err := buildFabric(*counter, *netName, *n)
	if err != nil {
		return err
	}

	switch *model {
	case "wave":
		sc, ok := sim.LookupScenario(*pattern)
		if !ok {
			return fmt.Errorf("unknown pattern %q (try -patterns)", *pattern)
		}
		st, err := engine.RunWaves(f, sc.New(params), *waves, cfg)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%s n=%d (N=%d), %s traffic, %d waves: throughput %.4f ± %.4f\n",
			name, *n, f.N, *pattern, *waves, st.Throughput.Mean, st.Throughput.CI95())
		fmt.Fprintf(w, "  offered %d, delivered %d, dropped %d, misrouted %d\n",
			st.Offered, st.Delivered, st.Dropped, st.Misrouted)
		return nil

	case "buffered":
		st, err := engine.RunBuffered(f, sim.BufferedConfig{
			Load: *load, Queue: *queue, Cycles: *cycles, Warmup: *warmup,
		}, *reps, cfg)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%s n=%d (N=%d), buffered, load %.2f, queue %d, %d cycles, %d reps:\n",
			name, *n, f.N, *load, *queue, *cycles, *reps)
		fmt.Fprintf(w, "  throughput   %.4f ± %.4f per terminal per cycle\n",
			st.Throughput.Mean, st.Throughput.CI95())
		fmt.Fprintf(w, "  mean latency %.2f ± %.2f cycles\n", st.Latency.Mean, st.Latency.CI95())
		fmt.Fprintf(w, "  injected %d, delivered %d, rejected %d, in flight %d\n",
			st.Injected, st.Delivered, st.Rejected, st.InFlight)
		return nil

	default:
		return fmt.Errorf("unknown model %q", *model)
	}
}

func buildFabric(counter bool, netName string, n int) (*sim.Fabric, string, error) {
	if counter {
		perms, err := randnet.TailCycleLinkPerms(n)
		if err != nil {
			return nil, "", err
		}
		f, err := sim.NewFabric(perms)
		if err != nil {
			return nil, "", err
		}
		return f, "tail-cycle", nil
	}
	nw, err := topology.Build(netName, n)
	if err != nil {
		return nil, "", err
	}
	f, err := sim.NewFabric(nw.LinkPerms)
	if err != nil {
		return nil, "", err
	}
	return f, nw.Name, nil
}

// runSweep evaluates a load x network grid in one invocation: Bernoulli
// wave traffic per load for the wave model, or buffered runs per load.
func runSweep(w io.Writer, model string, n int, nets, loads string, waves, reps, queue, cycles, warmup int, cfg engine.Config) error {
	names := topology.Names()
	if nets != "" {
		names = strings.Split(nets, ",")
		for i := range names {
			names[i] = strings.TrimSpace(names[i])
		}
	}
	var loadVals []float64
	for _, s := range strings.Split(loads, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil {
			return fmt.Errorf("bad load %q: %w", s, err)
		}
		loadVals = append(loadVals, v)
	}
	if len(loadVals) == 0 {
		return fmt.Errorf("empty load list")
	}
	if model != "wave" && model != "buffered" {
		return fmt.Errorf("unknown model %q", model)
	}

	fmt.Fprintf(w, "sweep: %s model, n=%d (N=%d), %d networks x %d loads\n",
		model, n, 1<<uint(n), len(names), len(loadVals))
	fmt.Fprintf(w, "%-26s", "network")
	for _, l := range loadVals {
		fmt.Fprintf(w, " load=%-8.2f", l)
	}
	fmt.Fprintln(w)
	for _, name := range names {
		f, fname, err := buildFabric(false, name, n)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-26s", fname)
		for _, l := range loadVals {
			var th float64
			switch model {
			case "wave":
				st, err := engine.RunWaves(f, sim.Bernoulli(l), waves, cfg)
				if err != nil {
					return err
				}
				th = st.Throughput.Mean
			case "buffered":
				st, err := engine.RunBuffered(f, sim.BufferedConfig{
					Load: l, Queue: queue, Cycles: cycles, Warmup: warmup,
				}, reps, cfg)
				if err != nil {
					return err
				}
				th = st.Throughput.Mean
			}
			fmt.Fprintf(w, " %-13.4f", th)
		}
		fmt.Fprintln(w)
	}
	return nil
}
