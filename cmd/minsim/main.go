// Command minsim runs packet-level simulations of a multistage
// interconnection network.
//
// Usage:
//
//	minsim -net omega -n 6 -model wave     -waves 500 -pattern uniform
//	minsim -net flip  -n 6 -model buffered -load 0.7 -queue 4 -cycles 5000
//	minsim -counter -n 6 -model wave       # simulate the tail-cycle counterexample
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"

	"minequiv/internal/randnet"
	"minequiv/internal/sim"
	"minequiv/internal/topology"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "minsim:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("minsim", flag.ContinueOnError)
	netName := fs.String("net", topology.NameOmega, "network name")
	counter := fs.Bool("counter", false, "simulate the tail-cycle counterexample instead of -net")
	n := fs.Int("n", 6, "number of stages")
	model := fs.String("model", "wave", "wave or buffered")
	pattern := fs.String("pattern", "uniform", "uniform, permutation, bitreversal, hotspot")
	waves := fs.Int("waves", 500, "waves (wave model)")
	load := fs.Float64("load", 0.6, "offered load (buffered model)")
	queue := fs.Int("queue", 4, "queue capacity (buffered model)")
	cycles := fs.Int("cycles", 5000, "measured cycles (buffered model)")
	warmup := fs.Int("warmup", 500, "warmup cycles (buffered model)")
	hotspot := fs.Float64("hotspot", 0.3, "hot-spot probability (hotspot pattern)")
	seed := fs.Int64("seed", 1, "rng seed")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var f *sim.Fabric
	var name string
	if *counter {
		perms, err := randnet.TailCycleLinkPerms(*n)
		if err != nil {
			return err
		}
		fab, err := sim.NewFabric(perms)
		if err != nil {
			return err
		}
		f, name = fab, "tail-cycle"
	} else {
		nw, err := topology.Build(*netName, *n)
		if err != nil {
			return err
		}
		fab, err := sim.NewFabric(nw.LinkPerms)
		if err != nil {
			return err
		}
		f, name = fab, nw.Name
	}

	rng := rand.New(rand.NewSource(*seed))
	switch *model {
	case "wave":
		var tr sim.Traffic
		switch *pattern {
		case "uniform":
			tr = sim.Uniform()
		case "permutation":
			tr = sim.RandomPermutation()
		case "bitreversal":
			tr = sim.BitReversal()
		case "hotspot":
			tr = sim.HotSpot(0, *hotspot)
		default:
			return fmt.Errorf("unknown pattern %q", *pattern)
		}
		th, err := f.Throughput(tr, *waves, rng)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%s n=%d (N=%d), %s traffic, %d waves: throughput %.4f\n",
			name, *n, f.N, *pattern, *waves, th)
		return nil

	case "buffered":
		res, err := f.RunBuffered(sim.BufferedConfig{
			Load: *load, Queue: *queue, Cycles: *cycles, Warmup: *warmup,
		}, rng)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%s n=%d (N=%d), buffered, load %.2f, queue %d, %d cycles:\n",
			name, *n, f.N, *load, *queue, *cycles)
		fmt.Fprintf(w, "  throughput   %.4f per terminal per cycle\n", res.Throughput)
		fmt.Fprintf(w, "  mean latency %.2f cycles\n", res.MeanLatency)
		fmt.Fprintf(w, "  injected %d, delivered %d, rejected %d, in flight %d\n",
			res.Injected, res.Delivered, res.Rejected, res.InFlight)
		return nil

	default:
		return fmt.Errorf("unknown model %q", *model)
	}
}
