// Command minsim runs packet-level simulations of a multistage
// interconnection network through the public min API (which shards
// trials across workers on the parallel engine).
//
// Usage:
//
//	minsim -net omega -n 6 -model wave     -waves 500 -pattern uniform
//	minsim -net flip  -n 6 -model buffered -load 0.7 -queue 4 -lanes 2 -cycles 5000
//	minsim -net flip  -n 6 -model buffered -pattern transpose -load 0.5
//	minsim -counter -n 6 -model wave       # simulate the tail-cycle counterexample
//	minsim -net omega -n 6 -faults dead=0.02,link=0.01     # random fault rates
//	minsim -net omega -n 6 -faults dead@1:3,stuck0@0:2     # pinned faults
//	minsim -sweep -n 6 -loads 0.2,0.4,0.6,0.8,1.0    # load x network grid
//	minsim -sweep -model buffered -n 6 -queues 2,8 -lanegrid 1,4   # load x queue x lanes
//	minsim -sweep -n 5 -faultrates 0,0.01,0.05       # degradation curves
//	minsim -patterns                       # list traffic scenarios
//
// Every run shards its trials across -workers goroutines (default
// GOMAXPROCS); results are identical for any worker count. The buffered
// model injects by the named scenario: load-aware scenarios (bernoulli,
// bursty) consume -load themselves, every other pattern is thinned to
// the offered -load.
//
// -faults degrades the fabric: comma-separated rate items (dead=R,
// stuck=R, link=R — Bernoulli per element, redrawn per trial) and
// pinned items (dead@stage:cell, stuck0@stage:cell, stuck1@stage:cell,
// link@stage:link). -faultrates adds a switch-dead-rate axis to -sweep.
// Degraded runs stay reproducible from (-seed, -faults) alone.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"minequiv/min"
)

func main() {
	if err := run(context.Background(), os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "minsim:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, w io.Writer) error {
	fs := flag.NewFlagSet("minsim", flag.ContinueOnError)
	netName := fs.String("net", min.Omega, "network name")
	counter := fs.Bool("counter", false, "simulate the tail-cycle counterexample instead of -net")
	n := fs.Int("n", 6, "number of stages")
	model := fs.String("model", "wave", "wave or buffered")
	pattern := fs.String("pattern", "uniform", "traffic scenario (see -patterns)")
	listPatterns := fs.Bool("patterns", false, "list traffic scenarios and exit")
	waves := fs.Int("waves", 500, "waves (wave model)")
	kernel := fs.String("kernel", "auto", "wave executor: auto, scalar or bit (results are identical)")
	reps := fs.Int("reps", 1, "independent replications (buffered model)")
	load := fs.Float64("load", 0.6, "offered load (buffered model; bernoulli/bursty patterns)")
	queue := fs.Int("queue", 4, "queue capacity per lane (buffered model)")
	lanes := fs.Int("lanes", 1, "FIFO lanes per switch input port (buffered model)")
	cycles := fs.Int("cycles", 5000, "measured cycles (buffered model)")
	warmup := fs.Int("warmup", 500, "warmup cycles (buffered model)")
	hotspot := fs.Float64("hotspot", 0.3, "hot-spot probability (hotspot pattern)")
	burst := fs.Float64("burst", 0.2, "burst-wave probability (bursty pattern)")
	idleLoad := fs.Float64("idleload", 0.1, "off-phase load (bursty pattern)")
	seed := fs.Uint64("seed", 1, "root rng seed")
	workers := fs.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
	faults := fs.String("faults", "", "fault plan: rate items (dead=R,stuck=R,link=R) and pinned items (dead@S:C, stuck0@S:C, stuck1@S:C, link@S:L)")
	sweep := fs.Bool("sweep", false, "run a load x network grid in one invocation")
	nets := fs.String("nets", "", "comma-separated networks for -sweep (default: all)")
	loads := fs.String("loads", "0.2,0.4,0.6,0.8,1.0", "comma-separated loads for -sweep")
	queues := fs.String("queues", "", "comma-separated queue depths for buffered -sweep (default: -queue)")
	laneGrid := fs.String("lanegrid", "", "comma-separated lane counts for buffered -sweep (default: -lanes)")
	faultRates := fs.String("faultrates", "", "comma-separated switch-dead rates adding a fault axis to -sweep")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *listPatterns {
		for _, s := range min.Scenarios() {
			fmt.Fprintf(w, "%-12s %s\n", s.Name, s.Description)
		}
		return nil
	}

	common := []min.Option{
		min.WithSeed(*seed), min.WithWorkers(*workers),
		min.WithScenario(*pattern),
		min.WithHotspot(0, *hotspot), min.WithBurst(*burst, *idleLoad),
	}
	// The wave model historically offers full load unless -load is given
	// (load-aware patterns excepted); the buffered model always thins to
	// -load. min.WithLoad implements exactly that when applied on demand.
	loadSet, kernelSet := false, false
	fs.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "load":
			loadSet = true
		case "kernel":
			kernelSet = true
		}
	})

	if *sweep {
		// The sweep grid fixes its own traffic (Bernoulli at each grid
		// load) and network list; reject flags it would silently drop.
		if *counter {
			return fmt.Errorf("-sweep runs the catalog networks; it cannot be combined with -counter")
		}
		patternSet := false
		fs.Visit(func(f *flag.Flag) {
			if f.Name == "pattern" {
				patternSet = true
			}
		})
		if patternSet {
			return fmt.Errorf("-sweep always uses bernoulli traffic at each grid load; -pattern is not supported")
		}
		if *model != "buffered" && (*queues != "" || *laneGrid != "") {
			return fmt.Errorf("-queues/-lanegrid apply to the buffered sweep only")
		}
		if *faults != "" {
			return fmt.Errorf("-sweep varies faults through -faultrates, not -faults")
		}
		return runSweep(ctx, w, sweepSpec{
			model: *model, n: *n, nets: *nets, loads: *loads,
			queues: *queues, laneGrid: *laneGrid, faultRates: *faultRates,
			waves: *waves, reps: *reps, queue: *queue, lanes: *lanes,
			cycles: *cycles, warmup: *warmup,
		}, *seed, *workers)
	}
	if *faultRates != "" {
		return fmt.Errorf("-faultrates is a -sweep axis; use -faults for a single run")
	}

	plan, err := parseFaultSpec(*faults)
	if err != nil {
		return err
	}
	if !plan.Empty() {
		common = append(common, min.WithFaults(plan))
	}

	nw, err := buildNetwork(*counter, *netName, *n)
	if err != nil {
		return err
	}

	switch *model {
	case "wave":
		opts := append(common, min.WithWaves(*waves), min.WithKernel(min.Kernel(*kernel)))
		// Load-aware scenarios (bernoulli, bursty) have always consumed
		// -load, default included; other patterns offer full load unless
		// -load is given explicitly (which thins them).
		if loadSet || scenarioIsLoadAware(*pattern) {
			opts = append(opts, min.WithLoad(*load))
		}
		st, err := min.Simulate(ctx, nw, opts...)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%s n=%d (N=%d), %s traffic, %d waves: throughput %.4f ± %.4f\n",
			st.Network, st.Stages, st.Terminals, st.Scenario, st.Waves,
			st.Throughput.Mean, st.Throughput.CI95)
		fmt.Fprintf(w, "  offered %d, delivered %d, dropped %d, misrouted %d\n",
			st.Offered, st.Delivered, st.Dropped, st.Misrouted)
		if !plan.Empty() {
			fmt.Fprintf(w, "  faults: %s; %d packets killed by faults\n", *faults, st.FaultDropped)
		}
		return nil

	case "buffered":
		if kernelSet {
			return fmt.Errorf("-kernel selects the wave executor; the buffered model has no bit-sliced form")
		}
		st, err := min.SimulateBuffered(ctx, nw, append(common,
			min.WithLoad(*load), min.WithQueue(*queue), min.WithLanes(*lanes),
			min.WithCycles(*cycles), min.WithWarmup(*warmup),
			min.WithReplications(*reps))...)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%s n=%d (N=%d), buffered, %s traffic, load %.2f, queue %d, lanes %d, %d cycles, %d reps:\n",
			st.Network, st.Stages, st.Terminals, st.Scenario, *load, *queue, *lanes, *cycles, *reps)
		fmt.Fprintf(w, "  throughput   %.4f ± %.4f per terminal per cycle\n",
			st.Throughput.Mean, st.Throughput.CI95)
		fmt.Fprintf(w, "  mean latency %.2f ± %.2f cycles (p50 %.0f, p95 %.0f, p99 %.0f)\n",
			st.Latency.Mean, st.Latency.CI95,
			st.LatencyP50.Mean, st.LatencyP95.Mean, st.LatencyP99.Mean)
		fmt.Fprintf(w, "  injected %d, delivered %d, rejected %d, dropped %d, misrouted %d, in flight %d\n",
			st.Injected, st.Delivered, st.Rejected, st.Dropped, st.Misrouted, st.InFlight)
		if !plan.Empty() {
			fmt.Fprintf(w, "  faults: %s; %d packets killed by faults\n", *faults, st.FaultDropped)
		}
		fmt.Fprintf(w, "  max lane occupancy %d; mean stage occupancy", st.MaxOccupancy)
		for _, occ := range st.StageOccupancy {
			fmt.Fprintf(w, " %.1f", occ)
		}
		fmt.Fprintln(w)
		return nil

	default:
		return fmt.Errorf("unknown model %q", *model)
	}
}

// parseFaultSpec builds a fault plan from the -faults syntax: rate
// items kind=rate (dead, stuck, link) and pinned items kind@stage:coord
// (dead, stuck0, stuck1 with a cell; link with an outlink).
func parseFaultSpec(spec string) (min.FaultPlan, error) {
	var plan min.FaultPlan
	if spec == "" {
		return plan, nil
	}
	for _, item := range strings.Split(spec, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		if kind, val, ok := strings.Cut(item, "="); ok {
			rate, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return plan, fmt.Errorf("bad fault rate %q: %w", item, err)
			}
			switch kind {
			case "dead":
				plan.SwitchDeadRate = rate
			case "stuck":
				plan.SwitchStuckRate = rate
			case "link":
				plan.LinkDownRate = rate
			default:
				return plan, fmt.Errorf("unknown fault rate %q (dead, stuck, link)", kind)
			}
			continue
		}
		kind, loc, ok := strings.Cut(item, "@")
		if !ok {
			return plan, fmt.Errorf("bad fault item %q (want kind=rate or kind@stage:coord)", item)
		}
		stageStr, coordStr, ok := strings.Cut(loc, ":")
		if !ok {
			return plan, fmt.Errorf("bad fault location %q (want stage:coord)", loc)
		}
		stage, err := strconv.Atoi(stageStr)
		if err != nil {
			return plan, fmt.Errorf("bad fault stage %q: %w", stageStr, err)
		}
		coord, err := strconv.Atoi(coordStr)
		if err != nil {
			return plan, fmt.Errorf("bad fault coordinate %q: %w", coordStr, err)
		}
		f := min.Fault{Stage: stage}
		switch kind {
		case "dead":
			f.Kind, f.Cell = min.SwitchDead, coord
		case "stuck0":
			f.Kind, f.Cell = min.SwitchStuck0, coord
		case "stuck1":
			f.Kind, f.Cell = min.SwitchStuck1, coord
		case "link":
			f.Kind, f.Link = min.LinkDown, coord
		default:
			return plan, fmt.Errorf("unknown fault kind %q (dead, stuck0, stuck1, link)", kind)
		}
		plan.Faults = append(plan.Faults, f)
	}
	return plan, nil
}

func buildNetwork(counter bool, netName string, n int) (*min.Network, error) {
	if counter {
		return min.TailCycle(n)
	}
	return min.Build(netName, n)
}

// scenarioIsLoadAware reports whether the named scenario consumes the
// offered load itself (unknown names resolve to false; the simulate
// call reports them properly).
func scenarioIsLoadAware(name string) bool {
	for _, s := range min.Scenarios() {
		if s.Name == name {
			return s.LoadAware
		}
	}
	return false
}

// sweepSpec carries the grid axes of one -sweep invocation.
type sweepSpec struct {
	model            string
	n                int
	nets             string
	loads            string
	queues, laneGrid string // buffered model only
	faultRates       string // switch-dead rates; "" = intact only
	waves, reps      int
	queue, lanes     int
	cycles, warmup   int
}

func parseFloats(list string) ([]float64, error) {
	var vals []float64
	for _, s := range strings.Split(list, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil {
			return nil, fmt.Errorf("bad load %q: %w", s, err)
		}
		vals = append(vals, v)
	}
	return vals, nil
}

func parseInts(list string, fallback int) ([]int, error) {
	if list == "" {
		return []int{fallback}, nil
	}
	var vals []int
	for _, s := range strings.Split(list, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil {
			return nil, fmt.Errorf("bad value %q: %w", s, err)
		}
		vals = append(vals, v)
	}
	return vals, nil
}

// runSweep evaluates a grid in one invocation: Bernoulli wave traffic
// per load for the wave model (network x [fault rate x] load), or
// buffered runs over the full load x queue x lanes [x fault rate] grid
// per network — buffered rows carry loss (dropped/rejected) and latency
// percentiles, not just throughput, so saturation and degradation
// tables show where packets go.
func runSweep(ctx context.Context, w io.Writer, sp sweepSpec, seed uint64, workers int) error {
	names := min.CatalogNames()
	if sp.nets != "" {
		names = strings.Split(sp.nets, ",")
		for i := range names {
			names[i] = strings.TrimSpace(names[i])
		}
	}
	loadVals, err := parseFloats(sp.loads)
	if err != nil {
		return err
	}
	if len(loadVals) == 0 {
		return fmt.Errorf("empty load list")
	}
	rateVals := []float64{0}
	faultAxis := sp.faultRates != ""
	if faultAxis {
		if rateVals, err = parseFloats(sp.faultRates); err != nil {
			return err
		}
		if len(rateVals) == 0 {
			return fmt.Errorf("empty fault-rate list")
		}
	}
	// withFaults appends the grid point's degradation (switch-dead rate).
	withFaults := func(opts []min.Option, rate float64) []min.Option {
		if rate == 0 {
			return opts
		}
		return append(opts, min.WithFaults(min.FaultPlan{SwitchDeadRate: rate}))
	}
	common := []min.Option{min.WithSeed(seed), min.WithWorkers(workers)}
	switch sp.model {
	case "wave":
		fmt.Fprintf(w, "sweep: wave model, n=%d (N=%d), %d networks x %d fault rates x %d loads\n",
			sp.n, 1<<uint(sp.n), len(names), len(rateVals), len(loadVals))
		fmt.Fprintf(w, "%-26s", "network")
		if faultAxis {
			fmt.Fprintf(w, " %-7s", "dead")
		}
		for _, l := range loadVals {
			fmt.Fprintf(w, " load=%-8.2f", l)
		}
		fmt.Fprintln(w)
		for _, name := range names {
			nw, err := buildNetwork(false, name, sp.n)
			if err != nil {
				return err
			}
			for _, rate := range rateVals {
				fmt.Fprintf(w, "%-26s", nw.Name())
				if faultAxis {
					fmt.Fprintf(w, " %-7.3f", rate)
				}
				for _, l := range loadVals {
					st, err := min.Simulate(ctx, nw, withFaults(append(common,
						min.WithScenario("bernoulli"), min.WithLoad(l), min.WithWaves(sp.waves)), rate)...)
					if err != nil {
						return err
					}
					fmt.Fprintf(w, " %-13.4f", st.Throughput.Mean)
				}
				fmt.Fprintln(w)
			}
		}
		return nil

	case "buffered":
		queueVals, err := parseInts(sp.queues, sp.queue)
		if err != nil {
			return err
		}
		laneVals, err := parseInts(sp.laneGrid, sp.lanes)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "sweep: buffered model, n=%d (N=%d), %d networks x %d loads x %d queues x %d lanes x %d fault rates\n",
			sp.n, 1<<uint(sp.n), len(names), len(loadVals), len(queueVals), len(laneVals), len(rateVals))
		fmt.Fprintf(w, "%-26s %-6s %-6s", "network", "queue", "lanes")
		if faultAxis {
			fmt.Fprintf(w, " %-7s", "dead")
		}
		fmt.Fprintf(w, " %-6s %-11s %-8s %-9s %-14s\n",
			"load", "throughput", "dropped", "rejected", "p50/p95/p99")
		for _, name := range names {
			nw, err := buildNetwork(false, name, sp.n)
			if err != nil {
				return err
			}
			for _, q := range queueVals {
				for _, lanes := range laneVals {
					for _, rate := range rateVals {
						for _, l := range loadVals {
							st, err := min.SimulateBuffered(ctx, nw, withFaults(append(common,
								min.WithLoad(l), min.WithQueue(q), min.WithLanes(lanes),
								min.WithCycles(sp.cycles), min.WithWarmup(sp.warmup),
								min.WithReplications(sp.reps)), rate)...)
							if err != nil {
								return err
							}
							fmt.Fprintf(w, "%-26s %-6d %-6d", nw.Name(), q, lanes)
							if faultAxis {
								fmt.Fprintf(w, " %-7.3f", rate)
							}
							fmt.Fprintf(w, " %-6.2f %-11.4f %-8d %-9d %3.0f/%3.0f/%3.0f\n",
								l, st.Throughput.Mean, st.Dropped, st.Rejected,
								st.LatencyP50.Mean, st.LatencyP95.Mean, st.LatencyP99.Mean)
						}
					}
				}
			}
		}
		return nil

	default:
		return fmt.Errorf("unknown model %q", sp.model)
	}
}
