package main

import (
	"bytes"
	"strings"
	"testing"
)

func runSim(t *testing.T, args ...string) (string, error) {
	t.Helper()
	var buf bytes.Buffer
	err := run(args, &buf)
	return buf.String(), err
}

func TestWaveModel(t *testing.T) {
	out, err := runSim(t, "-net", "omega", "-n", "4", "-model", "wave", "-waves", "20")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "omega n=4") || !strings.Contains(out, "throughput") {
		t.Errorf("wave output wrong:\n%s", out)
	}
}

func TestWavePatterns(t *testing.T) {
	for _, p := range []string{"uniform", "permutation", "bitreversal", "hotspot"} {
		if _, err := runSim(t, "-n", "3", "-model", "wave", "-waves", "5", "-pattern", p); err != nil {
			t.Errorf("pattern %s: %v", p, err)
		}
	}
	if _, err := runSim(t, "-model", "wave", "-pattern", "nope", "-n", "3"); err == nil {
		t.Error("unknown pattern accepted")
	}
}

func TestBufferedModel(t *testing.T) {
	out, err := runSim(t, "-net", "flip", "-n", "3", "-model", "buffered",
		"-cycles", "200", "-warmup", "20", "-load", "0.5")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"buffered", "mean latency", "injected"} {
		if !strings.Contains(out, want) {
			t.Errorf("buffered output missing %q:\n%s", want, out)
		}
	}
}

func TestCounterFlag(t *testing.T) {
	out, err := runSim(t, "-counter", "-n", "4", "-model", "wave", "-waves", "10")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "tail-cycle") {
		t.Errorf("counter output wrong:\n%s", out)
	}
}

func TestSimErrors(t *testing.T) {
	if _, err := runSim(t, "-net", "nope", "-n", "3"); err == nil {
		t.Error("unknown network accepted")
	}
	if _, err := runSim(t, "-model", "nope", "-n", "3"); err == nil {
		t.Error("unknown model accepted")
	}
	if _, err := runSim(t, "-counter", "-n", "2"); err == nil {
		t.Error("n=2 counterexample accepted")
	}
	if _, err := runSim(t, "-model", "buffered", "-n", "3", "-queue", "0"); err == nil {
		t.Error("zero queue accepted")
	}
}
